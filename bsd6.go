// Package bsd6 is a user-space Go reproduction of the NRL IPv6/IPsec
// networking stack described in "Implementation of IPv6 in 4.4 BSD"
// (Atkinson, McDonald, Phan, Metz & Chin — USENIX 1996).
//
// A Stack is one node: dual IPv4/IPv6 network layers structured like
// 4.4 BSD-Lite, ICMPv6 with Neighbor Discovery / Router Discovery /
// stateless address autoconfiguration, the IP security mechanisms
// (AH + ESP with algorithm switches, the Key Engine, PF_KEY), and
// shared TCP/UDP over dual protocol control blocks, all reachable
// through a BSD-sockets-style API.  Stacks connect over simulated
// links (Hub).
//
// Quickstart (the paper's Figure 7 scenario):
//
//	hub := bsd6.NewHub()
//	a := bsd6.NewStack("a", bsd6.Options{})
//	b := bsd6.NewStack("b", bsd6.Options{})
//	a.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
//	b.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 2}, 1500)
//
//	srv, _ := b.NewSocket(bsd6.AFInet6, bsd6.SockDgram)
//	srv.Bind(bsd6.Sockaddr6{Family: bsd6.AFInet6, Port: 7})
//
//	cli, _ := a.NewSocket(bsd6.AFInet6, bsd6.SockDgram)
//	dst, _ := bsd6.Ascii2Addr(bsd6.AFInet6, "fe80::800:dead:beef")
//	cli.SendTo([]byte("hello"), bsd6.Addr6(dst.(bsd6.IP6), 7))
//
// See examples/ for complete programs and DESIGN.md for the map from
// paper sections to packages.
package bsd6

import (
	"bsd6/internal/core"
	"bsd6/internal/icmp6"
	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/key"
	"bsd6/internal/netif"
	"bsd6/internal/route"
	"bsd6/internal/tunnel"
)

// Address types and families.
type (
	IP4      = inet.IP4
	IP6      = inet.IP6
	LinkAddr = inet.LinkAddr
	Family   = inet.Family
)

const (
	AFInet  = inet.AFInet
	AFInet6 = inet.AFInet6
)

// The version-independent address library functions (§6.3).
var (
	Addr2Ascii = inet.Addr2Ascii
	Ascii2Addr = inet.Ascii2Addr
	ParseIP4   = inet.ParseIP4
	ParseIP6   = inet.ParseIP6
	V4Mapped   = inet.V4Mapped
)

// NewHostTable creates a hosts table for Hostname2Addr/Addr2Hostname.
var NewHostTable = inet.NewHostTable

// Stack assembly and the simulated wire.
type (
	Stack     = core.Stack
	Options   = core.Options
	Hub       = netif.Hub
	Interface = netif.Interface

	// Snapshot is the structured form of Netstat(): every counter,
	// drop reason, and flight-recorder event, JSON-serializable.
	Snapshot = core.Snapshot
)

// NewStack builds and starts a stack.
var NewStack = core.NewStack

// NewHub creates a simulated link segment.
var NewHub = netif.NewHub

// Sockets API.
type (
	Socket         = core.Socket
	Sockaddr6      = core.Sockaddr6
	SecurityOption = core.SecurityOption
)

const (
	SockDgram  = core.SockDgram
	SockStream = core.SockStream

	// The §6.1 security socket options.
	SoSecurityAuthentication = core.SoSecurityAuthentication
	SoSecurityEncryptTrans   = core.SoSecurityEncryptTrans
	SoSecurityEncryptTunnel  = core.SoSecurityEncryptTunnel
)

// Security levels (§6.1).
const (
	LevelNone    = ipsec.LevelNone
	LevelUse     = ipsec.LevelUse
	LevelRequire = ipsec.LevelRequire
	LevelUnique  = ipsec.LevelUnique
)

// Addr6 and Addr4 build sockaddrs.
var (
	Addr6 = core.Addr6
	Addr4 = core.Addr4
)

// EIPSEC is the IP security processing error (§3.3).
var EIPSEC = core.EIPSEC

// Key management (§3.1, §6.2).
type (
	SA         = key.SA
	KeyMessage = key.Message
	KeySocket  = key.Socket
	SecProto   = key.SecProto
	SockOpts   = ipsec.SockOpts
)

const (
	ProtoAH           = key.ProtoAH
	ProtoESPTransport = key.ProtoESPTransport
	ProtoESPTunnel    = key.ProtoESPTunnel
)

// Configured tunnels & transition devices (RFC 4213 / RFC 2473
// analogs) — see package tunnel.
type (
	Tunnel       = tunnel.Tunnel
	TunnelConfig = tunnel.Config
	TunnelMode   = tunnel.Mode
)

const (
	Tunnel6in4 = tunnel.Mode6in4
	Tunnel4in6 = tunnel.Mode4in6
	Tunnel6in6 = tunnel.Mode6in6
)

// Router discovery / autoconfiguration (§4.2).
type (
	RouterConfig = icmp6.RouterConfig
	PrefixInfo   = icmp6.PrefixInfo
)

// Routing table types, for route inspection.
type (
	RouteEntry   = route.Entry
	RouteMessage = route.Message
)

// Route flags (RTF_*).
const (
	RouteUp      = route.FlagUp
	RouteGateway = route.FlagGateway
	RouteHost    = route.FlagHost
	RouteCloning = route.FlagCloning
	RouteLLInfo  = route.FlagLLInfo
	RouteReject  = route.FlagReject
	RouteStatic  = route.FlagStatic
)
