// Benchmarks regenerating the paper's evaluation (§7): one benchmark
// per table, using the NetPerf-style harness over two stacks joined by
// a zero-loss simulated link.  Figure 8 is the same data as Tables 1
// and 2 rendered as curves; cmd/ipbench prints all of them in the
// paper's row format.
//
// Absolute numbers are microseconds through a user-space Go stack, not
// milliseconds through 1995 kernels; the reproduced result is the
// SHAPE: IPv6 latency above IPv4 (longer addresses + preparse, §7),
// IPv6 throughput slightly below IPv4, and security costing
// None < AH < ESP < AH+ESP (Table 5's ordering).
package bsd6_test

import (
	"fmt"
	"testing"
	"time"

	"bsd6"
	"bsd6/internal/core"
	"bsd6/internal/netperf"
)

var (
	benchMacA = bsd6.LinkAddr{2, 0, 0, 0, 0, 0xa}
	benchMacB = bsd6.LinkAddr{2, 0, 0, 0, 0, 0xb}
)

// benchNet is the measurement testbed: two dual-stack hosts on one
// link (the paper's pair of systems on an Ethernet).
type benchNet struct {
	cli, srv *bsd6.Stack
	dst4     bsd6.IP4
	dst6     bsd6.IP6
	cli6     bsd6.IP6
}

func newBenchNet(tb testing.TB) *benchNet {
	hub := bsd6.NewHub()
	cli := bsd6.NewStack("cli", bsd6.Options{})
	srv := bsd6.NewStack("srv", bsd6.Options{})
	tb.Cleanup(cli.Close)
	tb.Cleanup(srv.Close)
	cIf := cli.AttachLink(hub, benchMacA, 1500)
	sIf := srv.AttachLink(hub, benchMacB, 1500)
	cli.ConfigureV4(cIf, bsd6.IP4{10, 0, 0, 1}, 24)
	srv.ConfigureV4(sIf, bsd6.IP4{10, 0, 0, 2}, 24)
	cliLL, _ := cIf.LinkLocal6(time.Now())
	srvLL, _ := sIf.LinkLocal6(time.Now())
	return &benchNet{cli: cli, srv: srv, dst4: bsd6.IP4{10, 0, 0, 2}, dst6: srvLL, cli6: cliLL}
}

func (n *benchNet) addr(v6 bool, port uint16) core.Sockaddr6 {
	if v6 {
		return bsd6.Addr6(n.dst6, port)
	}
	return bsd6.Addr4(n.dst4, port)
}

// addAuthSAs installs bidirectional AH associations (keyed MD5, the
// §3 mandatory algorithm).
func (n *benchNet) addAuthSAs(tb testing.TB) {
	k := []byte("0123456789abcdef")
	for i, s := range []*bsd6.Stack{n.cli, n.srv} {
		_ = i
		if err := s.Keys.Add(&bsd6.SA{SPI: 0x1000, Src: n.cli6, Dst: n.dst6, Proto: bsd6.ProtoAH, AuthAlg: "keyed-md5", AuthKey: k}); err != nil {
			tb.Fatal(err)
		}
		if err := s.Keys.Add(&bsd6.SA{SPI: 0x1001, Src: n.dst6, Dst: n.cli6, Proto: bsd6.ProtoAH, AuthAlg: "keyed-md5", AuthKey: k}); err != nil {
			tb.Fatal(err)
		}
	}
}

// addESPSAs installs bidirectional ESP transport associations
// (DES-CBC, the §3 mandatory algorithm).
func (n *benchNet) addESPSAs(tb testing.TB) {
	k := []byte("DESCBCK!")
	for _, s := range []*bsd6.Stack{n.cli, n.srv} {
		if err := s.Keys.Add(&bsd6.SA{SPI: 0x2000, Src: n.cli6, Dst: n.dst6, Proto: bsd6.ProtoESPTransport, EncAlg: "des-cbc", EncKey: k}); err != nil {
			tb.Fatal(err)
		}
		if err := s.Keys.Add(&bsd6.SA{SPI: 0x2001, Src: n.dst6, Dst: n.cli6, Proto: bsd6.ProtoESPTransport, EncAlg: "des-cbc", EncKey: k}); err != nil {
			tb.Fatal(err)
		}
	}
}

// The paper's parameter grids.
var (
	latencySizes  = []int{1, 64, 1024, 2048, 4096, 8192} // Tables 1-2, Figure 8
	tcpDataSizes  = []int{4096, 8192, 32768}             // Table 3 rows
	tcpSockBufs   = []int{57344, 32768, 8192}            // Table 3 columns
	udpDataSizes  = []int{64, 1024}                      // Table 4
	udpSockBuf    = 32767                                //
	benchRRPort   = uint16(12865)                        // netperf's port, for flavor
	benchBulkPort = uint16(5501)
)

// benchRR measures request-response latency: one op = one transaction.
func benchRR(b *testing.B, tcp, v6 bool, size int) {
	n := newBenchNet(b)
	sv, err := netperf.NewEchoServer(n.srv, tcp, benchRRPort, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer sv.Close()
	// Warm up (connection + ND/ARP resolution) outside the timer.
	if _, err := netperf.RunRR(n.cli, n.addr(v6, benchRRPort), tcp, size, 2, 0, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := netperf.RunRR(n.cli, n.addr(v6, benchRRPort), tcp, size, b.N, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.MeanRTT.Nanoseconds())/1e3, "µs/rtt")
}

// BenchmarkTable1_TCPLatency is Table 1: TCP request-response latency,
// IPv4 vs IPv6, across the paper's message sizes.
func BenchmarkTable1_TCPLatency(b *testing.B) {
	for _, size := range latencySizes {
		for _, v := range []struct {
			name string
			v6   bool
		}{{"IPv4", false}, {"IPv6", true}} {
			b.Run(fmt.Sprintf("%s/bytes=%d", v.name, size), func(b *testing.B) {
				benchRR(b, true, v.v6, size)
			})
		}
	}
}

// BenchmarkTable2_UDPLatency is Table 2: UDP request-response latency.
func BenchmarkTable2_UDPLatency(b *testing.B) {
	for _, size := range latencySizes {
		for _, v := range []struct {
			name string
			v6   bool
		}{{"IPv4", false}, {"IPv6", true}} {
			b.Run(fmt.Sprintf("%s/bytes=%d", v.name, size), func(b *testing.B) {
				benchRR(b, false, v.v6, size)
			})
		}
	}
}

// benchStream measures bulk throughput: one op = one msgSize write.
func benchStream(b *testing.B, tcp, v6 bool, msgSize, sockbuf int, tune netperf.SocketTuner) {
	n := newBenchNet(b)
	if tune != nil { // security rows need associations
		n.addAuthSAs(b)
		n.addESPSAs(b)
	}
	sv, err := netperf.NewSinkServer(n.srv, tcp, benchBulkPort, sockbuf, tune)
	if err != nil {
		b.Fatal(err)
	}
	defer sv.Close()
	total := int64(b.N) * int64(msgSize)
	b.SetBytes(int64(msgSize))
	b.ResetTimer()
	res, err := netperf.RunStream(n.cli, sv, n.addr(v6, benchBulkPort), tcp, msgSize, sockbuf, total, tune)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.KBps, "KB/s")
}

// BenchmarkTable3_TCPThroughput is Table 3: TCP stream throughput over
// the paper's data-size × socket-buffer grid, IPv4 vs IPv6.
func BenchmarkTable3_TCPThroughput(b *testing.B) {
	for _, sockbuf := range tcpSockBufs {
		for _, size := range tcpDataSizes {
			for _, v := range []struct {
				name string
				v6   bool
			}{{"IPv4", false}, {"IPv6", true}} {
				b.Run(fmt.Sprintf("%s/data=%d/sockbuf=%d", v.name, size, sockbuf), func(b *testing.B) {
					benchStream(b, true, v.v6, size, sockbuf, nil)
				})
			}
		}
	}
}

// BenchmarkTable4_UDPThroughput is Table 4: UDP stream throughput.
func BenchmarkTable4_UDPThroughput(b *testing.B) {
	for _, size := range udpDataSizes {
		for _, v := range []struct {
			name string
			v6   bool
		}{{"IPv4", false}, {"IPv6", true}} {
			b.Run(fmt.Sprintf("%s/data=%d/sockbuf=%d", v.name, size, udpSockBuf), func(b *testing.B) {
				benchStream(b, false, v.v6, size, udpSockBuf, nil)
			})
		}
	}
}

// BenchmarkTable5_SecurityThroughput is Table 5: the impact of IPv6
// security on TCP throughput — None, Authentication (AH/keyed-MD5),
// Encryption (ESP/DES-CBC), and Both.
func BenchmarkTable5_SecurityThroughput(b *testing.B) {
	cases := []struct {
		name string
		tune netperf.SocketTuner
	}{
		{"None", nil},
		{"Authentication", func(s *core.Socket) {
			s.SetSecurity(bsd6.SoSecurityAuthentication, bsd6.LevelRequire)
		}},
		{"Encryption", func(s *core.Socket) {
			s.SetSecurity(bsd6.SoSecurityEncryptTrans, bsd6.LevelRequire)
		}},
		{"Both", func(s *core.Socket) {
			s.SetSecurity(bsd6.SoSecurityAuthentication, bsd6.LevelRequire)
			s.SetSecurity(bsd6.SoSecurityEncryptTrans, bsd6.LevelRequire)
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			benchStream(b, true, true, 8192, 32768, c.tune)
		})
	}
}

// BenchmarkAblation_Preparse measures §2.2's design choice: input
// pre-parsing of the header chain versus the planned fast-path bypass
// for packets with no optional headers.
func BenchmarkAblation_Preparse(b *testing.B) {
	for _, fp := range []struct {
		name string
		on   bool
	}{{"preparse", false}, {"fastpath", true}} {
		b.Run(fp.name, func(b *testing.B) {
			n := newBenchNet(b)
			n.cli.V6.FastPath = fp.on
			n.srv.V6.FastPath = fp.on
			sv, err := netperf.NewEchoServer(n.srv, false, benchRRPort, 0, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer sv.Close()
			if _, err := netperf.RunRR(n.cli, n.addr(true, benchRRPort), false, 64, 2, 0, nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res, err := netperf.RunRR(n.cli, n.addr(true, benchRRPort), false, 64, b.N, 0, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.MeanRTT.Nanoseconds())/1e3, "µs/rtt")
		})
	}
}

// BenchmarkAblation_AlgorithmSwitch checks §3.6's claim: "Supporting
// multiple algorithms in the kernel does not exact a significant
// performance penalty."  Authenticated RR latency is measured with the
// stock switch and with dozens of extra registered algorithms.
func BenchmarkAblation_AlgorithmSwitch(b *testing.B) {
	run := func(b *testing.B) {
		n := newBenchNet(b)
		n.addAuthSAs(b)
		tune := func(s *core.Socket) {
			s.SetSecurity(bsd6.SoSecurityAuthentication, bsd6.LevelRequire)
		}
		sv, err := netperf.NewEchoServer(n.srv, false, benchRRPort, 0, tune)
		if err != nil {
			b.Fatal(err)
		}
		defer sv.Close()
		if _, err := netperf.RunRR(n.cli, n.addr(true, benchRRPort), false, 64, 2, 0, tune); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if _, err := netperf.RunRR(n.cli, n.addr(true, benchRRPort), false, 64, b.N, 0, tune); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("switch=stock", run)
	b.Run("switch=crowded", func(b *testing.B) {
		registerDummyAlgorithms(48)
		run(b)
	})
}
