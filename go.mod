module bsd6

go 1.22
