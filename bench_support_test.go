package bsd6_test

import (
	"crypto/md5"
	"fmt"
	"hash"
	"sync"

	"bsd6/internal/ipsec"
)

var dummyOnce sync.Once

// registerDummyAlgorithms crowds the authentication algorithm switch
// with n extra entries for the §3.6 ablation.
func registerDummyAlgorithms(n int) {
	dummyOnce.Do(func() {
		for i := 0; i < n; i++ {
			ipsec.RegisterAuth(dummyAlg(fmt.Sprintf("dummy-%d", i)))
		}
	})
}

type dummyAuth struct{ name string }

func dummyAlg(name string) ipsec.AuthAlg { return dummyAuth{name} }

func (d dummyAuth) Name() string             { return d.name }
func (d dummyAuth) DigestLen() int           { return md5.Size }
func (d dummyAuth) New(key []byte) hash.Hash { return md5.New() }
