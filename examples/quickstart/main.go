// Quickstart: the paper's Figure 7 — a UDP "hello" over IPv6 through
// the BSD sockets API, between two stacks on a simulated link.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"bsd6"
)

func main() {
	// Two hosts on one wire. Attaching a link configures the
	// link-local address (fe80:: + interface token, §4.2.1).
	hub := bsd6.NewHub()
	alice := bsd6.NewStack("alice", bsd6.Options{})
	bob := bsd6.NewStack("bob", bsd6.Options{})
	defer alice.Close()
	defer bob.Close()
	alice.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
	bobIf := bob.AttachLink(hub, bsd6.LinkAddr{0x08, 0x00, 0xde, 0xad, 0xbe, 0xef}, 1500)

	// Bob listens on the echo port.
	srv, err := bob.NewSocket(bsd6.AFInet6, bsd6.SockDgram)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Bind(bsd6.Sockaddr6{Family: bsd6.AFInet6, Port: 7}); err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			data, from, err := srv.RecvFrom(512, 5*time.Second)
			if err != nil {
				return
			}
			fmt.Printf("bob:   got %q from %v — echoing\n", data, from)
			srv.SendTo(data, from)
		}
	}()

	// Alice follows Figure 7: parse a textual IPv6 address with
	// ascii2addr, fill the sockaddr, sendto.
	bobLL, _ := bobIf.LinkLocal6(time.Now())
	fmt.Printf("bob's link-local address: %s\n", bobLL)
	parsed, err := bsd6.Ascii2Addr(bsd6.AFInet6, bobLL.String())
	if err != nil {
		log.Fatal(err)
	}
	addr6 := bsd6.Sockaddr6{
		Family:   bsd6.AFInet6,
		Port:     7, // htons(7) in the paper
		FlowInfo: 0,
		Addr:     parsed.(bsd6.IP6),
	}

	s, err := alice.NewSocket(bsd6.AFInet6, bsd6.SockDgram)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.SendTo([]byte("hello"), addr6); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice: sendto(s, \"hello\", 6, 0, &addr6, sizeof(addr6))")

	// The first packet triggered neighbor discovery under the hood —
	// no ARP on this wire (§4.3).
	reply, from, err := s.RecvFrom(512, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice: got %q back from %v\n", reply, from)
	fmt.Printf("alice: neighbor discovery ran %d solicit(s), %d advertisement(s) seen\n",
		alice.ICMP6.Stats.OutNS.Get(), alice.ICMP6.Stats.InNA.Get())
}
