// autoconf: the §4.2 story end to end — a router advertises a prefix;
// hosts form link-local addresses, verify them with duplicate address
// detection, autoconfigure global addresses from the advertised
// prefix, and later get renumbered to a new provider prefix purely
// through address lifetimes (§4.2.2: "the ability to rapidly renumber
// many systems at a site is essential").
//
//	go run ./examples/autoconf
package main

import (
	"fmt"
	"time"

	"bsd6"
)

func main() {
	hub := bsd6.NewHub()
	router := bsd6.NewStack("router", bsd6.Options{})
	h1 := bsd6.NewStack("host1", bsd6.Options{})
	h2 := bsd6.NewStack("host2", bsd6.Options{})
	defer router.Close()
	defer h1.Close()
	defer h2.Close()

	fmt.Println("== phase 1: link-local addresses with duplicate address detection ==")
	rIf := router.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 0x1}, 1500)
	h1If, ok1 := h1.AttachLinkDAD(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 0xa}, 1500)
	h2If, ok2 := h2.AttachLinkDAD(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 0xb}, 1500)
	ll1, _ := h1If.LinkLocal6(time.Now())
	ll2, _ := h2If.LinkLocal6(time.Now())
	fmt.Printf("host1 link-local %s (unique=%v)\n", ll1, ok1)
	fmt.Printf("host2 link-local %s (unique=%v)\n", ll2, ok2)

	fmt.Println("\n== phase 2: router discovery and stateless autoconfiguration ==")
	oldPrefix, _ := bsd6.ParseIP6("2001:db8:aaaa::")
	router.ConfigureV6(rIf, mustIP6("2001:db8:aaaa::1"), 64)
	router.EnableRouter6(rIf.Name, bsd6.RouterConfig{
		Interval: time.Hour, Lifetime: time.Hour, CurHopLimit: 64,
		Prefixes: []bsd6.PrefixInfo{{Prefix: oldPrefix, Plen: 64, OnLink: true, Autonomous: true}},
	})
	h1.SolicitRouters(h1If.Name)
	h2.SolicitRouters(h2If.Name)
	waitAutoconf(h1If)
	waitAutoconf(h2If)
	fmt.Print(h1.Ifconfig())
	fmt.Printf("host1 default routers: %v\n", h1.ICMP6.Routers(time.Now()))

	fmt.Println("\n== traffic between the autoconfigured addresses ==")
	addr1 := autoconfAddr(h1If)
	addr2 := autoconfAddr(h2If)
	srv, _ := h2.NewSocket(bsd6.AFInet6, bsd6.SockDgram)
	srv.Bind(bsd6.Sockaddr6{Family: bsd6.AFInet6, Port: 7})
	go func() {
		for {
			data, from, err := srv.RecvFrom(512, 5*time.Second)
			if err != nil {
				return
			}
			srv.SendTo(data, from)
		}
	}()
	cli, _ := h1.NewSocket(bsd6.AFInet6, bsd6.SockDgram)
	cli.Bind(bsd6.Sockaddr6{Family: bsd6.AFInet6, Addr: addr1})
	cli.SendTo([]byte("ping over the provider prefix"), bsd6.Addr6(addr2, 7))
	if data, from, err := cli.RecvFrom(512, 3*time.Second); err == nil {
		fmt.Printf("host1 <- %v: %q\n", from, data)
	} else {
		fmt.Println("exchange failed:", err)
	}

	fmt.Println("\n== phase 3: renumbering to a new provider (§4.2.2) ==")
	newPrefix, _ := bsd6.ParseIP6("2001:db8:bbbb::")
	// Step 1: the router deprecates the old prefix (short lifetimes)
	// while introducing the new one. No host is touched by hand.
	router.ICMP6.EnableRouter(rIf.Name, bsd6.RouterConfig{
		Interval: 200 * time.Millisecond, Lifetime: time.Hour,
		Prefixes: []bsd6.PrefixInfo{
			{Prefix: oldPrefix, Plen: 64, OnLink: true, Autonomous: true,
				ValidLft: 2 * time.Second, PreferredLft: 500 * time.Millisecond},
			{Prefix: newPrefix, Plen: 64, OnLink: true, Autonomous: true},
		},
	})
	time.Sleep(1500 * time.Millisecond)
	// Step 2: the old provider is gone from the advertisements; its
	// last-advertised lifetime runs out and the address disappears.
	router.ICMP6.EnableRouter(rIf.Name, bsd6.RouterConfig{
		Interval: 200 * time.Millisecond, Lifetime: time.Hour,
		Prefixes: []bsd6.PrefixInfo{
			{Prefix: newPrefix, Plen: 64, OnLink: true, Autonomous: true},
		},
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if hasPrefix(h1If, newPrefix) && !hasPrefix(h1If, oldPrefix) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Print(h1.Ifconfig())
	if hasPrefix(h1If, newPrefix) && !hasPrefix(h1If, oldPrefix) {
		fmt.Println("host1 renumbered: old provider address expired, new one in service")
	} else {
		fmt.Println("renumbering incomplete (timing)")
	}
}

func mustIP6(s string) bsd6.IP6 {
	a, err := bsd6.ParseIP6(s)
	if err != nil {
		panic(err)
	}
	return a
}

func waitAutoconf(ifp *bsd6.Interface) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, a := range ifp.Addrs6() {
			if a.Autoconf && !a.Tentative && !a.Duplicated {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func autoconfAddr(ifp *bsd6.Interface) bsd6.IP6 {
	for _, a := range ifp.Addrs6() {
		if a.Autoconf && !a.Tentative && !a.Duplicated {
			return a.Addr
		}
	}
	return bsd6.IP6{}
}

func hasPrefix(ifp *bsd6.Interface, prefix bsd6.IP6) bool {
	for _, a := range ifp.Addrs6() {
		match := true
		for i := 0; i < 8; i++ {
			if a.Addr[i] != prefix[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
