// securetelnet: the §6.3 scenario — a telnet-style TCP session whose
// client requests IP security with the new socket options.  The demo
// runs three acts:
//
//  1. the client requires authentication but no association exists and
//     no key daemon runs: connect fails with EIPSEC;
//
//  2. a key management daemon registers on PF_KEY and answers the
//     ACQUIRE (standing in for Photuris); the connection then works,
//     with every segment authenticated and encrypted;
//
//  3. a cleartext client tries to reach the hardened server: the SYNs
//     are silently dropped (§5.3) — no RST, just a timeout, as if the
//     host were unreachable.
//
//     go run ./examples/securetelnet
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"bsd6"
	"bsd6/internal/key"
)

func main() {
	hub := bsd6.NewHub()
	client := bsd6.NewStack("client", bsd6.Options{})
	server := bsd6.NewStack("server", bsd6.Options{})
	defer client.Close()
	defer server.Close()
	cIf := client.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
	sIf := server.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 2}, 1500)
	cLL, _ := cIf.LinkLocal6(time.Now())
	sLL, _ := sIf.LinkLocal6(time.Now())

	// The telnetd: requires authentication + encryption on its socket.
	l, err := server.NewSocket(bsd6.AFInet6, bsd6.SockStream)
	if err != nil {
		log.Fatal(err)
	}
	l.SetSecurity(bsd6.SoSecurityAuthentication, bsd6.LevelRequire)
	l.SetSecurity(bsd6.SoSecurityEncryptTrans, bsd6.LevelRequire)
	l.Bind(bsd6.Sockaddr6{Family: bsd6.AFInet6, Port: 23})
	l.Listen(4)
	go func() {
		for {
			conn, err := l.Accept(0)
			if err != nil {
				return
			}
			go func() {
				conn.Send([]byte("4.4BSD (bsd6) (ttyp0)\r\n\r\nlogin: "), time.Second)
				for {
					data, err := conn.Recv(512, 10*time.Second)
					if err != nil {
						return
					}
					conn.Send(append([]byte("server echoes: "), data...), time.Second)
				}
			}()
		}
	}()

	dial := func() (*bsd6.Socket, error) {
		c, err := client.NewSocket(bsd6.AFInet6, bsd6.SockStream)
		if err != nil {
			return nil, err
		}
		// telnet -A -E: request the services on the socket (§6.3).
		c.SetSecurity(bsd6.SoSecurityAuthentication, bsd6.LevelRequire)
		c.SetSecurity(bsd6.SoSecurityEncryptTrans, bsd6.LevelRequire)
		return c, c.Connect(bsd6.Addr6(sLL, 23), 3*time.Second)
	}

	fmt.Println("== act 1: telnet -A -E with no keys and no key daemon ==")
	if _, err := dial(); errors.Is(err, bsd6.EIPSEC) {
		fmt.Printf("telnet: connect: %v\n\n", err)
	} else {
		fmt.Printf("unexpected: %v\n\n", err)
	}

	fmt.Println("== act 2: a key daemon registers and answers ACQUIREs ==")
	startKeyDaemon(client, server)
	startKeyDaemon(server, client)
	// Each connect attempt may fail with EIPSEC while an association is
	// "delayed" (§3.3); the output policy acquires the services one at
	// a time (ESP, then AH), so a couple of retries ride out the key
	// exchange, just as an application would retry connect(2).
	var c *bsd6.Socket
	for attempt := 1; attempt <= 10; attempt++ {
		if c, err = dial(); err == nil {
			break
		}
		if !errors.Is(err, bsd6.EIPSEC) {
			log.Fatal("secured dial failed: ", err)
		}
		fmt.Printf("attempt %d: %v (waiting for key management)\n", attempt, err)
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		log.Fatal("secured dial failed: ", err)
	}
	banner, _ := c.Recv(512, 5*time.Second)
	fmt.Printf("telnet: connected to %s\n%s\n", sLL, banner)
	c.Send([]byte("root\r\n"), time.Second)
	echo, _ := c.Recv(512, 2*time.Second)
	fmt.Printf("%s\n", echo)
	fmt.Printf("server counters: auth ok %d, decrypt ok %d  (every segment wrapped in AH+ESP)\n\n",
		server.Sec.Stats.InAuthOK.Get(), server.Sec.Stats.InDecryptOK.Get())

	fmt.Println("== act 3: a cleartext client tries the hardened server ==")
	plain, _ := client.NewSocket(bsd6.AFInet6, bsd6.SockStream)
	err = plain.Connect(bsd6.Addr6(sLL, 23), 1500*time.Millisecond)
	fmt.Printf("telnet (no -A/-E): %v\n", err)
	fmt.Printf("server sent %d RSTs and dropped %d segments silently (§5.3: \"as if the destination system were not reachable at all\")\n",
		server.TCP.Stats.RstOut.Get(), server.TCP.Stats.PolicyDrops.Get())
	_ = cLL
}

// startKeyDaemon registers a PF_KEY listener on local that satisfies
// ACQUIREs by installing matching associations on both ends (the key
// exchange a Photuris daemon would negotiate).
func startKeyDaemon(local, remote *bsd6.Stack) {
	ks := local.PFKey()
	ks.Send(key.Message{Type: key.MsgRegister})
	authKey := []byte("0123456789abcdef")
	encKey := []byte("DESCBC!!")
	go func() {
		for m := range ks.C {
			if m.Type != key.MsgAcquire {
				continue
			}
			sa := &bsd6.SA{SPI: 0xbeef, Src: m.SA.Src, Dst: m.SA.Dst, Proto: m.SA.Proto}
			switch m.SA.Proto {
			case bsd6.ProtoAH:
				sa.AuthAlg, sa.AuthKey = "keyed-md5", authKey
			default:
				sa.EncAlg, sa.EncKey = "des-cbc", encKey
			}
			local.Keys.Add(sa)
			cp := *sa
			remote.Keys.Add(&cp)
		}
	}()
}
