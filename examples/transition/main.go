// transition: the §5.1/§5.2 transition mechanics — one PF_INET6 server
// socket serves IPv4 and IPv6 clients at once, seeing IPv4 peers as
// IPv4-mapped addresses; hostname2addr returns a mapped address for a
// v4-only host so unmodified v6 applications can reach it (§6.3).
//
//	go run ./examples/transition
package main

import (
	"fmt"
	"log"
	"time"

	"bsd6"
)

func main() {
	hub := bsd6.NewHub()
	server := bsd6.NewStack("server", bsd6.Options{})
	v6host := bsd6.NewStack("v6host", bsd6.Options{})
	v4host := bsd6.NewStack("v4host", bsd6.Options{})
	defer server.Close()
	defer v6host.Close()
	defer v4host.Close()

	sIf := server.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
	v6host.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 6}, 1500)
	v4If := v4host.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 4}, 1500)

	// Addresses: the server is dual; the v4 host speaks only IPv4.
	server.ConfigureV4(sIf, bsd6.IP4{10, 0, 0, 1}, 24)
	v4host.ConfigureV4(v4If, bsd6.IP4{10, 0, 0, 4}, 24)
	serverLL, _ := sIf.LinkLocal6(time.Now())

	// The v6 host knows both records; the v4-only host knows just the
	// A record, so its AF_INET6 lookup falls back to a mapped address.
	v6host.Hosts.Add("server", serverLL)
	v6host.Hosts.Add("server", bsd6.IP4{10, 0, 0, 1})
	v4host.Hosts.Add("server", bsd6.IP4{10, 0, 0, 1})
	// And the server knows the v4-only host by name.
	server.Hosts.Add("legacy", bsd6.IP4{10, 0, 0, 4})

	// ONE PF_INET6 stream socket serves both protocols (§6.1: "One can
	// use a PF_INET6 socket to communicate using IPv4 or IPv6, which
	// makes it easier to transition applications").
	l, err := server.NewSocket(bsd6.AFInet6, bsd6.SockStream)
	if err != nil {
		log.Fatal(err)
	}
	l.Bind(bsd6.Sockaddr6{Family: bsd6.AFInet6, Port: 79})
	l.Listen(4)
	go func() {
		for {
			conn, err := l.Accept(0)
			if err != nil {
				return
			}
			go func() {
				peer := conn.RemoteAddr()
				kind := "native IPv6"
				if peer.Addr.IsV4Mapped() {
					kind = "IPv4 (seen as v4-mapped)"
				}
				fmt.Printf("server: connection from %v — %s; session IsIPv6=%v\n",
					peer, kind, conn.Conn().PCB().IsIPv6())
				conn.Send([]byte(fmt.Sprintf("you are %v\r\n", peer)), time.Second)
				conn.Close()
			}()
		}
	}()

	dial := func(s *bsd6.Stack, family bsd6.Family) {
		// hostname2addr on AF_INET6 falls back to the v4 record as a
		// mapped address when no v6 record exists (§6.3).
		addr, err := s.Hosts.Hostname2Addr(bsd6.AFInet6, "server")
		if err != nil {
			log.Fatal(err)
		}
		dst := addr.(bsd6.IP6)
		sockFam := bsd6.AFInet6
		if dst.IsV4Mapped() && family == bsd6.AFInet {
			sockFam = bsd6.AFInet
		}
		c, err := s.NewSocket(sockFam, bsd6.SockStream)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Connect(bsd6.Addr6(dst, 79), 3*time.Second); err != nil {
			log.Fatalf("%s: connect: %v", s.Name, err)
		}
		reply, _ := c.Recv(512, 2*time.Second)
		fmt.Printf("%s: resolved server to %s, server says: %s", s.Name, dst, reply)
		c.Close()
	}

	fmt.Println("== a native IPv6 client connects ==")
	dial(v6host, bsd6.AFInet6)
	time.Sleep(50 * time.Millisecond)

	fmt.Println("\n== an IPv4-only client connects to the same socket ==")
	dial(v4host, bsd6.AFInet)
	time.Sleep(50 * time.Millisecond)

	fmt.Println("\n== the server resolves a v4-only host: mapped address from hostname2addr ==")
	addr, err := server.Hosts.Hostname2Addr(bsd6.AFInet6, "legacy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hostname2addr(AF_INET6, \"legacy\") = %s (IPv4-mapped=%v)\n",
		addr.(bsd6.IP6), addr.(bsd6.IP6).IsV4Mapped())
	name, _ := server.Hosts.Addr2Hostname(addr)
	fmt.Printf("addr2hostname back: %q\n", name)
}
