// Package testnet assembles complete dual-stack nodes on simulated
// links for use by the transport-layer and integration tests.  It is
// test support code, not part of the public surface; the production
// assembly lives in internal/core.
package testnet

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"bsd6/internal/icmp6"
	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/ipv4"
	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/netif"
	"bsd6/internal/route"
	"bsd6/internal/stat"
	"bsd6/internal/tunnel"
	"bsd6/internal/vclock"
)

// Node is a dual-stack host: IPv4 + IPv6 + ICMP(v4/v6) + IPsec + keys.
type Node struct {
	Name  string
	RT    *route.Table
	V4    *ipv4.Layer
	V6    *ipv6.Layer
	ICMP4 *ipv4.ICMP
	ICMP6 *icmp6.Module
	Sec   *ipsec.Module
	Keys  *key.Engine
	Tun   *tunnel.Module
	Drops *stat.Recorder
	Ifps  []*netif.Interface
}

// NewNode builds a node with a loopback interface.
func NewNode(name string) *Node {
	rt := route.NewTable()
	v4 := ipv4.NewLayer(rt)
	v6 := ipv6.NewLayer(rt)
	ic4 := ipv4.AttachICMP(v4)
	ic6 := icmp6.Attach(v6)
	ke := key.NewEngine()
	sec := ipsec.Attach(v6, ke)
	drops := stat.NewRecorder(128)
	v4.Drops = drops
	v6.Drops = drops
	rt.Drops = drops
	tun := tunnel.Attach(v4, v6, ic6)
	tun.Drops = drops
	n := &Node{Name: name, RT: rt, V4: v4, V6: v6, ICMP4: ic4, ICMP6: ic6, Sec: sec, Keys: ke, Tun: tun, Drops: drops}
	lo := netif.NewLoopback(name+"-lo", 32768)
	lo.SetInput(func(ifp *netif.Interface, fr netif.Frame) {
		switch fr.EtherType {
		case netif.EtherTypeIPv4:
			v4.Input(ifp, fr.Payload)
		case netif.EtherTypeIPv6:
			v6.Input(ifp, fr.Payload)
		}
	})
	v4.AddInterface(lo)
	v6.AddInterface(lo)
	return n
}

// Join attaches the node to a hub with a link-local v6 address and an
// optional v4 address (zero means none).
func (n *Node) Join(hub *netif.Hub, mac inet.LinkAddr, mtu int, v4addr inet.IP4, v4plen int) *netif.Interface {
	ifp := netif.New(fmt.Sprintf("%s-eth%d", n.Name, len(n.Ifps)), mac, mtu)
	ifp.SetInput(func(ifp *netif.Interface, fr netif.Frame) {
		switch fr.EtherType {
		case ipv4.EtherTypeARP:
			n.V4.ArpInput(ifp, fr.Payload)
		case netif.EtherTypeIPv4:
			n.V4.Input(ifp, fr.Payload)
		case netif.EtherTypeIPv6:
			n.V6.Input(ifp, fr.Payload)
		}
	})
	hub.Attach(ifp)

	// IPv6: link-local address + solicited-node group + on-link route.
	ll := inet.LinkLocal(mac.Token())
	ifp.AddAddr6(netif.Addr6{Addr: ll, Plen: 64})
	n.V6.AddInterface(ifp)
	n.V6.JoinGroup(ifp.Name, inet.SolicitedNode(ll))
	llPrefix := inet.IP6{0: 0xfe, 1: 0x80}
	n.RT.Add(&route.Entry{
		Family: inet.AFInet6, Dst: llPrefix[:], Plen: 64,
		Flags: route.FlagUp | route.FlagCloning | route.FlagLLInfo, IfName: ifp.Name,
	})

	// IPv4 if requested.
	n.V4.AddInterface(ifp)
	if !v4addr.IsUnspecified() {
		ifp.AddAddr4(netif.Addr4{Addr: v4addr, Plen: v4plen})
		netAddr := v4addr
		m := inet.Mask4(v4plen)
		for i := range netAddr {
			netAddr[i] &= m[i]
		}
		n.RT.Add(&route.Entry{
			Family: inet.AFInet, Dst: netAddr[:], Plen: v4plen,
			Flags: route.FlagUp | route.FlagCloning | route.FlagLLInfo, IfName: ifp.Name,
		})
	}
	n.Ifps = append(n.Ifps, ifp)
	return ifp
}

// AddTunnel configures an encapsulation tunnel on the node, wiring
// decapsulated packets straight into the IP input paths (testnet nodes
// have no netisr; delivery is synchronous like every other testnet
// link).
func (n *Node) AddTunnel(t testing.TB, cfg tunnel.Config) *tunnel.Tunnel {
	t.Helper()
	tun, err := n.Tun.Add(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tun.Ifp.SetInput(func(ifp *netif.Interface, fr netif.Frame) {
		switch fr.EtherType {
		case netif.EtherTypeIPv4:
			n.V4.Input(ifp, fr.Payload)
		case netif.EtherTypeIPv6:
			n.V6.Input(ifp, fr.Payload)
		}
	})
	n.Ifps = append(n.Ifps, tun.Ifp)
	return tun
}

// AddGlobal6 configures a global IPv6 address with its on-link prefix.
func (n *Node) AddGlobal6(ifp *netif.Interface, addr inet.IP6, plen int) {
	ifp.AddAddr6(netif.Addr6{Addr: addr, Plen: plen})
	n.V6.JoinGroup(ifp.Name, inet.SolicitedNode(addr))
	prefix := addr
	m := inet.Mask6(plen)
	for i := range prefix {
		prefix[i] &= m[i]
	}
	n.RT.Add(&route.Entry{
		Family: inet.AFInet6, Dst: prefix[:], Plen: plen,
		Flags: route.FlagUp | route.FlagCloning | route.FlagLLInfo, IfName: ifp.Name,
	})
}

// DefaultVia6 installs an IPv6 default route.
func (n *Node) DefaultVia6(gw inet.IP6, ifName string) {
	var zero inet.IP6
	n.RT.Add(&route.Entry{
		Family: inet.AFInet6, Dst: zero[:], Plen: 0,
		Flags: route.FlagUp | route.FlagGateway, Gateway: gw, IfName: ifName,
	})
}

// DefaultVia4 installs an IPv4 default route.
func (n *Node) DefaultVia4(gw inet.IP4, ifName string) {
	var zero inet.IP4
	n.RT.Add(&route.Entry{
		Family: inet.AFInet, Dst: zero[:], Plen: 0,
		Flags: route.FlagUp | route.FlagGateway, Gateway: gw, IfName: ifName,
	})
}

// LinkLocal returns the link-local address of interface i.
func (n *Node) LinkLocal(i int) inet.IP6 {
	ll, _ := n.Ifps[i].LinkLocal6(time.Now())
	return ll
}

// WaitFor waits until cond holds. Testnet links deliver synchronously
// and simulated time only moves under explicit control, so for
// single-goroutine tests cond is true on the first check; for tests
// with real goroutines (core stacks, a vclock.Driver) it spin-yields
// until the other goroutines catch up — no sleeping, no 1ms polling.
// Tests that need simulated time to pass use Sim.WaitFor instead.
func WaitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		runtime.Gosched()
	}
}

// Sim owns the virtual clock of a simulated network: it hands out
// hubs wired to that clock, retargets nodes' time sources at it, and
// drives the BSD timer cadence (pr_fasttimo every 200ms, pr_slowtimo
// every 500ms of simulated time). Tests advance time explicitly, so a
// whole adversarial scenario runs deterministically on one goroutine.
type Sim struct {
	Clock *vclock.Virtual
	hubs  []*netif.Hub
	nodes []*Node
}

// NewSim creates a simulation starting at an arbitrary fixed epoch.
func NewSim() *Sim {
	return &Sim{Clock: vclock.NewVirtual(time.Unix(1_000_000, 0))}
}

// NewHub returns a hub whose delayed deliveries run on the sim clock.
func (s *Sim) NewHub() *netif.Hub {
	h := netif.NewHub()
	h.SetClock(s.Clock)
	s.hubs = append(s.hubs, h)
	return h
}

// NewNode builds a node whose route table and key engine read the sim
// clock, and schedules its periodic timers (ND/DAD/RA via FastTimo,
// reassembly/ARP/SA-lifetime via SlowTimo) on it.
func (s *Sim) NewNode(name string) *Node {
	n := NewNode(name)
	n.RT.Now = s.Clock.Now
	n.Keys.Now = s.Clock.Now
	n.Drops.Now = s.Clock.Now
	s.nodes = append(s.nodes, n)
	s.Every(200*time.Millisecond, func(now time.Time) { n.ICMP6.FastTimo(now) })
	s.Every(500*time.Millisecond, func(now time.Time) {
		n.V4.SlowTimo(now)
		n.V6.SlowTimo(now)
		n.Keys.SlowTimo()
	})
	return n
}

// Every runs fn(now) each interval of simulated time, starting one
// interval from now.
func (s *Sim) Every(interval time.Duration, fn func(now time.Time)) {
	var rearm func()
	rearm = func() {
		fn(s.Clock.Now())
		s.Clock.AfterFunc(interval, rearm)
	}
	s.Clock.AfterFunc(interval, rearm)
}

// Run advances simulated time by d, firing every hub delivery and
// timer tick that falls in the window, in deadline order.
func (s *Sim) Run(d time.Duration) { s.Clock.Advance(d) }

// Quiescent reports whether no frames are in flight on any hub.
func (s *Sim) Quiescent() bool {
	for _, h := range s.hubs {
		if h.Pending() > 0 {
			return false
		}
	}
	return true
}

// WaitFor advances simulated time, one timer at a time, until cond
// holds. It fails the test if cond is still false after budget (a
// generous 5 minutes of simulated time) with the network quiescent.
func (s *Sim) WaitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := s.Clock.Now().Add(5 * time.Minute)
	for !cond() {
		if s.Clock.Now().After(deadline) || !s.Clock.Step() {
			t.Fatalf("timeout (simulated) waiting for %s", what)
		}
	}
}

// Convenient MACs for tests.
var (
	MacA = inet.LinkAddr{2, 0, 0, 0, 0, 0xa}
	MacB = inet.LinkAddr{2, 0, 0, 0, 0, 0xb}
	MacC = inet.LinkAddr{2, 0, 0, 0, 0, 0xc}
	MacR = inet.LinkAddr{2, 0, 0, 0, 0, 0x1}
	MacS = inet.LinkAddr{2, 0, 0, 0, 0, 0x2}
)

// IP6 parses an address or fails the test.
func IP6(t testing.TB, s string) inet.IP6 {
	t.Helper()
	a, err := inet.ParseIP6(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
