package key

import (
	"sync/atomic"
	"time"

	"bsd6/internal/inet"
)

// Cache memoizes one resolved outbound security decision in the style
// of route.Cache: a PCB (or tunnel device) embeds one so repeated
// sends to the same peer skip the Key Engine's table scan and policy
// resolution entirely.
//
// Validation is one atomic generation compare: any structural SA table
// change — add, update, delete, flush, hard expiry — bumps Engine.Gen
// and implicitly drops every cached decision in the stack, so a PF_KEY
// storm racing the datapath can only make caches stale, never wrongly
// fresh.  Decisions whose associations carry a hard lifetime also
// record the earliest deadline, since time-based expiry is invisible
// to the generation counter.
//
// What is cached is the consumer's business: the IPsec output path
// stores its full verdict (effective policy plus the resolved
// associations for each service).  The zero value is an empty cache.
// All methods are safe for concurrent use, though a cache is normally
// owned by one PCB.
type Cache struct {
	p atomic.Pointer[cacheEntry]
}

type cacheEntry struct {
	gen      uint64
	src, dst inet.IP6
	deadline time.Time // earliest hard expiry among the cached SAs; zero = none
	v        any
}

// Get returns the cached decision for (src, dst) if it is still
// current: same endpoints, no table change since Fill's generation
// sample, and no cached association past its hard deadline.
func (c *Cache) Get(e *Engine, src, dst inet.IP6) (any, bool) {
	ce := c.p.Load()
	if ce == nil || e == nil || ce.src != src || ce.dst != dst || ce.gen != e.gen.Load() {
		return nil, false
	}
	if !ce.deadline.IsZero() && e.Now().After(ce.deadline) {
		return nil, false
	}
	return ce.v, true
}

// Fill remembers v as the decision for (src, dst).  gen must be the
// Engine.Gen value sampled *before* the resolution began: a table
// change racing the resolution then leaves the cached decision stale
// (gen mismatch on the next Get), never wrongly fresh.  deadline is
// the earliest hard expiry among the resolved associations (zero if
// none expires).
func (c *Cache) Fill(e *Engine, gen uint64, src, dst inet.IP6, deadline time.Time, v any) {
	if e == nil {
		return
	}
	c.p.Store(&cacheEntry{gen: gen, src: src, dst: dst, deadline: deadline, v: v})
}

// Invalidate empties the cache (socket disconnect, policy change).
func (c *Cache) Invalidate() { c.p.Store(nil) }
