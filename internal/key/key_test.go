package key

import (
	"testing"
	"time"

	"bsd6/internal/inet"
)

func ip6(t *testing.T, s string) inet.IP6 {
	t.Helper()
	a, err := inet.ParseIP6(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mkSA(spi uint32, dst inet.IP6, p SecProto) *SA {
	return &SA{SPI: spi, Dst: dst, Proto: p, AuthAlg: "keyed-md5", AuthKey: []byte("k")}
}

func TestAddGetDelete(t *testing.T) {
	e := NewEngine()
	dst := ip6(t, "2001:db8::2")
	sa := mkSA(0x100, dst, ProtoAH)
	if err := e.Add(sa); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(mkSA(0x100, dst, ProtoAH)); err != ErrExists {
		t.Fatalf("duplicate add: %v", err)
	}
	got, ok := e.GetBySPI(0x100, dst, ProtoAH)
	if !ok || got != sa {
		t.Fatal("GetBySPI")
	}
	if _, ok := e.GetBySPI(0x101, dst, ProtoAH); ok {
		t.Fatal("wrong SPI matched")
	}
	if _, ok := e.GetBySPI(0x100, dst, ProtoESPTransport); ok {
		t.Fatal("wrong proto matched")
	}
	if err := e.Delete(0x100, dst, ProtoAH); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(0x100, dst, ProtoAH); err != ErrNoAssoc {
		t.Fatal("double delete")
	}
}

func TestSPIZeroReserved(t *testing.T) {
	e := NewEngine()
	if err := e.Add(mkSA(0, ip6(t, "::1"), ProtoAH)); err == nil {
		t.Fatal("SPI 0 accepted")
	}
}

func TestGetBySocketShared(t *testing.T) {
	e := NewEngine()
	src, dst := ip6(t, "2001:db8::1"), ip6(t, "2001:db8::2")
	sa := mkSA(0x200, dst, ProtoESPTransport)
	e.Add(sa)
	got, err := e.GetBySocket(src, dst, ProtoESPTransport, nil, false)
	if err != nil || got != sa {
		t.Fatalf("shared lookup: %v %v", got, err)
	}
	// Wrong destination misses.
	if _, err := e.GetBySocket(src, ip6(t, "2001:db8::3"), ProtoESPTransport, nil, false); err != ErrNoAssoc {
		t.Fatalf("miss: %v", err)
	}
}

func TestGetBySocketSrcFilter(t *testing.T) {
	e := NewEngine()
	dst := ip6(t, "2001:db8::2")
	sa := mkSA(0x300, dst, ProtoAH)
	sa.Src = ip6(t, "2001:db8::1")
	e.Add(sa)
	if _, err := e.GetBySocket(ip6(t, "2001:db8::9"), dst, ProtoAH, nil, false); err == nil {
		t.Fatal("src-bound SA matched wrong source")
	}
	if got, err := e.GetBySocket(ip6(t, "2001:db8::1"), dst, ProtoAH, nil, false); err != nil || got != sa {
		t.Fatal("src-bound SA missed right source")
	}
}

func TestUniqueSocketKeys(t *testing.T) {
	// §6.1 level 3 and §3.3: "The current implementation does support
	// both shared (i.e. host-oriented) keys and also unique (i.e.
	// socket-oriented) keys."
	e := NewEngine()
	dst := ip6(t, "2001:db8::2")
	shared := mkSA(0x400, dst, ProtoAH)
	e.Add(shared)
	sock1, sock2 := "socket-1", "socket-2"
	bound := mkSA(0x401, dst, ProtoAH)
	bound.Unique = true
	bound.Socket = sock1
	e.Add(bound)

	// wantUnique: only the bound SA for the right socket qualifies.
	got, err := e.GetBySocket(inet.IP6{}, dst, ProtoAH, sock1, true)
	if err != nil || got != bound {
		t.Fatalf("unique lookup: %v %v", got, err)
	}
	if _, err := e.GetBySocket(inet.IP6{}, dst, ProtoAH, sock2, true); err != ErrNoAssoc {
		t.Fatalf("foreign socket got a unique SA: %v", err)
	}
	// Shared lookup prefers the socket's own bound SA, falls back to
	// shared.
	got, _ = e.GetBySocket(inet.IP6{}, dst, ProtoAH, sock1, false)
	if got != bound {
		t.Fatal("socket-bound SA not preferred")
	}
	got, _ = e.GetBySocket(inet.IP6{}, dst, ProtoAH, sock2, false)
	if got != shared {
		t.Fatal("shared fallback failed")
	}
}

func TestAcquireFlow(t *testing.T) {
	e := NewEngine()
	now := time.Unix(1000, 0)
	e.Now = func() time.Time { return now }
	dst := ip6(t, "2001:db8::2")

	// No daemon: ErrNoAssoc (surfaces as EIPSEC, §3.3).
	if _, err := e.GetBySocket(inet.IP6{}, dst, ProtoAH, nil, false); err != ErrNoAssoc {
		t.Fatalf("no daemon: %v", err)
	}

	// Daemon registers: lookup sends ACQUIRE and reports delayed.
	daemon := e.Open()
	defer daemon.Close()
	daemon.Send(Message{Type: MsgRegister})
	if _, err := e.GetBySocket(inet.IP6{}, dst, ProtoAH, nil, false); err != ErrAcquireDelayed {
		t.Fatalf("with daemon: %v", err)
	}
	select {
	case m := <-daemon.C:
		if m.Type != MsgAcquire || m.SA.Dst != dst || m.SA.Proto != ProtoAH {
			t.Fatalf("acquire message: %+v", m)
		}
	default:
		t.Fatal("no ACQUIRE delivered")
	}
	// Duplicate lookups within the window do not re-ACQUIRE.
	e.GetBySocket(inet.IP6{}, dst, ProtoAH, nil, false)
	if len(daemon.C) != 0 {
		t.Fatal("duplicate ACQUIRE")
	}
	// The daemon answers with an Add; the next lookup succeeds.
	rep := daemon.Send(Message{Type: MsgAdd, SA: mkSA(0x999, dst, ProtoAH)})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if sa, err := e.GetBySocket(inet.IP6{}, dst, ProtoAH, nil, false); err != nil || sa.SPI != 0x999 {
		t.Fatalf("post-add lookup: %v %v", sa, err)
	}
}

func TestLifetimes(t *testing.T) {
	e := NewEngine()
	now := time.Unix(1000, 0)
	e.Now = func() time.Time { return now }
	dst := ip6(t, "2001:db8::2")
	sa := mkSA(0x500, dst, ProtoESPTransport)
	sa.SoftLife = 10 * time.Second
	sa.HardLife = 20 * time.Second
	e.Add(sa)

	daemon := e.Open()
	defer daemon.Close()
	daemon.Register()

	// Soft expiry notifies but keeps the SA usable.
	now = now.Add(11 * time.Second)
	e.SlowTimo()
	m := <-daemon.C
	if m.Type != MsgExpire || m.Hard {
		t.Fatalf("soft expire: %+v", m)
	}
	if _, ok := e.GetBySPI(0x500, dst, ProtoESPTransport); !ok {
		t.Fatal("soft-expired SA unusable")
	}
	// Soft expiry fires once.
	now = now.Add(time.Second)
	e.SlowTimo()
	if len(daemon.C) != 0 {
		t.Fatal("duplicate soft expire")
	}
	// Hard expiry removes it.
	now = now.Add(10 * time.Second)
	e.SlowTimo()
	m = <-daemon.C
	if m.Type != MsgExpire || !m.Hard {
		t.Fatalf("hard expire: %+v", m)
	}
	if _, ok := e.GetBySPI(0x500, dst, ProtoESPTransport); ok {
		t.Fatal("hard-expired SA still usable")
	}
}

func TestExpiredSANotReturnedBeforeTimo(t *testing.T) {
	e := NewEngine()
	now := time.Unix(1000, 0)
	e.Now = func() time.Time { return now }
	dst := ip6(t, "2001:db8::2")
	sa := mkSA(0x600, dst, ProtoAH)
	sa.HardLife = 5 * time.Second
	e.Add(sa)
	now = now.Add(10 * time.Second)
	if _, ok := e.GetBySPI(0x600, dst, ProtoAH); ok {
		t.Fatal("expired SA returned by SPI")
	}
	if _, err := e.GetBySocket(inet.IP6{}, dst, ProtoAH, nil, false); err == nil {
		t.Fatal("expired SA returned by socket")
	}
}

func TestPFKeySocketOps(t *testing.T) {
	e := NewEngine()
	s := e.Open()
	defer s.Close()
	dst := ip6(t, "2001:db8::2")

	rep := s.Send(Message{Type: MsgAdd, SA: mkSA(1, dst, ProtoAH)})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	rep = s.Send(Message{Type: MsgGet, SA: &SA{SPI: 1, Dst: dst, Proto: ProtoAH}})
	if rep.Err != nil || rep.SA.SPI != 1 {
		t.Fatalf("get: %+v", rep)
	}
	s.Send(Message{Type: MsgAdd, SA: mkSA(2, dst, ProtoESPTransport)})
	rep = s.Send(Message{Type: MsgDump})
	if len(rep.Dump) != 2 {
		t.Fatalf("dump: %d", len(rep.Dump))
	}
	rep = s.Send(Message{Type: MsgUpdate, SA: mkSA(1, dst, ProtoAH)})
	if rep.Err != nil {
		t.Fatal("update failed")
	}
	rep = s.Send(Message{Type: MsgUpdate, SA: mkSA(9, dst, ProtoAH)})
	if rep.Err != ErrNoAssoc {
		t.Fatal("update of absent SA succeeded")
	}
	rep = s.Send(Message{Type: MsgDelete, SA: &SA{SPI: 1, Dst: dst, Proto: ProtoAH}})
	if rep.Err != nil {
		t.Fatal("delete failed")
	}
	s.Send(Message{Type: MsgFlush})
	rep = s.Send(Message{Type: MsgDump})
	if len(rep.Dump) != 0 {
		t.Fatal("flush left entries")
	}
	// Unsupported type errors.
	rep = s.Send(Message{Type: MsgAcquire})
	if rep.Err == nil {
		t.Fatal("client-sent ACQUIRE accepted")
	}
}

func TestTableChangeEchoes(t *testing.T) {
	// Every PF_KEY socket sees table changes, like routing socket
	// listeners see route changes.
	e := NewEngine()
	watcher := e.Open()
	defer watcher.Close()
	actor := e.Open()
	defer actor.Close()
	dst := ip6(t, "2001:db8::2")
	actor.Send(Message{Type: MsgAdd, SA: mkSA(7, dst, ProtoAH)})
	m := <-watcher.C
	if m.Type != MsgAdd || m.SA.SPI != 7 {
		t.Fatalf("echo: %+v", m)
	}
	// Unregistered sockets do NOT get acquires.
	e.GetBySocket(inet.IP6{}, ip6(t, "2001:db8::9"), ProtoAH, nil, false)
	select {
	case m := <-watcher.C:
		t.Fatalf("unregistered socket got %v", m.Type)
	default:
	}
}

func TestClosedSocketDropped(t *testing.T) {
	e := NewEngine()
	s := e.Open()
	s.Register()
	s.Close()
	// No daemon remains: lookups return ErrNoAssoc, not delayed.
	if _, err := e.GetBySocket(inet.IP6{}, ip6(t, "::2"), ProtoAH, nil, false); err != ErrNoAssoc {
		t.Fatalf("closed daemon still counted: %v", err)
	}
}
