// Package key implements the Key Engine (§3.1) and the PF_KEY key
// management socket (§6.2).
//
// "Security associations are stored in a table inside the kernel.  A
// module called the Key Engine controls access to the table."  Kernel
// services (the IPsec module) obtain associations for inbound packets
// by SPI (getassocbyspi) and for outbound packets by socket/destination
// (getassocbysocket).  User-level key management — whether an automatic
// daemon like Photuris or the manual key(8) tool — talks to the engine
// over PF_KEY, a message interface modeled on the routing socket, so
// that "the key management system [is] completely decoupled from the IP
// security implementation" and can be replaced by installing a new
// daemon, with no kernel rebuild.
package key

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/stat"
)

// SecProto identifies which security service an association keys.
type SecProto int

const (
	ProtoAH SecProto = iota + 1
	ProtoESPTransport
	ProtoESPTunnel
)

func (p SecProto) String() string {
	switch p {
	case ProtoAH:
		return "ah"
	case ProtoESPTransport:
		return "esp-transport"
	case ProtoESPTunnel:
		return "esp-tunnel"
	}
	return "secproto?"
}

// SA is a Security Association: "all of the configuration data for a
// particular secure session between two or more systems" (§3.1).
// Associations are one-way from source to destination (so a telnet
// session needs two) in order to support multicast as well as unicast.
type SA struct {
	SPI      uint32
	Src, Dst inet.IP6
	Proto    SecProto

	// Algorithm selectors index the algorithm switches in the ipsec
	// package (§3.6).
	AuthAlg string
	AuthKey []byte
	EncAlg  string
	EncKey  []byte

	// Sensitivity is the session's level (e.g. Unclassified, Secret).
	Sensitivity string

	// SelDst/SelPlen form a destination selector for tunnel-mode
	// associations whose other end is a security *gateway*: traffic to
	// any address under the selector prefix is wrapped and carried to
	// Dst (the gateway), which decapsulates and forwards.  Zero SelPlen
	// means the association only matches traffic to Dst itself
	// (host-to-host tunnels).
	SelDst  inet.IP6
	SelPlen int

	// Unique associations belong to a single socket (security level 3,
	// §6.1: "outbound packets use a security association unique to this
	// socket").
	Unique bool
	Socket any

	// Lifetimes. Soft expiry asks key management for a replacement;
	// hard expiry removes the association. Zero means no limit.
	AddedAt  time.Time
	SoftLife time.Duration
	HardLife time.Duration

	// Usage counters. Updated atomically: per-packet lookups charge
	// them under the engine's shared (read) lock.
	UseCount  uint64
	ByteCount uint64

	softSent bool // soft-expire notification already emitted
}

func (sa *SA) String() string {
	return fmt.Sprintf("SA{spi=%#x %s %s->%s auth=%s enc=%s}", sa.SPI, sa.Proto, sa.Src, sa.Dst, sa.AuthAlg, sa.EncAlg)
}

// Errors from the Key Engine.
var (
	ErrNoAssoc = errors.New("key: no security association")
	// ErrAcquireDelayed reports that no association exists but a key
	// management daemon has been asked for one (§3.3: "the Key Engine
	// sends a Request message to that daemon and informs the output
	// policy function that the Security Association has been delayed").
	ErrAcquireDelayed = errors.New("key: security association delayed (acquire sent)")
	ErrExists         = errors.New("key: association already exists")
)

// Engine is the in-kernel Security Association table plus the PF_KEY
// plumbing.  Per-packet lookups (GetBySPI, GetBySocket hits) take the
// lock shared so concurrent secured flows do not serialize on the SA
// table; table changes and the acquire path take it exclusive.
type Engine struct {
	mu    sync.RWMutex
	sas   map[saKey]*SA
	socks []*Socket
	acq   map[acqKey]time.Time // outstanding acquires, rate-limited
	seq   uint32

	// Now is the clock; tests may replace it.
	Now func() time.Time
	// AcquireWindow suppresses duplicate ACQUIREs for a destination.
	AcquireWindow time.Duration

	Stats Stats
}

// Stats counts Key Engine events.
type Stats struct {
	Adds        stat.Counter
	Deletes     stat.Counter
	Lookups     stat.Counter
	Misses      stat.Counter
	Acquires    stat.Counter
	SoftExpires stat.Counter
	HardExpires stat.Counter
}

type saKey struct {
	spi   uint32
	dst   inet.IP6
	proto SecProto
}

type acqKey struct {
	dst   inet.IP6
	proto SecProto
}

// NewEngine returns an empty Key Engine.
func NewEngine() *Engine {
	return &Engine{
		sas:           make(map[saKey]*SA),
		acq:           make(map[acqKey]time.Time),
		Now:           time.Now,
		AcquireWindow: 10 * time.Second,
	}
}

// Add installs an association. An existing (SPI, dst, proto) entry is
// an error; use Update to replace keys.
func (e *Engine) Add(sa *SA) error {
	if sa.SPI == 0 {
		return errors.New("key: SPI 0 is reserved")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	k := saKey{sa.SPI, sa.Dst, sa.Proto}
	if _, ok := e.sas[k]; ok {
		return ErrExists
	}
	if sa.AddedAt.IsZero() {
		sa.AddedAt = e.Now()
	}
	e.sas[k] = sa
	e.Stats.Adds.Inc()
	delete(e.acq, acqKey{sa.Dst, sa.Proto}) // acquire satisfied
	e.notifyLocked(Message{Type: MsgAdd, SA: sa})
	return nil
}

// Update replaces an existing association's keys/lifetimes.
func (e *Engine) Update(sa *SA) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := saKey{sa.SPI, sa.Dst, sa.Proto}
	if _, ok := e.sas[k]; !ok {
		return ErrNoAssoc
	}
	if sa.AddedAt.IsZero() {
		sa.AddedAt = e.Now()
	}
	e.sas[k] = sa
	e.notifyLocked(Message{Type: MsgUpdate, SA: sa})
	return nil
}

// Delete removes an association.
func (e *Engine) Delete(spi uint32, dst inet.IP6, proto SecProto) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := saKey{spi, dst, proto}
	sa, ok := e.sas[k]
	if !ok {
		return ErrNoAssoc
	}
	delete(e.sas, k)
	e.Stats.Deletes.Inc()
	e.notifyLocked(Message{Type: MsgDelete, SA: sa})
	return nil
}

// Flush removes every association.
func (e *Engine) Flush() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sas = make(map[saKey]*SA)
	e.notifyLocked(Message{Type: MsgFlush})
}

// Dump returns a snapshot of all associations.
func (e *Engine) Dump() []*SA {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*SA, 0, len(e.sas))
	for _, sa := range e.sas {
		out = append(out, sa)
	}
	return out
}

// expired reports hard expiry (association unusable).
func (e *Engine) expired(sa *SA, now time.Time) bool {
	return sa.HardLife != 0 && now.After(sa.AddedAt.Add(sa.HardLife))
}

// GetBySPI is getassocbyspi (§3.4): locate the association for an
// inbound packet from the SPI in its cleartext header.
func (e *Engine) GetBySPI(spi uint32, dst inet.IP6, proto SecProto) (*SA, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.Stats.Lookups.Inc()
	sa, ok := e.sas[saKey{spi, dst, proto}]
	if !ok || e.expired(sa, e.Now()) {
		e.Stats.Misses.Inc()
		return nil, false
	}
	atomic.AddUint64(&sa.UseCount, 1)
	return sa, true
}

// GetBySocket is getassocbysocket (§3.3): locate an outbound
// association for (src, dst, service). When wantUnique is set (level
// 3) only an association bound to socket qualifies; otherwise shared
// (host-oriented) associations are used, preferring a socket-bound one
// if present.  With no association, an ACQUIRE is sent to registered
// key management and ErrAcquireDelayed returned; with no key
// management at all, ErrNoAssoc (which surfaces to the user as
// EIPSEC).
func (e *Engine) GetBySocket(src, dst inet.IP6, proto SecProto, socket any, wantUnique bool) (*SA, error) {
	// Hit path under the shared lock; the miss path (which mutates
	// acquire state) retakes the lock exclusive.
	e.mu.RLock()
	e.Stats.Lookups.Inc()
	if sa := e.scanLocked(src, dst, proto, socket, wantUnique); sa != nil {
		atomic.AddUint64(&sa.UseCount, 1)
		e.mu.RUnlock()
		return sa, nil
	}
	e.mu.RUnlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if sa := e.scanLocked(src, dst, proto, socket, wantUnique); sa != nil {
		atomic.AddUint64(&sa.UseCount, 1)
		return sa, nil
	}
	e.Stats.Misses.Inc()
	// No association: ask key management if anyone is listening.
	if e.anyRegisteredLocked() {
		now := e.Now()
		k := acqKey{dst, proto}
		if now.Sub(e.acq[k]) >= e.AcquireWindow {
			e.acq[k] = now
			e.Stats.Acquires.Inc()
			e.seq++
			e.notifyRegisteredLocked(Message{
				Type: MsgAcquire, Seq: e.seq,
				SA: &SA{Src: src, Dst: dst, Proto: proto, Unique: wantUnique, Socket: socket},
			})
		}
		return nil, ErrAcquireDelayed
	}
	return nil, ErrNoAssoc
}

// scanLocked finds the best matching live association; caller holds
// e.mu (shared or exclusive).
func (e *Engine) scanLocked(src, dst inet.IP6, proto SecProto, socket any, wantUnique bool) *SA {
	now := e.Now()
	var shared, bound *SA
	for _, sa := range e.sas {
		if sa.Proto != proto || e.expired(sa, now) {
			continue
		}
		// Direct match on the association's destination, or — for
		// gateway tunnels — on the destination selector prefix.
		if sa.Dst != dst {
			if !(proto == ProtoESPTunnel && sa.SelPlen > 0 && inet.MatchPrefix(dst, sa.SelDst, sa.SelPlen)) {
				continue
			}
		}
		if !sa.Src.IsUnspecified() && !src.IsUnspecified() && sa.Src != src {
			continue
		}
		if sa.Unique {
			if sa.Socket == socket && socket != nil {
				bound = sa
			}
			continue
		}
		if shared == nil {
			shared = sa
		}
	}
	pick := bound
	if pick == nil && !wantUnique {
		pick = shared
	}
	return pick
}

// CountBytes charges traffic against an association's lifetime.
func (e *Engine) CountBytes(sa *SA, n int) {
	atomic.AddUint64(&sa.ByteCount, uint64(n))
}

// SlowTimo expires associations: soft expiry notifies key management
// so a replacement can be negotiated before the hard cutoff removes
// the association.
func (e *Engine) SlowTimo(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for k, sa := range e.sas {
		if sa.HardLife != 0 && now.After(sa.AddedAt.Add(sa.HardLife)) {
			delete(e.sas, k)
			e.Stats.HardExpires.Inc()
			e.notifyRegisteredLocked(Message{Type: MsgExpire, SA: sa, Hard: true})
			continue
		}
		if sa.SoftLife != 0 && !sa.softSent && now.After(sa.AddedAt.Add(sa.SoftLife)) {
			sa.softSent = true
			e.Stats.SoftExpires.Inc()
			e.notifyRegisteredLocked(Message{Type: MsgExpire, SA: sa, Hard: false})
		}
	}
}

//
// PF_KEY socket.
//

// MsgType enumerates PF_KEY message types.
type MsgType int

const (
	MsgAdd MsgType = iota + 1
	MsgUpdate
	MsgDelete
	MsgGet
	MsgAcquire  // kernel -> daemon: need an association
	MsgRegister // daemon -> kernel: I manage keys
	MsgExpire   // kernel -> daemon: association (soft/hard) expired
	MsgFlush
	MsgDump
)

func (t MsgType) String() string {
	switch t {
	case MsgAdd:
		return "SADB_ADD"
	case MsgUpdate:
		return "SADB_UPDATE"
	case MsgDelete:
		return "SADB_DELETE"
	case MsgGet:
		return "SADB_GET"
	case MsgAcquire:
		return "SADB_ACQUIRE"
	case MsgRegister:
		return "SADB_REGISTER"
	case MsgExpire:
		return "SADB_EXPIRE"
	case MsgFlush:
		return "SADB_FLUSH"
	case MsgDump:
		return "SADB_DUMP"
	}
	return "SADB_?"
}

// Message is one PF_KEY message.
type Message struct {
	Type MsgType
	Seq  uint32
	SA   *SA
	Hard bool  // for MsgExpire
	Err  error // set on replies when the operation failed
	Dump []*SA // for MsgDump replies
}

// Socket is an open PF_KEY socket. Like the routing socket it carries
// both synchronous request/reply traffic and asynchronous
// notifications (ACQUIRE, EXPIRE).
type Socket struct {
	e          *Engine
	mu         sync.Mutex
	registered bool
	closed     bool
	// C delivers kernel-originated messages (acquires, expires, and
	// echoes of table changes).
	C chan Message
}

// Open creates a PF_KEY socket on the engine.
func (e *Engine) Open() *Socket {
	s := &Socket{e: e, C: make(chan Message, 64)}
	e.mu.Lock()
	e.socks = append(e.socks, s)
	e.mu.Unlock()
	return s
}

// Close detaches the socket.
func (s *Socket) Close() {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	for i, x := range s.e.socks {
		if x == s {
			s.e.socks = append(s.e.socks[:i], s.e.socks[i+1:]...)
			break
		}
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.C) // senders check closed under s.mu before sending
	}
	s.mu.Unlock()
}

// Register marks this socket as a key management endpoint: it will
// receive ACQUIRE and EXPIRE messages.
func (s *Socket) Register() {
	s.mu.Lock()
	s.registered = true
	s.mu.Unlock()
}

// Send submits a request message and returns the reply synchronously
// (PF_KEY write(2) followed by read(2) of the echo).
func (s *Socket) Send(m Message) Message {
	switch m.Type {
	case MsgAdd:
		return Message{Type: MsgAdd, SA: m.SA, Err: s.e.Add(m.SA)}
	case MsgUpdate:
		return Message{Type: MsgUpdate, SA: m.SA, Err: s.e.Update(m.SA)}
	case MsgDelete:
		if m.SA == nil {
			return Message{Type: MsgDelete, Err: ErrNoAssoc}
		}
		return Message{Type: MsgDelete, SA: m.SA, Err: s.e.Delete(m.SA.SPI, m.SA.Dst, m.SA.Proto)}
	case MsgGet:
		if m.SA == nil {
			return Message{Type: MsgGet, Err: ErrNoAssoc}
		}
		sa, ok := s.e.GetBySPI(m.SA.SPI, m.SA.Dst, m.SA.Proto)
		if !ok {
			return Message{Type: MsgGet, Err: ErrNoAssoc}
		}
		return Message{Type: MsgGet, SA: sa}
	case MsgRegister:
		s.Register()
		return Message{Type: MsgRegister}
	case MsgFlush:
		s.e.Flush()
		return Message{Type: MsgFlush}
	case MsgDump:
		return Message{Type: MsgDump, Dump: s.e.Dump()}
	}
	return Message{Type: m.Type, Err: fmt.Errorf("key: unsupported message %v", m.Type)}
}

// anyRegisteredLocked reports whether a key management daemon is
// listening. Caller holds e.mu.
func (e *Engine) anyRegisteredLocked() bool {
	for _, s := range e.socks {
		s.mu.Lock()
		r := s.registered && !s.closed
		s.mu.Unlock()
		if r {
			return true
		}
	}
	return false
}

// notifyLocked echoes table changes to every PF_KEY socket (as the
// routing socket echoes route changes). Caller holds e.mu.
func (e *Engine) notifyLocked(m Message) {
	for _, s := range e.socks {
		s.mu.Lock()
		if !s.closed {
			select {
			case s.C <- m:
			default:
			}
		}
		s.mu.Unlock()
	}
}

// notifyRegisteredLocked delivers to registered (daemon) sockets only.
func (e *Engine) notifyRegisteredLocked(m Message) {
	for _, s := range e.socks {
		s.mu.Lock()
		if s.registered && !s.closed {
			select {
			case s.C <- m:
			default:
			}
		}
		s.mu.Unlock()
	}
}
