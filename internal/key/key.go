// Package key implements the Key Engine (§3.1) and the PF_KEY key
// management socket (§6.2).
//
// "Security associations are stored in a table inside the kernel.  A
// module called the Key Engine controls access to the table."  Kernel
// services (the IPsec module) obtain associations for inbound packets
// by SPI (getassocbyspi) and for outbound packets by socket/destination
// (getassocbysocket).  User-level key management — whether an automatic
// daemon like Photuris or the manual key(8) tool — talks to the engine
// over PF_KEY, a message interface modeled on the routing socket, so
// that "the key management system [is] completely decoupled from the IP
// security implementation" and can be replaced by installing a new
// daemon, with no kernel rebuild.
//
// Per-packet resolution is lock-light: the inbound SPI lookup reads a
// sharded index under a per-shard read lock (no global lock, no
// allocation), and the outbound resolution is memoized in a PCB-held
// Cache validated by one atomic generation compare — the route.Cache
// discipline applied to the SA table.  Every structural table change
// (add, update, delete, flush, hard expiry) bumps the generation, so a
// PF_KEY storm racing the datapath can only make caches stale, never
// wrongly fresh.
package key

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/stat"
)

// SecProto identifies which security service an association keys.
type SecProto int

// Security services an association can key: the Authentication Header,
// transport-mode ESP, and tunnel-mode ESP (§3.1).
const (
	ProtoAH SecProto = iota + 1
	ProtoESPTransport
	ProtoESPTunnel
)

// String names the service the way key(8) would print it.
func (p SecProto) String() string {
	switch p {
	case ProtoAH:
		return "ah"
	case ProtoESPTransport:
		return "esp-transport"
	case ProtoESPTunnel:
		return "esp-tunnel"
	}
	return "secproto?"
}

// SA is a Security Association: "all of the configuration data for a
// particular secure session between two or more systems" (§3.1).
// Associations are one-way from source to destination (so a telnet
// session needs two) in order to support multicast as well as unicast.
type SA struct {
	// SPI is the Security Parameters Index carried in cleartext on
	// every AH/ESP packet; (SPI, Dst, Proto) names the association.
	SPI uint32
	// Src and Dst are the association's endpoints.
	Src, Dst inet.IP6
	// Proto is the security service this association keys.
	Proto SecProto

	// AuthAlg/AuthKey and EncAlg/EncKey select entries in the ipsec
	// package's algorithm switches (§3.6) and supply their key material.
	AuthAlg string
	AuthKey []byte
	EncAlg  string
	EncKey  []byte

	// Sensitivity is the session's level (e.g. Unclassified, Secret).
	Sensitivity string

	// SelDst/SelPlen form a destination selector for tunnel-mode
	// associations whose other end is a security *gateway*: traffic to
	// any address under the selector prefix is wrapped and carried to
	// Dst (the gateway), which decapsulates and forwards.  Zero SelPlen
	// means the association only matches traffic to Dst itself
	// (host-to-host tunnels).
	SelDst  inet.IP6
	SelPlen int

	// Unique associations belong to a single socket (security level 3,
	// §6.1: "outbound packets use a security association unique to this
	// socket").
	Unique bool
	// Socket is the owning socket of a Unique association.
	Socket any

	// AddedAt stamps installation; SoftLife/HardLife are lifetimes
	// measured from it on the engine's clock.  Soft expiry asks key
	// management for a replacement; hard expiry removes the
	// association.  Zero means no limit.
	AddedAt  time.Time
	SoftLife time.Duration
	HardLife time.Duration

	// UseCount and ByteCount are lifetime usage counters, updated
	// atomically: per-packet lookups charge them without the table lock.
	UseCount  uint64
	ByteCount uint64

	// Per-direction datapath counters, updated atomically by the IPsec
	// transforms; netstat renders them per SA.
	InPkts      uint64
	InBytes     uint64
	OutPkts     uint64
	OutBytes    uint64
	ReplayDrops uint64

	// SeqOut is the outbound sequence counter for transforms that
	// carry one (AEAD ESP, sequenced AH); advance it with NextSeq.
	SeqOut uint64

	// Replay is the inbound anti-replay window, allocated by
	// Engine.Add; nil until the association is installed.
	Replay *Replay

	softSent bool // soft-expire notification already emitted
}

// String renders the association for logs and key(8)-style dumps.
func (sa *SA) String() string {
	return fmt.Sprintf("SA{spi=%#x %s %s->%s auth=%s enc=%s}", sa.SPI, sa.Proto, sa.Src, sa.Dst, sa.AuthAlg, sa.EncAlg)
}

// NextSeq atomically advances and returns the outbound sequence
// number; the first packet of an association carries sequence 1.
func (sa *SA) NextSeq() uint64 {
	return atomic.AddUint64(&sa.SeqOut, 1)
}

// CountOut charges one outbound packet of n bytes against the
// association's per-direction counters and lifetime byte count.
func (sa *SA) CountOut(n int) {
	atomic.AddUint64(&sa.OutPkts, 1)
	atomic.AddUint64(&sa.OutBytes, uint64(n))
	atomic.AddUint64(&sa.ByteCount, uint64(n))
}

// CountIn charges one inbound packet of n bytes.
func (sa *SA) CountIn(n int) {
	atomic.AddUint64(&sa.InPkts, 1)
	atomic.AddUint64(&sa.InBytes, uint64(n))
	atomic.AddUint64(&sa.ByteCount, uint64(n))
}

// Errors from the Key Engine.
var (
	// ErrNoAssoc reports that no matching association exists and no key
	// management daemon is registered to create one.
	ErrNoAssoc = errors.New("key: no security association")
	// ErrAcquireDelayed reports that no association exists but a key
	// management daemon has been asked for one (§3.3: "the Key Engine
	// sends a Request message to that daemon and informs the output
	// policy function that the Security Association has been delayed").
	ErrAcquireDelayed = errors.New("key: security association delayed (acquire sent)")
	// ErrExists reports an Add colliding with an installed association.
	ErrExists = errors.New("key: association already exists")
)

// spiShardCount is the size of the sharded inbound SPI index.  64
// shards (indexed by the SPI's low bits) keep concurrent inbound flows
// off each other's locks without measurable memory cost.
const spiShardCount = 64

// spiShard is one slot of the inbound index: a per-shard map guarded
// by a per-shard RWMutex, so GetBySPI never touches the engine lock.
type spiShard struct {
	mu sync.RWMutex
	m  map[saKey]*SA
}

// staleRingSize bounds the recently-deleted ring used to classify
// inbound SPI misses as stale (a just-removed association) versus
// never-known — the SYN-cookie-style "we used to know you" signal.
const staleRingSize = 512

// Engine is the in-kernel Security Association table plus the PF_KEY
// plumbing.  The flat table and its scan live under e.mu; the
// per-packet paths avoid it entirely (sharded SPI index inbound, the
// generation-validated Cache outbound).
type Engine struct {
	mu    sync.RWMutex
	sas   map[saKey]*SA
	byDst map[dstKey][]*SA // exact-destination outbound index
	sel   []*SA            // tunnel SAs with a destination selector
	socks []*Socket
	acq   map[acqKey]time.Time // outstanding acquires, rate-limited
	seq   uint32

	gen    atomic.Uint64 // bumped on every structural table change
	shards [spiShardCount]spiShard

	// Recently-deleted associations, for stale-SPI classification.
	delMu   sync.Mutex
	delSet  map[saKey]struct{}
	delRing [staleRingSize]saKey
	delLen  int
	delPos  int

	// Now is the clock; the stack wires it to the virtual clock, tests
	// may replace it.  SA lifetimes are measured on this clock, never
	// on the wall clock.
	Now func() time.Time
	// AcquireWindow suppresses duplicate ACQUIREs for a destination.
	AcquireWindow time.Duration

	// Stats counts Key Engine events.
	Stats Stats
}

// Stats counts Key Engine events.
type Stats struct {
	Adds        stat.Counter
	Deletes     stat.Counter
	Lookups     stat.Counter
	Misses      stat.Counter
	Acquires    stat.Counter
	SoftExpires stat.Counter
	HardExpires stat.Counter
}

type saKey struct {
	spi   uint32
	dst   inet.IP6
	proto SecProto
}

type dstKey struct {
	dst   inet.IP6
	proto SecProto
}

type acqKey struct {
	dst   inet.IP6
	proto SecProto
}

// NewEngine returns an empty Key Engine.
func NewEngine() *Engine {
	e := &Engine{
		sas:           make(map[saKey]*SA),
		byDst:         make(map[dstKey][]*SA),
		acq:           make(map[acqKey]time.Time),
		delSet:        make(map[saKey]struct{}),
		Now:           time.Now,
		AcquireWindow: 10 * time.Second,
	}
	for i := range e.shards {
		e.shards[i].m = make(map[saKey]*SA)
	}
	return e
}

// Gen returns the table generation.  Any structural change — add,
// update, delete, flush, hard expiry — bumps it, implicitly dropping
// every Cache in the stack on its next validity compare.
func (e *Engine) Gen() uint64 { return e.gen.Load() }

// shardFor returns the inbound index shard holding spi.
func (e *Engine) shardFor(spi uint32) *spiShard {
	return &e.shards[spi%spiShardCount]
}

// indexAddLocked inserts sa into the inbound and outbound indexes.
// Caller holds e.mu exclusive.
func (e *Engine) indexAddLocked(k saKey, sa *SA) {
	sh := e.shardFor(k.spi)
	sh.mu.Lock()
	sh.m[k] = sa
	sh.mu.Unlock()
	dk := dstKey{k.dst, k.proto}
	e.byDst[dk] = append(e.byDst[dk], sa)
	if sa.Proto == ProtoESPTunnel && sa.SelPlen > 0 {
		e.sel = append(e.sel, sa)
	}
}

// indexDelLocked removes the association stored under k from the
// inbound and outbound indexes.  Caller holds e.mu exclusive.
func (e *Engine) indexDelLocked(k saKey, sa *SA) {
	sh := e.shardFor(k.spi)
	sh.mu.Lock()
	delete(sh.m, k)
	sh.mu.Unlock()
	dk := dstKey{k.dst, k.proto}
	l := e.byDst[dk]
	for i, x := range l {
		if x == sa {
			e.byDst[dk] = append(l[:i], l[i+1:]...)
			break
		}
	}
	if len(e.byDst[dk]) == 0 {
		delete(e.byDst, dk)
	}
	if sa.Proto == ProtoESPTunnel && sa.SelPlen > 0 {
		for i, x := range e.sel {
			if x == sa {
				e.sel = append(e.sel[:i], e.sel[i+1:]...)
				break
			}
		}
	}
}

// recordDeleted remembers k in the bounded recently-deleted ring.
func (e *Engine) recordDeleted(k saKey) {
	e.delMu.Lock()
	if e.delLen == staleRingSize {
		delete(e.delSet, e.delRing[e.delPos])
	} else {
		e.delLen++
	}
	e.delRing[e.delPos] = k
	e.delPos = (e.delPos + 1) % staleRingSize
	e.delSet[k] = struct{}{}
	e.delMu.Unlock()
}

// recentlyDeleted reports whether k was removed within the ring's
// memory — the inbound path's stale-versus-unknown discriminator.
func (e *Engine) recentlyDeleted(k saKey) bool {
	e.delMu.Lock()
	_, ok := e.delSet[k]
	e.delMu.Unlock()
	return ok
}

// Add installs an association. An existing (SPI, dst, proto) entry is
// an error; use Update to replace keys.  Add allocates the inbound
// replay window and stamps AddedAt from the engine clock.
func (e *Engine) Add(sa *SA) error {
	if sa.SPI == 0 {
		return errors.New("key: SPI 0 is reserved")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	k := saKey{sa.SPI, sa.Dst, sa.Proto}
	if _, ok := e.sas[k]; ok {
		return ErrExists
	}
	if sa.AddedAt.IsZero() {
		sa.AddedAt = e.Now()
	}
	if sa.Replay == nil {
		sa.Replay = &Replay{}
	}
	e.sas[k] = sa
	e.indexAddLocked(k, sa)
	e.gen.Add(1)
	e.Stats.Adds.Inc()
	delete(e.acq, acqKey{sa.Dst, sa.Proto}) // acquire satisfied
	e.notifyLocked(Message{Type: MsgAdd, SA: sa})
	return nil
}

// Update replaces an existing association's keys/lifetimes.  The new
// association object supersedes the old everywhere at once: the
// generation bump drops any cached pointer to the old one.
func (e *Engine) Update(sa *SA) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := saKey{sa.SPI, sa.Dst, sa.Proto}
	old, ok := e.sas[k]
	if !ok {
		return ErrNoAssoc
	}
	if sa.AddedAt.IsZero() {
		sa.AddedAt = e.Now()
	}
	// SADB_UPDATE of a live association is a rekey in place: sequence
	// state must survive the swap.  A sender restarting at 1 would
	// re-use nonces, and a receiver with an emptied window would first
	// slide to a still-in-flight old sequence number and then reject
	// the sender's fresh low ones as replays — poisoning the stream it
	// was meant to protect.
	atomic.StoreUint64(&sa.SeqOut, atomic.LoadUint64(&old.SeqOut))
	if sa.Replay == nil {
		sa.Replay = old.Replay
	}
	if sa.Replay == nil {
		sa.Replay = &Replay{}
	}
	// Traffic accounting continues across the update: it describes the
	// association, not the SA object carrying it.
	for _, c := range [][2]*uint64{
		{&sa.InPkts, &old.InPkts}, {&sa.InBytes, &old.InBytes},
		{&sa.OutPkts, &old.OutPkts}, {&sa.OutBytes, &old.OutBytes},
		{&sa.ReplayDrops, &old.ReplayDrops},
	} {
		atomic.AddUint64(c[0], atomic.LoadUint64(c[1]))
	}
	e.indexDelLocked(k, old)
	e.sas[k] = sa
	e.indexAddLocked(k, sa)
	e.gen.Add(1)
	e.notifyLocked(Message{Type: MsgUpdate, SA: sa})
	return nil
}

// Delete removes an association.
func (e *Engine) Delete(spi uint32, dst inet.IP6, proto SecProto) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := saKey{spi, dst, proto}
	sa, ok := e.sas[k]
	if !ok {
		return ErrNoAssoc
	}
	delete(e.sas, k)
	e.indexDelLocked(k, sa)
	e.recordDeleted(k)
	e.gen.Add(1)
	e.Stats.Deletes.Inc()
	e.notifyLocked(Message{Type: MsgDelete, SA: sa})
	return nil
}

// Flush removes every association.
func (e *Engine) Flush() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for k := range e.sas {
		e.recordDeleted(k)
	}
	e.sas = make(map[saKey]*SA)
	e.byDst = make(map[dstKey][]*SA)
	e.sel = nil
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		sh.m = make(map[saKey]*SA)
		sh.mu.Unlock()
	}
	e.gen.Add(1)
	e.notifyLocked(Message{Type: MsgFlush})
}

// Dump returns a snapshot of all associations.
func (e *Engine) Dump() []*SA {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*SA, 0, len(e.sas))
	for _, sa := range e.sas {
		out = append(out, sa)
	}
	return out
}

// expired reports hard expiry (association unusable) on the engine
// clock.
func (e *Engine) expired(sa *SA, now time.Time) bool {
	return sa.HardLife != 0 && now.After(sa.AddedAt.Add(sa.HardLife))
}

// SPIResult classifies an inbound SPI lookup.
type SPIResult int

// Inbound lookup outcomes: a live association, an SPI this engine
// never knew, one past its hard lifetime but not yet reaped, and one
// recently deleted (the typed "stale SA" miss a rekey race produces).
const (
	SPIHit SPIResult = iota
	SPIMiss
	SPIExpired
	SPIStale
)

// String names the outcome for drop attribution.
func (r SPIResult) String() string {
	switch r {
	case SPIHit:
		return "hit"
	case SPIMiss:
		return "miss"
	case SPIExpired:
		return "expired"
	case SPIStale:
		return "stale"
	}
	return "spi?"
}

// LookupSPI is the datapath form of getassocbyspi (§3.4): it resolves
// an inbound packet's cleartext SPI against the sharded index — one
// per-shard read lock, no global lock, no allocation — and classifies
// misses so the caller can charge a typed drop reason.
func (e *Engine) LookupSPI(spi uint32, dst inet.IP6, proto SecProto) (*SA, SPIResult) {
	e.Stats.Lookups.Inc()
	k := saKey{spi, dst, proto}
	sh := e.shardFor(spi)
	sh.mu.RLock()
	sa := sh.m[k]
	sh.mu.RUnlock()
	if sa == nil {
		e.Stats.Misses.Inc()
		if e.recentlyDeleted(k) {
			return nil, SPIStale
		}
		return nil, SPIMiss
	}
	if e.expired(sa, e.Now()) {
		e.Stats.Misses.Inc()
		return nil, SPIExpired
	}
	atomic.AddUint64(&sa.UseCount, 1)
	return sa, SPIHit
}

// GetBySPI is getassocbyspi (§3.4): locate the association for an
// inbound packet from the SPI in its cleartext header.
func (e *Engine) GetBySPI(spi uint32, dst inet.IP6, proto SecProto) (*SA, bool) {
	sa, res := e.LookupSPI(spi, dst, proto)
	return sa, res == SPIHit
}

// GetBySocket is getassocbysocket (§3.3): locate an outbound
// association for (src, dst, service). When wantUnique is set (level
// 3) only an association bound to socket qualifies; otherwise shared
// (host-oriented) associations are used, preferring a socket-bound one
// if present.  With no association, an ACQUIRE is sent to registered
// key management and ErrAcquireDelayed returned; with no key
// management at all, ErrNoAssoc (which surfaces to the user as
// EIPSEC).
func (e *Engine) GetBySocket(src, dst inet.IP6, proto SecProto, socket any, wantUnique bool) (*SA, error) {
	// Hit path under the shared lock; the miss path (which mutates
	// acquire state) retakes the lock exclusive.
	e.mu.RLock()
	e.Stats.Lookups.Inc()
	if sa := e.scanLocked(src, dst, proto, socket, wantUnique); sa != nil {
		atomic.AddUint64(&sa.UseCount, 1)
		e.mu.RUnlock()
		return sa, nil
	}
	e.mu.RUnlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if sa := e.scanLocked(src, dst, proto, socket, wantUnique); sa != nil {
		atomic.AddUint64(&sa.UseCount, 1)
		return sa, nil
	}
	e.Stats.Misses.Inc()
	// No association: ask key management if anyone is listening.
	if e.anyRegisteredLocked() {
		now := e.Now()
		k := acqKey{dst, proto}
		if now.Sub(e.acq[k]) >= e.AcquireWindow {
			e.acq[k] = now
			e.Stats.Acquires.Inc()
			e.seq++
			e.notifyRegisteredLocked(Message{
				Type: MsgAcquire, Seq: e.seq,
				SA: &SA{Src: src, Dst: dst, Proto: proto, Unique: wantUnique, Socket: socket},
			})
		}
		return nil, ErrAcquireDelayed
	}
	return nil, ErrNoAssoc
}

// scanLocked finds the best matching live association; caller holds
// e.mu (shared or exclusive).  Candidates come from the
// exact-destination index plus the (small) selector list, so the cost
// scales with the destination's associations, not the table.
func (e *Engine) scanLocked(src, dst inet.IP6, proto SecProto, socket any, wantUnique bool) *SA {
	now := e.Now()
	var shared, bound *SA
	consider := func(sa *SA, selector bool) {
		if sa.Proto != proto || e.expired(sa, now) {
			return
		}
		// Direct match on the association's destination, or — for
		// gateway tunnels — on the destination selector prefix.
		if sa.Dst != dst {
			if !(selector && inet.MatchPrefix(dst, sa.SelDst, sa.SelPlen)) {
				return
			}
		}
		if !sa.Src.IsUnspecified() && !src.IsUnspecified() && sa.Src != src {
			return
		}
		if sa.Unique {
			if sa.Socket == socket && socket != nil && bound == nil {
				bound = sa
			}
			return
		}
		if shared == nil {
			shared = sa
		}
	}
	for _, sa := range e.byDst[dstKey{dst, proto}] {
		consider(sa, false)
	}
	if proto == ProtoESPTunnel {
		for _, sa := range e.sel {
			if sa.Dst != dst { // exact-dst selector SAs were already seen
				consider(sa, true)
			}
		}
	}
	pick := bound
	if pick == nil && !wantUnique {
		pick = shared
	}
	return pick
}

// CountBytes charges traffic against an association's lifetime.
func (e *Engine) CountBytes(sa *SA, n int) {
	atomic.AddUint64(&sa.ByteCount, uint64(n))
}

// SlowTimo expires associations on the engine clock: soft expiry
// notifies key management so a replacement can be negotiated before
// the hard cutoff removes the association.
func (e *Engine) SlowTimo() {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.Now()
	for k, sa := range e.sas {
		if sa.HardLife != 0 && now.After(sa.AddedAt.Add(sa.HardLife)) {
			delete(e.sas, k)
			e.indexDelLocked(k, sa)
			e.recordDeleted(k)
			e.gen.Add(1)
			e.Stats.HardExpires.Inc()
			e.notifyRegisteredLocked(Message{Type: MsgExpire, SA: sa, Hard: true})
			continue
		}
		if sa.SoftLife != 0 && !sa.softSent && now.After(sa.AddedAt.Add(sa.SoftLife)) {
			sa.softSent = true
			e.Stats.SoftExpires.Inc()
			e.notifyRegisteredLocked(Message{Type: MsgExpire, SA: sa, Hard: false})
		}
	}
}

//
// PF_KEY socket.
//

// MsgType enumerates PF_KEY message types.
type MsgType int

// PF_KEY message types, named after their SADB_* constants.
const (
	MsgAdd MsgType = iota + 1
	MsgUpdate
	MsgDelete
	MsgGet
	MsgAcquire  // kernel -> daemon: need an association
	MsgRegister // daemon -> kernel: I manage keys
	MsgExpire   // kernel -> daemon: association (soft/hard) expired
	MsgFlush
	MsgDump
)

// String names the message type as PF_KEY's SADB_* constant.
func (t MsgType) String() string {
	switch t {
	case MsgAdd:
		return "SADB_ADD"
	case MsgUpdate:
		return "SADB_UPDATE"
	case MsgDelete:
		return "SADB_DELETE"
	case MsgGet:
		return "SADB_GET"
	case MsgAcquire:
		return "SADB_ACQUIRE"
	case MsgRegister:
		return "SADB_REGISTER"
	case MsgExpire:
		return "SADB_EXPIRE"
	case MsgFlush:
		return "SADB_FLUSH"
	case MsgDump:
		return "SADB_DUMP"
	}
	return "SADB_?"
}

// Message is one PF_KEY message.
type Message struct {
	Type MsgType
	Seq  uint32
	SA   *SA
	Hard bool  // for MsgExpire
	Err  error // set on replies when the operation failed
	Dump []*SA // for MsgDump replies
}

// Socket is an open PF_KEY socket. Like the routing socket it carries
// both synchronous request/reply traffic and asynchronous
// notifications (ACQUIRE, EXPIRE).
type Socket struct {
	e          *Engine
	mu         sync.Mutex
	registered bool
	closed     bool
	// C delivers kernel-originated messages (acquires, expires, and
	// echoes of table changes).
	C chan Message
}

// Open creates a PF_KEY socket on the engine.
func (e *Engine) Open() *Socket {
	s := &Socket{e: e, C: make(chan Message, 64)}
	e.mu.Lock()
	e.socks = append(e.socks, s)
	e.mu.Unlock()
	return s
}

// Close detaches the socket.
func (s *Socket) Close() {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	for i, x := range s.e.socks {
		if x == s {
			s.e.socks = append(s.e.socks[:i], s.e.socks[i+1:]...)
			break
		}
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.C) // senders check closed under s.mu before sending
	}
	s.mu.Unlock()
}

// Register marks this socket as a key management endpoint: it will
// receive ACQUIRE and EXPIRE messages.
func (s *Socket) Register() {
	s.mu.Lock()
	s.registered = true
	s.mu.Unlock()
}

// Send submits a request message and returns the reply synchronously
// (PF_KEY write(2) followed by read(2) of the echo).
func (s *Socket) Send(m Message) Message {
	switch m.Type {
	case MsgAdd:
		return Message{Type: MsgAdd, SA: m.SA, Err: s.e.Add(m.SA)}
	case MsgUpdate:
		return Message{Type: MsgUpdate, SA: m.SA, Err: s.e.Update(m.SA)}
	case MsgDelete:
		if m.SA == nil {
			return Message{Type: MsgDelete, Err: ErrNoAssoc}
		}
		return Message{Type: MsgDelete, SA: m.SA, Err: s.e.Delete(m.SA.SPI, m.SA.Dst, m.SA.Proto)}
	case MsgGet:
		if m.SA == nil {
			return Message{Type: MsgGet, Err: ErrNoAssoc}
		}
		sa, ok := s.e.GetBySPI(m.SA.SPI, m.SA.Dst, m.SA.Proto)
		if !ok {
			return Message{Type: MsgGet, Err: ErrNoAssoc}
		}
		return Message{Type: MsgGet, SA: sa}
	case MsgRegister:
		s.Register()
		return Message{Type: MsgRegister}
	case MsgFlush:
		s.e.Flush()
		return Message{Type: MsgFlush}
	case MsgDump:
		return Message{Type: MsgDump, Dump: s.e.Dump()}
	}
	return Message{Type: m.Type, Err: fmt.Errorf("key: unsupported message %v", m.Type)}
}

// anyRegisteredLocked reports whether a key management daemon is
// listening. Caller holds e.mu.
func (e *Engine) anyRegisteredLocked() bool {
	for _, s := range e.socks {
		s.mu.Lock()
		r := s.registered && !s.closed
		s.mu.Unlock()
		if r {
			return true
		}
	}
	return false
}

// notifyLocked echoes table changes to every PF_KEY socket (as the
// routing socket echoes route changes). Caller holds e.mu.
func (e *Engine) notifyLocked(m Message) {
	for _, s := range e.socks {
		s.mu.Lock()
		if !s.closed {
			select {
			case s.C <- m:
			default:
			}
		}
		s.mu.Unlock()
	}
}

// notifyRegisteredLocked delivers to registered (daemon) sockets only.
func (e *Engine) notifyRegisteredLocked(m Message) {
	for _, s := range e.socks {
		s.mu.Lock()
		if s.registered && !s.closed {
			select {
			case s.C <- m:
			default:
			}
		}
		s.mu.Unlock()
	}
}
