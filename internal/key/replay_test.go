package key

import (
	"testing"
	"time"

	"bsd6/internal/inet"
)

func TestReplayWindowBasics(t *testing.T) {
	var r Replay
	if r.Check(0) || r.Update(0) {
		t.Fatal("sequence 0 accepted")
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if !r.Check(seq) || !r.Update(seq) {
			t.Fatalf("in-order seq %d rejected", seq)
		}
	}
	// Exact replays of anything seen are rejected.
	for seq := uint64(1); seq <= 10; seq++ {
		if r.Check(seq) {
			t.Fatalf("replayed seq %d accepted", seq)
		}
	}
	if r.Top() != 10 {
		t.Fatalf("top = %d", r.Top())
	}
}

func TestReplayWindowReorder(t *testing.T) {
	var r Replay
	// Arrive out of order within the window: 5, 3, 4, 1, 2.
	for _, seq := range []uint64{5, 3, 4, 1, 2} {
		if !r.Update(seq) {
			t.Fatalf("reordered seq %d rejected", seq)
		}
	}
	for _, seq := range []uint64{5, 3, 4, 1, 2} {
		if r.Update(seq) {
			t.Fatalf("replay of reordered seq %d accepted", seq)
		}
	}
}

func TestReplayWindowSlide(t *testing.T) {
	var r Replay
	if !r.Update(1) {
		t.Fatal("seq 1")
	}
	// Jump far ahead: everything at or below top-64 falls off the edge.
	if !r.Update(1000) {
		t.Fatal("jump rejected")
	}
	if r.Check(1) {
		t.Fatal("ancient sequence accepted after slide")
	}
	if !r.Update(1000 - ReplayWindowSize + 1) {
		t.Fatal("oldest in-window sequence rejected")
	}
	if r.Check(1000 - ReplayWindowSize) {
		t.Fatal("just-outside-window sequence accepted")
	}
	// A partial slide keeps recent history.
	if !r.Update(1010) {
		t.Fatal("partial slide")
	}
	if r.Check(1000) {
		t.Fatal("seen sequence accepted after partial slide")
	}
	if !r.Update(1001) {
		t.Fatal("unseen in-window sequence rejected after partial slide")
	}
}

// FuzzReplayWindow feeds arbitrary sequence streams and checks the
// invariant that matters: no sequence number is ever accepted twice.
func FuzzReplayWindow(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 1, 2})
	f.Add([]byte{200, 1, 200, 255, 0, 255})
	f.Add([]byte{64, 1, 65, 2, 128, 64})
	f.Fuzz(func(t *testing.T, stream []byte) {
		var r Replay
		accepted := make(map[uint64]bool)
		for i, b := range stream {
			// Derive a sequence that can both creep and jump.
			seq := uint64(b) + uint64(i/4)*32
			ok := r.Update(seq)
			if ok && accepted[seq] {
				t.Fatalf("sequence %d accepted twice", seq)
			}
			if ok {
				accepted[seq] = true
			}
			if seq != 0 && seq == r.Top() && !accepted[seq] {
				t.Fatalf("top %d not marked accepted", seq)
			}
		}
	})
}

func churnEngine() *Engine {
	now := time.Unix(1000, 0)
	e := NewEngine()
	e.Now = func() time.Time { return now }
	return e
}

func lookupSA(spi uint32, dst inet.IP6, p SecProto) *SA {
	return &SA{
		SPI: spi, Dst: dst, Proto: p,
		AuthAlg: "keyed-md5", AuthKey: []byte("0123456789abcdef"),
	}
}

func TestLookupSPIClassification(t *testing.T) {
	e := churnEngine()
	dst := ip6(t, "2001:db8::2")
	sa := lookupSA(0x100, dst, ProtoAH)
	if err := e.Add(sa); err != nil {
		t.Fatal(err)
	}

	if got, res := e.LookupSPI(0x100, dst, ProtoAH); got == nil || res != SPIHit {
		t.Fatalf("hit: %v %v", got, res)
	}
	if got, res := e.LookupSPI(0x999, dst, ProtoAH); got != nil || res != SPIMiss {
		t.Fatalf("miss: %v %v", got, res)
	}

	// Delete and look up again: the recently-deleted ring classifies
	// this as stale (a peer still sending on a torn-down SA), not a
	// cold miss.
	if err := e.Delete(0x100, dst, ProtoAH); err != nil {
		t.Fatal(err)
	}
	if got, res := e.LookupSPI(0x100, dst, ProtoAH); got != nil || res != SPIStale {
		t.Fatalf("stale: %v %v", got, res)
	}

	// An expired SA still present in the table classifies as expired.
	exp := lookupSA(0x200, dst, ProtoAH)
	exp.HardLife = time.Second
	if err := e.Add(exp); err != nil {
		t.Fatal(err)
	}
	exp.AddedAt = e.Now().Add(-2 * time.Second)
	if got, res := e.LookupSPI(0x200, dst, ProtoAH); got != nil || res != SPIExpired {
		t.Fatalf("expired: %v %v", got, res)
	}
}

func TestGenerationBumpsOnMutation(t *testing.T) {
	e := churnEngine()
	dst := ip6(t, "2001:db8::2")
	g0 := e.Gen()
	if err := e.Add(lookupSA(0x1, dst, ProtoAH)); err != nil {
		t.Fatal(err)
	}
	g1 := e.Gen()
	if g1 == g0 {
		t.Fatal("Add did not bump the generation")
	}
	if err := e.Delete(0x1, dst, ProtoAH); err != nil {
		t.Fatal(err)
	}
	if e.Gen() == g1 {
		t.Fatal("Delete did not bump the generation")
	}
	g2 := e.Gen()
	e.Flush()
	if e.Gen() == g2 {
		t.Fatal("Flush did not bump the generation")
	}
}

func TestCacheGenerationInvalidation(t *testing.T) {
	e := churnEngine()
	src := ip6(t, "2001:db8::1")
	dst := ip6(t, "2001:db8::2")
	var c Cache

	gen := e.Gen()
	c.Fill(e, gen, src, dst, time.Time{}, "verdict-1")
	if v, ok := c.Get(e, src, dst); !ok || v != "verdict-1" {
		t.Fatalf("fresh entry: %v %v", v, ok)
	}
	// A different endpoint misses.
	if _, ok := c.Get(e, dst, src); ok {
		t.Fatal("endpoint mismatch hit")
	}
	// Any table mutation invalidates with one generation compare.
	if err := e.Add(lookupSA(0x1, dst, ProtoESPTransport)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(e, src, dst); ok {
		t.Fatal("stale entry survived a generation bump")
	}

	// A gen sampled before a racing mutation fills an already-stale
	// entry: it must read as a miss, never wrongly fresh.
	gen = e.Gen()
	if err := e.Delete(0x1, dst, ProtoESPTransport); err != nil {
		t.Fatal(err)
	}
	c.Fill(e, gen, src, dst, time.Time{}, "verdict-2")
	if _, ok := c.Get(e, src, dst); ok {
		t.Fatal("racing fill read back as fresh")
	}

	// Deadline expiry invalidates too.
	c.Fill(e, e.Gen(), src, dst, e.Now().Add(-time.Second), "verdict-3")
	if _, ok := c.Get(e, src, dst); ok {
		t.Fatal("expired entry read back as fresh")
	}
	c.Fill(e, e.Gen(), src, dst, e.Now().Add(time.Hour), "verdict-4")
	if v, ok := c.Get(e, src, dst); !ok || v != "verdict-4" {
		t.Fatalf("deadlined entry: %v %v", v, ok)
	}
	c.Invalidate()
	if _, ok := c.Get(e, src, dst); ok {
		t.Fatal("invalidated entry read back")
	}
}

// TestLookupSPIZeroAlloc pins the inbound demux promise: resolving an
// SPI against a 100k-association table allocates nothing and takes no
// global lock.
func TestLookupSPIZeroAlloc(t *testing.T) {
	e := churnEngine()
	dst := ip6(t, "2001:db8::2")
	const n = 100_000
	for i := 0; i < n; i++ {
		if err := e.Add(lookupSA(uint32(i+1), dst, ProtoAH)); err != nil {
			t.Fatal(err)
		}
	}
	spi := uint32(1)
	allocs := testing.AllocsPerRun(1000, func() {
		sa, res := e.LookupSPI(spi, dst, ProtoAH)
		if sa == nil || res != SPIHit {
			t.Fatalf("lookup failed for SPI %d", spi)
		}
		spi = spi%n + 1
	})
	if allocs != 0 {
		t.Fatalf("LookupSPI allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkLookupSPI100k(b *testing.B) {
	e := NewEngine()
	dst := inet.IP6{0x20, 0x01, 0x0d, 0xb8, 15: 2}
	const n = 100_000
	for i := 0; i < n; i++ {
		sa := &SA{SPI: uint32(i + 1), Dst: dst, Proto: ProtoAH,
			AuthAlg: "keyed-md5", AuthKey: []byte("0123456789abcdef")}
		if err := e.Add(sa); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		spi := uint32(1)
		for pb.Next() {
			if sa, _ := e.LookupSPI(spi, dst, ProtoAH); sa == nil {
				b.Fatal("miss")
			}
			spi = spi%n + 1
		}
	})
}

func BenchmarkCacheHit(b *testing.B) {
	e := NewEngine()
	src := inet.IP6{0x20, 0x01, 15: 1}
	dst := inet.IP6{0x20, 0x01, 15: 2}
	var c Cache
	c.Fill(e, e.Gen(), src, dst, time.Time{}, "verdict")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(e, src, dst); !ok {
			b.Fatal("miss")
		}
	}
}
