package key

import "sync"

// ReplayWindowSize is the width of the anti-replay window in packets:
// the RFC 4303 default of 64, one machine word of bitmap.
const ReplayWindowSize = 64

// Replay is an RFC 4303-style sliding anti-replay window: a 64-bit
// bitmap anchored at the highest sequence number accepted so far.  The
// receiver peeks with Check before paying for ICV verification (a
// replayed or ancient sequence number is rejected for free) and
// commits with Update only after the ICV verified, so a forger cannot
// advance the window with garbage packets.
//
// The zero value is an empty window that has accepted nothing.
// Sequence number 0 is never valid (senders start at 1), matching the
// transform framing.  All methods are safe for concurrent use.
type Replay struct {
	mu     sync.Mutex
	top    uint64 // highest sequence number accepted
	bitmap uint64 // bit i set => sequence top-i was accepted
}

// Check reports whether seq would be accepted right now: in the
// window and not yet seen, or ahead of it.  It does not mark seq as
// seen — that is Update's job, after authentication.
func (r *Replay) Check(seq uint64) bool {
	if seq == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.admissible(seq)
}

// Update atomically re-checks and marks seq as seen, returning whether
// it was accepted.  Callers run it after ICV verification: the
// re-check closes the race where two copies of one packet both pass
// Check before either commits.
func (r *Replay) Update(seq uint64) bool {
	if seq == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.admissible(seq) {
		return false
	}
	if seq > r.top {
		shift := seq - r.top
		if shift >= ReplayWindowSize {
			r.bitmap = 1
		} else {
			r.bitmap = r.bitmap<<shift | 1
		}
		r.top = seq
		return true
	}
	r.bitmap |= 1 << (r.top - seq)
	return true
}

// admissible implements the window test; caller holds r.mu.
func (r *Replay) admissible(seq uint64) bool {
	if seq > r.top {
		return true
	}
	off := r.top - seq
	if off >= ReplayWindowSize {
		return false // left of the window: too old to judge
	}
	return r.bitmap&(1<<off) == 0
}

// Top returns the highest sequence number accepted (0 if none), for
// netstat-style reporting.
func (r *Replay) Top() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.top
}
