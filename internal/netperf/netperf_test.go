package netperf_test

import (
	"testing"
	"time"

	"bsd6/internal/core"
	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/key"
	"bsd6/internal/netif"
	"bsd6/internal/netperf"
	"bsd6/internal/testnet"
)

type fixture struct {
	cli, srv *core.Stack
	dst6     inet.IP6
	dst4     inet.IP4
}

func newFixture(t testing.TB) *fixture {
	hub := netif.NewHub()
	cli := core.NewStack("cli", core.Options{})
	srv := core.NewStack("srv", core.Options{})
	t.Cleanup(cli.Close)
	t.Cleanup(srv.Close)
	cIf := cli.AttachLink(hub, testnet.MacA, 1500)
	sIf := srv.AttachLink(hub, testnet.MacB, 1500)
	cli.ConfigureV4(cIf, inet.IP4{10, 0, 0, 1}, 24)
	srv.ConfigureV4(sIf, inet.IP4{10, 0, 0, 2}, 24)
	ll, _ := sIf.LinkLocal6(time.Now())
	return &fixture{cli: cli, srv: srv, dst6: ll, dst4: inet.IP4{10, 0, 0, 2}}
}

func TestTCPRR(t *testing.T) {
	f := newFixture(t)
	sv, err := netperf.NewEchoServer(f.srv, true, 5001, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	res, err := netperf.RunRR(f.cli, core.Addr6(f.dst6, 5001), true, 64, 50, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 50 || res.MeanRTT <= 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestUDPRR(t *testing.T) {
	f := newFixture(t)
	sv, err := netperf.NewEchoServer(f.srv, false, 5002, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	res, err := netperf.RunRR(f.cli, core.Addr6(f.dst6, 5002), false, 256, 50, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 50 {
		t.Fatalf("result: %+v", res)
	}
}

func TestRRoverIPv4(t *testing.T) {
	f := newFixture(t)
	sv, err := netperf.NewEchoServer(f.srv, false, 5003, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	res, err := netperf.RunRR(f.cli, core.Addr4(f.dst4, 5003), false, 64, 20, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 20 {
		t.Fatalf("result: %+v", res)
	}
	if f.srv.UDP.Stats.InV4ToV6.Get() == 0 {
		t.Fatal("v4 RR did not cross to the v6 server socket")
	}
}

func TestTCPStream(t *testing.T) {
	f := newFixture(t)
	sv, err := netperf.NewSinkServer(f.srv, true, 5004, 32768, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	res, err := netperf.RunStream(f.cli, sv, core.Addr6(f.dst6, 5004), true, 8192, 32768, 512<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 512<<10 {
		t.Fatalf("received %d bytes", res.Bytes)
	}
	if res.KBps <= 0 {
		t.Fatalf("throughput %f", res.KBps)
	}
}

func TestUDPStream(t *testing.T) {
	f := newFixture(t)
	sv, err := netperf.NewSinkServer(f.srv, false, 5005, 32767, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	res, err := netperf.RunStream(f.cli, sv, core.Addr6(f.dst6, 5005), false, 1024, 32767, 256<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	// UDP may drop under load, but the bulk should arrive over the
	// clean hub.
	if res.Bytes < (256<<10)/2 {
		t.Fatalf("received only %d bytes", res.Bytes)
	}
}

func TestSecuredStream(t *testing.T) {
	// Table 5's shape in miniature: secured throughput < cleartext.
	f := newFixture(t)
	cliLL, _ := f.cli.Interfaces()[0].LinkLocal6(time.Now())
	authKey := []byte("0123456789abcdef")
	for _, s := range []*core.Stack{f.cli, f.srv} {
		s.Keys.Add(&key.SA{SPI: 0x41, Src: cliLL, Dst: f.dst6, Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
		s.Keys.Add(&key.SA{SPI: 0x42, Src: f.dst6, Dst: cliLL, Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
	}
	secure := func(sock *core.Socket) {
		sock.SetSecurity(core.SoSecurityAuthentication, ipsec.LevelRequire)
	}
	sv, err := netperf.NewSinkServer(f.srv, true, 5006, 0, secure)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	res, err := netperf.RunStream(f.cli, sv, core.Addr6(f.dst6, 5006), true, 8192, 0, 256<<10, secure)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 256<<10 {
		t.Fatalf("received %d", res.Bytes)
	}
	if f.srv.Sec.Stats.InAuthOK.Get() == 0 {
		t.Fatal("stream was not authenticated")
	}
}
