// Package netperf reimplements the measurement workloads of §7: Rick
// Jones' NetPerf request-response (latency) and stream (throughput)
// tests, plus the ttcp-style bulk test used for Table 5 — the paper
// notes ttcp "was easily modified to use the security socket options",
// which RunStream supports through its socket-configuration hook.
package netperf

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"bsd6/internal/core"
	"bsd6/internal/inet"
)

// SocketTuner adjusts a freshly created socket (buffer sizes are
// applied separately; use this for the §6.1 security options, like
// the modified ttcp's -A/-E flags).
type SocketTuner func(*core.Socket)

// Server is a running echo or sink endpoint.
type Server struct {
	sock     *core.Socket
	stop     chan struct{}
	received atomic.Int64
}

// Received reports the payload bytes the server has consumed.
func (sv *Server) Received() int64 { return sv.received.Load() }

// Close shuts the server down.
func (sv *Server) Close() {
	close(sv.stop)
	sv.sock.Close()
}

const ioTimeout = 10 * time.Second

// NewEchoServer starts a request-response responder: every received
// message is sent back whole (NetPerf's *_RR pattern).
func NewEchoServer(s *core.Stack, tcp bool, port uint16, sockbuf int, tune SocketTuner) (*Server, error) {
	typ := core.SockDgram
	if tcp {
		typ = core.SockStream
	}
	sock, err := s.NewSocket(inet.AFInet6, typ)
	if err != nil {
		return nil, err
	}
	if sockbuf > 0 {
		sock.SetBuffers(sockbuf, sockbuf)
	}
	if tune != nil {
		tune(sock)
	}
	if err := sock.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: port}); err != nil {
		return nil, err
	}
	sv := &Server{sock: sock, stop: make(chan struct{})}
	if tcp {
		if err := sock.Listen(4); err != nil {
			return nil, err
		}
		go sv.tcpEchoLoop(sockbuf)
	} else {
		go sv.udpEchoLoop()
	}
	return sv, nil
}

func (sv *Server) tcpEchoLoop(sockbuf int) {
	for {
		conn, err := sv.sock.Accept(ioTimeout)
		if err != nil {
			select {
			case <-sv.stop:
				return
			default:
				continue
			}
		}
		if sockbuf > 0 {
			conn.SetBuffers(sockbuf, sockbuf)
		}
		go func() {
			defer conn.Close()
			for {
				data, err := conn.Recv(64<<10, ioTimeout)
				if err != nil {
					return
				}
				sv.received.Add(int64(len(data)))
				if _, err := conn.Send(data, ioTimeout); err != nil {
					return
				}
			}
		}()
	}
}

func (sv *Server) udpEchoLoop() {
	for {
		data, from, err := sv.sock.RecvFrom(64<<10, ioTimeout)
		if err != nil {
			select {
			case <-sv.stop:
				return
			default:
				continue
			}
		}
		sv.received.Add(int64(len(data)))
		sv.sock.SendTo(data, from)
	}
}

// NewSinkServer starts a throughput sink: received bytes are counted
// and discarded (NetPerf's *_STREAM pattern / ttcp -r).
func NewSinkServer(s *core.Stack, tcp bool, port uint16, sockbuf int, tune SocketTuner) (*Server, error) {
	typ := core.SockDgram
	if tcp {
		typ = core.SockStream
	}
	sock, err := s.NewSocket(inet.AFInet6, typ)
	if err != nil {
		return nil, err
	}
	if sockbuf > 0 {
		sock.SetBuffers(sockbuf, sockbuf)
	}
	if tune != nil {
		tune(sock)
	}
	if err := sock.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: port}); err != nil {
		return nil, err
	}
	sv := &Server{sock: sock, stop: make(chan struct{})}
	if tcp {
		if err := sock.Listen(4); err != nil {
			return nil, err
		}
		go func() {
			for {
				conn, err := sv.sock.Accept(ioTimeout)
				if err != nil {
					select {
					case <-sv.stop:
						return
					default:
						continue
					}
				}
				if sockbuf > 0 {
					conn.SetBuffers(sockbuf, sockbuf)
				}
				go func() {
					defer conn.Close()
					buf := make([]byte, 64<<10)
					for {
						n, err := conn.ReadInto(buf, ioTimeout)
						if err != nil {
							return
						}
						sv.received.Add(int64(n))
					}
				}()
			}
		}()
	} else {
		go func() {
			for {
				data, _, err := sv.sock.RecvFrom(64<<10, ioTimeout)
				if err != nil {
					select {
					case <-sv.stop:
						return
					default:
						continue
					}
				}
				sv.received.Add(int64(len(data)))
			}
		}()
	}
	return sv, nil
}

// RRResult is a request-response (latency) measurement.
type RRResult struct {
	Transactions int
	Elapsed      time.Duration
	MeanRTT      time.Duration
}

func (r RRResult) String() string {
	return fmt.Sprintf("%d transactions in %v (%.2fµs/RTT)", r.Transactions, r.Elapsed, float64(r.MeanRTT.Nanoseconds())/1e3)
}

// RunRR runs a request-response latency test of iters transactions of
// msgSize bytes against an echo server at dst.
func RunRR(c *core.Stack, dst core.Sockaddr6, tcp bool, msgSize, iters, sockbuf int, tune SocketTuner) (RRResult, error) {
	typ := core.SockDgram
	if tcp {
		typ = core.SockStream
	}
	sock, err := c.NewSocket(inet.AFInet6, typ)
	if err != nil {
		return RRResult{}, err
	}
	defer sock.Close()
	if sockbuf > 0 {
		sock.SetBuffers(sockbuf, sockbuf)
	}
	if tune != nil {
		tune(sock)
	}
	if err := sock.Connect(dst, ioTimeout); err != nil {
		return RRResult{}, err
	}
	msg := make([]byte, msgSize)
	for i := range msg {
		msg[i] = byte(i)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if tcp {
			if _, err := sock.Send(msg, ioTimeout); err != nil {
				return RRResult{}, err
			}
			got := 0
			for got < msgSize {
				data, err := sock.Recv(msgSize-got, ioTimeout)
				if err != nil {
					return RRResult{}, err
				}
				got += len(data)
			}
		} else {
			// The socket is connected, so send on the PCB's cached peer
			// and route. Going through SendTo here re-took the socket
			// lock and re-stored the flow label, then re-derived the
			// destination inside udp_output on every transaction —
			// harness setup billed to the stack in Tables 1/2.
			if _, err := sock.Send(msg, ioTimeout); err != nil {
				return RRResult{}, err
			}
			// One datagram out, one back; a lost reply would hang, so
			// bound the wait (the benches run over a lossless hub).
			if _, _, err := sock.RecvFrom(msgSize, ioTimeout); err != nil {
				return RRResult{}, err
			}
		}
	}
	elapsed := time.Since(start)
	return RRResult{Transactions: iters, Elapsed: elapsed, MeanRTT: elapsed / time.Duration(iters)}, nil
}

// StreamResult is a throughput measurement.
type StreamResult struct {
	Bytes   int64
	Elapsed time.Duration
	// KBps is throughput in the paper's units (kilobytes/second).
	KBps float64
}

func (r StreamResult) String() string {
	return fmt.Sprintf("%d bytes in %v (%.0f KB/s)", r.Bytes, r.Elapsed, r.KBps)
}

// ErrStalled reports that a stream test stopped making progress.
var ErrStalled = errors.New("netperf: stream stalled")

// RunStream pushes total bytes of msgSize writes at a sink server and
// reports the receiver-side throughput (NetPerf *_STREAM / ttcp -t).
func RunStream(c *core.Stack, sv *Server, dst core.Sockaddr6, tcp bool, msgSize, sockbuf int, total int64, tune SocketTuner) (StreamResult, error) {
	typ := core.SockDgram
	if tcp {
		typ = core.SockStream
	}
	sock, err := c.NewSocket(inet.AFInet6, typ)
	if err != nil {
		return StreamResult{}, err
	}
	defer sock.Close()
	if sockbuf > 0 {
		sock.SetBuffers(sockbuf, sockbuf)
	}
	if tune != nil {
		tune(sock)
	}
	if err := sock.Connect(dst, ioTimeout); err != nil {
		return StreamResult{}, err
	}
	msg := make([]byte, msgSize)
	if !tcp {
		// Warm the path: the first datagram triggers neighbor
		// discovery, and only a handful of packets queue behind an
		// unresolved neighbor (as with ARP in BSD). One throwaway
		// datagram plus a settle period keeps the measured stream
		// from racing the resolution.
		sock.Send(msg[:1], ioTimeout)
		deadline := time.Now().Add(time.Second)
		for sv.Received() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	window := int64(sockbuf)
	if window <= 0 {
		window = 32 << 10
	}
	base := sv.Received()
	start := time.Now()
	var sent int64
	for sent < total {
		if !tcp {
			// UDP has no flow control; the paper's ttcp was paced by
			// a 10 Mb/s Ethernet, ours by the receiver's socket
			// buffer. Keep the in-flight bytes small enough that the
			// receive buffer can hold all of them — in-flight plus the
			// next message must fit, or a burst arriving at an
			// undrained sink is dropped and the lost bytes stall the
			// window for the rest of the run. Pace with Gosched rather
			// than a timed sleep: a sleep's wake-up latency is OS timer
			// granularity, which would measure the host's tick rate,
			// not the stack.
			deadline := time.Now().Add(ioTimeout)
			for sent+int64(msgSize)-(sv.Received()-base) > window {
				if time.Now().After(deadline) {
					return StreamResult{}, ErrStalled
				}
				runtime.Gosched()
			}
		}
		n, err := sock.Send(msg, ioTimeout)
		if err != nil {
			return StreamResult{}, err
		}
		sent += int64(n)
	}
	// Wait for the sink to drain what was sent (bounded for UDP, where
	// a datagram can still be lost to a full queue).
	deadline := time.Now().Add(ioTimeout)
	lastGot := int64(-1)
	lastProgress := time.Now()
	for sv.Received()-base < sent {
		got := sv.Received() - base
		if got != lastGot {
			lastGot = got
			lastProgress = time.Now()
		}
		if tcp && time.Now().After(deadline) {
			return StreamResult{}, ErrStalled
		}
		if !tcp && time.Since(lastProgress) > 50*time.Millisecond {
			break // residual loss; report what arrived
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	got := sv.Received() - base
	return StreamResult{
		Bytes:   got,
		Elapsed: elapsed,
		KBps:    float64(got) / 1024 / elapsed.Seconds(),
	}, nil
}
