// Package doclint enforces godoc coverage on the packages whose
// exported surface is the documentation deliverable of the limits
// work: every exported package-level identifier (and exported method
// on an exported type) must carry a doc comment.  The check parses
// source with go/parser, so it runs as an ordinary test — no external
// linter needed, and CI fails the moment an undocumented export
// lands.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// lintedPackages are the directories (relative to this package) held
// to full godoc coverage.  Grow this list as packages are brought up
// to standard; do not shrink it.
var lintedPackages = []string{
	"../stat",
	"../reasm",
	"../mbuf",
	"../testnet",
	"../pcb",
	"../tunnel",
	"../inet",
	"../topo",
	"../admin",
	"../ipsec",
	"../key",
}

func TestExportedIdentifiersAreDocumented(t *testing.T) {
	for _, dir := range lintedPackages {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			for _, miss := range lintPackage(t, dir) {
				t.Error(miss)
			}
		})
	}
}

// lintPackage parses every non-test .go file in dir and returns one
// message per undocumented exported declaration.
func lintPackage(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	var misses []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		misses = append(misses, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lintDecl(decl, report)
			}
		}
	}
	return misses
}

// lintDecl reports undocumented exported names in one top-level
// declaration.  For grouped var/const/type blocks a doc comment on
// the block covers all names; an individual spec comment also counts.
func lintDecl(decl ast.Decl, report func(token.Pos, string, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		// Methods count when the receiver type is exported.
		kind := "function"
		if d.Recv != nil {
			kind = "method"
			if !receiverExported(d.Recv) {
				return
			}
		}
		report(d.Pos(), kind, d.Name.Name)
	case *ast.GenDecl:
		kind := map[token.Token]string{
			token.CONST: "const", token.VAR: "var", token.TYPE: "type",
		}[d.Tok]
		if kind == "" {
			return // import decl
		}
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
					report(sp.Pos(), kind, sp.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range sp.Names {
					if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(name.Pos(), kind, name.Name)
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver names an
// exported type (unwrapping pointer and generic receivers).
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
