package conformance

import (
	"testing"

	"bsd6/internal/ipv4"
)

func TestV4OverlapFirstArrivalWins(t *testing.T) {
	// The same RFC 5722-style rewrite attack, against the IPv4
	// reassembly queue: an overlap cannot change bytes already held.
	n := NewNet()
	orig := Pattern(0x40, 24) // covers [0,24)
	evil := Pattern(0xC0, 24) // covers [8,32)
	tail := Pattern(0x70, 8)  // covers [32,40)
	n.Inject4(Frag4{Off: 0, More: true, ID: 21, Data: orig})
	n.Inject4(Frag4{Off: 8, More: true, ID: 21, Data: evil})
	n.Inject4(Frag4{Off: 32, More: false, ID: 21, Data: tail})

	want := append(append(append([]byte(nil), orig...), evil[16:24]...), tail...)
	wantDelivered(t, n.Delivered4, want)
	if got := n.B.V4.Stats.ReasmFails.Get(); got != 0 {
		t.Fatalf("ReasmFails = %d, want 0", got)
	}
}

func TestV4DuplicateFinalFragment(t *testing.T) {
	// Duplicate final fragment on IPv4: accepted once, and the stray
	// buffer the duplicate opened expires silently (no fragment 0).
	n := NewNet()
	d := Pattern(0x55, 32)
	n.Inject4(Frag4{Off: 0, More: true, ID: 22, Data: d[0:24]})
	n.Inject4(Frag4{Off: 24, More: false, ID: 22, Data: d[24:32]})
	n.Inject4(Frag4{Off: 24, More: false, ID: 22, Data: d[24:32]})
	wantDelivered(t, n.Delivered4, d)
	n.ExpireReassembly()
	wantDelivered(t, n.Delivered4, d)
	wantErrors(t, n.Errors4)
	if got := n.B.V4.Stats.ReasmFails.Get(); got != 1 {
		t.Fatalf("ReasmFails = %d, want 1", got)
	}
}

func TestV4TimeoutTimeExceeded(t *testing.T) {
	// IPv4 reassembly timeout with the first fragment present sends
	// Time Exceeded code 1, as ip_freef's caller does in BSD.
	n := NewNet()
	n.Inject4(Frag4{Off: 0, More: true, ID: 23, Data: Pattern(5, 24)})
	n.ExpireReassembly()
	wantDelivered(t, n.Delivered4)
	wantErrors(t, n.Errors4, IcmpErr{ipv4.IcmpTimeExceeded, 1})
	if got := n.B.V4.Stats.ReasmFails.Get(); got != 1 {
		t.Fatalf("ReasmFails = %d, want 1", got)
	}
}

func TestV4TimeoutSilentWithoutFirst(t *testing.T) {
	// Without fragment zero the timeout must not emit an error — RFC
	// 792's Time Exceeded quotes the offending header, which never
	// arrived.
	n := NewNet()
	n.Inject4(Frag4{Off: 8, More: true, ID: 24, Data: Pattern(6, 24)})
	n.ExpireReassembly()
	wantDelivered(t, n.Delivered4)
	wantErrors(t, n.Errors4)
	if got := n.B.V4.Stats.ReasmFails.Get(); got != 1 {
		t.Fatalf("ReasmFails = %d, want 1", got)
	}
}
