package conformance

import (
	"bytes"
	"testing"

	"bsd6/internal/icmp6"
)

// want asserts the exact set of datagrams the receiver accepted.
func wantDelivered(t *testing.T, got [][]byte, want ...[]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("delivered %d datagrams, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("datagram %d = %x, want %x", i, got[i], want[i])
		}
	}
}

func wantErrors(t *testing.T, got []IcmpErr, want ...IcmpErr) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d ICMP errors (%v), want %d (%v)", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ICMP error %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestV6InOrderBaseline(t *testing.T) {
	// Three fragments in order: the well-behaved case every deviant
	// scenario below is measured against.
	n := NewNet()
	d := Pattern(0x10, 56)
	n.Inject6(Frag6{Off: 0, More: true, ID: 1, Data: d[0:24]})
	n.Inject6(Frag6{Off: 24, More: true, ID: 1, Data: d[24:48]})
	n.Inject6(Frag6{Off: 48, More: false, ID: 1, Data: d[48:56]})
	wantDelivered(t, n.Delivered6, d)
	wantErrors(t, n.Errors6)
	if got := n.B.V6.Stats.Reassembled.Get(); got != 1 {
		t.Fatalf("Reassembled = %d, want 1", got)
	}
	if got := n.B.V6.Stats.ReasmFails.Get(); got != 0 {
		t.Fatalf("ReasmFails = %d, want 0", got)
	}
}

func TestV6OverlapRewriteAttack(t *testing.T) {
	// RFC 5722's motivating attack: after the real first fragment is
	// queued, an overlapping fragment tries to rewrite bytes [8,24)
	// while smuggling new data at [24,32).  First arrival wins, as
	// 4.4 BSD's ip_reass trims: the original bytes survive untouched
	// and only the non-overlapping tail of the attacker's fragment is
	// kept.
	n := NewNet()
	orig := Pattern(0x40, 24) // covers [0,24)
	evil := Pattern(0xC0, 24) // covers [8,32)
	tail := Pattern(0x70, 8)  // covers [32,40)
	n.Inject6(Frag6{Off: 0, More: true, ID: 2, Data: orig})
	n.Inject6(Frag6{Off: 8, More: true, ID: 2, Data: evil})
	n.Inject6(Frag6{Off: 32, More: false, ID: 2, Data: tail})

	want := append(append(append([]byte(nil), orig...), evil[16:24]...), tail...)
	wantDelivered(t, n.Delivered6, want)
	if got := n.B.V6.Stats.ReasmFails.Get(); got != 0 {
		t.Fatalf("ReasmFails = %d, want 0", got)
	}
}

func TestV6TinyFragmentsOutOfOrder(t *testing.T) {
	// A 64-byte datagram minced into eight 8-byte fragments arriving
	// in a scrambled order.  Hole-filling must tolerate arbitrary
	// arrival order and the minimum legal fragment size.
	n := NewNet()
	d := Pattern(0x20, 64)
	order := []int{5, 0, 7, 3, 1, 6, 2, 4}
	for _, i := range order {
		off := i * 8
		n.Inject6(Frag6{Off: off, More: i != 7, ID: 3, Data: d[off : off+8]})
	}
	wantDelivered(t, n.Delivered6, d)
	if got := n.B.V6.Stats.Reassembled.Get(); got != 1 {
		t.Fatalf("Reassembled = %d, want 1", got)
	}
}

func TestV6AtomicFragment(t *testing.T) {
	// A fragment header with offset 0 and M clear (an "atomic
	// fragment") must complete immediately — one datagram, no state
	// left behind to expire.
	n := NewNet()
	d := Pattern(0x30, 40)
	n.Inject6(Frag6{Off: 0, More: false, ID: 4, Data: d})
	wantDelivered(t, n.Delivered6, d)
	n.ExpireReassembly()
	wantErrors(t, n.Errors6)
	if got := n.B.V6.Stats.ReasmFails.Get(); got != 0 {
		t.Fatalf("ReasmFails = %d, want 0", got)
	}
}

func TestV6DuplicateFinalFragment(t *testing.T) {
	// The final fragment arrives twice.  The datagram must be
	// accepted exactly once; the late duplicate opens a fresh buffer
	// which, lacking fragment zero, must expire silently.
	n := NewNet()
	d := Pattern(0x50, 32)
	n.Inject6(Frag6{Off: 0, More: true, ID: 5, Data: d[0:24]})
	n.Inject6(Frag6{Off: 24, More: false, ID: 5, Data: d[24:32]})
	n.Inject6(Frag6{Off: 24, More: false, ID: 5, Data: d[24:32]})
	wantDelivered(t, n.Delivered6, d)

	n.ExpireReassembly()
	wantDelivered(t, n.Delivered6, d) // still exactly one
	wantErrors(t, n.Errors6)          // no Time Exceeded: no fragment 0 in the stray buffer
	if got := n.B.V6.Stats.ReasmFails.Get(); got != 1 {
		t.Fatalf("ReasmFails = %d, want 1 (expired stray duplicate)", got)
	}
}

func TestV6ConflictingFinalFragment(t *testing.T) {
	// Two final fragments disagree on the total length.  The
	// inconsistency discards the whole reassembly — as 4.4 BSD drops
	// a chain on a malformed fragment — so nothing is delivered until
	// the sender retransmits a coherent train.
	n := NewNet()
	d := Pattern(0x60, 40)
	n.Inject6(Frag6{Off: 0, More: true, ID: 6, Data: d[0:24]})
	n.Inject6(Frag6{Off: 32, More: false, ID: 6, Data: d[32:40]})         // total = 40
	n.Inject6(Frag6{Off: 40, More: false, ID: 6, Data: Pattern(0xE0, 8)}) // claims total = 48
	if got := n.B.V6.Stats.ReasmFails.Get(); got != 1 {
		t.Fatalf("ReasmFails = %d, want 1 (conflicting final)", got)
	}
	n.Inject6(Frag6{Off: 24, More: true, ID: 6, Data: d[24:32]})
	wantDelivered(t, n.Delivered6) // buffer was dropped; still incomplete

	// A coherent retransmission completes cleanly.
	n.Inject6(Frag6{Off: 0, More: true, ID: 6, Data: d[0:24]})
	n.Inject6(Frag6{Off: 32, More: false, ID: 6, Data: d[32:40]})
	wantDelivered(t, n.Delivered6, d)
	if got := n.B.V6.Stats.Reassembled.Get(); got != 1 {
		t.Fatalf("Reassembled = %d, want 1", got)
	}
}

func TestV6TimeoutWithFirstFragment(t *testing.T) {
	// Reassembly timeout with fragment zero present: RFC 2460 §4.5
	// requires Time Exceeded code 1 (fragment reassembly time
	// exceeded) quoting the offending packet.  The paper's
	// implementation could not send it (§4.1 footnote: the packet was
	// gone); we keep the first fragment precisely so this works.
	n := NewNet()
	n.Inject6(Frag6{Off: 0, More: true, ID: 7, Data: Pattern(1, 24)})
	n.ExpireReassembly()
	wantDelivered(t, n.Delivered6)
	wantErrors(t, n.Errors6, IcmpErr{icmp6.TypeTimeExceeded, 1})
	if got := n.B.V6.Stats.ReasmFails.Get(); got != 1 {
		t.Fatalf("ReasmFails = %d, want 1", got)
	}
}

func TestV6TimeoutWithoutFirstFragment(t *testing.T) {
	// Same timeout, but fragment zero never arrived: the RFC forbids
	// the error, so expiry must be silent.
	n := NewNet()
	n.Inject6(Frag6{Off: 8, More: true, ID: 8, Data: Pattern(2, 24)})
	n.ExpireReassembly()
	wantDelivered(t, n.Delivered6)
	wantErrors(t, n.Errors6)
	if got := n.B.V6.Stats.ReasmFails.Get(); got != 1 {
		t.Fatalf("ReasmFails = %d, want 1", got)
	}
}

func TestV6TimeoutStraddlingRetransmission(t *testing.T) {
	// A partial train expires mid-transfer, then the sender
	// retransmits the whole datagram with the same ID.  The expiry
	// must not leak state into the retransmission: one Time Exceeded
	// for the dead buffer, then a clean single acceptance.
	n := NewNet()
	d := Pattern(0x33, 48)
	n.Inject6(Frag6{Off: 0, More: true, ID: 9, Data: d[0:24]})
	n.Inject6(Frag6{Off: 24, More: true, ID: 9, Data: d[24:40]})
	n.ExpireReassembly()
	wantErrors(t, n.Errors6, IcmpErr{icmp6.TypeTimeExceeded, 1})

	n.Inject6(Frag6{Off: 0, More: true, ID: 9, Data: d[0:24]})
	n.Inject6(Frag6{Off: 24, More: true, ID: 9, Data: d[24:40]})
	n.Inject6(Frag6{Off: 40, More: false, ID: 9, Data: d[40:48]})
	wantDelivered(t, n.Delivered6, d)
	if got := n.B.V6.Stats.Reassembled.Get(); got != 1 {
		t.Fatalf("Reassembled = %d, want 1", got)
	}
	if got := n.B.V6.Stats.ReasmFails.Get(); got != 1 {
		t.Fatalf("ReasmFails = %d, want 1 (only the expired buffer)", got)
	}
}

func TestV6OversizeFragment(t *testing.T) {
	// A final fragment whose offset+length exceeds the 65535-byte
	// ceiling the 16-bit payload length can express.  It must be
	// rejected; the buffer it tried to join keeps working.
	n := NewNet()
	n.Inject6(Frag6{Off: 0, More: true, ID: 10, Data: Pattern(3, 24)})
	n.Inject6(Frag6{Off: 65528, More: false, ID: 10, Data: Pattern(4, 100)})
	wantDelivered(t, n.Delivered6)
	if got := n.B.V6.Stats.ReasmFails.Get(); got != 1 {
		t.Fatalf("ReasmFails = %d, want 1 (oversize fragment)", got)
	}
}

func TestV6FragmentFlood(t *testing.T) {
	// One buffer cannot hoard unbounded fragments: after 512 disjoint
	// pieces the next insert is refused.  (Deliberately leaves a gap
	// at offset 0 so nothing completes.)
	n := NewNet()
	for i := 1; i <= 513; i++ {
		n.Inject6(Frag6{Off: i * 8, More: true, ID: 11, Data: Pattern(byte(i), 8)})
	}
	wantDelivered(t, n.Delivered6)
	if got := n.B.V6.Stats.ReasmFails.Get(); got != 1 {
		t.Fatalf("ReasmFails = %d, want 1 (piece limit)", got)
	}
}
