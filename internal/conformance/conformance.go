// Package conformance is a scenario harness for adversarial packet
// trains against the IPv4 and IPv6 reassembly paths.  Each scenario
// hand-crafts a fragment sequence — overlapping, tiny, atomic,
// duplicated, timeout-straddling — injects it into a receiver built
// from the real protocol modules, and asserts the exact outcome:
// which datagrams were accepted (byte-for-byte), which were dropped,
// and which ICMP errors came back.
//
// The whole world runs on a testnet.Sim virtual clock, so timeout
// scenarios that span 30+ seconds of protocol time execute in
// microseconds and every run is deterministic.  The scenarios double
// as RFC 5722-style overlap-attack regression tests: this stack keeps
// the first-arriving bytes and discards later overlaps, as 4.4 BSD's
// ip_reass does, so an attacker cannot rewrite data already held.
package conformance

import (
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipv4"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/testnet"
)

// IcmpErr is one ICMP error observed during a scenario.
type IcmpErr struct {
	Type, Code uint8
}

// Net is a two-node world: a sender ("atk") whose stack answers the
// reverse path (ND, ARP) and collects ICMP errors, and a receiver
// ("dst") whose reassembly queues are under test.  Crafted fragments
// are injected directly into the receiver's IP input, exactly as if
// they had arrived on its first hub interface; everything the
// receiver emits in response crosses the simulated link for real.
type Net struct {
	Sim  *testnet.Sim
	Hub  *netif.Hub
	A, B *testnet.Node

	// Delivered6 and Delivered4 record, in order, the payload bytes
	// the receiver's protocol switch handed to the UDP slot — one
	// entry per accepted (reassembled) datagram.
	Delivered6 [][]byte
	Delivered4 [][]byte

	// Errors6 records ICMPv6 errors received back at the sender.
	// Errors4 records ICMPv4 errors the receiver put on the wire for
	// the sender (sniffed on the hub, so the assertion covers the
	// exact type/code transmitted).
	Errors6 []IcmpErr
	Errors4 []IcmpErr

	llA, llB inet.IP6
	v4A, v4B inet.IP4
}

// NewNet assembles the two-node world on a fresh simulation.
func NewNet() *Net {
	n := &Net{Sim: testnet.NewSim()}
	n.Hub = n.Sim.NewHub()
	n.A = n.Sim.NewNode("atk")
	n.B = n.Sim.NewNode("dst")
	n.v4A = inet.IP4{10, 0, 0, 1}
	n.v4B = inet.IP4{10, 0, 0, 2}
	n.A.Join(n.Hub, testnet.MacA, 1500, n.v4A, 24)
	n.B.Join(n.Hub, testnet.MacB, 1500, n.v4B, 24)
	n.llA = n.A.LinkLocal(0)
	n.llB = n.B.LinkLocal(0)

	n.B.V6.Register(proto.UDP, func(pkt *mbuf.Mbuf, _ *proto.Meta) {
		n.Delivered6 = append(n.Delivered6, pkt.CopyBytes())
		pkt.Free()
	}, nil)
	n.B.V4.Register(proto.UDP, func(pkt *mbuf.Mbuf, _ *proto.Meta) {
		n.Delivered4 = append(n.Delivered4, pkt.CopyBytes())
		pkt.Free()
	}, nil)
	n.A.ICMP6.OnErrorMsg = func(typ, code uint8, _ inet.IP6, _ []byte) {
		n.Errors6 = append(n.Errors6, IcmpErr{typ, code})
	}
	n.Hub.Capture = func(fr netif.Frame) {
		if fr.EtherType != netif.EtherTypeIPv4 {
			return
		}
		b := fr.Payload.Bytes()
		h, hl, err := ipv4.Parse(b)
		if err != nil || h.Proto != proto.ICMP || len(b) < hl+2 {
			return
		}
		typ := b[hl]
		if typ == ipv4.IcmpEcho || typ == ipv4.IcmpEchoReply {
			return
		}
		n.Errors4 = append(n.Errors4, IcmpErr{typ, b[hl+1]})
	}
	return n
}

// Frag6 describes one crafted IPv6 fragment.  Off is the byte offset
// (a multiple of 8 except possibly for the final fragment), More the
// M bit, ID the identification, Data the fragment payload.  NextHdr
// defaults to UDP so completed datagrams land in the Delivered6 tap.
type Frag6 struct {
	Off     int
	More    bool
	ID      uint32
	Data    []byte
	NextHdr uint8
}

// Inject6 delivers one crafted fragment, sender→receiver, straight
// into the receiver's IPv6 input.
func (n *Net) Inject6(f Frag6) {
	nh := f.NextHdr
	if nh == 0 {
		nh = proto.UDP
	}
	fh := &ipv6.FragHeader{NextHdr: nh, Off: f.Off, More: f.More, ID: f.ID}
	fb := fh.Marshal(nil)
	fb = append(fb, f.Data...)
	h := &ipv6.Header{NextHdr: proto.Fragment, HopLimit: 64,
		PayloadLen: len(fb), Src: n.llA, Dst: n.llB}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append(fb)
	n.B.V6.Input(n.B.Ifps[0], pkt)
}

// Frag4 describes one crafted IPv4 fragment.
type Frag4 struct {
	Off   int
	More  bool
	ID    uint16
	Data  []byte
	Proto uint8
}

// Inject4 delivers one crafted fragment into the receiver's IPv4
// input.
func (n *Net) Inject4(f Frag4) {
	p := f.Proto
	if p == 0 {
		p = proto.UDP
	}
	h := &ipv4.Header{TotalLen: ipv4.HeaderLen + len(f.Data), ID: f.ID,
		MF: f.More, FragOff: f.Off, TTL: 64, Proto: p,
		Src: n.v4A, Dst: n.v4B}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append(f.Data)
	n.B.V4.Input(n.B.Ifps[0], pkt)
}

// Run advances simulated time, firing hub deliveries and the BSD
// timer cadence (fast/slow timeouts) that fall in the window.
func (n *Net) Run(d time.Duration) { n.Sim.Run(d) }

// ExpireReassembly advances past the 30-second reassembly lifetime so
// every pending fragment buffer on the receiver times out.
func (n *Net) ExpireReassembly() { n.Run(31 * time.Second) }

// Pattern returns length n of a recognizable byte sequence seeded by
// tag, so overlap scenarios can tell exactly whose bytes survived.
func Pattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag + byte(i)
	}
	return b
}
