package conformance

import (
	"fmt"
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/netif"
	"bsd6/internal/testnet"
)

// hostileTrace runs a fixed ping workload across a link with every
// fault class enabled — latency, jitter, random and burst loss,
// duplication, bit corruption, reordering — and returns the exact
// sequence of frames that crossed the hub.  Everything (fault RNG,
// delayed deliveries, retransmission timers) runs on the simulation's
// virtual clock, so the trace is a pure function of the seed.
func hostileTrace(t *testing.T, seed int64) []string {
	t.Helper()
	sim := testnet.NewSim()
	hub := sim.NewHub()
	hub.SetSeed(seed)
	hub.SetFaults(netif.Faults{
		Latency:   2 * time.Millisecond,
		Jitter:    3 * time.Millisecond,
		Loss:      0.15,
		BurstLoss: 0.02,
		Duplicate: 0.10,
		Corrupt:   0.05,
		Reorder:   0.30,
	})
	a := sim.NewNode("a")
	b := sim.NewNode("b")
	a.Join(hub, testnet.MacA, 1500, inet.IP4{}, 0)
	b.Join(hub, testnet.MacB, 1500, inet.IP4{}, 0)

	var trace []string
	hub.Capture = func(fr netif.Frame) {
		trace = append(trace, fmt.Sprintf("%x>%x %04x %x",
			fr.Src, fr.Dst, fr.EtherType, fr.Payload.Bytes()))
	}

	replies := 0
	a.ICMP6.OnEcho = func(inet.IP6, uint16, uint16, []byte) { replies++ }
	dst := b.LinkLocal(0)
	for i := 0; i < 40; i++ {
		if err := a.ICMP6.SendEcho(dst, 7, uint16(i), Pattern(byte(i), 32)); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		sim.Run(100 * time.Millisecond)
	}
	sim.Run(5 * time.Second) // drain delayed deliveries

	if replies == 0 {
		t.Fatalf("seed %d: no echo replies survived the hostile link", seed)
	}
	if len(trace) == 0 {
		t.Fatalf("seed %d: empty trace", seed)
	}
	return trace
}

func TestHostileLinkSameSeedSameTrace(t *testing.T) {
	// Bit-for-bit reproducibility: two independent worlds, same seed,
	// identical frame-by-frame traces.  This is the property that
	// makes a failure under fault injection replayable from its
	// logged seed.
	tr1 := hostileTrace(t, 42)
	tr2 := hostileTrace(t, 42)
	if len(tr1) != len(tr2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(tr1), len(tr2))
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("traces diverge at frame %d:\n  run1: %s\n  run2: %s", i, tr1[i], tr2[i])
		}
	}
}

func TestHostileLinkSeedChangesTrace(t *testing.T) {
	// Sanity check that the seed actually feeds the fault model: a
	// different seed must yield a different frame sequence.
	tr1 := hostileTrace(t, 42)
	tr2 := hostileTrace(t, 43)
	if len(tr1) == len(tr2) {
		same := true
		for i := range tr1 {
			if tr1[i] != tr2[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 42 and 43 produced identical traces")
		}
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	// A partitioned hub drops frames between groups; healing the
	// partition restores connectivity, all under virtual time.
	sim := testnet.NewSim()
	hub := sim.NewHub()
	a := sim.NewNode("a")
	b := sim.NewNode("b")
	ifa := a.Join(hub, testnet.MacA, 1500, inet.IP4{}, 0)
	ifb := b.Join(hub, testnet.MacB, 1500, inet.IP4{}, 0)
	dst := b.LinkLocal(0)

	replies := 0
	a.ICMP6.OnEcho = func(inet.IP6, uint16, uint16, []byte) { replies++ }

	// Reachable before the cut.
	if err := a.ICMP6.SendEcho(dst, 9, 1, Pattern(1, 16)); err != nil {
		t.Fatal(err)
	}
	sim.Run(time.Second)
	if replies != 1 {
		t.Fatalf("before partition: %d replies, want 1", replies)
	}

	hub.Partition([]*netif.Interface{ifa}, []*netif.Interface{ifb})
	if err := a.ICMP6.SendEcho(dst, 9, 2, Pattern(2, 16)); err != nil {
		t.Fatal(err)
	}
	sim.Run(10 * time.Second)
	if replies != 1 {
		t.Fatalf("during partition: %d replies, want still 1", replies)
	}

	hub.Partition() // heal
	sim.Run(time.Minute)
	if err := a.ICMP6.SendEcho(dst, 9, 3, Pattern(3, 16)); err != nil {
		t.Fatal(err)
	}
	sim.Run(10 * time.Second)
	if replies < 2 {
		t.Fatalf("after healing: %d replies, want >= 2", replies)
	}
}
