package route_test

// Forwarding-path edge cases exercised over real multi-node
// topologies: a hop-limit-expired burst must elicit exactly one Time
// Exceeded per packet (no duplicates from the batched fast path, no
// silent discards), and a route deleted mid-burst must fail cleanly —
// the held-route cache's generation bump means no packet is ever
// forwarded through the deleted entry, and every casualty carries a
// typed drop reason.

import (
	"sync/atomic"
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/route"
	"bsd6/internal/testnet"
	"bsd6/internal/topo"
	"bsd6/internal/vclock"
)

func lineNet(t *testing.T, n int) *topo.Network {
	t.Helper()
	nw, err := topo.Build(topo.Spec{Kind: topo.Line, N: n, Seed: 1,
		Clock: vclock.NewVirtual(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	nw.Start()
	return nw
}

// echoRequest builds a raw ICMPv6 echo request with an arbitrary hop
// limit — the stack's own Ping6 always stamps the default, so expiry
// tests inject the wire bytes directly.
func echoRequest(src, dst inet.IP6, hops uint8, seq uint16) *mbuf.Mbuf {
	msg := make([]byte, 8)
	msg[0] = 128 // echo request
	msg[6], msg[7] = byte(seq>>8), byte(seq)
	ck := inet.TransportChecksum6(src, dst, proto.ICMPv6, msg)
	msg[2], msg[3] = byte(ck>>8), byte(ck)
	h := &ipv6.Header{NextHdr: proto.ICMPv6, HopLimit: hops, PayloadLen: len(msg), Src: src, Dst: dst}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append(msg)
	return pkt
}

// injector attaches a bare promiscuous-free interface to a link's hub
// so tests can place hand-built frames on the wire.
func injector(t *testing.T, hub *netif.Hub) *netif.Interface {
	t.Helper()
	atk := netif.New("atk0", inet.LinkAddr{2, 0xa7, 0, 0, 0, 1}, 1500)
	atk.SetInput(func(_ *netif.Interface, fr netif.Frame) { fr.Payload.Free() })
	hub.Attach(atk)
	return atk
}

// TestHopLimitExpiryOneErrorPerPacket injects a burst of echo requests
// with hop limit 1 at a transit router: each must be dropped with the
// typed hop-limit reason and answered with exactly one ICMPv6 Time
// Exceeded back to the source — not zero (silent discard) and not more
// (duplicated errors from the forwarding fast path).
func TestHopLimitExpiryOneErrorPerPacket(t *testing.T) {
	const burst = 5 // well under the router's DefaultErrPPS budget
	nw := lineNet(t, 3)
	n0, router := nw.Nodes[0], nw.Nodes[1]

	var timeExceeded atomic.Uint64
	n0.S.ICMP6.OnErrorMsg = func(typ, _ uint8, _ inet.IP6, _ []byte) {
		if typ == 3 { // time exceeded
			timeExceeded.Add(1)
		}
	}

	atk := injector(t, nw.Links[0].Hub)
	src := topo.NodeAddr(0, 0) // n0: real, resolvable — the errors must land
	dst := topo.NodeAddr(2, 3) // far end of the line, two hops away
	for i := 0; i < burst; i++ {
		pkt := echoRequest(src, dst, 1, uint16(i))
		if err := atk.Output(router.Ports[0].HW, netif.EtherTypeIPv6, pkt); err != nil {
			t.Fatal(err)
		}
	}

	testnet.WaitFor(t, "time exceeded burst", func() bool {
		return timeExceeded.Load() >= burst
	})
	testnet.WaitFor(t, "quiescent", func() bool { return nw.Pending() == 0 })
	if got := timeExceeded.Load(); got != burst {
		t.Fatalf("time exceeded errors = %d, want exactly %d", got, burst)
	}
	snap := router.S.Snapshot()
	if d := snap.Reasons["ip6-hop-limit"]; d != burst {
		t.Errorf("router ip6-hop-limit drops = %d, want %d", d, burst)
	}
	if e := snap.ICMP6["OutErrors"]; e != burst {
		t.Errorf("router OutErrors = %d, want %d", e, burst)
	}
	if f := snap.IP6["Forwarded"]; f != 0 {
		t.Errorf("router forwarded %d expired packets", f)
	}
}

// TestRouteDeleteMidBurst deletes a transit router's route while
// traffic flows through its warmed held-route cache.  The delete bumps
// the table generation, so the very next packet re-walks the radix and
// fails with a typed no-route drop — never a forward through the stale
// cached entry — and restoring the route restores the path.
func TestRouteDeleteMidBurst(t *testing.T) {
	nw := lineNet(t, 4)
	n0, r1 := nw.Nodes[0], nw.Nodes[1]
	dst, _ := nw.Nodes[3].Addr()

	replies := func() uint64 { return n0.S.Snapshot().ICMP6["InEchoReps"] }
	ping := func(seq uint16) {
		if err := n0.S.Ping6(dst, 44, seq, []byte("burst")); err != nil {
			t.Fatal(err)
		}
	}

	// Warm r1's forwarding cache until transit hits it.
	seq := uint16(0)
	testnet.WaitFor(t, "forward cache warm", func() bool {
		seq++
		ping(seq)
		s := r1.S.Snapshot()
		return s.IP6["FwdCacheHits"] > 0 && replies() > 0
	})
	testnet.WaitFor(t, "quiescent before delete", func() bool { return nw.Pending() == 0 })

	// Delete r1's route toward the far link mid-stream.
	prefix := topo.LinkPrefix(2)
	if _, ok := r1.S.RT.Delete(inet.AFInet6, prefix[:], 64); !ok {
		t.Fatalf("no %v/64 route on r1 to delete", prefix)
	}
	before := r1.S.Snapshot()
	gotReplies := replies()
	for i := 0; i < 5; i++ {
		seq++
		ping(seq)
	}
	testnet.WaitFor(t, "no-route drops typed", func() bool {
		return r1.S.Snapshot().Reasons["ip6-no-route"] >= before.Reasons["ip6-no-route"]+5
	})
	testnet.WaitFor(t, "quiescent after burst", func() bool { return nw.Pending() == 0 })
	after := r1.S.Snapshot()
	if after.IP6["Forwarded"] != before.IP6["Forwarded"] {
		t.Fatalf("router forwarded %d packets through a deleted route",
			after.IP6["Forwarded"]-before.IP6["Forwarded"])
	}
	if after.IP6["OutNoRoute"] <= before.IP6["OutNoRoute"] {
		t.Fatal("OutNoRoute did not rise across the dead burst")
	}
	if replies() != gotReplies {
		t.Fatalf("%d echo replies crossed a deleted route", replies()-gotReplies)
	}

	// Restore the route exactly as the builder installed it and the
	// path must come back — including refilling the bumped cache.
	r1.S.RT.Add(&route.Entry{
		Family: inet.AFInet6, Dst: append([]byte(nil), prefix[:]...), Plen: 64,
		Gateway: topo.NodeAddr(1, 2), Flags: route.FlagUp | route.FlagGateway | route.FlagStatic,
		IfName: r1.Ports[1].Name,
	})
	seq++
	ping(seq)
	testnet.WaitFor(t, "reply after re-add", func() bool { return replies() > gotReplies })
	if hits := r1.S.Snapshot().IP6["FwdCacheHits"]; hits <= before.IP6["FwdCacheHits"] {
		t.Logf("note: cache not yet re-warmed (hits=%d)", hits) // first packet re-walks; not fatal
	}
}
