package route

import (
	"sync/atomic"

	"bsd6/internal/inet"
)

// Cache is a held route in the style of 4.4 BSD's struct route: a PCB
// embeds one so repeated sends to the same destination skip the radix
// walk (ip_output's `if (ro->ro_rt == 0 ...) rtalloc(ro)` pattern).
//
// Validation is one atomic generation compare: any structural table
// change — add, delete, change, clone, expiry — bumps Table.Gen and
// implicitly drops every cached route in the stack, the moral
// equivalent of BSD checking RTF_UP before reusing ro_rt.  Entry
// fields that mutate in place under the table lock (ND state, PMTU)
// are NOT frozen by the cache; consumers must still read them under
// Table.View per send, exactly as the uncached path does.
//
// The zero value is an empty cache. All methods are safe for
// concurrent use, though a cache is normally owned by one PCB.
type Cache struct {
	p atomic.Pointer[cachedRoute]
}

type cachedRoute struct {
	e   *Entry
	gen uint64
	fam inet.Family
	dst [16]byte // the destination the entry was resolved for
	dl  int
}

// LookupCached is Table.Lookup through the cache: a hit costs one
// atomic compare; a miss does the real lookup and (when the result is
// safely cacheable) remembers it.
func (t *Table) LookupCached(f inet.Family, dst []byte, c *Cache) (*Entry, bool) {
	if c != nil {
		if e, ok := c.get(t, f, dst); ok {
			return e, true
		}
	}
	e, ok := t.Lookup(f, dst)
	if c != nil {
		if ok {
			t.fill(c, f, dst, e)
		} else {
			c.Invalidate()
		}
	}
	return e, ok
}

// get returns the cached entry if it is still current: same
// destination, and no structural table change since it was filled.
func (c *Cache) get(t *Table, f inet.Family, dst []byte) (*Entry, bool) {
	cr := c.p.Load()
	if cr == nil || t == nil || cr.fam != f || cr.dl != len(dst) ||
		string(cr.dst[:cr.dl]) != string(dst) || cr.gen != t.gen.Load() {
		return nil, false
	}
	atomic.AddUint64(&cr.e.Use, 1)
	t.touch(cr.e) // keep LRU recency honest for cache-hit traffic
	return cr.e, true
}

// fill remembers e for dst. Entries with an expiry are not cached —
// Lookup applies time-based retirement the generation counter cannot
// see.  Reading Expire requires the table lock (Mutate writes it).
func (t *Table) fill(c *Cache, f inet.Family, dst []byte, e *Entry) {
	cr := &cachedRoute{e: e, fam: f, dl: len(dst)}
	copy(cr.dst[:], dst)
	ok := false
	t.mu.RLock()
	// Sample the generation under the lock, after the lookup: a
	// concurrent structural change between the two leaves the cached
	// pair stale, never wrongly fresh.
	cr.gen = t.gen.Load()
	ok = e.Expire.IsZero() || e.Flags&FlagLLInfo != 0
	t.mu.RUnlock()
	if ok {
		c.p.Store(cr)
	} else {
		c.p.Store(nil)
	}
}

// CacheGet returns the cached entry for dst if it is still current,
// without falling back to a lookup.  Callers whose miss path is more
// than a plain Lookup (the IPv6 output path clones host routes on
// miss) use this with CacheFill instead of LookupCached.
func (t *Table) CacheGet(c *Cache, f inet.Family, dst []byte) (*Entry, bool) {
	if c == nil {
		return nil, false
	}
	return c.get(t, f, dst)
}

// CacheFill remembers e as the route for dst, subject to the same
// cacheability rules as LookupCached's miss path.
func (t *Table) CacheFill(c *Cache, f inet.Family, dst []byte, e *Entry) {
	if c == nil || e == nil {
		return
	}
	t.fill(c, f, dst, e)
}

// Invalidate empties the cache (socket disconnect, family change).
func (c *Cache) Invalidate() { c.p.Store(nil) }

// ShardedSize is the number of Caches in a ShardedCache.  64 shards
// keep a router's working set of next hops resident while bounding the
// memory to one pointer per shard.
const ShardedSize = 64

// ShardedCache is a fixed array of Caches indexed by destination hash
// — the forwarding path's held route.  A transit router sees many
// destinations rather than one PCB's single peer, so a lone Cache
// would thrash; hashing the destination across a small array gives
// each active next-hop flow its own slot.  Validation is unchanged
// (one generation compare per shard), so a route delete anywhere still
// drops every shard on the next compare.  The zero value is ready to
// use and safe for concurrent forwarding workers.
type ShardedCache [ShardedSize]Cache

// For returns the shard holding dst's cached route (FNV-1a over the
// address bytes).
func (s *ShardedCache) For(dst []byte) *Cache {
	h := uint32(2166136261)
	for _, b := range dst {
		h = (h ^ uint32(b)) * 16777619
	}
	return &s[h%ShardedSize]
}
