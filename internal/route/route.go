// Package route implements the routing table layer above the radix tree.
//
// The NRL IPv6 work leans on the 4.4 BSD routing table for two things
// beyond forwarding:
//
//   - Path MTU discovery (§2.2): "Our implementation stores Path MTU
//     information in host routes.  Host routes are automatically created
//     for IP communications originating on the local machine."  The MTU
//     field on Entry is that storage, read by TCP (for the MSS), UDP and
//     ICMP, and written by ICMPv6 Packet Too Big processing.
//
//   - Neighbor Discovery (§4.3): "Our implementation uses host routes
//     for on-link neighbors and keeps link-layer information inside the
//     route, much as 4.4BSD implements ARP entries."  On-link prefixes
//     are cloning network routes; sending to an on-link destination
//     clones a host route whose Gateway is a link-layer address, and the
//     ND state machine lives in the route's LLInfo.  Unreachable
//     neighbors linger and are marked RTF_REJECT.
//
// A Table holds one radix tree per address family and emits
// routing-socket-style messages (RTM_*) to subscribers, the mechanism
// the paper compares PF_KEY to (§3.1, §6.2).
package route

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/radix"
	"bsd6/internal/stat"
)

// Route flags, following 4.4 BSD's RTF_* values in spirit.
const (
	FlagUp       = 1 << iota // route usable
	FlagGateway              // destination reached via a gateway
	FlagHost                 // host route (full-length prefix)
	FlagCloning              // network route that clones host routes on use
	FlagLLInfo               // gateway is a link-layer address (ND/ARP entry)
	FlagReject               // negative entry: fail sends immediately
	FlagDynamic              // created dynamically (by cloning or redirect)
	FlagModified             // modified dynamically (e.g. by PMTU discovery)
	FlagLocal                // destination is one of our own addresses
	FlagStatic               // manually added
)

// FlagString renders route flags the way netstat -r would.
func FlagString(f int) string {
	s := ""
	for _, fl := range []struct {
		bit int
		ch  byte
	}{
		{FlagUp, 'U'}, {FlagGateway, 'G'}, {FlagHost, 'H'}, {FlagCloning, 'C'},
		{FlagLLInfo, 'L'}, {FlagReject, 'R'}, {FlagDynamic, 'D'},
		{FlagModified, 'M'}, {FlagLocal, 'l'}, {FlagStatic, 'S'},
	} {
		if f&fl.bit != 0 {
			s += string(fl.ch)
		}
	}
	return s
}

// Entry is a routing table entry (BSD's struct rtentry).
type Entry struct {
	Family inet.Family
	Dst    []byte // destination address bytes (4 or 16)
	Plen   int    // prefix length in bits
	// Gateway is the next hop: an inet.IP4 / inet.IP6 for indirect
	// routes, or an inet.LinkAddr for link-layer (ND/ARP) host routes.
	Gateway any
	Flags   int
	IfName  string // outgoing interface

	// MTU is the path MTU for this destination; 0 means "use the
	// interface MTU". Updated by ICMPv6 Packet Too Big (§2.2).
	MTU int

	// Expire, if nonzero, is when the entry should be discarded or
	// (for neighbor entries) re-verified.
	Expire time.Time

	// LLInfo carries protocol-private state: the ND reachability
	// machine for neighbor host routes.  When the neighbor-cache cap
	// evicts an entry, its LLInfo is consulted through the NeighborPin
	// and NeighborRelease interfaces.
	LLInfo any

	// Use counts packets routed via this entry. Updated atomically:
	// cached-route sends (Cache) charge it without the table lock.
	Use uint64

	// lastUse is the LRU recency stamp (a table use-tick, not a
	// time), written atomically on every lookup or cache hit so the
	// neighbor-cache eviction can pick the least recently used entry
	// without touching the clock on the fast path.
	lastUse uint64
}

// NeighborPin is implemented by Entry.LLInfo values that can veto
// neighbor-cache eviction.  ND pins entries for routers learned via
// Router Discovery (§4.3), so a neighbor-cache flood can never evict
// the default router out from under the host.
type NeighborPin interface {
	// EvictPinned reports whether the entry must never be evicted.
	EvictPinned() bool
}

// NeighborRelease is implemented by Entry.LLInfo values holding
// resources — ND queues packets awaiting resolution — that must be
// freed when the neighbor-cache cap evicts the entry.
type NeighborRelease interface {
	// ReleaseOnEvict frees the LLInfo's held resources.
	ReleaseOnEvict()
}

// Host reports whether e is a host (full-prefix) route.
func (e *Entry) Host() bool { return e.Flags&FlagHost != 0 }

func (e *Entry) dstString() string {
	switch e.Family {
	case inet.AFInet:
		var a inet.IP4
		copy(a[:], e.Dst)
		if e.Host() {
			return a.String()
		}
		return fmt.Sprintf("%s/%d", a.String(), e.Plen)
	case inet.AFInet6:
		var a inet.IP6
		copy(a[:], e.Dst)
		if e.Host() {
			return a.String()
		}
		return fmt.Sprintf("%s/%d", a.String(), e.Plen)
	}
	return fmt.Sprintf("%x/%d", e.Dst, e.Plen)
}

func (e *Entry) String() string {
	gw := ""
	switch g := e.Gateway.(type) {
	case inet.IP4:
		gw = g.String()
	case inet.IP6:
		gw = g.String()
	case inet.LinkAddr:
		gw = g.String()
	case nil:
		gw = "-"
	default:
		gw = fmt.Sprint(g)
	}
	return fmt.Sprintf("%-28s %-20s %-8s %s", e.dstString(), gw, FlagString(e.Flags), e.IfName)
}

// Message types for the routing message stream (BSD's RTM_*).
type MsgType int

const (
	MsgAdd     MsgType = iota + 1 // route added
	MsgDelete                     // route deleted
	MsgChange                     // route modified (gateway, MTU, flags)
	MsgMiss                       // lookup failed
	MsgResolve                    // host route cloned from a cloning route
)

func (m MsgType) String() string {
	switch m {
	case MsgAdd:
		return "RTM_ADD"
	case MsgDelete:
		return "RTM_DELETE"
	case MsgChange:
		return "RTM_CHANGE"
	case MsgMiss:
		return "RTM_MISS"
	case MsgResolve:
		return "RTM_RESOLVE"
	}
	return fmt.Sprintf("RTM_%d", int(m))
}

// Message is one routing-socket message.
type Message struct {
	Type  MsgType
	Entry *Entry // nil for MsgMiss
	Dst   []byte // the address that missed, for MsgMiss
}

// Table is a dual-family routing table.
//
// Reads (Lookup, View, Walk) take the lock shared, so concurrent
// senders do not serialize on the radix walk; structural changes —
// Add, Delete, Change, clone-on-lookup, expiry — take it exclusive
// and bump the generation counter that validates cached routes.
type Table struct {
	mu   sync.RWMutex
	v4   *radix.Tree
	v6   *radix.Tree
	subs []chan Message
	gen  atomic.Uint64 // bumped on every structural change

	// Now is the clock; tests may replace it.
	Now func() time.Time

	// MaxNeighbors bounds the dynamic neighbor (link-layer) host
	// routes kept per address family — BSD's ARP/ND cache, which a
	// remote peer can grow one entry per spoofed on-link source.
	// 0 means unlimited.  When a new neighbor entry would exceed the
	// cap, an existing one is evicted: unreachable (RTF_REJECT)
	// entries first, then the least recently used; entries whose
	// LLInfo is pinned (NeighborPin — default routers) are never
	// evicted, so the cap can be exceeded by the number of routers
	// but by nothing else.
	MaxNeighbors int

	// Drops receives a typed nd-cache-evicted event for each entry
	// the cap evicts; nil disables recording.
	Drops *stat.Recorder

	// NbrEvictions counts cap-induced neighbor evictions.
	NbrEvictions stat.Counter

	nbr4, nbr6 int           // neighbor-entry counts, under mu
	useTick    atomic.Uint64 // LRU recency source for Entry.lastUse
}

// isNeighbor reports whether e is a dynamic neighbor (ND/ARP) host
// route — the entry class the neighbor-cache cap governs.  Static
// entries are operator state and never count against the cap.
func isNeighbor(e *Entry) bool {
	const nbr = FlagHost | FlagLLInfo | FlagDynamic
	return e.Flags&nbr == nbr && e.Flags&FlagStatic == 0
}

// nbrCount returns a pointer to the family's neighbor count; callers
// hold t.mu.
func (t *Table) nbrCount(f inet.Family) *int {
	if f == inet.AFInet {
		return &t.nbr4
	}
	return &t.nbr6
}

// NeighborCount returns the number of dynamic neighbor host routes in
// the family — the occupancy half of the nd-cache limit surface.
func (t *Table) NeighborCount(f inet.Family) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return *t.nbrCount(f)
}

// touch stamps e's LRU recency; called on every lookup and cache hit.
func (t *Table) touch(e *Entry) {
	atomic.StoreUint64(&e.lastUse, t.useTick.Add(1))
}

// evictNeighborLocked makes room for one new neighbor entry in family
// f when the cap is reached: it removes the best victim — an
// unreachable (RTF_REJECT) entry if any exists, else the least
// recently used — skipping pinned entries.  Called with t.mu held
// exclusively.  Returns false when every entry is pinned (the new
// entry is admitted over-cap rather than refusing to talk to a new
// neighbor).
func (t *Table) evictNeighborLocked(f inet.Family) bool {
	var victim *Entry
	victimReject := false
	t.tree(f).Walk(func(_ []byte, _ int, v any) bool {
		e := v.(*Entry)
		if !isNeighbor(e) {
			return true
		}
		if pin, ok := e.LLInfo.(NeighborPin); ok && pin.EvictPinned() {
			return true
		}
		rej := e.Flags&FlagReject != 0
		switch {
		case victim == nil,
			rej && !victimReject,
			rej == victimReject && atomic.LoadUint64(&e.lastUse) < atomic.LoadUint64(&victim.lastUse):
			victim, victimReject = e, rej
		}
		return true
	})
	if victim == nil {
		return false
	}
	t.tree(f).Delete(victim.Dst, victim.Plen)
	*t.nbrCount(f)--
	t.gen.Add(1)
	if rel, ok := victim.LLInfo.(NeighborRelease); ok {
		rel.ReleaseOnEvict()
	}
	t.NbrEvictions.Inc()
	t.Drops.DropNote(stat.RNbrCacheEvicted, victim.dstString())
	t.notify(Message{Type: MsgDelete, Entry: victim})
	return true
}

// admitNeighborLocked applies the cap ahead of inserting a new
// neighbor entry and charges the family count.  t.mu held.
func (t *Table) admitNeighborLocked(f inet.Family) {
	n := t.nbrCount(f)
	for t.MaxNeighbors > 0 && *n >= t.MaxNeighbors {
		if !t.evictNeighborLocked(f) {
			break // all pinned: admit over-cap
		}
	}
	*n++
}

// NewTable returns an empty routing table.
func NewTable() *Table {
	return &Table{v4: radix.New(4), v6: radix.New(16), Now: time.Now}
}

func (t *Table) tree(f inet.Family) *radix.Tree {
	if f == inet.AFInet {
		return t.v4
	}
	return t.v6
}

// Subscribe registers a routing message channel. Messages are sent
// non-blocking: a full subscriber misses messages rather than stalling
// the stack (as a full routing socket buffer drops messages in BSD).
func (t *Table) Subscribe(buf int) chan Message {
	ch := make(chan Message, buf)
	t.mu.Lock()
	t.subs = append(t.subs, ch)
	t.mu.Unlock()
	return ch
}

// Unsubscribe removes a channel registered with Subscribe.
func (t *Table) Unsubscribe(ch chan Message) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, c := range t.subs {
		if c == ch {
			t.subs = append(t.subs[:i], t.subs[i+1:]...)
			return
		}
	}
}

// notify must be called with t.mu held.
func (t *Table) notify(m Message) {
	for _, ch := range t.subs {
		select {
		case ch <- m:
		default:
		}
	}
}

func keyBytes(f inet.Family, dst []byte) []byte {
	want := 4
	if f == inet.AFInet6 {
		want = 16
	}
	if len(dst) != want {
		panic(fmt.Sprintf("route: family %v with %d-byte destination", f, len(dst)))
	}
	return dst
}

// Add inserts a route. An existing route for the same prefix is
// replaced.
func (t *Table) Add(e *Entry) *Entry {
	keyBytes(e.Family, e.Dst)
	if e.Plen == len(e.Dst)*8 {
		e.Flags |= FlagHost
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.tree(e.Family).LookupExact(e.Dst, e.Plen); ok {
		oe := old.(*Entry)
		if isNeighbor(oe) {
			*t.nbrCount(e.Family)-- // replaced below
		}
		// The replaced entry leaves the table for good: anything its
		// LLInfo holds (packets queued awaiting resolution) would be
		// orphaned — no timer or walk will ever see the entry again.
		if oe != e {
			if rel, ok := oe.LLInfo.(NeighborRelease); ok {
				rel.ReleaseOnEvict()
			}
		}
	}
	if isNeighbor(e) {
		t.admitNeighborLocked(e.Family)
	}
	t.touch(e)
	t.tree(e.Family).Insert(e.Dst, e.Plen, e)
	t.gen.Add(1)
	t.notify(Message{Type: MsgAdd, Entry: e})
	return e
}

// Delete removes the route for exactly dst/plen.
func (t *Table) Delete(f inet.Family, dst []byte, plen int) (*Entry, bool) {
	keyBytes(f, dst)
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.tree(f).Delete(dst, plen)
	if !ok {
		return nil, false
	}
	e := v.(*Entry)
	if isNeighbor(e) {
		*t.nbrCount(f)--
	}
	t.gen.Add(1)
	t.notify(Message{Type: MsgDelete, Entry: e})
	return e, true
}

// Get returns the route for exactly dst/plen.
func (t *Table) Get(f inet.Family, dst []byte, plen int) (*Entry, bool) {
	keyBytes(f, dst)
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.tree(f).LookupExact(dst, plen)
	if !ok {
		return nil, false
	}
	return v.(*Entry), true
}

// Lookup finds the most specific usable route to dst, performing BSD's
// rtalloc cloning: a match on an RTF_CLONING network route creates and
// returns a host route for dst (this is how on-link IPv6 prefixes spawn
// the neighbor host routes that ND then fills in, and how host routes
// "automatically created for IP communications originating on the
// local machine" come to exist for PMTU storage).
func (t *Table) Lookup(f inet.Family, dst []byte) (*Entry, bool) {
	keyBytes(f, dst)
	// Fast path, shared lock: the common steady-state lookup finds a
	// live non-cloning entry and only has to charge its Use counter.
	t.mu.RLock()
	if v, ok := t.tree(f).Lookup(dst); ok {
		e := v.(*Entry)
		if e.Flags&FlagCloning == 0 &&
			(e.Expire.IsZero() || e.Flags&FlagLLInfo != 0 || !t.Now().After(e.Expire)) {
			atomic.AddUint64(&e.Use, 1)
			t.touch(e)
			t.mu.RUnlock()
			return e, true
		}
	}
	t.mu.RUnlock()
	// Slow path, exclusive lock: miss notification, expiry, cloning.
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lookupLocked(f, dst)
}

func (t *Table) lookupLocked(f inet.Family, dst []byte) (*Entry, bool) {
	v, ok := t.tree(f).Lookup(dst)
	if !ok {
		t.notify(Message{Type: MsgMiss, Dst: append([]byte(nil), dst...)})
		return nil, false
	}
	e := v.(*Entry)
	if !e.Expire.IsZero() && e.Flags&FlagLLInfo == 0 && t.Now().After(e.Expire) {
		// Expired non-neighbor dynamic route: drop and retry.
		// (Neighbor routes expire under ND's control, not here.)
		t.tree(f).Delete(e.Dst, e.Plen)
		t.gen.Add(1)
		t.notify(Message{Type: MsgDelete, Entry: e})
		return t.lookupLocked(f, dst)
	}
	if e.Flags&FlagCloning != 0 {
		clone := &Entry{
			Family:  f,
			Dst:     append([]byte(nil), dst...),
			Plen:    len(dst) * 8,
			Gateway: e.Gateway,
			Flags:   FlagUp | FlagHost | FlagDynamic | (e.Flags & FlagLLInfo),
			IfName:  e.IfName,
			MTU:     e.MTU,
		}
		if isNeighbor(clone) {
			t.admitNeighborLocked(f)
		}
		t.tree(f).Insert(clone.Dst, clone.Plen, clone)
		t.gen.Add(1)
		t.notify(Message{Type: MsgResolve, Entry: clone})
		e = clone
	}
	atomic.AddUint64(&e.Use, 1)
	t.touch(e)
	return e, true
}

// Change updates an existing route in place under the table lock and
// emits RTM_CHANGE. The update function must not call back into the
// table.
func (t *Table) Change(e *Entry, update func(*Entry)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	update(e)
	e.Flags |= FlagModified
	t.gen.Add(1)
	t.notify(Message{Type: MsgChange, Entry: e})
}

// Mutate runs fn with the table lock held.  Entry fields that change
// after insertion — Gateway, Flags, Expire, MTU, LLInfo — are guarded
// by this lock; protocol code (ARP, ND, PMTU) must read and write them
// inside Mutate/View.  fn must not call other Table methods.
func (t *Table) Mutate(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fn()
}

// View is Mutate's read-side counterpart: fn sees a consistent
// snapshot of entry fields, and concurrent Views do not serialize.
func (t *Table) View(fn func()) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	fn()
}

// Walk visits every route of the family in key order.
func (t *Table) Walk(f inet.Family, fn func(*Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.tree(f).Walk(func(_ []byte, _ int, v any) bool {
		return fn(v.(*Entry))
	})
}

// Len returns the number of routes in the given family.
func (t *Table) Len(f inet.Family) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tree(f).Len()
}

// Gen returns the table's structural generation. It changes whenever a
// route is added, deleted, changed, cloned, or expired, so a cached
// (entry, gen) pair is valid exactly while Gen is unchanged.
func (t *Table) Gen() uint64 { return t.gen.Load() }

// Dump renders the table like netstat -r.
func (t *Table) Dump(f inet.Family) string {
	out := fmt.Sprintf("%-28s %-20s %-8s %s\n", "Destination", "Gateway", "Flags", "Netif")
	t.Walk(f, func(e *Entry) bool {
		out += e.String() + "\n"
		return true
	})
	return out
}
