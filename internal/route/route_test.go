package route

import (
	"strings"
	"testing"
	"time"

	"bsd6/internal/inet"
)

func ip6(t *testing.T, s string) inet.IP6 {
	t.Helper()
	a, err := inet.ParseIP6(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAddLookupHostFlag(t *testing.T) {
	tb := NewTable()
	dst := ip6(t, "2001:db8::1")
	e := tb.Add(&Entry{Family: inet.AFInet6, Dst: dst[:], Plen: 128, Flags: FlagUp, IfName: "sim0"})
	if !e.Host() {
		t.Fatal("full-length prefix must set FlagHost")
	}
	got, ok := tb.Lookup(inet.AFInet6, dst[:])
	if !ok || got != e {
		t.Fatal("lookup of host route")
	}
	if got.Use != 1 {
		t.Fatalf("Use = %d", got.Use)
	}
}

func TestLookupMiss(t *testing.T) {
	tb := NewTable()
	ch := tb.Subscribe(4)
	dst := ip6(t, "2001:db8::1")
	if _, ok := tb.Lookup(inet.AFInet6, dst[:]); ok {
		t.Fatal("lookup in empty table succeeded")
	}
	select {
	case m := <-ch:
		if m.Type != MsgMiss {
			t.Fatalf("message type %v", m.Type)
		}
	default:
		t.Fatal("no RTM_MISS message")
	}
}

func TestCloningCreatesHostRoute(t *testing.T) {
	tb := NewTable()
	ch := tb.Subscribe(4)
	prefix := ip6(t, "2001:db8:1::")
	tb.Add(&Entry{
		Family: inet.AFInet6, Dst: prefix[:], Plen: 64,
		Flags: FlagUp | FlagCloning | FlagLLInfo, IfName: "sim0", MTU: 1500,
	})
	<-ch // RTM_ADD
	dst := ip6(t, "2001:db8:1::42")
	e, ok := tb.Lookup(inet.AFInet6, dst[:])
	if !ok {
		t.Fatal("lookup via cloning route failed")
	}
	if !e.Host() || e.Flags&FlagDynamic == 0 || e.Flags&FlagLLInfo == 0 {
		t.Fatalf("clone flags = %s", FlagString(e.Flags))
	}
	if e.MTU != 1500 || e.IfName != "sim0" {
		t.Fatalf("clone did not inherit MTU/ifname: %+v", e)
	}
	m := <-ch
	if m.Type != MsgResolve {
		t.Fatalf("expected RTM_RESOLVE, got %v", m.Type)
	}
	// Second lookup returns the same host route, no second clone.
	e2, _ := tb.Lookup(inet.AFInet6, dst[:])
	if e2 != e {
		t.Fatal("second lookup cloned again")
	}
	if tb.Len(inet.AFInet6) != 2 {
		t.Fatalf("table size = %d", tb.Len(inet.AFInet6))
	}
}

func TestPMTUStoredInHostRoute(t *testing.T) {
	// The §2.2 pattern: a host route is cloned for a destination, and
	// Packet Too Big processing lowers its MTU via Change.
	tb := NewTable()
	prefix := ip6(t, "2001:db8:1::")
	tb.Add(&Entry{Family: inet.AFInet6, Dst: prefix[:], Plen: 64,
		Flags: FlagUp | FlagCloning, IfName: "sim0", MTU: 1500})
	dst := ip6(t, "2001:db8:1::9")
	e, _ := tb.Lookup(inet.AFInet6, dst[:])
	ch := tb.Subscribe(1)
	tb.Change(e, func(e *Entry) { e.MTU = 1280 })
	if e.MTU != 1280 || e.Flags&FlagModified == 0 {
		t.Fatal("Change did not apply")
	}
	if m := <-ch; m.Type != MsgChange {
		t.Fatalf("expected RTM_CHANGE, got %v", m.Type)
	}
	// The network route is untouched; a different destination clones
	// with the original MTU.
	other := ip6(t, "2001:db8:1::10")
	e2, _ := tb.Lookup(inet.AFInet6, other[:])
	if e2.MTU != 1500 {
		t.Fatal("PMTU leaked to unrelated destination")
	}
}

func TestDefaultRoute(t *testing.T) {
	tb := NewTable()
	var zero inet.IP6
	gw := ip6(t, "fe80::1")
	tb.Add(&Entry{Family: inet.AFInet6, Dst: zero[:], Plen: 0,
		Flags: FlagUp | FlagGateway, Gateway: gw, IfName: "sim0"})
	dst := ip6(t, "2607:f8b0::99")
	e, ok := tb.Lookup(inet.AFInet6, dst[:])
	if !ok || e.Flags&FlagGateway == 0 {
		t.Fatal("default route not used")
	}
	if g, _ := e.Gateway.(inet.IP6); g != gw {
		t.Fatal("gateway lost")
	}
}

func TestMoreSpecificWins(t *testing.T) {
	tb := NewTable()
	var zero inet.IP6
	tb.Add(&Entry{Family: inet.AFInet6, Dst: zero[:], Plen: 0, Flags: FlagUp, IfName: "default"})
	p := ip6(t, "2001:db8::")
	tb.Add(&Entry{Family: inet.AFInet6, Dst: p[:], Plen: 32, Flags: FlagUp, IfName: "specific"})
	dst := ip6(t, "2001:db8::5")
	e, _ := tb.Lookup(inet.AFInet6, dst[:])
	if e.IfName != "specific" {
		t.Fatalf("matched %s", e.IfName)
	}
}

func TestDelete(t *testing.T) {
	tb := NewTable()
	dst := ip6(t, "2001:db8::1")
	tb.Add(&Entry{Family: inet.AFInet6, Dst: dst[:], Plen: 128, Flags: FlagUp})
	ch := tb.Subscribe(2)
	e, ok := tb.Delete(inet.AFInet6, dst[:], 128)
	if !ok || e == nil {
		t.Fatal("delete failed")
	}
	if m := <-ch; m.Type != MsgDelete {
		t.Fatalf("expected RTM_DELETE, got %v", m.Type)
	}
	if _, ok := tb.Delete(inet.AFInet6, dst[:], 128); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestExpiry(t *testing.T) {
	tb := NewTable()
	now := time.Unix(1000, 0)
	tb.Now = func() time.Time { return now }
	dst := ip6(t, "2001:db8::1")
	tb.Add(&Entry{Family: inet.AFInet6, Dst: dst[:], Plen: 128,
		Flags: FlagUp | FlagDynamic, Expire: now.Add(10 * time.Second)})
	if _, ok := tb.Lookup(inet.AFInet6, dst[:]); !ok {
		t.Fatal("fresh dynamic route should match")
	}
	now = now.Add(time.Minute)
	if _, ok := tb.Lookup(inet.AFInet6, dst[:]); ok {
		t.Fatal("expired route still matched")
	}
	if tb.Len(inet.AFInet6) != 0 {
		t.Fatal("expired route not removed")
	}
}

func TestNeighborRoutesExpireUnderNDControl(t *testing.T) {
	// Routes flagged LLInfo (neighbor entries) are not reaped by
	// Lookup even when Expire has passed — ND decides their fate
	// (lingering + RTF_REJECT, §4.3).
	tb := NewTable()
	now := time.Unix(1000, 0)
	tb.Now = func() time.Time { return now }
	dst := ip6(t, "fe80::2")
	tb.Add(&Entry{Family: inet.AFInet6, Dst: dst[:], Plen: 128,
		Flags:  FlagUp | FlagLLInfo | FlagHost,
		Expire: now.Add(-time.Second)})
	if _, ok := tb.Lookup(inet.AFInet6, dst[:]); !ok {
		t.Fatal("neighbor route reaped by Lookup")
	}
}

func TestV4Table(t *testing.T) {
	tb := NewTable()
	net := inet.IP4{10, 0, 0, 0}
	tb.Add(&Entry{Family: inet.AFInet, Dst: net[:], Plen: 8, Flags: FlagUp | FlagCloning, IfName: "sim0"})
	dst := inet.IP4{10, 1, 2, 3}
	e, ok := tb.Lookup(inet.AFInet, dst[:])
	if !ok || !e.Host() {
		t.Fatal("v4 cloning lookup")
	}
	if tb.Len(inet.AFInet) != 2 || tb.Len(inet.AFInet6) != 0 {
		t.Fatal("families must be independent")
	}
}

func TestSubscribeNonBlocking(t *testing.T) {
	tb := NewTable()
	ch := tb.Subscribe(1) // tiny buffer
	a := inet.IP4{1, 1, 1, 1}
	b := inet.IP4{2, 2, 2, 2}
	tb.Add(&Entry{Family: inet.AFInet, Dst: a[:], Plen: 32, Flags: FlagUp})
	tb.Add(&Entry{Family: inet.AFInet, Dst: b[:], Plen: 32, Flags: FlagUp}) // dropped, must not block
	if len(ch) != 1 {
		t.Fatalf("queued %d", len(ch))
	}
	tb.Unsubscribe(ch)
	c := inet.IP4{3, 3, 3, 3}
	tb.Add(&Entry{Family: inet.AFInet, Dst: c[:], Plen: 32, Flags: FlagUp})
	if len(ch) != 1 {
		t.Fatal("unsubscribed channel still receiving")
	}
}

func TestFlagString(t *testing.T) {
	s := FlagString(FlagUp | FlagHost | FlagLLInfo | FlagReject)
	if s != "UHLR" {
		t.Fatalf("FlagString = %q", s)
	}
}

func TestDumpFormat(t *testing.T) {
	tb := NewTable()
	dst := ip6(t, "fe80::2")
	mac := inet.LinkAddr{0, 1, 2, 3, 4, 5}
	tb.Add(&Entry{Family: inet.AFInet6, Dst: dst[:], Plen: 128,
		Flags: FlagUp | FlagLLInfo, Gateway: mac, IfName: "sim0"})
	out := tb.Dump(inet.AFInet6)
	if !strings.Contains(out, "fe80::2") || !strings.Contains(out, "00:01:02:03:04:05") {
		t.Fatalf("dump:\n%s", out)
	}
	if !strings.Contains(out, "UHL") {
		t.Fatalf("dump flags missing:\n%s", out)
	}
}

func TestBadKeyPanics(t *testing.T) {
	tb := NewTable()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong-size destination")
		}
	}()
	tb.Lookup(inet.AFInet6, []byte{1, 2, 3, 4})
}
