// Package proto holds the protocol numbers and the per-packet metadata
// record shared by every layer of the stack.
//
// In 4.4 BSD the moral equivalent of Meta is scattered across the mbuf
// packet header and the overlay structures (struct ipovly /
// struct ipv6ovly, paper Figures 5 and 6) that transports use to reach
// IP-layer fields.  Collecting it in one struct is what lets the shared
// TCP and UDP implementations run over both IP versions with a single
// "which code path" discriminator, the way the paper's modified
// udp_input() and tcp_input() use a local variable set on entry (§5.2).
package proto

import (
	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
)

// IP protocol / IPv6 next-header numbers.
const (
	HopByHop = 0  // IPv6 hop-by-hop options header
	ICMP     = 1  // ICMPv4
	IPv4     = 4  // IPv4-in-IP encapsulation (ESP tunnel inner, v4)
	TCP      = 6  //
	UDP      = 17 //
	IPv6     = 41 // IPv6-in-IP encapsulation (ESP tunnel inner, v6)
	Routing  = 43 // IPv6 routing header
	Fragment = 44 // IPv6 fragment header
	ESP      = 50 // Encapsulating Security Payload
	AH       = 51 // Authentication Header
	ICMPv6   = 58 //
	NoNext   = 59 // IPv6 no-next-header
	DstOpts  = 60 // IPv6 destination options header
)

// Name returns the conventional name of a protocol number.
func Name(p uint8) string {
	switch p {
	case HopByHop:
		return "hopopt"
	case ICMP:
		return "icmp"
	case IPv4:
		return "ipip"
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	case IPv6:
		return "ipv6"
	case Routing:
		return "route6"
	case Fragment:
		return "frag6"
	case ESP:
		return "esp"
	case AH:
		return "ah"
	case ICMPv6:
		return "icmp6"
	case NoNext:
		return "nonext"
	case DstOpts:
		return "dstopts"
	}
	return "proto?"
}

// Meta describes a received (or about-to-be-sent) upper-layer packet:
// which IP carried it, its addresses, and transport-relevant IP fields.
type Meta struct {
	Family inet.Family

	// Populated when Family == AFInet.
	Src4, Dst4 inet.IP4
	// Populated when Family == AFInet6.
	Src6, Dst6 inet.IP6

	Proto    uint8  // transport protocol / final next-header
	Hops     uint8  // received TTL / hop limit
	FlowInfo uint32 // IPv6 priority + flow label, 0 for IPv4
	RcvIf    string // receiving interface name
}

// SrcIs6 returns the source as an IP6, mapping IPv4 sources to
// v4-mapped form — the shape a PF_INET6 socket sees (§5.2: "processing
// of an IPv4 packet destined for an IPv6 socket").
func (m *Meta) SrcIs6() inet.IP6 {
	if m.Family == inet.AFInet {
		return inet.V4Mapped(m.Src4)
	}
	return m.Src6
}

// DstIs6 is DstIs6's counterpart for the destination address.
func (m *Meta) DstIs6() inet.IP6 {
	if m.Family == inet.AFInet {
		return inet.V4Mapped(m.Dst4)
	}
	return m.Dst6
}

// TransportInput is the protocol-switch input entry: the IP layers call
// it with the packet positioned at the transport header.
type TransportInput func(pkt *mbuf.Mbuf, meta *Meta)

// CtlType classifies control (error) notifications delivered upward by
// the ctlinput path: ICMP errors that must reach the owning PCB.
type CtlType int

const (
	CtlUnreach     CtlType = iota + 1 // destination unreachable
	CtlPortUnreach                    // port unreachable
	CtlMsgSize                        // packet too big / frag needed: PMTU update
	CtlTimeExceed                     // hop limit exceeded
	CtlParamProb                      // parameter problem
)

func (c CtlType) String() string {
	switch c {
	case CtlUnreach:
		return "unreach"
	case CtlPortUnreach:
		return "port-unreach"
	case CtlMsgSize:
		return "msgsize"
	case CtlTimeExceed:
		return "time-exceeded"
	case CtlParamProb:
		return "param-problem"
	}
	return "ctl?"
}

// CtlInput is the error notification entry of a transport protocol.
// contents is the leading portion of the offending packet's transport
// header (at least 8 bytes when available); mtu is set for CtlMsgSize.
type CtlInput func(kind CtlType, meta *Meta, contents []byte, mtu int)
