package proto

import (
	"testing"

	"bsd6/internal/inet"
)

func TestName(t *testing.T) {
	cases := map[uint8]string{
		TCP: "tcp", UDP: "udp", ICMPv6: "icmp6", ICMP: "icmp",
		AH: "ah", ESP: "esp", HopByHop: "hopopt", Fragment: "frag6",
		Routing: "route6", DstOpts: "dstopts", NoNext: "nonext",
		IPv4: "ipip", IPv6: "ipv6", 99: "proto?",
	}
	for p, want := range cases {
		if got := Name(p); got != want {
			t.Errorf("Name(%d) = %q, want %q", p, got, want)
		}
	}
}

func TestMetaMappedViews(t *testing.T) {
	m4 := &Meta{Family: inet.AFInet, Src4: inet.IP4{10, 0, 0, 1}, Dst4: inet.IP4{10, 0, 0, 2}}
	if !m4.SrcIs6().IsV4Mapped() || !m4.DstIs6().IsV4Mapped() {
		t.Fatal("v4 meta not presented mapped")
	}
	if v4, _ := m4.SrcIs6().MappedV4(); v4 != m4.Src4 {
		t.Fatal("mapped source mismatch")
	}
	src6, _ := inet.ParseIP6("2001:db8::1")
	m6 := &Meta{Family: inet.AFInet6, Src6: src6}
	if m6.SrcIs6() != src6 {
		t.Fatal("v6 meta rewritten")
	}
}

func TestCtlTypeString(t *testing.T) {
	for _, c := range []CtlType{CtlUnreach, CtlPortUnreach, CtlMsgSize, CtlTimeExceed, CtlParamProb} {
		if c.String() == "ctl?" {
			t.Fatalf("missing name for %d", int(c))
		}
	}
	if CtlType(99).String() != "ctl?" {
		t.Fatal("unknown ctl name")
	}
}
