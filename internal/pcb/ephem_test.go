package pcb

import (
	"testing"

	"bsd6/internal/inet"
)

// TestEphemeralFullRangeUnderLoad regresses the allocator rewrite: with
// thousands of connected PCBs already occupying scattered ports, the
// allocator must still hand out every remaining port in the 1024..5000
// range exactly once (the port index answers occupancy in O(1); the old
// code rescanned every PCB per candidate port) and then fail with
// ErrNoPorts, not a wrong port or a stall.
func TestEphemeralFullRangeUnderLoad(t *testing.T) {
	tb := NewTable()
	local := mustIP6("2001:db8::1")
	peer := mustIP6("2001:db8::2")

	// Preload connected sessions on every 3rd ephemeral port: connected
	// PCBs still occupy their port for allocation purposes.
	occupied := make(map[uint16]bool)
	for port := uint16(ephemFirst); port <= ephemLast; port += 3 {
		p := tb.Attach(inet.AFInet6, nil)
		tb.SetTuple(p, local, port, peer, 9999)
		occupied[port] = true
	}

	want := ephemLast - ephemFirst + 1 - len(occupied)
	seen := make(map[uint16]bool)
	for i := 0; i < want; i++ {
		p := tb.Attach(inet.AFInet6, nil)
		if err := tb.Bind(p, inet.IP6{}, 0); err != nil {
			t.Fatalf("bind %d/%d: %v", i, want, err)
		}
		if p.LPort < ephemFirst || p.LPort > ephemLast {
			t.Fatalf("port %d outside ephemeral range", p.LPort)
		}
		if occupied[p.LPort] {
			t.Fatalf("allocator handed out occupied port %d", p.LPort)
		}
		if seen[p.LPort] {
			t.Fatalf("port %d allocated twice", p.LPort)
		}
		seen[p.LPort] = true
	}
	// The range is now exhausted.
	p := tb.Attach(inet.AFInet6, nil)
	if err := tb.Bind(p, inet.IP6{}, 0); err != ErrNoPorts {
		t.Fatalf("exhausted range: %v", err)
	}
	// Freeing one port makes exactly that port allocatable again.
	var victim *PCB
	for q := range tb.pcbs {
		if seen[q.LPort] && !q.idx.connected() {
			victim = q
			break
		}
	}
	freed := victim.LPort
	tb.Detach(victim)
	r := tb.Attach(inet.AFInet6, nil)
	if err := tb.Bind(r, inet.IP6{}, 0); err != nil {
		t.Fatal(err)
	}
	if r.LPort != freed {
		t.Fatalf("reallocated %d, want freed port %d", r.LPort, freed)
	}
}
