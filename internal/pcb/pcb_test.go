package pcb

import (
	"testing"

	"bsd6/internal/inet"
)

func ip6(t *testing.T, s string) inet.IP6 {
	t.Helper()
	a, err := inet.ParseIP6(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBindEphemeral(t *testing.T) {
	tb := NewTable()
	p := tb.Attach(inet.AFInet6, nil)
	if err := tb.Bind(p, inet.IP6{}, 0); err != nil {
		t.Fatal(err)
	}
	if p.LPort < 1024 || p.LPort > 5000 {
		t.Fatalf("ephemeral port %d", p.LPort)
	}
	q := tb.Attach(inet.AFInet6, nil)
	tb.Bind(q, inet.IP6{}, 0)
	if q.LPort == p.LPort {
		t.Fatal("duplicate ephemeral port")
	}
}

func TestBindConflicts(t *testing.T) {
	tb := NewTable()
	a1 := ip6(t, "2001:db8::1")
	a2 := ip6(t, "2001:db8::2")
	p := tb.Attach(inet.AFInet6, nil)
	if err := tb.Bind(p, a1, 7777); err != nil {
		t.Fatal(err)
	}
	// Same port, same addr: conflict.
	q := tb.Attach(inet.AFInet6, nil)
	if err := tb.Bind(q, a1, 7777); err != ErrAddrInUse {
		t.Fatalf("same addr/port: %v", err)
	}
	// Same port, different addr: allowed.
	if err := tb.Bind(q, a2, 7777); err != nil {
		t.Fatalf("different addr: %v", err)
	}
	// Wildcard vs specific on the same port: conflict.
	r := tb.Attach(inet.AFInet6, nil)
	if err := tb.Bind(r, inet.IP6{}, 7777); err != ErrAddrInUse {
		t.Fatalf("wildcard overlap: %v", err)
	}
	// Rebinding the same PCB is fine.
	if err := tb.Bind(p, a1, 7777); err != nil {
		t.Fatalf("self rebind: %v", err)
	}
}

func TestConnectSetsIPv6Flag(t *testing.T) {
	tb := NewTable()
	p := tb.Attach(inet.AFInet6, nil)
	// Native v6 destination: flag set (§5.1).
	if err := tb.Connect(p, ip6(t, "2001:db8::9"), 80); err != nil {
		t.Fatal(err)
	}
	if !p.IsIPv6() {
		t.Fatal("FlagIPv6 not set for native destination")
	}
	if p.LPort == 0 {
		t.Fatal("connect did not auto-bind")
	}
	// v4-mapped destination: flag cleared ("If that bit is not set,
	// then IPv4 is in use").
	tb.Disconnect(p)
	if err := tb.Connect(p, inet.V4Mapped(inet.IP4{10, 0, 0, 9}), 80); err != nil {
		t.Fatal(err)
	}
	if p.IsIPv6() {
		t.Fatal("FlagIPv6 set for mapped destination")
	}
}

func TestFamilyEnforcement(t *testing.T) {
	tb := NewTable()
	v4sock := tb.Attach(inet.AFInet, nil)
	// PF_INET socket cannot take a native v6 address.
	if err := tb.Connect(v4sock, ip6(t, "2001:db8::1"), 80); err != ErrFamilyMismatch {
		t.Fatalf("v4 socket to v6 dest: %v", err)
	}
	if err := tb.Connect(v4sock, inet.V4Mapped(inet.IP4{1, 2, 3, 4}), 80); err != nil {
		t.Fatalf("v4 socket to mapped: %v", err)
	}
	// V6ONLY blocks mapped destinations.
	v6only := tb.Attach(inet.AFInet6, nil)
	v6only.Flags |= FlagV6Only
	if err := tb.Connect(v6only, inet.V4Mapped(inet.IP4{1, 2, 3, 4}), 80); err != ErrFamilyMismatch {
		t.Fatalf("v6only to mapped: %v", err)
	}
}

func TestLookupPreference(t *testing.T) {
	tb := NewTable()
	local := ip6(t, "2001:db8::1")
	peer := ip6(t, "2001:db8::2")

	// Install PCBs via SetTuple: wildcard + specific on one port would
	// need SO_REUSEADDR to coexist via Bind, but Lookup must still
	// rank them correctly when they do.
	wild := tb.Attach(inet.AFInet6, "wild")
	tb.SetTuple(wild, inet.IP6{}, 53, inet.IP6{}, 0)
	bound := tb.Attach(inet.AFInet6, "bound")
	tb.SetTuple(bound, local, 53, inet.IP6{}, 0)
	connected := tb.Attach(inet.AFInet6, "conn")
	tb.SetTuple(connected, local, 53, peer, 4242)

	// Fully matching traffic hits the connected PCB.
	got := tb.Lookup(local, 53, peer, 4242, false)
	if got != connected {
		t.Fatalf("connected lookup: %v", got.Socket)
	}
	// Different foreign port falls back to bound-local.
	got = tb.Lookup(local, 53, peer, 9999, false)
	if got != bound {
		t.Fatalf("bound lookup: %v", got.Socket)
	}
	// Different local address falls back to wildcard.
	got = tb.Lookup(ip6(t, "2001:db8::7"), 53, peer, 9999, false)
	if got != wild {
		t.Fatalf("wildcard lookup: %v", got.Socket)
	}
	// No port match: nothing.
	if tb.Lookup(local, 55, peer, 4242, false) != nil {
		t.Fatal("matched wrong port")
	}
}

func TestV4TrafficToV6Socket(t *testing.T) {
	// §5.2: "The IPv6 BSD Sockets API specification allows an
	// application to receive both IPv4 and IPv6 datagrams using an
	// IPv6 socket."
	tb := NewTable()
	v6 := tb.Attach(inet.AFInet6, "v6")
	tb.Bind(v6, inet.IP6{}, 88)

	mappedSrc := inet.V4Mapped(inet.IP4{10, 0, 0, 2})
	mappedDst := inet.V4Mapped(inet.IP4{10, 0, 0, 1})
	if got := tb.Lookup(mappedDst, 88, mappedSrc, 1234, true); got != v6 {
		t.Fatal("v4 datagram did not reach v6 socket")
	}
	// With V6ONLY it must not.
	v6.Flags |= FlagV6Only
	if got := tb.Lookup(mappedDst, 88, mappedSrc, 1234, true); got != nil {
		t.Fatal("v4 datagram reached v6only socket")
	}
	// A v4 socket never sees v6 traffic.
	v4 := tb.Attach(inet.AFInet, "v4")
	tb.Bind(v4, inet.IP6{}, 99)
	if got := tb.Lookup(ip6(t, "2001:db8::1"), 99, ip6(t, "2001:db8::2"), 5, false); got != nil {
		t.Fatal("v6 datagram reached v4 socket")
	}
}

func TestV4V6SocketsCoexistOnPort(t *testing.T) {
	// A PF_INET and a PF_INET6 socket... actually share the port space
	// in BSD; binding both wildcard must conflict.
	tb := NewTable()
	v6 := tb.Attach(inet.AFInet6, nil)
	if err := tb.Bind(v6, inet.IP6{}, 7); err != nil {
		t.Fatal(err)
	}
	v4 := tb.Attach(inet.AFInet, nil)
	if err := tb.Bind(v4, inet.IP6{}, 7); err != ErrAddrInUse {
		t.Fatalf("cross-family wildcard bind: %v", err)
	}
}

func TestNotify(t *testing.T) {
	tb := NewTable()
	peer := ip6(t, "2001:db8::2")
	p := tb.Attach(inet.AFInet6, nil)
	tb.Connect(p, peer, 80)
	q := tb.Attach(inet.AFInet6, nil)
	tb.Connect(q, ip6(t, "2001:db8::3"), 80)

	var hit int
	tb.Notify(peer, 0, func(*PCB) { hit++ })
	if hit != 1 {
		t.Fatalf("notify hit %d", hit)
	}
	hit = 0
	tb.Notify(peer, 81, func(*PCB) { hit++ })
	if hit != 0 {
		t.Fatal("port-filtered notify matched")
	}
}

func TestDetach(t *testing.T) {
	tb := NewTable()
	p := tb.Attach(inet.AFInet6, nil)
	tb.Bind(p, inet.IP6{}, 42)
	tb.Detach(p)
	if tb.Len() != 0 {
		t.Fatal("detach")
	}
	q := tb.Attach(inet.AFInet6, nil)
	if err := tb.Bind(q, inet.IP6{}, 42); err != nil {
		t.Fatal("port not released after detach")
	}
}

func TestEphemeralExhaustion(t *testing.T) {
	tb := NewTable()
	// Fill the whole range.
	for port := 1024; port <= 5000; port++ {
		p := tb.Attach(inet.AFInet6, nil)
		if err := tb.Bind(p, inet.IP6{}, uint16(port)); err != nil {
			t.Fatal(err)
		}
	}
	p := tb.Attach(inet.AFInet6, nil)
	if err := tb.Bind(p, inet.IP6{}, 0); err != ErrNoPorts {
		t.Fatalf("exhaustion: %v", err)
	}
}
