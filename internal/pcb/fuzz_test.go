package pcb

import "testing"

// FuzzPCBOps lets the fuzzer drive the demux op interpreter directly:
// any byte string is a legal attach/bind/connect/detach/retuple/
// reshard/lookup sequence, and every operation re-checks the sharded
// Lookup against the retained linear-scan oracle. A crash or a
// divergence here is a demux bug by construction.
func FuzzPCBOps(f *testing.F) {
	// Seeds: one op of each kind, then small mixed sequences that
	// exercise listener/connected coexistence and resharding.
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 2, 1, 0, 1, 1, 2, 0, 2, 2, 7, 1, 1, 2, 2, 0})
	f.Add([]byte{0, 0, 0, 1, 1, 0, 0, 1, 2, 1, 3, 2, 5, 0, 1, 1, 2, 2, 6, 0, 7, 0, 1, 2, 3, 1})
	f.Add([]byte{0, 0, 0, 0, 2, 0, 5, 5, 2, 1, 4, 0, 6, 5, 7, 1, 1, 1, 1, 0, 4, 1, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		runPCBOps(t, data)
	})
}
