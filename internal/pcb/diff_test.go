package pcb

// Differential test for the sharded demux: the original linear-scan
// in_pcblookup (lookupRef) is the oracle, and the production Lookup is
// correct iff its winner belongs to the oracle's maximum-score set.
// The old code picked an arbitrary member of that set (Go map
// iteration), so set membership — not pointer equality — is the
// equivalence the refactor must preserve.
//
// A byte-coded interpreter drives both paths through randomized
// attach/bind/connect/disconnect/detach/retuple/reshard sequences over
// a small address/port universe (native v6, v4-mapped, wildcard,
// V6Only sockets) chosen to force collisions; FuzzPCBOps feeds the
// same interpreter from the fuzzer.

import (
	"math/rand"
	"testing"

	"bsd6/internal/inet"
)

// The op universe: small pools so random sequences collide constantly.
var (
	diffAddrs = []inet.IP6{
		{}, // wildcard
		mustIP6("2001:db8::1"),
		mustIP6("2001:db8::2"),
		mustIP6("2001:db8::3"),
		mustIP6("fe80::1"),
		inet.V4Mapped(inet.IP4{10, 0, 0, 1}),
		inet.V4Mapped(inet.IP4{10, 0, 0, 2}),
		inet.V4Mapped(inet.IP4{192, 168, 1, 1}),
	}
	diffPorts = []uint16{0, 53, 80, 1024, 1025, 4999, 5000, 7777}
)

func mustIP6(s string) inet.IP6 {
	a, err := inet.ParseIP6(s)
	if err != nil {
		panic(err)
	}
	return a
}

// checkLookup asserts the demux invariant for one query.
func checkLookup(t *testing.T, tb *Table, laddr inet.IP6, lport uint16, faddr inet.IP6, fport uint16, v4 bool) {
	t.Helper()
	got := tb.Lookup(laddr, lport, faddr, fport, v4)
	ref := tb.lookupRef(laddr, lport, faddr, fport, v4)
	if got == nil {
		if len(ref) != 0 {
			t.Fatalf("lookup(%s.%d < %s.%d v4=%v) = nil, reference found %d candidates (e.g. %v/%d %v/%d)",
				laddr, lport, faddr, fport, v4, len(ref),
				ref[0].LAddr, ref[0].LPort, ref[0].FAddr, ref[0].FPort)
		}
		return
	}
	for _, p := range ref {
		if p == got {
			return
		}
	}
	t.Fatalf("lookup(%s.%d < %s.%d v4=%v) chose %v.%d/%v.%d, not in the %d-member reference set",
		laddr, lport, faddr, fport, v4, got.LAddr, got.LPort, got.FAddr, got.FPort, len(ref))
}

// runPCBOps interprets a byte string as a demux op sequence and checks
// the Lookup-vs-reference invariant after every operation, then sweeps
// a grid of queries at the end. Shared by the differential test and
// FuzzPCBOps.
func runPCBOps(t *testing.T, data []byte) {
	tb := NewTable()
	var live []*PCB
	pick := func(b byte) *PCB {
		if len(live) == 0 {
			return nil
		}
		return live[int(b)%len(live)]
	}
	addr := func(b byte) inet.IP6 { return diffAddrs[int(b)%len(diffAddrs)] }
	port := func(b byte) uint16 { return diffPorts[int(b)%len(diffPorts)] }

	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	for i < len(data) {
		op := next()
		switch op % 8 {
		case 0: // attach
			if len(live) >= 64 {
				break // keep the reference scan cheap
			}
			fam := inet.AFInet6
			b := next()
			if b&1 != 0 {
				fam = inet.AFInet
			}
			p := tb.Attach(fam, nil)
			if fam == inet.AFInet6 && b&2 != 0 {
				p.Flags |= FlagV6Only
			}
			live = append(live, p)
		case 1: // bind (errors are a legal outcome, not a divergence)
			if p := pick(next()); p != nil {
				_ = tb.Bind(p, addr(next()), port(next()))
			}
		case 2: // connect
			if p := pick(next()); p != nil {
				_ = tb.Connect(p, addr(next()), port(next()))
			}
		case 3: // disconnect
			if p := pick(next()); p != nil {
				tb.Disconnect(p)
			}
		case 4: // detach
			if b := next(); len(live) > 0 {
				k := int(b) % len(live)
				tb.Detach(live[k])
				live = append(live[:k], live[k+1:]...)
			}
		case 5: // retuple (the passive-open / source-selection moment)
			if p := pick(next()); p != nil {
				tb.SetTuple(p, addr(next()), port(next()), addr(next()), port(next()))
			}
		case 6: // reshard: every PCB is refiled under the new geometry
			tb.SetShards(1 << (next() % 6))
		case 7: // explicit query
			checkLookup(t, tb, addr(next()), port(next()), addr(next()), port(next()), next()&1 != 0)
		}
		// One derived probe after every op keeps mutations honest even
		// when the byte stream never asks for a lookup.
		checkLookup(t, tb, addr(next()), port(next()), addr(next()), port(next()), next()&1 != 0)
		if tb.Len() != len(live) {
			t.Fatalf("table length %d, model %d", tb.Len(), len(live))
		}
	}

	// Final sweep: every live PCB's own tuple must route to a member of
	// its score class, and a grid over the pools covers the misses.
	for _, p := range live {
		checkLookup(t, tb, p.LAddr, p.LPort, p.FAddr, p.FPort, p.FAddr.IsV4Mapped())
	}
	for _, la := range diffAddrs {
		for _, lp := range diffPorts {
			for _, fa := range diffAddrs[:4] {
				for _, fp := range diffPorts[:4] {
					checkLookup(t, tb, la, lp, fa, fp, false)
					checkLookup(t, tb, la, lp, fa, fp, true)
				}
			}
		}
	}
}

// TestDemuxDifferential replays seeded random op sequences through the
// sharded demux and the linear-scan oracle.
func TestDemuxDifferential(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 512)
		rng.Read(data)
		runPCBOps(t, data)
	}
}

// TestDemuxDifferentialLong runs fewer, deeper sequences so churn
// (bind→connect→detach over the same ports) crosses shard rebuilds.
func TestDemuxDifferentialLong(t *testing.T) {
	for seed := int64(100); seed < 104; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 8192)
		rng.Read(data)
		runPCBOps(t, data)
	}
}
