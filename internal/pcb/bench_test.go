package pcb

// Demux scaling benchmarks: established-connection lookup against
// tables of 10k/100k/1M PCBs (the O(1) claim is "the 1M row reads like
// the 10k row"), connection churn against a loaded table, and the
// ephemeral allocator under load.

import (
	"fmt"
	"testing"

	"bsd6/internal/inet"
)

// benchAddr derives a distinct foreign address per connection.
func benchAddr(i int) inet.IP6 {
	a := mustIP6("2001:db8:feed::")
	a[12], a[13], a[14], a[15] = byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
	return a
}

// benchTable builds a table of n established connections to one local
// endpoint plus a handful of listeners sharing the port.
func benchTable(n int) (*Table, inet.IP6) {
	tb := NewTable()
	local := mustIP6("2001:db8::1")
	for i := 0; i < 4; i++ {
		l := tb.Attach(inet.AFInet6, nil)
		tb.SetTuple(l, inet.IP6{}, uint16(8000+i), inet.IP6{}, 0)
	}
	for i := 0; i < n; i++ {
		p := tb.Attach(inet.AFInet6, nil)
		tb.SetTuple(p, local, 8000, benchAddr(i), uint16(1024+i%60000))
	}
	return tb, local
}

func BenchmarkDemuxLookup(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("conns=%d", n), func(b *testing.B) {
			tb, local := benchTable(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % n
				if tb.Lookup(local, 8000, benchAddr(j), uint16(1024+j%60000), false) == nil {
					b.Fatal("lookup miss")
				}
			}
		})
	}
}

// BenchmarkDemuxLookupRef times the retained linear-scan oracle on the
// same workload — the "before" row of the demux rewrite, kept runnable
// so the comparison never goes stale. (Capped at 100k conns; the linear
// scan at 1M is too slow to benchmark politely.)
func BenchmarkDemuxLookupRef(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("conns=%d", n), func(b *testing.B) {
			tb, local := benchTable(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % n
				if len(tb.lookupRef(local, 8000, benchAddr(j), uint16(1024+j%60000), false)) == 0 {
					b.Fatal("ref lookup miss")
				}
			}
		})
	}
}

// BenchmarkDemuxLookupWildcard measures the listener fallback path — a
// segment that matches no connection and lands on the port's wildcard
// chain — at scale.
func BenchmarkDemuxLookupWildcard(b *testing.B) {
	tb, local := benchTable(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tb.Lookup(local, 8001, benchAddr(i%1000), 40000, false) == nil {
			b.Fatal("wildcard miss")
		}
	}
}

// BenchmarkDemuxChurn is one connection lifetime — attach, adopt a
// tuple, demux once, detach — against a table already holding 100k
// established connections.
func BenchmarkDemuxChurn(b *testing.B) {
	tb, local := benchTable(100_000)
	peer := mustIP6("2001:db8:cafe::2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := tb.Attach(inet.AFInet6, nil)
		tb.SetTuple(p, local, 9000, peer, uint16(1024+i%60000))
		if tb.Lookup(local, 9000, peer, uint16(1024+i%60000), false) != p {
			b.Fatal("churn lookup")
		}
		tb.Detach(p)
	}
}

// BenchmarkBindEphemeral allocates and releases ephemeral ports with
// 100k connected PCBs loaded — the allocator's occupancy probe must not
// rescan them.
func BenchmarkBindEphemeral(b *testing.B) {
	tb, _ := benchTable(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := tb.Attach(inet.AFInet6, nil)
		if err := tb.Bind(p, inet.IP6{}, 0); err != nil {
			b.Fatal(err)
		}
		tb.Detach(p)
	}
}
