// Package pcb implements the modified Protocol Control Blocks of §5.1.
//
// TCP and UDP are shared between IPv4 and IPv6, so the PCB "was
// modified to support both IPv4 and IPv6 addresses and to denote which
// addresses are actually in use".  Where the C implementation devised
// unions with #defines that silently dereference the right member
// (paper Figure 4), this implementation stores every address as an
// IP6, using IPv4-mapped form for IPv4 peers — exactly the
// transition-specification trick the paper leans on: "allocating a
// portion of the IPv6 address space for use as 'IPv4-mapped'
// addresses" makes one PCB serve both protocols.  A flag bit records
// whether the session is sending IPv6 datagrams; if it is not set,
// IPv4 is in use.
package pcb

import (
	"errors"
	"sync"

	"bsd6/internal/inet"
	"bsd6/internal/route"
)

// PCB flag bits.
const (
	// FlagIPv6 is "a bit in the session's PCB's flags ... indicating"
	// that the session sends IPv6 datagrams (§5.1).
	FlagIPv6 = 1 << iota
	// FlagV6Only restricts a PF_INET6 socket to IPv6 traffic
	// (suppresses the §5.2 v4-datagram-to-v6-socket delivery).
	FlagV6Only
)

// PCB is one protocol control block.
type PCB struct {
	// Family is the socket's protocol family: AFInet for PF_INET
	// sockets, AFInet6 for PF_INET6 sockets (which "can be used to
	// send and receive either IPv4 or IPv6 traffic", §5.1).
	Family inet.Family

	// LAddr/FAddr are the local and foreign addresses in the unified
	// representation (v4-mapped for IPv4). Unspecified means wildcard.
	LAddr, FAddr inet.IP6
	LPort, FPort uint16

	Flags int
	// FlowInfo is the IPv6 flow identifier for this session (§5.1:
	// "we intend to enhance these functions to fully support the IPv6
	// Flow Identifier field").
	FlowInfo uint32
	// HopLimit overrides the layer default when nonzero.
	HopLimit uint8

	// Socket is the back pointer to the owning socket — the NRL
	// addition that lets the security output policy see the socket
	// from deep in the output path (§3.3).
	Socket any

	// Route is the session's held route (BSD's inp_route): output
	// revalidates it with one generation compare instead of walking
	// the radix tree per packet.
	Route route.Cache

	// Owner is protocol-private state (the tcpcb for TCP sessions).
	Owner any

	table *Table
}

// IsIPv6 reports whether the session sends IPv6 datagrams.
func (p *PCB) IsIPv6() bool { return p.Flags&FlagIPv6 != 0 }

// Errors.
var (
	ErrAddrInUse      = errors.New("pcb: address already in use")
	ErrNoPorts        = errors.New("pcb: out of ephemeral ports")
	ErrNotBound       = errors.New("pcb: not bound")
	ErrFamilyMismatch = errors.New("pcb: address family mismatch for socket")
)

// Table is a per-protocol PCB table (BSD's udb / tcb).
type Table struct {
	mu        sync.Mutex
	pcbs      map[*PCB]struct{}
	nextEphem uint16
}

// Ephemeral port range (BSD's traditional 1024..5000).
const (
	ephemFirst = 1024
	ephemLast  = 5000
)

// NewTable creates an empty PCB table.
func NewTable() *Table {
	return &Table{pcbs: make(map[*PCB]struct{}), nextEphem: ephemFirst}
}

// Attach allocates a PCB in the table (in_pcballoc).
func (t *Table) Attach(family inet.Family, socket any) *PCB {
	p := &PCB{Family: family, Socket: socket, table: t}
	t.mu.Lock()
	t.pcbs[p] = struct{}{}
	t.mu.Unlock()
	return p
}

// Detach removes the PCB (in_pcbdetach).
func (t *Table) Detach(p *PCB) {
	t.mu.Lock()
	delete(t.pcbs, p)
	t.mu.Unlock()
}

// Len returns the number of PCBs.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pcbs)
}

// normalize validates an address against the socket family and maps it
// into the unified form. A PF_INET socket speaks raw IPv4 only; a
// PF_INET6 socket accepts native IPv6 or v4-mapped addresses.
func normalize(family inet.Family, addr inet.IP6) (inet.IP6, error) {
	if family == inet.AFInet && !addr.IsUnspecified() && !addr.IsV4Mapped() {
		return inet.IP6{}, ErrFamilyMismatch
	}
	return addr, nil
}

// Bind is in6_pcbbind: set the local address and port, allocating an
// ephemeral port for port 0 and checking conflicts.
func (t *Table) Bind(p *PCB, laddr inet.IP6, lport uint16) error {
	laddr, err := normalize(p.Family, laddr)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if lport == 0 {
		lport, err = t.ephemeralLocked(laddr)
		if err != nil {
			return err
		}
	} else {
		for q := range t.pcbs {
			if q == p || q.LPort != lport {
				continue
			}
			// Conflict if either side is wildcard or addresses match,
			// and the two sockets could see the same traffic.
			if q.LAddr.IsUnspecified() || laddr.IsUnspecified() || q.LAddr == laddr {
				// Distinct connected sockets may share a local port.
				if q.FAddr.IsUnspecified() {
					return ErrAddrInUse
				}
			}
		}
	}
	p.LAddr = laddr
	p.LPort = lport
	return nil
}

func (t *Table) ephemeralLocked(laddr inet.IP6) (uint16, error) {
	for i := 0; i <= ephemLast-ephemFirst; i++ {
		port := t.nextEphem
		t.nextEphem++
		if t.nextEphem > ephemLast {
			t.nextEphem = ephemFirst
		}
		free := true
		for q := range t.pcbs {
			if q.LPort == port && (q.LAddr.IsUnspecified() || laddr.IsUnspecified() || q.LAddr == laddr) {
				free = false
				break
			}
		}
		if free {
			return port, nil
		}
	}
	return 0, ErrNoPorts
}

// Connect is in6_pcbconnect: fix the foreign address/port and set the
// IPv6-in-use flag from the address form (§5.1). The local port is
// bound if needed; the local address is left for the caller/IP layer
// to fill from source selection.
func (t *Table) Connect(p *PCB, faddr inet.IP6, fport uint16) error {
	faddr, err := normalize(p.Family, faddr)
	if err != nil {
		return err
	}
	if faddr.IsV4Mapped() && p.Flags&FlagV6Only != 0 {
		return ErrFamilyMismatch
	}
	if p.LPort == 0 {
		if err := t.Bind(p, p.LAddr, 0); err != nil {
			return err
		}
	}
	p.FAddr = faddr
	p.FPort = fport
	if faddr.IsV4Mapped() {
		p.Flags &^= FlagIPv6
	} else {
		p.Flags |= FlagIPv6
	}
	return nil
}

// Disconnect clears the foreign association.
func (t *Table) Disconnect(p *PCB) {
	p.FAddr = inet.IP6{}
	p.FPort = 0
}

// Lookup finds the PCB for a received packet (in_pcblookup with
// wildcard scoring): prefer exact foreign match, then bound-local,
// then full wildcard. v4 reports whether the packet arrived over IPv4;
// a PF_INET6 socket matches v4 traffic through its mapped form unless
// FlagV6Only is set (§5.2: "allows an application to receive both IPv4
// and IPv6 datagrams using an IPv6 socket").
func (t *Table) Lookup(laddr inet.IP6, lport uint16, faddr inet.IP6, fport uint16, v4 bool) *PCB {
	t.mu.Lock()
	defer t.mu.Unlock()
	var best *PCB
	bestScore := -1
	for p := range t.pcbs {
		if p.LPort != lport {
			continue
		}
		// Family/traffic compatibility.
		if v4 {
			if p.Family == inet.AFInet6 && p.Flags&FlagV6Only != 0 {
				continue
			}
		} else {
			if p.Family == inet.AFInet {
				continue
			}
		}
		score := 0
		if !p.FAddr.IsUnspecified() || p.FPort != 0 {
			if p.FAddr != faddr || p.FPort != fport {
				continue
			}
			score += 2
		}
		if !p.LAddr.IsUnspecified() {
			if p.LAddr != laddr {
				continue
			}
			score++
		}
		if score > bestScore {
			best, bestScore = p, score
		}
	}
	return best
}

// Notify is in6_pcbnotify: apply fn to every PCB connected to faddr
// (or bound toward it), delivering ICMP-derived errors upward.  The
// caller performs the §5.1 security policy check before invoking this
// ("to determine whether a particular error can be passed upwards to
// the application or whether that would cause a security violation").
func (t *Table) Notify(faddr inet.IP6, fport uint16, fn func(*PCB)) {
	t.mu.Lock()
	var hit []*PCB
	for p := range t.pcbs {
		if p.FAddr == faddr && (fport == 0 || p.FPort == fport) {
			hit = append(hit, p)
		}
	}
	t.mu.Unlock()
	for _, p := range hit {
		fn(p)
	}
}

// All returns a snapshot of the table, for netstat.
func (t *Table) All() []*PCB {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*PCB, 0, len(t.pcbs))
	for p := range t.pcbs {
		out = append(out, p)
	}
	return out
}
