// Package pcb implements the modified Protocol Control Blocks of §5.1.
//
// TCP and UDP are shared between IPv4 and IPv6, so the PCB "was
// modified to support both IPv4 and IPv6 addresses and to denote which
// addresses are actually in use".  Where the C implementation devised
// unions with #defines that silently dereference the right member
// (paper Figure 4), this implementation stores every address as an
// IP6, using IPv4-mapped form for IPv4 peers — exactly the
// transition-specification trick the paper leans on: "allocating a
// portion of the IPv6 address space for use as 'IPv4-mapped'
// addresses" makes one PCB serve both protocols.  A flag bit records
// whether the session is sending IPv6 datagrams; if it is not set,
// IPv4 is in use.
//
// Demultiplexing no longer walks BSD's linear tcb/udb list.  The table
// keeps three structures, all consistent under the table mutex:
//
//   - a sharded exact-match hash (FNV-1a over the 4-tuple into
//     power-of-two shards, per-shard RWMutex) holding every PCB with a
//     fixed foreign endpoint, so the established-connection lookup that
//     runs once per received segment is a single bucket probe;
//   - a sharded port index whose per-port entry carries the wildcard
//     (listener) chain plus local-address occupancy counts, making the
//     Bind conflict scan and the ephemeral-port allocator O(1) per
//     candidate instead of O(pcbs);
//   - the flat registry of all PCBs, retained for Notify/All and as the
//     substrate of lookupRef, the original linear-scan in_pcblookup
//     kept as the oracle the differential and fuzz tests replay
//     against.
package pcb

import (
	"errors"
	"sync"

	"bsd6/internal/inet"
	"bsd6/internal/key"
	"bsd6/internal/route"
)

// PCB flag bits.
const (
	// FlagIPv6 is "a bit in the session's PCB's flags ... indicating"
	// that the session sends IPv6 datagrams (§5.1).
	FlagIPv6 = 1 << iota
	// FlagV6Only restricts a PF_INET6 socket to IPv6 traffic
	// (suppresses the §5.2 v4-datagram-to-v6-socket delivery).
	FlagV6Only
)

// PCB is one protocol control block.
type PCB struct {
	// Family is the socket's protocol family: AFInet for PF_INET
	// sockets, AFInet6 for PF_INET6 sockets (which "can be used to
	// send and receive either IPv4 or IPv6 traffic", §5.1).
	Family inet.Family

	// LAddr/FAddr are the local and foreign addresses in the unified
	// representation (v4-mapped for IPv4). Unspecified means wildcard.
	// They are owned by the table: mutate them only through
	// Bind/Connect/Disconnect/SetTuple so the demux indexes follow.
	LAddr, FAddr inet.IP6
	LPort, FPort uint16

	Flags int
	// FlowInfo is the IPv6 flow identifier for this session (§5.1:
	// "we intend to enhance these functions to fully support the IPv6
	// Flow Identifier field").
	FlowInfo uint32
	// HopLimit overrides the layer default when nonzero.
	HopLimit uint8

	// Socket is the back pointer to the owning socket — the NRL
	// addition that lets the security output policy see the socket
	// from deep in the output path (§3.3).
	Socket any

	// Route is the session's held route (BSD's inp_route): output
	// revalidates it with one generation compare instead of walking
	// the radix tree per packet.
	Route route.Cache

	// Sec is the session's held security verdict (same discipline as
	// Route, against the Key Engine's generation): the security output
	// policy revalidates it with one compare instead of resolving
	// policy and scanning the SA table per packet.
	Sec key.Cache

	// Owner is protocol-private state (the tcpcb for TCP sessions).
	Owner any

	table *Table
	// idx snapshots the tuple under which this PCB is currently filed
	// in the demux, so a mutation can unhook the old chains without
	// trusting the already-rewritten public fields.
	idx     tuple
	indexed bool
}

// IsIPv6 reports whether the session sends IPv6 datagrams.
func (p *PCB) IsIPv6() bool { return p.Flags&FlagIPv6 != 0 }

// Errors.
var (
	ErrAddrInUse      = errors.New("pcb: address already in use")
	ErrNoPorts        = errors.New("pcb: out of ephemeral ports")
	ErrNotBound       = errors.New("pcb: not bound")
	ErrFamilyMismatch = errors.New("pcb: address family mismatch for socket")
)

// tuple is the demux key: the full 4-tuple in unified (v4-mapped)
// address form.
type tuple struct {
	laddr, faddr inet.IP6
	lport, fport uint16
}

// connected reports whether the tuple names a fixed foreign endpoint,
// the class filed in the exact-match hash.  A PCB with both foreign
// fields wildcard is a listener and lives on its port's wildcard chain
// instead.
func (k tuple) connected() bool { return !k.faddr.IsUnspecified() || k.fport != 0 }

// FNV-1a, the tuple hash of the shard selector.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnvBytes(h uint32, b []byte) uint32 {
	for _, c := range b {
		h ^= uint32(c)
		h *= fnvPrime32
	}
	return h
}

func (k tuple) hash() uint32 {
	h := fnvBytes(uint32(fnvOffset32), k.laddr[:])
	h = fnvBytes(h, k.faddr[:])
	var pb [4]byte
	pb[0], pb[1] = byte(k.lport>>8), byte(k.lport)
	pb[2], pb[3] = byte(k.fport>>8), byte(k.fport)
	return fnvBytes(h, pb[:])
}

func portHash(lport uint16) uint32 {
	var pb [2]byte
	pb[0], pb[1] = byte(lport>>8), byte(lport)
	return fnvBytes(uint32(fnvOffset32), pb[:])
}

// connShard is one exact-match shard: full tuple → chain.  A chain
// holds more than one PCB only when distinct sockets share an entire
// 4-tuple across address families (legal: Bind lets connected sockets
// share a local port).
type connShard struct {
	mu sync.RWMutex
	m  map[tuple][]*PCB
}

// portEntry is the per-local-port demux record.
type portEntry struct {
	// wild chains the listeners: PCBs with both foreign fields
	// wildcard, the only class the slow scoring scan must visit.
	wild []*PCB
	// connNoF chains the degenerate connected class (foreign port set,
	// foreign address wildcard); it matches like a connected PCB but
	// still occupies the port for Bind-conflict purposes.
	connNoF []*PCB
	// byLAddr counts every PCB on the port by local address, the O(1)
	// occupancy probe behind the ephemeral allocator.
	byLAddr map[inet.IP6]int
	total   int
}

type portShard struct {
	mu sync.RWMutex
	m  map[uint16]*portEntry
}

// DefaultShards is the demux shard count when the stack does not
// override it (Options.PCBShards).
const DefaultShards = 32

// Table is a per-protocol PCB table (BSD's udb / tcb).
type Table struct {
	mu        sync.Mutex
	pcbs      map[*PCB]struct{}
	nextEphem uint16

	mask  uint32
	conns []connShard
	ports []portShard
}

// Ephemeral port range (BSD's traditional 1024..5000).
const (
	ephemFirst = 1024
	ephemLast  = 5000
)

// NewTable creates an empty PCB table.
func NewTable() *Table {
	t := &Table{pcbs: make(map[*PCB]struct{}), nextEphem: ephemFirst}
	t.setShardsLocked(DefaultShards)
	return t
}

// SetShards resizes the demux to n shards (rounded up to a power of
// two) and refiles every PCB.
func (t *Table) SetShards(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.setShardsLocked(n)
}

// Shards reports the current shard count.
func (t *Table) Shards() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.mask) + 1
}

func (t *Table) setShardsLocked(n int) {
	if n < 1 {
		n = 1
	}
	sz := 1
	for sz < n && sz < 1<<16 {
		sz <<= 1
	}
	t.mask = uint32(sz - 1)
	t.conns = make([]connShard, sz)
	t.ports = make([]portShard, sz)
	for i := range t.conns {
		t.conns[i].m = make(map[tuple][]*PCB)
	}
	for i := range t.ports {
		t.ports[i].m = make(map[uint16]*portEntry)
	}
	for p := range t.pcbs {
		p.indexed = false
		t.indexLocked(p)
	}
}

func removePCB(s []*PCB, p *PCB) []*PCB {
	for i, q := range s {
		if q == p {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// indexLocked files the PCB under its current tuple. Caller holds t.mu.
func (t *Table) indexLocked(p *PCB) {
	if p.indexed {
		return
	}
	k := tuple{laddr: p.LAddr, faddr: p.FAddr, lport: p.LPort, fport: p.FPort}
	p.idx, p.indexed = k, true
	if k.connected() {
		cs := &t.conns[k.hash()&t.mask]
		cs.mu.Lock()
		cs.m[k] = append(cs.m[k], p)
		cs.mu.Unlock()
	}
	ps := &t.ports[portHash(k.lport)&t.mask]
	ps.mu.Lock()
	e := ps.m[k.lport]
	if e == nil {
		e = &portEntry{byLAddr: make(map[inet.IP6]int)}
		ps.m[k.lport] = e
	}
	if !k.connected() {
		e.wild = append(e.wild, p)
	} else if k.faddr.IsUnspecified() {
		e.connNoF = append(e.connNoF, p)
	}
	e.byLAddr[k.laddr]++
	e.total++
	ps.mu.Unlock()
}

// unindexLocked unhooks the PCB from the chains its idx snapshot names.
// Caller holds t.mu.
func (t *Table) unindexLocked(p *PCB) {
	if !p.indexed {
		return
	}
	k := p.idx
	p.indexed = false
	if k.connected() {
		cs := &t.conns[k.hash()&t.mask]
		cs.mu.Lock()
		if rest := removePCB(cs.m[k], p); len(rest) == 0 {
			delete(cs.m, k)
		} else {
			cs.m[k] = rest
		}
		cs.mu.Unlock()
	}
	ps := &t.ports[portHash(k.lport)&t.mask]
	ps.mu.Lock()
	if e := ps.m[k.lport]; e != nil {
		if !k.connected() {
			e.wild = removePCB(e.wild, p)
		} else if k.faddr.IsUnspecified() {
			e.connNoF = removePCB(e.connNoF, p)
		}
		if e.byLAddr[k.laddr]--; e.byLAddr[k.laddr] == 0 {
			delete(e.byLAddr, k.laddr)
		}
		if e.total--; e.total == 0 {
			delete(ps.m, k.lport)
		}
	}
	ps.mu.Unlock()
}

// Attach allocates a PCB in the table (in_pcballoc).
func (t *Table) Attach(family inet.Family, socket any) *PCB {
	p := &PCB{Family: family, Socket: socket, table: t}
	t.mu.Lock()
	t.pcbs[p] = struct{}{}
	t.indexLocked(p)
	t.mu.Unlock()
	return p
}

// Detach removes the PCB (in_pcbdetach).
func (t *Table) Detach(p *PCB) {
	t.mu.Lock()
	t.unindexLocked(p)
	delete(t.pcbs, p)
	t.mu.Unlock()
}

// Len returns the number of PCBs.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pcbs)
}

// normalize validates an address against the socket family and maps it
// into the unified form. A PF_INET socket speaks raw IPv4 only; a
// PF_INET6 socket accepts native IPv6 or v4-mapped addresses.
func normalize(family inet.Family, addr inet.IP6) (inet.IP6, error) {
	if family == inet.AFInet && !addr.IsUnspecified() && !addr.IsV4Mapped() {
		return inet.IP6{}, ErrFamilyMismatch
	}
	return addr, nil
}

// Bind is in6_pcbbind: set the local address and port, allocating an
// ephemeral port for port 0 and checking conflicts.
func (t *Table) Bind(p *PCB, laddr inet.IP6, lport uint16) error {
	laddr, err := normalize(p.Family, laddr)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if lport == 0 {
		lport, err = t.ephemeralLocked(laddr)
		if err != nil {
			return err
		}
	} else if t.bindConflictLocked(p, laddr, lport) {
		return ErrAddrInUse
	}
	t.unindexLocked(p)
	p.LAddr = laddr
	p.LPort = lport
	t.indexLocked(p)
	return nil
}

// bindConflictLocked checks an explicit bind against the port's
// wildcard-foreign chains: a conflict needs an existing socket that
// could see the same traffic (address overlap) and has no fixed peer —
// distinct connected sockets may share a local port.
func (t *Table) bindConflictLocked(p *PCB, laddr inet.IP6, lport uint16) bool {
	ps := &t.ports[portHash(lport)&t.mask]
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	e := ps.m[lport]
	if e == nil {
		return false
	}
	for _, chain := range [2][]*PCB{e.wild, e.connNoF} {
		for _, q := range chain {
			if q == p {
				continue
			}
			if q.LAddr.IsUnspecified() || laddr.IsUnspecified() || q.LAddr == laddr {
				return true
			}
		}
	}
	return false
}

// ephemeralLocked allocates an ephemeral port: the cursor walks the
// range and the port index answers each candidate's occupancy in O(1),
// replacing the historical rescan of every PCB per candidate.
func (t *Table) ephemeralLocked(laddr inet.IP6) (uint16, error) {
	for i := 0; i <= ephemLast-ephemFirst; i++ {
		port := t.nextEphem
		t.nextEphem++
		if t.nextEphem > ephemLast {
			t.nextEphem = ephemFirst
		}
		if t.portFree(port, laddr) {
			return port, nil
		}
	}
	return 0, ErrNoPorts
}

// portFree reports whether (laddr, port) collides with no existing
// binding: any occupant blocks a wildcard request, and a specific
// request is blocked by wildcard-bound or same-address occupants.
func (t *Table) portFree(port uint16, laddr inet.IP6) bool {
	ps := &t.ports[portHash(port)&t.mask]
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	e := ps.m[port]
	if e == nil {
		return true
	}
	if laddr.IsUnspecified() {
		return e.total == 0
	}
	return e.byLAddr[inet.IP6{}] == 0 && e.byLAddr[laddr] == 0
}

// Connect is in6_pcbconnect: fix the foreign address/port and set the
// IPv6-in-use flag from the address form (§5.1). The local port is
// bound if needed; the local address is left for the caller/IP layer
// to fill from source selection (SetTuple refiles it then).
func (t *Table) Connect(p *PCB, faddr inet.IP6, fport uint16) error {
	faddr, err := normalize(p.Family, faddr)
	if err != nil {
		return err
	}
	if faddr.IsV4Mapped() && p.Flags&FlagV6Only != 0 {
		return ErrFamilyMismatch
	}
	if p.LPort == 0 {
		if err := t.Bind(p, p.LAddr, 0); err != nil {
			return err
		}
	}
	t.mu.Lock()
	t.unindexLocked(p)
	p.FAddr = faddr
	p.FPort = fport
	if faddr.IsV4Mapped() {
		p.Flags &^= FlagIPv6
	} else {
		p.Flags |= FlagIPv6
	}
	t.indexLocked(p)
	t.mu.Unlock()
	return nil
}

// Disconnect clears the foreign association.
func (t *Table) Disconnect(p *PCB) {
	t.mu.Lock()
	t.unindexLocked(p)
	p.FAddr = inet.IP6{}
	p.FPort = 0
	t.indexLocked(p)
	t.mu.Unlock()
}

// SetTuple rewrites the PCB's whole 4-tuple and refiles it — the
// in_pcbconnect moment when a passive open fixes the child's addresses,
// or an active open fills the chosen source address. The caller owns
// family/flag consistency of the new tuple.
func (t *Table) SetTuple(p *PCB, laddr inet.IP6, lport uint16, faddr inet.IP6, fport uint16) {
	t.mu.Lock()
	t.unindexLocked(p)
	p.LAddr, p.LPort = laddr, lport
	p.FAddr, p.FPort = faddr, fport
	t.indexLocked(p)
	t.mu.Unlock()
}

// compatible applies the §5.2 family filter: v4 traffic is invisible to
// V6Only sockets, v6 traffic to PF_INET sockets.
func compatible(p *PCB, v4 bool) bool {
	if v4 {
		return p.Family != inet.AFInet6 || p.Flags&FlagV6Only == 0
	}
	return p.Family != inet.AFInet
}

// probeConnected is the exact-match bucket probe: one shard, one map
// access, a chain that is almost always a single PCB.
func (t *Table) probeConnected(k tuple, v4 bool) *PCB {
	cs := &t.conns[k.hash()&t.mask]
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	for _, p := range cs.m[k] {
		if compatible(p, v4) {
			return p
		}
	}
	return nil
}

// Lookup finds the PCB for a received packet (in_pcblookup with
// wildcard scoring): prefer exact foreign match, then bound-local,
// then full wildcard. v4 reports whether the packet arrived over IPv4;
// a PF_INET6 socket matches v4 traffic through its mapped form unless
// FlagV6Only is set (§5.2: "allows an application to receive both IPv4
// and IPv6 datagrams using an IPv6 socket").
//
// The scan became three ordered probes whose classes cannot outscore
// each other: the full-tuple bucket (score 3 in the old scoring), the
// wildcard-local-address bucket (score 2 — a connected socket that
// never fixed its source), and only then the port's listener chain
// (score ≤ 1), so an established connection never pays for the
// listeners sharing its port.
func (t *Table) Lookup(laddr inet.IP6, lport uint16, faddr inet.IP6, fport uint16, v4 bool) *PCB {
	if p := t.probeConnected(tuple{laddr: laddr, faddr: faddr, lport: lport, fport: fport}, v4); p != nil {
		return p
	}
	if !laddr.IsUnspecified() {
		if p := t.probeConnected(tuple{faddr: faddr, lport: lport, fport: fport}, v4); p != nil {
			return p
		}
	}
	ps := &t.ports[portHash(lport)&t.mask]
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	e := ps.m[lport]
	if e == nil {
		return nil
	}
	var best *PCB
	bestScore := -1
	for _, p := range e.wild {
		if !compatible(p, v4) {
			continue
		}
		score := 0
		if !p.LAddr.IsUnspecified() {
			if p.LAddr != laddr {
				continue
			}
			score = 1
		}
		if score > bestScore {
			best, bestScore = p, score
		}
	}
	return best
}

// lookupRef is the original linear-scan in_pcblookup, retained verbatim
// as the reference model for the hash demux. It returns every
// maximum-score candidate: the old map-iteration code picked an
// arbitrary one, so the production Lookup is correct iff its winner is
// a member of this set (nil result ↔ empty set). The differential and
// fuzz tests replay random operation sequences through both paths.
func (t *Table) lookupRef(laddr inet.IP6, lport uint16, faddr inet.IP6, fport uint16, v4 bool) []*PCB {
	t.mu.Lock()
	defer t.mu.Unlock()
	var best []*PCB
	bestScore := -1
	for p := range t.pcbs {
		if p.LPort != lport {
			continue
		}
		// Family/traffic compatibility.
		if v4 {
			if p.Family == inet.AFInet6 && p.Flags&FlagV6Only != 0 {
				continue
			}
		} else {
			if p.Family == inet.AFInet {
				continue
			}
		}
		score := 0
		if !p.FAddr.IsUnspecified() || p.FPort != 0 {
			if p.FAddr != faddr || p.FPort != fport {
				continue
			}
			score += 2
		}
		if !p.LAddr.IsUnspecified() {
			if p.LAddr != laddr {
				continue
			}
			score++
		}
		switch {
		case score > bestScore:
			best, bestScore = append(best[:0], p), score
		case score == bestScore:
			best = append(best, p)
		}
	}
	return best
}

// Notify is in6_pcbnotify: apply fn to every PCB connected to faddr
// (or bound toward it), delivering ICMP-derived errors upward.  The
// caller performs the §5.1 security policy check before invoking this
// ("to determine whether a particular error can be passed upwards to
// the application or whether that would cause a security violation").
func (t *Table) Notify(faddr inet.IP6, fport uint16, fn func(*PCB)) {
	t.mu.Lock()
	var hit []*PCB
	for p := range t.pcbs {
		if p.FAddr == faddr && (fport == 0 || p.FPort == fport) {
			hit = append(hit, p)
		}
	}
	t.mu.Unlock()
	for _, p := range hit {
		fn(p)
	}
}

// All returns a snapshot of the table, for netstat.
func (t *Table) All() []*PCB {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*PCB, 0, len(t.pcbs))
	for p := range t.pcbs {
		out = append(out, p)
	}
	return out
}
