// Package udp implements UDP over both IP versions (§5.2).
//
// "The UDP protocol remains unchanged for IPv6, but the BSD
// implementation needed to be modified to support both versions of
// IP."  The changes are where the paper says they are: udp_input and
// udp_output carry per-version code paths chosen by a discriminator
// set on entry; an IPv4 datagram can be delivered to a PF_INET6 socket
// (through the v4-mapped PCB form); the checksum is optional over IPv4
// (the udpcksum global) but mandatory over IPv6, since no IP header
// checksum protects the addresses; and input runs the security policy
// function before processing, a check the paper notes "does exact a
// performance penalty on each received packet".
package udp

import (
	"errors"

	"bsd6/internal/inet"
	"bsd6/internal/ipv4"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/pcb"
	"bsd6/internal/proto"
	"bsd6/internal/stat"
)

// HeaderLen is the UDP header size.
const HeaderLen = 8

// Stats counts UDP events (netstat's udpstat).
type Stats struct {
	InDatagrams   stat.Counter
	InErrors      stat.Counter
	BadChecksums  stat.Counter
	NoChecksum    stat.Counter // v4 datagrams that arrived without a checksum
	MissingSum6   stat.Counter // v6 datagrams illegally lacking a checksum
	InNoPorts     stat.Counter
	InPolicyDrops stat.Counter
	InV4ToV6      stat.Counter // IPv4 datagrams delivered to PF_INET6 sockets
	OutDatagrams  stat.Counter
	OutErrors     stat.Counter
}

// Errors.
var (
	ErrNotConnected = errors.New("udp: socket not connected")
	ErrNoDest       = errors.New("udp: no destination")
	ErrMsgTooBig    = errors.New("udp: datagram exceeds 64KB")
)

// DeliverFunc hands a received datagram to the owning socket.
type DeliverFunc func(p *pcb.PCB, data []byte, src inet.IP6, sport uint16, meta *proto.Meta)

// NotifyFunc delivers an ICMP-derived error to a socket.
type NotifyFunc func(p *pcb.PCB, kind proto.CtlType, mtu int)

// UDP is the UDP protocol instance of one stack.
type UDP struct {
	Table *pcb.Table
	v4    *ipv4.Layer
	v6    *ipv6.Layer

	// SumTx mirrors the udpcksum global: whether to compute the
	// optional IPv4 checksum on output. The IPv6 checksum is always
	// computed (§5.2).
	SumTx bool

	// InputPolicy is ipsec_input_policy; nil means no security.
	InputPolicy func(pkt *mbuf.Mbuf, dst inet.IP6, socket any) bool
	// InputPolicyPort, when set, is used instead of InputPolicy and
	// sees the local port, enabling per-port administrative policy
	// (§3.5).
	InputPolicyPort func(pkt *mbuf.Mbuf, dst inet.IP6, socket any, lport uint16) bool
	// AllowError gates upward ICMP error delivery (§5.1's
	// in6_pcbnotify security check); nil means allow.
	AllowError func() bool

	Deliver DeliverFunc
	Notify  NotifyFunc

	// Drops is the stack-wide drop observability sink; nil counts
	// nothing.
	Drops *stat.Recorder

	Stats Stats
}

// New creates the UDP instance and registers it with both IP layers.
func New(v4l *ipv4.Layer, v6l *ipv6.Layer) *UDP {
	u := &UDP{Table: pcb.NewTable(), v4: v4l, v6: v6l, SumTx: true}
	if v4l != nil {
		v4l.Register(proto.UDP, u.input, u.ctlInput)
	}
	if v6l != nil {
		v6l.Register(proto.UDP, u.input, u.ctlInput)
	}
	return u
}

// header marshals a UDP header with checksum field ck.
func header(sport, dport uint16, length int, ck uint16) []byte {
	return []byte{
		byte(sport >> 8), byte(sport), byte(dport >> 8), byte(dport),
		byte(length >> 8), byte(length), byte(ck >> 8), byte(ck),
	}
}

// buildWire assembles the complete UDP datagram — header and payload
// contiguous — in a single pooled buffer, so the IP layer's header
// prepend lands in the slab's headroom and the common datagram costs
// no allocations beyond the (recycled) slab itself.
func buildWire(sport, dport uint16, data []byte) (*mbuf.Mbuf, []byte) {
	length := HeaderLen + len(data)
	pkt := mbuf.Get(length)
	wire := pkt.Bytes()
	copy(wire[:HeaderLen], header(sport, dport, length, 0))
	copy(wire[HeaderLen:], data)
	return pkt, wire
}

// buildWireSum is buildWire with the checksum fused into the payload
// copy (inet.SumCopy): the datagram body is traversed once to both
// land in the wire buffer and enter the sum, instead of a copy pass
// followed by a checksum pass.  psum is the unfolded pseudo-header
// sum for the chosen IP version.
func buildWireSum(sport, dport uint16, data []byte, psum uint32) *mbuf.Mbuf {
	length := HeaderLen + len(data)
	pkt := mbuf.Get(length)
	wire := pkt.Bytes()
	copy(wire[:HeaderLen], header(sport, dport, length, 0))
	sum := inet.Sum(psum, wire[:HeaderLen])
	sum = inet.SumCopy(sum, wire[HeaderLen:], data)
	ck := inet.Fold(sum)
	if ck == 0 {
		ck = 0xffff // transmitted 0 means "no checksum"
	}
	wire[6], wire[7] = byte(ck>>8), byte(ck)
	return pkt
}

// Output is udp_output: create and send a datagram.  It "determines
// whether to create an IPv4 or IPv6 datagram by looking at the
// protocol control block"; faddr/fport override the connected peer for
// sendto semantics.
func (u *UDP) Output(p *pcb.PCB, data []byte, faddr inet.IP6, fport uint16) error {
	if faddr.IsUnspecified() && fport == 0 {
		faddr, fport = p.FAddr, p.FPort
		if faddr.IsUnspecified() && fport == 0 {
			return ErrNotConnected
		}
	}
	if fport == 0 {
		return ErrNoDest
	}
	if len(data)+HeaderLen > 65535 {
		return ErrMsgTooBig
	}
	if p.LPort == 0 {
		if err := u.Table.Bind(p, p.LAddr, 0); err != nil {
			return err
		}
	}
	length := HeaderLen + len(data)

	if v4dst, isV4 := faddr.MappedV4(); isV4 || (p.Family == inet.AFInet) {
		// IPv4 path: ip_output is called instead of ipv6_output.
		if !isV4 {
			return pcb.ErrFamilyMismatch
		}
		var src4 inet.IP4
		if l4, ok := p.LAddr.MappedV4(); ok {
			src4 = l4
		} else if s, ok := u.v4.SourceFor(v4dst); ok {
			src4 = s
		} else if u.v4.Routes() != nil {
			// Local destination: source = destination.
			src4 = v4dst
		}
		var pkt *mbuf.Mbuf
		if u.SumTx {
			pkt = buildWireSum(p.LPort, fport, data,
				inet.PseudoHeader4(src4, v4dst, uint16(length), proto.UDP))
		} else {
			pkt, _ = buildWire(p.LPort, fport, data)
		}
		pkt.Hdr().Socket = p.Socket
		u.Stats.OutDatagrams.Inc()
		return u.v4.Output(pkt, src4, v4dst, proto.UDP, ipv4.OutputOpts{RouteCache: &p.Route})
	}

	// IPv6 path: checksum mandatory — "necessary to provide integrity
	// protection of the source and destination address that is not
	// provided by IPv6, which lacks an IP header checksum" (§5.2).
	src := p.LAddr
	if src.IsUnspecified() {
		if s, ok := u.v6.SourceFor(faddr, nil); ok {
			src = s
		} else {
			src = faddr // local destination
		}
	}
	pkt := buildWireSum(p.LPort, fport, data,
		inet.PseudoHeader6(src, faddr, uint32(length), proto.UDP))
	pkt.Hdr().Socket = p.Socket
	u.Stats.OutDatagrams.Inc()
	return u.v6.Output(pkt, src, faddr, proto.UDP, ipv6.OutputOpts{
		FlowInfo: p.FlowInfo, HopLimit: p.HopLimit, Socket: p.Socket,
		RouteCache: &p.Route, SecCache: &p.Sec,
	})
}

// input is udp_input: "Incoming UDP datagrams, regardless of whether
// they are transported over IPv4 or IPv6, are processed by
// udp_input()", with a local discriminator selecting version-specific
// code paths.
func (u *UDP) input(pkt *mbuf.Mbuf, meta *proto.Meta) {
	// input is the packet's terminal consumer: every path below either
	// drops it or copies its bytes onward (Deliver copies into the
	// socket buffer, portUnreach builds a fresh packet), so the pooled
	// slab goes back to its pool here.
	defer pkt.Free()
	isV4 := meta.Family == inet.AFInet // the §5.2 "local variable"
	b := pkt.Bytes()
	if len(b) < HeaderLen {
		u.Stats.InErrors.Inc()
		u.Drops.DropPkt(stat.RUDPShort, b)
		return
	}
	sport := uint16(b[0])<<8 | uint16(b[1])
	dport := uint16(b[2])<<8 | uint16(b[3])
	length := int(b[4])<<8 | int(b[5])
	ck := uint16(b[6])<<8 | uint16(b[7])
	if length < HeaderLen || length > len(b) {
		u.Stats.InErrors.Inc()
		u.Drops.DropPkt(stat.RUDPShort, b)
		return
	}
	b = b[:length]

	if isV4 {
		if ck == 0 {
			u.Stats.NoChecksum.Inc() // optional on v4
		} else if inet.TransportChecksum4(meta.Src4, meta.Dst4, proto.UDP, b) != 0 {
			u.Stats.BadChecksums.Inc()
			u.Drops.DropPkt(stat.RUDPBadSum, b)
			return
		}
	} else {
		if ck == 0 {
			u.Stats.MissingSum6.Inc() // forbidden on v6
			u.Drops.DropPkt(stat.RUDPNoSum6, b)
			return
		}
		if inet.TransportChecksum6(meta.Src6, meta.Dst6, proto.UDP, b) != 0 {
			u.Stats.BadChecksums.Inc()
			u.Drops.DropPkt(stat.RUDPBadSum, b)
			return
		}
	}

	src := meta.SrcIs6()
	dst := meta.DstIs6()
	p := u.Table.Lookup(dst, dport, src, sport, isV4)
	if p == nil {
		u.Stats.InNoPorts.Inc()
		u.Drops.DropPkt(stat.RUDPNoPort, b)
		u.portUnreach(pkt, meta, b)
		return
	}
	// The input security policy check (§5.2): "If an incoming packet
	// should not be delivered for security policy reasons, then it is
	// silently dropped."
	switch {
	case u.InputPolicyPort != nil:
		if !u.InputPolicyPort(pkt, dst, p.Socket, dport) {
			u.Stats.InPolicyDrops.Inc()
			u.Drops.DropPkt(stat.RUDPPolicyDrop, b)
			return
		}
	case u.InputPolicy != nil:
		if !u.InputPolicy(pkt, dst, p.Socket) {
			u.Stats.InPolicyDrops.Inc()
			u.Drops.DropPkt(stat.RUDPPolicyDrop, b)
			return
		}
	}
	if isV4 && p.Family == inet.AFInet6 {
		u.Stats.InV4ToV6.Inc() // §5.2's special case, delivered mapped
	}
	u.Stats.InDatagrams.Inc()
	if u.Deliver != nil {
		u.Deliver(p, b[HeaderLen:], src, sport, meta)
	}
}

// portUnreach reconstructs the offending datagram and asks ICMP to
// report an unreachable port.
func (u *UDP) portUnreach(pkt *mbuf.Mbuf, meta *proto.Meta, udpHdr []byte) {
	if pkt.Hdr().Flags&(mbuf.MBcast|mbuf.MMcast) != 0 {
		return
	}
	if meta.Family == inet.AFInet {
		oh := ipv4.Header{
			TotalLen: ipv4.HeaderLen + len(udpHdr), TTL: meta.Hops,
			Proto: proto.UDP, Src: meta.Src4, Dst: meta.Dst4,
		}
		ctx := oh.Marshal(nil)
		n := len(udpHdr)
		if n > 8 {
			n = 8
		}
		ctx = append(ctx, udpHdr[:n]...)
		u.v4.SendError(ipv4.IcmpUnreach, ipv4.CodePortUnreach, 0, ctx)
		return
	}
	oh := ipv6.Header{
		PayloadLen: len(udpHdr), NextHdr: proto.UDP, HopLimit: meta.Hops,
		Src: meta.Src6, Dst: meta.Dst6,
	}
	orig := mbuf.New(oh.Marshal(nil))
	orig.Append(udpHdr)
	if u.v6.Error != nil {
		u.v6.Error(ipv6.ErrDstUnreach, 4 /* port */, 0, orig, meta.RcvIf)
	}
}

// ctlInput is udp_ctlinput: route ICMP errors to the owning sockets.
func (u *UDP) ctlInput(kind proto.CtlType, meta *proto.Meta, contents []byte, mtu int) {
	if u.AllowError != nil && !u.AllowError() {
		return // §5.1: suppressed by the input security policy
	}
	if len(contents) < 4 {
		return
	}
	sport := uint16(contents[0])<<8 | uint16(contents[1])
	dport := uint16(contents[2])<<8 | uint16(contents[3])
	faddr := meta.DstIs6()
	u.Table.Notify(faddr, dport, func(p *pcb.PCB) {
		if p.LPort != sport && sport != 0 {
			return
		}
		if u.Notify != nil {
			u.Notify(p, kind, mtu)
		}
	})
}
