package udp_test

import (
	"sync"
	"testing"

	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/pcb"
	"bsd6/internal/proto"
	"bsd6/internal/testnet"
	"bsd6/internal/udp"
)

// unode is a testnet node plus a UDP instance and a datagram sink.
type unode struct {
	*testnet.Node
	u *udp.UDP

	mu   sync.Mutex
	rcvd []dgram
	errs []proto.CtlType
}

type dgram struct {
	p     *pcb.PCB
	data  []byte
	src   inet.IP6
	sport uint16
	meta  proto.Meta
}

func newUNode(name string) *unode {
	n := &unode{Node: testnet.NewNode(name)}
	n.u = udp.New(n.V4, n.V6)
	n.u.InputPolicy = n.Sec.InputPolicy
	n.u.AllowError = n.Sec.AllowError
	n.u.Deliver = func(p *pcb.PCB, data []byte, src inet.IP6, sport uint16, meta *proto.Meta) {
		n.mu.Lock()
		n.rcvd = append(n.rcvd, dgram{p, append([]byte(nil), data...), src, sport, *meta})
		n.mu.Unlock()
	}
	n.u.Notify = func(p *pcb.PCB, kind proto.CtlType, mtu int) {
		n.mu.Lock()
		n.errs = append(n.errs, kind)
		n.mu.Unlock()
	}
	return n
}

func (n *unode) count() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.rcvd)
}

func (n *unode) last() dgram {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rcvd[len(n.rcvd)-1]
}

func pair(t *testing.T) (*unode, *unode) {
	t.Helper()
	hub := netif.NewHub()
	a, b := newUNode("a"), newUNode("b")
	a.Join(hub, testnet.MacA, 1500, inet.IP4{10, 0, 0, 1}, 24)
	b.Join(hub, testnet.MacB, 1500, inet.IP4{10, 0, 0, 2}, 24)
	return a, b
}

func TestUDPOverIPv6(t *testing.T) {
	a, b := pair(t)
	srv := b.u.Table.Attach(inet.AFInet6, "server")
	if err := b.u.Table.Bind(srv, inet.IP6{}, 7); err != nil {
		t.Fatal(err)
	}
	cli := a.u.Table.Attach(inet.AFInet6, "client")
	if err := a.u.Table.Connect(cli, b.LinkLocal(0), 7); err != nil {
		t.Fatal(err)
	}
	if !cli.IsIPv6() {
		t.Fatal("PCB IPv6 flag not set")
	}
	// Figure 7's sendto("hello").
	if err := a.u.Output(cli, []byte("hello"), inet.IP6{}, 0); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "datagram", func() bool { return b.count() >= 1 })
	got := b.last()
	if string(got.data) != "hello" || got.src != a.LinkLocal(0) {
		t.Fatalf("got %q from %v", got.data, got.src)
	}
	if got.meta.Family != inet.AFInet6 {
		t.Fatal("wrong family")
	}
	// Reply using sendto semantics.
	if err := b.u.Output(srv, []byte("yo"), got.src, got.sport); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "reply", func() bool { return a.count() >= 1 })
	if string(a.last().data) != "yo" {
		t.Fatal("reply payload")
	}
}

func TestUDPOverIPv4(t *testing.T) {
	a, b := pair(t)
	srv := b.u.Table.Attach(inet.AFInet, "server4")
	b.u.Table.Bind(srv, inet.IP6{}, 9)
	cli := a.u.Table.Attach(inet.AFInet, "client4")
	dst := inet.V4Mapped(inet.IP4{10, 0, 0, 2})
	if err := a.u.Table.Connect(cli, dst, 9); err != nil {
		t.Fatal(err)
	}
	if cli.IsIPv6() {
		t.Fatal("IPv6 flag set for v4 session")
	}
	if err := a.u.Output(cli, []byte("v4 hello"), inet.IP6{}, 0); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "v4 datagram", func() bool { return b.count() >= 1 })
	got := b.last()
	if string(got.data) != "v4 hello" {
		t.Fatalf("payload %q", got.data)
	}
	if !got.src.IsV4Mapped() {
		t.Fatalf("src not mapped: %v", got.src)
	}
	if got.meta.Family != inet.AFInet {
		t.Fatal("family")
	}
}

func TestV4DatagramToV6Socket(t *testing.T) {
	// §5.2: "processing of an IPv4 packet destined for an IPv6 socket."
	a, b := pair(t)
	srv := b.u.Table.Attach(inet.AFInet6, "dual-server")
	b.u.Table.Bind(srv, inet.IP6{}, 6464)

	cli := a.u.Table.Attach(inet.AFInet, "v4-client")
	a.u.Table.Connect(cli, inet.V4Mapped(inet.IP4{10, 0, 0, 2}), 6464)
	if err := a.u.Output(cli, []byte("crossing"), inet.IP6{}, 0); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "cross delivery", func() bool { return b.count() >= 1 })
	got := b.last()
	if got.p != srv {
		t.Fatal("wrong socket")
	}
	if !got.src.IsV4Mapped() {
		t.Fatal("source not presented in mapped form")
	}
	if b.u.Stats.InV4ToV6.Get() != 1 {
		t.Fatal("InV4ToV6 not counted")
	}
	// The v6 socket can reply to the mapped address: the PCB routes it
	// over IPv4.
	if err := b.u.Output(srv, []byte("back"), got.src, got.sport); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "mapped reply", func() bool { return a.count() >= 1 })
}

func TestV6OnlySocketRefusesV4(t *testing.T) {
	a, b := pair(t)
	srv := b.u.Table.Attach(inet.AFInet6, "v6only")
	srv.Flags |= pcb.FlagV6Only
	b.u.Table.Bind(srv, inet.IP6{}, 6565)
	cli := a.u.Table.Attach(inet.AFInet, nil)
	a.u.Table.Connect(cli, inet.V4Mapped(inet.IP4{10, 0, 0, 2}), 6565)
	a.u.Output(cli, []byte("x"), inet.IP6{}, 0)
	testnet.WaitFor(t, "no-port count", func() bool { return b.u.Stats.InNoPorts.Get() >= 1 })
	if b.count() != 0 {
		t.Fatal("v6only socket got v4 datagram")
	}
}

func TestChecksumMandatoryOverV6(t *testing.T) {
	a, b := pair(t)
	srv := b.u.Table.Attach(inet.AFInet6, nil)
	b.u.Table.Bind(srv, inet.IP6{}, 5555)
	// Hand-build a v6 UDP datagram with checksum 0.
	hdr := []byte{0x12, 0x34, 0x15, 0xb3, 0, 12, 0, 0} // sport,dport=5555,len=12,ck=0
	pkt := mbuf.New(hdr)
	pkt.Append([]byte("abcd"))
	if err := a.V6.Output(pkt, inet.IP6{}, b.LinkLocal(0), proto.UDP, ipv6OutputOpts()); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "missing-sum drop", func() bool { return b.u.Stats.MissingSum6.Get() >= 1 })
	if b.count() != 0 {
		t.Fatal("checksumless v6 datagram delivered")
	}
}

func TestChecksumOptionalOverV4(t *testing.T) {
	a, b := pair(t)
	srv := b.u.Table.Attach(inet.AFInet, nil)
	b.u.Table.Bind(srv, inet.IP6{}, 5556)
	cli := a.u.Table.Attach(inet.AFInet, nil)
	a.u.Table.Connect(cli, inet.V4Mapped(inet.IP4{10, 0, 0, 2}), 5556)
	a.u.SumTx = false // the udpcksum global, off
	if err := a.u.Output(cli, []byte("nocksum"), inet.IP6{}, 0); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "uncksummed delivery", func() bool { return b.count() >= 1 })
	if b.u.Stats.NoChecksum.Get() == 0 {
		t.Fatal("NoChecksum not counted")
	}
}

func TestCorruptedChecksumDropped(t *testing.T) {
	a, b := pair(t)
	srv := b.u.Table.Attach(inet.AFInet6, nil)
	b.u.Table.Bind(srv, inet.IP6{}, 5557)
	// Valid checksum over wrong content: flip a payload bit after
	// computing.
	src, dst := a.LinkLocal(0), b.LinkLocal(0)
	body := append([]byte{0x12, 0x34, 0x15, 0xb5, 0, 12, 0, 0}, []byte("abcd")...)
	ck := inet.TransportChecksum6(src, dst, proto.UDP, body)
	body[6], body[7] = byte(ck>>8), byte(ck)
	body[10] ^= 0xff
	pkt := mbuf.New(body)
	a.V6.Output(pkt, src, dst, proto.UDP, ipv6OutputOpts())
	testnet.WaitFor(t, "bad checksum count", func() bool { return b.u.Stats.BadChecksums.Get() >= 1 })
	if b.count() != 0 {
		t.Fatal("corrupted datagram delivered")
	}
}

func TestPortUnreachableNotifies(t *testing.T) {
	a, b := pair(t)
	_ = b // no listener on B
	cli := a.u.Table.Attach(inet.AFInet6, nil)
	a.u.Table.Connect(cli, b.LinkLocal(0), 4242)
	if err := a.u.Output(cli, []byte("anyone?"), inet.IP6{}, 0); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "port unreachable", func() bool {
		a.mu.Lock()
		defer a.mu.Unlock()
		for _, k := range a.errs {
			if k == proto.CtlPortUnreach {
				return true
			}
		}
		return false
	})
}

func TestSecuredUDP(t *testing.T) {
	a, b := pair(t)
	authKey := []byte("0123456789abcdef")
	aLL, bLL := a.LinkLocal(0), b.LinkLocal(0)
	a.Keys.Add(&key.SA{SPI: 0x10, Src: aLL, Dst: bLL, Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
	b.Keys.Add(&key.SA{SPI: 0x10, Src: aLL, Dst: bLL, Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
	a.Sec.SetSystemPolicy(ipsec.SockOpts{Auth: ipsec.LevelRequire})
	b.Sec.SetSystemPolicy(ipsec.SockOpts{Auth: ipsec.LevelRequire})

	srv := b.u.Table.Attach(inet.AFInet6, nil)
	b.u.Table.Bind(srv, inet.IP6{}, 23)
	cli := a.u.Table.Attach(inet.AFInet6, nil)
	a.u.Table.Connect(cli, bLL, 23)
	if err := a.u.Output(cli, []byte("secured"), inet.IP6{}, 0); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "secured datagram", func() bool { return b.count() >= 1 })
	if b.Sec.Stats.InAuthOK.Get() == 0 {
		t.Fatal("AH not verified")
	}

	// An unauthenticated datagram from a third party is silently
	// dropped by the input policy.
	before := b.u.Stats.InPolicyDrops.Get()
	body := []byte{0x11, 0x11, 0, 23, 0, 9, 0, 0, 'x'}
	ck := inet.TransportChecksum6(aLL, bLL, proto.UDP, body)
	body[6], body[7] = byte(ck>>8), byte(ck)
	pkt := mbuf.New(body)
	// Inject directly, bypassing A's output policy.
	b.V6.Input(b.Ifps[0], buildV6(aLL, bLL, proto.UDP, body))
	_ = pkt
	if b.u.Stats.InPolicyDrops.Get() != before+1 {
		t.Fatal("cleartext datagram not dropped")
	}
}

func TestOutputErrors(t *testing.T) {
	a, _ := pair(t)
	p := a.u.Table.Attach(inet.AFInet6, nil)
	if err := a.u.Output(p, []byte("x"), inet.IP6{}, 0); err != udp.ErrNotConnected {
		t.Fatalf("unconnected: %v", err)
	}
	if err := a.u.Output(p, []byte("x"), testnet.IP6(t, "fe80::1"), 0); err != udp.ErrNoDest {
		t.Fatalf("port 0: %v", err)
	}
	if err := a.u.Output(p, make([]byte, 70000), testnet.IP6(t, "fe80::1"), 9); err != udp.ErrMsgTooBig {
		t.Fatalf("oversize: %v", err)
	}
	// v6 socket family checks are enforced at connect time.
	v4p := a.u.Table.Attach(inet.AFInet, nil)
	if err := a.u.Table.Connect(v4p, testnet.IP6(t, "2001:db8::1"), 9); err != pcb.ErrFamilyMismatch {
		t.Fatalf("family: %v", err)
	}
}

func TestUDPFragmentationOverV6(t *testing.T) {
	// A >MTU datagram fragments end-to-end and reassembles.
	a, b := pair(t)
	srv := b.u.Table.Attach(inet.AFInet6, nil)
	b.u.Table.Bind(srv, inet.IP6{}, 2000)
	cli := a.u.Table.Attach(inet.AFInet6, nil)
	a.u.Table.Connect(cli, b.LinkLocal(0), 2000)
	big := make([]byte, 5000)
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.u.Output(cli, big, inet.IP6{}, 0); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "fragmented delivery", func() bool { return b.count() >= 1 })
	got := b.last()
	if len(got.data) != 5000 {
		t.Fatalf("len %d", len(got.data))
	}
	for i := range got.data {
		if got.data[i] != byte(i) {
			t.Fatalf("corruption at %d", i)
		}
	}
	if a.V6.Stats.OutFrags.Get() < 4 {
		t.Fatalf("OutFrags = %d", a.V6.Stats.OutFrags.Get())
	}
}

// helpers

func ipv6OutputOpts() ipv6.OutputOpts { return ipv6.OutputOpts{} }

// buildV6 hand-assembles a complete IPv6 packet for direct injection.
func buildV6(src, dst inet.IP6, nh uint8, payload []byte) *mbuf.Mbuf {
	h := &ipv6.Header{NextHdr: nh, HopLimit: 64, PayloadLen: len(payload), Src: src, Dst: dst}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append(payload)
	return pkt
}
