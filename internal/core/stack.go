// Package core assembles the paper's system: a dual IPv4/IPv6 stack
// structured like 4.4 BSD-Lite networking with the NRL IPv6 and IP
// security additions, exposed through a BSD-sockets-style API.
//
// One Stack corresponds to one kernel: interfaces, routing table,
// IPv4, IPv6 + ICMPv6/ND, IP security + Key Engine, TCP and UDP, and
// the socket layer.  Frames from the (simulated) wire enter through a
// netisr-style input queue serviced by a dedicated goroutine, just as
// BSD drivers enqueue to the protocol input queues for the software
// interrupt level to drain — this also decouples stacks that share a
// wire, so no stack processes packets on another stack's goroutine.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bsd6/internal/icmp6"
	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/ipv4"
	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/pcb"
	"bsd6/internal/proto"
	"bsd6/internal/route"
	"bsd6/internal/stat"
	"bsd6/internal/tcp"
	"bsd6/internal/tunnel"
	"bsd6/internal/udp"
	"bsd6/internal/vclock"
)

// Stack is one node's network stack.
type Stack struct {
	Name  string
	RT    *route.Table
	V4    *ipv4.Layer
	V6    *ipv6.Layer
	ICMP4 *ipv4.ICMP
	ICMP6 *icmp6.Module
	Sec   *ipsec.Module
	Keys  *key.Engine
	Tun   *tunnel.Module
	UDP   *udp.UDP
	TCP   *tcp.TCP
	Hosts *inet.HostTable
	Lo    *netif.Interface

	// Drops is the stack-wide drop observability state: the reason
	// counter map plus the flight-recorder trace ring, shared by every
	// protocol module above.
	Drops *stat.Recorder

	// inqs are the netisr input queues, one per worker; a flow hash
	// over the IP addresses steers each frame to a fixed queue so
	// packets of one flow never reorder against each other.
	inqs     []chan inputItem
	InqDrops stat.Counter // frames dropped because an input queue was full

	// MbufDrops counts frames refused by the queued-byte ceiling
	// (Options.MbufLimit) — the backpressure that keeps a flood from
	// ballooning mbuf memory behind a slow netisr.
	MbufDrops stat.Counter
	mbufLimit int          // bytes of payload the input queues may hold
	inqBytes  atomic.Int64 // payload bytes currently queued

	// Batched datapath state: burst is the per-wakeup dequeue cap;
	// gros holds one receive-coalescing engine per netisr worker (nil
	// when GRO is disabled) and groIfp the interface of each engine's
	// pending super-segment.  Only worker w touches gros[w]/groIfp[w].
	burst  int
	gros   []*tcp.GRO
	groIfp []*netif.Interface

	// secActive flips once any socket sets a security level; see the
	// SocketOpts hook.
	secActive atomic.Bool

	clock   vclock.Clock
	pending atomic.Int64 // frames queued or being dispatched

	mu     sync.Mutex
	ifps   []*netif.Interface
	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool

	tmu    sync.Mutex
	ttimer []vclock.Timer
}

type inputItem struct {
	ifp *netif.Interface
	fr  netif.Frame
	n   int // payload bytes charged against the mbuf ceiling
}

// Options configures stack construction.
type Options struct {
	// InputQueueLen sizes each netisr queue (BSD's ifqmaxlen spirit).
	InputQueueLen int
	// NetisrWorkers is the number of netisr goroutines draining the
	// input queues in parallel. Frames are steered to workers by a
	// flow hash over the IP addresses, preserving per-flow order.
	// Default: GOMAXPROCS. Use 1 for the classic single software
	// interrupt.
	NetisrWorkers int
	// NoTimers disables the periodic protocol timers; tests and
	// benchmarks then drive Tick themselves.
	NoTimers bool
	// Clock is the stack's time source. Default: the real clock. Tests
	// pass a vclock.Virtual to run protocol timers, socket deadlines
	// and route/key expiry on simulated time.
	Clock vclock.Clock

	// Resource-governance ceilings.  Each follows the same convention:
	// 0 selects the default, negative disables the limit entirely.
	// Every induced discard carries a typed drop reason (see DESIGN.md
	// "Limits & overload control" for the full table).

	// ReasmMaxDatagrams caps in-progress reassemblies per IP layer
	// (default ipv6.DefaultReasmMaxDatagrams); overflow evicts the
	// oldest datagram with ip6-reasm-overflow / ip4-reasm-overflow.
	ReasmMaxDatagrams int
	// ReasmMaxPerSource caps in-progress reassemblies per source
	// address (default ipv6.DefaultReasmMaxPerSource).
	ReasmMaxPerSource int
	// NDCacheMax caps dynamic neighbor host routes per family
	// (default DefaultNDCacheMax); overflow evicts unreachable-first
	// then LRU with nd-cache-evicted, never a Router Discovery router.
	NDCacheMax int
	// SynBacklogMax caps embryonic TCP connections per listener
	// (default tcp.DefaultSynBacklog); overflow drops the oldest with
	// tcp-syn-overflow.
	SynBacklogMax int
	// SynCookies makes listeners go stateless once the SYN backlog is
	// full: SYNs beyond the cap are answered with a cookie SYN-ACK
	// (the ISN encodes the hashed tuple, coarse time and MSS class)
	// and the connection is rebuilt from the completing ACK.
	SynCookies bool
	// TimeWaitMax caps the compressed TIME_WAIT table (default
	// tcp.DefaultTimeWaitMax); overflow evicts the record closest to
	// expiry with tcp-time-wait-overflow.
	TimeWaitMax int
	// PCBShards sets the TCP/UDP demux shard count (default
	// pcb.DefaultShards, rounded up to a power of two).
	PCBShards int
	// MbufLimit caps the payload bytes held in the netisr input
	// queues (default DefaultMbufLimit); past it, input frames are
	// refused with mbuf-limit and freed back to the pool instead of
	// accumulating unboundedly behind a slow consumer.
	MbufLimit int

	// Datapath batching knobs.  Same convention as the ceilings above:
	// 0 selects the default, negative disables the mechanism.  All
	// three are wire-transparent — captures with batching on and off
	// are byte-identical; only throughput and counters differ.

	// BurstSize caps the frames a netisr worker drains per wakeup,
	// dispatching them as one batch and settling the queue accounting
	// once (default DefaultBurstSize; negative reverts to the classic
	// one-frame-per-wakeup software interrupt).
	BurstSize int
	// GRO bounds the payload bytes receive coalescing may merge into
	// one TCP super-segment ahead of IP input (default
	// tcp.DefaultGROMax; negative disables coalescing).
	GRO int
	// GSO bounds the super-segment TCP builds for the netif boundary
	// to split into MSS-sized wire frames (default tcp.DefaultGSOMax;
	// negative disables, every segment leaves at MSS size).
	GSO int

	// TunNestLimit bounds tunnel nesting — how many encapsulations
	// (and decapsulations) one packet may traverse on this node
	// (default tunnel.DefaultNestLimit; negative selects the hard
	// recursion ceiling rather than "off", since unlimited nesting
	// could recurse the output path to exhaustion).
	TunNestLimit int
}

// Defaults for the governance ceilings whose home is the stack
// assembly rather than a protocol package.
const (
	// DefaultNDCacheMax bounds each family's dynamic neighbor cache.
	DefaultNDCacheMax = 512
	// DefaultMbufLimit bounds netisr-queued payload bytes (4 MiB).
	DefaultMbufLimit = 4 << 20
	// DefaultBurstSize is the frames a netisr worker drains per wakeup.
	DefaultBurstSize = 32
)

// limitOpt resolves a governance tunable: positive is taken as-is,
// 0 selects the default, negative disables (returns 0, which every
// enforcement site reads as "unlimited").
func limitOpt(v, def int) int {
	switch {
	case v > 0:
		return v
	case v < 0:
		return 0
	}
	return def
}

// NewStack builds and starts a stack.
func NewStack(name string, opts Options) *Stack {
	if opts.InputQueueLen == 0 {
		opts.InputQueueLen = 512
	}
	if opts.NetisrWorkers <= 0 {
		opts.NetisrWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.Clock == nil {
		opts.Clock = vclock.Real()
	}
	rt := route.NewTable()
	s := &Stack{
		Name:  name,
		RT:    rt,
		Hosts: inet.NewHostTable(),
		inqs:  make([]chan inputItem, opts.NetisrWorkers),
		stop:  make(chan struct{}),
		clock: opts.Clock,
	}
	for i := range s.inqs {
		s.inqs[i] = make(chan inputItem, opts.InputQueueLen)
	}
	rt.Now = s.clock.Now
	s.Drops = stat.NewRecorder(traceRingSize)
	s.Drops.Now = s.clock.Now
	rt.Drops = s.Drops
	rt.MaxNeighbors = limitOpt(opts.NDCacheMax, DefaultNDCacheMax)
	s.mbufLimit = limitOpt(opts.MbufLimit, DefaultMbufLimit)
	s.V4 = ipv4.NewLayer(rt)
	s.V6 = ipv6.NewLayer(rt)
	s.V4.Drops = s.Drops
	s.V6.Drops = s.Drops
	// Extension-header-free packets (the common case) skip the
	// pre-parse walk; TestFastPathEquivalence pins the bypass to the
	// slow path byte-for-byte.
	s.V6.FastPath = true
	s.V4.SetReasmLimits(opts.ReasmMaxDatagrams, opts.ReasmMaxPerSource)
	s.V6.SetReasmLimits(opts.ReasmMaxDatagrams, opts.ReasmMaxPerSource)
	s.ICMP4 = ipv4.AttachICMP(s.V4)
	s.ICMP6 = icmp6.Attach(s.V6)
	s.Keys = key.NewEngine()
	s.Keys.Now = s.clock.Now
	s.Sec = ipsec.Attach(s.V6, s.Keys)
	s.Tun = tunnel.Attach(s.V4, s.V6, s.ICMP6)
	s.Tun.Drops = s.Drops
	if opts.TunNestLimit != 0 {
		s.Tun.SetNestLimit(opts.TunNestLimit)
	}
	s.UDP = udp.New(s.V4, s.V6)
	s.TCP = tcp.New(s.V4, s.V6)
	s.UDP.Drops = s.Drops
	s.TCP.Drops = s.Drops
	s.TCP.SynBacklogMax = opts.SynBacklogMax
	s.TCP.SynCookies = opts.SynCookies
	s.TCP.TimeWaitMax = opts.TimeWaitMax
	if opts.PCBShards > 0 {
		s.TCP.Table.SetShards(opts.PCBShards)
		s.UDP.Table.SetShards(opts.PCBShards)
	}

	// Wire the cross-module relationships the paper describes.
	s.UDP.InputPolicy = s.Sec.InputPolicy
	s.UDP.InputPolicyPort = s.Sec.InputPolicyPort
	s.UDP.AllowError = s.Sec.AllowError
	s.TCP.InputPolicy = s.Sec.InputPolicy
	s.TCP.InputPolicyPort = s.Sec.InputPolicyPort
	s.TCP.AllowError = s.Sec.AllowError
	s.TCP.Confirm = s.ICMP6.Confirm // §4.3: TCP confirms reachability
	s.TCP.SecOverhead = s.Sec.HdrSize
	s.ICMP6.InputPolicy = s.Sec.InputPolicy
	s.TCP.FatalOutErr = func(err error) bool { return errors.Is(err, ipsec.EIPSEC) }
	s.Sec.SocketOpts = func(so any) ipsec.SockOpts {
		// Until some socket on this stack sets a security level, the
		// per-packet policy read skips the socket lock entirely.
		if !s.secActive.Load() {
			return ipsec.SockOpts{}
		}
		if sock, ok := so.(*Socket); ok {
			return sock.SecurityOpts()
		}
		return ipsec.SockOpts{}
	}
	s.UDP.Deliver = deliverDatagram
	s.UDP.Notify = notifyDatagramErr

	// Batched datapath: burst dequeue, send-side GSO, receive-side GRO.
	s.burst = limitOpt(opts.BurstSize, DefaultBurstSize)
	if s.burst < 1 {
		s.burst = 1
	}
	s.TCP.GSOMax = limitOpt(opts.GSO, tcp.DefaultGSOMax)
	if gmax := limitOpt(opts.GRO, tcp.DefaultGROMax); gmax > 0 {
		s.gros = make([]*tcp.GRO, opts.NetisrWorkers)
		s.groIfp = make([]*netif.Interface, opts.NetisrWorkers)
		for i := range s.gros {
			s.gros[i] = s.TCP.NewGRO(gmax, i)
		}
	}

	// Loopback.
	s.Lo = netif.NewLoopback(name+"-lo0", 32768)
	s.Lo.Drops = s.Drops
	s.Lo.SetInput(s.enqueue)
	s.V4.AddInterface(s.Lo)
	s.V6.AddInterface(s.Lo)

	// netisr workers.
	for i, q := range s.inqs {
		s.wg.Add(1)
		go s.netisr(i, q)
	}

	if !opts.NoTimers {
		s.startTimers()
	}
	return s
}

// Clock returns the stack's time source.
func (s *Stack) Clock() vclock.Clock { return s.clock }

// Pending reports frames queued on (or being dispatched from) the
// netisr input queue — a quiescence probe for vclock.Driver.
func (s *Stack) Pending() int { return int(s.pending.Load()) }

// Close stops the stack's goroutines.
func (s *Stack) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.tmu.Lock()
	for _, tm := range s.ttimer {
		tm.Stop()
	}
	s.tmu.Unlock()
	close(s.stop)
	s.wg.Wait()
}

// enqueue is the driver-side input hook: non-blocking, dropping on
// overflow as BSD's IF_DROP does. The flow hash pins every frame of a
// flow to one worker queue so per-flow ordering survives parallelism.
// Two ceilings apply: the per-queue slot count (RInqFull) and the
// stack-wide queued-byte ceiling (RMbufLimit) that keeps a flood of
// large frames from holding megabytes of slab memory hostage.  Either
// way a refused frame is freed here — enqueue is its terminal
// consumer, so overload backpressures the pool instead of leaking.
func (s *Stack) enqueue(ifp *netif.Interface, fr netif.Frame) {
	n := fr.Payload.Len()
	if s.mbufLimit > 0 && s.inqBytes.Load()+int64(n) > int64(s.mbufLimit) {
		s.MbufDrops.Inc()
		s.Drops.DropNote(stat.RMbufLimit, ifp.Name)
		fr.Payload.Free()
		return
	}
	q := s.inqs[0]
	if len(s.inqs) > 1 {
		q = s.inqs[flowHash(fr)%uint32(len(s.inqs))]
	}
	s.pending.Add(1)
	s.inqBytes.Add(int64(n))
	select {
	case q <- inputItem{ifp, fr, n}:
	default:
		s.pending.Add(-1)
		s.inqBytes.Add(-int64(n))
		s.InqDrops.Inc()
		s.Drops.DropNote(stat.RInqFull, ifp.Name)
		fr.Payload.Free()
	}
}

// flowHash is an FNV-1a hash over the fields that identify a flow.
// Ports are deliberately excluded so every fragment of a datagram —
// only the first carries the transport header — steers to the same
// worker. For IPv6 the addresses alone are hashed: the first
// next-header byte is 44 (Fragment) on fragments but the transport
// protocol on whole datagrams of the same flow, so mixing it in would
// reorder a fragmented datagram against its flow-mates. The IPv4
// protocol byte is invariant across fragments, so it stays in.
// Non-IP frames (ARP) and runts hash by source MAC: pinning them all
// to worker 0 skewed that queue under mixed load, while the source
// address still keeps one sender's ARP traffic ordered.
func flowHash(fr netif.Frame) uint32 {
	const prime = 16777619
	h := uint32(2166136261)
	var b []byte
	switch fr.EtherType {
	case netif.EtherTypeIPv6:
		if b = fr.Payload.PullUp(40); b == nil {
			return macHash(fr.Src)
		}
		b = b[8:40] // src + dst
	case netif.EtherTypeIPv4:
		if b = fr.Payload.PullUp(20); b == nil {
			return macHash(fr.Src)
		}
		h = (h ^ uint32(b[9])) * prime
		b = b[12:20] // src + dst
	default:
		return macHash(fr.Src)
	}
	for _, c := range b {
		h = (h ^ uint32(c)) * prime
	}
	return h
}

// macHash steers frames without a usable IP tuple by source link
// address.
func macHash(mac inet.LinkAddr) uint32 {
	const prime = 16777619
	h := uint32(2166136261)
	for _, c := range mac {
		h = (h ^ uint32(c)) * prime
	}
	return h
}

// netisr drains one input queue.  Each wakeup drains up to burst
// queued frames and dispatches them as one batch — amortizing the
// channel receive, the queue accounting (one inqBytes/pending settle
// per batch instead of per frame) and feeding the worker's GRO engine
// runs of consecutive same-flow frames to coalesce.  pending stays
// raised until the whole batch is dispatched, so quiescence probes
// never observe a half-processed burst.
func (s *Stack) netisr(w int, q chan inputItem) {
	defer s.wg.Done()
	burst := make([]inputItem, 0, s.burst)
	for {
		select {
		case <-s.stop:
			return
		case it := <-q:
			burst = append(burst[:0], it)
		fill:
			for len(burst) < s.burst {
				select {
				case it := <-q:
					burst = append(burst, it)
				default:
					break fill
				}
			}
			s.dispatchBurst(w, burst)
			var bytes int64
			for i := range burst {
				bytes += int64(burst[i].n)
			}
			s.inqBytes.Add(-bytes)
			s.pending.Add(-int64(len(burst)))
		}
	}
}

// dispatchBurst feeds one drained batch through the worker's GRO
// engine (when enabled) and on to the protocol input routines.  Order
// is preserved: a frame the engine declines first forces out whatever
// super-segment was pending, and the batch ends with a flush, so
// coalescing state never outlives the burst.
func (s *Stack) dispatchBurst(w int, burst []inputItem) {
	if s.gros == nil || len(burst) == 1 {
		for i := range burst {
			burst[i].fr.Payload.Hdr().Worker = w
			s.dispatch(burst[i].ifp, burst[i].fr)
		}
		return
	}
	gro := s.gros[w]
	for i := range burst {
		it := &burst[i]
		pkt := it.fr.Payload
		pkt.Hdr().Worker = w
		var v4 bool
		switch it.fr.EtherType {
		case netif.EtherTypeIPv4:
			v4 = true
		case netif.EtherTypeIPv6:
		default:
			// Non-IP (ARP): flush ahead of it to preserve order.
			s.groFlush(w)
			s.dispatch(it.ifp, it.fr)
			continue
		}
		if s.groIfp[w] != nil && s.groIfp[w] != it.ifp {
			// The pending super-segment belongs to another interface;
			// deliver it there before this frame can be considered.
			s.groFlush(w)
		}
		flushed, pass := gro.Push(pkt, v4)
		if flushed != nil {
			s.deliverIP(s.groIfp[w], flushed)
			s.groIfp[w] = nil
		}
		if pass != nil {
			s.dispatch(it.ifp, it.fr)
		} else {
			s.groIfp[w] = it.ifp
		}
	}
	s.groFlush(w)
}

// groFlush forces out worker w's pending super-segment, if any.
func (s *Stack) groFlush(w int) {
	if s.gros == nil {
		return
	}
	if pkt := s.gros[w].Flush(); pkt != nil {
		s.deliverIP(s.groIfp[w], pkt)
	}
	s.groIfp[w] = nil
}

// deliverIP hands a (possibly coalesced) IP packet to the right IP
// input by version nibble.
func (s *Stack) deliverIP(ifp *netif.Interface, pkt *mbuf.Mbuf) {
	b := pkt.PullUp(1)
	if b == nil {
		pkt.Free()
		return
	}
	if b[0]>>4 == 4 {
		s.V4.Input(ifp, pkt)
	} else {
		s.V6.Input(ifp, pkt)
	}
}

// InqDepths reports the instantaneous depth of each netisr worker
// queue, for netstat.
func (s *Stack) InqDepths() []int {
	out := make([]int, len(s.inqs))
	for i, q := range s.inqs {
		out[i] = len(q)
	}
	return out
}

func (s *Stack) dispatch(ifp *netif.Interface, fr netif.Frame) {
	switch fr.EtherType {
	case ipv4.EtherTypeARP:
		s.V4.ArpInput(ifp, fr.Payload)
	case netif.EtherTypeIPv4:
		s.V4.Input(ifp, fr.Payload)
	case netif.EtherTypeIPv6:
		s.V6.Input(ifp, fr.Payload)
	default:
		fr.Payload.Free() // unknown ethertype: nobody downstream to own it
	}
}

// startTimers schedules the BSD timeout cadence on the stack's clock:
// 200ms fast, 500ms slow, 1s for ND/autoconf/key lifetimes. Each timer
// re-arms itself after running, so on a virtual clock the cadence is
// driven entirely by whoever advances simulated time.
func (s *Stack) startTimers() {
	s.every(tcp.FastTickInterval, func(time.Time) { s.TCP.FastTimo() })
	s.every(tcp.SlowTickInterval, func(now time.Time) {
		s.TCP.SlowTimo()
		s.V4.SlowTimo(now)
		s.V6.SlowTimo(now)
	})
	s.every(time.Second, func(now time.Time) {
		s.ICMP6.FastTimo(now)
		s.Keys.SlowTimo()
	})
}

func (s *Stack) every(d time.Duration, fn func(now time.Time)) {
	s.tmu.Lock()
	idx := len(s.ttimer)
	s.ttimer = append(s.ttimer, nil)
	var arm func()
	arm = func() {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return
		}
		fn(s.clock.Now())
		s.tmu.Lock()
		s.ttimer[idx] = s.clock.AfterFunc(d, arm)
		s.tmu.Unlock()
	}
	s.ttimer[idx] = s.clock.AfterFunc(d, arm)
	s.tmu.Unlock()
}

// Tick drives every timer once with the given time; for tests and
// benchmarks running with NoTimers.
func (s *Stack) Tick(now time.Time) {
	s.TCP.FastTimo()
	s.TCP.SlowTimo()
	s.V4.SlowTimo(now)
	s.V6.SlowTimo(now)
	s.ICMP6.FastTimo(now)
	s.Keys.SlowTimo()
}

//
// Interface configuration (what ifconfig(8) does, §4.2).
//

// AttachLink connects the stack to a hub. The interface gets its
// link-local address immediately (pre-verified; use AttachLinkDAD for
// the full duplicate-address-detection flow) and the fe80::/64 on-link
// route.
func (s *Stack) AttachLink(hub *netif.Hub, mac inet.LinkAddr, mtu int) *netif.Interface {
	ifp := s.newLink(hub, mac, mtu)
	ll := inet.LinkLocal(mac.Token())
	ifp.AddAddr6(netif.Addr6{Addr: ll, Plen: 64})
	s.V6.JoinGroup(ifp.Name, inet.SolicitedNode(ll))
	return ifp
}

// AttachLinkDAD connects the stack to a hub and runs duplicate address
// detection on the link-local address (§4.2.1), returning after DAD
// concludes. ok is false if the address turned out to be a duplicate.
func (s *Stack) AttachLinkDAD(hub *netif.Hub, mac inet.LinkAddr, mtu int) (*netif.Interface, bool) {
	ifp := s.newLink(hub, mac, mtu)
	ll := inet.LinkLocal(mac.Token())
	ifp.AddAddr6(netif.Addr6{Addr: ll, Plen: 64, Tentative: true})
	done := s.ICMP6.StartDAD(ifp, ll)
	<-done
	for _, a := range ifp.Addrs6() {
		if a.Addr == ll {
			return ifp, !a.Duplicated
		}
	}
	return ifp, false
}

func (s *Stack) newLink(hub *netif.Hub, mac inet.LinkAddr, mtu int) *netif.Interface {
	s.mu.Lock()
	name := fmt.Sprintf("%s-sim%d", s.Name, len(s.ifps))
	s.mu.Unlock()
	ifp := netif.New(name, mac, mtu)
	ifp.Drops = s.Drops
	ifp.SetInput(s.enqueue)
	hub.Attach(ifp)
	s.V4.AddInterface(ifp)
	s.V6.AddInterface(ifp)
	s.mu.Lock()
	s.ifps = append(s.ifps, ifp)
	s.mu.Unlock()
	llPrefix := inet.IP6{0: 0xfe, 1: 0x80}
	s.RT.Add(&route.Entry{
		Family: inet.AFInet6, Dst: llPrefix[:], Plen: 64,
		Flags: route.FlagUp | route.FlagCloning | route.FlagLLInfo, IfName: ifp.Name,
	})
	return ifp
}

// Interfaces lists the stack's non-loopback interfaces.
func (s *Stack) Interfaces() []*netif.Interface {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*netif.Interface(nil), s.ifps...)
}

// ConfigureV6 adds a global IPv6 address and its on-link prefix route.
func (s *Stack) ConfigureV6(ifp *netif.Interface, addr inet.IP6, plen int) error {
	if err := ifp.AddAddr6(netif.Addr6{Addr: addr, Plen: plen}); err != nil {
		return err
	}
	s.V6.JoinGroup(ifp.Name, inet.SolicitedNode(addr))
	prefix := addr
	m := inet.Mask6(plen)
	for i := range prefix {
		prefix[i] &= m[i]
	}
	s.RT.Add(&route.Entry{
		Family: inet.AFInet6, Dst: prefix[:], Plen: plen,
		Flags: route.FlagUp | route.FlagCloning | route.FlagLLInfo, IfName: ifp.Name,
	})
	return nil
}

// ConfigureV4 adds an IPv4 address and its on-link subnet route.
func (s *Stack) ConfigureV4(ifp *netif.Interface, addr inet.IP4, plen int) {
	ifp.AddAddr4(netif.Addr4{Addr: addr, Plen: plen})
	netAddr := addr
	m := inet.Mask4(plen)
	for i := range netAddr {
		netAddr[i] &= m[i]
	}
	s.RT.Add(&route.Entry{
		Family: inet.AFInet, Dst: netAddr[:], Plen: plen,
		Flags: route.FlagUp | route.FlagCloning | route.FlagLLInfo, IfName: ifp.Name,
	})
}

// DefaultRoute6 installs an IPv6 default route via gw.
func (s *Stack) DefaultRoute6(gw inet.IP6, ifName string) {
	var zero inet.IP6
	s.RT.Add(&route.Entry{
		Family: inet.AFInet6, Dst: zero[:], Plen: 0,
		Flags: route.FlagUp | route.FlagGateway | route.FlagStatic, Gateway: gw, IfName: ifName,
	})
}

// DefaultRoute4 installs an IPv4 default route via gw.
func (s *Stack) DefaultRoute4(gw inet.IP4, ifName string) {
	var zero inet.IP4
	s.RT.Add(&route.Entry{
		Family: inet.AFInet, Dst: zero[:], Plen: 0,
		Flags: route.FlagUp | route.FlagGateway | route.FlagStatic, Gateway: gw, IfName: ifName,
	})
}

// AddTunnel configures an encapsulation tunnel (6in4 / 4in6 / 6in6)
// and wires its device into the stack: decapsulated packets re-enter
// through the netisr input queues, where the flow hash steers them by
// their *inner* tuple — decap re-steering for the per-worker GRO
// engines.  Routes pointed at the returned tunnel's interface name
// send traffic through it.
func (s *Stack) AddTunnel(cfg tunnel.Config) (*tunnel.Tunnel, error) {
	t, err := s.Tun.Add(cfg)
	if err != nil {
		return nil, err
	}
	t.Ifp.SetInput(s.enqueue)
	s.mu.Lock()
	s.ifps = append(s.ifps, t.Ifp)
	s.mu.Unlock()
	return t, nil
}

// EnableRouter6 turns the stack into an advertising IPv6 router on the
// interface (§4.2.2).
func (s *Stack) EnableRouter6(ifName string, cfg icmp6.RouterConfig) error {
	return s.ICMP6.EnableRouter(ifName, cfg)
}

// SolicitRouters sends a Router Solicitation (§4.2.1 second phase).
func (s *Stack) SolicitRouters(ifName string) error {
	return s.ICMP6.SendRouterSolicit(ifName)
}

// PFKey opens a PF_KEY socket on the stack's Key Engine (§6.2).
func (s *Stack) PFKey() *key.Socket { return s.Keys.Open() }

// RouteSocket subscribes to routing messages (PF_ROUTE).
func (s *Stack) RouteSocket(buf int) chan route.Message { return s.RT.Subscribe(buf) }

// Ping6 sends an ICMPv6 echo request.
func (s *Stack) Ping6(dst inet.IP6, id, seq uint16, payload []byte) error {
	return s.ICMP6.SendEcho(dst, id, seq, payload)
}

// Ping4 sends an ICMPv4 echo request.
func (s *Stack) Ping4(dst inet.IP4, id, seq uint16, payload []byte) error {
	return s.ICMP4.SendEcho(dst, id, seq, payload)
}

// deliverDatagram is the UDP-to-socket delivery glue.
func deliverDatagram(p *pcb.PCB, data []byte, src inet.IP6, sport uint16, meta *proto.Meta) {
	sock, _ := p.Socket.(*Socket)
	if sock == nil {
		return
	}
	sock.enqueueDgram(data, src, sport, meta.FlowInfo)
}

// notifyDatagramErr surfaces ICMP errors on UDP sockets.
func notifyDatagramErr(p *pcb.PCB, kind proto.CtlType, mtu int) {
	sock, _ := p.Socket.(*Socket)
	if sock == nil {
		return
	}
	sock.setError(ctlError(kind))
}

func ctlError(kind proto.CtlType) error {
	switch kind {
	case proto.CtlPortUnreach:
		return ErrConnRefused
	case proto.CtlMsgSize:
		return ErrMsgSize
	default:
		return ErrHostUnreach
	}
}

var _ = mbuf.Mbuf{} // keep the import set stable for future use
