package core

import (
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"bsd6/internal/dump"
	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/stat"
	"bsd6/internal/tunnel"
)

// traceRingSize bounds the per-stack flight recorder: the last N
// drop/control events, enough to explain a conformance-test failure
// without logging every packet.
const traceRingSize = 128

// TraceLine is one rendered flight-recorder event: the drop (or
// control) event with its raw packet bytes already decoded into a
// dump one-liner, so snapshots are human-readable and JSON-safe.
type TraceLine struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"` // "drop" or "ctl"
	Reason string    `json:"reason,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// NetisrSnapshot captures the input-queue state.
type NetisrSnapshot struct {
	Workers int    `json:"workers"`
	Burst   int    `json:"burst"` // frames drained per worker wakeup
	Drops   uint64 `json:"drops"`
	Depths  []int  `json:"depths"`
}

// LimitSnapshot describes one governance ceiling: the configured
// maximum (0 = unlimited), the current occupancy, how many discards
// the limit has induced, and the taxonomy name those discards carry.
type LimitSnapshot struct {
	Max    int    `json:"max"`
	Cur    int    `json:"cur"`
	Drops  uint64 `json:"drops"`
	Reason string `json:"reason"`
}

// LimitsSnapshot is the stack's resource-governance surface: every
// tunable ceiling from Options with its live occupancy and induced
// drops, so an operator (or a flood-soak test) can read "how close to
// the edge" without groping through per-protocol counters.  MbufQueue
// is measured in bytes; the others in entries.
type LimitsSnapshot struct {
	Reasm6     LimitSnapshot `json:"reasm6"`
	Reasm4     LimitSnapshot `json:"reasm4"`
	NDCache    LimitSnapshot `json:"ndCache"`
	SynBacklog LimitSnapshot `json:"synBacklog"`
	TimeWait   LimitSnapshot `json:"timeWait"`
	MbufQueue  LimitSnapshot `json:"mbufQueue"`

	// PoolOutstanding is the process-wide mbuf slab gauge
	// (mbuf.Outstanding): bytes handed out and not yet freed.
	PoolOutstanding int64 `json:"poolOutstanding"`
}

// TunnelSnap is one configured tunnel's row: its configuration, the
// live inner-budget MTU (narrowed by nested PMTU discovery), and the
// encap/decap counters.
type TunnelSnap struct {
	Name        string `json:"name"`
	Mode        string `json:"mode"` // 6in4, 4in6, 6in6
	Local       string `json:"local"`
	Remote      string `json:"remote"`
	MTU         int    `json:"mtu"`      // inner budget, shrinks on outer PTB
	Overhead    int    `json:"overhead"` // outer header bytes per packet
	Encapped    uint64 `json:"encapped"`
	Decapped    uint64 `json:"decapped"`
	InErrors    uint64 `json:"inErrors"`
	PMTUUpdates uint64 `json:"pmtuUpdates"`
}

// SASnap is one security association's row: its name (SPI, service,
// endpoints, algorithms) and the per-SA datapath counters the
// line-rate paths charge atomically — packets and bytes per direction,
// replay-window rejections, and the outbound sequence position.
type SASnap struct {
	SPI         uint32 `json:"spi"`
	Proto       string `json:"proto"`
	Dst         string `json:"dst"`
	AuthAlg     string `json:"authAlg,omitempty"`
	EncAlg      string `json:"encAlg,omitempty"`
	InPkts      uint64 `json:"inPkts"`
	InBytes     uint64 `json:"inBytes"`
	OutPkts     uint64 `json:"outPkts"`
	OutBytes    uint64 `json:"outBytes"`
	ReplayDrops uint64 `json:"replayDrops"`
	SeqOut      uint64 `json:"seqOut"`
}

// Snapshot is the structured counterpart of Netstat(): every protocol,
// security, key-engine and netisr counter, the drop-reason map, and
// the flight-recorder trace — JSON-serializable so benchmarks and
// conformance tests diff counters instead of scraping text (the
// structured upgrade of the paper's modified netstat(8), §3.4/§4.3).
type Snapshot struct {
	Name    string            `json:"name"`
	Time    time.Time         `json:"time"`
	IP6     map[string]uint64 `json:"ip6"`
	IP4     map[string]uint64 `json:"ip4"`
	ICMP6   map[string]uint64 `json:"icmp6"`
	ICMP4   map[string]uint64 `json:"icmp4"`
	TCP     map[string]uint64 `json:"tcp"`
	UDP     map[string]uint64 `json:"udp"`
	IPsec   map[string]uint64 `json:"ipsec"`
	Key     map[string]uint64 `json:"key"`
	Netisr  NetisrSnapshot    `json:"netisr"`
	Limits  LimitsSnapshot    `json:"limits"`
	Tunnels []TunnelSnap      `json:"tunnels,omitempty"`
	SAs     []SASnap          `json:"sas,omitempty"`
	Reasons map[string]uint64 `json:"dropReasons"`
	Trace   []TraceLine       `json:"trace,omitempty"`
}

// Snapshot reads every counter of the stack into one structure.  The
// counters are atomics read without a global lock, so the snapshot is
// per-counter (not cross-counter) consistent — the same guarantee
// netstat(8) ever had.
func (s *Stack) Snapshot() Snapshot {
	depths := s.InqDepths()
	snap := Snapshot{
		Name:  s.Name,
		Time:  s.clock.Now(),
		IP6:   stat.SnapshotCounters(&s.V6.Stats),
		IP4:   stat.SnapshotCounters(&s.V4.Stats),
		ICMP6: stat.SnapshotCounters(&s.ICMP6.Stats),
		ICMP4: stat.SnapshotCounters(&s.ICMP4.Stats),
		TCP:   stat.SnapshotCounters(&s.TCP.Stats),
		UDP:   stat.SnapshotCounters(&s.UDP.Stats),
		IPsec: stat.SnapshotCounters(&s.Sec.Stats),
		Key:   stat.SnapshotCounters(&s.Keys.Stats),
		Netisr: NetisrSnapshot{
			Workers: len(depths),
			Burst:   s.burst,
			Drops:   s.InqDrops.Get(),
			Depths:  depths,
		},
		Limits:  s.limitsSnapshot(),
		Reasons: s.Drops.Reasons.Snapshot(),
	}
	// PolicyDrops lives outside the icmp6 Stats block (it pairs with
	// the InputPolicy hook); fold it in by hand.
	snap.ICMP6["PolicyDrops"] = s.ICMP6.PolicyDrops.Get()
	// TimeWaitCount is a gauge over the 2MSL table, not a counter in
	// the Stats block; fold it in the same way.
	snap.TCP["TimeWaitCount"] = uint64(s.TCP.TimeWaitCount())
	for _, t := range s.Tun.Tunnels() {
		cfg, st := t.Config(), t.Stats()
		row := TunnelSnap{
			Name:        t.Name,
			Mode:        t.Mode.String(),
			MTU:         t.Ifp.MTU(),
			Overhead:    t.Ifp.EncapOverhead(),
			Encapped:    st.Encapped,
			Decapped:    st.Decapped,
			InErrors:    st.InErrors,
			PMTUUpdates: st.PMTUUpdates,
		}
		if t.Mode == tunnel.Mode6in4 {
			row.Local, row.Remote = cfg.Local4.String(), cfg.Remote4.String()
		} else {
			row.Local, row.Remote = cfg.Local6.String(), cfg.Remote6.String()
		}
		snap.Tunnels = append(snap.Tunnels, row)
	}
	sas := s.Keys.Dump()
	sort.Slice(sas, func(i, j int) bool {
		if sas[i].SPI != sas[j].SPI {
			return sas[i].SPI < sas[j].SPI
		}
		return sas[i].Proto < sas[j].Proto
	})
	for _, sa := range sas {
		snap.SAs = append(snap.SAs, SASnap{
			SPI:         sa.SPI,
			Proto:       sa.Proto.String(),
			Dst:         sa.Dst.String(),
			AuthAlg:     sa.AuthAlg,
			EncAlg:      sa.EncAlg,
			InPkts:      atomic.LoadUint64(&sa.InPkts),
			InBytes:     atomic.LoadUint64(&sa.InBytes),
			OutPkts:     atomic.LoadUint64(&sa.OutPkts),
			OutBytes:    atomic.LoadUint64(&sa.OutBytes),
			ReplayDrops: atomic.LoadUint64(&sa.ReplayDrops),
			SeqOut:      atomic.LoadUint64(&sa.SeqOut),
		})
	}
	for _, ev := range s.Drops.Events() {
		snap.Trace = append(snap.Trace, TraceLine{
			Seq:    ev.Seq,
			Time:   ev.Time,
			Kind:   ev.Kind,
			Reason: ev.Reason,
			Detail: renderTrace(ev),
		})
	}
	return snap
}

// limitsSnapshot gathers the resource-governance gauges.  Occupancy
// reads take the per-subsystem locks briefly; like the counters, the
// result is per-limit consistent, not a cross-limit atomic view.
func (s *Stack) limitsSnapshot() LimitsSnapshot {
	max6, _ := s.V6.ReasmLimits()
	max4, _ := s.V4.ReasmLimits()
	return LimitsSnapshot{
		Reasm6: LimitSnapshot{
			Max:    max6,
			Cur:    s.V6.FragQueueLen(),
			Drops:  s.V6.Stats.ReasmOverflow.Get(),
			Reason: stat.RV6ReasmOverflow.String(),
		},
		Reasm4: LimitSnapshot{
			Max:    max4,
			Cur:    s.V4.FragQueueLen(),
			Drops:  s.V4.Stats.ReasmOverflow.Get(),
			Reason: stat.RV4ReasmOverflow.String(),
		},
		NDCache: LimitSnapshot{
			Max: s.RT.MaxNeighbors,
			Cur: s.RT.NeighborCount(inet.AFInet6) +
				s.RT.NeighborCount(inet.AFInet),
			Drops:  s.RT.NbrEvictions.Get(),
			Reason: stat.RNbrCacheEvicted.String(),
		},
		SynBacklog: LimitSnapshot{
			Max:    s.TCP.SynBacklogLimit(),
			Cur:    s.TCP.SynBacklogLen(),
			Drops:  s.TCP.Stats.SynDrops.Get(),
			Reason: stat.RTCPSynOverflow.String(),
		},
		TimeWait: LimitSnapshot{
			Max:    s.TCP.TimeWaitLimit(),
			Cur:    s.TCP.TimeWaitCount(),
			Drops:  s.TCP.Stats.TimeWaitOverflow.Get(),
			Reason: stat.RTCPTimeWaitOverflow.String(),
		},
		MbufQueue: LimitSnapshot{
			Max:    s.mbufLimit,
			Cur:    int(s.inqBytes.Load()),
			Drops:  s.MbufDrops.Get(),
			Reason: stat.RMbufLimit.String(),
		},
		PoolOutstanding: mbuf.Outstanding(),
	}
}

// Trace returns the rendered flight-recorder events, oldest first —
// the query surface for tests chasing a vanished packet.
func (s *Stack) Trace() []TraceLine {
	return s.Snapshot().Trace
}

// renderTrace turns a raw trace event into its one-line detail: the
// site-provided note when there is one, else the dropped packet's
// leading bytes through a dump decoder. IP-layer sites store whole
// datagrams; transport sites store their own header onward, so the
// decoder is chosen by the (stable) reason name.
func renderTrace(ev stat.TraceEvent) string {
	if ev.Note != "" {
		return ev.Note
	}
	if len(ev.Pkt) == 0 {
		return ""
	}
	switch {
	case strings.HasPrefix(ev.Reason, "udp-"):
		return dump.UDPSeg(ev.Pkt)
	case strings.HasPrefix(ev.Reason, "tcp-"):
		return dump.TCPSeg(ev.Pkt)
	case strings.HasPrefix(ev.Reason, "icmp6-"),
		strings.HasPrefix(ev.Reason, "nd-"),
		strings.HasPrefix(ev.Reason, "mld-"):
		return dump.ICMP6Msg(ev.Pkt)
	case strings.HasPrefix(ev.Reason, "arp-"):
		return dump.ARPPkt(ev.Pkt)
	}
	return dump.IP(ev.Pkt)
}
