package core_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"bsd6/internal/core"
	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/testnet"
)

// The batched datapath — burst netisr dequeue, the GRO coalescer ahead
// of TCP input, and the GSO splitter at the driver boundary — is sold
// as wire-transparent: an observer sniffing the link must not be able
// to tell whether either endpoint batches.  These tests hold it to
// that literally, comparing full hub traces frame by frame.
//
// Determinism notes.  Both runs ride the virtual clock, whose timers
// fire in (deadline, creation order), and the hub serializes captures
// under its lock.  Two choices keep application scheduling out of the
// wire image: a small fixed link latency turns every exchange into a
// clock-gated lockstep (so capture order is the timer order, not the
// goroutine race), and receive buffers far larger than the 64KB
// window cap pin the advertised window at 65535 no matter when the
// reader goroutine drains — the one header field that would otherwise
// leak scheduling into the trace.

// batchStreamTotal is sized to outlast slow start (so full-width GSO
// supers appear) while staying far below the receive buffer, keeping
// the advertised window pinned.
const batchStreamTotal = 256 << 10

func batchStreamBody() []byte {
	b := make([]byte, batchStreamTotal)
	for i := range b {
		b[i] = byte(i*7 + i>>9 + 13)
	}
	return b
}

// runBatchStream brings up two stacks on one captured hub, streams
// batchStreamTotal bytes client→server, and returns the full wire
// trace (every frame: MACs, ethertype, payload bytes) plus the
// server's final snapshot.  The trace is cut at a marker scheduled at
// an absolute virtual instant before the clock starts, so both runs
// of a comparison observe exactly the same window of simulated time —
// trailing delayed ACKs and retransmissions included.
func runBatchStream(t *testing.T, opts core.Options, faults netif.Faults, seed int64, horizon time.Duration) ([]string, core.Snapshot, core.Snapshot) {
	t.Helper()
	e := newEnv(t)
	hub := e.hub()

	var mu sync.Mutex
	var trace []string
	hub.Capture = func(fr netif.Frame) {
		line := fmt.Sprintf("%s>%s %04x %x", fr.Src, fr.Dst, fr.EtherType, fr.Payload.Bytes())
		mu.Lock()
		trace = append(trace, line)
		mu.Unlock()
	}
	hub.SetFaults(faults)
	hub.SetSeed(seed)

	opts.Clock = e.clock
	mk := func(name string) *core.Stack {
		s := core.NewStack(name, opts)
		t.Cleanup(s.Close)
		e.probes = append(e.probes, s.Pending)
		return s
	}
	cli := mk("cli")
	srv := mk("srv")
	cli.AttachLink(hub, testnet.MacA, 1500)
	srv.AttachLink(hub, testnet.MacB, 1500)

	l, err := srv.NewSocket(inet.AFInet6, core.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	l.SetBuffers(1<<20, 1<<20)
	if err := l.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 9009}); err != nil {
		t.Fatal(err)
	}
	if err := l.Listen(1); err != nil {
		t.Fatal(err)
	}
	c, err := cli.NewSocket(inet.AFInet6, core.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBuffers(1<<20, 1<<20)

	// Absolute virtual markers, created before the driver starts so
	// both runs pin them to the same instants: traffic begins only
	// after autoconfiguration chatter (DAD, MLD) has gone quiet, and
	// the trace closes at the horizon.
	quiet := make(chan struct{})
	e.clock.AfterFunc(10*time.Second, func() { close(quiet) })
	end := make(chan struct{})
	e.clock.AfterFunc(horizon, func() { close(end) })
	e.start()

	body := batchStreamBody()
	got := make(chan []byte, 1)
	srvErr := make(chan error, 1)
	go func() {
		s, err := l.Accept(5 * time.Minute)
		if err != nil {
			srvErr <- fmt.Errorf("accept: %w", err)
			return
		}
		var rcvd []byte
		for len(rcvd) < batchStreamTotal {
			chunk, err := s.Recv(1<<16, 5*time.Minute)
			if err != nil {
				srvErr <- fmt.Errorf("recv at %d: %w", len(rcvd), err)
				return
			}
			rcvd = append(rcvd, chunk...)
		}
		got <- rcvd
	}()

	<-quiet
	if err := c.Connect(core.Addr6(linkLocal(srv), 9009), time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(body, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-srvErr:
		t.Fatal(err)
	case rcvd := <-got:
		if !bytes.Equal(rcvd, body) {
			t.Fatalf("stream corrupted: %d bytes received", len(rcvd))
		}
	}
	<-end

	mu.Lock()
	out := append([]string(nil), trace...)
	mu.Unlock()
	return out, cli.Snapshot(), srv.Snapshot()
}

// diffTraces fails the test at the first divergence between two wire
// traces, printing enough context to see what batching changed.
func diffTraces(t *testing.T, label string, off, on []string) {
	t.Helper()
	n := len(off)
	if len(on) < n {
		n = len(on)
	}
	for i := 0; i < n; i++ {
		if off[i] != on[i] {
			t.Fatalf("%s: traces diverge at frame %d:\n  batching off: %.120s\n  batching on:  %.120s",
				label, i, off[i], on[i])
		}
	}
	if len(off) != len(on) {
		extra, who := on, "on"
		if len(off) > len(on) {
			extra, who = off, "off"
		}
		t.Fatalf("%s: batching %s sent %d extra frames, first: %.120s",
			label, who, len(extra)-n, extra[n])
	}
}

// TestBatchingWireEquivalence streams a quarter megabyte through the
// default (batched) configuration and through a stack with burst
// dequeue, GRO and GSO all disabled, and requires the two wire traces
// to be byte-identical, frame for frame.  Poisoned mbufs make any
// freed-buffer reuse in the splitter or coalescer corrupt a frame and
// fail the comparison.
func TestBatchingWireEquivalence(t *testing.T) {
	mbuf.SetPoison(true)
	defer mbuf.SetPoison(false)

	lockstep := netif.Faults{Latency: 2 * time.Millisecond}
	off, _, _ := runBatchStream(t,
		core.Options{NetisrWorkers: 4, BurstSize: -1, GRO: -1, GSO: -1},
		lockstep, 1, 30*time.Second)
	on, cliSnap, srvSnap := runBatchStream(t,
		core.Options{NetisrWorkers: 4},
		lockstep, 1, 30*time.Second)
	diffTraces(t, "clean link", off, on)

	// The identical wire must have been produced *by* the batched
	// machinery, or the test proves nothing: the sender must have
	// split supers, the receiver must have coalesced.
	if n := cliSnap.TCP["GSOSegs"]; n == 0 {
		t.Error("batched sender built no GSO super-segments")
	}
	if s, f := cliSnap.TCP["GSOSplits"], cliSnap.TCP["GSOSegs"]; s <= f {
		t.Errorf("GSO split %d supers into only %d frames", f, s)
	}
	if n := srvSnap.TCP["GROCoalesced"]; n == 0 {
		t.Error("batched receiver coalesced no segments")
	}
	if n := srvSnap.TCP["GROFlushes"]; n == 0 {
		t.Error("batched receiver flushed no multi-segment trains")
	}
}

// TestBatchingWireEquivalenceHostileLink repeats the comparison over
// a link that loses one frame in fifty: lost supers force the GSO
// retransmission path and seq gaps force GRO flushes, and every
// recovery frame must still match the unbatched stack's, in order.
// The fault RNG is reseeded identically for both runs, and loss draws
// happen in transmit order, which the lockstep latency makes the
// timer order — so both runs lose the same frames.
func TestBatchingWireEquivalenceHostileLink(t *testing.T) {
	mbuf.SetPoison(true)
	defer mbuf.SetPoison(false)

	hostile := netif.Faults{Latency: 2 * time.Millisecond, Loss: 0.02}
	off, _, _ := runBatchStream(t,
		core.Options{NetisrWorkers: 4, BurstSize: -1, GRO: -1, GSO: -1},
		hostile, 42, 2*time.Minute)
	on, cliSnap, _ := runBatchStream(t,
		core.Options{NetisrWorkers: 4},
		hostile, 42, 2*time.Minute)
	diffTraces(t, "hostile link", off, on)

	if cliSnap.TCP["SndRexmit"] == 0 {
		t.Error("hostile link induced no retransmissions; loss model inert")
	}
}
