package core

import (
	"fmt"
	"sort"
	"strings"

	"bsd6/internal/inet"
	"bsd6/internal/route"
)

// Netstat renders the stack's state the way the paper's modified
// netstat(8) would: routes (with neighbor reachability, §4.3),
// per-protocol statistics, and the new IP security counters (§3.4).
func (s *Stack) Netstat() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", s.Name)
	b.WriteString("Routing tables (netstat -r)\n\nInternet6:\n")
	b.WriteString(s.routes6())
	b.WriteString("\nInternet:\n")
	b.WriteString(s.RT.Dump(inet.AFInet))
	b.WriteString("\n")
	b.WriteString(s.Connections())
	b.WriteString("\n")
	b.WriteString(s.ProtoStats())
	return b.String()
}

// Connections renders active sockets like netstat -a.
func (s *Stack) Connections() string {
	var b strings.Builder
	b.WriteString("Active Internet connections\n")
	fmt.Fprintf(&b, "%-5s %-28s %-28s %s\n", "Proto", "Local Address", "Foreign Address", "(state)")
	for _, c := range s.TCP.Conns() {
		p := c.PCB()
		name := "tcp6"
		if p.FAddr.IsV4Mapped() || (p.Family == inet.AFInet) {
			name = "tcp4"
		}
		st := c.State().String()
		if c.Listening() {
			st = "LISTEN"
		}
		fmt.Fprintf(&b, "%-5s %-28s %-28s %s\n", name,
			fmt.Sprintf("[%s]:%d", p.LAddr, p.LPort),
			fmt.Sprintf("[%s]:%d", p.FAddr, p.FPort), st)
	}
	for _, tw := range s.TCP.TimeWaits() {
		name := "tcp6"
		if !tw.V6 {
			name = "tcp4"
		}
		fmt.Fprintf(&b, "%-5s %-28s %-28s %s\n", name,
			fmt.Sprintf("[%s]:%d", tw.LAddr, tw.LPort),
			fmt.Sprintf("[%s]:%d", tw.FAddr, tw.FPort), "TIME_WAIT")
	}
	for _, p := range s.UDP.Table.All() {
		name := "udp6"
		if p.Family == inet.AFInet {
			name = "udp4"
		}
		fmt.Fprintf(&b, "%-5s %-28s %-28s\n", name,
			fmt.Sprintf("[%s]:%d", p.LAddr, p.LPort),
			fmt.Sprintf("[%s]:%d", p.FAddr, p.FPort))
	}
	return b.String()
}

// routes6 renders IPv6 routes, annotating neighbor entries with their
// ND reachability state ("Users can use netstat -r to examine the
// state of currently reachable and recently reachable neighbor
// systems", §4.3).
func (s *Stack) routes6() string {
	type row struct {
		dst    inet.IP6
		plen   int
		host   bool
		llinfo bool
		gw     string
		flags  int
		ifn    string
	}
	// Collect under the table lock, then annotate: NeighborState
	// itself consults the table and must not run inside the walk.
	var rows []row
	s.RT.Walk(inet.AFInet6, func(e *route.Entry) bool {
		r := row{plen: e.Plen, host: e.Host(), flags: e.Flags, ifn: e.IfName,
			llinfo: e.Flags&route.FlagLLInfo != 0}
		copy(r.dst[:], e.Dst)
		switch g := e.Gateway.(type) {
		case inet.IP6:
			r.gw = g.String()
		case inet.LinkAddr:
			r.gw = g.String()
		case nil:
			r.gw = "-"
		default:
			r.gw = fmt.Sprint(g)
		}
		rows = append(rows, r)
		return true
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-20s %-8s %-10s %s\n", "Destination", "Gateway", "Flags", "Neighbor", "Netif")
	for _, r := range rows {
		nd := ""
		if r.llinfo && r.host {
			if st, ok := s.ICMP6.NeighborState(r.dst); ok {
				nd = st.String()
			}
		}
		dst := r.dst.String()
		if !r.host {
			dst = fmt.Sprintf("%s/%d", dst, r.plen)
		}
		fmt.Fprintf(&b, "%-28s %-20s %-8s %-10s %s\n", dst, r.gw, route.FlagString(r.flags), nd, r.ifn)
	}
	return b.String()
}

// ProtoStats renders protocol and security statistics.  It is a pure
// view over Snapshot(): the text and the JSON are always the same
// numbers, so a benchmark log and a netstat dump never disagree.
func (s *Stack) ProtoStats() string {
	snap := s.Snapshot()
	var b strings.Builder
	v6 := snap.IP6
	fmt.Fprintf(&b, "ip6: %d in (%d delivered, %d hdr errs, %d forwarded [%d cached]), %d out (%d frags), %d reassembled, preparse=%d fastpath=%d\n",
		v6["InReceives"], v6["InDelivers"], v6["InHdrErrors"], v6["Forwarded"], v6["FwdCacheHits"],
		v6["OutRequests"], v6["OutFrags"], v6["Reassembled"], v6["PreparseRuns"], v6["FastPathHits"])
	v4 := snap.IP4
	fmt.Fprintf(&b, "ip:  %d in (%d delivered, %d hdr errs, %d forwarded [%d cached]), %d out, %d frags created, %d reassembled\n",
		v4["InReceives"], v4["InDelivers"], v4["InHdrErrors"], v4["Forwarded"], v4["FwdCacheHits"],
		v4["OutRequests"], v4["FragsCreated"], v4["Reassembled"])
	i6 := snap.ICMP6
	fmt.Fprintf(&b, "icmp6: %d in / %d out; echo %d/%d; NS/NA %d/%d in; RS/RA %d/%d in; reports in %d; dad dup %d; pmtu updates %d; rate limited %d\n",
		i6["InMsgs"], i6["OutMsgs"], i6["InEchos"], i6["InEchoReps"], i6["InNS"], i6["InNA"],
		i6["InRS"], i6["InRA"], i6["InReports"], i6["DadDuplicate"], i6["PmtuUpdates"], i6["RateLimited"])
	ts := snap.TCP
	fmt.Fprintf(&b, "tcp: %d/%d pkts out/in, %d rexmit, %d est, %d accepts, reass v4/v6 %d/%d, policy drops %d, predack %d, preddat %d, delacks %d\n",
		ts["SndPack"], ts["RcvPack"], ts["SndRexmit"], ts["ConnEstab"], ts["ConnAccepts"],
		ts["Reass4"], ts["Reass6"], ts["PolicyDrops"], ts["PredAck"], ts["PredDat"], ts["DelAcks"])
	fmt.Fprintf(&b, "tcp-batch: gro %d coalesced into %d flushes, gso %d supers split to %d frames\n",
		ts["GROCoalesced"], ts["GROFlushes"], ts["GSOSegs"], ts["GSOSplits"])
	us := snap.UDP
	fmt.Fprintf(&b, "udp: %d out, %d in (%d v4->v6 socket), %d bad sums, %d no port, policy drops %d\n",
		us["OutDatagrams"], us["InDatagrams"], us["InV4ToV6"], us["BadChecksums"], us["InNoPorts"], us["InPolicyDrops"])
	sec := snap.IPsec
	fmt.Fprintf(&b, "ipsec: out ah/esp/tunnel %d/%d/%d; in auth ok/fail %d/%d, decrypt ok/fail %d/%d, no-SA %d, policy drops out/in %d/%d, tunnel src fails %d\n",
		sec["OutAH"], sec["OutESP"], sec["OutTunnel"], sec["InAuthOK"], sec["InAuthFail"],
		sec["InDecryptOK"], sec["InDecryptFail"], sec["InNoSA"], sec["OutPolicyDrops"], sec["InPolicyDrops"], sec["TunnelSrcFail"])
	fmt.Fprintf(&b, "ipsec-fast: %d cached verdicts, %d replay drops\n",
		sec["OutCacheHits"], sec["InReplay"])
	ks := snap.Key
	fmt.Fprintf(&b, "key: %d adds, %d deletes, %d lookups (%d misses), %d acquires, expires soft/hard %d/%d\n",
		ks["Adds"], ks["Deletes"], ks["Lookups"], ks["Misses"], ks["Acquires"], ks["SoftExpires"], ks["HardExpires"])
	for _, sa := range snap.SAs {
		alg := sa.AuthAlg
		if sa.EncAlg != "" {
			alg = sa.EncAlg
		}
		fmt.Fprintf(&b, "sa spi=%#x %s %s alg=%s: in %d pkts/%d bytes, out %d pkts/%d bytes, replay drops %d, seq %d\n",
			sa.SPI, sa.Proto, sa.Dst, alg, sa.InPkts, sa.InBytes, sa.OutPkts, sa.OutBytes, sa.ReplayDrops, sa.SeqOut)
	}
	fmt.Fprintf(&b, "netisr: %d workers, burst %d, %d drops, queue depths %v\n",
		snap.Netisr.Workers, snap.Netisr.Burst, snap.Netisr.Drops, snap.Netisr.Depths)
	for _, t := range snap.Tunnels {
		fmt.Fprintf(&b, "tunnel %s (%s): %s -> %s, mtu %d (+%d encap), %d encapped, %d decapped, %d in errs, %d pmtu updates\n",
			t.Name, t.Mode, t.Local, t.Remote, t.MTU, t.Overhead,
			t.Encapped, t.Decapped, t.InErrors, t.PMTUUpdates)
	}
	lim := snap.Limits
	b.WriteString("limits:")
	for _, l := range []struct {
		name string
		ls   LimitSnapshot
	}{
		{"reasm6", lim.Reasm6}, {"reasm4", lim.Reasm4},
		{"nd-cache", lim.NDCache}, {"syn-backlog", lim.SynBacklog},
		{"time-wait", lim.TimeWait}, {"mbuf-queue", lim.MbufQueue},
	} {
		max := fmt.Sprint(l.ls.Max)
		if l.ls.Max == 0 {
			max = "inf"
		}
		fmt.Fprintf(&b, " %s=%d/%s(%d)", l.name, l.ls.Cur, max, l.ls.Drops)
	}
	fmt.Fprintf(&b, " pool-outstanding=%dB\n", lim.PoolOutstanding)
	if len(snap.Reasons) > 0 {
		keys := make([]string, 0, len(snap.Reasons))
		for k := range snap.Reasons {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("drops:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, snap.Reasons[k])
		}
		b.WriteByte('\n')
	}
	if n := len(snap.Trace); n > 0 {
		const tail = 8
		start := 0
		if n > tail {
			start = n - tail
		}
		fmt.Fprintf(&b, "trace (last %d of %d events):\n", n-start, n)
		for _, tl := range snap.Trace[start:] {
			line := fmt.Sprintf("  #%d %s %s", tl.Seq, tl.Time.Format("15:04:05.000000"), tl.Kind)
			if tl.Reason != "" {
				line += " " + tl.Reason
			}
			if tl.Detail != "" {
				line += ": " + tl.Detail
			}
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Ifconfig renders the interface list with addresses and lifetimes
// (§4.2.2: "IPv6 interface addresses in the kernel now contain
// lifetime fields").
func (s *Stack) Ifconfig() string {
	var b strings.Builder
	now := s.RT.Now()
	all := s.Interfaces()
	all = append(all, s.Lo)
	for _, ifp := range all {
		fmt.Fprintf(&b, "%s: flags=%#x mtu %d lladdr %s\n", ifp.Name, ifp.Flags(), ifp.MTU(), ifp.HW)
		for _, a := range ifp.Addrs6() {
			state := ""
			if a.Tentative {
				state = " tentative"
			}
			if a.Duplicated {
				state = " duplicated"
			}
			if a.Deprecated(now) {
				state += " deprecated"
			}
			lt := ""
			if a.ValidLft != 0 || a.PreferredLft != 0 {
				lt = fmt.Sprintf(" pltime %s vltime %s", a.PreferredLft, a.ValidLft)
			}
			if a.Autoconf {
				state += " autoconf"
			}
			fmt.Fprintf(&b, "\tinet6 %s/%d%s%s\n", a.Addr, a.Plen, state, lt)
		}
		for _, a := range ifp.Addrs4() {
			fmt.Fprintf(&b, "\tinet %s/%d\n", a.Addr, a.Plen)
		}
	}
	return b.String()
}
