package core

import (
	"fmt"
	"strings"

	"bsd6/internal/inet"
	"bsd6/internal/route"
)

// Netstat renders the stack's state the way the paper's modified
// netstat(8) would: routes (with neighbor reachability, §4.3),
// per-protocol statistics, and the new IP security counters (§3.4).
func (s *Stack) Netstat() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", s.Name)
	b.WriteString("Routing tables (netstat -r)\n\nInternet6:\n")
	b.WriteString(s.routes6())
	b.WriteString("\nInternet:\n")
	b.WriteString(s.RT.Dump(inet.AFInet))
	b.WriteString("\n")
	b.WriteString(s.Connections())
	b.WriteString("\n")
	b.WriteString(s.ProtoStats())
	return b.String()
}

// Connections renders active sockets like netstat -a.
func (s *Stack) Connections() string {
	var b strings.Builder
	b.WriteString("Active Internet connections\n")
	fmt.Fprintf(&b, "%-5s %-28s %-28s %s\n", "Proto", "Local Address", "Foreign Address", "(state)")
	for _, c := range s.TCP.Conns() {
		p := c.PCB()
		name := "tcp6"
		if p.FAddr.IsV4Mapped() || (p.Family == inet.AFInet) {
			name = "tcp4"
		}
		st := c.State().String()
		if c.Listening() {
			st = "LISTEN"
		}
		fmt.Fprintf(&b, "%-5s %-28s %-28s %s\n", name,
			fmt.Sprintf("[%s]:%d", p.LAddr, p.LPort),
			fmt.Sprintf("[%s]:%d", p.FAddr, p.FPort), st)
	}
	for _, p := range s.UDP.Table.All() {
		name := "udp6"
		if p.Family == inet.AFInet {
			name = "udp4"
		}
		fmt.Fprintf(&b, "%-5s %-28s %-28s\n", name,
			fmt.Sprintf("[%s]:%d", p.LAddr, p.LPort),
			fmt.Sprintf("[%s]:%d", p.FAddr, p.FPort))
	}
	return b.String()
}

// routes6 renders IPv6 routes, annotating neighbor entries with their
// ND reachability state ("Users can use netstat -r to examine the
// state of currently reachable and recently reachable neighbor
// systems", §4.3).
func (s *Stack) routes6() string {
	type row struct {
		dst    inet.IP6
		plen   int
		host   bool
		llinfo bool
		gw     string
		flags  int
		ifn    string
	}
	// Collect under the table lock, then annotate: NeighborState
	// itself consults the table and must not run inside the walk.
	var rows []row
	s.RT.Walk(inet.AFInet6, func(e *route.Entry) bool {
		r := row{plen: e.Plen, host: e.Host(), flags: e.Flags, ifn: e.IfName,
			llinfo: e.Flags&route.FlagLLInfo != 0}
		copy(r.dst[:], e.Dst)
		switch g := e.Gateway.(type) {
		case inet.IP6:
			r.gw = g.String()
		case inet.LinkAddr:
			r.gw = g.String()
		case nil:
			r.gw = "-"
		default:
			r.gw = fmt.Sprint(g)
		}
		rows = append(rows, r)
		return true
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-20s %-8s %-10s %s\n", "Destination", "Gateway", "Flags", "Neighbor", "Netif")
	for _, r := range rows {
		nd := ""
		if r.llinfo && r.host {
			if st, ok := s.ICMP6.NeighborState(r.dst); ok {
				nd = st.String()
			}
		}
		dst := r.dst.String()
		if !r.host {
			dst = fmt.Sprintf("%s/%d", dst, r.plen)
		}
		fmt.Fprintf(&b, "%-28s %-20s %-8s %-10s %s\n", dst, r.gw, route.FlagString(r.flags), nd, r.ifn)
	}
	return b.String()
}

// ProtoStats renders protocol and security statistics.
func (s *Stack) ProtoStats() string {
	var b strings.Builder
	v6 := &s.V6.Stats
	fmt.Fprintf(&b, "ip6: %v in (%v delivered, %v hdr errs, %v forwarded), %v out (%v frags), %v reassembled, preparse=%v fastpath=%v\n",
		&v6.InReceives, &v6.InDelivers, &v6.InHdrErrors, &v6.Forwarded,
		&v6.OutRequests, &v6.OutFrags, &v6.Reassembled, &v6.PreparseRuns, &v6.FastPathHits)
	v4 := &s.V4.Stats
	fmt.Fprintf(&b, "ip:  %v in (%v delivered, %v hdr errs, %v forwarded), %v out, %v frags created, %v reassembled\n",
		&v4.InReceives, &v4.InDelivers, &v4.InHdrErrors, &v4.Forwarded,
		&v4.OutRequests, &v4.FragsCreated, &v4.Reassembled)
	i6 := &s.ICMP6.Stats
	fmt.Fprintf(&b, "icmp6: %v in / %v out; echo %v/%v; NS/NA %v/%v in; RS/RA %v/%v in; reports in %v; dad dup %v; pmtu updates %v\n",
		&i6.InMsgs, &i6.OutMsgs, &i6.InEchos, &i6.InEchoReps, &i6.InNS, &i6.InNA, &i6.InRS, &i6.InRA, &i6.InReports, &i6.DadDuplicate, &i6.PmtuUpdates)
	ts := &s.TCP.Stats
	fmt.Fprintf(&b, "tcp: %v/%v pkts out/in, %v rexmit, %v est, %v accepts, reass v4/v6 %v/%v, policy drops %v\n",
		&ts.SndPack, &ts.RcvPack, &ts.SndRexmit, &ts.ConnEstab, &ts.ConnAccepts, &ts.Reass4, &ts.Reass6, &ts.PolicyDrops)
	us := &s.UDP.Stats
	fmt.Fprintf(&b, "udp: %v out, %v in (%v v4->v6 socket), %v bad sums, %v no port, policy drops %v\n",
		&us.OutDatagrams, &us.InDatagrams, &us.InV4ToV6, &us.BadChecksums, &us.InNoPorts, &us.InPolicyDrops)
	sec := &s.Sec.Stats
	fmt.Fprintf(&b, "ipsec: out ah/esp/tunnel %v/%v/%v; in auth ok/fail %v/%v, decrypt ok/fail %v/%v, no-SA %v, policy drops out/in %v/%v, tunnel src fails %v\n",
		&sec.OutAH, &sec.OutESP, &sec.OutTunnel, &sec.InAuthOK, &sec.InAuthFail,
		&sec.InDecryptOK, &sec.InDecryptFail, &sec.InNoSA, &sec.OutPolicyDrops, &sec.InPolicyDrops, &sec.TunnelSrcFail)
	ks := &s.Keys.Stats
	fmt.Fprintf(&b, "key: %v adds, %v deletes, %v lookups (%v misses), %v acquires, expires soft/hard %v/%v\n",
		&ks.Adds, &ks.Deletes, &ks.Lookups, &ks.Misses, &ks.Acquires, &ks.SoftExpires, &ks.HardExpires)
	depths := s.InqDepths()
	fmt.Fprintf(&b, "netisr: %d workers, %v drops, queue depths %v\n",
		len(depths), &s.InqDrops, depths)
	return b.String()
}

// Ifconfig renders the interface list with addresses and lifetimes
// (§4.2.2: "IPv6 interface addresses in the kernel now contain
// lifetime fields").
func (s *Stack) Ifconfig() string {
	var b strings.Builder
	now := s.RT.Now()
	all := s.Interfaces()
	all = append(all, s.Lo)
	for _, ifp := range all {
		fmt.Fprintf(&b, "%s: flags=%#x mtu %d lladdr %s\n", ifp.Name, ifp.Flags(), ifp.MTU(), ifp.HW)
		for _, a := range ifp.Addrs6() {
			state := ""
			if a.Tentative {
				state = " tentative"
			}
			if a.Duplicated {
				state = " duplicated"
			}
			if a.Deprecated(now) {
				state += " deprecated"
			}
			lt := ""
			if a.ValidLft != 0 || a.PreferredLft != 0 {
				lt = fmt.Sprintf(" pltime %s vltime %s", a.PreferredLft, a.ValidLft)
			}
			if a.Autoconf {
				state += " autoconf"
			}
			fmt.Fprintf(&b, "\tinet6 %s/%d%s%s\n", a.Addr, a.Plen, state, lt)
		}
		for _, a := range ifp.Addrs4() {
			fmt.Fprintf(&b, "\tinet %s/%d\n", a.Addr, a.Plen)
		}
	}
	return b.String()
}
