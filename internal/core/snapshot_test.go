package core_test

import (
	"encoding/json"
	"strings"
	"testing"

	"bsd6/internal/core"
	"bsd6/internal/inet"
	"bsd6/internal/testnet"
)

// TestSnapshotObservability drives real traffic plus a genuine drop
// through two stacks and checks the whole observability surface: the
// drop lands under its typed reason, the snapshot JSON round-trips,
// and Netstat() is rendered from the same numbers.
func TestSnapshotObservability(t *testing.T) {
	a, b, _ := stackPair(t)

	// A datagram to a port nobody listens on: delivered by IPv6,
	// discarded by UDP under the udp-no-port reason.
	cli, err := a.NewSocket(inet.AFInet6, core.SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	sa := core.Sockaddr6{Family: inet.AFInet6, Port: 9999, Addr: linkLocal(b)}
	if err := cli.SendTo([]byte("nobody home"), sa); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "udp-no-port drop", func() bool {
		return b.Snapshot().Reasons["udp-no-port"] >= 1
	})

	snap := b.Snapshot()
	if snap.Name != "b" {
		t.Fatalf("snapshot name = %q", snap.Name)
	}
	if snap.IP6["InReceives"] == 0 || snap.IP6["InDelivers"] == 0 {
		t.Fatalf("ip6 counters missing from snapshot: %v", snap.IP6)
	}
	if snap.UDP["InNoPorts"] == 0 {
		t.Fatal("UDP InNoPorts not in snapshot")
	}
	if snap.Netisr.Workers == 0 {
		t.Fatal("netisr workers missing")
	}
	// The flight recorder holds the drop with its rendered detail.
	found := false
	for _, tl := range snap.Trace {
		if tl.Kind == "drop" && tl.Reason == "udp-no-port" {
			found = true
			if tl.Detail == "" {
				t.Fatal("trace event has no rendered detail")
			}
			if tl.Time.IsZero() {
				t.Fatal("trace event not stamped with the virtual clock")
			}
		}
	}
	if !found {
		t.Fatalf("udp-no-port missing from trace: %+v", snap.Trace)
	}

	// JSON round-trip: the structured form survives serialization.
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back core.Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != snap.Name || back.IP6["InReceives"] != snap.IP6["InReceives"] ||
		back.Reasons["udp-no-port"] != snap.Reasons["udp-no-port"] ||
		len(back.Trace) != len(snap.Trace) {
		t.Fatalf("JSON round-trip lost data:\n%s", blob)
	}

	// Netstat is a view over the same snapshot: the text must carry
	// the reason map and the trace tail.
	ns := b.Netstat()
	for _, want := range []string{"udp-no-port=", "drops:", "trace (last"} {
		if !strings.Contains(ns, want) {
			t.Fatalf("Netstat missing %q:\n%s", want, ns)
		}
	}
}
