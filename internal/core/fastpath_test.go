package core_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"bsd6/internal/core"
	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/route"
	"bsd6/internal/testnet"
)

// fastPathWorld is a four-node world for datapath equivalence checks:
// three senders, each a distinct flow (the flow hash covers addresses,
// not ports), and one receiver whose netisr worker count is the
// variable under test.
type fastPathWorld struct {
	senders []*core.Stack
	rcv     *core.Stack
}

func newFastPathWorld(t *testing.T, workers int) *fastPathWorld {
	t.Helper()
	e := newEnv(t)
	hub := e.hub()
	w := &fastPathWorld{}
	mk := func(name string, n int) *core.Stack {
		s := core.NewStack(name, core.Options{Clock: e.clock, NetisrWorkers: n})
		e.t.Cleanup(s.Close)
		e.probes = append(e.probes, s.Pending)
		return s
	}
	macs := []inet.LinkAddr{testnet.MacA, testnet.MacC, testnet.MacS}
	for i, mac := range macs {
		s := mk(fmt.Sprintf("snd%d", i), 1)
		s.AttachLink(hub, mac, 1500)
		w.senders = append(w.senders, s)
	}
	w.rcv = mk("rcv", workers)
	w.rcv.AttachLink(hub, testnet.MacB, 1500)
	e.start()
	return w
}

// fastPathPayload is a recognizable deterministic body: sender tag,
// sequence number, then a rolling pattern. A use-after-free or a
// cross-flow mixup shows up as a byte mismatch.
func fastPathPayload(sender, seq, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(sender*89 + seq*31 + i)
	}
	return b
}

// runFastPathTraffic drives the same deterministic traffic mix through
// a world and returns the delivered payloads per sender, in arrival
// order. Sizes above the 1500-byte MTU fragment on output and
// reassemble at the receiver, so the mix exercises the frag path under
// whatever netisr configuration the world was built with.
func runFastPathTraffic(t *testing.T, w *fastPathWorld) map[int][][]byte {
	t.Helper()
	const port = 7
	srv, err := w.rcv.NewSocket(inet.AFInet6, core.SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: port}); err != nil {
		t.Fatal(err)
	}
	dst := linkLocal(w.rcv)

	clis := make([]*core.Socket, len(w.senders))
	srcOf := map[inet.IP6]int{}
	for i, s := range w.senders {
		c, err := s.NewSocket(inet.AFInet6, core.SockDgram)
		if err != nil {
			t.Fatal(err)
		}
		clis[i] = c
		srcOf[linkLocal(s)] = i
	}

	// Warm-up round: the first datagram to a new neighbor rides the ND
	// resolution; receive one per sender so every neighbor cache is
	// settled before the measured sequences go out.
	for _, c := range clis {
		if err := c.SendTo([]byte("warm"), core.Addr6(dst, port)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(clis); i++ {
		if _, _, err := srv.RecvFrom(64, 2*time.Second); err != nil {
			t.Fatalf("warm-up recv %d: %v", i, err)
		}
	}

	// Interleave the sequences round-robin so frames from different
	// flows are adjacent in the shared hub, then let the receiver's
	// flow steering sort them back out.
	sizes := []int{9, 700, 1400, 52, 2800, 4000}
	for seq, size := range sizes {
		for i, c := range clis {
			if err := c.SendTo(fastPathPayload(i, seq, size), core.Addr6(dst, port)); err != nil {
				t.Fatal(err)
			}
		}
	}

	got := map[int][][]byte{}
	total := len(sizes) * len(clis)
	for n := 0; n < total; n++ {
		data, from, err := srv.RecvFrom(65536, 2*time.Second)
		if err != nil {
			t.Fatalf("recv %d/%d: %v", n, total, err)
		}
		i, ok := srcOf[from.Addr]
		if !ok {
			t.Fatalf("datagram from unknown source %v", from.Addr)
		}
		got[i] = append(got[i], data)
	}
	return got
}

// TestFastPathEquivalence checks that the pooled, flow-steered datapath
// delivers byte-identical datagrams in per-flow order, whether the
// receiver runs the classic single software interrupt (the seed
// configuration) or parallel netisr workers. Mbuf poisoning is enabled
// so a freed-buffer reuse anywhere on the path corrupts a payload and
// fails the comparison.
func TestFastPathEquivalence(t *testing.T) {
	mbuf.SetPoison(true)
	defer mbuf.SetPoison(false)

	sizes := []int{9, 700, 1400, 52, 2800, 4000}
	for _, workers := range []int{1, 4} {
		got := runFastPathTraffic(t, newFastPathWorld(t, workers))
		for sender := 0; sender < 3; sender++ {
			seqs := got[sender]
			if len(seqs) != len(sizes) {
				t.Fatalf("workers=%d sender %d: got %d datagrams, want %d",
					workers, sender, len(seqs), len(sizes))
			}
			for seq, data := range seqs {
				want := fastPathPayload(sender, seq, sizes[seq])
				if !bytes.Equal(data, want) {
					t.Fatalf("workers=%d sender %d datagram %d: payload mismatch (len %d vs %d)",
						workers, sender, seq, len(data), len(want))
				}
			}
		}
	}
}

// TestRouteChurnDuringCachedSends hammers route table generation bumps
// against senders that go through the PCB route cache. Every Add and
// Delete invalidates cached routes, so each send revalidates and
// refills its cache while the table mutates underneath — the scenario
// the generation counter exists for. Run under -race this doubles as
// the locking check for Table, Cache and the radix tree.
func TestRouteChurnDuringCachedSends(t *testing.T) {
	a, b, _ := stackPair(t)
	const port, n, senders = 7, 150, 2

	srv, err := b.NewSocket(inet.AFInet6, core.SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: port}); err != nil {
		t.Fatal(err)
	}
	dst := linkLocal(b)
	ifName := a.Interfaces()[0].Name

	// Settle ND once so churn-time sends never race neighbor discovery.
	warm, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	if err := warm.SendTo([]byte("warm"), core.Addr6(dst, port)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.RecvFrom(64, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	stopChurn := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		prefix := inet.IP6{0: 0x20, 1: 0x01, 2: 0x0d, 3: 0xb8}
		gw := dst
		for {
			select {
			case <-stopChurn:
				return
			default:
			}
			a.RT.Add(&route.Entry{
				Family: inet.AFInet6, Dst: prefix[:], Plen: 32,
				Flags:   route.FlagUp | route.FlagGateway | route.FlagStatic,
				Gateway: gw, IfName: ifName,
			})
			a.RT.Delete(inet.AFInet6, prefix[:], 32)
		}
	}()

	var snd sync.WaitGroup
	sendErr := make([]error, senders)
	for s := 0; s < senders; s++ {
		cli, err := a.NewSocket(inet.AFInet6, core.SockDgram)
		if err != nil {
			t.Fatal(err)
		}
		snd.Add(1)
		go func(s int, cli *core.Socket) {
			defer snd.Done()
			for i := 0; i < n; i++ {
				msg := []byte(fmt.Sprintf("s%d-%04d", s, i))
				if err := cli.SendTo(msg, core.Addr6(dst, port)); err != nil {
					sendErr[s] = fmt.Errorf("send %d: %w", i, err)
					return
				}
			}
		}(s, cli)
	}
	snd.Wait()
	close(stopChurn)
	churn.Wait()
	for s, err := range sendErr {
		if err != nil {
			t.Fatalf("sender %d: %v", s, err)
		}
	}

	// Every datagram must arrive, each sender's in order: churn may
	// slow the path but must never lose or reorder within a flow.
	next := make([]int, senders)
	for i := 0; i < senders*n; i++ {
		data, _, err := srv.RecvFrom(64, 2*time.Second)
		if err != nil {
			t.Fatalf("recv %d/%d: %v", i, senders*n, err)
		}
		var s, seq int
		if _, err := fmt.Sscanf(string(data), "s%d-%d", &s, &seq); err != nil {
			t.Fatalf("bad payload %q", data)
		}
		if seq != next[s] {
			t.Fatalf("sender %d: got seq %d, want %d", s, seq, next[s])
		}
		next[s]++
	}
}
