package core_test

import (
	"bytes"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"bsd6/internal/core"
	"bsd6/internal/icmp6"
	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/key"
	"bsd6/internal/netif"
	"bsd6/internal/testnet"
	"bsd6/internal/vclock"
)

// env is a virtual-time test environment: stacks and hubs share one
// virtual clock, and a vclock.Driver advances it whenever every netisr
// queue and every hub is quiescent. Real goroutines (blocking socket
// calls) therefore run against simulated protocol time — DAD's seconds
// of probing or a socket timeout cost microseconds of wall clock.
type env struct {
	t      *testing.T
	clock  *vclock.Virtual
	probes []func() int
	driver *vclock.Driver
}

func newEnv(t *testing.T) *env {
	e := &env{t: t, clock: vclock.NewVirtual(time.Unix(1_000_000, 0))}
	t.Cleanup(func() {
		if e.driver != nil {
			e.driver.Stop()
		}
	})
	return e
}

// start launches the driver; call after every stack and hub exists so
// their quiescence probes are all registered.
func (e *env) start() {
	e.driver = vclock.NewDriver(e.clock, e.probes...)
	e.driver.Start()
}

func (e *env) stack(name string) *core.Stack {
	s := core.NewStack(name, core.Options{Clock: e.clock})
	e.t.Cleanup(s.Close)
	e.probes = append(e.probes, s.Pending)
	return s
}

func (e *env) hub() *netif.Hub {
	h := netif.NewHub()
	h.SetClock(e.clock)
	// Note: h.Pending is deliberately NOT a driver probe. It counts
	// clock-gated deliveries (latency faults), which only the next
	// Step can release — gating Step on it livelocks the driver.
	return h
}

func stackPair(t *testing.T) (*core.Stack, *core.Stack, *netif.Hub) {
	t.Helper()
	e := newEnv(t)
	hub := e.hub()
	a := e.stack("a")
	b := e.stack("b")
	a.AttachLink(hub, testnet.MacA, 1500)
	b.AttachLink(hub, testnet.MacB, 1500)
	e.start()
	return a, b, hub
}

func linkLocal(s *core.Stack) inet.IP6 {
	ll, _ := s.Interfaces()[0].LinkLocal6(time.Now())
	return ll
}

func TestFigure7UDPHello(t *testing.T) {
	// The paper's Figure 7: socket(PF_INET6, SOCK_DGRAM), fill a
	// sockaddr_in6 via ascii2addr, sendto "hello".
	a, b, _ := stackPair(t)

	srv, err := b.NewSocket(inet.AFInet6, core.SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 7}); err != nil {
		t.Fatal(err)
	}

	cli, err := a.NewSocket(inet.AFInet6, core.SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	addrAny, err := inet.Ascii2Addr(inet.AFInet6, linkLocal(b).String())
	if err != nil {
		t.Fatal(err)
	}
	sa := core.Sockaddr6{Family: inet.AFInet6, Port: 7, Addr: addrAny.(inet.IP6)}
	if err := cli.SendTo([]byte("hello"), sa); err != nil {
		t.Fatal(err)
	}
	data, from, err := srv.RecvFrom(64, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" || from.Addr != linkLocal(a) {
		t.Fatalf("got %q from %v", data, from)
	}
}

func TestStreamSocketsEcho(t *testing.T) {
	a, b, _ := stackPair(t)
	l, _ := b.NewSocket(inet.AFInet6, core.SockStream)
	if err := l.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 8080}); err != nil {
		t.Fatal(err)
	}
	if err := l.Listen(4); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Generous virtual-time timeouts: simulated seconds are free,
		// and the driver may burn through them while this goroutine
		// waits to be scheduled.
		srv, err := l.Accept(time.Minute)
		if err != nil {
			done <- err
			return
		}
		for {
			data, err := srv.Recv(4096, time.Minute)
			if err != nil {
				done <- nil // EOF
				return
			}
			if _, err := srv.Send(data, 5*time.Second); err != nil {
				done <- err
				return
			}
		}
	}()

	c, _ := a.NewSocket(inet.AFInet6, core.SockStream)
	if err := c.Connect(core.Addr6(linkLocal(b), 8080), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	msg := []byte("telnet-over-the-reproduction\r\n")
	if _, err := c.Send(msg, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	var got []byte
	for len(got) < len(msg) {
		chunk, err := c.Recv(4096, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk...)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTransitionV4MappedSockets(t *testing.T) {
	// examples/transition in miniature: PF_INET6 server, IPv4 client.
	e := newEnv(t)
	hub := e.hub()
	a := e.stack("a")
	b := e.stack("b")
	aIf := a.AttachLink(hub, testnet.MacA, 1500)
	bIf := b.AttachLink(hub, testnet.MacB, 1500)
	a.ConfigureV4(aIf, inet.IP4{10, 0, 0, 1}, 24)
	b.ConfigureV4(bIf, inet.IP4{10, 0, 0, 2}, 24)
	e.start()

	srv, _ := b.NewSocket(inet.AFInet6, core.SockDgram)
	srv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 4242})

	cli, _ := a.NewSocket(inet.AFInet, core.SockDgram)
	if err := cli.SendTo([]byte("over v4"), core.Addr4(inet.IP4{10, 0, 0, 2}, 4242)); err != nil {
		t.Fatal(err)
	}
	data, from, err := srv.RecvFrom(64, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "over v4" {
		t.Fatalf("data %q", data)
	}
	if !from.Addr.IsV4Mapped() {
		t.Fatalf("source not v4-mapped: %v", from.Addr)
	}
	// Reply through the same socket back to the mapped address.
	if err := srv.SendTo([]byte("ack"), from); err != nil {
		t.Fatal(err)
	}
	if data, _, err = cli.RecvFrom(64, 2*time.Second); err != nil || string(data) != "ack" {
		t.Fatalf("reply: %q %v", data, err)
	}
	if b.UDP.Stats.InV4ToV6.Get() == 0 {
		t.Fatal("InV4ToV6 not counted")
	}
}

func TestSecuritySocketOptionsEIPSEC(t *testing.T) {
	// §6.3: requesting security with no association and no key
	// management daemon surfaces EIPSEC.
	a, b, _ := stackPair(t)
	_ = b
	cli, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	if err := cli.SetSecurity(core.SoSecurityAuthentication, ipsec.LevelRequire); err != nil {
		t.Fatal(err)
	}
	err := cli.SendTo([]byte("x"), core.Addr6(linkLocal(b), 9))
	if !errors.Is(err, core.EIPSEC) {
		t.Fatalf("err = %v, want EIPSEC", err)
	}
}

func TestSecuredSocketSession(t *testing.T) {
	a, b, _ := stackPair(t)
	authKey := []byte("0123456789abcdef")
	aLL, bLL := linkLocal(a), linkLocal(b)
	for _, s := range []*core.Stack{a, b} {
		s.Keys.Add(&key.SA{SPI: 0x51, Src: aLL, Dst: bLL, Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
		s.Keys.Add(&key.SA{SPI: 0x52, Src: bLL, Dst: aLL, Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
		s.Keys.Add(&key.SA{SPI: 0x53, Src: aLL, Dst: bLL, Proto: key.ProtoESPTransport, EncAlg: "des-cbc", EncKey: []byte("8bytekey")})
		s.Keys.Add(&key.SA{SPI: 0x54, Src: bLL, Dst: aLL, Proto: key.ProtoESPTransport, EncAlg: "des-cbc", EncKey: []byte("8bytekey")})
	}
	// Server requires both services on its socket; the telnet-style
	// client requests them via setsockopt (§6.3).
	l, _ := b.NewSocket(inet.AFInet6, core.SockStream)
	l.SetSecurity(core.SoSecurityAuthentication, ipsec.LevelRequire)
	l.SetSecurity(core.SoSecurityEncryptTrans, ipsec.LevelRequire)
	l.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 23})
	l.Listen(1)

	c, _ := a.NewSocket(inet.AFInet6, core.SockStream)
	c.SetSecurity(core.SoSecurityAuthentication, ipsec.LevelRequire)
	c.SetSecurity(core.SoSecurityEncryptTrans, ipsec.LevelRequire)
	if err := c.Connect(core.Addr6(bLL, 23), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Send([]byte("secret login"), time.Second)
	data, err := srv.Recv(64, 2*time.Second)
	if err != nil || string(data) != "secret login" {
		t.Fatalf("%q %v", data, err)
	}
	if b.Sec.Stats.InAuthOK.Get() == 0 || b.Sec.Stats.InDecryptOK.Get() == 0 {
		t.Fatalf("security not applied: %+v", &b.Sec.Stats)
	}
}

func TestKeyDaemonAcquireFlow(t *testing.T) {
	// A user-level key management "daemon" (standing in for Photuris,
	// §6.2) registers on PF_KEY, answers the ACQUIRE, and traffic then
	// flows.
	a, b, _ := stackPair(t)
	aLL, bLL := linkLocal(a), linkLocal(b)
	authKey := []byte("0123456789abcdef")

	// The daemon: answer any ACQUIRE on either stack by installing the
	// same SA on both (a stand-in for the key exchange protocol run).
	for _, pairS := range [][2]*core.Stack{{a, b}, {b, a}} {
		local, remote := pairS[0], pairS[1]
		ks := local.PFKey()
		t.Cleanup(ks.Close)
		ks.Send(key.Message{Type: key.MsgRegister})
		go func() {
			for m := range ks.C {
				if m.Type != key.MsgAcquire {
					continue
				}
				sa := &key.SA{
					SPI: 0x900, Src: m.SA.Src, Dst: m.SA.Dst, Proto: m.SA.Proto,
					AuthAlg: "keyed-md5", AuthKey: authKey,
				}
				local.Keys.Add(sa)
				remote.Keys.Add(&key.SA{SPI: 0x900, Src: m.SA.Src, Dst: m.SA.Dst, Proto: m.SA.Proto,
					AuthAlg: "keyed-md5", AuthKey: authKey})
			}
		}()
	}

	cli, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	cli.SetSecurity(core.SoSecurityAuthentication, ipsec.LevelRequire)
	srv, _ := b.NewSocket(inet.AFInet6, core.SockDgram)
	srv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 99})

	// First sends fail with EIPSEC while the association is "delayed";
	// once the daemon installs it, traffic flows (§3.3).
	deadline := time.Now().Add(3 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		lastErr = cli.SendTo([]byte("acquired"), core.Addr6(bLL, 99))
		if lastErr == nil {
			break
		}
		if !errors.Is(lastErr, core.EIPSEC) {
			t.Fatalf("unexpected error %v", lastErr)
		}
		runtime.Gosched() // give the daemon goroutine the ACQUIRE
	}
	if lastErr != nil {
		t.Fatalf("send never succeeded: %v", lastErr)
	}
	data, _, err := srv.RecvFrom(64, 2*time.Second)
	if err != nil || string(data) != "acquired" {
		t.Fatalf("%q %v", data, err)
	}
	_ = aLL
}

func TestAutoconfThroughRouter(t *testing.T) {
	// Full §4.2 flow through the public API with live timers (on the
	// virtual clock): router advertises; host autoconfigures (DAD
	// included) and reaches a remote network.
	e := newEnv(t)
	hub := e.hub()
	r := e.stack("r")
	h := e.stack("h")
	e.start()
	rIf := r.AttachLink(hub, testnet.MacR, 1500)
	hIf := h.AttachLink(hub, testnet.MacB, 1500)
	prefix := testnet.IP6(t, "2001:db8:77::")
	r.ConfigureV6(rIf, testnet.IP6(t, "2001:db8:77::1"), 64)
	r.EnableRouter6(rIf.Name, icmp6.RouterConfig{
		Interval: time.Hour, Lifetime: time.Hour,
		Prefixes: []icmp6.PrefixInfo{{Prefix: prefix, Plen: 64, OnLink: true, Autonomous: true}},
	})
	h.SolicitRouters(hIf.Name)

	want := inet.WithPrefix(prefix, 64, inet.LinkLocal(testnet.MacB.Token()))
	// DAD needs several seconds of timer ticks — simulated ones, which
	// the driver burns through as soon as the wire is quiet.
	testnet.WaitFor(t, "autoconf address to become usable", func() bool {
		for _, a := range hIf.Addrs6() {
			if a.Addr == want && !a.Tentative && !a.Duplicated {
				return true
			}
		}
		return false
	})
	// The ifconfig output shows the autoconf address.
	if !strings.Contains(h.Ifconfig(), "autoconf") {
		t.Fatalf("ifconfig:\n%s", h.Ifconfig())
	}
	// And traffic can use it: UDP to the router's global address.
	srv, _ := r.NewSocket(inet.AFInet6, core.SockDgram)
	srv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 777})
	cli, _ := h.NewSocket(inet.AFInet6, core.SockDgram)
	if err := cli.SendTo([]byte("configured"), core.Addr6(testnet.IP6(t, "2001:db8:77::1"), 777)); err != nil {
		t.Fatal(err)
	}
	data, from, err := srv.RecvFrom(64, 2*time.Second)
	if err != nil || string(data) != "configured" {
		t.Fatal(err)
	}
	if from.Addr != want {
		t.Fatalf("source %v, want the autoconf address %v", from.Addr, want)
	}
}

func TestNetstatRendering(t *testing.T) {
	a, b, _ := stackPair(t)
	a.Ping6(linkLocal(b), 1, 1, []byte("x"))
	testnet.WaitFor(t, "echo reply", func() bool { return a.ICMP6.Stats.InEchoReps.Get() >= 1 })
	out := a.Netstat()
	for _, want := range []string{"Routing tables", "reachable", "icmp6:", "ipsec:", "key:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("netstat missing %q:\n%s", want, out)
		}
	}
	ifc := a.Ifconfig()
	if !strings.Contains(ifc, "inet6 fe80::") {
		t.Fatalf("ifconfig:\n%s", ifc)
	}
}

func TestHostTableResolution(t *testing.T) {
	a, b, _ := stackPair(t)
	a.Hosts.Add("peer", linkLocal(b))
	addr, err := a.Hosts.Hostname2Addr(inet.AFInet6, "peer")
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := b.NewSocket(inet.AFInet6, core.SockDgram)
	srv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 53})
	cli, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	if err := cli.SendTo([]byte("by name"), core.Addr6(addr.(inet.IP6), 53)); err != nil {
		t.Fatal(err)
	}
	if data, _, err := srv.RecvFrom(64, 2*time.Second); err != nil || string(data) != "by name" {
		t.Fatal(err)
	}
}

func TestDADOnAttach(t *testing.T) {
	e := newEnv(t)
	hub := e.hub()
	a := e.stack("a")
	b := e.stack("b")
	e.start()
	_, ok := a.AttachLinkDAD(hub, testnet.MacA, 1500)
	if !ok {
		t.Fatal("lone host's DAD failed")
	}
	// A second stack with the SAME MAC (same token, same link-local)
	// must detect the duplicate.
	_, ok = b.AttachLinkDAD(hub, testnet.MacA, 1500)
	if ok {
		t.Fatal("duplicate link-local not detected")
	}
}

func TestSocketTimeouts(t *testing.T) {
	a, _, _ := stackPair(t)
	s, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	s.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 5000})
	start := time.Now()
	_, _, err := s.RecvFrom(64, 50*time.Millisecond)
	if !errors.Is(err, core.ErrTimeoutSock) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout too slow")
	}
	l, _ := a.NewSocket(inet.AFInet6, core.SockStream)
	l.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 5001})
	l.Listen(1)
	if _, err := l.Accept(50 * time.Millisecond); !errors.Is(err, core.ErrTimeoutSock) {
		t.Fatalf("accept: %v", err)
	}
}

func TestPortUnreachableOnSocket(t *testing.T) {
	a, b, _ := stackPair(t)
	cli, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	if err := cli.Connect(core.Addr6(linkLocal(b), 9876), 0); err != nil {
		t.Fatal(err)
	}
	cli.Send([]byte("anyone"), 0)
	// The ICMP error surfaces on the next receive.
	_, _, err := cli.RecvFrom(64, 2*time.Second)
	if !errors.Is(err, core.ErrConnRefused) {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamSocketsOverV4(t *testing.T) {
	e := newEnv(t)
	hub := e.hub()
	a := e.stack("a")
	b := e.stack("b")
	aIf := a.AttachLink(hub, testnet.MacA, 1500)
	bIf := b.AttachLink(hub, testnet.MacB, 1500)
	a.ConfigureV4(aIf, inet.IP4{10, 0, 0, 1}, 24)
	b.ConfigureV4(bIf, inet.IP4{10, 0, 0, 2}, 24)
	e.start()

	l, _ := b.NewSocket(inet.AFInet, core.SockStream)
	l.Bind(core.Sockaddr6{Family: inet.AFInet, Port: 80})
	l.Listen(1)
	c, _ := a.NewSocket(inet.AFInet, core.SockStream)
	if err := c.Connect(core.Addr4(inet.IP4{10, 0, 0, 2}, 80), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Send([]byte("GET /"), time.Second)
	data, err := srv.Recv(64, 2*time.Second)
	if err != nil || string(data) != "GET /" {
		t.Fatalf("%q %v", data, err)
	}
}
