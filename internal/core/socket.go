package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/pcb"
	"bsd6/internal/tcp"
	"bsd6/internal/vclock"
)

// Socket types.
const (
	SockDgram  = 1 // UDP
	SockStream = 2 // TCP
)

// Socket option names for SetSecurity — the new options of §6.1.
type SecurityOption int

const (
	SoSecurityAuthentication SecurityOption = iota + 1 // SO_SECURITY_AUTHENTICATION
	SoSecurityEncryptTrans                             // SO_SECURITY_ENCRYPTION_TRANSPORT
	SoSecurityEncryptTunnel                            // SO_SECURITY_ENCRYPTION_TUNNEL
)

// Errors surfaced by the socket layer. EIPSEC is re-exported from the
// security module: "the newly defined IP Security processing error"
// (§3.3), returned "so the user can be informed of the problem" (§6.3).
var (
	EIPSEC         = ipsec.EIPSEC
	ErrTimeoutSock = errors.New("socket: operation timed out")
	ErrClosedSock  = errors.New("socket: closed")
	ErrConnRefused = errors.New("socket: connection refused")
	ErrMsgSize     = errors.New("socket: message too long")
	ErrHostUnreach = errors.New("socket: no route to host")
	ErrNotStream   = errors.New("socket: not a stream socket")
	ErrNotDgram    = errors.New("socket: not a datagram socket")
)

// Sockaddr6 is struct sockaddr_in6 (paper Figure 7): family, port,
// flow info and a 128-bit address. IPv4 endpoints are expressed in
// v4-mapped form on PF_INET sockets too, keeping one type.
type Sockaddr6 struct {
	Family   inet.Family
	Port     uint16
	FlowInfo uint32
	Addr     inet.IP6
}

func (sa Sockaddr6) String() string {
	return fmt.Sprintf("[%s]:%d", sa.Addr, sa.Port)
}

// Addr6 builds a PF_INET6 sockaddr.
func Addr6(addr inet.IP6, port uint16) Sockaddr6 {
	return Sockaddr6{Family: inet.AFInet6, Port: port, Addr: addr}
}

// Addr4 builds a PF_INET sockaddr (stored v4-mapped).
func Addr4(addr inet.IP4, port uint16) Sockaddr6 {
	return Sockaddr6{Family: inet.AFInet, Port: port, Addr: inet.V4Mapped(addr)}
}

type dgramMsg struct {
	data []byte
	src  inet.IP6
	port uint16
	flow uint32
}

// Socket is a BSD-style socket over the stack.
type Socket struct {
	stack  *Stack
	family inet.Family
	typ    int

	mu   sync.Mutex
	cond *sync.Cond

	// Datagram state.
	p       *pcb.PCB
	rq      []dgramMsg
	rqBytes int
	RqMax   int

	// Stream state.
	conn      *tcp.Conn
	listening bool

	sec    ipsec.SockOpts
	err    error
	closed bool
}

// NewSocket is socket(2): create a PF_INET or PF_INET6 socket of the
// given type.
func (s *Stack) NewSocket(family inet.Family, typ int) (*Socket, error) {
	if family != inet.AFInet && family != inet.AFInet6 {
		return nil, fmt.Errorf("socket: unsupported family %v", family)
	}
	sock := &Socket{stack: s, family: family, typ: typ, RqMax: 256 << 10}
	sock.cond = sync.NewCond(&sock.mu)
	switch typ {
	case SockDgram:
		sock.p = s.UDP.Table.Attach(family, sock)
	case SockStream:
		sock.conn = s.TCP.Attach(family, sock)
		sock.conn.Wakeup = sock.broadcast
	default:
		return nil, fmt.Errorf("socket: unsupported type %d", typ)
	}
	return sock, nil
}

func (sock *Socket) clock() vclock.Clock { return sock.stack.clock }

func (sock *Socket) broadcast() {
	sock.mu.Lock()
	sock.cond.Broadcast()
	sock.mu.Unlock()
}

// SecurityOpts returns the socket's requested security levels; the
// security module's SocketOpts hook reads this through the packet's
// socket back pointer (§3.3).
func (sock *Socket) SecurityOpts() ipsec.SockOpts {
	sock.mu.Lock()
	defer sock.mu.Unlock()
	return sock.sec
}

// SetSecurity is setsockopt(2) for the §6.1 security options, with the
// four levels (0 none, 1 use, 2 require, 3 require-unique).
func (sock *Socket) SetSecurity(opt SecurityOption, level ipsec.Level) error {
	if level < 0 || level > 3 {
		return fmt.Errorf("socket: invalid security level %d", level)
	}
	sock.mu.Lock()
	defer sock.mu.Unlock()
	switch opt {
	case SoSecurityAuthentication:
		sock.sec.Auth = level
	case SoSecurityEncryptTrans:
		sock.sec.ESPTransport = level
	case SoSecurityEncryptTunnel:
		sock.sec.ESPTunnel = level
	default:
		return fmt.Errorf("socket: unknown security option %d", opt)
	}
	sock.stack.secActive.Store(true)
	return nil
}

// SetSecurityBypass marks the socket as exempt from IP security — the
// privileged option of §6.3 for key management daemons and
// application-layer-secured services. It "would fail if the effective
// user-id of the process connected to the socket was not equal to 0 so
// that ordinary user applications could not bypass system security."
func (sock *Socket) SetSecurityBypass(euid int) error {
	if euid != 0 {
		return errors.New("socket: EPERM: security bypass requires effective uid 0")
	}
	sock.mu.Lock()
	sock.sec.Bypass = true
	sock.mu.Unlock()
	sock.stack.secActive.Store(true)
	return nil
}

// SetV6Only restricts a PF_INET6 socket to IPv6 traffic.
func (sock *Socket) SetV6Only(on bool) {
	sock.mu.Lock()
	defer sock.mu.Unlock()
	p := sock.pcbRef()
	if p == nil {
		return
	}
	if on {
		p.Flags |= pcb.FlagV6Only
	} else {
		p.Flags &^= pcb.FlagV6Only
	}
}

// SetBuffers sets the send/receive buffer sizes (SO_SNDBUF/SO_RCVBUF
// — the socket-buffer-size axis of the paper's Table 3).
func (sock *Socket) SetBuffers(snd, rcv int) {
	sock.mu.Lock()
	defer sock.mu.Unlock()
	if sock.conn != nil {
		if snd > 0 {
			sock.conn.SndBufMax = snd
		}
		if rcv > 0 {
			sock.conn.RcvBufMax = rcv
		}
	}
	if rcv > 0 {
		sock.RqMax = rcv
	}
}

func (sock *Socket) pcbRef() *pcb.PCB {
	if sock.p != nil {
		return sock.p
	}
	if sock.conn != nil {
		return sock.conn.PCB()
	}
	return nil
}

// Bind is bind(2).
func (sock *Socket) Bind(sa Sockaddr6) error {
	switch sock.typ {
	case SockDgram:
		return sock.stack.UDP.Table.Bind(sock.p, sa.Addr, sa.Port)
	case SockStream:
		return sock.conn.Bind(sa.Addr, sa.Port)
	}
	return ErrNotStream
}

// Connect is connect(2). Stream sockets block until the handshake
// completes or timeout expires (zero timeout means 30s).
func (sock *Socket) Connect(sa Sockaddr6, timeout time.Duration) error {
	switch sock.typ {
	case SockDgram:
		sock.mu.Lock()
		sock.p.FlowInfo = sa.FlowInfo
		sock.mu.Unlock()
		return sock.stack.UDP.Table.Connect(sock.p, sa.Addr, sa.Port)
	case SockStream:
		sock.conn.PCB().FlowInfo = sa.FlowInfo
		if err := sock.conn.Connect(sa.Addr, sa.Port); err != nil {
			return err
		}
		if timeout == 0 {
			timeout = 30 * time.Second
		}
		deadline := sock.clock().Now().Add(timeout)
		sock.mu.Lock()
		defer sock.mu.Unlock()
		for {
			st := sock.conn.State()
			if st == tcp.StateEstablished {
				return nil
			}
			if err := sock.conn.Err(); err != nil {
				return err
			}
			if st == tcp.StateClosed {
				return ErrClosedSock
			}
			if !sock.waitLocked(deadline) {
				return ErrTimeoutSock
			}
		}
	}
	return ErrNotStream
}

// waitLocked waits on the condition until broadcast or deadline
// (measured on the stack's clock, so virtual-time stacks time out in
// simulated time). Returns false on timeout. Caller holds sock.mu.
func (sock *Socket) waitLocked(deadline time.Time) bool {
	clk := sock.clock()
	if !deadline.IsZero() && !clk.Now().Before(deadline) {
		return false
	}
	done := make(chan struct{})
	var fired bool
	var tm vclock.Timer
	if !deadline.IsZero() {
		tm = clk.AfterFunc(deadline.Sub(clk.Now()), func() {
			sock.mu.Lock()
			fired = true
			sock.cond.Broadcast()
			sock.mu.Unlock()
			close(done)
		})
	}
	sock.cond.Wait()
	if tm != nil {
		if tm.Stop() {
			// Timer cancelled; it never fired.
		} else if !fired {
			// Let the callback finish to avoid racing the lock.
			sock.mu.Unlock()
			<-done
			sock.mu.Lock()
		}
	}
	return !fired
}

// Listen is listen(2).
func (sock *Socket) Listen(backlog int) error {
	if sock.typ != SockStream {
		return ErrNotStream
	}
	sock.mu.Lock()
	sock.listening = true
	sock.mu.Unlock()
	return sock.conn.Listen(backlog)
}

// Accept is accept(2): blocks until a connection is ready or the
// timeout passes (zero = block indefinitely).
func (sock *Socket) Accept(timeout time.Duration) (*Socket, error) {
	if sock.typ != SockStream {
		return nil, ErrNotStream
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = sock.clock().Now().Add(timeout)
	}
	for {
		child := sock.conn.Accept()
		if child != nil {
			cs := &Socket{stack: sock.stack, family: sock.family, typ: SockStream, conn: child, RqMax: sock.RqMax}
			cs.cond = sync.NewCond(&cs.mu)
			cs.sec = sock.SecurityOpts() // children inherit security levels
			child.Wakeup = cs.broadcast
			child.PCB().Socket = cs
			return cs, nil
		}
		sock.mu.Lock()
		if sock.closed {
			sock.mu.Unlock()
			return nil, ErrClosedSock
		}
		ok := sock.waitLocked(deadline)
		sock.mu.Unlock()
		if !ok {
			return nil, ErrTimeoutSock
		}
	}
}

// SendTo is sendto(2) for datagram sockets (paper Figure 7).
func (sock *Socket) SendTo(data []byte, sa Sockaddr6) error {
	if sock.typ != SockDgram {
		return ErrNotDgram
	}
	sock.mu.Lock()
	sock.p.FlowInfo = sa.FlowInfo
	sock.mu.Unlock()
	return sock.stack.UDP.Output(sock.p, data, sa.Addr, sa.Port)
}

// Send writes on a connected socket. For streams it blocks until all
// bytes are queued (or the deadline passes); for datagrams it sends
// one datagram to the connected peer.
func (sock *Socket) Send(data []byte, timeout time.Duration) (int, error) {
	switch sock.typ {
	case SockDgram:
		if err := sock.stack.UDP.Output(sock.p, data, inet.IP6{}, 0); err != nil {
			return 0, err
		}
		return len(data), nil
	case SockStream:
		var deadline time.Time
		if timeout > 0 {
			deadline = sock.clock().Now().Add(timeout)
		}
		sent := 0
		for sent < len(data) {
			n, err := sock.conn.Send(data[sent:])
			if err != nil {
				return sent, err
			}
			sent += n
			if n == 0 {
				sock.mu.Lock()
				ok := sock.waitLocked(deadline)
				sock.mu.Unlock()
				if !ok {
					return sent, ErrTimeoutSock
				}
			}
		}
		return sent, nil
	}
	return 0, ErrNotStream
}

// enqueueDgram appends a received datagram (drops when the socket
// buffer is full, as BSD does).
func (sock *Socket) enqueueDgram(data []byte, src inet.IP6, sport uint16, flow uint32) {
	sock.mu.Lock()
	if sock.rqBytes+len(data) <= sock.RqMax {
		sock.rq = append(sock.rq, dgramMsg{append([]byte(nil), data...), src, sport, flow})
		sock.rqBytes += len(data)
		sock.cond.Broadcast()
	}
	sock.mu.Unlock()
}

// setError records an asynchronous error (from ICMP) on the socket.
func (sock *Socket) setError(err error) {
	sock.mu.Lock()
	if sock.err == nil {
		sock.err = err
	}
	sock.cond.Broadcast()
	sock.mu.Unlock()
}

// RecvFrom is recvfrom(2): blocks for a datagram (or stream data; the
// source is then the connected peer).
func (sock *Socket) RecvFrom(max int, timeout time.Duration) ([]byte, Sockaddr6, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = sock.clock().Now().Add(timeout)
	}
	switch sock.typ {
	case SockDgram:
		sock.mu.Lock()
		defer sock.mu.Unlock()
		for {
			if len(sock.rq) > 0 {
				m := sock.rq[0]
				sock.rq = sock.rq[1:]
				sock.rqBytes -= len(m.data)
				data := m.data
				if max > 0 && len(data) > max {
					data = data[:max] // excess is discarded, as recvfrom does
				}
				fam := inet.AFInet6
				if m.src.IsV4Mapped() && sock.family == inet.AFInet {
					fam = inet.AFInet
				}
				return data, Sockaddr6{Family: fam, Addr: m.src, Port: m.port, FlowInfo: m.flow}, nil
			}
			if sock.err != nil {
				err := sock.err
				sock.err = nil // asynchronous errors report once
				return nil, Sockaddr6{}, err
			}
			if sock.closed {
				return nil, Sockaddr6{}, ErrClosedSock
			}
			if !sock.waitLocked(deadline) {
				return nil, Sockaddr6{}, ErrTimeoutSock
			}
		}
	case SockStream:
		data, err := sock.recvStream(max, deadline)
		return data, sock.RemoteAddr(), err
	}
	return nil, Sockaddr6{}, ErrNotDgram
}

// Recv reads from a stream socket, blocking until data, EOF or
// timeout.
func (sock *Socket) Recv(max int, timeout time.Duration) ([]byte, error) {
	if sock.typ != SockStream {
		data, _, err := sock.RecvFrom(max, timeout)
		return data, err
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = sock.clock().Now().Add(timeout)
	}
	return sock.recvStream(max, deadline)
}

func (sock *Socket) recvStream(max int, deadline time.Time) ([]byte, error) {
	if max <= 0 {
		max = 64 << 10
	}
	for {
		data, err := sock.conn.Recv(max)
		if err != nil {
			if errors.Is(err, tcp.ErrClosed) {
				return nil, ErrClosedSock // EOF
			}
			return nil, err
		}
		if data != nil {
			return data, nil
		}
		sock.mu.Lock()
		ok := sock.waitLocked(deadline)
		sock.mu.Unlock()
		if !ok {
			return nil, ErrTimeoutSock
		}
	}
}

// ReadInto is read(2): it copies stream data into p, blocking until
// data, EOF or timeout, and returns the byte count.  Unlike Recv it
// allocates nothing, so a bulk receiver can reuse one buffer for the
// life of the connection.
func (sock *Socket) ReadInto(p []byte, timeout time.Duration) (int, error) {
	if sock.typ != SockStream {
		data, _, err := sock.RecvFrom(len(p), timeout)
		return copy(p, data), err
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = sock.clock().Now().Add(timeout)
	}
	for {
		n, err := sock.conn.ReadInto(p)
		if err != nil {
			if errors.Is(err, tcp.ErrClosed) {
				return 0, ErrClosedSock // EOF
			}
			return 0, err
		}
		if n > 0 {
			return n, nil
		}
		sock.mu.Lock()
		ok := sock.waitLocked(deadline)
		sock.mu.Unlock()
		if !ok {
			return 0, ErrTimeoutSock
		}
	}
}

// Close is close(2) (for streams: graceful FIN; the final release
// happens when TCP finishes).
func (sock *Socket) Close() error {
	sock.mu.Lock()
	if sock.closed {
		sock.mu.Unlock()
		return nil
	}
	sock.closed = true
	sock.cond.Broadcast()
	sock.mu.Unlock()
	switch sock.typ {
	case SockDgram:
		sock.stack.UDP.Table.Detach(sock.p)
	case SockStream:
		return sock.conn.Close()
	}
	return nil
}

// Conn exposes the TCP connection for introspection (state, MSS).
func (sock *Socket) Conn() *tcp.Conn { return sock.conn }

// LocalAddr returns the bound address.
func (sock *Socket) LocalAddr() Sockaddr6 {
	p := sock.pcbRef()
	if p == nil {
		return Sockaddr6{}
	}
	return Sockaddr6{Family: sock.family, Addr: p.LAddr, Port: p.LPort, FlowInfo: p.FlowInfo}
}

// RemoteAddr returns the connected peer.
func (sock *Socket) RemoteAddr() Sockaddr6 {
	p := sock.pcbRef()
	if p == nil {
		return Sockaddr6{}
	}
	return Sockaddr6{Family: sock.family, Addr: p.FAddr, Port: p.FPort, FlowInfo: p.FlowInfo}
}
