package core_test

// Full-stack tests for the tunnel devices: dual-stack islands joined
// across a core of the other protocol, TCP transfers riding the
// encap/decap re-entry paths, nested PMTU discovery against a narrow
// middle, the GSO flush at tunnel netifs held to wire equivalence,
// and tunnel-mode IPsec composing over the same re-entry.

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"bsd6/internal/core"
	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/ipv4"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/testnet"
	"bsd6/internal/tunnel"
)

func islandBody(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*11 + i>>8 + 5)
	}
	return b
}

// streamEcho moves body cli→srv and a reversed copy srv→cli on one
// connection, failing unless both directions arrive byte-identical.
func streamEcho(t *testing.T, cli, srv *core.Stack, family inet.Family, dial core.Sockaddr6, body []byte) {
	t.Helper()
	l, err := srv.NewSocket(family, core.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	l.SetBuffers(1<<20, 1<<20)
	if err := l.Bind(core.Sockaddr6{Family: family, Port: dial.Port}); err != nil {
		t.Fatal(err)
	}
	if err := l.Listen(1); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(body))
	for i, c := range body {
		back[len(body)-1-i] = c
	}
	srvErr := make(chan error, 1)
	go func() {
		s, err := l.Accept(5 * time.Minute)
		if err != nil {
			srvErr <- fmt.Errorf("accept: %w", err)
			return
		}
		var rcvd []byte
		for len(rcvd) < len(body) {
			chunk, err := s.Recv(1<<16, 5*time.Minute)
			if err != nil {
				srvErr <- fmt.Errorf("recv at %d: %w", len(rcvd), err)
				return
			}
			rcvd = append(rcvd, chunk...)
		}
		if !bytes.Equal(rcvd, body) {
			srvErr <- fmt.Errorf("forward stream corrupted (%d bytes)", len(rcvd))
			return
		}
		if _, err := s.Send(back, 5*time.Minute); err != nil {
			srvErr <- fmt.Errorf("send back: %w", err)
			return
		}
		srvErr <- nil
	}()

	c, err := cli.NewSocket(family, core.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBuffers(1<<20, 1<<20)
	if err := c.Connect(dial, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(body, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	var got []byte
	for len(got) < len(back) {
		chunk, err := c.Recv(1<<16, 5*time.Minute)
		if err != nil {
			t.Fatalf("reverse recv at %d: %v", len(got), err)
		}
		got = append(got, chunk...)
	}
	if !bytes.Equal(got, back) {
		t.Fatalf("reverse stream corrupted (%d bytes)", len(got))
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
}

// TestIslandTCPv6OverV4Core is the paper's deployment reality: two
// IPv6 islands, an IPv4-only core, a configured 6in4 tunnel — and a
// TCP connection whose every wire frame is IPv4.
func TestIslandTCPv6OverV4Core(t *testing.T) {
	e := newEnv(t)
	hub := e.hub()
	a := e.stack("a")
	b := e.stack("b")
	aIf := a.AttachLink(hub, testnet.MacA, 1500)
	bIf := b.AttachLink(hub, testnet.MacB, 1500)
	v4A, v4B := inet.IP4{10, 0, 0, 1}, inet.IP4{10, 0, 0, 2}
	a.ConfigureV4(aIf, v4A, 24)
	b.ConfigureV4(bIf, v4B, 24)

	tunA, err := a.AddTunnel(tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in4, Local4: v4A, Remote4: v4B})
	if err != nil {
		t.Fatal(err)
	}
	tunB, err := b.AddTunnel(tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in4, Local4: v4B, Remote4: v4A})
	if err != nil {
		t.Fatal(err)
	}
	a6, b6 := testnet.IP6(t, "fd00::1"), testnet.IP6(t, "fd00::2")
	a.ConfigureV6(tunA.Ifp, a6, 64)
	b.ConfigureV6(tunB.Ifp, b6, 64)

	var rawV6 int
	var mu sync.Mutex
	hub.Capture = func(fr netif.Frame) {
		if fr.EtherType == netif.EtherTypeIPv6 {
			mu.Lock()
			rawV6++
			mu.Unlock()
		}
	}
	e.start()

	streamEcho(t, a, b, inet.AFInet6, core.Addr6(b6, 8080), islandBody(256<<10))

	mu.Lock()
	leaked := rawV6
	mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d raw IPv6 frames crossed the v4-only core", leaked)
	}
	if s := tunA.Stats(); s.Encapped == 0 || s.Decapped == 0 {
		t.Fatalf("tunA stats %+v: transfer did not ride the tunnel", s)
	}
	if s := tunB.Stats(); s.Encapped == 0 || s.Decapped == 0 {
		t.Fatalf("tunB stats %+v: transfer did not ride the tunnel", s)
	}
	// The operator's view names the device and its activity.
	if out := a.Netstat(); !strings.Contains(out, "tunnel tun0 (6in4)") {
		t.Fatalf("netstat missing tunnel row:\n%s", out)
	}
}

// TestIslandTCPv4OverV6Core is the reverse transition: IPv4 islands,
// an IPv6-only core, a 4in6 tunnel.
func TestIslandTCPv4OverV6Core(t *testing.T) {
	e := newEnv(t)
	hub := e.hub()
	a := e.stack("a")
	b := e.stack("b")
	aIf := a.AttachLink(hub, testnet.MacA, 1500)
	bIf := b.AttachLink(hub, testnet.MacB, 1500)
	core6A := testnet.IP6(t, "2001:db8:c0::1")
	core6B := testnet.IP6(t, "2001:db8:c0::2")
	a.ConfigureV6(aIf, core6A, 64)
	b.ConfigureV6(bIf, core6B, 64)

	tunA, err := a.AddTunnel(tunnel.Config{Name: "tun0", Mode: tunnel.Mode4in6, Local6: core6A, Remote6: core6B})
	if err != nil {
		t.Fatal(err)
	}
	tunB, err := b.AddTunnel(tunnel.Config{Name: "tun0", Mode: tunnel.Mode4in6, Local6: core6B, Remote6: core6A})
	if err != nil {
		t.Fatal(err)
	}
	v4A, v4B := inet.IP4{192, 168, 7, 1}, inet.IP4{192, 168, 7, 2}
	a.ConfigureV4(tunA.Ifp, v4A, 24)
	b.ConfigureV4(tunB.Ifp, v4B, 24)

	var rawV4 int
	var mu sync.Mutex
	hub.Capture = func(fr netif.Frame) {
		if fr.EtherType == netif.EtherTypeIPv4 || fr.EtherType == ipv4.EtherTypeARP {
			mu.Lock()
			rawV4++
			mu.Unlock()
		}
	}
	e.start()

	streamEcho(t, a, b, inet.AFInet, core.Addr4(v4B, 8080), islandBody(256<<10))

	mu.Lock()
	leaked := rawV4
	mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d raw IPv4/ARP frames crossed the v6-only core", leaked)
	}
	if s := tunB.Stats(); s.Encapped == 0 || s.Decapped == 0 {
		t.Fatalf("tunB stats %+v: transfer did not ride the tunnel", s)
	}
}

// tcpPTBWorld: tunnel heads A and B joined by v4 router R whose far
// side is narrower than A's tunnel believes.
type tcpPTBWorld struct {
	e          *env
	hub1, hub2 *netif.Hub
	a, r, b    *core.Stack
	tunA, tunB *tunnel.Tunnel
	a6, b6     inet.IP6
}

func newTCPPTBWorld(t *testing.T) *tcpPTBWorld {
	w := &tcpPTBWorld{e: newEnv(t)}
	w.hub1, w.hub2 = w.e.hub(), w.e.hub()
	w.a, w.r, w.b = w.e.stack("a"), w.e.stack("r"), w.e.stack("b")

	// Only R's egress toward B is narrow.  Both tunnel heads sit on
	// 1500 links and honestly advertise 1500-derived MSS values, so
	// nothing caps the segment size a priori — the narrowing is only
	// discoverable through the router's frag-needed signal.
	aIf := w.a.AttachLink(w.hub1, testnet.MacA, 1500)
	r1 := w.r.AttachLink(w.hub1, testnet.MacR, 1500)
	r2 := w.r.AttachLink(w.hub2, testnet.MacS, 1400)
	bIf := w.b.AttachLink(w.hub2, testnet.MacB, 1500)
	v4A, v4B := inet.IP4{10, 0, 1, 1}, inet.IP4{10, 0, 2, 2}
	w.a.ConfigureV4(aIf, v4A, 24)
	w.r.ConfigureV4(r1, inet.IP4{10, 0, 1, 254}, 24)
	w.r.ConfigureV4(r2, inet.IP4{10, 0, 2, 254}, 24)
	w.b.ConfigureV4(bIf, v4B, 24)
	w.r.V4.Forwarding = true
	w.a.DefaultRoute4(inet.IP4{10, 0, 1, 254}, aIf.Name)
	w.b.DefaultRoute4(inet.IP4{10, 0, 2, 254}, bIf.Name)

	var err error
	// A believes the whole outer path is 1500-clean; discovering the
	// 1400 narrowing is the nested-PMTU machinery's job.
	w.tunA, err = w.a.AddTunnel(tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in4,
		Local4: v4A, Remote4: v4B, LinkMTU: 1500})
	if err != nil {
		t.Fatal(err)
	}
	w.tunB, err = w.b.AddTunnel(tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in4,
		Local4: v4B, Remote4: v4A, LinkMTU: 1500})
	if err != nil {
		t.Fatal(err)
	}
	w.a6, w.b6 = testnet.IP6(t, "fd00::1"), testnet.IP6(t, "fd00::2")
	w.a.ConfigureV6(w.tunA.Ifp, w.a6, 64)
	w.b.ConfigureV6(w.tunB.Ifp, w.b6, 64)
	return w
}

// TestTunnelNestedPTBWithTCP runs a TCP transfer into the narrow
// middle: full-MSS segments encapsulate to 1500-byte DF outers that
// die at R, the returned frag-needed narrows A's tunnel device by the
// encap overhead, the relayed inner Packet Too Big shrinks the
// connection's segment size, and the transfer completes intact.
func TestTunnelNestedPTBWithTCP(t *testing.T) {
	w := newTCPPTBWorld(t)
	w.e.start()

	streamEcho(t, w.a, w.b, inet.AFInet6, core.Addr6(w.b6, 9010), islandBody(96<<10))

	if got, want := w.tunA.Ifp.MTU(), 1400-ipv4.HeaderLen; got != want {
		t.Fatalf("tunnel MTU %d after transfer, want narrowed to %d", got, want)
	}
	if got := w.tunA.Stats().PMTUUpdates; got < 1 {
		t.Fatalf("PMTUUpdates = %d, want >= 1", got)
	}
	if got := w.a.ICMP6.Stats.PmtuUpdates.Get(); got < 1 {
		t.Fatalf("inner PTB never reached A's PMTU cache")
	}
}

// TestTunnelNestedPTBHostileLink repeats the narrow-middle transfer
// with the near link losing, duplicating, and corrupting frames —
// including the frag-needed signal itself.  TCP retransmission keeps
// regenerating the oversized outers, so a lost PTB is re-elicited;
// corrupted PTBs must die on checksums rather than mis-narrow the
// tunnel; and the transfer must still complete byte-identically with
// the device converged on exactly the true inner MTU.
func TestTunnelNestedPTBHostileLink(t *testing.T) {
	w := newTCPPTBWorld(t)
	w.hub1.SetFaults(netif.Faults{Loss: 0.03, Duplicate: 0.03, Corrupt: 0.02})
	w.hub1.SetSeed(7)
	w.e.start()

	streamEcho(t, w.a, w.b, inet.AFInet6, core.Addr6(w.b6, 9011), islandBody(64<<10))

	if got, want := w.tunA.Ifp.MTU(), 1400-ipv4.HeaderLen; got != want {
		t.Fatalf("tunnel MTU %d after hostile transfer, want %d", got, want)
	}
}

// runTunnelStream is runBatchStream's topology moved onto a 6in4
// tunnel: the same quarter-megabyte stream, but every data frame
// crosses the hub encapsulated.  Returns the full wire trace and the
// client/server snapshots.
func runTunnelStream(t *testing.T, opts core.Options, faults netif.Faults, seed int64, horizon time.Duration) ([]string, core.Snapshot, core.Snapshot) {
	t.Helper()
	e := newEnv(t)
	hub := e.hub()

	var mu sync.Mutex
	var trace []string
	hub.Capture = func(fr netif.Frame) {
		line := fmt.Sprintf("%s>%s %04x %x", fr.Src, fr.Dst, fr.EtherType, fr.Payload.Bytes())
		mu.Lock()
		trace = append(trace, line)
		mu.Unlock()
	}
	hub.SetFaults(faults)
	hub.SetSeed(seed)

	opts.Clock = e.clock
	mk := func(name string) *core.Stack {
		s := core.NewStack(name, opts)
		t.Cleanup(s.Close)
		e.probes = append(e.probes, s.Pending)
		return s
	}
	cli := mk("cli")
	srv := mk("srv")
	cIf := cli.AttachLink(hub, testnet.MacA, 1500)
	sIf := srv.AttachLink(hub, testnet.MacB, 1500)
	v4C, v4S := inet.IP4{10, 0, 0, 1}, inet.IP4{10, 0, 0, 2}
	cli.ConfigureV4(cIf, v4C, 24)
	srv.ConfigureV4(sIf, v4S, 24)
	tunC, err := cli.AddTunnel(tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in4, Local4: v4C, Remote4: v4S})
	if err != nil {
		t.Fatal(err)
	}
	tunS, err := srv.AddTunnel(tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in4, Local4: v4S, Remote4: v4C})
	if err != nil {
		t.Fatal(err)
	}
	c6, s6 := testnet.IP6(t, "fd00::c"), testnet.IP6(t, "fd00::5")
	cli.ConfigureV6(tunC.Ifp, c6, 64)
	srv.ConfigureV6(tunS.Ifp, s6, 64)

	l, err := srv.NewSocket(inet.AFInet6, core.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	l.SetBuffers(1<<20, 1<<20)
	if err := l.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 9009}); err != nil {
		t.Fatal(err)
	}
	if err := l.Listen(1); err != nil {
		t.Fatal(err)
	}
	c, err := cli.NewSocket(inet.AFInet6, core.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBuffers(1<<20, 1<<20)

	quiet := make(chan struct{})
	e.clock.AfterFunc(10*time.Second, func() { close(quiet) })
	end := make(chan struct{})
	e.clock.AfterFunc(horizon, func() { close(end) })
	e.start()

	body := batchStreamBody()
	got := make(chan []byte, 1)
	srvErr := make(chan error, 1)
	go func() {
		s, err := l.Accept(5 * time.Minute)
		if err != nil {
			srvErr <- fmt.Errorf("accept: %w", err)
			return
		}
		var rcvd []byte
		for len(rcvd) < batchStreamTotal {
			chunk, err := s.Recv(1<<16, 5*time.Minute)
			if err != nil {
				srvErr <- fmt.Errorf("recv at %d: %w", len(rcvd), err)
				return
			}
			rcvd = append(rcvd, chunk...)
		}
		got <- rcvd
	}()

	<-quiet
	if err := c.Connect(core.Addr6(s6, 9009), time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(body, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-srvErr:
		t.Fatal(err)
	case rcvd := <-got:
		if !bytes.Equal(rcvd, body) {
			t.Fatalf("stream corrupted: %d bytes received", len(rcvd))
		}
	}
	<-end

	mu.Lock()
	out := append([]string(nil), trace...)
	mu.Unlock()
	return out, cli.Snapshot(), srv.Snapshot()
}

// TestGSOTunnelWireEquivalence pins the GSO.PathMTU tunnel bugfix: a
// batched stack whose supers are split at the tunnel boundary (and
// whose descriptors are flushed before encapsulation) must put
// byte-identical frames on the v4 core as an unbatched stack.  Were a
// super's descriptor to survive into the outer path, the splitter
// would cut encapsulated packets at inner-derived offsets and the
// traces would diverge immediately.
func TestGSOTunnelWireEquivalence(t *testing.T) {
	mbuf.SetPoison(true)
	defer mbuf.SetPoison(false)

	lockstep := netif.Faults{Latency: 2 * time.Millisecond}
	off, _, _ := runTunnelStream(t,
		core.Options{NetisrWorkers: 4, BurstSize: -1, GRO: -1, GSO: -1},
		lockstep, 1, 30*time.Second)
	on, cliSnap, _ := runTunnelStream(t,
		core.Options{NetisrWorkers: 4},
		lockstep, 1, 30*time.Second)
	diffTraces(t, "tunnel path", off, on)

	// The equivalence must have been earned: the batched sender really
	// built supers for the tunnel boundary to split and flush.
	if n := cliSnap.TCP["GSOSegs"]; n == 0 {
		t.Error("batched sender built no GSO super-segments over the tunnel")
	}
}

// TestIPsecOverTunnel composes tunnel-mode ESP with a 6in6 island
// tunnel: the tunnel's outer packets match a gateway-style SA selector
// and get encrypted on the same output re-entry, so the core sees only
// ESP — and decap on the far side happens after ESP input re-injects
// the outer packet.
func TestIPsecOverTunnel(t *testing.T) {
	e := newEnv(t)
	hub := e.hub()
	a := e.stack("a")
	b := e.stack("b")
	aIf := a.AttachLink(hub, testnet.MacA, 1500)
	bIf := b.AttachLink(hub, testnet.MacB, 1500)
	core6A := testnet.IP6(t, "2001:db8:c0::1")
	core6B := testnet.IP6(t, "2001:db8:c0::2")
	a.ConfigureV6(aIf, core6A, 64)
	b.ConfigureV6(bIf, core6B, 64)

	// LinkMTU leaves room for the ESP tunnel wrap on the outer path.
	tunA, err := a.AddTunnel(tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in6,
		Local6: core6A, Remote6: core6B, LinkMTU: 1400})
	if err != nil {
		t.Fatal(err)
	}
	tunB, err := b.AddTunnel(tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in6,
		Local6: core6B, Remote6: core6A, LinkMTU: 1400})
	if err != nil {
		t.Fatal(err)
	}
	a6, b6 := testnet.IP6(t, "fd00::1"), testnet.IP6(t, "fd00::2")
	a.ConfigureV6(tunA.Ifp, a6, 64)
	b.ConfigureV6(tunB.Ifp, b6, 64)

	// Gateway-style SAs selecting each outer endpoint: every
	// encapsulated packet A sends toward B's outer address is wrapped.
	encKey := []byte("8bytekey")
	for _, s := range []*core.Stack{a, b} {
		s.Keys.Add(&key.SA{SPI: 0x61, Src: core6A, Dst: core6B, Proto: key.ProtoESPTunnel,
			EncAlg: "des-cbc", EncKey: encKey, SelDst: core6B, SelPlen: 128})
		s.Keys.Add(&key.SA{SPI: 0x62, Src: core6B, Dst: core6A, Proto: key.ProtoESPTunnel,
			EncAlg: "des-cbc", EncKey: encKey, SelDst: core6A, SelPlen: 128})
		// Tunnel outer packets carry no originating socket, so only a
		// system-wide policy reaches them; level "use" wraps whatever
		// traffic has a matching association and passes the rest.
		s.Sec.SetSystemPolicy(ipsec.SockOpts{ESPTunnel: ipsec.LevelUse})
	}
	e.start()

	streamEcho(t, a, b, inet.AFInet6, core.Addr6(b6, 9012), islandBody(32<<10))

	if n := b.Sec.Stats.InDecryptOK.Get(); n == 0 {
		t.Fatal("no ESP decrypts on the server: tunnel traffic was not secured")
	}
	if s := tunB.Stats(); s.Decapped == 0 {
		t.Fatalf("tunB stats %+v: decap after ESP re-injection missing", s)
	}
}
