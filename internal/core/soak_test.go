package core_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"bsd6/internal/core"
	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/tcp"
	"bsd6/internal/testnet"
)

// The flood-soak scenario: one victim stack with tight resource
// limits, one legitimate peer, and one attacker interface spraying
// never-completing fragments, spoofed-source SYNs, and neighbor
// solicits from fabricated hosts — all on the shared hub, all under
// the virtual clock.  The assertions are the resource-governance
// contract end to end: every gauge stays under its cap while the
// flood runs, every induced discard is attributed to its typed
// reason, no mbuf leaks (poison-on-free is armed for the duration),
// and the legitimate TCP and UDP flows complete anyway.

// soakLimits are the victim's deliberately tight ceilings.
const (
	soakReasmMax     = 32
	soakReasmPerSrc  = 4
	soakNDMax        = 16
	soakSynMax       = 8
	soakMbufLimit    = 512 << 10
	soakRounds       = 8
	soakBurstPerKind = 16
)

// attackSrc fabricates distinct on-link source addresses per attack
// kind (the k byte) and index.
func attackSrc(t *testing.T, k, i int) inet.IP6 {
	return testnet.IP6(t, fmt.Sprintf("fe80::%x:%x", k, i+1))
}

// fragFlood builds a first-and-never-final IPv6 fragment: it opens a
// reassembly buffer on the victim that only quota eviction or the
// 60-second timeout will close.
func fragFlood(src, dst inet.IP6, id uint32) *mbuf.Mbuf {
	fh := &ipv6.FragHeader{NextHdr: proto.UDP, Off: 0, More: true, ID: id}
	fb := fh.Marshal(nil)
	fb = append(fb, make([]byte, 64)...)
	h := &ipv6.Header{NextHdr: proto.Fragment, HopLimit: 64, PayloadLen: len(fb), Src: src, Dst: dst}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append(fb)
	return pkt
}

// synFlood builds a spoofed-source SYN for the victim's listener; the
// SYN/ACK answer can never be delivered, so the embryonic connection
// stays in SYN_RCVD until the backlog cap reaps it.
func synFlood(src, dst inet.IP6, sport, dport uint16) *mbuf.Mbuf {
	th := &tcp.Header{SPort: sport, DPort: dport, Seq: 1, Flags: tcp.FlagSYN, Wnd: 65535}
	seg := th.Marshal()
	ck := inet.TransportChecksum6(src, dst, proto.TCP, seg)
	seg[16], seg[17] = byte(ck>>8), byte(ck)
	h := &ipv6.Header{NextHdr: proto.TCP, HopLimit: 64, PayloadLen: len(seg), Src: src, Dst: dst}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append(seg)
	return pkt
}

// nsSpray builds a Neighbor Solicit from a fabricated host carrying a
// source link-layer option, so the victim installs a neighbor-cache
// entry for a host that does not exist.
func nsSpray(src, target inet.IP6, mac inet.LinkAddr) *mbuf.Mbuf {
	msg := make([]byte, 8+16, 8+16+8)
	msg[0] = 135 // ICMPv6 Neighbor Solicit
	copy(msg[8:24], target[:])
	msg = append(msg, 1, 1) // source link-layer address option
	msg = append(msg, mac[:]...)
	ck := inet.TransportChecksum6(src, target, proto.ICMPv6, msg)
	msg[2], msg[3] = byte(ck>>8), byte(ck)
	h := &ipv6.Header{NextHdr: proto.ICMPv6, HopLimit: 255, PayloadLen: len(msg), Src: src, Dst: target}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append(msg)
	return pkt
}

func TestFloodSoakBoundedState(t *testing.T) {
	mbuf.SetPoison(true)
	t.Cleanup(func() { mbuf.SetPoison(false) })
	baseOutstanding := mbuf.Outstanding()

	e := newEnv(t)
	hub := e.hub()
	victim := core.NewStack("victim", core.Options{
		Clock:             e.clock,
		ReasmMaxDatagrams: soakReasmMax,
		ReasmMaxPerSource: soakReasmPerSrc,
		NDCacheMax:        soakNDMax,
		SynBacklogMax:     soakSynMax,
		MbufLimit:         soakMbufLimit,
	})
	t.Cleanup(victim.Close)
	e.probes = append(e.probes, victim.Pending)
	legit := e.stack("legit")
	victim.AttachLink(hub, testnet.MacB, 1500)
	legit.AttachLink(hub, testnet.MacA, 1500)

	// The attacker is a bare interface, not a stack: frames sent back
	// to it (SYN/ACKs, NAs) are sunk and returned to the pool.
	atk := netif.New("atk0", testnet.MacC, 1500)
	atk.SetInput(func(_ *netif.Interface, fr netif.Frame) { fr.Payload.Free() })
	hub.Attach(atk)
	e.start()

	vLL := linkLocal(victim)
	const echoPort = 9100

	// Victim-side echo server, reused by the mid-flood and post-flood
	// connections.
	l, err := victim.NewSocket(inet.AFInet6, core.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: echoPort}); err != nil {
		t.Fatal(err)
	}
	if err := l.Listen(4); err != nil {
		t.Fatal(err)
	}
	serverErr := make(chan error, 2)
	go func() {
		for i := 0; i < 2; i++ {
			srv, err := l.Accept(10 * time.Minute)
			if err != nil {
				serverErr <- err
				return
			}
			go func() {
				for {
					data, err := srv.Recv(8192, 10*time.Minute)
					if err != nil {
						serverErr <- nil // EOF
						return
					}
					if _, err := srv.Send(data, 10*time.Minute); err != nil {
						serverErr <- err
						return
					}
				}
			}()
		}
	}()

	// Establish the legitimate connection before the flood starts; the
	// data transfer then rides through every round of it.
	c1, err := legit.NewSocket(inet.AFInet6, core.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Connect(core.Addr6(vLL, echoPort), time.Minute); err != nil {
		t.Fatal(err)
	}

	inject := func(pkt *mbuf.Mbuf) { atk.Output(testnet.MacB, netif.EtherTypeIPv6, pkt) }
	id := uint32(0)
	for round := 0; round < soakRounds; round++ {
		for i := 0; i < soakBurstPerKind; i++ {
			id++
			// 10 fragment sources: deep enough per source to trip the
			// per-source quota, wide enough to trip the global one.
			inject(fragFlood(attackSrc(t, 7, int(id)%10), vLL, id))
			inject(synFlood(attackSrc(t, 5, round*soakBurstPerKind+i), vLL, uint16(20000+id), echoPort))
			inject(nsSpray(attackSrc(t, 6, round*soakBurstPerKind+i), vLL, inet.LinkAddr{2, 0, 0, 1, byte(round), byte(i)}))
		}
		testnet.WaitFor(t, "victim drains the burst", func() bool { return victim.Pending() == 0 })

		lim := victim.Snapshot().Limits
		if lim.Reasm6.Cur > soakReasmMax {
			t.Fatalf("round %d: reasm queue %d exceeds cap %d", round, lim.Reasm6.Cur, soakReasmMax)
		}
		if lim.NDCache.Cur > soakNDMax {
			t.Fatalf("round %d: neighbor cache %d exceeds cap %d", round, lim.NDCache.Cur, soakNDMax)
		}
		if lim.SynBacklog.Cur > soakSynMax {
			t.Fatalf("round %d: SYN backlog %d exceeds cap %d", round, lim.SynBacklog.Cur, soakSynMax)
		}
		if lim.MbufQueue.Cur > soakMbufLimit {
			t.Fatalf("round %d: netisr bytes %d exceed cap %d", round, lim.MbufQueue.Cur, soakMbufLimit)
		}

		// One echo chunk per round: the legitimate flow makes progress
		// in the middle of the flood, retransmitting through any
		// collateral discards.
		chunk := bytes.Repeat([]byte{byte('a' + round)}, 2048)
		rest := chunk
		for len(rest) > 0 {
			n, err := c1.Send(rest, 5*time.Minute)
			if err != nil {
				t.Fatalf("round %d: send: %v", round, err)
			}
			rest = rest[n:]
		}
		var got []byte
		for len(got) < len(chunk) {
			b, err := c1.Recv(8192, 5*time.Minute)
			if err != nil {
				t.Fatalf("round %d: recv: %v", round, err)
			}
			got = append(got, b...)
		}
		if !bytes.Equal(got, chunk) {
			t.Fatalf("round %d: echo corrupted through flood", round)
		}
	}
	c1.Close()
	if err := <-serverErr; err != nil {
		t.Fatalf("echo server: %v", err)
	}

	// Recovery: a fresh connection and a UDP exchange complete after
	// the flood, even though embryonic flood children and sprayed
	// neighbors still occupy (capped) state.
	c2, err := legit.NewSocket(inet.AFInet6, core.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Connect(core.Addr6(vLL, echoPort), 5*time.Minute); err != nil {
		t.Fatalf("post-flood connect: %v", err)
	}
	c2.Close()

	usrv, _ := victim.NewSocket(inet.AFInet6, core.SockDgram)
	if err := usrv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 7}); err != nil {
		t.Fatal(err)
	}
	ucli, _ := legit.NewSocket(inet.AFInet6, core.SockDgram)
	delivered := false
	for try := 0; try < 8 && !delivered; try++ {
		if err := ucli.SendTo([]byte("ping"), core.Sockaddr6{Family: inet.AFInet6, Port: 7, Addr: vLL}); err != nil {
			t.Fatal(err)
		}
		data, _, err := usrv.RecvFrom(64, 2*time.Second)
		delivered = err == nil && string(data) == "ping"
	}
	if !delivered {
		t.Fatal("post-flood UDP exchange never completed")
	}

	// Attribution: after quiescence, every induced discard is visible
	// under exactly its typed reason — the counters the subsystems
	// charge must equal the reasons the recorder saw.
	testnet.WaitFor(t, "victim quiescent", func() bool { return victim.Pending() == 0 })
	snap := victim.Snapshot()
	reasons := snap.Reasons
	for _, chk := range []struct {
		name string
		got  uint64
	}{
		{"ip6-reasm-overflow", victim.V6.Stats.ReasmOverflow.Get()},
		{"nd-cache-evicted", victim.RT.NbrEvictions.Get()},
		{"tcp-syn-overflow", victim.TCP.Stats.SynDrops.Get()},
	} {
		if chk.got == 0 {
			t.Errorf("flood never tripped %s", chk.name)
		}
		if reasons[chk.name] != chk.got {
			t.Errorf("%s: %d drops charged but %d attributed", chk.name, chk.got, reasons[chk.name])
		}
	}

	// Bounded memory: the pool gauge must come back near its pre-test
	// level once the flood state is capped and the queues drained.
	// 16 MiB is generous slack for capped reassembly buffers, queued
	// ND packets, and live socket buffers.
	if grew := mbuf.Outstanding() - baseOutstanding; grew > 16<<20 {
		t.Fatalf("outstanding pool bytes grew by %d — eviction paths are leaking mbufs", grew)
	}
}

// TestMbufLimitRefusesOversizedBurst pins the netisr byte ceiling
// deterministically: a frame that alone exceeds the limit is refused
// at enqueue with the mbuf-limit reason before any queue grows.
func TestMbufLimitRefusesOversizedBurst(t *testing.T) {
	e := newEnv(t)
	hub := e.hub()
	victim := core.NewStack("tiny", core.Options{Clock: e.clock, MbufLimit: 512})
	t.Cleanup(victim.Close)
	e.probes = append(e.probes, victim.Pending)
	victim.AttachLink(hub, testnet.MacB, 1500)
	atk := netif.New("atk0", testnet.MacC, 1500)
	atk.SetInput(func(_ *netif.Interface, fr netif.Frame) { fr.Payload.Free() })
	hub.Attach(atk)
	e.start()

	pkt := fragFlood(attackSrc(t, 7, 1), linkLocal(victim), 99)
	for pkt.Len() <= 512 {
		pkt.Append(make([]byte, 256))
	}
	atk.Output(testnet.MacB, netif.EtherTypeIPv6, pkt)
	testnet.WaitFor(t, "refusal recorded", func() bool { return victim.MbufDrops.Get() == 1 })
	snap := victim.Snapshot()
	if got := snap.Reasons["mbuf-limit"]; got != 1 {
		t.Fatalf("mbuf-limit attributed %d times, want 1", got)
	}
	if snap.Limits.MbufQueue.Drops != 1 || snap.Limits.MbufQueue.Max != 512 {
		t.Fatalf("limits surface: %+v", snap.Limits.MbufQueue)
	}
}
