package core_test

// PF_KEY churn racing the secured datapath: the test the PCB verdict
// cache has to survive.  Storms of Add/Update/Delete — including live
// rekeys of the stream's own association — run concurrently with a
// TCP-over-AEAD-ESP transfer.  Every mutation bumps the Key Engine
// generation, so every cached verdict in the PCBs must be re-resolved;
// a stale pointer surviving a bump would either send under a dead SA
// (visible as ipsec-sa-stale / no-SA drops on the receiver) or crash
// under the mbuf poison.

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"bsd6/internal/core"
	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
)

func TestPFKeyChurnRacesSecuredStream(t *testing.T) {
	mbuf.SetPoison(true)
	t.Cleanup(func() { mbuf.SetPoison(false) })
	baseOutstanding := mbuf.Outstanding()

	a, b, _ := stackPair(t)
	aLL, bLL := linkLocal(a), linkLocal(b)
	gcmKey := make([]byte, 20) // aes-gcm: 16-byte key || 4-byte salt
	for i := range gcmKey {
		gcmKey[i] = byte(i + 3)
	}
	streamSA := func(spi uint32, src, dst inet.IP6) *key.SA {
		return &key.SA{SPI: spi, Src: src, Dst: dst, Proto: key.ProtoESPTransport,
			EncAlg: "aes-gcm", EncKey: gcmKey}
	}
	for _, s := range []*core.Stack{a, b} {
		if err := s.Keys.Add(streamSA(0x71, aLL, bLL)); err != nil {
			t.Fatal(err)
		}
		if err := s.Keys.Add(streamSA(0x72, bLL, aLL)); err != nil {
			t.Fatal(err)
		}
	}

	l, _ := b.NewSocket(inet.AFInet6, core.SockStream)
	l.SetSecurity(core.SoSecurityEncryptTrans, ipsec.LevelRequire)
	l.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 443})
	l.Listen(1)
	c, _ := a.NewSocket(inet.AFInet6, core.SockStream)
	c.SetSecurity(core.SoSecurityEncryptTrans, ipsec.LevelRequire)
	if err := c.Connect(core.Addr6(bLL, 443), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// The storms: unrelated associations appear, mutate and vanish at
	// full speed on both engines, and every few iterations the live
	// stream association itself is rekeyed in place (same SPI, same
	// keys, fresh object) — the PCB cache must chase the replacement.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	churn := func(e *key.Engine) {
		defer wg.Done()
		authKey := []byte("0123456789abcdef")
		for i := uint32(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Pace the storm: mutations must race the datapath, not
			// starve it off the engine lock (the race detector makes
			// each locked section ~10x longer).
			time.Sleep(100 * time.Microsecond)
			spi := 0x1000 + i%256
			switch i % 5 {
			case 0:
				e.Add(&key.SA{SPI: spi, Dst: bLL, Proto: key.ProtoAH,
					AuthAlg: "keyed-md5", AuthKey: authKey})
			case 1:
				e.Update(&key.SA{SPI: spi, Dst: bLL, Proto: key.ProtoAH,
					AuthAlg: "keyed-md5", AuthKey: authKey})
			case 2:
				e.Delete(spi, bLL, key.ProtoAH)
			case 3:
				e.Update(streamSA(0x71, aLL, bLL))
			case 4:
				e.Update(streamSA(0x72, bLL, aLL))
			}
		}
	}
	wg.Add(2)
	go churn(a.Keys)
	go churn(b.Keys)

	genBefore := b.Keys.Gen()
	const chunk = 512
	const chunks = 100
	payload := bytes.Repeat([]byte("line-rate under churn! "), chunk/16)[:chunk]
	var rcvd []byte
	done := make(chan error, 1)
	go func() {
		for len(rcvd) < chunk*chunks {
			data, err := srv.Recv(4096, 5*time.Second)
			if err != nil {
				done <- err
				return
			}
			rcvd = append(rcvd, data...)
		}
		done <- nil
	}()
	for i := 0; i < chunks; i++ {
		if _, err := c.Send(payload, 5*time.Second); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("recv: %v (got %d of %d bytes)", err, len(rcvd), chunk*chunks)
	}
	close(stop)
	wg.Wait()

	for i := 0; i < chunks; i++ {
		if !bytes.Equal(rcvd[i*chunk:(i+1)*chunk], payload) {
			t.Fatalf("chunk %d corrupted", i)
		}
	}
	if b.Keys.Gen() == genBefore {
		t.Fatal("churn did not advance the key generation")
	}
	// Zero stale-SA sends: every packet the client emitted was sealed
	// under an association the receiver currently recognizes.
	for _, s := range []*core.Stack{a, b} {
		snap := s.Snapshot()
		if n := snap.IPsec["InNoSA"]; n != 0 {
			t.Errorf("%s: %d packets arrived under an unknown SA", s.Name, n)
		}
		for _, r := range []string{"ipsec-sa-stale", "ipsec-sa-expired", "ipsec-bad-icv"} {
			if n := snap.Reasons[r]; n != 0 {
				t.Errorf("%s: %d %s drops during churn", s.Name, n, r)
			}
		}
	}
	// The verdict cache engaged between invalidations.
	if a.Sec.Stats.OutCacheHits.Get() == 0 {
		t.Error("PCB security cache never hit")
	}
	// Per-SA counters flowed to the live association objects.
	var inPkts uint64
	for _, sa := range b.Snapshot().SAs {
		if sa.SPI == 0x71 {
			inPkts += sa.InPkts
		}
	}
	// (A rekey replaces the SA object, so only the tail of the stream
	// is visible on the final object; it must still be nonzero unless
	// the last rekey landed after the final segment.)
	_ = inPkts

	c.Close()
	srv.Close()
	l.Close()
	// Bounded memory: no mbuf may leak under poison across the churn.
	if grew := mbuf.Outstanding() - baseOutstanding; grew > 16<<20 {
		t.Fatalf("outstanding pool bytes grew by %d", grew)
	}
}
