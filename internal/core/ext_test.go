package core_test

// Socket-API-level tests for the extension features: the privileged
// security bypass (§6.3), per-port policies (§3.5), flow labels
// (§5.1), and the gateway tunnel through the public API.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"bsd6/internal/core"
	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/key"
	"bsd6/internal/route"
	"bsd6/internal/testnet"
)

func TestSecurityBypassSocket(t *testing.T) {
	a, b, _ := stackPair(t)
	// Both systems mandate authentication; no keys exist anywhere.
	a.Sec.SetSystemPolicy(ipsec.SockOpts{Auth: ipsec.LevelRequire})
	b.Sec.SetSystemPolicy(ipsec.SockOpts{Auth: ipsec.LevelRequire})

	// An ordinary socket cannot send (EIPSEC)...
	plain, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	if err := plain.SendTo([]byte("x"), core.Addr6(linkLocal(b), 500)); !errors.Is(err, core.EIPSEC) {
		t.Fatalf("plain send: %v", err)
	}
	// ...and the bypass option is refused for non-root.
	if err := plain.SetSecurityBypass(1000); err == nil {
		t.Fatal("non-root bypass accepted")
	}

	// The key-management daemon's socket (euid 0) bypasses on both
	// ends — this is how Photuris would exchange its own messages
	// before any associations exist (§6.3).
	kmA, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	if err := kmA.SetSecurityBypass(0); err != nil {
		t.Fatal(err)
	}
	kmB, _ := b.NewSocket(inet.AFInet6, core.SockDgram)
	if err := kmB.SetSecurityBypass(0); err != nil {
		t.Fatal(err)
	}
	kmB.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 468}) // Photuris' port
	if err := kmA.SendTo([]byte("exchange"), core.Addr6(linkLocal(b), 468)); err != nil {
		t.Fatal(err)
	}
	data, _, err := kmB.RecvFrom(64, 2*time.Second)
	if err != nil || string(data) != "exchange" {
		t.Fatalf("bypass exchange: %q %v", data, err)
	}
}

func TestPortPolicyThroughSockets(t *testing.T) {
	a, b, _ := stackPair(t)
	// The administrator requires authenticity on privileged ports only
	// (§3.5's example) — no system-wide or socket policy.
	b.Sec.AddPortPolicy(1, 1023, ipsec.SockOpts{Auth: ipsec.LevelRequire})

	privileged, _ := b.NewSocket(inet.AFInet6, core.SockDgram)
	privileged.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 512})
	open, _ := b.NewSocket(inet.AFInet6, core.SockDgram)
	open.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 5120})

	cli, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	// Cleartext reaches the unprivileged port...
	cli.SendTo([]byte("open"), core.Addr6(linkLocal(b), 5120))
	if data, _, err := open.RecvFrom(64, 2*time.Second); err != nil || string(data) != "open" {
		t.Fatalf("open port: %q %v", data, err)
	}
	// ...but is silently dropped on the privileged one.
	cli.SendTo([]byte("priv"), core.Addr6(linkLocal(b), 512))
	if _, _, err := privileged.RecvFrom(64, 300*time.Millisecond); !errors.Is(err, core.ErrTimeoutSock) {
		t.Fatalf("privileged port: %v", err)
	}
	if b.UDP.Stats.InPolicyDrops.Get() == 0 {
		t.Fatal("policy drop not counted")
	}

	// With keys installed, authenticated traffic reaches it.
	authKey := []byte("0123456789abcdef")
	aLL, bLL := linkLocal(a), linkLocal(b)
	for _, s := range []*core.Stack{a, b} {
		s.Keys.Add(&key.SA{SPI: 0x31, Src: aLL, Dst: bLL, Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
	}
	authed, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	authed.SetSecurity(core.SoSecurityAuthentication, ipsec.LevelRequire)
	authed.SendTo([]byte("signed"), core.Addr6(bLL, 512))
	if data, _, err := privileged.RecvFrom(64, 2*time.Second); err != nil || string(data) != "signed" {
		t.Fatalf("authenticated to privileged port: %q %v", data, err)
	}
}

func TestFlowLabelEndToEnd(t *testing.T) {
	// §5.1: the PCB carries the IPv6 Flow Identifier; it must appear
	// in the header and be visible to the receiver.
	a, b, _ := stackPair(t)
	srv, _ := b.NewSocket(inet.AFInet6, core.SockDgram)
	srv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 777})
	cli, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	sa := core.Sockaddr6{Family: inet.AFInet6, Port: 777, Addr: linkLocal(b), FlowInfo: 0x000abcde}
	if err := cli.SendTo([]byte("flowing"), sa); err != nil {
		t.Fatal(err)
	}
	_, from, err := srv.RecvFrom(64, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if from.FlowInfo != 0x000abcde {
		t.Fatalf("flow info = %#x", from.FlowInfo)
	}
}

func TestGatewayTunnelThroughSockets(t *testing.T) {
	// client --tunnel-- gw --cleartext-- server, through the public
	// API: the client's socket requires tunnel encryption; the SA
	// names the gateway with a selector for the server's net.
	e := newEnv(t)
	hub1, hub2 := e.hub(), e.hub()
	cli := e.stack("cli")
	gw := e.stack("gw")
	srv := e.stack("srv")
	cIf := cli.AttachLink(hub1, testnet.MacA, 1500)
	g1 := gw.AttachLink(hub1, testnet.MacR, 1500)
	g2 := gw.AttachLink(hub2, testnet.MacS, 1500)
	sIf := srv.AttachLink(hub2, testnet.MacB, 1500)
	gw.V6.Forwarding = true
	e.start()

	cliAddr := testnet.IP6(t, "2001:db8:1::c")
	gwAddr := testnet.IP6(t, "2001:db8:1::1")
	srvAddr := testnet.IP6(t, "2001:db8:2::5")
	cli.ConfigureV6(cIf, cliAddr, 64)
	gw.ConfigureV6(g1, gwAddr, 64)
	gw.ConfigureV6(g2, testnet.IP6(t, "2001:db8:2::1"), 64)
	srv.ConfigureV6(sIf, srvAddr, 64)
	cli.DefaultRoute6(gwAddr, cIf.Name)
	srv.DefaultRoute6(testnet.IP6(t, "2001:db8:2::1"), sIf.Name)

	encKey := []byte("DESCBC!!")
	sa := &key.SA{SPI: 0xab, Src: cliAddr, Dst: gwAddr, Proto: key.ProtoESPTunnel,
		EncAlg: "des-cbc", EncKey: encKey,
		SelDst: testnet.IP6(t, "2001:db8:2::"), SelPlen: 48}
	cli.Keys.Add(sa)
	cp := *sa
	gw.Keys.Add(&cp)

	server, _ := srv.NewSocket(inet.AFInet6, core.SockDgram)
	server.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 9999})

	client, _ := cli.NewSocket(inet.AFInet6, core.SockDgram)
	client.SetSecurity(core.SoSecurityEncryptTunnel, ipsec.LevelRequire)
	if err := client.SendTo([]byte("via the gateway"), core.Addr6(srvAddr, 9999)); err != nil {
		t.Fatal(err)
	}
	data, from, err := server.RecvFrom(64, 2*time.Second)
	if err != nil || string(data) != "via the gateway" {
		t.Fatalf("%q %v", data, err)
	}
	if from.Addr != cliAddr {
		t.Fatalf("inner source %v", from.Addr)
	}
	if cli.Sec.Stats.OutTunnel.Get() == 0 || gw.Sec.Stats.InDecryptOK.Get() == 0 || gw.V6.Stats.Forwarded.Get() == 0 {
		t.Fatalf("tunnel path not exercised: cli=%+v gw=%+v", &cli.Sec.Stats, &gw.Sec.Stats)
	}
}

func TestLossyLinkUDPRetry(t *testing.T) {
	// Failure injection at the application level: a lossy wire plus an
	// app-level retry loop still converges.
	e := newEnv(t)
	hub := e.hub()
	a := e.stack("a")
	b := e.stack("b")
	a.AttachLink(hub, testnet.MacA, 1500)
	b.AttachLink(hub, testnet.MacB, 1500)
	e.start()
	// Resolve neighbors over a clean wire first, then impair it.
	srv, _ := b.NewSocket(inet.AFInet6, core.SockDgram)
	srv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 600})
	go func() {
		for {
			data, from, err := srv.RecvFrom(64, time.Hour)
			if err != nil {
				return
			}
			srv.SendTo(data, from)
		}
	}()
	cli, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	cli.SendTo([]byte("warm"), core.Addr6(linkLocal(b), 600))
	cli.RecvFrom(64, 2*time.Second)

	hub.SetImpairments(0, 0.4, 99)
	got := 0
	for try := 0; try < 100 && got < 5; try++ {
		cli.SendTo([]byte("retry me"), core.Addr6(linkLocal(b), 600))
		if data, _, err := cli.RecvFrom(64, 50*time.Millisecond); err == nil && string(data) == "retry me" {
			got++
		}
	}
	if got < 5 {
		t.Fatalf("only %d echoes through 40%% loss", got)
	}
}

func TestAlgorithmSubstitutionEndToEnd(t *testing.T) {
	// §3.6's worked example, live: the same ESP header processing with
	// IDEA substituted for DES-CBC, then 3DES — only the association's
	// algorithm selector changes.
	cases := []struct {
		alg    string
		keyLen int
	}{
		{"des-cbc", 8},
		{"3des-cbc", 24},
		{"idea-cbc", 16},
		// The AEAD switch entries: key = cipher key || 4-byte salt.
		{"aes-gcm", 20},
		{"aes256-gcm", 36},
	}
	for _, c := range cases {
		t.Run(c.alg, func(t *testing.T) {
			a, b, _ := stackPair(t)
			k := make([]byte, c.keyLen)
			for i := range k {
				k[i] = byte(i + 7)
			}
			aLL, bLL := linkLocal(a), linkLocal(b)
			for _, s := range []*core.Stack{a, b} {
				s.Keys.Add(&key.SA{SPI: 0x61, Src: aLL, Dst: bLL, Proto: key.ProtoESPTransport, EncAlg: c.alg, EncKey: k})
			}
			srv, _ := b.NewSocket(inet.AFInet6, core.SockDgram)
			srv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 321})
			cli, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
			cli.SetSecurity(core.SoSecurityEncryptTrans, ipsec.LevelRequire)
			if err := cli.SendTo([]byte("ciphered with "+c.alg), core.Addr6(bLL, 321)); err != nil {
				t.Fatal(err)
			}
			data, _, err := srv.RecvFrom(64, 2*time.Second)
			if err != nil || string(data) != "ciphered with "+c.alg {
				t.Fatalf("%q %v", data, err)
			}
			if b.Sec.Stats.InDecryptOK.Get() == 0 {
				t.Fatal("not decrypted")
			}
		})
	}
}

func TestRouteSocketObservesNDAndPMTU(t *testing.T) {
	// PF_ROUTE: the message stream PF_KEY is modeled on (§6.2). ND
	// resolution shows up as RTM_RESOLVE (the cloned neighbor host
	// route) and a PMTU update as RTM_CHANGE.
	a, b, _ := stackPair(t)
	ch := a.RouteSocket(64)
	if err := a.Ping6(linkLocal(b), 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "echo", func() bool { return a.ICMP6.Stats.InEchoReps.Get() >= 1 })

	sawResolve := false
	for drained := false; !drained; {
		select {
		case m := <-ch:
			if m.Type.String() == "RTM_RESOLVE" {
				sawResolve = true
			}
		default:
			drained = true
		}
	}
	if !sawResolve {
		t.Fatal("no RTM_RESOLVE for the neighbor clone")
	}

	// Shrink the PMTU by hand (as Packet Too Big processing would):
	// RTM_CHANGE appears on the socket.
	bLL := linkLocal(b)
	rt, ok := a.RT.Lookup(inet.AFInet6, bLL[:])
	if !ok {
		t.Fatal("no route")
	}
	a.RT.Change(rt, func(e *route.Entry) { e.MTU = 1280 })
	testnet.WaitFor(t, "RTM_CHANGE", func() bool {
		select {
		case m := <-ch:
			return m.Type.String() == "RTM_CHANGE"
		default:
			return false
		}
	})
}

func TestConnectionsListing(t *testing.T) {
	a, b, _ := stackPair(t)
	l, _ := b.NewSocket(inet.AFInet6, core.SockStream)
	l.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 8088})
	l.Listen(1)
	c, _ := a.NewSocket(inet.AFInet6, core.SockStream)
	if err := c.Connect(core.Addr6(linkLocal(b), 8088), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	u, _ := b.NewSocket(inet.AFInet6, core.SockDgram)
	u.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 5353})

	// The server child reaches ESTABLISHED on the handshake's final
	// ACK, which races our snapshot; poll briefly.
	testnet.WaitFor(t, "established in listing", func() bool {
		return strings.Contains(b.Connections(), "ESTABLISHED")
	})
	out := b.Connections()
	for _, want := range []string{"LISTEN", "ESTABLISHED", "udp6", ":8088", ":5353"} {
		if !strings.Contains(out, want) {
			t.Fatalf("connections missing %q:\n%s", want, out)
		}
	}
}
