package ipv4

import (
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/route"
	"bsd6/internal/stat"
)

// EtherTypeARP is the link-layer type of ARP frames.
const EtherTypeARP = 0x0806

const (
	arpRequest = 1
	arpReply   = 2

	arpMaxTries   = 5
	arpRetry      = time.Second
	arpEntryLife  = 20 * time.Minute
	arpMaxQueue   = 8 // packets held per unresolved entry
	arpRejectLife = 20 * time.Second
)

// arpEntry is the llinfo attached to an IPv4 neighbor host route,
// mirroring 4.4 BSD's struct llinfo_arp. The IPv6 counterpart is the
// ND machine in icmp6; the paper notes ND keeps link-layer information
// "much as 4.4BSD implements ARP entries" (§4.3).
type arpEntry struct {
	resolved bool
	tries    int
	lastSent time.Time
	queue    []*mbuf.Mbuf // packets awaiting resolution
}

// arpMarshal builds an ARP packet for IPv4-over-Ethernet.
func arpMarshal(op uint16, sha inet.LinkAddr, spa inet.IP4, tha inet.LinkAddr, tpa inet.IP4) []byte {
	b := make([]byte, 28)
	b[0], b[1] = 0, 1 // hardware: ethernet
	b[2], b[3] = 0x08, 0x00
	b[4], b[5] = 6, 4
	b[6], b[7] = byte(op>>8), byte(op)
	copy(b[8:14], sha[:])
	copy(b[14:18], spa[:])
	copy(b[18:24], tha[:])
	copy(b[24:28], tpa[:])
	return b
}

// arpResolve maps an on-link next hop to a MAC. If unresolved it queues
// the packet and emits a who-has broadcast; the caller is done with the
// packet either way.
func (l *Layer) arpResolve(ifp *netif.Interface, rt *route.Entry, nextHop inet.IP4, pkt *mbuf.Mbuf) (inet.LinkAddr, bool) {
	// ARP entry state (route fields + llinfo) lives under the routing
	// table lock, as in BSD where splnet guards both.
	now := l.routes.Now()
	var mac inet.LinkAddr
	resolved := false
	rejected := false
	needSend := false
	l.routes.Mutate(func() {
		if m, ok := rt.Gateway.(inet.LinkAddr); ok && rt.Flags&route.FlagReject == 0 {
			if e, _ := rt.LLInfo.(*arpEntry); e == nil || e.resolved {
				mac, resolved = m, true
				return
			}
		}
		if rt.Flags&route.FlagReject != 0 {
			if now.Before(rt.Expire) {
				rejected = true
				return
			}
			rt.Flags &^= route.FlagReject // retry after the reject lingered
			rt.LLInfo = nil
		}
		e, _ := rt.LLInfo.(*arpEntry)
		if e == nil {
			e = &arpEntry{}
			rt.LLInfo = e
		}
		if len(e.queue) < arpMaxQueue {
			e.queue = append(e.queue, pkt)
			pkt = nil // ownership moved to the hold queue
		} else {
			l.Stats.OutDrops.Inc()
		}
		if now.Sub(e.lastSent) >= arpRetry {
			needSend = true
			e.lastSent = now
			e.tries++
		}
	})
	if resolved {
		return mac, true
	}
	// Not handed to the device and not on the hold queue (rejected
	// entry, or queue full): the packet ends here.
	pkt.Free()
	if rejected {
		l.Stats.OutNoRoute.Inc()
		return inet.LinkAddr{}, false
	}

	if needSend {
		src, ok := srcAddrOn(ifp)
		if !ok {
			return inet.LinkAddr{}, false
		}
		req := mbuf.New(arpMarshal(arpRequest, ifp.HW, src, inet.LinkAddr{}, nextHop))
		ifp.Output(netif.Broadcast, EtherTypeARP, req)
		l.Stats.ArpRequests.Inc()
	}
	return inet.LinkAddr{}, false
}

// ArpInput processes a received ARP frame (the stack demuxes on
// EtherType and calls this).
func (l *Layer) ArpInput(ifp *netif.Interface, pkt *mbuf.Mbuf) {
	defer pkt.Free() // everything kept below is copied out
	b := pkt.PullUp(28)
	if b == nil || b[0] != 0 || b[1] != 1 || b[2] != 0x08 || b[3] != 0 || b[4] != 6 || b[5] != 4 {
		l.Stats.ArpBad.Inc()
		l.Drops.DropPkt(stat.RArpBad, pkt.Bytes())
		return
	}
	op := uint16(b[6])<<8 | uint16(b[7])
	var sha inet.LinkAddr
	var spa, tpa inet.IP4
	copy(sha[:], b[8:14])
	copy(spa[:], b[14:18])
	copy(tpa[:], b[24:28])

	// Learn/refresh the sender's mapping if we have (or want) a route.
	l.learnArp(ifp, spa, sha)

	if op == arpRequest && ifp.HasAddr4(tpa) {
		src, _ := srcAddrOn(ifp)
		_ = src
		rep := mbuf.New(arpMarshal(arpReply, ifp.HW, tpa, sha, spa))
		ifp.Output(sha, EtherTypeARP, rep)
		l.Stats.ArpReplies.Inc()
	}
}

// learnArp installs/updates the neighbor host route for spa and flushes
// any packets queued on it.
func (l *Layer) learnArp(ifp *netif.Interface, spa inet.IP4, sha inet.LinkAddr) {
	rt, ok := l.routes.Lookup(inet.AFInet, spa[:])
	if !ok {
		return
	}
	var flush []*mbuf.Mbuf
	now := l.routes.Now()
	l.routes.Mutate(func() {
		if !rt.Host() || rt.Flags&route.FlagLLInfo == 0 || rt.IfName != ifp.Name {
			return // not an on-link neighbor of ours
		}
		rt.Gateway = sha
		rt.Flags &^= route.FlagReject
		rt.Expire = now.Add(arpEntryLife)
		if e, _ := rt.LLInfo.(*arpEntry); e != nil {
			flush = e.queue
			e.queue = nil
			e.resolved = true
			e.tries = 0
		} else {
			rt.LLInfo = &arpEntry{resolved: true}
		}
	})
	for _, qp := range flush {
		ifp.Output(sha, netif.EtherTypeIPv4, qp)
	}
}

// arpTimer retries pending resolutions and rejects entries that have
// exhausted their tries (the RTF_REJECT lingering the paper describes
// for ND has this ARP analog in BSD).
func (l *Layer) arpTimer(now time.Time) {
	type retry struct {
		ifp     *netif.Interface
		nextHop inet.IP4
	}
	var retries []retry
	var drops []*mbuf.Mbuf
	// Snapshot candidate entries under the walk, then process each one
	// under the same (table) lock via Mutate — the walk itself holds
	// that lock, so state seen here cannot regress.
	var candidates []*route.Entry
	l.routes.Walk(inet.AFInet, func(rt *route.Entry) bool {
		if e, _ := rt.LLInfo.(*arpEntry); e != nil && !e.resolved {
			candidates = append(candidates, rt)
		}
		return true
	})
	for _, rt := range candidates {
		l.routes.Mutate(func() {
			e, _ := rt.LLInfo.(*arpEntry)
			if e == nil || e.resolved {
				return
			}
			if e.tries >= arpMaxTries {
				rt.Flags |= route.FlagReject
				rt.Expire = now.Add(arpRejectLife)
				drops = append(drops, e.queue...)
				e.queue = nil
				e.tries = 0
				e.lastSent = time.Time{}
				return
			}
			if now.Sub(e.lastSent) >= arpRetry {
				e.lastSent = now
				e.tries++
				var nh inet.IP4
				copy(nh[:], rt.Dst)
				l.mu.Lock()
				ifp := l.ifaces[rt.IfName]
				l.mu.Unlock()
				if ifp != nil {
					retries = append(retries, retry{ifp, nh})
				}
			}
		})
	}
	l.Stats.OutDrops.Add(uint64(len(drops)))
	for _, d := range drops {
		d.Free() // resolution failed; the hold queue was their last stop
	}
	for _, r := range retries {
		src, ok := srcAddrOn(r.ifp)
		if !ok {
			continue
		}
		req := mbuf.New(arpMarshal(arpRequest, r.ifp.HW, src, inet.LinkAddr{}, r.nextHop))
		r.ifp.Output(netif.Broadcast, EtherTypeARP, req)
		l.Stats.ArpRequests.Inc()
	}
}

// srcAddrOn returns the first IPv4 address on ifp.
func srcAddrOn(ifp *netif.Interface) (inet.IP4, bool) {
	addrs := ifp.Addrs4()
	if len(addrs) == 0 {
		return inet.IP4{}, false
	}
	return addrs[0].Addr, true
}
