package ipv4

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/route"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := &Header{
		TOS: 0x10, TotalLen: 1234, ID: 42, DF: true, FragOff: 0,
		TTL: 63, Proto: proto.UDP,
		Src: inet.IP4{10, 0, 0, 1}, Dst: inet.IP4{10, 0, 0, 2},
	}
	wire := h.Marshal(nil)
	if len(wire) != HeaderLen {
		t.Fatalf("wire len = %d", len(wire))
	}
	got, hl, err := Parse(wire)
	if err != nil || hl != HeaderLen {
		t.Fatal(err)
	}
	if got.TOS != h.TOS || got.TotalLen != h.TotalLen || got.ID != h.ID ||
		!got.DF || got.MF || got.TTL != h.TTL || got.Proto != h.Proto ||
		got.Src != h.Src || got.Dst != h.Dst {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestHeaderOptions(t *testing.T) {
	h := &Header{TotalLen: 24, TTL: 1, Proto: 1, Options: []byte{1, 1, 1, 1}}
	wire := h.Marshal(nil)
	got, hl, err := Parse(wire)
	if err != nil || hl != 24 || !bytes.Equal(got.Options, h.Options) {
		t.Fatalf("options: %v %d %v", got, hl, err)
	}
}

func TestHeaderChecksumDetectsCorruption(t *testing.T) {
	h := &Header{TotalLen: 20, TTL: 64, Proto: 6, Src: inet.IP4{1, 2, 3, 4}}
	wire := h.Marshal(nil)
	for i := range wire {
		w := append([]byte(nil), wire...)
		w[i] ^= 0x04
		if _, _, err := Parse(w); err == nil {
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, _, err := Parse(make([]byte, 10)); err != ErrShort {
		t.Fatal("short")
	}
	h := (&Header{TotalLen: 20, TTL: 1}).Marshal(nil)
	h[0] = 0x65 // version 6
	if _, _, err := Parse(h); err != ErrVersion {
		t.Fatal("version")
	}
	h2 := (&Header{TotalLen: 20, TTL: 1}).Marshal(nil)
	h2[0] = 0x44 // IHL=4 < 5
	if _, _, err := Parse(h2); err != ErrLength {
		t.Fatal("ihl")
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, p uint8, src, dst inet.IP4, fragOff uint16, df, mf bool, payloadLen uint16) bool {
		h := &Header{
			TOS: tos, ID: id, TTL: ttl, Proto: p, Src: src, Dst: dst,
			DF: df, MF: mf, FragOff: int(fragOff%0x2000) * 8,
			// TotalLen is a 16-bit field; keep the generator in range.
			TotalLen: HeaderLen + int(payloadLen)%(65536-HeaderLen),
		}
		got, _, err := Parse(h.Marshal(nil))
		if err != nil {
			return false
		}
		return got.TOS == h.TOS && got.ID == h.ID && got.FragOff == h.FragOff &&
			got.DF == h.DF && got.MF == h.MF && got.TTL == h.TTL &&
			got.Proto == h.Proto && got.Src == h.Src && got.Dst == h.Dst &&
			got.TotalLen == h.TotalLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

//
// Node harness.
//

type node struct {
	name string
	rt   *route.Table
	l    *Layer
	ic   *ICMP
	ifps []*netif.Interface
}

func newNode(name string) *node {
	rt := route.NewTable()
	l := NewLayer(rt)
	ic := AttachICMP(l)
	n := &node{name: name, rt: rt, l: l, ic: ic}
	lo := netif.NewLoopback(name+"-lo", 32768)
	lo.SetInput(func(ifp *netif.Interface, fr netif.Frame) { l.Input(ifp, fr.Payload) })
	l.AddInterface(lo)
	return n
}

// join attaches the node to a hub with the given address.
func (n *node) join(hub *netif.Hub, mac inet.LinkAddr, addr inet.IP4, plen int, mtu int) *netif.Interface {
	ifp := netif.New(fmt.Sprintf("%s-eth%d", n.name, len(n.ifps)), mac, mtu)
	ifp.SetInput(func(ifp *netif.Interface, fr netif.Frame) {
		switch fr.EtherType {
		case EtherTypeARP:
			n.l.ArpInput(ifp, fr.Payload)
		case netif.EtherTypeIPv4:
			n.l.Input(ifp, fr.Payload)
		}
	})
	hub.Attach(ifp)
	ifp.AddAddr4(netif.Addr4{Addr: addr, Plen: plen})
	n.l.AddInterface(ifp)
	n.ifps = append(n.ifps, ifp)
	// On-link cloning route for the subnet.
	netAddr := addr
	m := inet.Mask4(plen)
	for i := range netAddr {
		netAddr[i] &= m[i]
	}
	n.rt.Add(&route.Entry{
		Family: inet.AFInet, Dst: netAddr[:], Plen: plen,
		Flags: route.FlagUp | route.FlagCloning | route.FlagLLInfo, IfName: ifp.Name,
	})
	return ifp
}

func (n *node) defaultVia(gw inet.IP4, ifName string) {
	var zero inet.IP4
	n.rt.Add(&route.Entry{
		Family: inet.AFInet, Dst: zero[:], Plen: 0,
		Flags: route.FlagUp | route.FlagGateway, Gateway: gw, IfName: ifName,
	})
}

var (
	addrA = inet.IP4{10, 0, 0, 1}
	addrB = inet.IP4{10, 0, 0, 2}
	macA  = inet.LinkAddr{2, 0, 0, 0, 0, 0xa}
	macB  = inet.LinkAddr{2, 0, 0, 0, 0, 0xb}
	macR1 = inet.LinkAddr{2, 0, 0, 0, 0, 1}
	macR2 = inet.LinkAddr{2, 0, 0, 0, 0, 2}
)

func twoNodes(t *testing.T) (*node, *node) {
	t.Helper()
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	a.join(hub, macA, addrA, 24, 1500)
	b.join(hub, macB, addrB, 24, 1500)
	return a, b
}

// pinger collects echo replies.
type pinger struct {
	mu      sync.Mutex
	replies []uint16
}

func (p *pinger) hook(ic *ICMP) {
	ic.OnEcho = func(src inet.IP4, id, seq uint16, payload []byte) {
		p.mu.Lock()
		p.replies = append(p.replies, seq)
		p.mu.Unlock()
	}
}

func (p *pinger) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.replies)
}

// waitFor waits until cond holds. Hub links deliver synchronously on
// the sender's goroutine, so cond is normally true on the first check;
// the spin-yield only covers stragglers, without sleeping.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		runtime.Gosched()
	}
}

func TestPingWithARPResolution(t *testing.T) {
	a, b := twoNodes(t)
	p := &pinger{}
	p.hook(a.ic)
	// First echo triggers ARP; the packet is queued and flushed on reply.
	if err := a.ic.SendEcho(addrB, 7, 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first reply", func() bool { return p.count() >= 1 })
	if a.l.Stats.ArpRequests.Get() == 0 || b.l.Stats.ArpReplies.Get() == 0 {
		t.Fatal("ARP exchange did not happen")
	}
	// Second echo uses the resolved entry: no new ARP request.
	arpBefore := a.l.Stats.ArpRequests.Get()
	a.ic.SendEcho(addrB, 7, 2, []byte("payload"))
	waitFor(t, "second reply", func() bool { return p.count() >= 2 })
	if a.l.Stats.ArpRequests.Get() != arpBefore {
		t.Fatal("resolved neighbor re-ARPed")
	}
	// The neighbor is a cloned host route with a MAC gateway.
	rt, ok := a.rt.Lookup(inet.AFInet, addrB[:])
	if !ok || !rt.Host() {
		t.Fatal("no neighbor host route")
	}
	if mac, ok := rt.Gateway.(inet.LinkAddr); !ok || mac != macB {
		t.Fatalf("gateway = %v", rt.Gateway)
	}
}

func TestPingSelfViaLoopback(t *testing.T) {
	a, _ := twoNodes(t)
	p := &pinger{}
	p.hook(a.ic)
	if err := a.ic.SendEcho(addrA, 1, 1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "self reply", func() bool { return p.count() >= 1 })
	if a.ifps[0].Stats().OutPackets != 0 {
		t.Fatal("self ping left the node")
	}
}

func TestARPFailureRejectsRoute(t *testing.T) {
	a, _ := twoNodes(t)
	missing := inet.IP4{10, 0, 0, 99}
	a.ic.SendEcho(missing, 1, 1, nil)
	// Drive retries well past arpMaxTries.
	now := time.Now()
	for i := 0; i < arpMaxTries+2; i++ {
		now = now.Add(2 * arpRetry)
		a.l.SlowTimo(now)
	}
	rt, ok := a.rt.Get(inet.AFInet, missing[:], 32)
	if !ok || rt.Flags&route.FlagReject == 0 {
		t.Fatalf("unresolvable neighbor not rejected: %+v", rt)
	}
	// Sends now fail fast with ErrReject.
	err := a.l.Output(mbuf.New([]byte("x")), inet.IP4{}, missing, proto.UDP, OutputOpts{})
	if err != ErrReject {
		t.Fatalf("err = %v, want ErrReject", err)
	}
}

func TestFragmentationAndReassembly(t *testing.T) {
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	a.join(hub, macA, addrA, 24, 500) // small MTU forces fragmentation
	b.join(hub, macB, addrB, 24, 500)
	p := &pinger{}
	p.hook(a.ic)
	payload := make([]byte, 1800)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Echo request fragments on output; B reassembles, replies (reply
	// also fragments), A reassembles.
	if err := a.ic.SendEcho(addrB, 3, 1, payload); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fragmented reply", func() bool { return p.count() >= 1 })
	if a.l.Stats.FragsCreated.Get() < 3 {
		t.Fatalf("FragsCreated = %d", a.l.Stats.FragsCreated.Get())
	}
	if b.l.Stats.Reassembled.Get() < 1 || a.l.Stats.Reassembled.Get() < 1 {
		t.Fatalf("reassembled: b=%d a=%d", b.l.Stats.Reassembled.Get(), a.l.Stats.Reassembled.Get())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.replies) == 0 || p.replies[0] != 1 {
		t.Fatal("reply sequence wrong")
	}
}

func TestReassemblyTimeout(t *testing.T) {
	a, b := twoNodes(t)
	_ = a
	// Inject a lone first fragment directly into B.
	h := &Header{TotalLen: HeaderLen + 16, ID: 9, MF: true, TTL: 5, Proto: proto.UDP, Src: addrA, Dst: addrB}
	frag := mbuf.New(make([]byte, 16))
	frag.Prepend(h.Marshal(nil))
	b.l.Input(b.ifps[0], frag)
	if b.l.frags.Len() != 1 {
		t.Fatal("fragment not queued")
	}
	b.l.SlowTimo(time.Now().Add(time.Minute))
	if b.l.frags.Len() != 0 {
		t.Fatal("fragment queue not expired")
	}
	if b.l.Stats.ReasmFails.Get() == 0 {
		t.Fatal("ReasmFails not counted")
	}
}

// threeNodeNet builds A --hub1-- R --hub2-- B with R forwarding.
func threeNodeNet(t *testing.T, mtu2 int) (*node, *node, *node) {
	t.Helper()
	hub1, hub2 := netif.NewHub(), netif.NewHub()
	a, r, b := newNode("a"), newNode("r"), newNode("b")
	r.l.Forwarding = true

	rA := inet.IP4{10, 0, 0, 254}
	rB := inet.IP4{10, 0, 1, 254}
	bAddr := inet.IP4{10, 0, 1, 2}

	a.join(hub1, macA, addrA, 24, 1500)
	ifr1 := r.join(hub1, macR1, rA, 24, 1500)
	ifr2 := r.join(hub2, macR2, rB, 24, mtu2)
	b.join(hub2, macB, bAddr, 24, mtu2)

	a.defaultVia(rA, a.ifps[0].Name)
	b.defaultVia(rB, b.ifps[0].Name)
	_ = ifr1
	_ = ifr2
	return a, r, b
}

var addrB2 = inet.IP4{10, 0, 1, 2}

func TestForwarding(t *testing.T) {
	a, r, _ := threeNodeNet(t, 1500)
	p := &pinger{}
	p.hook(a.ic)
	if err := a.ic.SendEcho(addrB2, 5, 1, []byte("via router")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "forwarded reply", func() bool { return p.count() >= 1 })
	if r.l.Stats.Forwarded.Get() < 2 {
		t.Fatalf("router forwarded %d", r.l.Stats.Forwarded.Get())
	}
}

func TestRouterFragments(t *testing.T) {
	// IPv4 routers fragment in the network (§2.1): MTU 1500 then 576.
	a, r, b := threeNodeNet(t, 576)
	p := &pinger{}
	p.hook(a.ic)
	if err := a.ic.SendEcho(addrB2, 5, 1, make([]byte, 1200)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reply through narrow link", func() bool { return p.count() >= 1 })
	if r.l.Stats.FragsCreated.Get() == 0 {
		t.Fatal("router did not fragment")
	}
	if b.l.Stats.Reassembled.Get() == 0 {
		t.Fatal("B did not reassemble")
	}
}

func TestDFElicitsFragNeeded(t *testing.T) {
	a, r, _ := threeNodeNet(t, 576)
	var gotKind proto.CtlType
	var mu sync.Mutex
	a.ic.OnError = func(kind proto.CtlType, dst inet.IP4) {
		mu.Lock()
		gotKind = kind
		mu.Unlock()
	}
	// Register a fake transport so ctlinput can be delivered.
	var ctlMTU int
	a.l.Register(proto.UDP, func(*mbuf.Mbuf, *proto.Meta) {}, func(kind proto.CtlType, meta *proto.Meta, contents []byte, mtu int) {
		mu.Lock()
		ctlMTU = mtu
		mu.Unlock()
	})
	pkt := mbuf.New(make([]byte, 1200))
	if err := a.l.Output(pkt, inet.IP4{}, addrB2, proto.UDP, OutputOpts{DF: true}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "frag-needed", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gotKind == proto.CtlMsgSize
	})
	mu.Lock()
	defer mu.Unlock()
	if ctlMTU != 576 {
		t.Fatalf("ctl MTU = %d", ctlMTU)
	}
	_ = r
}

func TestTTLExpiryElicitsTimeExceeded(t *testing.T) {
	a, _, _ := threeNodeNet(t, 1500)
	var got proto.CtlType
	var mu sync.Mutex
	a.l.Register(proto.UDP, func(*mbuf.Mbuf, *proto.Meta) {}, func(kind proto.CtlType, meta *proto.Meta, contents []byte, mtu int) {
		mu.Lock()
		got = kind
		mu.Unlock()
	})
	pkt := mbuf.New(make([]byte, 32))
	if err := a.l.Output(pkt, inet.IP4{}, addrB2, proto.UDP, OutputOpts{TTL: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "time exceeded", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got == proto.CtlTimeExceed
	})
}

func TestUnknownProtocolElicitsUnreach(t *testing.T) {
	a, b := twoNodes(t)
	_ = b
	var got proto.CtlType
	var mu sync.Mutex
	a.ic.OnError = func(kind proto.CtlType, dst inet.IP4) {
		mu.Lock()
		got = kind
		mu.Unlock()
	}
	pkt := mbuf.New([]byte("mystery"))
	if err := a.l.Output(pkt, inet.IP4{}, addrB, 200, OutputOpts{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "proto unreach", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got == proto.CtlUnreach
	})
	if b.l.Stats.InUnknownProt.Get() == 0 {
		t.Fatal("InUnknownProt not counted")
	}
}

func TestNoRouteError(t *testing.T) {
	a, _ := twoNodes(t)
	err := a.l.Output(mbuf.New([]byte("x")), inet.IP4{}, inet.IP4{192, 168, 9, 9}, proto.UDP, OutputOpts{})
	if err != ErrNoRoute {
		t.Fatalf("err = %v", err)
	}
	if a.l.Stats.OutNoRoute.Get() == 0 {
		t.Fatal("OutNoRoute not counted")
	}
}

func TestBadChecksumDropped(t *testing.T) {
	a, b := twoNodes(t)
	_ = a
	h := &Header{TotalLen: HeaderLen + 4, TTL: 5, Proto: proto.UDP, Src: addrA, Dst: addrB}
	wire := h.Marshal(nil)
	wire[10] ^= 0xff // corrupt checksum
	pkt := mbuf.New(wire)
	pkt.Append([]byte{1, 2, 3, 4})
	before := b.l.Stats.InHdrErrors.Get()
	b.l.Input(b.ifps[0], pkt)
	if b.l.Stats.InHdrErrors.Get() != before+1 {
		t.Fatal("bad checksum accepted")
	}
}

func TestTruncatedPacketDropped(t *testing.T) {
	_, b := twoNodes(t)
	h := &Header{TotalLen: HeaderLen + 100, TTL: 5, Proto: proto.UDP, Src: addrA, Dst: addrB}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append([]byte{1, 2, 3}) // claims 100 payload bytes, has 3
	before := b.l.Stats.InHdrErrors.Get()
	b.l.Input(b.ifps[0], pkt)
	if b.l.Stats.InHdrErrors.Get() != before+1 {
		t.Fatal("truncated packet accepted")
	}
}

func TestNotForwardingDropsTransit(t *testing.T) {
	_, b := twoNodes(t)
	h := &Header{TotalLen: HeaderLen, TTL: 5, Proto: proto.UDP, Src: addrA, Dst: inet.IP4{172, 16, 0, 1}}
	pkt := mbuf.New(h.Marshal(nil))
	b.l.Input(b.ifps[0], pkt)
	if b.l.Stats.InAddrErrors.Get() != 1 {
		t.Fatal("transit packet not dropped on host")
	}
}
