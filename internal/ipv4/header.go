// Package ipv4 implements the IPv4 network layer: the 4.4 BSD-Lite
// baseline the paper's IPv6 is measured against (§7), including the
// work an IPv4 node must do that an IPv6 node need not: verifying and
// recomputing the header checksum, and router-side fragmentation
// (§2.1).  ARP — which IPv6 absorbs into ICMPv6 Neighbor Discovery —
// lives here too, implemented over the same cloned-host-route
// machinery ND uses, as in 4.4 BSD.
package ipv4

import (
	"errors"
	"fmt"

	"bsd6/internal/inet"
)

// HeaderLen is the length of an IPv4 header without options.
const HeaderLen = 20

// MinMTU is the minimum IPv4 MTU (§2.2 contrasts it with IPv6's 576).
const MinMTU = 68

// Flags in the fragment field.
const (
	flagDF = 0x4000 // don't fragment
	flagMF = 0x2000 // more fragments
)

// Header is a parsed IPv4 header (paper Figure 2).
type Header struct {
	TOS      uint8
	TotalLen int
	ID       uint16
	DF       bool
	MF       bool
	FragOff  int // byte offset (already multiplied by 8)
	TTL      uint8
	Proto    uint8
	Src, Dst inet.IP4
	Options  []byte // raw options, length a multiple of 4
}

// HdrLen returns the header length including options.
func (h *Header) HdrLen() int { return HeaderLen + len(h.Options) }

// Errors from header parsing.
var (
	ErrShort    = errors.New("ipv4: packet too short")
	ErrVersion  = errors.New("ipv4: bad version")
	ErrChecksum = errors.New("ipv4: bad header checksum")
	ErrLength   = errors.New("ipv4: bad length fields")
)

// Marshal appends the wire form of h (with a freshly computed header
// checksum — the per-hop cost IPv6 eliminates) to dst.
func (h *Header) Marshal(dst []byte) []byte {
	hl := h.HdrLen()
	off := len(dst)
	dst = append(dst, make([]byte, hl)...)
	b := dst[off:]
	b[0] = 4<<4 | uint8(hl/4)
	b[1] = h.TOS
	b[2], b[3] = byte(h.TotalLen>>8), byte(h.TotalLen)
	b[4], b[5] = byte(h.ID>>8), byte(h.ID)
	frag := uint16(h.FragOff / 8)
	if h.DF {
		frag |= flagDF
	}
	if h.MF {
		frag |= flagMF
	}
	b[6], b[7] = byte(frag>>8), byte(frag)
	b[8] = h.TTL
	b[9] = h.Proto
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	copy(b[20:], h.Options)
	ck := inet.Checksum(b[:hl])
	b[10], b[11] = byte(ck>>8), byte(ck)
	return dst
}

// Parse decodes and validates an IPv4 header from b, verifying the
// checksum. It returns the header and the header length consumed.
func Parse(b []byte) (*Header, int, error) {
	if len(b) < HeaderLen {
		return nil, 0, ErrShort
	}
	if b[0]>>4 != 4 {
		return nil, 0, ErrVersion
	}
	hl := int(b[0]&0xf) * 4
	if hl < HeaderLen || len(b) < hl {
		return nil, 0, ErrLength
	}
	if inet.Checksum(b[:hl]) != 0 {
		return nil, 0, ErrChecksum
	}
	h := &Header{
		TOS:      b[1],
		TotalLen: int(b[2])<<8 | int(b[3]),
		ID:       uint16(b[4])<<8 | uint16(b[5]),
		TTL:      b[8],
		Proto:    b[9],
	}
	frag := uint16(b[6])<<8 | uint16(b[7])
	h.DF = frag&flagDF != 0
	h.MF = frag&flagMF != 0
	h.FragOff = int(frag&0x1fff) * 8
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if hl > HeaderLen {
		h.Options = append([]byte(nil), b[HeaderLen:hl]...)
	}
	if h.TotalLen < hl {
		return nil, 0, ErrLength
	}
	return h, hl, nil
}

func (h *Header) String() string {
	return fmt.Sprintf("ipv4 %s > %s proto=%d len=%d ttl=%d id=%d off=%d df=%v mf=%v",
		h.Src, h.Dst, h.Proto, h.TotalLen, h.TTL, h.ID, h.FragOff, h.DF, h.MF)
}
