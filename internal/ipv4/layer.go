package ipv4

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/reasm"
	"bsd6/internal/route"
	"bsd6/internal/stat"
)

// Stats counts IPv4 protocol events (netstat's ipstat).
type Stats struct {
	InReceives    stat.Counter
	InHdrErrors   stat.Counter
	InAddrErrors  stat.Counter
	InUnknownProt stat.Counter
	InDelivers    stat.Counter
	ReasmOverflow stat.Counter // datagrams evicted by a reassembly quota
	Forwarded     stat.Counter
	FwdCacheHits  stat.Counter // forwards resolved from the held-route shards
	OutRequests   stat.Counter
	OutNoRoute    stat.Counter
	OutDrops      stat.Counter
	FragsCreated  stat.Counter
	FragsReceived stat.Counter
	Reassembled   stat.Counter
	ReasmFails    stat.Counter
	ArpRequests   stat.Counter
	ArpReplies    stat.Counter
	ArpBad        stat.Counter
}

// Output errors.
var (
	ErrNoRoute = errors.New("ipv4: no route to host")
	ErrMsgSize = errors.New("ipv4: message too long (DF set)")
	ErrReject  = errors.New("ipv4: host is unreachable (rejected)")
)

// icmpQuote is how much of an offending packet, beyond its IP header,
// an ICMP error quotes.  RFC 792's 8 bytes are enough to identify a
// transport flow but not to translate errors about encapsulated
// packets: a tunnel head turning an outer frag-needed into an inner
// Packet Too Big needs the full inner IP header (and ideally its
// transport ports) from the quote.  RFC 1812 §4.3.2.3 allows quoting
// as much as fits in 576 bytes; 128 covers outer + inner + transport.
const icmpQuote = 128

type fragKey struct {
	src, dst inet.IP4
	id       uint16
	proto    uint8
}

// OutputOpts carries the per-packet options of ip_output.
type OutputOpts struct {
	TTL uint8 // 0 means the layer default
	TOS uint8
	DF  bool
	// RouteCache, when non-nil, is the caller's held route (BSD's
	// ro->ro_rt): Output validates it with one generation compare and
	// refills it on miss, skipping the radix walk for repeat sends.
	RouteCache *route.Cache
}

// Layer is the IPv4 protocol instance of one stack.
type Layer struct {
	mu     sync.RWMutex
	routes *route.Table
	ifaces map[string]*netif.Interface
	lo     *netif.Interface
	protos map[uint8]proto.TransportInput
	ctls   map[uint8]proto.CtlInput
	frags  *reasm.Queue[fragKey]
	fwd    route.ShardedCache        // forwarding fast path's held routes
	local  atomic.Pointer[localSet4] // cached unicast-destination set
	ident  uint16
	icmp   *ICMP

	// Forwarding enables router behavior.
	Forwarding bool
	// DefaultTTL is used when OutputOpts.TTL is zero.
	DefaultTTL uint8

	// Drops is the stack-wide drop observability sink; nil counts
	// nothing.
	Drops *stat.Recorder

	Stats Stats
}

// Reassembly quota defaults, mirroring the IPv6 layer's: a global
// datagram ceiling and a per-source share of it.
const (
	DefaultReasmMaxDatagrams = 256
	DefaultReasmMaxPerSource = 16
)

// NewLayer creates an IPv4 layer over the given routing table.
func NewLayer(rt *route.Table) *Layer {
	l := &Layer{
		routes:     rt,
		ifaces:     make(map[string]*netif.Interface),
		protos:     make(map[uint8]proto.TransportInput),
		ctls:       make(map[uint8]proto.CtlInput),
		frags:      reasm.NewQueue[fragKey](30 * time.Second),
		DefaultTTL: 64,
	}
	l.frags.MaxDatagrams = DefaultReasmMaxDatagrams
	l.frags.MaxPerSource = DefaultReasmMaxPerSource
	l.frags.SourceOf = func(k fragKey) any { return k.src }
	l.frags.OnEvict = func(k fragKey, _ *reasm.Buffer) {
		l.Stats.ReasmOverflow.Inc()
		l.Stats.ReasmFails.Inc()
		l.Drops.DropNote(stat.RV4ReasmOverflow, k.src.String()+">"+k.dst.String())
	}
	return l
}

// SetReasmLimits tunes the reassembly quotas (0 leaves a value
// unchanged; negative disables that quota).
func (l *Layer) SetReasmLimits(maxDatagrams, maxPerSource int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if maxDatagrams != 0 {
		l.frags.MaxDatagrams = max(maxDatagrams, 0)
	}
	if maxPerSource != 0 {
		l.frags.MaxPerSource = max(maxPerSource, 0)
	}
}

// ReasmLimits reports the effective reassembly quotas.
func (l *Layer) ReasmLimits() (maxDatagrams, maxPerSource int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frags.MaxDatagrams, l.frags.MaxPerSource
}

// FragQueueLen returns the number of in-progress reassemblies.
func (l *Layer) FragQueueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frags.Len()
}

// AddInterface registers an interface with the layer. The first
// loopback registered becomes the local-delivery path.
func (l *Layer) AddInterface(ifp *netif.Interface) {
	l.mu.Lock()
	l.ifaces[ifp.Name] = ifp
	if ifp.Loopback() && l.lo == nil {
		l.lo = ifp
	}
	l.mu.Unlock()
	netif.BumpAddrGen()
}

// Interface returns a registered interface by name.
func (l *Layer) Interface(name string) *netif.Interface {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ifaces[name]
}

// Register installs a transport protocol's input and control-input
// entries in the protocol switch.
func (l *Layer) Register(p uint8, in proto.TransportInput, ctl proto.CtlInput) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if in != nil {
		l.protos[p] = in
	}
	if ctl != nil {
		l.ctls[p] = ctl
	}
}

// Routes returns the routing table the layer uses.
func (l *Layer) Routes() *route.Table { return l.routes }

// entryFlags reads a route entry's flags under the table lock.
func (l *Layer) entryFlags(rt *route.Entry) int {
	var f int
	l.routes.View(func() { f = rt.Flags })
	return f
}

// entryMTU reads a route entry's MTU under the table lock.
func (l *Layer) entryMTU(rt *route.Entry) int {
	var m int
	l.routes.View(func() { m = rt.MTU })
	return m
}

func (l *Layer) nextID() uint16 {
	l.mu.Lock()
	l.ident++
	id := l.ident
	l.mu.Unlock()
	return id
}

// isLocal reports whether dst is one of this node's addresses.
func (l *Layer) isLocal(dst inet.IP4) bool {
	if dst.IsLoopback() {
		return true
	}
	gen := netif.AddrGen()
	c := l.local.Load()
	if c == nil || c.gen != gen {
		c = l.rebuildLocal(gen)
	}
	_, ok := c.set[dst]
	return ok
}

// localSet4 mirrors the IPv6 layer's generation-stamped address set:
// one atomic load and a map probe per packet instead of walking every
// interface's address list under its lock.
type localSet4 struct {
	gen uint64
	set map[inet.IP4]struct{}
}

func (l *Layer) rebuildLocal(gen uint64) *localSet4 {
	set := make(map[inet.IP4]struct{})
	l.mu.RLock()
	for _, ifp := range l.ifaces {
		for _, a := range ifp.Addrs4() {
			set[a.Addr] = struct{}{}
		}
	}
	l.mu.RUnlock()
	c := &localSet4{gen: gen, set: set}
	l.local.Store(c)
	return c
}

// SourceFor picks the source address the stack would use toward dst.
func (l *Layer) SourceFor(dst inet.IP4) (inet.IP4, bool) {
	if l.isLocal(dst) {
		return dst, false // let Output pick; signal local
	}
	rt, ok := l.routes.Lookup(inet.AFInet, dst[:])
	if !ok {
		return inet.IP4{}, false
	}
	l.mu.Lock()
	ifp := l.ifaces[rt.IfName]
	l.mu.Unlock()
	if ifp == nil {
		return inet.IP4{}, false
	}
	return srcAddrOn(ifp)
}

// Output implements ip_output: build the header, route, fragment as
// needed, resolve the link-layer address, and transmit.
func (l *Layer) Output(pkt *mbuf.Mbuf, src, dst inet.IP4, p uint8, opts OutputOpts) error {
	l.Stats.OutRequests.Inc()
	ttl := opts.TTL
	if ttl == 0 {
		ttl = l.DefaultTTL
	}

	// Local destinations loop through the loopback interface, as BSD
	// routes them via lo0.
	if l.isLocal(dst) {
		if src.IsUnspecified() {
			src = dst
		}
		h := &Header{TotalLen: HeaderLen + pkt.Len(), ID: l.nextID(), TTL: ttl, TOS: opts.TOS, Proto: p, Src: src, Dst: dst}
		pkt.Prepend(h.Marshal(nil))
		return l.loop(pkt)
	}

	rt, ok := l.routes.LookupCached(inet.AFInet, dst[:], opts.RouteCache)
	if !ok {
		l.Stats.OutNoRoute.Inc()
		pkt.Free()
		return ErrNoRoute
	}
	if l.entryFlags(rt)&route.FlagReject != 0 {
		l.Stats.OutNoRoute.Inc()
		pkt.Free()
		return ErrReject
	}
	l.mu.Lock()
	ifp := l.ifaces[rt.IfName]
	l.mu.Unlock()
	if ifp == nil {
		l.Stats.OutNoRoute.Inc()
		pkt.Free()
		return ErrNoRoute
	}
	if src.IsUnspecified() {
		s, ok := srcAddrOn(ifp)
		if !ok {
			pkt.Free()
			return ErrNoRoute
		}
		src = s
	}
	mtu := ifp.MTU()
	if rtMTU := l.entryMTU(rt); rtMTU != 0 && rtMTU < mtu {
		mtu = rtMTU
	}

	h := &Header{TotalLen: HeaderLen + pkt.Len(), ID: l.nextID(), TTL: ttl, TOS: opts.TOS, DF: opts.DF, Proto: p, Src: src, Dst: dst}
	if h.TotalLen > mtu {
		if opts.DF {
			pkt.Free()
			return ErrMsgSize
		}
		return l.fragment(ifp, rt, h, pkt, mtu)
	}
	pkt.Prepend(h.Marshal(nil))
	return l.transmit(ifp, rt, dst, pkt)
}

// loop delivers a fully-formed packet to ourselves via loopback.
// Like transmit, it consumes pkt even on error.
func (l *Layer) loop(pkt *mbuf.Mbuf) error {
	l.mu.Lock()
	lo := l.lo
	l.mu.Unlock()
	if lo == nil {
		pkt.Free()
		return ErrNoRoute
	}
	if err := lo.Output(inet.LinkAddr{}, netif.EtherTypeIPv4, pkt); err != nil {
		pkt.Free()
		return err
	}
	return nil
}

// transmit resolves the link-layer next hop and hands the frame to the
// interface. pkt already carries its IP header.  It consumes pkt on
// every path — success hands ownership to the device or the ARP hold
// queue, failure frees it here.
func (l *Layer) transmit(ifp *netif.Interface, rt *route.Entry, dst inet.IP4, pkt *mbuf.Mbuf) error {
	out := func(mac inet.LinkAddr) error {
		if err := ifp.Output(mac, netif.EtherTypeIPv4, pkt); err != nil {
			pkt.Free()
			return err
		}
		return nil
	}
	if ifp.Flags()&netif.FlagTunnel != 0 {
		// Point-to-point encapsulating device: no ARP — the device's
		// output closure wraps the packet and re-enters the outer IP
		// layer.
		return out(inet.LinkAddr{})
	}
	switch {
	case dst.IsMulticast():
		return out(inet.EthernetMulticast4(dst))
	case dst.IsBroadcast():
		return out(netif.Broadcast)
	}
	nextHop := dst
	var flags int
	var gwAny any
	l.routes.View(func() { flags, gwAny = rt.Flags, rt.Gateway })
	if flags&route.FlagGateway != 0 {
		gw, ok := gwAny.(inet.IP4)
		if !ok {
			pkt.Free()
			return ErrNoRoute
		}
		nextHop = gw
		// The gateway itself must be on-link: find its neighbor route.
		grt, ok := l.routes.Lookup(inet.AFInet, gw[:])
		if !ok {
			l.Stats.OutNoRoute.Inc()
			pkt.Free()
			return ErrNoRoute
		}
		rt = grt
	}
	mac, ok := l.arpResolve(ifp, rt, nextHop, pkt)
	if !ok {
		return nil // queued on the ARP entry (or dropped); not an error
	}
	return out(mac)
}

// fragment splits pkt (payload only; h not yet prepended) into
// MTU-sized fragments — the router/source fragmentation that IPv6
// abolished in favor of PMTU discovery (§2.2).
func (l *Layer) fragment(ifp *netif.Interface, rt *route.Entry, h *Header, pkt *mbuf.Mbuf, mtu int) error {
	chunk := (mtu - h.HdrLen()) &^ 7
	if chunk <= 0 {
		pkt.Free()
		return ErrMsgSize
	}
	payload := pkt.Bytes()
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		fh := *h
		fh.FragOff = off
		fh.MF = end < len(payload)
		fh.TotalLen = h.HdrLen() + (end - off)
		// Each fragment gets its own pooled buffer: the parent is
		// freed (and its slab recycled) right after this loop, so the
		// in-flight fragments must not alias its bytes.
		fm := mbuf.Get(end - off)
		copy(fm.Bytes(), payload[off:end])
		fm.Hdr().Flags |= mbuf.MFrag
		fm.Prepend(fh.Marshal(nil))
		l.Stats.FragsCreated.Inc()
		if err := l.transmit(ifp, rt, h.Dst, fm); err != nil {
			pkt.Free()
			return err
		}
	}
	pkt.Free()
	return nil
}

// Input is ipintr: called by the stack for each received IPv4 packet.
func (l *Layer) Input(ifp *netif.Interface, pkt *mbuf.Mbuf) {
	l.Stats.InReceives.Inc()
	b := pkt.PullUp(HeaderLen)
	if b == nil {
		l.Stats.InHdrErrors.Inc()
		l.Drops.DropPkt(stat.RV4BadHeader, pkt.Bytes())
		pkt.Free()
		return
	}
	hl := int(b[0]&0xf) * 4
	if full := pkt.PullUp(hl); full == nil {
		l.Stats.InHdrErrors.Inc()
		l.Drops.DropPkt(stat.RV4BadHeader, b)
		pkt.Free()
		return
	}
	h, _, err := Parse(pkt.PullUp(hl))
	if err != nil {
		l.Stats.InHdrErrors.Inc()
		l.Drops.DropPkt(stat.RV4BadHeader, b)
		pkt.Free()
		return
	}
	if pkt.Len() < h.TotalLen {
		l.Stats.InHdrErrors.Inc()
		l.Drops.DropPkt(stat.RV4BadHeader, b)
		pkt.Free()
		return
	}
	// Trim link-layer padding.
	if pkt.Len() > h.TotalLen {
		pkt.Adj(h.TotalLen - pkt.Len())
	}

	if l.isLocal(h.Dst) || h.Dst.IsMulticast() || h.Dst.IsBroadcast() {
		l.deliverLocal(ifp, h, pkt)
		return
	}
	if l.Forwarding {
		l.forward(h, pkt)
		return
	}
	l.Stats.InAddrErrors.Inc()
	l.Drops.DropPkt(stat.RV4NotForUs, pkt.Bytes())
	pkt.Free()
}

// deliverLocal strips the IP header, reassembles fragments, and runs
// the protocol switch.
func (l *Layer) deliverLocal(ifp *netif.Interface, h *Header, pkt *mbuf.Mbuf) {
	// Keep the leading bytes for ICMP errors before consuming.
	errCtx := pkt.CopyRange(0, min(pkt.Len(), h.HdrLen()+icmpQuote))
	pkt.Adj(h.HdrLen())

	if h.MF || h.FragOff != 0 {
		l.Stats.FragsReceived.Inc()
		key := fragKey{h.Src, h.Dst, h.ID, h.Proto}
		l.mu.Lock()
		data, done, err := l.frags.Add(key, l.routes.Now(), h.FragOff, h.MF, pkt.CopyBytes())
		if err == nil && !done && h.FragOff == 0 {
			// Keep the first fragment's leading bytes so a reassembly
			// timeout can send Time Exceeded code 1 (RFC 792).
			if buf := l.frags.Get(key); buf != nil && buf.Ctx == nil {
				buf.Ctx = errCtx
				buf.CtxIf = ifp.Name
			}
		}
		l.mu.Unlock()
		if err != nil {
			l.Stats.ReasmFails.Inc()
			l.Drops.DropPkt(stat.RV4ReasmFail, errCtx)
			pkt.Free()
			return
		}
		if !done {
			// CopyBytes put the fragment into the reassembly buffer;
			// this path is the packet's terminal consumer.
			pkt.Free()
			return
		}
		l.Stats.Reassembled.Inc()
		flags := pkt.Hdr().Flags
		pkt.Free() // rebuilt datagram owns fresh bytes
		pkt = mbuf.NewNoCopy(data)
		pkt.Hdr().Flags = flags &^ mbuf.MFrag
		pkt.Hdr().RcvIf = ifp.Name
	}

	meta := &proto.Meta{
		Family: inet.AFInet,
		Src4:   h.Src, Dst4: h.Dst,
		Proto: h.Proto, Hops: h.TTL, RcvIf: ifp.Name,
	}
	l.mu.RLock()
	in := l.protos[h.Proto]
	l.mu.RUnlock()
	if in == nil {
		l.Stats.InUnknownProt.Inc()
		l.Drops.DropPkt(stat.RV4UnknownProt, errCtx)
		if !h.Dst.IsMulticast() && !h.Dst.IsBroadcast() {
			l.SendError(IcmpUnreach, CodeProtoUnreach, 0, errCtx)
		}
		pkt.Free()
		return
	}
	l.Stats.InDelivers.Inc()
	in(pkt, meta)
}

// forward implements the router path: TTL decrement, re-checksum,
// fragmentation if needed (IPv4 routers fragment; §2.1 counts this
// among the work IPv6 routers shed).
func (l *Layer) forward(h *Header, pkt *mbuf.Mbuf) {
	errCtx := pkt.CopyRange(0, min(pkt.Len(), h.HdrLen()+icmpQuote))
	if h.TTL <= 1 {
		l.Drops.DropPkt(stat.RV4TTLExceeded, errCtx)
		l.SendError(IcmpTimeExceeded, 0, 0, errCtx)
		pkt.Free()
		return
	}
	// Transit routing through the held-route shards, as in the IPv6
	// forward path: hit = one generation compare, miss = radix walk
	// plus refill.
	rc := l.fwd.For(h.Dst[:])
	rt, ok := l.routes.CacheGet(rc, inet.AFInet, h.Dst[:])
	if ok {
		l.Stats.FwdCacheHits.Inc()
	} else if rt, ok = l.routes.Lookup(inet.AFInet, h.Dst[:]); ok {
		l.routes.CacheFill(rc, inet.AFInet, h.Dst[:], rt)
	}
	if !ok || l.entryFlags(rt)&route.FlagReject != 0 {
		l.Stats.OutNoRoute.Inc()
		l.Drops.DropPkt(stat.RV4NoRoute, errCtx)
		l.SendError(IcmpUnreach, CodeHostUnreach, 0, errCtx)
		pkt.Free()
		return
	}
	l.mu.Lock()
	ifp := l.ifaces[rt.IfName]
	l.mu.Unlock()
	if ifp == nil {
		l.Stats.OutNoRoute.Inc()
		l.Drops.DropPkt(stat.RV4NoRoute, errCtx)
		pkt.Free()
		return
	}
	h.TTL--
	l.Stats.Forwarded.Inc()

	mtu := ifp.MTU()
	if rtMTU := l.entryMTU(rt); rtMTU != 0 && rtMTU < mtu {
		mtu = rtMTU
	}
	if pkt.Len() > mtu { // pkt still carries the IP header here
		pkt.Adj(h.HdrLen())
		if h.DF {
			l.SendError(IcmpUnreach, CodeFragNeeded, mtu, errCtx)
			pkt.Free()
			return
		}
		if err := l.fragment(ifp, rt, h, pkt, mtu); err != nil {
			l.Stats.OutDrops.Inc()
		}
		return
	}
	// Common (non-fragmenting) case: only the TTL changed, so rewrite
	// it in the received header bytes and update the checksum
	// incrementally (RFC 1624) instead of stripping and re-marshalling
	// the header — the input path already verified the old sum.
	hb := pkt.PullUp(h.HdrLen())
	oldWord := uint16(hb[8])<<8 | uint16(hb[9]) // TTL, protocol share a column
	hb[8] = h.TTL
	ck := uint16(hb[10])<<8 | uint16(hb[11])
	ck = inet.UpdateChecksum16(ck, oldWord, uint16(hb[8])<<8|uint16(hb[9]))
	hb[10], hb[11] = byte(ck>>8), byte(ck)
	if err := l.transmit(ifp, rt, h.Dst, pkt); err != nil {
		l.Stats.OutDrops.Inc()
	}
}

// SlowTimo drives timeouts: reassembly expiry and ARP retries. The
// stack calls it every 500ms, as BSD's pr_slowtimo runs. Expired
// reassemblies whose first fragment arrived elicit Time Exceeded code
// 1, as ip_freef's caller does in BSD.
func (l *Layer) SlowTimo(now time.Time) {
	var errs [][]byte
	l.mu.Lock()
	n := l.frags.ExpireFunc(now, func(k fragKey, b *reasm.Buffer) {
		l.Drops.DropNote(stat.RV4ReasmTimeout, k.src.String()+">"+k.dst.String())
		if b.HasFirst() && b.Ctx != nil {
			errs = append(errs, b.Ctx)
		}
	})
	l.Stats.ReasmFails.Add(uint64(n))
	l.mu.Unlock()
	for _, ctx := range errs {
		l.SendError(IcmpTimeExceeded, 1, 0, ctx)
	}
	l.arpTimer(now)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
