package ipv4

import (
	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/proto"
	"bsd6/internal/stat"
)

// ICMPv4 message types and codes used by the stack.
const (
	IcmpEchoReply    = 0
	IcmpUnreach      = 3
	IcmpEcho         = 8
	IcmpTimeExceeded = 11
	IcmpParamProb    = 12

	CodeNetUnreach   = 0
	CodeHostUnreach  = 1
	CodeProtoUnreach = 2
	CodePortUnreach  = 3
	CodeFragNeeded   = 4
)

// IcmpStats counts ICMPv4 events.
type IcmpStats struct {
	InMsgs      stat.Counter
	InErrors    stat.Counter
	InEchos     stat.Counter
	InEchoReps  stat.Counter
	OutMsgs     stat.Counter
	OutEchoReps stat.Counter
	OutErrors   stat.Counter
}

// EchoHandler receives echo replies (for ping); set by the raw socket
// layer.
type EchoHandler func(src inet.IP4, id, seq uint16, payload []byte)

// AttachICMP registers the ICMPv4 protocol on the layer and returns a
// control handle for sending echos.
func AttachICMP(l *Layer) *ICMP {
	ic := &ICMP{l: l}
	l.Register(proto.ICMP, ic.input, nil)
	l.icmp = ic
	return ic
}

// ICMP is the ICMPv4 protocol instance.
type ICMP struct {
	l       *Layer
	Stats   IcmpStats
	OnEcho  EchoHandler
	OnError func(kind proto.CtlType, dst inet.IP4) // observer for tests
}

func icmpMarshal(typ, code uint8, rest uint32, payload []byte) []byte {
	b := make([]byte, 8+len(payload))
	b[0], b[1] = typ, code
	b[4] = byte(rest >> 24)
	b[5] = byte(rest >> 16)
	b[6] = byte(rest >> 8)
	b[7] = byte(rest)
	copy(b[8:], payload)
	ck := inet.Checksum(b)
	b[2], b[3] = byte(ck>>8), byte(ck)
	return b
}

// SendEcho emits an echo request.
func (ic *ICMP) SendEcho(dst inet.IP4, id, seq uint16, payload []byte) error {
	ic.Stats.OutMsgs.Inc()
	m := mbuf.New(icmpMarshal(IcmpEcho, 0, uint32(id)<<16|uint32(seq), payload))
	return ic.l.Output(m, inet.IP4{}, dst, proto.ICMP, OutputOpts{})
}

// SendError emits an ICMP error about a received packet whose leading
// bytes (IP header + 8) are in origCtx. mtu is the next-hop MTU for
// frag-needed. Errors about errors, multicasts, and fragments other
// than the first are suppressed per RFC 1122.
func (l *Layer) SendError(typ, code uint8, mtu int, origCtx []byte) {
	if len(origCtx) < HeaderLen {
		return
	}
	oh, _, err := Parse(origCtx)
	if err != nil || oh.Src.IsMulticast() || oh.Src.IsUnspecified() || oh.FragOff != 0 {
		return
	}
	if oh.Proto == proto.ICMP && len(origCtx) >= oh.HdrLen()+1 {
		t := origCtx[oh.HdrLen()]
		if t != IcmpEcho && t != IcmpEchoReply {
			return // never answer an error with an error
		}
	}
	var rest uint32
	if typ == IcmpUnreach && code == CodeFragNeeded {
		rest = uint32(mtu) & 0xffff
	}
	if l.icmp != nil {
		l.icmp.Stats.OutErrors.Inc()
	}
	m := mbuf.New(icmpMarshal(typ, code, rest, origCtx))
	l.Output(m, inet.IP4{}, oh.Src, proto.ICMP, OutputOpts{})
}

// input is the ICMPv4 protocol-switch entry.  It is the packet's
// terminal consumer: replies and callbacks below copy what they keep,
// so the buffer goes back to the pool here.
func (ic *ICMP) input(pkt *mbuf.Mbuf, meta *proto.Meta) {
	defer pkt.Free()
	b := pkt.Bytes()
	if len(b) < 8 || inet.Checksum(b) != 0 {
		ic.Stats.InErrors.Inc()
		return
	}
	ic.Stats.InMsgs.Inc()
	typ, code := b[0], b[1]
	switch typ {
	case IcmpEcho:
		ic.Stats.InEchos.Inc()
		ic.Stats.OutEchoReps.Inc()
		rest := uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7])
		m := mbuf.New(icmpMarshal(IcmpEchoReply, 0, rest, b[8:]))
		ic.l.Output(m, meta.Dst4, meta.Src4, proto.ICMP, OutputOpts{})
	case IcmpEchoReply:
		ic.Stats.InEchoReps.Inc()
		if ic.OnEcho != nil {
			id := uint16(b[4])<<8 | uint16(b[5])
			seq := uint16(b[6])<<8 | uint16(b[7])
			ic.OnEcho(meta.Src4, id, seq, append([]byte(nil), b[8:]...))
		}
	case IcmpUnreach, IcmpTimeExceeded, IcmpParamProb:
		ic.ctlDispatch(typ, code, b)
	}
}

// ctlDispatch decodes the embedded offending packet and notifies the
// owning transport via its ctlinput entry.
func (ic *ICMP) ctlDispatch(typ, code uint8, b []byte) {
	inner := b[8:]
	oh, hl, err := Parse(inner)
	if err != nil {
		ic.Stats.InErrors.Inc()
		return
	}
	var kind proto.CtlType
	mtu := 0
	switch {
	case typ == IcmpUnreach && code == CodePortUnreach:
		kind = proto.CtlPortUnreach
	case typ == IcmpUnreach && code == CodeFragNeeded:
		kind = proto.CtlMsgSize
		mtu = int(b[6])<<8 | int(b[7])
	case typ == IcmpUnreach:
		kind = proto.CtlUnreach
	case typ == IcmpTimeExceeded:
		kind = proto.CtlTimeExceed
	default:
		kind = proto.CtlParamProb
	}
	if ic.OnError != nil {
		ic.OnError(kind, oh.Dst)
	}
	meta := &proto.Meta{Family: inet.AFInet, Src4: oh.Src, Dst4: oh.Dst, Proto: oh.Proto}
	ic.l.mu.Lock()
	ctl := ic.l.ctls[oh.Proto]
	ic.l.mu.Unlock()
	if ctl != nil {
		ctl(kind, meta, inner[hl:], mtu)
	}
}
