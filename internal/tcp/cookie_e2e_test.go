package tcp_test

// SYN-cookie flood soak: with SynCookies enabled a listener keeps
// accepting while a spoofed SYN flood exceeds SynBacklogMax 100× —
// zero per-SYN state beyond the cap, a legitimate handshake completes
// through the stateless path, and every forged completing ACK is
// charged to the tcp-syn-cookie-failed typed reason.

import (
	"fmt"
	"testing"

	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/proto"
	"bsd6/internal/stat"
	"bsd6/internal/tcp"
	"bsd6/internal/testnet"
)

// injectSeg feeds an arbitrary raw TCP segment from src into b's IPv6
// input, the spoofed-source way.
func injectSeg(b *tnode, src inet.IP6, h *tcp.Header) {
	dst := b.LinkLocal(0)
	seg := h.Marshal()
	ck := inet.TransportChecksum6(src, dst, proto.TCP, seg)
	seg[16], seg[17] = byte(ck>>8), byte(ck)
	ip := &ipv6.Header{NextHdr: proto.TCP, HopLimit: 64, PayloadLen: len(seg), Src: src, Dst: dst}
	pkt := mbuf.New(ip.Marshal(nil))
	pkt.Append(seg)
	b.V6.Input(b.Ifps[0], pkt)
}

func TestSynCookieFloodSoak(t *testing.T) {
	const backlogMax = 4
	const floodFactor = 100

	s := newSim(t)
	hub := s.NewHub()
	a, b := s.node("a"), s.node("b")
	a.Join(hub, testnet.MacA, 1500, inet.IP4{}, 0)
	b.Join(hub, testnet.MacB, 1500, inet.IP4{}, 0)
	b.tcp.Drops = b.Drops
	b.tcp.SynBacklogMax = backlogMax
	b.tcp.SynCookies = true

	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9400)
	l.Listen(4)

	// The flood: 100× the backlog cap, every SYN from a different
	// spoofed on-link source that will never answer.
	src := func(i int) inet.IP6 { return testnet.IP6(t, fmt.Sprintf("fe80::bad:%x", i)) }
	for i := 1; i <= backlogMax*floodFactor; i++ {
		injectSYN(b, src(i), uint16(30000+i), 9400)
	}
	// Beyond the cap the listener went stateless: the backlog never
	// grew, and each excess SYN was answered with a cookie.
	if n := b.tcp.SynBacklogLen(); n > backlogMax {
		t.Fatalf("backlog = %d, cap %d", n, backlogMax)
	}
	wantCookies := uint64(backlogMax*floodFactor - backlogMax)
	if got := b.tcp.Stats.SynCookiesSent.Get(); got != wantCookies {
		t.Fatalf("SynCookiesSent = %d, want %d", got, wantCookies)
	}
	// No flood SYN was silently discarded: beyond-cap SYNs all got
	// cookies, so the backlog-overflow eviction path never ran.
	if got := b.tcp.Stats.SynDrops.Get(); got != 0 {
		t.Fatalf("SynDrops = %d with cookies enabled", got)
	}

	// A legitimate client connects THROUGH the ongoing flood: its SYN
	// meets the full backlog, gets a cookie SYN-ACK, and its ACK
	// rebuilds the connection server-side with zero stored state.
	c := a.tcp.Attach(inet.AFInet6, nil)
	if err := c.Connect(b.LinkLocal(0), 9400); err != nil {
		t.Fatal(err)
	}
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)
	s.waitState(srv, tcp.StateEstablished)
	if got := b.tcp.Stats.SynCookiesValidated.Get(); got != 1 {
		t.Fatalf("SynCookiesValidated = %d, want 1", got)
	}

	// The rebuilt connection carries data both ways.
	s.sendAll(c, []byte("through the flood"))
	if string(s.recvN(srv, 17)) != "through the flood" {
		t.Fatal("data through cookie-rebuilt connection")
	}
	s.sendAll(srv, []byte("ok"))
	if string(s.recvN(c, 2)) != "ok" {
		t.Fatal("reply through cookie-rebuilt connection")
	}

	// Forged completing ACKs — cookies the server never minted — are
	// rejected, reset, and each one is attributed to the typed reason.
	const forged = 32
	for i := 1; i <= forged; i++ {
		h := &tcp.Header{
			SPort: uint16(20000 + i), DPort: 9400,
			Seq: 7777, Ack: uint32(0x41410000 + i), Flags: tcp.FlagACK, Wnd: 65535,
		}
		injectSeg(b, src(i), h)
	}
	if got := b.tcp.Stats.SynCookiesFailed.Get(); got != forged {
		t.Fatalf("SynCookiesFailed = %d, want %d", got, forged)
	}
	if got := b.Drops.Reasons.Snapshot()[stat.RTCPSynCookieFailed.String()]; got != forged {
		t.Fatalf("%s = %d, want %d", stat.RTCPSynCookieFailed, got, forged)
	}
	// And none of them fabricated a connection.
	if got := b.tcp.Stats.SynCookiesValidated.Get(); got != 1 {
		t.Fatalf("forged ACK validated: SynCookiesValidated = %d", got)
	}
	if l.Accept() != nil {
		t.Fatal("forged ACK produced an accepted connection")
	}
}
