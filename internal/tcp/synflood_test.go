package tcp_test

import (
	"fmt"
	"testing"

	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/proto"
	"bsd6/internal/stat"
	"bsd6/internal/tcp"
	"bsd6/internal/testnet"
)

// injectSYN crafts a raw SYN from src — a nonexistent on-link host, so
// the SYN/ACK can never be answered and the embryonic child stays in
// SYN_RCVD — and feeds it straight into the server's IPv6 input, the
// way a spoofed-source SYN flood arrives.
func injectSYN(b *tnode, src inet.IP6, sport, dport uint16) {
	dst := b.LinkLocal(0)
	h := &tcp.Header{SPort: sport, DPort: dport, Seq: 1000, Flags: tcp.FlagSYN, Wnd: 65535}
	seg := h.Marshal()
	ck := inet.TransportChecksum6(src, dst, proto.TCP, seg)
	seg[16], seg[17] = byte(ck>>8), byte(ck)
	ip := &ipv6.Header{NextHdr: proto.TCP, HopLimit: 64, PayloadLen: len(seg), Src: src, Dst: dst}
	pkt := mbuf.New(ip.Marshal(nil))
	pkt.Append(seg)
	b.V6.Input(b.Ifps[0], pkt)
}

// TestSynBacklogOverflowTypedDrop drives the SYN backlog cap: the
// oldest embryonic connection is the victim, each eviction emits
// exactly one tcp-syn-overflow reason, and a legitimate connection
// still completes through an ongoing flood.
func TestSynBacklogOverflowTypedDrop(t *testing.T) {
	s := newSim(t)
	hub := s.NewHub()
	a, b := s.node("a"), s.node("b")
	a.Join(hub, testnet.MacA, 1500, inet.IP4{}, 0)
	b.Join(hub, testnet.MacB, 1500, inet.IP4{}, 0)
	b.tcp.Drops = b.Drops
	b.tcp.SynBacklogMax = 2

	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9100)
	l.Listen(4)

	src := func(i int) inet.IP6 { return testnet.IP6(t, fmt.Sprintf("fe80::dead:%x", i)) }
	for i := 1; i <= 2; i++ {
		injectSYN(b, src(i), uint16(40000+i), 9100)
	}
	if n := b.tcp.SynBacklogLen(); n != 2 {
		t.Fatalf("backlog = %d after 2 SYNs, want 2", n)
	}
	if d := b.tcp.Stats.SynDrops.Get(); d != 0 {
		t.Fatalf("SynDrops = %d before overflow", d)
	}

	// Third spoofed SYN: the cap evicts the oldest embryonic child and
	// charges exactly one typed reason for it.
	injectSYN(b, src(3), 40003, 9100)
	if n := b.tcp.SynBacklogLen(); n != 2 {
		t.Fatalf("backlog = %d after overflow, want 2", n)
	}
	if d := b.tcp.Stats.SynDrops.Get(); d != 1 {
		t.Fatalf("SynDrops = %d, want 1", d)
	}
	if got := b.Drops.Reasons.Snapshot()[stat.RTCPSynOverflow.String()]; got != 1 {
		t.Fatalf("%s = %d, want 1", stat.RTCPSynOverflow, got)
	}
	for _, c := range b.tcp.Conns() {
		if c.State() == tcp.StateSynRcvd && c.PCB().FAddr == src(1) {
			t.Fatal("oldest embryonic connection survived the overflow")
		}
	}

	// A legitimate handshake pushes out another flood child and
	// completes: the flood costs the attacker state, not the victim.
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9100)
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)
	if srv == nil {
		t.Fatal("no accepted connection")
	}
	if d := b.tcp.Stats.SynDrops.Get(); d != 2 {
		t.Fatalf("SynDrops = %d after legit connect, want 2", d)
	}
}
