package tcp

import (
	"testing"

	"bsd6/internal/mbuf"
)

// BenchmarkGROPush measures the per-byte cost of receive coalescing:
// an 8-frame in-order train — the shape a burst dequeue hands the
// engine under bulk load — is pushed and flushed per iteration.
func BenchmarkGROPush(b *testing.B) {
	w := newGROWorld(b, false)
	const frames, payload = 8, 1024
	tmpl := make([][]byte, frames)
	seq := uint32(1000)
	for i := range tmpl {
		tmpl[i] = groData(seq, payload, byte(i)).frame6().Bytes()
		seq += payload
	}
	b.SetBytes(frames * payload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range tmpl {
			m := mbuf.Get(len(t))
			copy(m.Bytes(), t)
			flushed, pass := w.g.Push(m, false)
			if flushed != nil {
				flushed.Free()
			}
			if pass != nil {
				pass.Free()
			}
		}
		if s := w.g.Flush(); s != nil {
			s.Free()
		}
	}
}
