package tcp

import (
	"bytes"
	"testing"
	"testing/quick"

	"bsd6/internal/inet"
	"bsd6/internal/pcb"
	"bsd6/internal/proto"
)

// newPredConn builds an established connection with a detached PCB so
// segInput and output run without a full stack; queued segments pile
// up in t.outbox for inspection (flush is never called).
func newPredConn() *Conn {
	t := &TCP{conns: make(map[*Conn]struct{}), Predict: true}
	c := &Conn{
		t: t, pf: inet.AFInet6, state: StateEstablished,
		SndBufMax: 32768, RcvBufMax: 32768,
		rttTicks: -1, rto: rtoMin, mss: 512,
		rcvNxt: 1000,
		sndUna: 5000, sndNxt: 5000, sndMax: 5000,
		sndWnd: 8192, cwnd: 1 << 20, ssthresh: 1 << 20,
	}
	c.pcb = &pcb.PCB{Family: inet.AFInet6, LPort: 10, FPort: 20,
		LAddr: inet.IP6{15: 1}, FAddr: inet.IP6{15: 2}}
	t.conns[c] = struct{}{}
	return c
}

var predMeta = &proto.Meta{Family: inet.AFInet6}

// loadSndBuf puts n un-acknowledged in-flight bytes on the connection.
func (c *Conn) loadSndBuf(n int) {
	c.sndBuf = make([]byte, n)
	c.sndNxt = c.sndUna + uint32(n)
	c.sndMax = c.sndNxt
}

func TestPredAckFastPath(t *testing.T) {
	c := newPredConn()
	c.loadSndBuf(100)
	th := &Header{Flags: FlagACK, Seq: 1000, Ack: 5100, Wnd: 8192}
	c.segInput(th, nil, predMeta, c.pcb.FAddr, c.pcb.LAddr, 0)
	if got := c.t.Stats.PredAck.Get(); got != 1 {
		t.Fatalf("PredAck = %d, want 1", got)
	}
	if c.sndUna != 5100 || len(c.sndBuf) != 0 {
		t.Fatalf("ack not applied: sndUna=%d buf=%d", c.sndUna, len(c.sndBuf))
	}
	if c.tRexmt != 0 || c.rexmtShift != 0 {
		t.Fatal("retransmit timer not cleared by full ack")
	}
}

func TestPredAckBypassWindowChange(t *testing.T) {
	c := newPredConn()
	c.loadSndBuf(100)
	// Window update rides the ACK: must take the general path, which
	// applies both the ack and the new window.
	th := &Header{Flags: FlagACK, Seq: 1000, Ack: 5100, Wnd: 4096}
	c.segInput(th, nil, predMeta, c.pcb.FAddr, c.pcb.LAddr, 0)
	if c.t.Stats.PredAck.Get() != 0 {
		t.Fatal("fast path taken despite window change")
	}
	if c.sndUna != 5100 || c.sndWnd != 4096 {
		t.Fatalf("general path outcome wrong: sndUna=%d sndWnd=%d", c.sndUna, c.sndWnd)
	}
}

func TestPredAckBypassRetransmitPending(t *testing.T) {
	c := newPredConn()
	c.loadSndBuf(100)
	c.sndNxt = 5050 // retransmission rewound sndNxt below sndMax
	th := &Header{Flags: FlagACK, Seq: 1000, Ack: 5100, Wnd: 8192}
	c.segInput(th, nil, predMeta, c.pcb.FAddr, c.pcb.LAddr, 0)
	if c.t.Stats.PredAck.Get() != 0 {
		t.Fatal("fast path taken while sndNxt != sndMax")
	}
	if c.sndUna != 5100 {
		t.Fatal("ack lost on bypass")
	}
}

func TestPredAckBypassCongestionLimited(t *testing.T) {
	c := newPredConn()
	c.loadSndBuf(100)
	c.cwnd = 1024 // below sndWnd: cwnd still the binding limit
	th := &Header{Flags: FlagACK, Seq: 1000, Ack: 5100, Wnd: 8192}
	c.segInput(th, nil, predMeta, c.pcb.FAddr, c.pcb.LAddr, 0)
	if c.t.Stats.PredAck.Get() != 0 {
		t.Fatal("fast path taken while congestion-limited")
	}
	if c.sndUna != 5100 {
		t.Fatal("ack lost on bypass")
	}
}

func TestPredDatFastPathAndAckEveryOther(t *testing.T) {
	c := newPredConn()
	th := &Header{Flags: FlagACK, Seq: 1000, Ack: 5000, Wnd: 8192}
	c.segInput(th, []byte("abc"), predMeta, c.pcb.FAddr, c.pcb.LAddr, 0)
	if got := c.t.Stats.PredDat.Get(); got != 1 {
		t.Fatalf("PredDat = %d, want 1", got)
	}
	if string(c.rcvBuf) != "abc" || c.rcvNxt != 1003 {
		t.Fatalf("data not delivered: buf=%q nxt=%d", c.rcvBuf, c.rcvNxt)
	}
	if !c.delack || len(c.t.outbox) != 0 {
		t.Fatalf("first segment must only schedule a delayed ACK (delack=%v outbox=%d)",
			c.delack, len(c.t.outbox))
	}
	// Second in-order segment: the delayed ACK converts to an
	// immediate one (RFC 1122 §4.2.3.2 — at least every other).
	th2 := &Header{Flags: FlagACK, Seq: 1003, Ack: 5000, Wnd: 8192}
	c.segInput(th2, []byte("defg"), predMeta, c.pcb.FAddr, c.pcb.LAddr, 0)
	if got := c.t.Stats.PredDat.Get(); got != 2 {
		t.Fatalf("PredDat = %d, want 2", got)
	}
	if len(c.t.outbox) != 1 {
		t.Fatalf("second segment must force the ACK out, outbox=%d", len(c.t.outbox))
	}
	seg := c.t.outbox[0].pkt.Bytes()
	if ack := uint32(seg[8])<<24 | uint32(seg[9])<<16 | uint32(seg[10])<<8 | uint32(seg[11]); ack != 1007 {
		t.Fatalf("forced ACK acknowledges %d, want 1007", ack)
	}
}

func TestPredDatBypassOutOfOrder(t *testing.T) {
	c := newPredConn()
	th := &Header{Flags: FlagACK, Seq: 1003, Ack: 5000, Wnd: 8192}
	c.segInput(th, []byte("def"), predMeta, c.pcb.FAddr, c.pcb.LAddr, 0)
	if c.t.Stats.PredDat.Get() != 0 {
		t.Fatal("fast path took an out-of-order segment")
	}
	if c.t.Stats.RcvOutOfOrder.Get() != 1 || len(c.reassQ) != 1 {
		t.Fatal("segment not routed through reassembly")
	}
}

func TestPredDatBypassReassQueue(t *testing.T) {
	c := newPredConn()
	c.reassQ = []rseg{{seq: 1003, data: []byte("def")}}
	// In-order segment, but the hole it fills means the queue must
	// drain through the general path.
	th := &Header{Flags: FlagACK, Seq: 1000, Ack: 5000, Wnd: 8192}
	c.segInput(th, []byte("abc"), predMeta, c.pcb.FAddr, c.pcb.LAddr, 0)
	if c.t.Stats.PredDat.Get() != 0 {
		t.Fatal("fast path taken with a non-empty reassembly queue")
	}
	if string(c.rcvBuf) != "abcdef" {
		t.Fatalf("queue not drained: %q", c.rcvBuf)
	}
}

func TestPredBypassURG(t *testing.T) {
	c := newPredConn()
	th := &Header{Flags: FlagACK | FlagURG, Seq: 1000, Ack: 5000, Wnd: 8192, Urp: 1}
	c.segInput(th, []byte("abc"), predMeta, c.pcb.FAddr, c.pcb.LAddr, 0)
	if c.t.Stats.PredDat.Get() != 0 {
		t.Fatal("fast path took an URG segment")
	}
	if string(c.rcvBuf) != "abc" {
		t.Fatal("URG segment data lost")
	}
}

// TestPredictOffSameOutcome drives the same segment sequence through a
// predicting and a non-predicting connection: every piece of state and
// every queued wire byte must match; only the counters differ.
func TestPredictOffSameOutcome(t *testing.T) {
	feed := func(c *Conn) {
		c.loadSndBuf(100)
		segs := []struct {
			th   *Header
			data string
		}{
			{&Header{Flags: FlagACK, Seq: 1000, Ack: 5100, Wnd: 8192}, ""},
			{&Header{Flags: FlagACK, Seq: 1000, Ack: 5100, Wnd: 8192}, "abc"},
			{&Header{Flags: FlagACK, Seq: 1003, Ack: 5100, Wnd: 8192}, "defg"},
			{&Header{Flags: FlagACK, Seq: 1010, Ack: 5100, Wnd: 8192}, "late"}, // gap
			{&Header{Flags: FlagACK, Seq: 1007, Ack: 5100, Wnd: 4096}, "hij"},  // fills + window change
		}
		for _, s := range segs {
			th := *s.th
			c.segInput(&th, []byte(s.data), predMeta, c.pcb.FAddr, c.pcb.LAddr, 0)
		}
	}
	on, off := newPredConn(), newPredConn()
	off.t.Predict = false
	feed(on)
	feed(off)

	if on.t.Stats.PredAck.Get() == 0 || on.t.Stats.PredDat.Get() == 0 {
		t.Fatalf("fast path never fired: predack=%d preddat=%d",
			on.t.Stats.PredAck.Get(), on.t.Stats.PredDat.Get())
	}
	if off.t.Stats.PredAck.Get() != 0 || off.t.Stats.PredDat.Get() != 0 {
		t.Fatal("counters fired with Predict off")
	}
	if on.sndUna != off.sndUna || on.rcvNxt != off.rcvNxt || on.sndWnd != off.sndWnd ||
		on.cwnd != off.cwnd || !bytes.Equal(on.rcvBuf, off.rcvBuf) {
		t.Fatalf("state diverged: on{una %d nxt %d wnd %d cwnd %d} off{una %d nxt %d wnd %d cwnd %d}",
			on.sndUna, on.rcvNxt, on.sndWnd, on.cwnd,
			off.sndUna, off.rcvNxt, off.sndWnd, off.cwnd)
	}
	if len(on.t.outbox) != len(off.t.outbox) {
		t.Fatalf("queued %d segments vs %d", len(on.t.outbox), len(off.t.outbox))
	}
	for i := range on.t.outbox {
		if !bytes.Equal(on.t.outbox[i].pkt.Bytes(), off.t.outbox[i].pkt.Bytes()) {
			t.Fatalf("segment %d differs between predict on/off", i)
		}
	}
}

// TestAckTemplateMatchesMarshal proves the incremental pure-ACK
// rebuild emits byte-identical wire to the full marshal-and-sum path,
// across window changes and sequence wraparound.
func TestAckTemplateMatchesMarshal(t *testing.T) {
	tmpl, full := newPredConn(), newPredConn()
	hdrs := []*Header{
		{SPort: 10, DPort: 20, Seq: 5000, Ack: 1000, Flags: FlagACK, Wnd: 8192},
		{SPort: 10, DPort: 20, Seq: 5000, Ack: 1003, Flags: FlagACK, Wnd: 8189},
		{SPort: 10, DPort: 20, Seq: 5000, Ack: 2000, Flags: FlagACK, Wnd: 0},
		{SPort: 10, DPort: 20, Seq: 0xffffffff, Ack: 0xfffffffe, Flags: FlagACK, Wnd: 1},
		{SPort: 10, DPort: 20, Seq: 3, Ack: 7, Flags: FlagACK, Wnd: 65535},
	}
	for i, h := range hdrs {
		tmpl.queueSegment(h, nil) // template after the first
		full.ackTmplOK = false    // force the marshal path every time
		full.queueSegment(h, nil)
		a := tmpl.t.outbox[i].pkt.Bytes()
		b := full.t.outbox[i].pkt.Bytes()
		if !bytes.Equal(a, b) {
			t.Fatalf("ACK %d: template %x != marshal %x", i, a, b)
		}
		// And the wire verifies like any received segment would.
		sum := inet.PseudoHeader6(tmpl.pcb.LAddr, tmpl.pcb.FAddr, uint32(len(a)), proto.TCP)
		if inet.Fold(inet.Sum(sum, a)) != 0 {
			t.Fatalf("ACK %d: checksum does not verify", i)
		}
	}
}

func TestQuickAckTemplate(t *testing.T) {
	f := func(seqs, acks []uint32, wnds []uint16) bool {
		tmpl, full := newPredConn(), newPredConn()
		n := len(seqs)
		if len(acks) < n {
			n = len(acks)
		}
		if len(wnds) < n {
			n = len(wnds)
		}
		for i := 0; i < n; i++ {
			h := &Header{SPort: 10, DPort: 20, Seq: seqs[i], Ack: acks[i], Flags: FlagACK, Wnd: wnds[i]}
			tmpl.queueSegment(h, nil)
			full.ackTmplOK = false
			full.queueSegment(h, nil)
			if !bytes.Equal(tmpl.t.outbox[i].pkt.Bytes(), full.t.outbox[i].pkt.Bytes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
