// Package tcp implements TCP over both IP versions (§5.3).
//
// "The TCP protocol also remains unchanged for IPv6, but was modified
// to support both versions of IP."  The paper's specific changes are
// reproduced here:
//
//   - a new member, pf, in the TCP control block stores the protocol
//     family of each session and selects version-specific code paths;
//   - input processing works through a *th pointer to the TCP header,
//     computed separately for IPv4 and IPv6, instead of the old
//     combined struct tcpiphdr *ti (whose ti_len is replaced by the
//     local variable tlen in input);
//   - reassembly is split into tcp_reass / tcpv6_reass, one per
//     overlay type (paper Figures 5 and 6);
//   - tcp_input calls the input security policy function before
//     processing a segment, so under a require-authentication policy
//     an unauthenticated connection attempt silently fails "as if the
//     destination system were not reachable at all".
package tcp

import (
	"fmt"

	"bsd6/internal/inet"
)

// HeaderLen is the TCP header size without options.
const HeaderLen = 20

// TCP flags.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

func flagString(f int) string {
	s := ""
	for _, x := range []struct {
		bit int
		ch  string
	}{{FlagSYN, "S"}, {FlagACK, "."}, {FlagFIN, "F"}, {FlagRST, "R"}, {FlagPSH, "P"}, {FlagURG, "U"}} {
		if f&x.bit != 0 {
			s += x.ch
		}
	}
	return s
}

// Header is the TCP header that *th points at.
type Header struct {
	SPort, DPort uint16
	Seq, Ack     uint32
	Flags        int
	Wnd          uint16
	Urp          uint16
	MSS          int // MSS option value; 0 if absent
}

// Marshal builds the wire header (without checksum; the caller sums
// over the pseudo-header and fills bytes 16..17).
func (h *Header) Marshal() []byte {
	optLen := 0
	if h.MSS > 0 {
		optLen = 4
	}
	b := make([]byte, HeaderLen+optLen)
	b[0], b[1] = byte(h.SPort>>8), byte(h.SPort)
	b[2], b[3] = byte(h.DPort>>8), byte(h.DPort)
	b[4], b[5], b[6], b[7] = byte(h.Seq>>24), byte(h.Seq>>16), byte(h.Seq>>8), byte(h.Seq)
	b[8], b[9], b[10], b[11] = byte(h.Ack>>24), byte(h.Ack>>16), byte(h.Ack>>8), byte(h.Ack)
	b[12] = byte(len(b) / 4 << 4)
	var fl byte
	if h.Flags&FlagFIN != 0 {
		fl |= 0x01
	}
	if h.Flags&FlagSYN != 0 {
		fl |= 0x02
	}
	if h.Flags&FlagRST != 0 {
		fl |= 0x04
	}
	if h.Flags&FlagPSH != 0 {
		fl |= 0x08
	}
	if h.Flags&FlagACK != 0 {
		fl |= 0x10
	}
	if h.Flags&FlagURG != 0 {
		fl |= 0x20
	}
	b[13] = fl
	b[14], b[15] = byte(h.Wnd>>8), byte(h.Wnd)
	b[18], b[19] = byte(h.Urp>>8), byte(h.Urp)
	if h.MSS > 0 {
		b[20], b[21] = 2, 4
		b[22], b[23] = byte(h.MSS>>8), byte(h.MSS)
	}
	return b
}

// parse decodes a TCP header from b, returning the header and its
// length (data offset).
func parse(b []byte) (*Header, int, error) {
	if len(b) < HeaderLen {
		return nil, 0, fmt.Errorf("tcp: segment too short (%d)", len(b))
	}
	off := int(b[12]>>4) * 4
	if off < HeaderLen || off > len(b) {
		return nil, 0, fmt.Errorf("tcp: bad data offset %d", off)
	}
	h := &Header{
		SPort: uint16(b[0])<<8 | uint16(b[1]),
		DPort: uint16(b[2])<<8 | uint16(b[3]),
		Seq:   uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
		Ack:   uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11]),
		Wnd:   uint16(b[14])<<8 | uint16(b[15]),
		Urp:   uint16(b[18])<<8 | uint16(b[19]),
	}
	fl := b[13]
	if fl&0x01 != 0 {
		h.Flags |= FlagFIN
	}
	if fl&0x02 != 0 {
		h.Flags |= FlagSYN
	}
	if fl&0x04 != 0 {
		h.Flags |= FlagRST
	}
	if fl&0x08 != 0 {
		h.Flags |= FlagPSH
	}
	if fl&0x10 != 0 {
		h.Flags |= FlagACK
	}
	if fl&0x20 != 0 {
		h.Flags |= FlagURG
	}
	// Options: only MSS (kind 2) is interpreted.
	opts := b[HeaderLen:off]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // nop
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				opts = nil
				break
			}
			if opts[0] == 2 && opts[1] == 4 {
				h.MSS = int(opts[2])<<8 | int(opts[3])
			}
			opts = opts[opts[1]:]
		}
	}
	return h, off, nil
}

// Sequence-space comparisons (BSD's SEQ_LT etc.).
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// The overlay structures of paper Figures 5 and 6.  4.4 BSD-Lite
// overlaid struct ipovly on the IP header to borrow its address fields
// for the checksum and reassembly bookkeeping; the IPv6 equivalent,
// struct ipv6ovly, has no room for the ti_len field, which is why
// tcp_input carries the local variable tlen instead (§5.3).

// ipOvly is struct ipovly: the IPv4 pseudo-header image.
type ipOvly struct {
	src, dst inet.IP4
	proto    uint8
	length   uint16
}

// ipv6Ovly is struct ipv6ovly: the IPv6 pseudo-header image. Note: no
// length field narrower than the 32-bit payload length, and none is
// stored — tlen lives in a local.
type ipv6Ovly struct {
	src, dst inet.IP6
	nh       uint8
}
