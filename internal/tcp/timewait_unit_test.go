package tcp

// Conformance tests for the compressed TIME_WAIT engine, driven
// directly against the wheel under the TCP lock: 2MSL expiry timing,
// the re-ACK of a retransmitted FIN (with quiet-period restart),
// RFC 6191 recycling on a new SYN, and eviction at the table cap.

import (
	"testing"

	"bsd6/internal/stat"
)

func twKey(fport uint16) twTuple {
	k := twTuple{lport: 80, fport: fport}
	k.laddr[15], k.faddr[15] = 1, 2
	k.laddr[0], k.faddr[0] = 0x20, 0x20
	return k
}

func newTW(fport uint16) *twEntry {
	return &twEntry{key: twKey(fport), v6: true, sndNxt: 5000, rcvNxt: 9000}
}

// tick advances the 2MSL wheel n slow ticks.
func tick(t *TCP, n int) {
	for i := 0; i < n; i++ {
		t.twTick()
	}
}

func TestTimeWaitExpiresAfterExactly2MSL(t *testing.T) {
	tc := New(nil, nil)
	e := newTW(4000)
	tc.twInsert(e)
	tick(tc, 2*msl-1)
	if e.dead || tc.tw.get(e.key) == nil {
		t.Fatal("record expired before 2MSL")
	}
	tick(tc, 1)
	if !e.dead || tc.tw.get(e.key) != nil || tc.tw.count != 0 {
		t.Fatal("record survived past 2MSL")
	}
}

func TestTimeWaitReACKsRetransmittedFIN(t *testing.T) {
	tc := New(nil, nil)
	e := newTW(4000)
	tc.twInsert(e)
	tick(tc, 2*msl-1) // one tick from expiry

	// The peer retransmits its FIN (it never saw our last ACK).
	fin := &Header{SPort: e.key.fport, DPort: e.key.lport, Seq: e.rcvNxt - 1, Ack: e.sndNxt, Flags: FlagFIN | FlagACK}
	if !tc.twInput(e, fin) {
		t.Fatal("retransmitted FIN fell through TIME_WAIT")
	}
	if len(tc.outbox) != 1 {
		t.Fatalf("outbox has %d segments, want the re-ACK", len(tc.outbox))
	}
	th, _, err := parse(tc.outbox[0].pkt.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if th.Flags != FlagACK || th.Seq != e.sndNxt || th.Ack != e.rcvNxt {
		t.Fatalf("re-ACK = flags %#x seq %d ack %d, want ACK/%d/%d", th.Flags, th.Seq, th.Ack, e.sndNxt, e.rcvNxt)
	}
	// The quiet period restarted: the old deadline passes harmlessly and
	// the record lives a full 2MSL from the FIN.
	tick(tc, 2*msl-1)
	if e.dead {
		t.Fatal("restart did not re-arm the full 2MSL")
	}
	tick(tc, 1)
	if !e.dead {
		t.Fatal("record survived restarted 2MSL")
	}
}

func TestTimeWaitRecyclesOnHigherISN(t *testing.T) {
	tc := New(nil, nil)
	e := newTW(4000)
	tc.twInsert(e)

	// An old duplicate SYN (ISN inside the old receive space) must NOT
	// recycle: it is re-ACKed like any stray segment.
	dup := &Header{SPort: e.key.fport, DPort: e.key.lport, Seq: e.rcvNxt - 100, Flags: FlagSYN}
	if !tc.twInput(e, dup) {
		t.Fatal("old duplicate SYN recycled the record")
	}
	if e.dead {
		t.Fatal("old duplicate SYN killed the record")
	}

	// A genuinely new SYN with a higher ISN releases the tuple for a new
	// incarnation (RFC 6191) and falls through to normal demux.
	syn := &Header{SPort: e.key.fport, DPort: e.key.lport, Seq: e.rcvNxt + 1, Flags: FlagSYN}
	if tc.twInput(e, syn) {
		t.Fatal("new SYN consumed instead of recycling")
	}
	if !e.dead || tc.tw.get(e.key) != nil {
		t.Fatal("record not released on recycle")
	}
	if tc.Stats.TimeWaitRecycled.Get() != 1 {
		t.Fatalf("TimeWaitRecycled = %d", tc.Stats.TimeWaitRecycled.Get())
	}
}

func TestTimeWaitRSTReleasesRecord(t *testing.T) {
	tc := New(nil, nil)
	e := newTW(4000)
	tc.twInsert(e)
	rst := &Header{SPort: e.key.fport, DPort: e.key.lport, Seq: e.rcvNxt, Flags: FlagRST}
	if !tc.twInput(e, rst) {
		t.Fatal("RST fell through")
	}
	if !e.dead || tc.tw.count != 0 || len(tc.outbox) != 0 {
		t.Fatal("RST did not silently release the record")
	}
}

func TestTimeWaitEvictionAtCap(t *testing.T) {
	tc := New(nil, nil)
	tc.Drops = stat.NewRecorder(8)
	tc.TimeWaitMax = 2
	a, b, c := newTW(4000), newTW(4001), newTW(4002)
	tc.twInsert(a)
	tc.twTick() // b is now one tick younger than a
	tc.twInsert(b)
	tc.twInsert(c)
	if tc.tw.count != 2 {
		t.Fatalf("count = %d at cap 2", tc.tw.count)
	}
	// The victim is the record closest to expiry: a.
	if !a.dead || b.dead || c.dead {
		t.Fatal("eviction chose the wrong victim")
	}
	if tc.Stats.TimeWaitOverflow.Get() != 1 {
		t.Fatalf("TimeWaitOverflow = %d", tc.Stats.TimeWaitOverflow.Get())
	}
	if got := tc.Drops.Reasons.Snapshot()[stat.RTCPTimeWaitOverflow.String()]; got != 1 {
		t.Fatalf("typed reason count = %d", got)
	}
	// Same-tuple reinsertion replaces rather than evicts.
	b2 := newTW(4001)
	tc.twInsert(b2)
	if tc.tw.count != 2 || !b.dead || tc.tw.get(b2.key) != b2 {
		t.Fatal("same-tuple reinsert did not replace")
	}
	if tc.Stats.TimeWaitOverflow.Get() != 1 {
		t.Fatal("replacement charged an overflow")
	}
}

func TestTimeWaitUncappedWhenNegative(t *testing.T) {
	tc := New(nil, nil)
	tc.TimeWaitMax = -1
	if tc.TimeWaitLimit() != 0 {
		t.Fatalf("limit = %d, want 0 (uncapped)", tc.TimeWaitLimit())
	}
	for i := 0; i < 3*DefaultTimeWaitMax/2; i++ {
		tc.twInsert(newTW(uint16(i)))
	}
	if tc.Stats.TimeWaitOverflow.Get() != 0 {
		t.Fatal("uncapped table evicted")
	}
}
