package tcp

import (
	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/proto"
)

// output is tcp_output: decide whether a segment should be sent and
// build it. Caller holds t.mu; segments land in the outbox.
func (c *Conn) output() {
	t := c.t
	for {
		off := int(c.sndNxt - c.sndUna)
		if off < 0 {
			off = 0
		}
		avail := len(c.sndBuf) - off
		if avail < 0 {
			avail = 0
		}
		wnd := c.sndWnd
		if c.cwnd < wnd {
			wnd = c.cwnd
		}

		flags := FlagACK
		synPending := false
		switch c.state {
		case StateClosed, StateListen:
			return
		case StateSynSent:
			flags = FlagSYN
			synPending = c.sndNxt == c.iss
		case StateSynRcvd:
			flags = FlagSYN | FlagACK
			synPending = c.sndNxt == c.iss
		}
		if (c.state == StateSynSent || c.state == StateSynRcvd) && !synPending {
			return // SYN in flight; the retransmit timer re-arms it
		}

		// GSO: when the session is eligible, build one super-segment
		// covering up to GSOMax bytes instead of one MSS-sized frame;
		// the netif boundary splits it back into wire frames.  The cap
		// is rounded down to an MSS multiple so the split emits exactly
		// the frames the unbatched loop would have.
		segMax := c.mss
		if gmax := t.GSOMax; gmax > c.mss && c.gsoOK() {
			segMax = c.mss * (gmax / c.mss)
		}

		length := 0
		if !synPending {
			usable := wnd - off
			if usable < 0 {
				usable = 0
			}
			length = avail
			if length > usable {
				length = usable
			}
			if length > segMax {
				length = segMax
			}
		}

		// FIN goes out once all buffered data is included.
		finSeq := c.sndUna + uint32(len(c.sndBuf))
		finNow := c.sndClosed && !synPending &&
			off+length == len(c.sndBuf) && !seqGT(c.sndNxt+uint32(length), finSeq)
		if finNow {
			flags |= FlagFIN
			c.finQueued = true
			c.finSeq = finSeq
		}

		if length == 0 && !synPending && !finNow && !c.needAck {
			// Nothing to send. Start the persist timer if data is
			// stalled on a zero window.
			if avail > 0 && wnd == 0 && c.tRexmt == 0 && c.tPersist == 0 {
				c.tPersist = c.rto
			}
			return
		}

		hdr := &Header{
			SPort: c.pcb.LPort, DPort: c.pcb.FPort,
			Seq: c.sndNxt, Ack: c.rcvNxt,
			Flags: flags, Wnd: uint16(c.rcvSpace()),
		}
		if synPending {
			hdr.MSS = c.mss
		}
		if length > 0 && off+length == len(c.sndBuf) {
			hdr.Flags |= FlagPSH
		}
		var payload []byte
		if length > 0 {
			payload = c.sndBuf[off : off+length]
		}
		c.queueSegment(hdr, payload)
		nseg := 1
		if length > c.mss {
			// One super-segment, nseg wire frames: counters track the
			// wire so batching on/off reads identically in netstat.
			nseg = (length + c.mss - 1) / c.mss
			t.Stats.GSOSegs.Inc()
			t.Stats.GSOSplits.Add(uint64(nseg))
		}
		t.Stats.SndPack.Add(uint64(nseg))
		t.Stats.SndByte.Add(uint64(length))

		adv := uint32(length)
		if synPending {
			adv++
		}
		if finNow {
			adv++
		}
		wasRexmit := !seqGT(c.sndNxt+adv, c.sndMax) && adv > 0
		c.sndNxt += adv
		if seqGT(c.sndNxt, c.sndMax) {
			c.sndMax = c.sndNxt
			if c.rttTicks < 0 && adv > 0 {
				// Time this segment for RTT estimation.
				c.rttTicks = c.ticks
				c.rttSeq = c.sndNxt
				if length > c.mss {
					// The super-segment leaves the wire as MSS-sized
					// frames; close the sample where the unbatched
					// sender would — at the first frame's end.
					c.rttSeq = hdr.Seq + uint32(c.mss)
				}
			}
		} else if wasRexmit {
			t.Stats.SndRexmit.Inc()
		}
		if adv > 0 && c.tRexmt == 0 {
			c.tRexmt = c.rto
		}
		if uint32(c.rcvSpace()) > 0 {
			c.rcvAdv = c.rcvNxt + uint32(c.rcvSpace())
		}
		c.needAck = false
		c.delack = false

		// Keep going while full-size segments remain sendable.
		if length != segMax || avail <= length {
			return
		}
	}
}

// gsoOK reports whether this connection's data may leave as GSO
// super-segments.  IPv6 only: an IPv4 splitter would have to invent
// per-frame IP IDs the unbatched sender draws from the shared
// counter, so the wire could never be equivalent.  The MSS must be
// even, or per-chunk checksums could not chain (RFC 1071 byte-order
// rules at odd offsets).  Security encapsulation wraps the whole IP
// packet, so a super-segment would encrypt as one giant datagram —
// those sessions stay unbatched.  Caller holds t.mu.
func (c *Conn) gsoOK() bool {
	t := c.t
	return !c.pcb.FAddr.IsV4Mapped() && c.mss > 0 && c.mss&1 == 0 &&
		(t.SecOverhead == nil || t.SecOverhead(c.pcb.Socket) == 0)
}

// queueSegment finalizes a segment (checksum over the right
// pseudo-header for the session's protocol family — the §5.3 code
// split) and places it in the outbox. Caller holds t.mu.
//
// Two per-packet shortcuts live here. A pure ACK — no payload, no
// options, no flag beyond ACK — differs from the previous one only in
// sequence, acknowledgment and window, so its wire image is rebuilt
// from the cached template with those fields patched and the checksum
// repaired incrementally (RFC 1624); the ports, addresses and length
// feeding the pseudo-header never change within a connection. Data
// segments fuse the payload copy with its checksum pass (SumCopy) so
// the bytes are touched once, not twice.
func (c *Conn) queueSegment(hdr *Header, payload []byte) {
	src, dst := c.pcb.LAddr, c.pcb.FAddr
	v6 := !dst.IsV4Mapped()
	pureACK := len(payload) == 0 && hdr.Flags == FlagACK && hdr.MSS == 0 && hdr.Urp == 0
	var pkt *mbuf.Mbuf
	if pureACK && c.ackTmplOK {
		pkt = mbuf.Get(HeaderLen)
		seg := pkt.Bytes()
		copy(seg, c.ackTmpl[:])
		ck := uint16(seg[16])<<8 | uint16(seg[17])
		oldSeq := uint32(seg[4])<<24 | uint32(seg[5])<<16 | uint32(seg[6])<<8 | uint32(seg[7])
		seg[4], seg[5], seg[6], seg[7] = byte(hdr.Seq>>24), byte(hdr.Seq>>16), byte(hdr.Seq>>8), byte(hdr.Seq)
		ck = inet.UpdateChecksum32(ck, oldSeq, hdr.Seq)
		oldAck := uint32(seg[8])<<24 | uint32(seg[9])<<16 | uint32(seg[10])<<8 | uint32(seg[11])
		seg[8], seg[9], seg[10], seg[11] = byte(hdr.Ack>>24), byte(hdr.Ack>>16), byte(hdr.Ack>>8), byte(hdr.Ack)
		ck = inet.UpdateChecksum32(ck, oldAck, hdr.Ack)
		oldWnd := uint16(seg[14])<<8 | uint16(seg[15])
		seg[14], seg[15] = byte(hdr.Wnd>>8), byte(hdr.Wnd)
		ck = inet.UpdateChecksum16(ck, oldWnd, hdr.Wnd)
		seg[16], seg[17] = byte(ck>>8), byte(ck)
		copy(c.ackTmpl[:], seg)
	} else {
		wire := hdr.Marshal()
		var sum uint32
		tlen := len(wire) + len(payload)
		// One pooled buffer carries header and payload contiguously:
		// the checksum runs in a single pass and the IP header lands
		// in the slab's headroom on output.
		pkt = mbuf.Get(tlen)
		seg := pkt.Bytes()
		copy(seg, wire)
		if v6 {
			sum = inet.PseudoHeader6(src, dst, uint32(tlen), proto.TCP)
		} else {
			s4, _ := src.MappedV4()
			d4, _ := dst.MappedV4()
			sum = inet.PseudoHeader4(s4, d4, uint16(tlen), proto.TCP)
		}
		sum = inet.Sum(sum, seg[:len(wire)])
		if len(payload) > c.mss {
			// GSO super-segment: copy+checksum per MSS-sized chunk,
			// keeping each chunk's folded sum so the splitter can
			// finalize every wire frame's checksum without re-reading
			// the payload.  Chunks start at even payload offsets (MSS
			// is even by gsoOK), so the partial sums chain with no
			// byte-swaps, and the folded 16-bit values add without
			// overflowing the 32-bit accumulator.
			acc := uint32(inet.FoldRaw(sum))
			sums := make([]uint32, 0, (len(payload)+c.mss-1)/c.mss)
			for o := 0; o < len(payload); o += c.mss {
				end := o + c.mss
				if end > len(payload) {
					end = len(payload)
				}
				cs := uint32(inet.FoldRaw(inet.SumCopy(0, seg[len(wire)+o:], payload[o:end])))
				sums = append(sums, cs)
				acc += cs
			}
			ck := inet.Fold(acc)
			seg[16], seg[17] = byte(ck>>8), byte(ck)
			pkt.Hdr().GSO = &mbuf.GSO{SegSize: c.mss, HdrLen: len(wire), Sums: sums}
		} else {
			sum = inet.SumCopy(sum, seg[len(wire):], payload)
			ck := inet.Fold(sum)
			seg[16], seg[17] = byte(ck>>8), byte(ck)
		}
		if pureACK {
			copy(c.ackTmpl[:], seg)
			c.ackTmplOK = true
		}
	}
	pkt.Hdr().Socket = c.pcb.Socket
	c.t.outbox = append(c.t.outbox, outSeg{
		v6: v6, src: src, dst: dst, pkt: pkt,
		flow: c.pcb.FlowInfo, sock: c.pcb.Socket, conn: c, rc: &c.pcb.Route,
		sc: &c.pcb.Sec,
	})
}

// sendRST aborts the peer's view of the connection. Caller holds t.mu.
func (c *Conn) sendRST() {
	c.t.Stats.RstOut.Inc()
	hdr := &Header{
		SPort: c.pcb.LPort, DPort: c.pcb.FPort,
		Seq: c.sndNxt, Ack: c.rcvNxt, Flags: FlagRST | FlagACK,
	}
	c.queueSegment(hdr, nil)
}

// respondRST answers a segment that has no connection (tcp_respond
// with TH_RST). Caller holds t.mu.
func (t *TCP) respondRST(meta *proto.Meta, th *Header, tlen int) {
	t.Stats.RstOut.Inc()
	hdr := &Header{SPort: th.DPort, DPort: th.SPort}
	if th.Flags&FlagACK != 0 {
		hdr.Seq = th.Ack
		hdr.Flags = FlagRST
	} else {
		ack := th.Seq + uint32(tlen)
		if th.Flags&FlagSYN != 0 {
			ack++
		}
		if th.Flags&FlagFIN != 0 {
			ack++
		}
		hdr.Flags = FlagRST | FlagACK
		hdr.Ack = ack
	}
	wire := hdr.Marshal()
	src := meta.DstIs6() // swap: we answer from the packet's destination
	dst := meta.SrcIs6()
	var sum uint32
	v6 := meta.Family == inet.AFInet6
	if v6 {
		sum = inet.PseudoHeader6(src, dst, uint32(len(wire)), proto.TCP)
	} else {
		sum = inet.PseudoHeader4(meta.Dst4, meta.Src4, uint16(len(wire)), proto.TCP)
	}
	sum = inet.Sum(sum, wire)
	ck := inet.Fold(sum)
	wire[16], wire[17] = byte(ck>>8), byte(ck)
	t.outbox = append(t.outbox, outSeg{v6: v6, src: src, dst: dst, pkt: mbuf.New(wire)})
}

//
// Timers.
//

// FastTimo runs every 200ms: flush delayed ACKs.
func (t *TCP) FastTimo() {
	t.mu.Lock()
	for c := range t.conns {
		if c.delack {
			c.delack = false
			c.needAck = true
			t.Stats.DelAcks.Inc()
			c.output()
		}
	}
	t.mu.Unlock()
	t.flush()
}

// SlowTimo runs every 500ms: retransmission, persist, 2MSL and
// connection-establishment timers.
func (t *TCP) SlowTimo() {
	t.mu.Lock()
	for c := range t.conns {
		c.ticks++
		if c.tConn > 0 {
			if c.tConn--; c.tConn == 0 {
				c.drop(ErrTimeout)
				continue
			}
		}
		if c.tRexmt > 0 {
			if c.tRexmt--; c.tRexmt == 0 {
				c.timeoutRexmt()
				continue
			}
		}
		if c.tPersist > 0 {
			if c.tPersist--; c.tPersist == 0 {
				c.persistProbe()
			}
		}
	}
	// The 2MSL wheel and the SYN-cookie clock ride the same cadence.
	t.twTick()
	t.cookieTick++
	t.mu.Unlock()
	t.flush()
}

// timeoutRexmt handles retransmission timer expiry. Caller holds t.mu.
func (c *Conn) timeoutRexmt() {
	c.rexmtShift++
	if c.rexmtShift > rexmtMax {
		c.drop(ErrTimeout)
		return
	}
	// Exponential backoff, clamped.
	rto := c.rto << c.rexmtShift
	if rto > rtoMax {
		rto = rtoMax
	}
	c.tRexmt = rto
	// Karn: discard the in-flight RTT measurement.
	c.rttTicks = -1
	// Congestion response: halve the window, restart slow start.
	half := c.sndWnd
	if c.cwnd < half {
		half = c.cwnd
	}
	half /= 2
	if half < 2*c.mss {
		half = 2 * c.mss
	}
	c.ssthresh = half
	c.cwnd = c.mss
	c.dupAcks = 0
	c.sndNxt = c.sndUna
	c.output()
}

// persistProbe forces one byte into a zero window. Caller holds t.mu.
func (c *Conn) persistProbe() {
	c.t.Stats.PersistProbe.Inc()
	off := int(c.sndNxt - c.sndUna)
	if off < len(c.sndBuf) {
		hdr := &Header{
			SPort: c.pcb.LPort, DPort: c.pcb.FPort,
			Seq: c.sndNxt, Ack: c.rcvNxt,
			Flags: FlagACK | FlagPSH, Wnd: uint16(c.rcvSpace()),
		}
		c.queueSegment(hdr, c.sndBuf[off:off+1])
		if seqGEQ(c.sndNxt, c.sndMax) {
			c.sndMax = c.sndNxt + 1
		}
	}
	// Re-arm with backoff.
	c.rexmtShift++
	rto := c.rto << c.rexmtShift
	if rto > rtoMax {
		rto = rtoMax
	}
	c.tPersist = rto
	if c.rexmtShift > rexmtMax {
		c.drop(ErrTimeout)
	}
}
