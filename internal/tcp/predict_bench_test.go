package tcp

import "testing"

// Per-segment input cost with header prediction on and off, on the two
// workloads the fast path exists for: in-order data delivery and pure
// ACKs for in-flight data. The "General" variants force every segment
// down the full RFC 793 switch, so the pair bounds what prediction
// saves per packet. Compared against .github/bench-baseline.txt by the
// bench-compare CI job.

func BenchmarkSegInputDataPredict(b *testing.B) { benchSegInputData(b, true) }
func BenchmarkSegInputDataGeneral(b *testing.B) { benchSegInputData(b, false) }

func benchSegInputData(b *testing.B, predict bool) {
	c := newPredConn()
	c.t.Predict = predict
	payload := make([]byte, 512)
	th := &Header{Flags: FlagACK, Ack: 5000, Wnd: 8192}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Seq = c.rcvNxt
		c.segInput(th, payload, predMeta, c.pcb.FAddr, c.pcb.LAddr, 0)
		if len(c.rcvBuf) >= 16384 {
			c.rcvBuf = c.rcvBuf[:0]
			c.t.outbox = c.t.outbox[:0]
		}
	}
}

func BenchmarkSegInputAckPredict(b *testing.B) { benchSegInputAck(b, true) }
func BenchmarkSegInputAckGeneral(b *testing.B) { benchSegInputAck(b, false) }

func benchSegInputAck(b *testing.B, predict bool) {
	c := newPredConn()
	c.t.Predict = predict
	inflight := make([]byte, 512)
	th := &Header{Flags: FlagACK, Seq: 1000, Wnd: 8192}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.sndBuf = inflight
		c.sndNxt = c.sndUna + uint32(len(inflight))
		c.sndMax = c.sndNxt
		th.Ack = c.sndMax
		c.segInput(th, nil, predMeta, c.pcb.FAddr, c.pcb.LAddr, 0)
		if len(c.t.outbox) > 0 {
			c.t.outbox = c.t.outbox[:0]
		}
	}
}
