package tcp_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/netif"
	"bsd6/internal/tcp"
	"bsd6/internal/testnet"
)

// bigWindowPair is tcpPair with both receive buffers large enough that
// the advertised window pins at the 65535 clamp: a constant window is
// the precondition for header prediction, so these connections keep
// the fast path hot during bulk transfer.
func bigWindowPair(t *testing.T, port uint16) (*tsim, *tnode, *tnode, *tcp.Conn, *tcp.Conn) {
	t.Helper()
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.RcvBufMax = 1 << 20
	if err := l.Bind(inet.IP6{}, port); err != nil {
		t.Fatal(err)
	}
	if err := l.Listen(1); err != nil {
		t.Fatal(err)
	}
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.RcvBufMax = 1 << 20
	c.SndBufMax = 1 << 18
	if err := c.Connect(b.LinkLocal(0), port); err != nil {
		t.Fatal(err)
	}
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)
	return s, a, b, c, srv
}

func TestHeaderPredictionBulk(t *testing.T) {
	s, a, b, c, srv := bigWindowPair(t, 9200)
	data := pattern(600_000)
	got := s.transfer(c, srv, data, len(data), 1<<20)
	if !bytes.Equal(got, data) {
		t.Fatal("bulk data corrupted")
	}
	// The receiver's in-order segments ride the data fast path; the
	// sender's incoming pure ACKs ride the ACK fast path once the
	// congestion window opens past the advertised window.
	if n := b.tcp.Stats.PredDat.Get(); n == 0 {
		t.Fatal("no segments took the data fast path")
	}
	if n := a.tcp.Stats.PredAck.Get(); n == 0 {
		t.Fatal("no ACKs took the pure-ACK fast path")
	}
	if b.tcp.Stats.RcvOutOfOrder.Get() != 0 {
		t.Fatal("lossless link produced out-of-order segments")
	}
}

func TestAckEveryOtherSegment(t *testing.T) {
	s, _, b, c, srv := bigWindowPair(t, 9201)
	data := pattern(300_000)
	got := s.transfer(c, srv, data, len(data), 1<<20)
	if !bytes.Equal(got, data) {
		t.Fatal("bulk data corrupted")
	}
	// Delayed ACK must roughly halve the receiver's packet count: one
	// ACK per two data segments, plus handshake and timer flushes.
	rcvd := b.tcp.Stats.RcvPack.Get()
	sent := b.tcp.Stats.SndPack.Get()
	if 3*sent > 2*rcvd {
		t.Fatalf("receiver sent %d packets for %d received; delayed ACK not thinning the stream", sent, rcvd)
	}
}

func TestDelayedAckTimerFlush(t *testing.T) {
	s, _, b, c, srv := bigWindowPair(t, 9202)
	// A lone segment schedules a delayed ACK; with no second segment
	// to force it out, only the 200ms fast timer can flush it.
	s.sendAll(c, []byte("x"))
	if string(s.recvN(srv, 1)) != "x" {
		t.Fatal("payload")
	}
	s.Run(time.Second)
	if b.tcp.Stats.DelAcks.Get() == 0 {
		t.Fatal("delayed ACK never flushed by the fast timer")
	}
}

// predictTrace runs a fixed workload — forward bulk through a pinned
// window (fast path hot), reverse trickle into a small window (window
// updates bypass the fast path), then an orderly close — and returns
// every frame that crossed the hub. The simulation is deterministic,
// so any byte difference between runs is attributable to the variable
// under test: t.Predict.
func predictTrace(t *testing.T, predict bool) []string {
	t.Helper()
	s := newSim(t)
	hub := s.NewHub()
	a, b := s.node("a"), s.node("b")
	a.tcp.Predict = predict
	b.tcp.Predict = predict
	a.Join(hub, testnet.MacA, 1500, inet.IP4{}, 0)
	b.Join(hub, testnet.MacB, 1500, inet.IP4{}, 0)

	var trace []string
	hub.Capture = func(fr netif.Frame) {
		trace = append(trace, fmt.Sprintf("%x>%x %04x %x",
			fr.Src, fr.Dst, fr.EtherType, fr.Payload.Bytes()))
	}

	l := b.tcp.Attach(inet.AFInet6, nil)
	l.RcvBufMax = 1 << 20
	if err := l.Bind(inet.IP6{}, 9300); err != nil {
		t.Fatal(err)
	}
	if err := l.Listen(1); err != nil {
		t.Fatal(err)
	}
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.RcvBufMax = 4096
	if err := c.Connect(b.LinkLocal(0), 9300); err != nil {
		t.Fatal(err)
	}
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)

	data := pattern(150_000)
	if !bytes.Equal(s.transfer(c, srv, data, len(data), 1<<20), data) {
		t.Fatal("forward bulk corrupted")
	}
	back := pattern(20_000)
	if !bytes.Equal(s.transfer(srv, c, back, len(back), 512), back) {
		t.Fatal("reverse trickle corrupted")
	}
	c.Close()
	srv.Close()
	s.waitState(c, tcp.StateClosed)
	s.waitState(srv, tcp.StateClosed)
	s.Run(time.Second)

	// The workload must actually exercise what it claims to.
	if predict && (b.tcp.Stats.PredDat.Get() == 0 || a.tcp.Stats.PredAck.Get() == 0) {
		t.Fatalf("fast paths idle: preddat=%d predack=%d",
			b.tcp.Stats.PredDat.Get(), a.tcp.Stats.PredAck.Get())
	}
	if !predict && (b.tcp.Stats.PredDat.Get() != 0 || a.tcp.Stats.PredAck.Get() != 0) {
		t.Fatal("prediction counters fired with Predict off")
	}
	return trace
}

// TestWireEquivalencePredictOnOff is the tentpole's safety proof at
// system level: with header prediction forced on and off, the same
// deterministic workload must put the exact same bytes on the wire in
// the exact same order — the fast path may only skip work, never
// change behavior.
func TestWireEquivalencePredictOnOff(t *testing.T) {
	on := predictTrace(t, true)
	off := predictTrace(t, false)
	if len(on) != len(off) {
		t.Fatalf("frame counts differ: predict on %d, off %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("wire diverges at frame %d:\n  on:  %.200s\n  off: %.200s", i, on[i], off[i])
		}
	}
	if len(on) == 0 {
		t.Fatal("empty trace")
	}
}
