package tcp

import (
	"bytes"
	"testing"

	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/pcb"
	"bsd6/internal/proto"
)

// Conformance tests for the GRO flush boundaries: every rule the
// engine's comment block promises — flags, options, gaps, window
// changes, fragments, checksums, unclaimed tuples, the ceiling — is
// pinned here against hand-built wire frames, and FuzzGRO replays
// arbitrary segment programs through the coalesced and the unbatched
// paths to prove the state machine cannot tell them apart.

var (
	groLocal  = inet.IP6{15: 1} // frames arrive addressed here
	groRemote = inet.IP6{15: 2}
	groLoc4   = inet.IP4{10, 0, 0, 1}
	groRem4   = inet.IP4{10, 0, 0, 2}
)

// groWorld is a TCP instance with one established connection whose
// tuple the demux table claims, so inbound frames coalesce.
type groWorld struct {
	t *TCP
	c *Conn
	g *GRO
}

func newGROWorld(tb testing.TB, v4 bool) *groWorld {
	fam := inet.AFInet6
	local, remote := groLocal, groRemote
	if v4 {
		fam = inet.AFInet
		local, remote = inet.V4Mapped(groLoc4), inet.V4Mapped(groRem4)
	}
	t := &TCP{Table: pcb.NewTable(), conns: make(map[*Conn]struct{}), Predict: true}
	c := t.Attach(fam, nil)
	if err := t.Table.Bind(c.pcb, local, 80); err != nil {
		tb.Fatal(err)
	}
	if err := t.Table.Connect(c.pcb, remote, 4000); err != nil {
		tb.Fatal(err)
	}
	c.state = StateEstablished
	c.mss = 512
	c.rcvNxt = 1000
	c.sndUna, c.sndNxt, c.sndMax = 5000, 5000, 5000
	c.sndWnd = 8192
	c.cwnd, c.ssthresh = 1<<20, 1<<20
	// In-flight bytes so replayed programs can exercise ACK advances.
	c.sndBuf = make([]byte, 2000)
	c.sndNxt, c.sndMax = 7000, 7000
	return &groWorld{t: t, c: c, g: t.NewGRO(0, 0)}
}

// groSpec describes one inbound frame for the builders.
type groSpec struct {
	sport, dport uint16
	seq, ack     uint32
	flags        byte
	wnd          uint16
	urp          uint16
	doff         int // TCP data offset in bytes; 0 means HeaderLen
	payload      []byte
	badSum       bool // corrupt the transport checksum
	frag         bool // IPv4: set MF; IPv6: insert a Fragment header
	tos          byte // IPv4 TOS / IPv6 traffic class (header mismatch knob)
}

func (s *groSpec) ports() (uint16, uint16) {
	sp, dp := s.sport, s.dport
	if sp == 0 {
		sp = 4000
	}
	if dp == 0 {
		dp = 80
	}
	return sp, dp
}

func (s *groSpec) tcp() []byte {
	doff := s.doff
	if doff == 0 {
		doff = HeaderLen
	}
	th := make([]byte, doff, doff+len(s.payload))
	sp, dp := s.ports()
	th[0], th[1] = byte(sp>>8), byte(sp)
	th[2], th[3] = byte(dp>>8), byte(dp)
	th[4], th[5], th[6], th[7] = byte(s.seq>>24), byte(s.seq>>16), byte(s.seq>>8), byte(s.seq)
	th[8], th[9], th[10], th[11] = byte(s.ack>>24), byte(s.ack>>16), byte(s.ack>>8), byte(s.ack)
	th[12] = byte(doff/4) << 4
	th[13] = s.flags
	th[14], th[15] = byte(s.wnd>>8), byte(s.wnd)
	th[18], th[19] = byte(s.urp>>8), byte(s.urp)
	return append(th, s.payload...)
}

// frame6 builds a complete IPv6 frame for the spec.
func (s *groSpec) frame6() *mbuf.Mbuf {
	seg := s.tcp()
	ext := 0
	if s.frag {
		ext = 8
	}
	b := make([]byte, 40+ext+len(seg))
	b[0] = 0x60 | s.tos>>4
	b[1] = s.tos << 4
	plen := ext + len(seg)
	b[4], b[5] = byte(plen>>8), byte(plen)
	b[6] = proto.TCP
	b[7] = 64
	copy(b[8:24], groRemote[:])
	copy(b[24:40], groLocal[:])
	if s.frag {
		b[6] = 44 // Fragment extension header
		b[40] = proto.TCP
		b[43] = 1 // fragment offset 0, M=1
	}
	ck := inet.TransportChecksum6(groRemote, groLocal, proto.TCP, seg)
	seg[16], seg[17] = byte(ck>>8), byte(ck)
	if s.badSum {
		seg[17] ^= 0xff
	}
	copy(b[40+ext:], seg)
	return mbuf.New(b)
}

// frame4 builds a complete IPv4 frame for the spec.
func (s *groSpec) frame4() *mbuf.Mbuf {
	seg := s.tcp()
	b := make([]byte, 20+len(seg))
	b[0] = 0x45
	b[1] = s.tos
	tot := len(b)
	b[2], b[3] = byte(tot>>8), byte(tot)
	b[4], b[5] = 0x12, 0x34
	if s.frag {
		b[6] = 0x20 // MF
	}
	b[8] = 64
	b[9] = proto.TCP
	copy(b[12:16], groRem4[:])
	copy(b[16:20], groLoc4[:])
	ck := inet.Checksum(b[:20])
	b[10], b[11] = byte(ck>>8), byte(ck)
	tck := inet.TransportChecksum4(groRem4, groLoc4, proto.TCP, seg)
	seg[16], seg[17] = byte(tck>>8), byte(tck)
	if s.badSum {
		seg[17] ^= 0xff
	}
	copy(b[20:], seg)
	return mbuf.New(b)
}

func groData(seq uint32, n int, fill byte) *groSpec {
	p := make([]byte, n)
	for i := range p {
		p[i] = fill + byte(i)
	}
	return &groSpec{seq: seq, ack: 5000, flags: FlagACK, wnd: 8192, payload: p}
}

func TestGROCoalescesCleanTrain(t *testing.T) {
	w := newGROWorld(t, false)
	var want []byte
	for i, seq := range []uint32{1000, 1500, 2000} {
		sp := groData(seq, 500, byte(i*64))
		want = append(want, sp.payload...)
		flushed, pass := w.g.Push(sp.frame6(), false)
		if flushed != nil || pass != nil {
			t.Fatalf("segment %d not absorbed (flushed=%v pass=%v)", i, flushed, pass)
		}
	}
	sup := w.g.Flush()
	if sup == nil {
		t.Fatal("no super-segment flushed")
	}
	if sup.Hdr().Flags&mbuf.MSumOK == 0 {
		t.Error("flushed super-segment not marked MSumOK")
	}
	meta, _ := sup.Hdr().GRO.(*groMeta)
	if meta == nil || len(meta.segs) != 3 {
		t.Fatalf("boundary meta = %+v, want 3 segments", meta)
	}
	for i, s := range meta.segs {
		if s.len != 500 || s.ack != 5000 {
			t.Fatalf("boundary %d = %+v", i, s)
		}
	}
	b := sup.Bytes()
	if plen := int(b[4])<<8 | int(b[5]); plen != HeaderLen+1500 {
		t.Fatalf("patched payload length %d, want %d", plen, HeaderLen+1500)
	}
	if !bytes.Equal(b[40+HeaderLen:], want) {
		t.Fatal("coalesced payload bytes differ from the originals")
	}
	if got := w.t.Stats.GROCoalesced.Get(); got != 2 {
		t.Fatalf("GROCoalesced = %d, want 2", got)
	}
	if got := w.t.Stats.GROFlushes.Get(); got != 1 {
		t.Fatalf("GROFlushes = %d, want 1", got)
	}
}

func TestGROv4CoalesceRepairsIPHeader(t *testing.T) {
	w := newGROWorld(t, true)
	for _, seq := range []uint32{1000, 1400} {
		if fl, pass := w.g.Push(groData(seq, 400, 7).frame4(), true); fl != nil || pass != nil {
			t.Fatal("v4 segment not absorbed")
		}
	}
	sup := w.g.Flush()
	b := sup.Bytes()
	if tot := int(b[2])<<8 | int(b[3]); tot != 20+HeaderLen+800 {
		t.Fatalf("patched total length %d", tot)
	}
	if inet.Checksum(b[:20]) != 0 {
		t.Fatal("IPv4 header checksum not repaired after length patch")
	}
}

// TestGROFlushBoundaries pins every rule that must break a train.  A
// first mergeable segment is held; the breaker arrives next.  "parse"
// breakers are declined outright and pass through unbatched; "match"
// breakers are valid train heads themselves, so the engine flushes the
// old train and holds them; "drop" breakers (checksum damage) pass
// through so the normal input path counts the corpse.
func TestGROFlushBoundaries(t *testing.T) {
	base := func() *groSpec { return groData(1000, 500, 1) }
	next := func() *groSpec { return groData(1500, 500, 2) }
	cases := []struct {
		name string
		mod  func(*groSpec)
		kind string // "parse", "match", "drop", "nopcb"
	}{
		{"PSH", func(s *groSpec) { s.flags |= FlagPSH }, "parse"},
		{"FIN", func(s *groSpec) { s.flags |= FlagFIN }, "parse"},
		{"RST", func(s *groSpec) { s.flags |= FlagRST }, "parse"},
		{"SYN", func(s *groSpec) { s.flags |= FlagSYN }, "parse"},
		{"URG", func(s *groSpec) { s.flags |= FlagURG; s.urp = 1 }, "parse"},
		{"urgent pointer without URG", func(s *groSpec) { s.urp = 7 }, "parse"},
		{"TCP options", func(s *groSpec) { s.doff = 24 }, "parse"},
		{"pure ACK", func(s *groSpec) { s.payload = nil }, "parse"},
		{"fragment", func(s *groSpec) { s.frag = true }, "parse"},
		{"oversize", func(s *groSpec) { s.payload = make([]byte, DefaultGROMax+1) }, "parse"},
		{"sequence gap", func(s *groSpec) { s.seq = 1600 }, "match"},
		{"overlapping sequence", func(s *groSpec) { s.seq = 1400 }, "match"},
		{"window update", func(s *groSpec) { s.wnd = 4096 }, "match"},
		{"ACK regression", func(s *groSpec) { s.ack = 4000 }, "match"},
		{"IP header change", func(s *groSpec) { s.tos = 0x10 }, "match"},
		{"bad checksum", func(s *groSpec) { s.badSum = true }, "drop"},
		{"unclaimed tuple", func(s *groSpec) { s.sport = 4001 }, "nopcb"},
	}
	for _, v4 := range []bool{false, true} {
		mk := func(s *groSpec) *mbuf.Mbuf {
			if v4 {
				return s.frame4()
			}
			return s.frame6()
		}
		for _, tc := range cases {
			w := newGROWorld(t, v4)
			if fl, pass := w.g.Push(mk(base()), v4); fl != nil || pass != nil {
				t.Fatalf("%s v4=%v: head segment not held", tc.name, v4)
			}
			sp := next()
			tc.mod(sp)
			breaker := mk(sp)
			flushed, pass := w.g.Push(breaker, v4)
			if flushed == nil {
				t.Fatalf("%s v4=%v: breaker did not flush the pending train", tc.name, v4)
			}
			if m, _ := flushed.Hdr().GRO.(*groMeta); m != nil {
				t.Fatalf("%s v4=%v: single-segment flush carries boundary meta", tc.name, v4)
			}
			if flushed.Hdr().Flags&mbuf.MSumOK == 0 {
				t.Fatalf("%s v4=%v: verified flush not marked MSumOK", tc.name, v4)
			}
			switch tc.kind {
			case "parse", "drop", "nopcb":
				if pass != breaker {
					t.Fatalf("%s v4=%v: breaker must pass through unbatched", tc.name, v4)
				}
				if pass.Hdr().Flags&mbuf.MSumOK != 0 {
					t.Fatalf("%s v4=%v: passed-through frame must not skip checksum", tc.name, v4)
				}
			case "match":
				if pass != nil {
					t.Fatalf("%s v4=%v: valid head passed through instead of held", tc.name, v4)
				}
				if tail := w.g.Flush(); tail == nil {
					t.Fatalf("%s v4=%v: breaker vanished from the engine", tc.name, v4)
				}
			}
			if got := w.t.Stats.GROCoalesced.Get(); got != 0 {
				t.Fatalf("%s v4=%v: GROCoalesced = %d, want 0", tc.name, v4, got)
			}
		}
	}
}

func TestGROCeilingFlushes(t *testing.T) {
	w := newGROWorld(t, false)
	w.g = w.t.NewGRO(900, 0) // two 500-byte segments exceed it
	if fl, pass := w.g.Push(groData(1000, 500, 1).frame6(), false); fl != nil || pass != nil {
		t.Fatal("head not held")
	}
	flushed, pass := w.g.Push(groData(1500, 500, 2).frame6(), false)
	if flushed == nil || pass != nil {
		t.Fatal("ceiling must flush the train and hold the new segment")
	}
	if w.g.Flush() == nil {
		t.Fatal("second segment lost")
	}
}

// groDispatch emulates the netisr worker's hand-off of a GRO-surfaced
// frame into tcp_input: strip the IP header, build the Meta, deliver.
// t.flushing is pinned true by the harness so queued ACKs accumulate
// in the outbox for comparison instead of hitting a nil IP layer.
func (w *groWorld) dispatch(pkt *mbuf.Mbuf) {
	if pkt == nil {
		return
	}
	b := pkt.PullUp(pkt.Len())
	var meta proto.Meta
	if b[0]>>4 == 4 {
		meta.Family = inet.AFInet
		copy(meta.Src4[:], b[12:16])
		copy(meta.Dst4[:], b[16:20])
		pkt.Adj(20)
	} else {
		if b[6] != proto.TCP {
			pkt.Free() // extension headers: not this harness's problem
			return
		}
		meta.Family = inet.AFInet6
		copy(meta.Src6[:], b[8:24])
		copy(meta.Dst6[:], b[24:40])
		pkt.Adj(40)
	}
	w.t.input(pkt, &meta)
}

// groProgram decodes fuzz bytes into a deterministic segment list: a
// stream of (op, arg) pairs perturbing sequence, flags, window, ACK
// and checksums around an in-order baseline.
func groProgram(p []byte) []*groSpec {
	if len(p) > 96 {
		p = p[:96]
	}
	var specs []*groSpec
	seq := uint32(1000)
	ack := uint32(5000)
	wnd := uint16(8192)
	for i := 0; i+1 < len(p); i += 2 {
		op, arg := p[i]%12, int(p[i+1])
		size := 1 + arg%700
		s := groData(seq, size, byte(arg))
		s.ack, s.wnd = ack, wnd
		switch op {
		case 0, 1, 2, 3: // in-order data
		case 4: // sequence gap
			s.seq += uint32(1 + arg%600)
		case 5: // stale retransmission / overlap
			s.seq -= uint32(1 + arg%600)
		case 6:
			s.flags |= FlagPSH
		case 7: // pure window-update ACK
			s.payload = nil
			wnd = uint16(2048 + arg*13)
			s.wnd = wnd
		case 8: // window change on a data segment
			wnd = uint16(2048 + arg*17)
			s.wnd = wnd
		case 9: // ACK advance (new data acknowledged)
			ack += uint32(arg % 256)
			if ack > 7000 {
				ack = 7000
			}
			s.ack = ack
		case 10:
			s.badSum = true
		case 11:
			s.flags |= FlagFIN
		}
		specs = append(specs, s)
		seq += uint32(len(s.payload))
	}
	return specs
}

// FuzzGRO replays arbitrary segment programs through a coalescing
// worker and an unbatched one: connection state, delivered stream,
// reassembly queue and every queued wire byte must be identical.
func FuzzGRO(f *testing.F) {
	f.Add([]byte{0, 200, 0, 200, 0, 200})                   // clean train
	f.Add([]byte{0, 100, 4, 50, 0, 100, 5, 30})             // gap, then overlap
	f.Add([]byte{0, 100, 9, 90, 0, 100, 7, 5, 0, 100})      // acks and window updates
	f.Add([]byte{0, 100, 10, 10, 0, 100, 6, 20, 11, 1})     // corruption, PSH, FIN
	f.Add([]byte{8, 3, 0, 255, 0, 255, 0, 255, 0, 1, 0, 2}) // window change mid-train
	f.Fuzz(func(t *testing.T, program []byte) {
		specs := groProgram(program)
		if len(specs) == 0 {
			t.Skip()
		}
		gw := newGROWorld(t, false)
		dw := newGROWorld(t, false)
		gw.t.flushing = true // park queued segments in the outbox
		dw.t.flushing = true

		for _, s := range specs {
			flushed, pass := gw.g.Push(s.frame6(), false)
			gw.dispatch(flushed)
			gw.dispatch(pass)
		}
		gw.dispatch(gw.g.Flush())
		for _, s := range specs {
			dw.dispatch(s.frame6())
		}

		g, d := gw.c, dw.c
		if g.rcvNxt != d.rcvNxt || g.sndUna != d.sndUna || g.sndWnd != d.sndWnd ||
			g.cwnd != d.cwnd || g.state != d.state || g.delack != d.delack {
			t.Fatalf("state diverged: gro{nxt %d una %d wnd %d cwnd %d %v delack %v} direct{nxt %d una %d wnd %d cwnd %d %v delack %v}",
				g.rcvNxt, g.sndUna, g.sndWnd, g.cwnd, g.state, g.delack,
				d.rcvNxt, d.sndUna, d.sndWnd, d.cwnd, d.state, d.delack)
		}
		if !bytes.Equal(g.rcvBuf, d.rcvBuf) {
			t.Fatalf("delivered stream diverged: %d vs %d bytes", len(g.rcvBuf), len(d.rcvBuf))
		}
		if len(g.reassQ) != len(d.reassQ) {
			t.Fatalf("reassembly queue diverged: %d vs %d segments", len(g.reassQ), len(d.reassQ))
		}
		for i := range g.reassQ {
			if g.reassQ[i].seq != d.reassQ[i].seq || !bytes.Equal(g.reassQ[i].data, d.reassQ[i].data) {
				t.Fatalf("reassembly segment %d diverged", i)
			}
		}
		if len(gw.t.outbox) != len(dw.t.outbox) {
			t.Fatalf("queued %d response segments vs %d", len(gw.t.outbox), len(dw.t.outbox))
		}
		for i := range gw.t.outbox {
			if !bytes.Equal(gw.t.outbox[i].pkt.Bytes(), dw.t.outbox[i].pkt.Bytes()) {
				t.Fatalf("response segment %d differs between coalesced and unbatched paths", i)
			}
		}
		if gw.t.Stats.RcvPack.Get() != dw.t.Stats.RcvPack.Get() ||
			gw.t.Stats.RcvByte.Get() != dw.t.Stats.RcvByte.Get() {
			t.Fatalf("wire accounting diverged: pack %d/%d byte %d/%d",
				gw.t.Stats.RcvPack.Get(), dw.t.Stats.RcvPack.Get(),
				gw.t.Stats.RcvByte.Get(), dw.t.Stats.RcvByte.Get())
		}
	})
}
