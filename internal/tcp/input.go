package tcp

import (
	"fmt"

	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/pcb"
	"bsd6/internal/proto"
	"bsd6/internal/stat"
)

// input is tcp_input. "The beginning of the tcp_input() function has a
// small amount of IP-related processing. This was broken into two code
// paths, one for IPv4 and one for IPv6 at the cost of an if check"
// (§5.3) — the checksum verification below is that split, building the
// appropriate overlay (Figures 5/6) for the pseudo-header sum.
func (t *TCP) input(pkt *mbuf.Mbuf, meta *proto.Meta) {
	// input is the packet's terminal consumer: segInput copies retained
	// data into rcvBuf/reassQ and respondRST builds a fresh segment, so
	// the pooled slab goes back to its pool on return.
	defer pkt.Free()
	w := pkt.Hdr().Worker
	// A multi-segment GRO train stays chained: the header lives in the
	// first chain segment and the payloads are delivered chain-aware by
	// segInputGRO, so a 64KB train is never linearized (an allocation,
	// a zeroing and a full copy per train on the old path).
	g, _ := pkt.Hdr().GRO.(*groMeta)
	chained := g != nil && len(g.segs) > 1 && pkt.Hdr().Flags&mbuf.MSumOK != 0
	var b []byte
	if chained {
		b = pkt.PullUp(HeaderLen)
		if b == nil {
			t.Stats.RcvBadSum.Inc()
			return
		}
	} else {
		b = pkt.Bytes()
	}
	// A GRO-coalesced super-segment arrives with MSumOK: the engine
	// verified each absorbed segment's checksum at merge time, and the
	// coalesced header's checksum field is deliberately stale.
	if pkt.Hdr().Flags&mbuf.MSumOK == 0 {
		if meta.Family == inet.AFInet6 {
			ovl := ipv6Ovly{src: meta.Src6, dst: meta.Dst6, nh: proto.TCP}
			if inet.TransportChecksum6(ovl.src, ovl.dst, ovl.nh, b) != 0 {
				t.Stats.RcvBadSum.Inc()
				t.Drops.DropPkt(stat.RTCPBadSum, b)
				return
			}
		} else {
			ovl := ipOvly{src: meta.Src4, dst: meta.Dst4, proto: proto.TCP, length: uint16(len(b))}
			if inet.TransportChecksum4(ovl.src, ovl.dst, ovl.proto, b[:ovl.length]) != 0 {
				t.Stats.RcvBadSum.Inc()
				t.Drops.DropPkt(stat.RTCPBadSum, b)
				return
			}
		}
	}
	// th points at the TCP header regardless of which IP carried it —
	// the pointer that replaced struct tcpiphdr *ti (§5.3).
	th, thlen, err := parse(b)
	if err != nil {
		t.Stats.RcvBadSum.Inc()
		t.Drops.DropPkt(stat.RTCPBadHeader, b)
		return
	}
	// tlen: the local variable that replaced ti->ti_len (§5.3).
	tlen := pkt.Len() - thlen
	data := b[thlen:]

	src, dst := meta.SrcIs6(), meta.DstIs6()

	t.mu.Lock()
	p := t.Table.Lookup(dst, th.DPort, src, th.SPort, meta.Family == inet.AFInet)
	// TIME_WAIT demux: when no established connection claims the tuple
	// (the lookup missed or resolved to a listener), a compressed 2MSL
	// record may still own it. A recycling SYN falls through to the
	// listener; everything else is answered from the record.
	if p == nil || ownerListening(p) {
		if e := t.tw.get(twTuple{laddr: dst, faddr: src, lport: th.DPort, fport: th.SPort}); e != nil {
			if t.twInput(e, th) {
				t.mu.Unlock()
				t.flush()
				return
			}
		}
	}
	if p == nil || p.Owner == nil {
		t.Drops.DropPkt(stat.RTCPNoPCB, b)
		if th.Flags&FlagRST == 0 {
			t.respondRST(meta, th, tlen)
		}
		t.mu.Unlock()
		t.flush()
		return
	}
	c := p.Owner.(*Conn)
	// The input security policy check (§5.3): an unacceptable segment
	// is silently dropped, so "attempts to open an unauthenticated TCP
	// connection ... will silently fail as if the destination system
	// were not reachable at all."
	policyOK := true
	if t.InputPolicyPort != nil {
		policyOK = t.InputPolicyPort(pkt, dst, p.Socket, th.DPort)
	} else if t.InputPolicy != nil {
		policyOK = t.InputPolicy(pkt, dst, p.Socket)
	}
	if !policyOK {
		t.Stats.PolicyDrops.Inc()
		t.Drops.DropPkt(stat.RTCPPolicyDrop, b)
		t.mu.Unlock()
		return
	}
	nsegs := 1
	if g != nil && len(g.segs) > 1 {
		nsegs = len(g.segs)
	}
	t.Stats.RcvPack.Add(w, uint64(nsegs))
	t.Stats.RcvByte.Add(w, uint64(tlen))
	if nsegs > 1 {
		c.segInputGRO(th, pkt, g, meta, src, dst, w)
	} else {
		c.segInput(th, data, meta, src, dst, w)
	}
	t.mu.Unlock()
	t.flush()
}

// segInputGRO feeds a GRO super-segment to the state machine.  The
// common case — established connection, header prediction hits, every
// merged segment carried the same acceptable ACK — evaluates the VJ
// predicate once for the whole train and then replays the per-segment
// receive effects (rcvNxt advance, the every-other-segment delayed-ACK
// cadence, output scheduling) boundary by boundary, so the wire is
// byte-identical to unbatched delivery.  Anything short of that
// reconstructs each original segment from the recorded boundaries and
// replays it through segInput verbatim.  t.mu held.
func (c *Conn) segInputGRO(th *Header, pkt *mbuf.Mbuf, g *groMeta, meta *proto.Meta, src, dst inet.IP6, w int) {
	t := c.t
	tlen := pkt.Len() - HeaderLen
	// Strip the TCP header; each remaining chain segment is one merged
	// payload, one-to-one with the recorded boundaries, so delivery
	// walks the chain without ever linearizing the train.  A train that
	// was flattened on its way here (tests feed some) falls back to one
	// contiguous view.
	pkt.Adj(HeaderLen)
	segs := pkt.SegmentViews()
	aligned := len(segs) == len(g.segs)
	if aligned {
		for i, s := range g.segs {
			if len(segs[i]) != s.len {
				aligned = false
				break
			}
		}
	}
	var flat []byte
	if !aligned {
		flat = pkt.Bytes()
	}
	seg := func(i, off int) []byte {
		if aligned {
			return segs[i]
		}
		return flat[off : off+g.segs[i].len]
	}

	fast := t.Predict && c.state == StateEstablished &&
		th.Seq == c.rcvNxt && th.Wnd != 0 && int(th.Wnd) == c.sndWnd &&
		c.sndNxt == c.sndMax &&
		len(c.reassQ) == 0 && tlen <= c.rcvSpace()
	if fast {
		// Every merged segment must carry the ACK prediction already
		// validated for the head (no new data acknowledged), or the
		// later segments' ACK processing would differ from replay.
		for _, s := range g.segs {
			if s.ack != c.sndUna {
				fast = false
				break
			}
		}
	}
	if fast {
		t.Stats.PredDat.Add(w, uint64(len(g.segs)))
		off := 0
		for i, s := range g.segs {
			c.rcvNxt += uint32(s.len)
			c.rcvBuf = sbappend(&c.rcvArr, c.rcvBuf, seg(i, off), c.RcvBufMax)
			off += s.len
			if c.delack {
				c.needAck = true
			} else {
				c.delack = true
			}
			c.wakeupLocked()
			c.output()
		}
		return
	}
	// Slow path: replay the original segments one by one.  Each gets a
	// private header copy — segInput mutates Seq/Flags while trimming.
	off, seq := 0, th.Seq
	for i, s := range g.segs {
		sh := *th
		sh.Seq = seq
		sh.Ack = s.ack
		c.segInput(&sh, seg(i, off), meta, src, dst, w)
		off += s.len
		seq += uint32(s.len)
		if c.state == StateClosed {
			return
		}
	}
}

// segInput runs the state machine for one trimmed segment. w indexes
// the sharded fast-path counters. t.mu held.
func (c *Conn) segInput(th *Header, data []byte, meta *proto.Meta, src, dst inet.IP6, w int) {
	t := c.t
	switch c.state {
	case StateClosed:
		return
	case StateListen:
		c.listenInput(th, data, meta, src, dst)
		return
	case StateSynSent:
		c.synSentInput(th)
		return
	}

	tlen := len(data)

	// Header prediction (Van Jacobson): in ESTABLISHED, with nothing
	// unusual in the segment — no SYN/FIN/RST/URG, the next sequence
	// number expected, an unchanged window, nothing retransmitted —
	// two cases cover the bulk-transfer common path and skip the
	// trim/ACK machinery below. Each short-circuit is an exact
	// restatement of what the general path does for the same segment
	// (including congestion-window growth, which the historic BSD fast
	// path froze), so disabling t.Predict changes only which counters
	// fire — the equivalence tests diff the wire both ways.
	if t.Predict && c.state == StateEstablished &&
		th.Flags&(FlagSYN|FlagFIN|FlagRST|FlagURG) == 0 && th.Flags&FlagACK != 0 &&
		th.Seq == c.rcvNxt && th.Wnd != 0 && int(th.Wnd) == c.sndWnd &&
		c.sndNxt == c.sndMax {
		if tlen == 0 {
			// Pure ACK advancing sndUna with the congestion window
			// open: take the shared new-data-acknowledged path and
			// give output a chance at the freed window.
			if seqGT(th.Ack, c.sndUna) && seqLEQ(th.Ack, c.sndMax) &&
				c.cwnd >= c.sndWnd {
				t.Stats.PredAck.Inc(w)
				if c.ackNew(th.Ack) {
					return
				}
				if c.needAck {
					c.output()
				} else if len(c.sndBuf) > int(c.sndMax-c.sndUna) {
					c.output()
				}
				return
			}
		} else if th.Ack == c.sndUna && len(c.reassQ) == 0 && tlen <= c.rcvSpace() {
			// Pure in-order data with an empty reassembly queue:
			// deliver directly and schedule a delayed ACK — every
			// other full segment forces one out (RFC 1122 §4.2.3.2).
			t.Stats.PredDat.Inc(w)
			c.rcvNxt += uint32(tlen)
			c.rcvBuf = sbappend(&c.rcvArr, c.rcvBuf, data, c.RcvBufMax)
			if c.delack {
				c.needAck = true
			} else {
				c.delack = true
			}
			c.wakeupLocked()
			c.output()
			return
		}
	}

	// RST processing.
	if th.Flags&FlagRST != 0 {
		if c.state == StateSynRcvd {
			c.drop(ErrRefused)
		} else {
			c.drop(ErrReset)
		}
		return
	}
	// A SYN here is old or duplicate; acknowledge our current state.
	if th.Flags&FlagSYN != 0 && th.Seq == c.irs {
		c.needAck = true
		c.output()
		return
	}

	// Trim leading duplicate bytes.
	if todrop := int32(c.rcvNxt - th.Seq); todrop > 0 {
		if int(todrop) >= tlen {
			t.Stats.RcvDupPack.Inc()
			c.needAck = true
			c.output()
			return
		}
		data = data[todrop:]
		th.Seq += uint32(todrop)
		tlen = len(data)
	}
	// Trim data beyond the advertised window.
	win := c.rcvSpace()
	if over := int32(th.Seq + uint32(tlen) - (c.rcvNxt + uint32(win))); over > 0 {
		if int(over) >= tlen && seqGT(th.Seq, c.rcvNxt) {
			t.Stats.RcvAfterWin.Inc()
			c.needAck = true
			c.output()
			return
		}
		if keep := tlen - int(over); keep >= 0 {
			data = data[:keep]
			tlen = keep
			th.Flags &^= FlagFIN // the FIN is beyond the window
		}
	}

	if th.Flags&FlagACK == 0 {
		return
	}
	ack := th.Ack

	// SYN_RCVD: the handshake's final ACK.
	if c.state == StateSynRcvd {
		if seqLT(c.sndUna, ack) && seqLEQ(ack, c.sndMax) {
			c.state = StateEstablished
			t.Stats.ConnEstab.Inc()
			c.tConn = 0
			c.tRexmt = 0
			c.rexmtShift = 0
			c.sndUna = ack
			c.sndWnd = int(th.Wnd)
			c.unlinkSynLocked()
			if c.parent != nil {
				if len(c.parent.acceptQ) < c.parent.backlog {
					c.parent.acceptQ = append(c.parent.acceptQ, c)
					c.parent.wakeupLocked()
				} else {
					c.sendRST()
					c.closeLocked(ErrListenQ)
					return
				}
			}
			c.wakeupLocked()
		} else {
			t.respondRST(meta, th, tlen)
			return
		}
	}

	switch {
	case seqGT(ack, c.sndMax):
		// Ack of the future: resynchronize.
		c.needAck = true
		c.output()
		return
	case seqLEQ(ack, c.sndUna):
		// Duplicate ACK: fast retransmit after three in a row while
		// data is outstanding.
		if tlen == 0 && ack == c.sndUna && c.sndMax != c.sndUna && th.Flags&FlagFIN == 0 {
			c.dupAcks++
			switch {
			case c.dupAcks == 3:
				t.Stats.FastRexmit.Inc()
				half := c.sndWnd
				if c.cwnd < half {
					half = c.cwnd
				}
				half /= 2
				if half < 2*c.mss {
					half = 2 * c.mss
				}
				c.ssthresh = half
				c.cwnd = c.mss
				saved := c.sndNxt
				c.sndNxt = c.sndUna
				c.output()
				if seqGT(saved, c.sndNxt) {
					c.sndNxt = saved
				}
				c.cwnd = c.ssthresh
			case c.dupAcks > 3:
				c.cwnd += c.mss
				c.output()
			}
		}
	default:
		// New data acknowledged.
		if c.ackNew(ack) {
			return
		}
	}

	// Window update.
	c.sndWnd = int(th.Wnd)

	// Data.
	if tlen > 0 {
		switch c.state {
		case StateEstablished, StateFinWait1, StateFinWait2:
			if th.Seq == c.rcvNxt && len(c.reassQ) == 0 {
				// In-order: deliver directly, schedule a delayed ACK.
				c.rcvNxt += uint32(tlen)
				c.rcvBuf = sbappend(&c.rcvArr, c.rcvBuf, data, c.RcvBufMax)
				if c.delack {
					c.needAck = true
				} else {
					c.delack = true
				}
				c.wakeupLocked()
			} else {
				// Out of order: through the version-split reassembly
				// (§5.3), then ACK immediately so the sender sees
				// duplicate ACKs.
				t.Stats.RcvOutOfOrder.Inc()
				fin := th.Flags&FlagFIN != 0
				if c.pf == inet.AFInet6 && !c.pcb.FAddr.IsV4Mapped() {
					c.tcpv6Reass(th.Seq, data, fin)
				} else {
					c.tcpReass(th.Seq, data, fin)
				}
				th.Flags &^= FlagFIN // owned by the queue now
				c.needAck = true
			}
		default:
			// No data accepted after our FIN has been processed.
			c.needAck = true
		}
	}

	// FIN.
	if th.Flags&FlagFIN != 0 && th.Seq+uint32(tlen) == c.rcvNxt {
		c.processFIN()
	}

	if c.needAck {
		c.output()
	} else if tlen > 0 || th.Flags&FlagFIN != 0 {
		// Give output a chance to send queued data opened by the
		// window update.
		c.output()
	} else if len(c.sndBuf) > int(c.sndMax-c.sndUna) {
		c.output()
	}
}

// ackNew processes an ACK acknowledging new data (sndUna < ack <=
// sndMax): RTT sampling, congestion-window growth, send-buffer trim,
// retransmit-timer management and reachability confirmation. It is
// shared verbatim between the general ACK switch and the
// header-prediction fast path so the two stay behaviorally identical.
// Returns true if the connection was closed (LAST_ACK's FIN
// acknowledged). Caller holds t.mu.
func (c *Conn) ackNew(ack uint32) bool {
	t := c.t
	acked := int(ack - c.sndUna)
	c.dupAcks = 0
	if c.rttTicks >= 0 && seqGEQ(ack, c.rttSeq) {
		c.updateRTT(c.ticks - c.rttTicks)
		c.rttTicks = -1
	}
	// Congestion window growth: slow start then additive.
	if c.cwnd < c.ssthresh {
		c.cwnd += c.mss
	} else {
		c.cwnd += c.mss * c.mss / c.cwnd
	}
	if c.cwnd > 1<<20 {
		c.cwnd = 1 << 20
	}
	bufAcked := acked
	finAcked := false
	if c.finQueued && seqGT(ack, c.finSeq) {
		bufAcked--
		finAcked = true
	}
	if bufAcked > len(c.sndBuf) {
		bufAcked = len(c.sndBuf)
	}
	if bufAcked > 0 {
		c.sndBuf = c.sndBuf[bufAcked:]
	}
	c.sndUna = ack
	if seqLT(c.sndNxt, ack) {
		c.sndNxt = ack
	}
	if ack == c.sndMax {
		c.tRexmt = 0
		c.rexmtShift = 0
		c.tPersist = 0
	} else if c.tPersist == 0 {
		c.tRexmt = c.rto
	}
	// Forward progress confirms neighbor reachability without
	// extra ND traffic (§4.3).  Once per slow tick is plenty — the
	// reachable window is tens of seconds, and confirming on every
	// ACK of a bulk stream pays a route lookup per packet.
	if t.Confirm != nil && !c.pcb.FAddr.IsV4Mapped() && c.confirmTick != c.ticks+1 {
		c.confirmTick = c.ticks + 1
		t.Confirm(c.pcb.FAddr)
	}
	c.wakeupLocked() // send buffer space freed

	if finAcked {
		switch c.state {
		case StateFinWait1:
			c.state = StateFinWait2
		case StateClosing:
			c.enterTimeWait()
		case StateLastAck:
			c.closeLocked(nil)
			return true
		}
	}
	return false
}

// ownerListening reports whether the PCB belongs to a listening
// connection — the demux class a TIME_WAIT record may shadow.
func ownerListening(p *pcb.PCB) bool {
	c, ok := p.Owner.(*Conn)
	return ok && c.listening
}

// listenInput handles a segment arriving at a listening socket.
func (c *Conn) listenInput(th *Header, data []byte, meta *proto.Meta, src, dst inet.IP6) {
	t := c.t
	if th.Flags&FlagRST != 0 {
		return
	}
	if th.Flags&FlagACK != 0 {
		// With cookies enabled this may be the third leg of a stateless
		// handshake; anything that fails validation is a typed drop and
		// answered with RST.
		if t.SynCookies && th.Flags&FlagSYN == 0 {
			if c.cookieAccept(th, data, meta, src, dst) {
				return
			}
			t.Stats.SynCookiesFailed.Inc()
			t.Drops.DropNote(stat.RTCPSynCookieFailed,
				fmt.Sprintf("%s.%d > %s.%d", src, th.SPort, dst, th.DPort))
		}
		t.respondRST(meta, th, 0)
		return
	}
	if th.Flags&FlagSYN == 0 {
		return
	}
	// SYN backlog cap: go stateless when cookies are enabled, otherwise
	// recycle the oldest embryonic connection rather than growing
	// half-open state without bound under a SYN flood.
	if max := t.synBacklogMax(); max > 0 && len(c.synQ) >= max {
		if t.SynCookies {
			c.sendSynCookie(th, meta, src, dst)
			return
		}
		old := c.synQ[0]
		t.Stats.SynDrops.Inc()
		t.Drops.DropNote(stat.RTCPSynOverflow,
			fmt.Sprintf("%s.%d > %s.%d", old.pcb.FAddr, old.pcb.FPort, old.pcb.LAddr, old.pcb.LPort))
		old.closeLocked(ErrTimeout) // unlinks old from c.synQ
	}
	// Create the child connection ("sonewconn").
	child := &Conn{
		t: t, pf: meta.Family, state: StateSynRcvd,
		SndBufMax: c.SndBufMax, RcvBufMax: c.RcvBufMax,
		rttTicks: -1, rto: rtoMin, mss: defaultMSS,
		parent: c, Wakeup: c.Wakeup,
	}
	child.pcb = t.Table.Attach(c.pcb.Family, c.pcb.Socket)
	child.pcb.Owner = child
	t.Table.SetTuple(child.pcb, dst, c.pcb.LPort, src, th.SPort)
	if src.IsV4Mapped() {
		child.pcb.Flags &^= pcb.FlagIPv6
	} else {
		child.pcb.Flags |= pcb.FlagIPv6
	}
	t.conns[child] = struct{}{}

	child.mss = t.pathMSS(child.pcb)
	if th.MSS > 0 && th.MSS < child.mss {
		child.mss = th.MSS
	}
	child.irs = th.Seq
	child.rcvNxt = th.Seq + 1
	child.iss = t.nextISS()
	child.sndUna, child.sndNxt, child.sndMax = child.iss, child.iss, child.iss
	child.cwnd = initialCwnd(child.mss)
	child.ssthresh = 1 << 20
	child.sndWnd = int(th.Wnd)
	child.tConn = connTicks
	c.synQ = append(c.synQ, child)
	t.Stats.ConnAccepts.Inc()
	child.output()
}

// synSentInput handles the SYN|ACK (or simultaneous SYN) of an active
// open.
func (c *Conn) synSentInput(th *Header) {
	t := c.t
	if th.Flags&FlagACK != 0 && (seqLEQ(th.Ack, c.iss) || seqGT(th.Ack, c.sndMax)) {
		return // unacceptable ACK; a RST would answer it in BSD
	}
	if th.Flags&FlagRST != 0 {
		if th.Flags&FlagACK != 0 {
			c.drop(ErrRefused)
		}
		return
	}
	if th.Flags&FlagSYN == 0 {
		return
	}
	c.irs = th.Seq
	c.rcvNxt = th.Seq + 1
	if th.MSS > 0 && th.MSS < c.mss {
		c.mss = th.MSS
	}
	c.sndWnd = int(th.Wnd)
	c.cwnd = initialCwnd(c.mss)
	if th.Flags&FlagACK != 0 {
		c.sndUna = th.Ack
		c.state = StateEstablished
		t.Stats.ConnEstab.Inc()
		c.tConn = 0
		c.tRexmt = 0
		c.rexmtShift = 0
		c.needAck = true
		c.wakeupLocked()
		c.output()
	} else {
		// Simultaneous open.
		c.state = StateSynRcvd
		c.sndNxt = c.iss
		c.output()
	}
}

// processFIN advances over the peer's FIN and transitions state.
func (c *Conn) processFIN() {
	if c.rcvClosed {
		c.needAck = true
		return
	}
	c.rcvNxt++
	c.rcvClosed = true
	c.needAck = true
	switch c.state {
	case StateSynRcvd, StateEstablished:
		c.state = StateCloseWait
	case StateFinWait1:
		// Our FIN not yet acknowledged: both closing at once.
		c.state = StateClosing
	case StateFinWait2:
		c.enterTimeWait()
	}
	c.wakeupLocked() // EOF is readable
}

// updateRTT is the Jacobson/Karels estimator over slow-timer ticks.
func (c *Conn) updateRTT(m int) {
	if m < 1 {
		m = 1
	}
	if c.srtt != 0 {
		delta := m - c.srtt
		c.srtt += delta / 8
		if c.srtt <= 0 {
			c.srtt = 1
		}
		if delta < 0 {
			delta = -delta
		}
		c.rttvar += (delta - c.rttvar) / 4
		if c.rttvar <= 0 {
			c.rttvar = 1
		}
	} else {
		c.srtt = m
		c.rttvar = m / 2
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < rtoMin {
		c.rto = rtoMin
	}
	if c.rto > rtoMax {
		c.rto = rtoMax
	}
}

//
// Reassembly. "The tcp_reass() function was not amenable to supporting
// both versions of IP at the same time, so our implementation
// increases code size by adding a new tcpv6_reass() function that uses
// struct tcpipv6hdr in lieu of the struct tcpiphdr used by the
// original tcp_reass()" (§5.3).  Both share reassCore; the wrappers
// exist (and are counted separately) to mirror that structure.
//

// tcpReass queues an out-of-order IPv4 segment.
func (c *Conn) tcpReass(seq uint32, data []byte, fin bool) {
	c.t.Stats.Reass4.Inc()
	c.reassCore(seq, data, fin)
}

// tcpv6Reass queues an out-of-order IPv6 segment.
func (c *Conn) tcpv6Reass(seq uint32, data []byte, fin bool) {
	c.t.Stats.Reass6.Inc()
	c.reassCore(seq, data, fin)
}

func (c *Conn) reassCore(seq uint32, data []byte, fin bool) {
	// Drop what is already received.
	if d := int32(c.rcvNxt - seq); d > 0 {
		if int(d) >= len(data) && !fin {
			return
		}
		if int(d) >= len(data) {
			data = nil
			seq = c.rcvNxt
		} else {
			data = data[d:]
			seq += uint32(d)
		}
	}
	// Insert in order; identical-seq duplicates keep the longer data.
	ins := rseg{seq: seq, data: append([]byte(nil), data...), fin: fin}
	pos := len(c.reassQ)
	for i, s := range c.reassQ {
		if seqLT(seq, s.seq) {
			pos = i
			break
		}
		if s.seq == seq {
			if len(ins.data) > len(s.data) || ins.fin {
				c.reassQ[i] = ins
			}
			c.drainReass()
			return
		}
	}
	c.reassQ = append(c.reassQ, rseg{})
	copy(c.reassQ[pos+1:], c.reassQ[pos:])
	c.reassQ[pos] = ins
	c.drainReass()
}

// drainReass delivers any now-in-order queued segments.
func (c *Conn) drainReass() {
	progressed := false
	for len(c.reassQ) > 0 {
		s := c.reassQ[0]
		if seqGT(s.seq, c.rcvNxt) {
			break
		}
		c.reassQ = c.reassQ[1:]
		if d := int32(c.rcvNxt - s.seq); d > 0 {
			if int(d) >= len(s.data) {
				if s.fin && s.seq+uint32(len(s.data)) == c.rcvNxt {
					c.processFIN()
				}
				continue
			}
			s.data = s.data[d:]
		}
		c.rcvNxt += uint32(len(s.data))
		c.rcvBuf = sbappend(&c.rcvArr, c.rcvBuf, s.data, c.RcvBufMax)
		progressed = true
		if s.fin {
			c.processFIN()
		}
	}
	if progressed {
		c.wakeupLocked()
	}
}

// ctlInput delivers ICMP-derived errors: PMTU shrink triggers an MSS
// reduction and retransmission; hard errors kill nascent connections.
func (t *TCP) ctlInput(kind proto.CtlType, meta *proto.Meta, contents []byte, mtu int) {
	if t.AllowError != nil && !t.AllowError() {
		return // §5.1 security check in the notify path
	}
	if len(contents) < 4 {
		return
	}
	sport := uint16(contents[0])<<8 | uint16(contents[1])
	dport := uint16(contents[2])<<8 | uint16(contents[3])
	faddr := meta.DstIs6()
	t.mu.Lock()
	t.Table.Notify(faddr, dport, func(p *pcb.PCB) {
		if p.LPort != sport {
			return
		}
		c, _ := p.Owner.(*Conn)
		if c == nil {
			return
		}
		switch kind {
		case proto.CtlMsgSize:
			hdrs := HeaderLen + 40
			if p.FAddr.IsV4Mapped() {
				hdrs = HeaderLen + 20
			}
			if mtu > 0 && mtu-hdrs < c.mss {
				c.mss = mtu - hdrs
				if c.mss < 32 {
					c.mss = 32
				}
				// Retransmit at the new size.
				c.sndNxt = c.sndUna
				c.output()
			}
		case proto.CtlUnreach, proto.CtlPortUnreach, proto.CtlTimeExceed:
			// Hard error only for nascent connections; established
			// ones ride it out (RFC 1122).
			if c.state == StateSynSent || c.state == StateSynRcvd {
				c.drop(ErrHostDown)
			}
		}
	})
	t.mu.Unlock()
	t.flush()
}
