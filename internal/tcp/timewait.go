package tcp

import (
	"fmt"

	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/proto"
	"bsd6/internal/stat"
)

// DefaultTimeWaitMax caps the compressed TIME_WAIT table when the
// stack does not override it (Options.TimeWaitMax).
const DefaultTimeWaitMax = 4096

// twSlots sizes the 2MSL timing wheel: one slot per slow tick across
// the 2MSL horizon plus the insertion slot, so an entry filed at
// cursor+2*msl expires after exactly 2*msl ticks.
const twSlots = 2*msl + 1

// twTuple is the demux key of a compressed TIME_WAIT record.
type twTuple struct {
	laddr, faddr inet.IP6
	lport, fport uint16
}

func (k twTuple) String() string {
	return fmt.Sprintf("%s.%d > %s.%d", k.faddr, k.fport, k.laddr, k.lport)
}

// twEntry is the compressed record that replaces a full Conn+PCB for
// the 2MSL quiet period: just the tuple, the two sequence cursors the
// re-ACK and recycling rules need, and the flow label for replies.
type twEntry struct {
	key            twTuple
	v6             bool
	flow           uint32
	sndNxt, rcvNxt uint32
	slot           int
	dead           bool
}

// timeWait is the 2MSL engine: a tuple map for demux plus a timing
// wheel driven by the slow timer. All methods run under the owning
// TCP's mutex; removal is lazy on the wheel side (entries are marked
// dead and swept when their slot comes up).
type timeWait struct {
	entries map[twTuple]*twEntry
	wheel   [twSlots][]*twEntry
	cursor  int
	count   int
}

func (w *timeWait) get(k twTuple) *twEntry {
	if w.entries == nil {
		return nil
	}
	return w.entries[k]
}

func (w *timeWait) removeEntry(e *twEntry) {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	delete(w.entries, e.key)
	w.count--
}

// restart re-arms the full 2MSL on a live entry (a retransmitted FIN
// restarts the quiet period).
func (w *timeWait) restart(e *twEntry) {
	if e.dead {
		return
	}
	s := w.wheel[e.slot]
	for i, x := range s {
		if x == e {
			w.wheel[e.slot] = append(s[:i], s[i+1:]...)
			break
		}
	}
	e.slot = (w.cursor + 2*msl) % twSlots
	w.wheel[e.slot] = append(w.wheel[e.slot], e)
}

// timeWaitMax resolves the effective TIME_WAIT table cap: 0 selects
// the default, negative removes the cap.
func (t *TCP) timeWaitMax() int {
	switch {
	case t.TimeWaitMax > 0:
		return t.TimeWaitMax
	case t.TimeWaitMax < 0:
		return 0
	}
	return DefaultTimeWaitMax
}

// TimeWaitLimit reports the effective cap (0 when uncapped), for the
// stack's limits snapshot.
func (t *TCP) TimeWaitLimit() int { return t.timeWaitMax() }

// TimeWaitCount returns the live 2MSL record count — the occupancy
// half of the time-wait limit surface.
func (t *TCP) TimeWaitCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tw.count
}

// TimeWaitInfo describes one compressed 2MSL record, for netstat.
type TimeWaitInfo struct {
	LAddr, FAddr inet.IP6
	LPort, FPort uint16
	V6           bool
}

// TimeWaits snapshots the TIME_WAIT table, for netstat.
func (t *TCP) TimeWaits() []TimeWaitInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimeWaitInfo, 0, t.tw.count)
	for _, e := range t.tw.entries {
		out = append(out, TimeWaitInfo{LAddr: e.key.laddr, FAddr: e.key.faddr, LPort: e.key.lport, FPort: e.key.fport, V6: e.v6})
	}
	return out
}

// twInsert files a new record, evicting the record closest to expiry
// when the cap is hit. Caller holds t.mu.
func (t *TCP) twInsert(e *twEntry) {
	w := &t.tw
	if w.entries == nil {
		w.entries = make(map[twTuple]*twEntry)
	}
	if old := w.entries[e.key]; old != nil {
		w.removeEntry(old)
	}
	if max := t.timeWaitMax(); max > 0 && w.count >= max {
		t.twEvictOldest()
	}
	e.slot = (w.cursor + 2*msl) % twSlots
	w.wheel[e.slot] = append(w.wheel[e.slot], e)
	w.entries[e.key] = e
	w.count++
}

// twEvictOldest drops the live record nearest to expiry, charging the
// typed overflow reason. Caller holds t.mu.
func (t *TCP) twEvictOldest() {
	w := &t.tw
	for i := 1; i <= twSlots; i++ {
		slot := (w.cursor + i) % twSlots
		for _, e := range w.wheel[slot] {
			if !e.dead {
				t.Stats.TimeWaitOverflow.Inc()
				t.Drops.DropNote(stat.RTCPTimeWaitOverflow, e.key.String())
				w.removeEntry(e)
				return
			}
		}
	}
}

// twTick advances the 2MSL wheel one slow tick, expiring the slot that
// comes due. Caller holds t.mu.
func (t *TCP) twTick() {
	w := &t.tw
	w.cursor = (w.cursor + 1) % twSlots
	for _, e := range w.wheel[w.cursor] {
		if !e.dead {
			w.removeEntry(e)
		}
	}
	w.wheel[w.cursor] = nil
}

// twInput applies TIME_WAIT semantics to a segment whose tuple resolved
// to a 2MSL record: RST releases the record, anything else re-ACKs and
// restarts the quiet period. Returns false when the record was recycled
// — a new SYN whose ISN is beyond the old receive space (RFC 6191) —
// and the segment should continue through normal demux to the listener.
// Caller holds t.mu.
func (t *TCP) twInput(e *twEntry, th *Header) bool {
	switch {
	case th.Flags&FlagRST != 0:
		t.tw.removeEntry(e)
	case th.Flags&(FlagSYN|FlagACK) == FlagSYN && seqGT(th.Seq, e.rcvNxt):
		t.tw.removeEntry(e)
		t.Stats.TimeWaitRecycled.Inc()
		return false
	default:
		t.twAck(e)
		t.tw.restart(e)
	}
	return true
}

// twAck answers a segment in TIME_WAIT (the retransmitted-FIN case)
// with a pure ACK rebuilt from the compressed record alone.
func (t *TCP) twAck(e *twEntry) {
	hdr := &Header{
		SPort: e.key.lport, DPort: e.key.fport,
		Seq: e.sndNxt, Ack: e.rcvNxt, Flags: FlagACK,
	}
	wire := hdr.Marshal()
	var sum uint32
	if e.v6 {
		sum = inet.PseudoHeader6(e.key.laddr, e.key.faddr, uint32(len(wire)), proto.TCP)
	} else {
		s4, _ := e.key.laddr.MappedV4()
		d4, _ := e.key.faddr.MappedV4()
		sum = inet.PseudoHeader4(s4, d4, uint16(len(wire)), proto.TCP)
	}
	sum = inet.Sum(sum, wire)
	ck := inet.Fold(sum)
	wire[16], wire[17] = byte(ck>>8), byte(ck)
	t.outbox = append(t.outbox, outSeg{v6: e.v6, src: e.key.laddr, dst: e.key.faddr, pkt: mbuf.New(wire), flow: e.flow})
}

// enterTimeWait compresses the connection into a 2MSL record: the full
// Conn+PCB leave the demux and the timer sweep, and only the twEntry
// holds the tuple until the quiet period ends. The user-visible handle
// keeps its receive buffer (undelivered data stays readable) and
// reports CLOSED once the record expires. Caller holds t.mu.
func (c *Conn) enterTimeWait() {
	t := c.t
	e := &twEntry{
		key:    twTuple{laddr: c.pcb.LAddr, faddr: c.pcb.FAddr, lport: c.pcb.LPort, fport: c.pcb.FPort},
		v6:     !c.pcb.FAddr.IsV4Mapped(),
		flow:   c.pcb.FlowInfo,
		sndNxt: c.sndNxt, rcvNxt: c.rcvNxt,
	}
	t.twInsert(e)
	c.state = StateTimeWait
	c.twe = e
	c.tRexmt, c.tPersist, c.tConn = 0, 0, 0
	c.sndBuf, c.reassQ = nil, nil
	c.ackTmplOK = false
	t.Table.Detach(c.pcb)
	delete(t.conns, c)
	c.wakeupLocked()
}
