package tcp

import (
	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/proto"
)

// Receive coalescing (a GRO analog).  A netisr worker draining a
// burst of queued frames offers each IP frame to its GRO engine
// before IP input.  Consecutive in-order data segments of the same
// TCP 4-tuple with compatible headers are merged into one
// super-segment, so the whole burst pays one IP input pass, one demux
// lookup, one lock acquisition and one header-prediction evaluation
// instead of one per wire frame.  The engine verifies each absorbed
// segment's transport checksum as it merges (marking the result
// MSumOK so tcp_input does not re-verify), and records the original
// segment boundaries in the packet header so input replays
// per-segment effects — the delayed-ACK cadence, window history —
// exactly; the wire out the other side is byte-identical to the
// unbatched path's.
//
// Flush rules (what breaks coalescing): any flag beyond ACK
// (SYN/FIN/RST/URG/PSH), TCP options, a sequence gap, a window
// change, a non-monotone ACK, a pure ACK, an IP fragment or any
// extension header, a checksum failure, differing IP headers, a
// tuple no PCB claims, or the coalesced-size ceiling.  A frame that
// breaks the rules first flushes the pending super-segment, then
// passes through untouched, so global arrival order is preserved.
//
// One engine belongs to one netisr worker and holds at most one
// pending super-segment; the worker flushes it before sleeping, so
// coalescing state never outlives a burst.

// groSeg is one original segment's boundary inside a super-segment.
type groSeg struct {
	len int    // payload bytes
	ack uint32 // the segment's acknowledgment field
}

// groMeta rides mbuf.PktHdr.GRO on a coalesced super-segment: the
// original segment boundaries, first to last.  The first entry's ack
// equals the super-segment's TCP header ack; the window and flags of
// every merged segment are identical by the merge rules.
type groMeta struct {
	segs []groSeg
}

// GRO is a per-netisr-worker receive-coalescing engine. Not safe for
// concurrent use; each worker owns one.
type GRO struct {
	t      *TCP
	max    int // coalesced payload ceiling
	worker int

	// Pending super-segment, nil when none.
	pkt     *mbuf.Mbuf
	hb      []byte // its IP+TCP header bytes (writable view into pkt)
	v4      bool
	iplen   int
	nextSeq uint32
	lastAck uint32
	dataLen int
	segs    []groSeg
}

// NewGRO creates a coalescing engine for one netisr worker.  max
// bounds the coalesced payload bytes (0 selects DefaultGROMax);
// worker indexes the sharded counters the engine bumps.
func (t *TCP) NewGRO(max, worker int) *GRO {
	if max <= 0 {
		max = DefaultGROMax
	}
	return &GRO{t: t, max: max, worker: worker}
}

// groCand is the shallow parse of a coalescing candidate.
type groCand struct {
	b        []byte // full linearized frame
	iplen    int
	src, dst inet.IP6
	seq, ack uint32
	tlen     int
}

// Push offers one IP frame on its way to IP input.  flushed, when
// non-nil, is a previously pending super-segment that must be
// dispatched first; pass, when non-nil, is the offered frame itself,
// to be dispatched next (the engine declined it).  When pass is nil
// the engine took ownership of the frame — it is now the pending
// super-segment (or was absorbed into it) and will surface from a
// later Push or Flush.
func (g *GRO) Push(pkt *mbuf.Mbuf, v4 bool) (flushed, pass *mbuf.Mbuf) {
	c, ok := g.parse(pkt, v4)
	if !ok {
		return g.Flush(), pkt
	}
	if g.pkt != nil && g.matches(&c, v4) {
		if !g.verify(&c, v4) {
			// Corrupt segment: flush the pending train and let the
			// normal input path charge and drop it, as unbatched would.
			return g.Flush(), pkt
		}
		pkt.Adj(c.iplen + HeaderLen)
		g.pkt.Cat(pkt)
		g.segs = append(g.segs, groSeg{len: c.tlen, ack: c.ack})
		g.nextSeq += uint32(c.tlen)
		g.lastAck = c.ack
		g.dataLen += c.tlen
		g.t.Stats.GROCoalesced.Inc(g.worker)
		return nil, nil
	}
	// Not mergeable into the pending train (or none pending): flush,
	// then hold this frame as the new candidate — verified now so a
	// later merge needs no second look and the eventual flush can be
	// marked MSumOK either way.
	flushed = g.Flush()
	if !g.verify(&c, v4) {
		return flushed, pkt
	}
	if g.t.Table.Lookup(c.dst, dport(c.b[c.iplen:]), c.src, sport(c.b[c.iplen:]), v4) == nil {
		// No PCB claims the tuple: merging K segments would collapse K
		// RST responses into one.  Pass through unbatched.
		return flushed, pkt
	}
	g.pkt = pkt
	g.hb = c.b
	g.v4 = v4
	g.iplen = c.iplen
	g.nextSeq = c.seq + uint32(c.tlen)
	g.lastAck = c.ack
	g.dataLen = c.tlen
	g.segs = append(make([]groSeg, 0, 8), groSeg{len: c.tlen, ack: c.ack})
	return flushed, nil
}

// Flush surfaces the pending super-segment, if any.  The caller must
// invoke it at the end of every burst so no frame waits on a quiet
// link.
func (g *GRO) Flush() *mbuf.Mbuf {
	if g.pkt == nil {
		return nil
	}
	pkt := g.pkt
	g.pkt = nil
	if len(g.segs) > 1 {
		// Patch the IP payload length for the coalesced size; the
		// super-segment's TCP checksum field is stale but MSumOK makes
		// it unread.
		if g.v4 {
			oldTot := uint16(g.hb[2])<<8 | uint16(g.hb[3])
			newTot := uint16(g.iplen + HeaderLen + g.dataLen)
			g.hb[2], g.hb[3] = byte(newTot>>8), byte(newTot)
			ck := uint16(g.hb[10])<<8 | uint16(g.hb[11])
			ck = inet.UpdateChecksum16(ck, oldTot, newTot)
			g.hb[10], g.hb[11] = byte(ck>>8), byte(ck)
		} else {
			plen := HeaderLen + g.dataLen
			g.hb[4], g.hb[5] = byte(plen>>8), byte(plen)
		}
		pkt.Hdr().GRO = &groMeta{segs: g.segs}
		g.t.Stats.GROFlushes.Inc(g.worker)
	}
	pkt.Hdr().Flags |= mbuf.MSumOK
	g.hb = nil
	g.segs = nil
	g.dataLen = 0
	return pkt
}

// parse is the shallow candidate check: a whole, option-free,
// ACK-only, data-bearing TCP segment carried directly in IPv6 (no
// extension headers) or an unfragmented option-free IPv4 header.
// Anything else — including every flag and boundary the conformance
// tests pin — is declined and travels the unbatched path.
func (g *GRO) parse(pkt *mbuf.Mbuf, v4 bool) (c groCand, ok bool) {
	iplen := 40
	if v4 {
		iplen = 20
	}
	if pkt.Len() <= iplen+HeaderLen || pkt.Len() > iplen+HeaderLen+g.max {
		return c, false
	}
	b := pkt.PullUp(pkt.Len())
	if b == nil {
		return c, false
	}
	if v4 {
		if b[0] != 0x45 { // version 4, no options
			return c, false
		}
		if int(b[2])<<8|int(b[3]) != len(b) {
			return c, false
		}
		frag := uint16(b[6])<<8 | uint16(b[7])
		if frag&0x3fff != 0 { // MF set or offset: a fragment
			return c, false
		}
		if b[9] != proto.TCP {
			return c, false
		}
		if inet.Checksum(b[:20]) != 0 {
			// Bad IP header checksum: ipv4 input must see and count it.
			return c, false
		}
		s4, d4 := inet.IP4{b[12], b[13], b[14], b[15]}, inet.IP4{b[16], b[17], b[18], b[19]}
		c.src, c.dst = inet.V4Mapped(s4), inet.V4Mapped(d4)
	} else {
		if b[0]>>4 != 6 {
			return c, false
		}
		if int(b[4])<<8|int(b[5]) != len(b)-40 {
			return c, false
		}
		if b[6] != proto.TCP { // extension headers (incl. Fragment) decline
			return c, false
		}
		copy(c.src[:], b[8:24])
		copy(c.dst[:], b[24:40])
	}
	th := b[iplen:]
	if int(th[12]>>4)*4 != HeaderLen { // TCP options present
		return c, false
	}
	if th[13] != FlagACK { // only flag-free data rides a train
		return c, false
	}
	if th[18] != 0 || th[19] != 0 { // urgent pointer without URG
		return c, false
	}
	c.b = b
	c.iplen = iplen
	c.seq = be32(th[4:])
	c.ack = be32(th[8:])
	c.tlen = len(b) - iplen - HeaderLen
	return c, true
}

// matches reports whether the candidate extends the pending train:
// same family, identical IP header (bar the length, and for IPv4 the
// ID and header checksum), same ports and window, contiguous
// sequence, monotone acknowledgment, and room under the ceiling.
func (g *GRO) matches(c *groCand, v4 bool) bool {
	if v4 != g.v4 || g.dataLen+c.tlen > g.max {
		return false
	}
	p, n := g.hb, c.b
	if v4 {
		// Compare ver/ihl+tos, frag+ttl+proto, addresses; skip total
		// length (2:4), ID (4:6) and header checksum (10:12).
		if !eq(p[0:2], n[0:2]) || !eq(p[6:10], n[6:10]) || !eq(p[12:20], n[12:20]) {
			return false
		}
	} else {
		// Compare ver/class/flow, next-header+hop-limit, addresses;
		// skip payload length (4:6).
		if !eq(p[0:4], n[0:4]) || !eq(p[6:8], n[6:8]) || !eq(p[8:40], n[8:40]) {
			return false
		}
	}
	pt, nt := p[g.iplen:], n[c.iplen:]
	if !eq(pt[0:4], nt[0:4]) { // ports
		return false
	}
	if !eq(pt[14:16], nt[14:16]) { // window change breaks the train
		return false
	}
	if c.seq != g.nextSeq {
		return false
	}
	return seqGEQ(c.ack, g.lastAck)
}

// verify checks the candidate's transport checksum, so a corrupt
// segment is never absorbed (it must travel the unbatched drop path)
// and a flushed train can skip re-verification in tcp_input.
func (g *GRO) verify(c *groCand, v4 bool) bool {
	seg := c.b[c.iplen:]
	if v4 {
		s4, _ := c.src.MappedV4()
		d4, _ := c.dst.MappedV4()
		return inet.TransportChecksum4(s4, d4, proto.TCP, seg) == 0
	}
	return inet.TransportChecksum6(c.src, c.dst, proto.TCP, seg) == 0
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func sport(th []byte) uint16 { return uint16(th[0])<<8 | uint16(th[1]) }
func dport(th []byte) uint16 { return uint16(th[2])<<8 | uint16(th[3]) }

func eq(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
