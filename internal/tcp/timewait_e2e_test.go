package tcp_test

// End-to-end TIME_WAIT behavior over the simulated network: the active
// closer's handle passes through the compressed 2MSL record and reports
// CLOSED after expiry; a new incarnation of the same port pair recycles
// the record immediately; and a churn soak drives thousands of short
// connections through ONE port pair with the TIME_WAIT table bounded
// and no mbuf leaked (poison-on-free armed).

import (
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/tcp"
)

// shortConn runs one full connection through (cport, sport): connect,
// active close from the client, and returns once the client handle has
// left ESTABLISHED teardown (TIME_WAIT or CLOSED).
func (s *tsim) shortConn(a, b *tnode, l *tcp.Conn, cport, sport uint16) {
	s.t.Helper()
	c := a.tcp.Attach(inet.AFInet6, nil)
	if err := c.Bind(inet.IP6{}, cport); err != nil {
		s.t.Fatalf("client bind %d: %v", cport, err)
	}
	if err := c.Connect(b.LinkLocal(0), sport); err != nil {
		s.t.Fatalf("connect: %v", err)
	}
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)
	c.Close()
	s.recvEOF(srv)
	srv.Close()
	s.recvEOF(c)
	s.WaitFor(s.t, "client teardown", func() bool {
		st := c.State()
		return st == tcp.StateTimeWait || st == tcp.StateClosed
	})
	s.waitState(srv, tcp.StateClosed)
}

func TestTimeWaitLifecycleE2E(t *testing.T) {
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9200)
	l.Listen(4)

	s.shortConn(a, b, l, 41000, 9200)
	if n := a.tcp.TimeWaitCount(); n != 1 {
		t.Fatalf("TimeWaitCount = %d after active close, want 1", n)
	}
	// The full Conn left the connection set; only the record remains.
	for _, c := range a.tcp.Conns() {
		if c.State() == tcp.StateTimeWait {
			t.Fatal("TIME_WAIT connection still in the live set")
		}
	}
	// Well within the quiet period: still TIME_WAIT.
	s.Run(1 * time.Second)
	if n := a.tcp.TimeWaitCount(); n != 1 {
		t.Fatalf("TimeWaitCount = %d inside 2MSL", n)
	}
	// Past 2MSL (msl=4 slow ticks → 4s): expired, handle reports CLOSED.
	s.Run(5 * time.Second)
	if n := a.tcp.TimeWaitCount(); n != 0 {
		t.Fatalf("TimeWaitCount = %d after 2MSL", n)
	}
}

func TestTimeWaitRecycledByNewIncarnation(t *testing.T) {
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9201)
	l.Listen(4)

	s.shortConn(a, b, l, 41001, 9201)
	if n := a.tcp.TimeWaitCount(); n != 1 {
		t.Fatalf("TimeWaitCount = %d", n)
	}
	// Same port pair again, immediately: Connect recycles the local
	// record instead of waiting out the 2MSL, and the new incarnation
	// establishes.
	s.shortConn(a, b, l, 41001, 9201)
	if got := a.tcp.Stats.TimeWaitRecycled.Get(); got != 1 {
		t.Fatalf("TimeWaitRecycled = %d, want 1", got)
	}
	if n := a.tcp.TimeWaitCount(); n != 1 {
		t.Fatalf("TimeWaitCount = %d after recycle, want 1", n)
	}
}

func TestTimeWaitChurnSoak(t *testing.T) {
	iters := 10_000
	if testing.Short() {
		iters = 1000
	}
	mbuf.SetPoison(true)
	defer mbuf.SetPoison(false)

	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9202)
	l.Listen(4)

	// First incarnation outside the measured window: initial neighbor
	// resolution retains one buffer that never returns to the pool.
	s.shortConn(a, b, l, 41002, 9202)
	baseline := mbuf.Outstanding()

	for i := 0; i < iters; i++ {
		s.shortConn(a, b, l, 41002, 9202)
		// One port pair ⇒ at most one live 2MSL record, ever.
		if n := a.tcp.TimeWaitCount(); n > 1 {
			t.Fatalf("iteration %d: TimeWaitCount = %d", i, n)
		}
	}
	// Every incarnation after the first had to recycle its predecessor.
	if got := a.tcp.Stats.TimeWaitRecycled.Get(); got < uint64(iters) {
		t.Fatalf("TimeWaitRecycled = %d over %d incarnations", got, iters+1)
	}
	if got := a.tcp.Stats.ConnEstab.Get(); got != uint64(iters)+1 {
		t.Fatalf("ConnEstab = %d, want %d", got, iters+1)
	}
	// No stack state accumulated: PCBs gone, listener aside, and every
	// mbuf returned to the pool (poison would have caught a re-read).
	if n := a.tcp.Table.Len(); n != 0 {
		t.Fatalf("client PCB table has %d entries after churn", n)
	}
	if n := b.tcp.Table.Len(); n != 1 {
		t.Fatalf("server PCB table has %d entries, want the listener", n)
	}
	if out := mbuf.Outstanding(); out > baseline {
		t.Fatalf("mbuf leak: outstanding %d > baseline %d", out, baseline)
	}
}
