package tcp_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/key"
	"bsd6/internal/netif"
	"bsd6/internal/route"
	"bsd6/internal/tcp"
	"bsd6/internal/testnet"
)

// The suite runs entirely on simulated time: links deliver
// synchronously, protocol timers (retransmit, persist, TIME_WAIT)
// fire when the test advances the virtual clock, and nothing sleeps.
// Every transfer is a single-goroutine pump that interleaves Send and
// Recv and steps the clock only when neither side can make progress.

// tsim is a simulation plus test handle; tnode is a node plus TCP.
type tsim struct {
	*testnet.Sim
	t *testing.T
}

type tnode struct {
	*testnet.Node
	tcp *tcp.TCP
}

func newSim(t *testing.T) *tsim {
	return &tsim{Sim: testnet.NewSim(), t: t}
}

func (s *tsim) node(name string) *tnode {
	n := &tnode{Node: s.NewNode(name)}
	n.tcp = tcp.New(n.V4, n.V6)
	n.tcp.InputPolicy = n.Sec.InputPolicy
	n.tcp.AllowError = n.Sec.AllowError
	n.tcp.Confirm = n.ICMP6.Confirm
	s.Every(tcp.FastTickInterval, func(time.Time) { n.tcp.FastTimo() })
	s.Every(tcp.SlowTickInterval, func(time.Time) { n.tcp.SlowTimo() })
	return n
}

func tcpPair(t *testing.T) (*tsim, *tnode, *tnode) {
	t.Helper()
	s := newSim(t)
	hub := s.NewHub()
	a, b := s.node("a"), s.node("b")
	a.Join(hub, testnet.MacA, 1500, inet.IP4{10, 0, 0, 1}, 24)
	b.Join(hub, testnet.MacB, 1500, inet.IP4{10, 0, 0, 2}, 24)
	return s, a, b
}

// helpers

func (s *tsim) waitState(c *tcp.Conn, want tcp.State) {
	s.t.Helper()
	s.WaitFor(s.t, "state "+want.String(), func() bool { return c.State() == want })
}

func (s *tsim) acceptOne(l *tcp.Conn) *tcp.Conn {
	s.t.Helper()
	var child *tcp.Conn
	s.WaitFor(s.t, "accept", func() bool {
		child = l.Accept()
		return child != nil
	})
	return child
}

func (s *tsim) sendAll(c *tcp.Conn, data []byte) {
	s.t.Helper()
	deadline := s.Clock.Now().Add(5 * time.Minute)
	for len(data) > 0 {
		n, err := c.Send(data)
		if err != nil {
			s.t.Fatalf("send: %v", err)
		}
		data = data[n:]
		if n == 0 {
			if s.Clock.Now().After(deadline) || !s.Clock.Step() {
				s.t.Fatal("send stalled")
			}
		}
	}
}

func (s *tsim) recvN(c *tcp.Conn, n int) []byte {
	s.t.Helper()
	out := make([]byte, 0, n)
	deadline := s.Clock.Now().Add(5 * time.Minute)
	for len(out) < n {
		chunk, err := c.Recv(n - len(out))
		if err != nil {
			s.t.Fatalf("recv after %d/%d bytes: %v", len(out), n, err)
		}
		if chunk == nil {
			if s.Clock.Now().After(deadline) || !s.Clock.Step() {
				s.t.Fatalf("recv stalled at %d/%d", len(out), n)
			}
			continue
		}
		out = append(out, chunk...)
	}
	return out
}

func (s *tsim) recvEOF(c *tcp.Conn) {
	s.t.Helper()
	s.WaitFor(s.t, "EOF", func() bool {
		b, err := c.Recv(64)
		return err != nil && len(b) == 0
	})
}

// transfer pumps send bytes from c while draining srv in chunk-sized
// reads until want bytes have arrived, advancing simulated time only
// when both directions stall (full buffers, lost segments waiting on
// the retransmit timer, a closed window waiting on persist probes).
func (s *tsim) transfer(c, srv *tcp.Conn, send []byte, want, chunk int) []byte {
	s.t.Helper()
	rest := send
	got := make([]byte, 0, want)
	deadline := s.Clock.Now().Add(10 * time.Minute)
	for len(got) < want {
		progress := false
		for len(rest) > 0 {
			n, err := c.Send(rest)
			if err != nil {
				s.t.Fatalf("send: %v", err)
			}
			rest = rest[n:]
			if n == 0 {
				break
			}
			progress = true
		}
		b, err := srv.Recv(chunk)
		if err != nil {
			s.t.Fatalf("recv after %d/%d bytes: %v", len(got), want, err)
		}
		if len(b) > 0 {
			got = append(got, b...)
			progress = true
		}
		if !progress {
			if s.Clock.Now().After(deadline) || !s.Clock.Step() {
				s.t.Fatalf("transfer stalled at %d/%d", len(got), want)
			}
		}
	}
	return got
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

//
// Tests.
//

func TestHandshakeAndEcho6(t *testing.T) {
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, "listener")
	if err := l.Bind(inet.IP6{}, 8080); err != nil {
		t.Fatal(err)
	}
	if err := l.Listen(4); err != nil {
		t.Fatal(err)
	}
	c := a.tcp.Attach(inet.AFInet6, "client")
	if err := c.Connect(b.LinkLocal(0), 8080); err != nil {
		t.Fatal(err)
	}
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)
	s.waitState(srv, tcp.StateEstablished)
	if !c.PCB().IsIPv6() {
		t.Fatal("client PCB not IPv6")
	}

	s.sendAll(c, []byte("GET / telnet-ish\r\n"))
	got := s.recvN(srv, 18)
	if string(got) != "GET / telnet-ish\r\n" {
		t.Fatalf("server got %q", got)
	}
	s.sendAll(srv, []byte("OK"))
	if string(s.recvN(c, 2)) != "OK" {
		t.Fatal("client reply")
	}
	if a.tcp.Stats.ConnEstab.Get() == 0 || b.tcp.Stats.ConnAccepts.Get() == 0 {
		t.Fatal("stats")
	}
}

func TestTCPOverIPv4(t *testing.T) {
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet, nil)
	l.Bind(inet.IP6{}, 8081)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet, nil)
	if err := c.Connect(inet.V4Mapped(inet.IP4{10, 0, 0, 2}), 8081); err != nil {
		t.Fatal(err)
	}
	s.waitState(c, tcp.StateEstablished)
	if c.PCB().IsIPv6() {
		t.Fatal("v4 session flagged IPv6")
	}
	srv := s.acceptOne(l)
	s.sendAll(c, []byte("ipv4 data"))
	if string(s.recvN(srv, 9)) != "ipv4 data" {
		t.Fatal("payload")
	}
}

func TestV4ConnectionToV6Listener(t *testing.T) {
	// A PF_INET6 listener accepts an IPv4 connection (§5.1-§5.2).
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 8082)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet, nil)
	if err := c.Connect(inet.V4Mapped(inet.IP4{10, 0, 0, 2}), 8082); err != nil {
		t.Fatal(err)
	}
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)
	if srv.PCB().IsIPv6() {
		t.Fatal("child session should be IPv4")
	}
	if !srv.PCB().FAddr.IsV4Mapped() {
		t.Fatal("foreign address not mapped")
	}
	s.sendAll(c, []byte("crossing the families"))
	s.recvN(srv, len("crossing the families"))
}

func TestBulkTransfer(t *testing.T) {
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9000)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9000)
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)

	data := pattern(300_000)
	got := s.transfer(c, srv, data, len(data), 32768)
	if !bytes.Equal(got, data) {
		t.Fatal("bulk data corrupted")
	}
	if a.tcp.Stats.SndByte.Get() < uint64(len(data)) {
		t.Fatal("SndByte")
	}
}

func TestCloseSequence(t *testing.T) {
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9001)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9001)
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)

	s.sendAll(c, []byte("last words"))
	c.Close()
	// Server sees the data then EOF.
	if string(s.recvN(srv, 10)) != "last words" {
		t.Fatal("data before FIN")
	}
	s.recvEOF(srv)
	s.waitState(srv, tcp.StateCloseWait)
	srv.Close()
	s.recvEOF(c)
	// Active closer passes through TIME_WAIT and expires to CLOSED.
	s.waitState(c, tcp.StateClosed)
	s.waitState(srv, tcp.StateClosed)
}

func TestSimultaneousClose(t *testing.T) {
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9002)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9002)
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)
	c.Close()
	srv.Close()
	s.waitState(c, tcp.StateClosed)
	s.waitState(srv, tcp.StateClosed)
}

func TestConnectionRefused(t *testing.T) {
	s, a, b := tcpPair(t)
	_ = b // no listener
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 4999)
	s.WaitFor(t, "refusal", func() bool { return c.Err() != nil })
	if !errors.Is(c.Err(), tcp.ErrRefused) {
		t.Fatalf("err = %v", c.Err())
	}
	if b.tcp.Stats.RstOut.Get() == 0 {
		t.Fatal("no RST sent")
	}
}

func TestAbortSendsRST(t *testing.T) {
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9003)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9003)
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)
	c.Abort()
	s.WaitFor(t, "reset at server", func() bool {
		return errors.Is(srv.Err(), tcp.ErrReset)
	})
}

func TestRetransmissionThroughLoss(t *testing.T) {
	s := newSim(t)
	hub := s.NewHub()
	a, b := s.node("a"), s.node("b")
	a.Join(hub, testnet.MacA, 1500, inet.IP4{}, 0)
	b.Join(hub, testnet.MacB, 1500, inet.IP4{}, 0)

	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9004)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9004)
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)

	// Now impair the link: 20% loss both ways, from a fixed seed.
	hub.SetSeed(1234)
	hub.SetFaults(netif.Faults{Loss: 0.20})
	data := pattern(60_000)
	got := s.transfer(c, srv, data, len(data), 32768)
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted through loss")
	}
	if a.tcp.Stats.SndRexmit.Get() == 0 {
		t.Fatal("no retransmissions under 20% loss?")
	}
}

func TestFlowControlSlowReader(t *testing.T) {
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.RcvBufMax = 2048 // children inherit the small receive buffer
	l.Bind(inet.IP6{}, 9005)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9005)
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)

	// Drain in 512-byte sips against a 2KB receive buffer: the window
	// must throttle the sender without loss or corruption.
	data := pattern(30_000)
	got := s.transfer(c, srv, data, len(data), 512)
	if !bytes.Equal(got, data) {
		t.Fatal("slow-reader data corrupted")
	}
}

func TestPMTUDiscoveryShrinksMSS(t *testing.T) {
	// The narrow link sits in the MIDDLE so neither endpoint's MSS
	// option reveals it: A --1500-- R1 --576-- R2 --1500-- B.  TCP
	// segments near 1500 first, gets Packet Too Big from R1, lowers
	// the MSS from the host route's path MTU, and completes (§2.2).
	s := newSim(t)
	hub1, hub2, hub3 := s.NewHub(), s.NewHub(), s.NewHub()
	a, r1, r2, b := s.node("a"), s.node("r1"), s.node("r2"), s.node("b")
	aif := a.Join(hub1, testnet.MacA, 1500, inet.IP4{}, 0)
	r1.Join(hub1, testnet.MacR, 1500, inet.IP4{}, 0)
	r1.Join(hub2, testnet.MacS, 576, inet.IP4{}, 0)
	r2.Join(hub2, inet.LinkAddr{2, 0, 0, 0, 0, 3}, 576, inet.IP4{}, 0)
	r2.Join(hub3, inet.LinkAddr{2, 0, 0, 0, 0, 4}, 1500, inet.IP4{}, 0)
	bif := b.Join(hub3, testnet.MacB, 1500, inet.IP4{}, 0)
	r1.V6.Forwarding = true
	r2.V6.Forwarding = true

	a.AddGlobal6(aif, testnet.IP6(t, "2001:db8:1::a"), 64)
	r1.AddGlobal6(r1.Ifps[0], testnet.IP6(t, "2001:db8:1::f"), 64)
	r1.AddGlobal6(r1.Ifps[1], testnet.IP6(t, "2001:db8:2::e"), 64)
	r2.AddGlobal6(r2.Ifps[0], testnet.IP6(t, "2001:db8:2::f"), 64)
	r2.AddGlobal6(r2.Ifps[1], testnet.IP6(t, "2001:db8:3::f"), 64)
	b.AddGlobal6(bif, testnet.IP6(t, "2001:db8:3::b"), 64)
	a.DefaultVia6(testnet.IP6(t, "2001:db8:1::f"), aif.Name)
	r1.DefaultVia6(testnet.IP6(t, "2001:db8:2::f"), r1.Ifps[1].Name)
	r2.DefaultVia6(testnet.IP6(t, "2001:db8:2::e"), r2.Ifps[0].Name)
	b.DefaultVia6(testnet.IP6(t, "2001:db8:3::f"), bif.Name)

	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9006)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(testnet.IP6(t, "2001:db8:3::b"), 9006)
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)
	if c.MSS() <= 576 {
		t.Fatalf("initial MSS already small: %d", c.MSS())
	}

	data := pattern(20_000)
	got := s.transfer(c, srv, data, len(data), 32768)
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted across narrow link")
	}
	if c.MSS() > 576-60 {
		t.Fatalf("MSS did not shrink: %d", c.MSS())
	}
	if a.ICMP6.Stats.PmtuUpdates.Get() == 0 {
		t.Fatal("no PMTU update recorded")
	}
	// The router never fragmented (§2.2).
	if r1.V6.Stats.OutFrags.Get() != 0 || r2.V6.Stats.OutFrags.Get() != 0 {
		t.Fatal("IPv6 router fragmented TCP traffic")
	}
}

func TestSecuredTCPSession(t *testing.T) {
	// §6.3's telnet scenario: both sides require authentication; the
	// session works once associations exist.
	s, a, b := tcpPair(t)
	authKey := []byte("0123456789abcdef")
	aLL, bLL := a.LinkLocal(0), b.LinkLocal(0)
	for _, n := range []*tnode{a, b} {
		n.Keys.Add(&key.SA{SPI: 0x70, Src: aLL, Dst: bLL, Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
		n.Keys.Add(&key.SA{SPI: 0x71, Src: bLL, Dst: aLL, Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
		n.Sec.SetSystemPolicy(ipsec.SockOpts{Auth: ipsec.LevelRequire})
	}
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 23)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(bLL, 23)
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)
	s.sendAll(c, []byte("login: root\r\n"))
	s.recvN(srv, 13)
	if b.Sec.Stats.InAuthOK.Get() == 0 {
		t.Fatal("segments not authenticated")
	}
}

func TestUnauthenticatedConnSilentlyFails(t *testing.T) {
	// §5.3: under require-authentication, an unauthenticated TCP open
	// "will silently fail as if the destination system were not
	// reachable at all" — SYNs dropped, no RST.
	s, a, b := tcpPair(t)
	b.Sec.SetSystemPolicy(ipsec.SockOpts{Auth: ipsec.LevelRequire})
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 23)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 23)
	s.WaitFor(t, "policy drops", func() bool { return b.tcp.Stats.PolicyDrops.Get() >= 1 })
	if c.State() == tcp.StateEstablished {
		t.Fatal("cleartext connection established")
	}
	if b.tcp.Stats.RstOut.Get() != 0 {
		t.Fatal("RST sent; failure is not silent")
	}
	if errors.Is(c.Err(), tcp.ErrRefused) {
		t.Fatal("refusal delivered; should look like an unreachable host")
	}
}

func TestReachabilityConfirmation(t *testing.T) {
	// §4.3 footnote: TCP confirms neighbor reachability without extra
	// ND traffic.
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9007)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	bLL := b.LinkLocal(0)
	c.Connect(bLL, 9007)
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)

	// Age the neighbor entry to stale, then push data: the ACKs should
	// re-confirm reachability without new solicits.
	a.ICMP6.FastTimo(s.Clock.Now().Add(time.Hour))
	nsBefore := a.ICMP6.Stats.OutNS.Get()
	s.sendAll(c, []byte("keep fresh"))
	s.recvN(srv, 10)
	s.WaitFor(t, "reachable via TCP confirm", func() bool {
		st, ok := a.ICMP6.NeighborState(bLL)
		return ok && st.String() == "reachable"
	})
	if a.ICMP6.Stats.OutNS.Get() > nsBefore+1 {
		t.Fatalf("ND probes sent despite TCP confirmation: %d", a.ICMP6.Stats.OutNS.Get()-nsBefore)
	}
}

func TestListenBacklogOverflow(t *testing.T) {
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9008)
	l.Listen(2)
	var conns []*tcp.Conn
	for i := 0; i < 4; i++ {
		c := a.tcp.Attach(inet.AFInet6, nil)
		c.Connect(b.LinkLocal(0), 9008)
		conns = append(conns, c)
	}
	// At least the backlog's worth establish; accept drains them.
	got := 0
	for i := 0; i < 16 && got < 2; i++ {
		if l.Accept() != nil {
			got++
		} else if !s.Clock.Step() {
			break
		}
	}
	if got < 2 {
		t.Fatalf("accepted %d", got)
	}
	_ = conns
}

func TestBindConflicts(t *testing.T) {
	_, a, _ := tcpPair(t)
	l1 := a.tcp.Attach(inet.AFInet6, nil)
	if err := l1.Bind(inet.IP6{}, 7777); err != nil {
		t.Fatal(err)
	}
	l2 := a.tcp.Attach(inet.AFInet6, nil)
	if err := l2.Bind(inet.IP6{}, 7777); err == nil {
		t.Fatal("duplicate bind allowed")
	}
}

func TestRouteBasedMSS(t *testing.T) {
	// MSS derives from the route/interface MTU (§2.2's PMTU storage).
	_, a, b := tcpPair(t)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9999)
	if got := c.MSS(); got != 1500-40-20 {
		t.Fatalf("MSS = %d, want %d", got, 1500-40-20)
	}
	// Lower the destination's host-route MTU: a new connection sees a
	// smaller MSS.
	bLL := b.LinkLocal(0)
	rt, ok := a.RT.Lookup(inet.AFInet6, bLL[:])
	if !ok {
		t.Fatal("no host route")
	}
	a.RT.Change(rt, func(e *route.Entry) { e.MTU = 1280 })
	c2 := a.tcp.Attach(inet.AFInet6, nil)
	c2.Connect(bLL, 9999)
	if got := c2.MSS(); got != 1280-60 {
		t.Fatalf("MSS after PMTU = %d", got)
	}
}

func TestHalfCloseDataFlow(t *testing.T) {
	// After receiving the peer's FIN (CLOSE_WAIT) a side can still
	// send; the other side in FIN_WAIT_2 still receives.
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9100)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9100)
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)

	c.Close() // client half-closes
	s.recvEOF(srv)
	s.waitState(srv, tcp.StateCloseWait)
	s.waitState(c, tcp.StateFinWait2)

	// Server keeps talking into the half-open direction.
	s.sendAll(srv, []byte("still talking"))
	if string(s.recvN(c, 13)) != "still talking" {
		t.Fatal("half-close data lost")
	}
	srv.Close()
	s.waitState(srv, tcp.StateClosed)
	s.waitState(c, tcp.StateClosed)
}

func TestZeroWindowPersist(t *testing.T) {
	// A receiver that never reads closes its window; the sender's
	// persist timer probes until space opens, and the transfer then
	// completes without loss.
	s, a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.RcvBufMax = 1024
	l.Bind(inet.IP6{}, 9101)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9101)
	s.waitState(c, tcp.StateEstablished)
	srv := s.acceptOne(l)

	// Push until the send buffer jams against the closed window.
	data := pattern(6000)
	rest := data
	for len(rest) > 0 {
		n, err := c.Send(rest)
		if err != nil {
			t.Fatal(err)
		}
		rest = rest[n:]
		if n == 0 {
			break
		}
	}
	rcv, _ := srv.Buffered()
	if rcv < 1024-tcp.HeaderLen {
		t.Fatalf("window did not stall: %d buffered", rcv)
	}
	// Let the persist machinery probe the closed window for a while.
	s.Run(10 * time.Second)
	got := s.transfer(c, srv, rest, len(data), 4096)
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted through zero-window stalls")
	}
}
