package tcp_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/key"
	"bsd6/internal/netif"
	"bsd6/internal/route"
	"bsd6/internal/tcp"
	"bsd6/internal/testnet"
)

// tnode is a testnet node plus TCP and a timer driver.
type tnode struct {
	*testnet.Node
	tcp  *tcp.TCP
	stop chan struct{}
	wg   sync.WaitGroup
}

func newTNode(t *testing.T, name string) *tnode {
	n := &tnode{Node: testnet.NewNode(name), stop: make(chan struct{})}
	n.tcp = tcp.New(n.V4, n.V6)
	n.tcp.InputPolicy = n.Sec.InputPolicy
	n.tcp.AllowError = n.Sec.AllowError
	n.tcp.Confirm = n.ICMP6.Confirm
	// Accelerated protocol timers so retransmission tests finish fast.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		slow := time.NewTicker(10 * time.Millisecond)
		fast := time.NewTicker(5 * time.Millisecond)
		defer slow.Stop()
		defer fast.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-slow.C:
				n.tcp.SlowTimo()
			case <-fast.C:
				n.tcp.FastTimo()
			}
		}
	}()
	t.Cleanup(func() { close(n.stop); n.wg.Wait() })
	return n
}

func tcpPair(t *testing.T) (*tnode, *tnode) {
	t.Helper()
	hub := netif.NewHub()
	a, b := newTNode(t, "a"), newTNode(t, "b")
	a.Join(hub, testnet.MacA, 1500, inet.IP4{10, 0, 0, 1}, 24)
	b.Join(hub, testnet.MacB, 1500, inet.IP4{10, 0, 0, 2}, 24)
	return a, b
}

// helpers

func waitState(t *testing.T, c *tcp.Conn, want tcp.State) {
	t.Helper()
	testnet.WaitFor(t, "state "+want.String(), func() bool { return c.State() == want })
}

func acceptOne(t *testing.T, l *tcp.Conn) *tcp.Conn {
	t.Helper()
	var child *tcp.Conn
	testnet.WaitFor(t, "accept", func() bool {
		child = l.Accept()
		return child != nil
	})
	return child
}

func sendAll(t *testing.T, c *tcp.Conn, data []byte) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for len(data) > 0 {
		n, err := c.Send(data)
		if err != nil {
			t.Fatalf("send: %v", err)
		}
		data = data[n:]
		if n == 0 {
			if time.Now().After(deadline) {
				t.Fatal("send stalled")
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func recvN(t *testing.T, c *tcp.Conn, n int) []byte {
	t.Helper()
	out := make([]byte, 0, n)
	deadline := time.Now().Add(20 * time.Second)
	for len(out) < n {
		chunk, err := c.Recv(n - len(out))
		if err != nil {
			t.Fatalf("recv after %d/%d bytes: %v", len(out), n, err)
		}
		if chunk == nil {
			if time.Now().After(deadline) {
				t.Fatalf("recv stalled at %d/%d", len(out), n)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		out = append(out, chunk...)
	}
	return out
}

func recvEOF(t *testing.T, c *tcp.Conn) {
	t.Helper()
	testnet.WaitFor(t, "EOF", func() bool {
		b, err := c.Recv(64)
		return err != nil && len(b) == 0
	})
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

//
// Tests.
//

func TestHandshakeAndEcho6(t *testing.T) {
	a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, "listener")
	if err := l.Bind(inet.IP6{}, 8080); err != nil {
		t.Fatal(err)
	}
	if err := l.Listen(4); err != nil {
		t.Fatal(err)
	}
	c := a.tcp.Attach(inet.AFInet6, "client")
	if err := c.Connect(b.LinkLocal(0), 8080); err != nil {
		t.Fatal(err)
	}
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)
	waitState(t, srv, tcp.StateEstablished)
	if !c.PCB().IsIPv6() {
		t.Fatal("client PCB not IPv6")
	}

	sendAll(t, c, []byte("GET / telnet-ish\r\n"))
	got := recvN(t, srv, 18)
	if string(got) != "GET / telnet-ish\r\n" {
		t.Fatalf("server got %q", got)
	}
	sendAll(t, srv, []byte("OK"))
	if string(recvN(t, c, 2)) != "OK" {
		t.Fatal("client reply")
	}
	if a.tcp.Stats.ConnEstab.Get() == 0 || b.tcp.Stats.ConnAccepts.Get() == 0 {
		t.Fatal("stats")
	}
}

func TestTCPOverIPv4(t *testing.T) {
	a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet, nil)
	l.Bind(inet.IP6{}, 8081)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet, nil)
	if err := c.Connect(inet.V4Mapped(inet.IP4{10, 0, 0, 2}), 8081); err != nil {
		t.Fatal(err)
	}
	waitState(t, c, tcp.StateEstablished)
	if c.PCB().IsIPv6() {
		t.Fatal("v4 session flagged IPv6")
	}
	srv := acceptOne(t, l)
	sendAll(t, c, []byte("ipv4 data"))
	if string(recvN(t, srv, 9)) != "ipv4 data" {
		t.Fatal("payload")
	}
}

func TestV4ConnectionToV6Listener(t *testing.T) {
	// A PF_INET6 listener accepts an IPv4 connection (§5.1-§5.2).
	a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 8082)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet, nil)
	if err := c.Connect(inet.V4Mapped(inet.IP4{10, 0, 0, 2}), 8082); err != nil {
		t.Fatal(err)
	}
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)
	if srv.PCB().IsIPv6() {
		t.Fatal("child session should be IPv4")
	}
	if !srv.PCB().FAddr.IsV4Mapped() {
		t.Fatal("foreign address not mapped")
	}
	sendAll(t, c, []byte("crossing the families"))
	recvN(t, srv, len("crossing the families"))
}

func TestBulkTransfer(t *testing.T) {
	a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9000)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9000)
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)

	data := pattern(300_000)
	done := make(chan []byte)
	go func() {
		done <- recvN(t, srv, len(data))
	}()
	sendAll(t, c, data)
	got := <-done
	if !bytes.Equal(got, data) {
		t.Fatal("bulk data corrupted")
	}
	if a.tcp.Stats.SndByte.Get() < uint64(len(data)) {
		t.Fatal("SndByte")
	}
}

func TestCloseSequence(t *testing.T) {
	a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9001)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9001)
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)

	sendAll(t, c, []byte("last words"))
	c.Close()
	// Server sees the data then EOF.
	if string(recvN(t, srv, 10)) != "last words" {
		t.Fatal("data before FIN")
	}
	recvEOF(t, srv)
	waitState(t, srv, tcp.StateCloseWait)
	srv.Close()
	recvEOF(t, c)
	// Active closer passes through TIME_WAIT and expires to CLOSED.
	waitState(t, c, tcp.StateClosed)
	waitState(t, srv, tcp.StateClosed)
}

func TestSimultaneousClose(t *testing.T) {
	a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9002)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9002)
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)
	c.Close()
	srv.Close()
	waitState(t, c, tcp.StateClosed)
	waitState(t, srv, tcp.StateClosed)
}

func TestConnectionRefused(t *testing.T) {
	a, b := tcpPair(t)
	_ = b // no listener
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 4999)
	testnet.WaitFor(t, "refusal", func() bool { return c.Err() != nil })
	if !errors.Is(c.Err(), tcp.ErrRefused) {
		t.Fatalf("err = %v", c.Err())
	}
	if b.tcp.Stats.RstOut.Get() == 0 {
		t.Fatal("no RST sent")
	}
}

func TestAbortSendsRST(t *testing.T) {
	a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9003)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9003)
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)
	c.Abort()
	testnet.WaitFor(t, "reset at server", func() bool {
		return errors.Is(srv.Err(), tcp.ErrReset)
	})
}

func TestRetransmissionThroughLoss(t *testing.T) {
	hub := netif.NewHub()
	a, b := newTNode(t, "a"), newTNode(t, "b")
	a.Join(hub, testnet.MacA, 1500, inet.IP4{}, 0)
	b.Join(hub, testnet.MacB, 1500, inet.IP4{}, 0)

	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9004)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9004)
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)

	// Now impair the link: 20% loss both ways.
	hub.SetImpairments(0, 0.20, 1234)
	data := pattern(60_000)
	done := make(chan []byte)
	go func() { done <- recvN(t, srv, len(data)) }()
	sendAll(t, c, data)
	got := <-done
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted through loss")
	}
	if a.tcp.Stats.SndRexmit.Get() == 0 {
		t.Fatal("no retransmissions under 20% loss?")
	}
}

func TestFlowControlSlowReader(t *testing.T) {
	a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.RcvBufMax = 2048 // children inherit the small receive buffer
	l.Bind(inet.IP6{}, 9005)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9005)
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)

	data := pattern(30_000)
	sendErr := make(chan error, 1)
	go func() {
		rest := data
		for len(rest) > 0 {
			n, err := c.Send(rest)
			if err != nil {
				sendErr <- err
				return
			}
			rest = rest[n:]
			if n == 0 {
				time.Sleep(time.Millisecond)
			}
		}
		sendErr <- nil
	}()
	// Drain slowly; flow control must prevent loss or corruption.
	got := make([]byte, 0, len(data))
	for len(got) < len(data) {
		chunk, err := srv.Recv(512)
		if err != nil {
			t.Fatal(err)
		}
		if chunk == nil {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		got = append(got, chunk...)
		time.Sleep(time.Millisecond)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("slow-reader data corrupted")
	}
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
}

func TestPMTUDiscoveryShrinksMSS(t *testing.T) {
	// The narrow link sits in the MIDDLE so neither endpoint's MSS
	// option reveals it: A --1500-- R1 --576-- R2 --1500-- B.  TCP
	// segments near 1500 first, gets Packet Too Big from R1, lowers
	// the MSS from the host route's path MTU, and completes (§2.2).
	hub1, hub2, hub3 := netif.NewHub(), netif.NewHub(), netif.NewHub()
	a, r1, r2, b := newTNode(t, "a"), newTNode(t, "r1"), newTNode(t, "r2"), newTNode(t, "b")
	aif := a.Join(hub1, testnet.MacA, 1500, inet.IP4{}, 0)
	r1.Join(hub1, testnet.MacR, 1500, inet.IP4{}, 0)
	r1.Join(hub2, testnet.MacS, 576, inet.IP4{}, 0)
	r2.Join(hub2, inet.LinkAddr{2, 0, 0, 0, 0, 3}, 576, inet.IP4{}, 0)
	r2.Join(hub3, inet.LinkAddr{2, 0, 0, 0, 0, 4}, 1500, inet.IP4{}, 0)
	bif := b.Join(hub3, testnet.MacB, 1500, inet.IP4{}, 0)
	r1.V6.Forwarding = true
	r2.V6.Forwarding = true

	a.AddGlobal6(aif, testnet.IP6(t, "2001:db8:1::a"), 64)
	r1.AddGlobal6(r1.Ifps[0], testnet.IP6(t, "2001:db8:1::f"), 64)
	r1.AddGlobal6(r1.Ifps[1], testnet.IP6(t, "2001:db8:2::e"), 64)
	r2.AddGlobal6(r2.Ifps[0], testnet.IP6(t, "2001:db8:2::f"), 64)
	r2.AddGlobal6(r2.Ifps[1], testnet.IP6(t, "2001:db8:3::f"), 64)
	b.AddGlobal6(bif, testnet.IP6(t, "2001:db8:3::b"), 64)
	a.DefaultVia6(testnet.IP6(t, "2001:db8:1::f"), aif.Name)
	r1.DefaultVia6(testnet.IP6(t, "2001:db8:2::f"), r1.Ifps[1].Name)
	r2.DefaultVia6(testnet.IP6(t, "2001:db8:2::e"), r2.Ifps[0].Name)
	b.DefaultVia6(testnet.IP6(t, "2001:db8:3::f"), bif.Name)

	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9006)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(testnet.IP6(t, "2001:db8:3::b"), 9006)
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)
	if c.MSS() <= 576 {
		t.Fatalf("initial MSS already small: %d", c.MSS())
	}

	data := pattern(20_000)
	done := make(chan []byte)
	go func() { done <- recvN(t, srv, len(data)) }()
	sendAll(t, c, data)
	got := <-done
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted across narrow link")
	}
	if c.MSS() > 576-60 {
		t.Fatalf("MSS did not shrink: %d", c.MSS())
	}
	if a.ICMP6.Stats.PmtuUpdates.Get() == 0 {
		t.Fatal("no PMTU update recorded")
	}
	// The router never fragmented (§2.2).
	if r1.V6.Stats.OutFrags.Get() != 0 || r2.V6.Stats.OutFrags.Get() != 0 {
		t.Fatal("IPv6 router fragmented TCP traffic")
	}
}

func TestSecuredTCPSession(t *testing.T) {
	// §6.3's telnet scenario: both sides require authentication; the
	// session works once associations exist.
	a, b := tcpPair(t)
	authKey := []byte("0123456789abcdef")
	aLL, bLL := a.LinkLocal(0), b.LinkLocal(0)
	for _, n := range []*tnode{a, b} {
		n.Keys.Add(&key.SA{SPI: 0x70, Src: aLL, Dst: bLL, Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
		n.Keys.Add(&key.SA{SPI: 0x71, Src: bLL, Dst: aLL, Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
		n.Sec.SetSystemPolicy(ipsec.SockOpts{Auth: ipsec.LevelRequire})
	}
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 23)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(bLL, 23)
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)
	sendAll(t, c, []byte("login: root\r\n"))
	recvN(t, srv, 13)
	if b.Sec.Stats.InAuthOK.Get() == 0 {
		t.Fatal("segments not authenticated")
	}
}

func TestUnauthenticatedConnSilentlyFails(t *testing.T) {
	// §5.3: under require-authentication, an unauthenticated TCP open
	// "will silently fail as if the destination system were not
	// reachable at all" — SYNs dropped, no RST.
	a, b := tcpPair(t)
	b.Sec.SetSystemPolicy(ipsec.SockOpts{Auth: ipsec.LevelRequire})
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 23)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 23)
	testnet.WaitFor(t, "policy drops", func() bool { return b.tcp.Stats.PolicyDrops.Get() >= 1 })
	if c.State() == tcp.StateEstablished {
		t.Fatal("cleartext connection established")
	}
	if b.tcp.Stats.RstOut.Get() != 0 {
		t.Fatal("RST sent; failure is not silent")
	}
	if errors.Is(c.Err(), tcp.ErrRefused) {
		t.Fatal("refusal delivered; should look like an unreachable host")
	}
}

func TestReachabilityConfirmation(t *testing.T) {
	// §4.3 footnote: TCP confirms neighbor reachability without extra
	// ND traffic.
	a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9007)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	bLL := b.LinkLocal(0)
	c.Connect(bLL, 9007)
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)

	// Age the neighbor entry to stale, then push data: the ACKs should
	// re-confirm reachability without new solicits.
	a.ICMP6.FastTimo(time.Now().Add(time.Hour))
	nsBefore := a.ICMP6.Stats.OutNS.Get()
	sendAll(t, c, []byte("keep fresh"))
	recvN(t, srv, 10)
	testnet.WaitFor(t, "reachable via TCP confirm", func() bool {
		st, ok := a.ICMP6.NeighborState(bLL)
		return ok && st.String() == "reachable"
	})
	if a.ICMP6.Stats.OutNS.Get() > nsBefore+1 {
		t.Fatalf("ND probes sent despite TCP confirmation: %d", a.ICMP6.Stats.OutNS.Get()-nsBefore)
	}
}

func TestListenBacklogOverflow(t *testing.T) {
	a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9008)
	l.Listen(2)
	var conns []*tcp.Conn
	for i := 0; i < 4; i++ {
		c := a.tcp.Attach(inet.AFInet6, nil)
		c.Connect(b.LinkLocal(0), 9008)
		conns = append(conns, c)
	}
	// At least the backlog's worth establish; accept drains them.
	got := 0
	deadline := time.Now().Add(2 * time.Second)
	for got < 2 && time.Now().Before(deadline) {
		if l.Accept() != nil {
			got++
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	if got < 2 {
		t.Fatalf("accepted %d", got)
	}
	_ = conns
}

func TestBindConflicts(t *testing.T) {
	a, _ := tcpPair(t)
	l1 := a.tcp.Attach(inet.AFInet6, nil)
	if err := l1.Bind(inet.IP6{}, 7777); err != nil {
		t.Fatal(err)
	}
	l2 := a.tcp.Attach(inet.AFInet6, nil)
	if err := l2.Bind(inet.IP6{}, 7777); err == nil {
		t.Fatal("duplicate bind allowed")
	}
}

func TestRouteBasedMSS(t *testing.T) {
	// MSS derives from the route/interface MTU (§2.2's PMTU storage).
	a, b := tcpPair(t)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9999)
	if got := c.MSS(); got != 1500-40-20 {
		t.Fatalf("MSS = %d, want %d", got, 1500-40-20)
	}
	// Lower the destination's host-route MTU: a new connection sees a
	// smaller MSS.
	bLL := b.LinkLocal(0)
	rt, ok := a.RT.Lookup(inet.AFInet6, bLL[:])
	if !ok {
		t.Fatal("no host route")
	}
	a.RT.Change(rt, func(e *route.Entry) { e.MTU = 1280 })
	c2 := a.tcp.Attach(inet.AFInet6, nil)
	c2.Connect(bLL, 9999)
	if got := c2.MSS(); got != 1280-60 {
		t.Fatalf("MSS after PMTU = %d", got)
	}
}

func TestHalfCloseDataFlow(t *testing.T) {
	// After receiving the peer's FIN (CLOSE_WAIT) a side can still
	// send; the other side in FIN_WAIT_2 still receives.
	a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.Bind(inet.IP6{}, 9100)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9100)
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)

	c.Close() // client half-closes
	recvEOF(t, srv)
	waitState(t, srv, tcp.StateCloseWait)
	waitState(t, c, tcp.StateFinWait2)

	// Server keeps talking into the half-open direction.
	sendAll(t, srv, []byte("still talking"))
	if string(recvN(t, c, 13)) != "still talking" {
		t.Fatal("half-close data lost")
	}
	srv.Close()
	waitState(t, srv, tcp.StateClosed)
	waitState(t, c, tcp.StateClosed)
}

func TestZeroWindowPersist(t *testing.T) {
	// A receiver that never reads closes its window; the sender's
	// persist timer probes until space opens, and the transfer then
	// completes without loss.
	a, b := tcpPair(t)
	l := b.tcp.Attach(inet.AFInet6, nil)
	l.RcvBufMax = 1024
	l.Bind(inet.IP6{}, 9101)
	l.Listen(1)
	c := a.tcp.Attach(inet.AFInet6, nil)
	c.Connect(b.LinkLocal(0), 9101)
	waitState(t, c, tcp.StateEstablished)
	srv := acceptOne(t, l)

	data := pattern(6000)
	go func() {
		rest := data
		for len(rest) > 0 {
			n, err := c.Send(rest)
			if err != nil {
				return
			}
			rest = rest[n:]
			if n == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Let the window fill and the persist machinery engage.
	testnet.WaitFor(t, "window stall", func() bool {
		rcv, _ := srv.Buffered()
		return rcv >= 1024-tcp.HeaderLen
	})
	time.Sleep(50 * time.Millisecond) // a few persist ticks at 10ms slowtimo
	got := recvN(t, srv, len(data))
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted through zero-window stalls")
	}
}
