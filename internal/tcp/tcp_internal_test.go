package tcp

import (
	"bytes"
	"testing"
	"testing/quick"

	"bsd6/internal/inet"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := &Header{
		SPort: 1234, DPort: 80, Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: FlagSYN | FlagACK, Wnd: 4096, MSS: 1440,
	}
	wire := h.Marshal()
	if len(wire) != HeaderLen+4 {
		t.Fatalf("len %d", len(wire))
	}
	got, off, err := parse(wire)
	if err != nil || off != 24 {
		t.Fatal(err)
	}
	if *got != *h {
		t.Fatalf("round trip %+v != %+v", got, h)
	}
}

func TestHeaderNoOptions(t *testing.T) {
	h := &Header{SPort: 1, DPort: 2, Seq: 3, Ack: 4, Flags: FlagACK | FlagPSH | FlagFIN, Wnd: 9}
	got, off, err := parse(h.Marshal())
	if err != nil || off != HeaderLen || *got != *h {
		t.Fatalf("%+v %d %v", got, off, err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, _, err := parse(make([]byte, 10)); err == nil {
		t.Fatal("short")
	}
	b := (&Header{}).Marshal()
	b[12] = 4 << 4 // offset 16 < 20
	if _, _, err := parse(b); err == nil {
		t.Fatal("bad offset low")
	}
	b[12] = 15 << 4 // offset 60 > len
	if _, _, err := parse(b); err == nil {
		t.Fatal("bad offset high")
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, fl uint8, wnd uint16, mssIn uint16) bool {
		h := &Header{SPort: sp, DPort: dp, Seq: seq, Ack: ack,
			Flags: int(fl) & 0x3f, Wnd: wnd, MSS: int(mssIn)}
		got, _, err := parse(h.Marshal())
		if err != nil {
			return false
		}
		if h.MSS == 0 {
			return got.MSS == 0 && got.Seq == h.Seq && got.Flags == h.Flags
		}
		return *got == *h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !seqLT(0xffffff00, 0x10) { // wraparound
		t.Fatal("seqLT wrap")
	}
	if seqGT(0xffffff00, 0x10) {
		t.Fatal("seqGT wrap")
	}
	if !seqLEQ(5, 5) || !seqGEQ(5, 5) {
		t.Fatal("eq cases")
	}
}

// newTestConn builds a minimally-initialized established connection
// for driving internal functions directly.
func newTestConn() *Conn {
	t := &TCP{Table: nil, conns: make(map[*Conn]struct{})}
	c := &Conn{
		t: t, pf: inet.AFInet6, state: StateEstablished,
		SndBufMax: 32768, RcvBufMax: 32768,
		rttTicks: -1, rto: rtoMin, mss: 512,
		rcvNxt: 1000,
	}
	return c
}

func TestReassInOrderViaQueue(t *testing.T) {
	c := newTestConn()
	c.tcpv6Reass(1000, []byte("abc"), false)
	if string(c.rcvBuf) != "abc" || c.rcvNxt != 1003 {
		t.Fatalf("buf=%q nxt=%d", c.rcvBuf, c.rcvNxt)
	}
	if c.t.Stats.Reass6.Get() != 1 || c.t.Stats.Reass4.Get() != 0 {
		t.Fatal("counter split")
	}
}

func TestReassOutOfOrder(t *testing.T) {
	c := newTestConn()
	c.tcpv6Reass(1003, []byte("def"), false)
	if len(c.rcvBuf) != 0 {
		t.Fatal("premature delivery")
	}
	c.tcpv6Reass(1000, []byte("abc"), false)
	if string(c.rcvBuf) != "abcdef" || c.rcvNxt != 1006 {
		t.Fatalf("buf=%q nxt=%d", c.rcvBuf, c.rcvNxt)
	}
}

func TestReassManyPermutations(t *testing.T) {
	// All arrival orders of four segments reassemble identically.
	segs := []struct {
		seq  uint32
		data string
	}{{1000, "AA"}, {1002, "BB"}, {1004, "CC"}, {1006, "DD"}}
	perm := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}, {3, 0, 1, 2}}
	for _, p := range perm {
		c := newTestConn()
		for _, i := range p {
			c.tcpReass(segs[i].seq, []byte(segs[i].data), false)
		}
		if string(c.rcvBuf) != "AABBCCDD" {
			t.Fatalf("order %v -> %q", p, c.rcvBuf)
		}
		if c.t.Stats.Reass4.Get() != 4 {
			t.Fatal("v4 wrapper not counted")
		}
	}
}

func TestReassOverlapAndDup(t *testing.T) {
	c := newTestConn()
	c.tcpReass(1002, []byte("cdef"), false)
	c.tcpReass(1002, []byte("cd"), false) // shorter dup ignored
	c.tcpReass(1000, []byte("abcd"), false)
	// 1000..1003 delivered from first; 1004.. from queue with overlap
	// trimmed.
	if string(c.rcvBuf) != "abcdef" {
		t.Fatalf("buf=%q", c.rcvBuf)
	}
}

func TestReassOldDataIgnored(t *testing.T) {
	c := newTestConn()
	c.rcvNxt = 2000
	c.tcpReass(1000, []byte("old"), false)
	if len(c.reassQ) != 0 || len(c.rcvBuf) != 0 {
		t.Fatal("stale segment queued")
	}
}

func TestReassFINInQueue(t *testing.T) {
	c := newTestConn()
	c.tcpv6Reass(1003, []byte("def"), true) // FIN rides the last segment
	c.tcpv6Reass(1000, []byte("abc"), false)
	if !c.rcvClosed || c.state != StateCloseWait {
		t.Fatalf("FIN from queue: closed=%v state=%v", c.rcvClosed, c.state)
	}
	if c.rcvNxt != 1007 { // 6 data + FIN
		t.Fatalf("rcvNxt=%d", c.rcvNxt)
	}
}

func TestReassQuickRandomSplit(t *testing.T) {
	f := func(data []byte, seed uint32) bool {
		if len(data) == 0 {
			return true
		}
		c := newTestConn()
		base := c.rcvNxt
		type seg struct {
			off int
			n   int
		}
		var segs []seg
		r := seed
		for off := 0; off < len(data); {
			r = r*1664525 + 1013904223
			n := 1 + int(r%7)
			if off+n > len(data) {
				n = len(data) - off
			}
			segs = append(segs, seg{off, n})
			off += n
		}
		// Feed in a rotated order.
		k := int(seed) % len(segs)
		for i := range segs {
			s := segs[(i+k)%len(segs)]
			c.tcpReass(base+uint32(s.off), data[s.off:s.off+n2(s.n)], false)
		}
		return bytes.Equal(c.rcvBuf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func n2(n int) int { return n }

func TestUpdateRTT(t *testing.T) {
	c := newTestConn()
	c.updateRTT(4)
	if c.srtt != 4 || c.rttvar != 2 || c.rto != 4+8 {
		t.Fatalf("first sample: srtt=%d var=%d rto=%d", c.srtt, c.rttvar, c.rto)
	}
	for i := 0; i < 50; i++ {
		c.updateRTT(4)
	}
	if c.srtt < 3 || c.srtt > 5 {
		t.Fatalf("converged srtt=%d", c.srtt)
	}
	// Minimum clamp.
	c2 := newTestConn()
	c2.updateRTT(0)
	if c2.rto < rtoMin {
		t.Fatal("rto below min")
	}
}
