package tcp

import (
	"errors"
	"sync"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipv4"
	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/pcb"
	"bsd6/internal/proto"
	"bsd6/internal/route"
	"bsd6/internal/stat"
)

// Connection states.
type State int

const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateCloseWait
	StateFinWait1
	StateClosing
	StateLastAck
	StateFinWait2
	StateTimeWait
)

func (s State) String() string {
	return [...]string{"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
		"CLOSE_WAIT", "FIN_WAIT_1", "CLOSING", "LAST_ACK", "FIN_WAIT_2", "TIME_WAIT"}[s]
}

// Timer and protocol constants, in BSD's tick units: the slow timeout
// runs every 500ms, the fast (delayed-ACK) timeout every 200ms.
const (
	// SlowTickInterval and FastTickInterval are the cadences at which
	// SlowTimo and FastTimo expect to be driven.
	SlowTickInterval = 500 * time.Millisecond
	FastTickInterval = 200 * time.Millisecond

	rtoMin     = 2   // 1s in slow ticks
	rtoMax     = 128 // 64s
	rexmtMax   = 12  // retransmissions before giving up
	msl        = 4   // 2s in slow ticks (scaled down for the simulation)
	connTicks  = 150 // 75s connection-establishment timer
	defaultMSS = 512
)

// Errors delivered to sockets.
var (
	ErrRefused  = errors.New("tcp: connection refused")
	ErrReset    = errors.New("tcp: connection reset by peer")
	ErrTimeout  = errors.New("tcp: connection timed out")
	ErrClosed   = errors.New("tcp: connection closed")
	ErrListenQ  = errors.New("tcp: not a listening connection")
	ErrNotConn  = errors.New("tcp: not connected")
	ErrHostDown = errors.New("tcp: no route to host")
)

// Stats counts TCP events (netstat's tcpstat).  The receive-side hot
// counters — bumped once per segment on every netisr worker — are
// stat.Sharded so parallel workers increment their own cache line;
// Snapshot folds them on read.  Counters bumped from socket callers
// or timers (no worker identity, or cold paths) stay plain Counters.
type Stats struct {
	ConnAttempt   stat.Counter
	ConnAccepts   stat.Counter
	ConnEstab     stat.Counter
	ConnDrops     stat.Counter
	SndPack       stat.Counter
	SndByte       stat.Counter
	SndRexmit     stat.Counter
	RcvPack       stat.Sharded
	RcvByte       stat.Sharded
	RcvBadSum     stat.Counter
	RcvDupPack    stat.Counter
	RcvOutOfOrder stat.Counter
	RcvAfterWin   stat.Counter
	Reass4        stat.Counter // segments through tcp_reass
	Reass6        stat.Counter // segments through tcpv6_reass
	PredAck       stat.Sharded // pure ACKs taken by the header-prediction fast path
	PredDat       stat.Sharded // in-order data segments taken by the fast path
	DelAcks       stat.Counter
	RstOut        stat.Counter
	PolicyDrops   stat.Counter
	PersistProbe  stat.Counter
	FastRexmit    stat.Counter
	SynDrops      stat.Counter // embryonic connections evicted by the SYN backlog cap

	SynCookiesSent      stat.Counter // stateless SYN-ACKs sent while the backlog was full
	SynCookiesValidated stat.Counter // connections rebuilt from a valid cookie ACK
	SynCookiesFailed    stat.Counter // listener ACKs that failed cookie validation
	TimeWaitRecycled    stat.Counter // 2MSL records released early by a fresh SYN or connect
	TimeWaitOverflow    stat.Counter // 2MSL records evicted by the TimeWaitMax cap

	GROCoalesced stat.Sharded // received segments absorbed into a super-segment
	GROFlushes   stat.Sharded // coalesced super-segments handed to tcp_input
	GSOSegs      stat.Counter // super-segments built by tcp_output
	GSOSplits    stat.Counter // wire frames those super-segments cut into
}

// DefaultSynBacklog is the default cap on embryonic (SYN_RCVD)
// connections per listener — BSD's somaxconn-style bound, applied to
// the half-open stage a SYN flood inflates.
const DefaultSynBacklog = 128

// Batched-datapath defaults.  Both are payload-byte ceilings chosen
// so the super-segment plus its 20-byte TCP header (and for GRO the
// worst-case 20-byte IPv4 header too) stays inside the 65535-byte IP
// payload field — and, with the IP header and pool headroom, inside
// the largest mbuf slab class.
const (
	// DefaultGSOMax caps the payload of a transmit super-segment.
	DefaultGSOMax = 65515
	// DefaultGROMax caps the coalesced payload of a receive
	// super-segment.
	DefaultGROMax = 65495
)

// TCP is the TCP protocol instance of one stack.
type TCP struct {
	mu    sync.Mutex
	Table *pcb.Table
	v4    *ipv4.Layer
	v6    *ipv6.Layer

	// InputPolicy is ipsec_input_policy (§5.3); nil means permit.
	InputPolicy func(pkt *mbuf.Mbuf, dst inet.IP6, socket any) bool
	// InputPolicyPort, when set, is used instead of InputPolicy and
	// sees the local port (per-port administrative policy, §3.5).
	InputPolicyPort func(pkt *mbuf.Mbuf, dst inet.IP6, socket any, lport uint16) bool
	// AllowError gates ICMP error delivery upward (§5.1).
	AllowError func() bool
	// Confirm reports forward progress to neighbor discovery (§4.3:
	// upper-level protocols confirming reachability).
	Confirm func(dst inet.IP6)
	// SecOverhead estimates per-packet security wrapping overhead for
	// a socket (ipsec_hdrsiz); subtracted from the MSS.
	SecOverhead func(socket any) int
	// FatalOutErr classifies IP-output errors that must surface on the
	// connection (§3.3: a security processing failure drops the packet
	// "and the user will be given the EIPSEC error"). Transient errors
	// — path-MTU races, neighbor resolution in progress — return
	// false and the retransmission machinery rides them out.
	FatalOutErr func(error) bool

	// Drops is the stack-wide drop observability sink; nil counts
	// nothing.
	Drops *stat.Recorder

	// SynBacklogMax caps embryonic (SYN_RCVD) connections per
	// listener: when a new SYN would exceed it, the oldest embryonic
	// connection is dropped (with the tcp-syn-overflow reason) to make
	// room, so a SYN flood recycles half-open state instead of growing
	// it.  0 selects DefaultSynBacklog; negative disables the cap.
	SynBacklogMax int

	// SynCookies switches a listener whose backlog is full to
	// stateless SYN cookies: the SYN-ACK's ISN encodes a keyed hash of
	// the 4-tuple, a coarse time counter and the peer's MSS class, and
	// the child connection is rebuilt from the completing ACK alone —
	// the flood costs per-reply work, never per-SYN state.
	SynCookies bool

	// TimeWaitMax caps the compressed TIME_WAIT table; overflow evicts
	// the record closest to expiry (tcp-time-wait-overflow). 0 selects
	// DefaultTimeWaitMax; negative removes the cap.
	TimeWaitMax int

	// Predict enables the Van Jacobson header-prediction fast path in
	// segment input (on by default). The fast path is an exact
	// restatement of the general path for its two covered cases, so
	// turning it off changes only which counters fire — the wire
	// equivalence tests rely on that to diff the two paths
	// byte-for-byte.
	Predict bool

	// GSOMax, when larger than a connection's MSS, lets tcp_output
	// build one super-segment of up to GSOMax payload bytes per send
	// opportunity instead of MSS-sized segments; the link boundary
	// (netif) splits it back into MSS wire frames with incremental
	// header patching, so header construction, route validation and
	// outbox handling run once per burst.  The effective cap is
	// rounded down to a multiple of the MSS, which keeps the split
	// frame sequence byte-identical to the unbatched one.  Applied to
	// IPv6 sessions without security wrapping (the splitter cannot
	// cut an encrypted payload, and IPv4 would need per-frame IP-ID
	// allocation).  0 disables; New sets DefaultGSOMax.
	GSOMax int

	Stats Stats

	iss   uint32
	conns map[*Conn]struct{}

	// SYN-cookie secrets and coarse time (advanced by SlowTimo).
	cookieSeed [2]uint32
	cookieTick uint32
	// tw is the compressed TIME_WAIT engine (2MSL wheel on the slow
	// timer); its records own their tuples in the demux after the full
	// connection state is torn down.
	tw timeWait

	// outbox collects segments to transmit after the lock drops, so a
	// synchronously delivered reply cannot deadlock on re-entry.
	// flushing marks an active drainer: re-entrant flush calls (a
	// delivered segment's ACK processing queues new data and flushes
	// on the way out) return immediately and leave their segments for
	// the outer drainer, which sends them only after finishing the
	// batch already in flight — otherwise a reply queued mid-batch
	// would overtake the rest of the batch and reorder the wire.
	outbox   []outSeg
	wakeups  []func()
	flushing bool
}

type outSeg struct {
	v6       bool
	src, dst inet.IP6
	pkt      *mbuf.Mbuf
	flow     uint32
	sock     any
	conn     *Conn        // for surfacing fatal output errors; nil for RSTs
	rc       *route.Cache // the session's held route; nil for RSTs
	sc       *key.Cache   // the session's held security verdict; nil for RSTs
}

// New creates the TCP instance and registers it with both IP layers.
func New(v4l *ipv4.Layer, v6l *ipv6.Layer) *TCP {
	t := &TCP{Table: pcb.NewTable(), v4: v4l, v6: v6l, conns: make(map[*Conn]struct{}),
		Predict: true, GSOMax: DefaultGSOMax}
	t.cookieSeed = newCookieSeed()
	if v4l != nil {
		v4l.Register(proto.TCP, t.input, t.ctlInput)
	}
	if v6l != nil {
		v6l.Register(proto.TCP, t.input, t.ctlInput)
	}
	return t
}

// Conn is a TCP connection (struct tcpcb).
type Conn struct {
	t   *TCP
	pcb *pcb.PCB
	// pf is the new tcpcb member of §5.3: the protocol family in use
	// for this session, consulted wherever a version-specific branch
	// is needed.
	pf    inet.Family
	state State

	// Send sequence space.
	iss                    uint32
	sndUna, sndNxt, sndMax uint32
	sndWnd                 int
	cwnd, ssthresh         int
	dupAcks                int
	sndBuf                 []byte // bytes from sndUna upward
	sndArr                 []byte // sndBuf's reusable backing array
	SndBufMax              int
	sndClosed              bool // FIN queued behind the buffered data
	finSeq                 uint32
	finQueued              bool

	// Receive sequence space.
	irs       uint32
	rcvNxt    uint32
	rcvAdv    uint32
	rcvBuf    []byte
	rcvArr    []byte // rcvBuf's reusable backing array
	RcvBufMax int
	reassQ    []rseg
	rcvClosed bool

	// RTT estimation (Jacobson), in slow ticks.
	srtt, rttvar int
	rto          int
	rttSeq       uint32
	rttTicks     int // -1 when no measurement in flight
	ticks        int // connection tick counter
	confirmTick  int // ticks+1 at the last ND reachability confirm

	// Timers, in remaining slow ticks; 0 means stopped. (The 2MSL
	// timer lives in the TIME_WAIT engine's wheel, not here.)
	tRexmt, tPersist, tConn int
	rexmtShift              int

	mss     int
	delack  bool
	needAck bool
	err     error

	// ACK template: the wire image of the last pure ACK sent. The next
	// pure ACK differs only in sequence, acknowledgment and window, so
	// output patches those fields and repairs the checksum
	// incrementally (RFC 1624) instead of marshalling and summing a
	// fresh header.
	ackTmpl   [HeaderLen]byte
	ackTmplOK bool

	// Listener state.
	listening bool
	backlog   int
	acceptQ   []*Conn
	synQ      []*Conn // embryonic children in SYN arrival order
	parent    *Conn   // listener this connection was spawned from

	// twe is the compressed 2MSL record this handle collapsed into on
	// entering TIME_WAIT; once the engine expires it, the handle
	// reports CLOSED.
	twe *twEntry

	// Wakeup is invoked (outside the stack lock) whenever readable,
	// writable, state or error conditions may have changed.
	Wakeup func()
}

type rseg struct {
	seq  uint32
	data []byte
	fin  bool
}

// Conns returns a snapshot of all connection blocks, for netstat.
func (t *TCP) Conns() []*Conn {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Conn, 0, len(t.conns))
	for c := range t.conns {
		out = append(out, c)
	}
	return out
}

// Listening reports whether the connection is a passive listener.
func (c *Conn) Listening() bool {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	return c.listening
}

// Attach creates a connection block on a fresh PCB.
func (t *TCP) Attach(family inet.Family, socket any) *Conn {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &Conn{
		t: t, pf: family, state: StateClosed,
		SndBufMax: 32768, RcvBufMax: 32768,
		rttTicks: -1, rto: rtoMin,
		mss: defaultMSS,
	}
	c.pcb = t.Table.Attach(family, socket)
	c.pcb.Owner = c
	t.conns[c] = struct{}{}
	return c
}

// PCB exposes the connection's protocol control block.
func (c *Conn) PCB() *pcb.PCB { return c.pcb }

// State returns the connection state. A handle that collapsed into a
// compressed TIME_WAIT record reports CLOSED once the record expires.
func (c *Conn) State() State {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	if c.state == StateTimeWait && (c.twe == nil || c.twe.dead) {
		return StateClosed
	}
	return c.state
}

// Err returns the terminal error, if any.
func (c *Conn) Err() error {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	return c.err
}

// MSS returns the effective maximum segment size.
func (c *Conn) MSS() int {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	return c.mss
}

// Bind sets the local address/port.
func (c *Conn) Bind(laddr inet.IP6, lport uint16) error {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	return c.t.Table.Bind(c.pcb, laddr, lport)
}

// Listen makes the connection passive.
func (c *Conn) Listen(backlog int) error {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	if c.pcb.LPort == 0 {
		if err := c.t.Table.Bind(c.pcb, c.pcb.LAddr, 0); err != nil {
			return err
		}
	}
	if backlog < 1 {
		backlog = 1
	}
	c.listening = true
	c.backlog = backlog
	c.state = StateListen
	return nil
}

// Accept dequeues an established child connection, or returns nil.
func (c *Conn) Accept() *Conn {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	if len(c.acceptQ) == 0 {
		return nil
	}
	child := c.acceptQ[0]
	c.acceptQ = c.acceptQ[1:]
	return child
}

// nextISS generates an initial send sequence (BSD's tcp_iss += TCP_ISSINCR).
func (t *TCP) nextISS() uint32 {
	t.iss += 64000
	return t.iss
}

// Connect begins the three-way handshake. Completion (or failure) is
// signaled through Wakeup; poll State/Err.
func (c *Conn) Connect(faddr inet.IP6, fport uint16) error {
	t := c.t
	t.mu.Lock()
	if err := t.Table.Connect(c.pcb, faddr, fport); err != nil {
		t.mu.Unlock()
		return err
	}
	// Fix the local address now (in_pcbconnect): the checksum needs it,
	// and the demux must refile the PCB under its final tuple.
	if c.pcb.LAddr.IsUnspecified() {
		laddr := faddr // local destination
		if v4, ok := faddr.MappedV4(); ok {
			laddr = inet.V4Mapped(v4)
			if s, found := t.v4.SourceFor(v4); found {
				laddr = inet.V4Mapped(s)
			}
		} else if s, found := t.v6.SourceFor(faddr, nil); found {
			laddr = s
		}
		t.Table.SetTuple(c.pcb, laddr, c.pcb.LPort, c.pcb.FAddr, c.pcb.FPort)
	}
	// Recycle a 2MSL record from a previous incarnation of this exact
	// tuple, pushing the ISS beyond its old sequence space (RFC 6191).
	if e := t.tw.get(twTuple{laddr: c.pcb.LAddr, faddr: c.pcb.FAddr, lport: c.pcb.LPort, fport: c.pcb.FPort}); e != nil {
		t.tw.removeEntry(e)
		t.Stats.TimeWaitRecycled.Inc()
		if !seqGT(t.iss+64000, e.sndNxt) {
			t.iss = e.sndNxt
		}
	}
	c.mss = t.pathMSS(c.pcb)
	c.iss = t.nextISS()
	c.sndUna, c.sndNxt, c.sndMax = c.iss, c.iss, c.iss
	c.cwnd = initialCwnd(c.mss)
	c.ssthresh = 65535
	c.state = StateSynSent
	c.tConn = connTicks
	t.Stats.ConnAttempt.Inc()
	c.output()
	t.mu.Unlock()
	t.flush()
	return nil
}

// Send appends data to the send buffer, returning how many bytes were
// accepted (0 when the buffer is full; wait for Wakeup).
// sbappend appends to a socket-buffer slice whose front the consumer
// trims by reslicing (sndBuf on ACK, rcvBuf on Recv).  A plain append
// would reallocate on every refill — the trim discards front capacity,
// so a buffer held near its cap copies its whole backlog each time and
// the dead arrays feed the collector.  Instead the live bytes are
// compacted back to the head of a long-lived backing array, sized to
// twice the buffer cap so at least max bytes flow between compactions:
// steady-state streaming costs O(1) copies per byte and no allocation.
// buf need not alias *arr (handoff from a bare slice is a copy in).
//
// Callers must not retain aliases into buf across calls — compaction
// reuses the trimmed region.  Recv copies out for exactly this reason.
func sbappend(arr *[]byte, buf, data []byte, max int) []byte {
	if len(data) <= cap(buf)-len(buf) {
		return append(buf, data...)
	}
	want := len(buf) + len(data)
	a := *arr
	if cap(a) < want {
		// First use, or the app raised the buffer cap mid-stream.
		size := 2 * max
		if size < want {
			size = want
		}
		a = make([]byte, size)
		*arr = a
	}
	a = a[:cap(a)]
	n := copy(a, buf)
	return append(a[:n], data...)
}

func (c *Conn) Send(data []byte) (int, error) {
	t := c.t
	t.mu.Lock()
	if c.err != nil {
		err := c.err
		t.mu.Unlock()
		return 0, err
	}
	switch c.state {
	case StateEstablished, StateCloseWait:
	case StateSynSent, StateSynRcvd:
		// Buffer ahead of establishment.
	default:
		t.mu.Unlock()
		return 0, ErrClosed
	}
	if c.sndClosed {
		t.mu.Unlock()
		return 0, ErrClosed
	}
	space := c.SndBufMax - len(c.sndBuf)
	if space <= 0 {
		t.mu.Unlock()
		return 0, nil
	}
	n := len(data)
	if n > space {
		n = space
	}
	c.sndBuf = sbappend(&c.sndArr, c.sndBuf, data[:n], c.SndBufMax)
	if c.state == StateEstablished || c.state == StateCloseWait {
		c.output()
	}
	t.mu.Unlock()
	t.flush()
	return n, nil
}

// Recv takes up to n bytes from the receive buffer. It returns
// (nil, nil) when no data is available yet, and (nil, ErrClosed) at
// end of stream.
func (c *Conn) Recv(n int) ([]byte, error) {
	t := c.t
	t.mu.Lock()
	if len(c.rcvBuf) == 0 {
		if c.err != nil {
			err := c.err
			t.mu.Unlock()
			return nil, err
		}
		if c.rcvClosed || c.state == StateClosed {
			t.mu.Unlock()
			return nil, ErrClosed
		}
		t.mu.Unlock()
		return nil, nil
	}
	if n > len(c.rcvBuf) {
		n = len(c.rcvBuf)
	}
	// Copy out rather than alias: the buffer compacts in place under
	// sbappend, which would scribble over a zero-copy view.
	out := append(make([]byte, 0, n), c.rcvBuf[:n]...)
	c.rcvBuf = c.rcvBuf[n:]
	// The freed buffer space may open the advertised window enough to
	// deserve a window update.
	if c.state == StateEstablished && int(c.rcvAdv-c.rcvNxt) < c.rcvSpace()/2 {
		c.needAck = true
		c.output()
	}
	t.mu.Unlock()
	t.flush()
	return out, nil
}

// ReadInto is the read(2) form of Recv: it copies up to len(p)
// buffered bytes into p and returns the count, performing no
// allocation.  (0, nil) means no data yet; (0, ErrClosed) is end of
// stream.  A receiver draining at line rate reuses one buffer for
// the life of the connection instead of allocating per call.
func (c *Conn) ReadInto(p []byte) (int, error) {
	t := c.t
	t.mu.Lock()
	if len(c.rcvBuf) == 0 {
		if c.err != nil {
			err := c.err
			t.mu.Unlock()
			return 0, err
		}
		if c.rcvClosed || c.state == StateClosed {
			t.mu.Unlock()
			return 0, ErrClosed
		}
		t.mu.Unlock()
		return 0, nil
	}
	n := copy(p, c.rcvBuf)
	c.rcvBuf = c.rcvBuf[n:]
	if c.state == StateEstablished && int(c.rcvAdv-c.rcvNxt) < c.rcvSpace()/2 {
		c.needAck = true
		c.output()
	}
	t.mu.Unlock()
	t.flush()
	return n, nil
}

// Buffered returns the bytes queued in each direction, for pollers.
func (c *Conn) Buffered() (rcv, snd int) {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	return len(c.rcvBuf), len(c.sndBuf)
}

// Close half-closes the send direction (queues a FIN after the
// buffered data).
func (c *Conn) Close() error {
	t := c.t
	t.mu.Lock()
	switch c.state {
	case StateClosed, StateListen, StateSynSent:
		c.closeLocked(nil)
		t.mu.Unlock()
		t.flush()
		return nil
	case StateSynRcvd, StateEstablished:
		c.state = StateFinWait1
	case StateCloseWait:
		c.state = StateLastAck
	default:
		t.mu.Unlock()
		return nil
	}
	c.sndClosed = true
	c.output()
	t.mu.Unlock()
	t.flush()
	return nil
}

// Abort sends RST and discards the connection.
func (c *Conn) Abort() {
	t := c.t
	t.mu.Lock()
	if c.state == StateTimeWait {
		// The handle compressed into a 2MSL record: release it quietly.
		t.tw.removeEntry(c.twe)
	} else if c.state != StateClosed && c.state != StateListen && c.state != StateSynSent {
		c.sendRST()
	}
	c.closeLocked(ErrClosed)
	t.mu.Unlock()
	t.flush()
}

// closeLocked tears the connection down. Caller holds t.mu.
func (c *Conn) closeLocked(err error) {
	if c.state == StateClosed && c.err != nil {
		return
	}
	if err != nil && c.err == nil {
		c.err = err
	}
	c.state = StateClosed
	c.tRexmt, c.tPersist, c.tConn = 0, 0, 0
	c.unlinkSynLocked()
	c.t.Table.Detach(c.pcb)
	delete(c.t.conns, c)
	c.wakeupLocked()
}

// unlinkSynLocked removes an embryonic child from its listener's SYN
// backlog; a no-op once the handshake completed (or for connections
// with no listener). Caller holds t.mu.
func (c *Conn) unlinkSynLocked() {
	p := c.parent
	if p == nil {
		return
	}
	for i, x := range p.synQ {
		if x == c {
			p.synQ = append(p.synQ[:i], p.synQ[i+1:]...)
			break
		}
	}
}

// synBacklogMax resolves the effective SYN backlog cap: 0 selects the
// default, negative disables.
func (t *TCP) synBacklogMax() int {
	switch {
	case t.SynBacklogMax > 0:
		return t.SynBacklogMax
	case t.SynBacklogMax < 0:
		return 0
	}
	return DefaultSynBacklog
}

// SynBacklogLimit reports the effective SYN backlog cap (0 when
// disabled), for the stack's limits snapshot.
func (t *TCP) SynBacklogLimit() int { return t.synBacklogMax() }

// SynBacklogLen returns the number of embryonic (SYN_RCVD)
// listener-spawned connections — the occupancy half of the
// syn-backlog limit surface.
func (t *TCP) SynBacklogLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for c := range t.conns {
		if c.state == StateSynRcvd && c.parent != nil {
			n++
		}
	}
	return n
}

// drop is tcp_drop: close with an error and notify.
func (c *Conn) drop(err error) {
	c.t.Stats.ConnDrops.Inc()
	c.closeLocked(err)
}

func (c *Conn) wakeupLocked() {
	if c.Wakeup != nil {
		c.t.wakeups = append(c.t.wakeups, c.Wakeup)
	}
}

// rcvSpace is the receive window the connection can advertise.
func (c *Conn) rcvSpace() int {
	n := c.RcvBufMax - len(c.rcvBuf)
	if n < 0 {
		n = 0
	}
	if n > 65535 {
		n = 65535
	}
	return n
}

// initialCwnd returns the RFC 3390 initial congestion window:
// min(4*MSS, max(2*MSS, 4380)).  A one-segment initial window
// interlocks fatally with the peer's delayed ACK — the lone first
// segment is an "odd" arrival the receiver holds for the full 200ms
// fast-timer tick, so every connection's slow start opens with a dead
// fifth of a second.  Two or more segments make the second arrival
// force an immediate ACK (RFC 1122's ack-every-other rule) and keep
// the feedback loop running from the first flight.  Loss recovery
// still restarts from one segment (RFC 5681's loss window).
func initialCwnd(mss int) int {
	iw := 4380
	if 2*mss > iw {
		iw = 2 * mss
	}
	if 4*mss < iw {
		iw = 4 * mss
	}
	return iw
}

// pathMSS derives the starting MSS from the route's path MTU ("Our
// implementation stores Path MTU information in host routes ...
// making this data available to TCP", §2.2).
func (t *TCP) pathMSS(p *pcb.PCB) int {
	var mtu int
	var hdrs int
	if v4, ok := p.FAddr.MappedV4(); ok {
		hdrs = ipv4.HeaderLen + HeaderLen
		if rt, found := t.v4.Routes().Lookup(inet.AFInet, v4[:]); found {
			t.v4.Routes().View(func() { mtu = rt.MTU })
			if ifp := t.ifMTU(false, rt.IfName); ifp > 0 && (mtu == 0 || ifp < mtu) {
				mtu = ifp
			}
		}
	} else {
		hdrs = ipv6.HeaderLen + HeaderLen
		if rt, found := t.v6.Routes().Lookup(inet.AFInet6, p.FAddr[:]); found {
			t.v6.Routes().View(func() { mtu = rt.MTU })
			if ifp := t.ifMTU(true, rt.IfName); ifp > 0 && (mtu == 0 || ifp < mtu) {
				mtu = ifp
			}
		}
	}
	if mtu == 0 {
		return defaultMSS
	}
	mss := mtu - hdrs
	if t.SecOverhead != nil {
		mss -= t.SecOverhead(p.Socket)
	}
	if mss < 32 {
		mss = 32
	}
	return mss
}

func (t *TCP) ifMTU(v6 bool, name string) int {
	if v6 {
		if ifp := t.v6.Interface(name); ifp != nil {
			return ifp.MTU()
		}
		return 0
	}
	if ifp := t.v4.Interface(name); ifp != nil {
		return ifp.MTU()
	}
	return 0
}

// flush transmits queued segments and runs queued wakeups. Must be
// called WITHOUT t.mu held.
func (t *TCP) flush() {
	t.mu.Lock()
	if t.flushing {
		// An outer flush (possibly further up this very call stack)
		// is draining; it will pick up anything queued here on its
		// next pass, in order.
		t.mu.Unlock()
		return
	}
	t.flushing = true
	t.mu.Unlock()
	for {
		t.mu.Lock()
		segs := t.outbox
		wake := t.wakeups
		t.outbox = nil
		t.wakeups = nil
		if len(segs) == 0 && len(wake) == 0 {
			// Clearing the flag and observing the empty queue happen
			// under one lock hold, so a concurrent enqueuer either
			// queued in time for this check or sees flushing==false
			// and drains its own segment.
			t.flushing = false
			t.mu.Unlock()
			return
		}
		t.mu.Unlock()
		for _, s := range segs {
			var err error
			if s.v6 {
				err = t.v6.Output(s.pkt, s.src, s.dst, proto.TCP, ipv6.OutputOpts{
					FlowInfo: s.flow, Socket: s.sock, NoFrag: true, RouteCache: s.rc,
					SecCache: s.sc,
				})
			} else {
				src4, _ := s.src.MappedV4()
				dst4, _ := s.dst.MappedV4()
				err = t.v4.Output(s.pkt, src4, dst4, proto.TCP, ipv4.OutputOpts{DF: true, RouteCache: s.rc})
			}
			if err != nil && s.conn != nil && t.FatalOutErr != nil && t.FatalOutErr(err) {
				t.mu.Lock()
				// A passive open whose SYN-ACK fails is not surfaced:
				// no user is waiting on it yet, and the retransmit
				// timer retries once key management catches up.
				if s.conn.err == nil && s.conn.state != StateSynRcvd {
					s.conn.err = err
					s.conn.wakeupLocked()
				}
				t.mu.Unlock()
			}
		}
		for _, w := range wake {
			w()
		}
	}
}
