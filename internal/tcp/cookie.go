package tcp

import (
	"sync/atomic"

	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/pcb"
	"bsd6/internal/proto"
)

// SYN cookies: once a listener's backlog is full, the SYN-ACK's initial
// sequence number becomes the state. It encodes a keyed hash of the
// 4-tuple, a coarse time counter (so old cookies expire), and the
// peer's MSS class; the completing ACK hands all of it back, and the
// connection is rebuilt from that segment alone. A flood of SYNs then
// costs the listener nothing but replies.
//
//	isn = H1(tuple) + client_isn + count<<24 + (H2(tuple,count) + mss_class)&0xffffff

// cookieMSS is the MSS class table; the class index rides in the low
// cookie bits and is decoded on the completing ACK.
var cookieMSS = [4]int{216, 536, 1220, 1440}

// cookieTickShift converts the slow-tick counter into cookie time: one
// unit is 64 slow ticks (32s); a cookie is valid in the unit it was
// minted plus the next, bounding replay of sniffed cookies.
const cookieTickShift = 6

// cookieSalt diversifies per-instance secrets while keeping them
// deterministic within a process run (the virtual-clock tests replay
// handshakes and must see stable cookies).
var cookieSalt uint32

func newCookieSeed() [2]uint32 {
	s := atomic.AddUint32(&cookieSalt, 0x9e3779b9)
	return [2]uint32{0x6996c53a ^ s, 0x7b64e48d ^ (s * 0x85ebca6b)}
}

// cookieCount is the coarse time the cookie embeds.
func (t *TCP) cookieCount() uint32 { return (t.cookieTick >> cookieTickShift) & 0xff }

// cookieHash is FNV-1a over (secret, tuple, count), folded into the
// cookie arithmetic.
func cookieHash(secret uint32, k twTuple, count uint32) uint32 {
	const prime = 16777619
	h := uint32(2166136261)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime
	}
	for i := 0; i < 4; i++ {
		mix(byte(secret >> (8 * i)))
	}
	for _, b := range k.laddr {
		mix(b)
	}
	for _, b := range k.faddr {
		mix(b)
	}
	mix(byte(k.lport >> 8))
	mix(byte(k.lport))
	mix(byte(k.fport >> 8))
	mix(byte(k.fport))
	for i := 0; i < 4; i++ {
		mix(byte(count >> (8 * i)))
	}
	return h
}

// cookieISN mints the cookie for a SYN from (tuple, client ISN) at the
// current cookie time.
func (t *TCP) cookieISN(k twTuple, clientISN uint32, mssIdx int) uint32 {
	count := t.cookieCount()
	h1 := cookieHash(t.cookieSeed[0], k, 0)
	h2 := cookieHash(t.cookieSeed[1], k, count)
	return h1 + clientISN + count<<24 + (h2+uint32(mssIdx))&0xffffff
}

// cookieCheck validates a candidate cookie against the tuple and
// client ISN recovered from the completing ACK, returning the MSS
// class. A forged cookie fails the keyed-hash algebra; a stale one
// fails the time window.
func (t *TCP) cookieCheck(k twTuple, clientISN, cookie uint32) (int, bool) {
	sub := cookie - cookieHash(t.cookieSeed[0], k, 0) - clientISN
	count := sub >> 24
	if d := (t.cookieCount() - count) & 0xff; d > 1 {
		return 0, false
	}
	idx := (sub - cookieHash(t.cookieSeed[1], k, count)) & 0xffffff
	if idx >= uint32(len(cookieMSS)) {
		return 0, false
	}
	return int(idx), true
}

// sendSynCookie answers a SYN arriving at a full backlog with a
// stateless SYN-ACK: nothing is allocated, nothing is remembered.
// Caller holds t.mu.
func (c *Conn) sendSynCookie(th *Header, meta *proto.Meta, src, dst inet.IP6) {
	t := c.t
	peer := th.MSS
	if peer == 0 {
		peer = cookieMSS[1]
	}
	idx := 0
	for i, m := range cookieMSS {
		if m <= peer {
			idx = i
		}
	}
	k := twTuple{laddr: dst, faddr: src, lport: c.pcb.LPort, fport: th.SPort}
	t.Stats.SynCookiesSent.Inc()
	hdr := &Header{
		SPort: c.pcb.LPort, DPort: th.SPort,
		Seq: t.cookieISN(k, th.Seq, idx), Ack: th.Seq + 1,
		Flags: FlagSYN | FlagACK, Wnd: uint16(c.rcvSpace()), MSS: cookieMSS[idx],
	}
	wire := hdr.Marshal()
	v6 := meta.Family == inet.AFInet6
	var sum uint32
	if v6 {
		sum = inet.PseudoHeader6(dst, src, uint32(len(wire)), proto.TCP)
	} else {
		sum = inet.PseudoHeader4(meta.Dst4, meta.Src4, uint16(len(wire)), proto.TCP)
	}
	sum = inet.Sum(sum, wire)
	ck := inet.Fold(sum)
	wire[16], wire[17] = byte(ck>>8), byte(ck)
	t.outbox = append(t.outbox, outSeg{v6: v6, src: dst, dst: src, pkt: mbuf.New(wire), flow: c.pcb.FlowInfo, sock: c.pcb.Socket})
}

// cookieAccept tries to complete a stateless handshake from an ACK at
// the listener. On success the child is born directly ESTABLISHED,
// with every sequence variable recovered from the segment and the MSS
// class from the cookie. Returns false when the cookie does not
// validate. Caller holds t.mu.
func (c *Conn) cookieAccept(th *Header, data []byte, meta *proto.Meta, src, dst inet.IP6) bool {
	t := c.t
	k := twTuple{laddr: dst, faddr: src, lport: c.pcb.LPort, fport: th.SPort}
	mssIdx, ok := t.cookieCheck(k, th.Seq-1, th.Ack-1)
	if !ok {
		return false
	}
	child := &Conn{
		t: t, pf: meta.Family, state: StateEstablished,
		SndBufMax: c.SndBufMax, RcvBufMax: c.RcvBufMax,
		rttTicks: -1, rto: rtoMin, mss: defaultMSS,
		parent: c, Wakeup: c.Wakeup,
	}
	child.pcb = t.Table.Attach(c.pcb.Family, c.pcb.Socket)
	child.pcb.Owner = child
	t.Table.SetTuple(child.pcb, dst, c.pcb.LPort, src, th.SPort)
	if src.IsV4Mapped() {
		child.pcb.Flags &^= pcb.FlagIPv6
	} else {
		child.pcb.Flags |= pcb.FlagIPv6
	}
	t.conns[child] = struct{}{}

	child.mss = t.pathMSS(child.pcb)
	if m := cookieMSS[mssIdx]; m < child.mss {
		child.mss = m
	}
	child.iss = th.Ack - 1
	child.sndUna, child.sndNxt, child.sndMax = th.Ack, th.Ack, th.Ack
	child.irs = th.Seq - 1
	child.rcvNxt = th.Seq
	child.rcvAdv = child.rcvNxt
	child.cwnd = initialCwnd(child.mss)
	child.ssthresh = 1 << 20
	child.sndWnd = int(th.Wnd)
	t.Stats.ConnAccepts.Inc()
	t.Stats.ConnEstab.Inc()
	t.Stats.SynCookiesValidated.Inc()
	if len(c.acceptQ) >= c.backlog {
		child.sendRST()
		child.closeLocked(ErrListenQ)
		return true
	}
	c.acceptQ = append(c.acceptQ, child)
	c.wakeupLocked()
	child.wakeupLocked()
	// The completing ACK may carry data or a FIN; run the rest of the
	// segment through the established machinery.
	if len(data) > 0 || th.Flags&FlagFIN != 0 {
		child.segInput(th, data, meta, src, dst, 0)
	}
	return true
}
