package tcp

import (
	"encoding/binary"
	"testing"
)

// FuzzSynCookie proves the cookie algebra over arbitrary tuples, client
// ISNs and clock positions: a minted cookie round-trips to its exact
// MSS class within the two-unit validity window and dies after it, and
// a forged or cross-tuple cookie is accepted only if it literally
// equals one of the ≤8 values that are valid for that tuple right now
// (the enumerable set, not a probabilistic pass).
func FuzzSynCookie(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint16(0), uint16(0), uint32(0), uint8(0), uint32(0), uint32(0))
	f.Add(uint64(0x20010db800000001), uint64(0x20010db800000002), uint16(80), uint16(43521),
		uint32(0xdeadbeef), uint8(3), uint32(12345), uint32(1000))
	f.Add(uint64(0xffffffffffffffff), uint64(1), uint16(65535), uint16(1),
		uint32(0xffffffff), uint8(2), uint32(0xffffffff), uint32(0xffffffc0))
	f.Fuzz(func(t *testing.T, la, fa uint64, lport, fport uint16, clientISN uint32, mssClass uint8, forged, tick uint32) {
		tc := &TCP{cookieSeed: newCookieSeed(), cookieTick: tick}
		var k twTuple
		binary.BigEndian.PutUint64(k.laddr[8:], la)
		binary.BigEndian.PutUint64(k.faddr[8:], fa)
		k.lport, k.fport = lport, fport

		idx := int(mssClass) % len(cookieMSS)
		cookie := tc.cookieISN(k, clientISN, idx)

		// Round trip at mint time and one coarse unit later.
		for step := 0; step < 2; step++ {
			got, ok := tc.cookieCheck(k, clientISN, cookie)
			if !ok {
				t.Fatalf("fresh cookie rejected at step %d", step)
			}
			if got != idx {
				t.Fatalf("MSS class %d decoded as %d", idx, got)
			}
			tc.cookieTick += 1 << cookieTickShift
		}
		// Two units past mint: stale.
		if _, ok := tc.cookieCheck(k, clientISN, cookie); ok {
			t.Fatal("stale cookie accepted")
		}
		tc.cookieTick = tick

		// validSet enumerates every cookie value cookieCheck may
		// legitimately accept for (tuple, isn) right now: 4 MSS classes
		// × the current and previous time unit.
		validSet := func(k twTuple, isn uint32) map[uint32]bool {
			set := make(map[uint32]bool, 8)
			h1 := cookieHash(tc.cookieSeed[0], k, 0)
			for d := uint32(0); d <= 1; d++ {
				count := (tc.cookieCount() - d) & 0xff
				h2 := cookieHash(tc.cookieSeed[1], k, count)
				for i := uint32(0); i < uint32(len(cookieMSS)); i++ {
					set[h1+isn+count<<24+((h2+i)&0xffffff)] = true
				}
			}
			return set
		}

		// A forged value passes iff it collides with the valid set.
		if _, ok := tc.cookieCheck(k, clientISN, forged); ok != validSet(k, clientISN)[forged] {
			t.Fatalf("forged cookie %#x: check=%v, membership=%v", forged, ok, !ok)
		}
		// The genuine cookie replayed against a perturbed tuple, or with
		// a perturbed client ISN, must fail unless it coincides with the
		// perturbed identity's own valid set.
		for _, k2 := range []twTuple{
			{laddr: k.laddr, faddr: k.faddr, lport: k.lport, fport: k.fport ^ 1},
			{laddr: k.laddr, faddr: k.faddr, lport: k.lport ^ 0x8000, fport: k.fport},
		} {
			if _, ok := tc.cookieCheck(k2, clientISN, cookie); ok != validSet(k2, clientISN)[cookie] {
				t.Fatalf("cross-tuple cookie: check=%v, membership=%v", ok, !ok)
			}
		}
		if _, ok := tc.cookieCheck(k, clientISN+1, cookie); ok != validSet(k, clientISN+1)[cookie] {
			t.Fatalf("wrong-ISN cookie: check=%v, membership=%v", ok, !ok)
		}
	})
}
