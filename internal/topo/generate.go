package topo

import (
	"fmt"
	"math"
	"math/rand"
)

// generate returns the deterministic edge list for spec: each edge is
// a node-ID pair (a, b) with a < b except where the shape dictates
// otherwise; edge order is the link-ID order.
func generate(spec Spec) ([][2]int, error) {
	n := spec.N
	if n < 2 {
		return nil, fmt.Errorf("topo: need at least 2 nodes, got %d", n)
	}
	switch spec.Kind {
	case Line:
		edges := make([][2]int, 0, n-1)
		for i := 0; i < n-1; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		return edges, nil
	case Ring:
		if n < 3 {
			return nil, fmt.Errorf("topo: ring needs at least 3 nodes, got %d", n)
		}
		edges := make([][2]int, 0, n)
		for i := 0; i < n-1; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		return append(edges, [2]int{0, n - 1}), nil
	case Star:
		edges := make([][2]int, 0, n-1)
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{0, i})
		}
		return edges, nil
	case Tree:
		k := spec.Fanout
		if k == 0 {
			k = 2
		}
		if k < 1 {
			return nil, fmt.Errorf("topo: tree fanout must be ≥ 1, got %d", k)
		}
		edges := make([][2]int, 0, n-1)
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{(i - 1) / k, i})
		}
		return edges, nil
	case Waxman:
		return waxman(spec)
	}
	return nil, fmt.Errorf("topo: unknown kind %d", int(spec.Kind))
}

// waxman scatters the nodes on the unit square, guarantees
// connectivity with a random spanning tree, then adds each remaining
// pair (i, j) with the Waxman probability α·e^(−d(i,j)/(β·L)), L the
// diagonal.  Everything is driven by spec.Seed.
func waxman(spec Spec) ([][2]int, error) {
	alpha, beta := spec.Alpha, spec.Beta
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if beta == 0 {
		beta = DefaultBeta
	}
	if alpha < 0 || alpha > 1 || beta <= 0 {
		return nil, fmt.Errorf("topo: waxman needs 0 ≤ alpha ≤ 1 and beta > 0 (got %v, %v)", alpha, beta)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	pos := make([][2]float64, spec.N)
	for i := range pos {
		pos[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	have := make(map[[2]int]bool)
	var edges [][2]int
	add := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if !have[[2]int{a, b}] {
			have[[2]int{a, b}] = true
			edges = append(edges, [2]int{a, b})
		}
	}
	for i := 1; i < spec.N; i++ {
		add(rng.Intn(i), i) // spanning structure: always connected
	}
	l := math.Sqrt2
	for i := 0; i < spec.N; i++ {
		for j := i + 1; j < spec.N; j++ {
			dx, dy := pos[i][0]-pos[j][0], pos[i][1]-pos[j][1]
			d := math.Hypot(dx, dy)
			if rng.Float64() < alpha*math.Exp(-d/(beta*l)) {
				add(i, j)
			}
		}
	}
	return edges, nil
}
