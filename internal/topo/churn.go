package topo

import (
	"math/rand"

	"bsd6/internal/netif"
)

// SeverLink partitions link id's hub so its two endpoints can no
// longer hear each other — the link is down without either interface
// knowing.  Idempotent.
func (nw *Network) SeverLink(id int) {
	lk := nw.Links[id]
	lk.Hub.Partition(
		[]*netif.Interface{nw.Nodes[lk.A].Ports[id]},
		[]*netif.Interface{nw.Nodes[lk.B].Ports[id]},
	)
	nw.mu.Lock()
	nw.severed[id] = true
	nw.mu.Unlock()
}

// HealLink removes link id's partition.  Idempotent.
func (nw *Network) HealLink(id int) {
	nw.Links[id].Hub.Partition()
	nw.mu.Lock()
	delete(nw.severed, id)
	nw.mu.Unlock()
}

// HealAll heals every severed link.
func (nw *Network) HealAll() {
	nw.mu.Lock()
	down := make([]int, 0, len(nw.severed))
	for id := range nw.severed {
		down = append(down, id)
	}
	nw.mu.Unlock()
	for _, id := range down {
		nw.HealLink(id)
	}
}

// SeveredLinks reports how many links are currently down.
func (nw *Network) SeveredLinks() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return len(nw.severed)
}

// ChurnStep flips the state of one rng-chosen link — severs it if up,
// heals it if down — and reports which link and its new state.  A
// loop of ChurnStep calls is a partition/heal storm.
func (nw *Network) ChurnStep(rng *rand.Rand) (link int, nowSevered bool) {
	link = rng.Intn(len(nw.Links))
	nw.mu.Lock()
	down := nw.severed[link]
	nw.mu.Unlock()
	if down {
		nw.HealLink(link)
		return link, false
	}
	nw.SeverLink(link)
	return link, true
}

// Reachable reports whether a path of healed links connects nodes a
// and b right now (graph reachability, not a data-plane probe).
func (nw *Network) Reachable(a, b int) bool {
	return nw.hops(a, b) >= 0
}

// Hops returns the healed-path hop count between nodes a and b (0 for
// a == b), or -1 when the current partitions disconnect them.
func (nw *Network) Hops(a, b int) int { return nw.hops(a, b) }

func (nw *Network) hops(a, b int) int {
	if a == b {
		return 0
	}
	nw.mu.Lock()
	adj := make([][]int, len(nw.Nodes))
	for _, lk := range nw.Links {
		if nw.severed[lk.ID] {
			continue
		}
		adj[lk.A] = append(adj[lk.A], lk.B)
		adj[lk.B] = append(adj[lk.B], lk.A)
	}
	nw.mu.Unlock()
	dist := make([]int, len(nw.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	queue := []int{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, p := range adj[v] {
			if dist[p] != -1 {
				continue
			}
			dist[p] = dist[v] + 1
			if p == b {
				return dist[p]
			}
			queue = append(queue, p)
		}
	}
	return -1
}
