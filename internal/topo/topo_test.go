package topo

import (
	"fmt"
	"testing"
	"time"

	"bsd6/internal/testnet"
	"bsd6/internal/vclock"
)

func buildStart(t *testing.T, spec Spec) *Network {
	t.Helper()
	if spec.Clock == nil {
		spec.Clock = vclock.NewVirtual(time.Unix(0, 0))
	}
	nw, err := Build(spec)
	if err != nil {
		t.Fatalf("Build(%v/%d): %v", spec.Kind, spec.N, err)
	}
	t.Cleanup(nw.Close)
	nw.Start()
	return nw
}

// ping sends one echo from node a to node b's first global address
// and waits for the reply.
func ping(t *testing.T, nw *Network, a, b int) {
	t.Helper()
	dst, ok := nw.Nodes[b].Addr()
	if !ok {
		t.Fatalf("node %d has no address", b)
	}
	src := nw.Nodes[a]
	before := src.S.Snapshot().ICMP6["InEchoReps"]
	if err := src.S.Ping6(dst, uint16(a+1), uint16(b+1), []byte("topo")); err != nil {
		t.Fatalf("ping n%d -> n%d: %v", a, b, err)
	}
	testnet.WaitFor(t, fmt.Sprintf("echo reply n%d->n%d", a, b), func() bool {
		return src.S.Snapshot().ICMP6["InEchoReps"] > before
	})
}

func TestLineMultiHop(t *testing.T) {
	nw := buildStart(t, Spec{Kind: Line, N: 5, Seed: 1})
	if got := nw.Hops(0, 4); got != 4 {
		t.Fatalf("Hops(0,4) = %d, want 4", got)
	}
	ping(t, nw, 0, 4) // three routers in between
	// The interior nodes forwarded: echo out + echo reply back.
	for i := 1; i <= 3; i++ {
		snap := nw.Nodes[i].S.Snapshot()
		if snap.IP6["Forwarded"] == 0 {
			t.Errorf("n%d forwarded nothing", i)
		}
	}
	// Repeat pings ride the held-route shards.
	ping(t, nw, 0, 4)
	ping(t, nw, 0, 4)
	var hits uint64
	for i := 1; i <= 3; i++ {
		hits += nw.Nodes[i].S.Snapshot().IP6["FwdCacheHits"]
	}
	if hits == 0 {
		t.Errorf("no forwarding cache hits after repeat pings")
	}
}

func TestGeneratorShapes(t *testing.T) {
	cases := []struct {
		spec    Spec
		links   int
		routers int
	}{
		{Spec{Kind: Line, N: 6}, 5, 4},
		{Spec{Kind: Ring, N: 6}, 6, 6},
		{Spec{Kind: Star, N: 6}, 5, 1},
		{Spec{Kind: Tree, N: 7, Fanout: 2}, 6, 3},
	}
	for _, c := range cases {
		nw, err := Build(c.spec)
		if err != nil {
			t.Fatalf("Build(%v): %v", c.spec.Kind, err)
		}
		routers := 0
		for _, n := range nw.Nodes {
			if n.Router {
				routers++
			}
		}
		if len(nw.Links) != c.links || routers != c.routers {
			t.Errorf("%v/%d: links=%d routers=%d, want %d/%d",
				c.spec.Kind, c.spec.N, len(nw.Links), routers, c.links, c.routers)
		}
		nw.Close()
	}
}

func TestWaxmanConnectedDeterministic(t *testing.T) {
	a, err := Build(Spec{Kind: Waxman, N: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Build(Spec{Kind: Waxman, N: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if len(a.Links) != len(b.Links) {
		t.Fatalf("same seed, different link counts: %d vs %d", len(a.Links), len(b.Links))
	}
	for i := range a.Links {
		if a.Links[i].A != b.Links[i].A || a.Links[i].B != b.Links[i].B {
			t.Fatalf("same seed, different edge %d", i)
		}
	}
	for i := 1; i < len(a.Nodes); i++ {
		if !a.Reachable(0, i) {
			t.Fatalf("waxman graph disconnected: n0 !-> n%d", i)
		}
	}
}

func TestSeverHealReachability(t *testing.T) {
	nw := buildStart(t, Spec{Kind: Ring, N: 5, Seed: 3})
	nw.SeverLink(0) // ring survives one cut
	if !nw.Reachable(0, 1) {
		t.Fatal("ring with one cut should stay connected")
	}
	nw.SeverLink(2)
	if nw.Reachable(0, 1) == nw.Reachable(0, 4) {
		// two cuts split the ring; exactly one side keeps n0
		t.Log("partition layout:", nw.Reachable(0, 1), nw.Reachable(0, 4))
	}
	if nw.SeveredLinks() != 2 {
		t.Fatalf("SeveredLinks = %d, want 2", nw.SeveredLinks())
	}
	nw.HealAll()
	if nw.SeveredLinks() != 0 || !nw.Reachable(0, 3) {
		t.Fatal("HealAll did not restore the ring")
	}
	ping(t, nw, 0, 3)
}
