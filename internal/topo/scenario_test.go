package topo

// Multi-hop scenario suites: the behaviors the paper could not show
// on a two-host wire, run on generated topologies — PMTU discovery
// across a chain of routers with shrinking MTUs, an RA-driven
// autoconf cascade down a tree, and a tunnel island bridged across a
// routed core.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"bsd6/internal/core"
	"bsd6/internal/inet"
	"bsd6/internal/testnet"
	"bsd6/internal/tunnel"
)

// waitUntil polls cond for up to d of real time, returning whether it
// ever held.  Unlike testnet.WaitFor it does not fail the test — PMTU
// convergence loops use it to distinguish "reply arrived" from "try
// again with the newly learned MTU".
func waitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	return false
}

// tcpEcho runs one stream connection from a to b's addr:port, pushes
// body over it, and fails unless the byte-reversed echo comes back
// intact — a full three-way handshake, data transfer and close across
// however many routers sit between the two nodes.
func tcpEcho(t *testing.T, a, b *core.Stack, dst inet.IP6, port uint16, body []byte) {
	t.Helper()
	l, err := b.NewSocket(inet.AFInet6, core.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: port}); err != nil {
		t.Fatal(err)
	}
	if err := l.Listen(1); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(body))
	for i, c := range body {
		back[len(body)-1-i] = c
	}
	srvErr := make(chan error, 1)
	go func() {
		s, err := l.Accept(5 * time.Minute)
		if err != nil {
			srvErr <- fmt.Errorf("accept: %w", err)
			return
		}
		defer s.Close()
		var rcvd []byte
		for len(rcvd) < len(body) {
			chunk, err := s.Recv(1<<16, 5*time.Minute)
			if err != nil {
				srvErr <- fmt.Errorf("recv at %d: %w", len(rcvd), err)
				return
			}
			rcvd = append(rcvd, chunk...)
		}
		if !bytes.Equal(rcvd, body) {
			srvErr <- fmt.Errorf("forward stream corrupted (%d bytes)", len(rcvd))
			return
		}
		if _, err := s.Send(back, 5*time.Minute); err != nil {
			srvErr <- fmt.Errorf("send back: %w", err)
			return
		}
		srvErr <- nil
	}()
	c, err := a.NewSocket(inet.AFInet6, core.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Connect(core.Addr6(dst, port), 5*time.Minute); err != nil {
		t.Fatalf("connect: %v", err)
	}
	rest := body
	for len(rest) > 0 {
		n, err := c.Send(rest, 5*time.Minute)
		if err != nil {
			t.Fatalf("send: %v", err)
		}
		rest = rest[n:]
	}
	var got []byte
	for len(got) < len(back) {
		chunk, err := c.Recv(1<<16, 5*time.Minute)
		if err != nil {
			t.Fatalf("recv echo at %d: %v", len(got), err)
		}
		got = append(got, chunk...)
	}
	if !bytes.Equal(got, back) {
		t.Fatal("echoed stream corrupted")
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
}

// TestPMTUChainConvergence sends an oversized echo down a line of five
// routers whose link MTUs shrink hop by hop.  Each router reports
// Packet Too Big instead of fragmenting (§2.2); the source's host
// route walks down 1460 → 1420 → … until it learns the 1300-byte path
// minimum and the fragmented echo finally crosses end to end.
func TestPMTUChainConvergence(t *testing.T) {
	const minMTU = 1300
	nw := buildStart(t, Spec{Kind: Line, N: 7, Seed: 1,
		LinkMTUFn: func(l int) int { return 1500 - 40*l }, // 1500,1460,…,1300
	})
	src, dstNode := nw.Nodes[0], nw.Nodes[6]
	dst, _ := dstNode.Addr()
	payload := make([]byte, 1400) // 1448 on the wire: over every MTU past link 1

	replies := func() uint64 { return src.S.Snapshot().ICMP6["InEchoReps"] }
	pmtus := func() uint64 { return src.S.Snapshot().ICMP6["PmtuUpdates"] }
	base, lastPmtu := replies(), pmtus()
	for attempt := 0; attempt < 12 && replies() == base; attempt++ {
		if err := src.S.Ping6(dst, 7, uint16(attempt), payload); err != nil {
			t.Fatal(err)
		}
		// Progress is either the reply or a narrower PMTU to retry at.
		if !waitUntil(2*time.Second, func() bool {
			return replies() > base || pmtus() > lastPmtu
		}) {
			t.Fatalf("attempt %d: no reply and no PMTU progress", attempt)
		}
		lastPmtu = pmtus()
	}
	if replies() == base {
		t.Fatal("echo never crossed the shrinking-MTU chain")
	}

	// The source's host route converged on the path minimum.
	rt, ok := src.S.RT.Lookup(inet.AFInet6, dst[:])
	if !ok {
		t.Fatal("no route to dst after pinging it")
	}
	var mtu int
	var host bool
	src.S.RT.View(func() { mtu, host = rt.MTU, rt.Host() })
	if !host || mtu != minMTU {
		t.Fatalf("source host route MTU = %d (host=%v), want %d", mtu, host, minMTU)
	}
	if pmtus() < 3 {
		t.Errorf("PmtuUpdates = %d: the chain should narrow at least 3 times", pmtus())
	}
	// IPv6 routers never fragment in transit; only the source does.
	for i := 1; i <= 5; i++ {
		if f := nw.Nodes[i].S.Snapshot().IP6["OutFrags"]; f != 0 {
			t.Errorf("router n%d fragmented %d packets in transit", i, f)
		}
	}
	if f := src.S.Snapshot().IP6["OutFrags"]; f < 2 {
		t.Errorf("source OutFrags = %d: converged echo should be fragmented", f)
	}
}

// TestAutoconfCascadeTree boots a tree whose leaves are unnumbered
// hosts: interior routers advertise their link prefixes, SolicitLeaves
// kicks the RA cascade, and every leaf must form a global address and
// a default route good enough to reach a leaf on the far side of the
// tree — §4.2's plug-and-play, three router hops deep.
func TestAutoconfCascadeTree(t *testing.T) {
	nw := buildStart(t, Spec{Kind: Tree, N: 7, Fanout: 2, Seed: 2, Autoconf: true})
	nw.SolicitLeaves()

	leaves := []int{3, 4, 5, 6}
	for _, id := range leaves {
		id := id
		testnet.WaitFor(t, fmt.Sprintf("n%d autoconf address", id), func() bool {
			_, ok := nw.Nodes[id].AutoAddr()
			return ok
		})
	}
	// Leaf-to-leaf across the whole tree: n3 under n1, n6 under n2.
	dst, _ := nw.Nodes[6].AutoAddr()
	src := nw.Nodes[3]
	before := src.S.Snapshot().ICMP6["InEchoReps"]
	if err := src.S.Ping6(dst, 3, 6, []byte("autoconf")); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "leaf-to-leaf echo reply", func() bool {
		return src.S.Snapshot().ICMP6["InEchoReps"] > before
	})
	// The path used the RA-installed default route on both ends and
	// transited the root.
	if f := nw.Nodes[0].S.Snapshot().IP6["Forwarded"]; f == 0 {
		t.Error("root forwarded nothing: cascade did not cross the tree")
	}
}

// TestTunnelIslandAcrossCore bridges two island edge nodes with a 6in6
// configured tunnel whose outer path crosses a routed line core: inner
// fd00::/64 traffic must encapsulate at one end, transit three routers
// as outer packets, and decapsulate at the other — then carry a TCP
// stream both ways.
func TestTunnelIslandAcrossCore(t *testing.T) {
	nw := buildStart(t, Spec{Kind: Line, N: 5, Seed: 3})
	a, b := nw.Nodes[0], nw.Nodes[4]
	outerA, _ := a.Addr()
	outerB, _ := b.Addr()

	tunA, err := a.S.AddTunnel(tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in6,
		Local6: outerA, Remote6: outerB})
	if err != nil {
		t.Fatal(err)
	}
	tunB, err := b.S.AddTunnel(tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in6,
		Local6: outerB, Remote6: outerA})
	if err != nil {
		t.Fatal(err)
	}
	island := func(host byte) inet.IP6 { return inet.IP6{0xfd, 15: host} }
	if err := a.S.ConfigureV6(tunA.Ifp, island(1), 64); err != nil {
		t.Fatal(err)
	}
	if err := b.S.ConfigureV6(tunB.Ifp, island(2), 64); err != nil {
		t.Fatal(err)
	}

	before := a.S.Snapshot().ICMP6["InEchoReps"]
	if err := a.S.Ping6(island(2), 9, 1, []byte("island")); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "tunneled echo reply", func() bool {
		return a.S.Snapshot().ICMP6["InEchoReps"] > before
	})
	if s := tunA.Stats(); s.Encapped == 0 {
		t.Fatalf("tunA stats %+v: nothing encapsulated", s)
	}
	if s := tunB.Stats(); s.Decapped == 0 {
		t.Fatalf("tunB stats %+v: nothing decapsulated", s)
	}
	// The core only ever saw outer packets, and it forwarded them.
	for i := 1; i <= 3; i++ {
		if f := nw.Nodes[i].S.Snapshot().IP6["Forwarded"]; f == 0 {
			t.Errorf("core router n%d forwarded nothing", i)
		}
	}
	tcpEcho(t, a.S, b.S, island(2), 7777, bytes.Repeat([]byte("island-stream"), 512))
}
