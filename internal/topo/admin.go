package topo

import "bsd6/internal/admin"

// Admin builds the topology's admin plane: one endpoint per node,
// registered under the node's name, with the static link adjacency
// served as the peer list.  Crawling it from any node reaches the
// whole fleet regardless of data-plane partitions.
func (nw *Network) Admin() *admin.Network {
	an := admin.NewNetwork()
	for _, n := range nw.Nodes {
		peers := make([]admin.Peer, 0, len(n.Links))
		for _, l := range n.Links {
			lk := nw.Links[l]
			peerID := lk.A
			if peerID == n.ID {
				peerID = lk.B
			}
			p := admin.Peer{Name: nw.Nodes[peerID].Name, Link: l, MTU: lk.MTU}
			if a, ok := nw.Nodes[peerID].Addrs[l]; ok {
				p.Addr = a.String()
			}
			peers = append(peers, p)
		}
		an.Register(admin.NewServer(n.S, admin.NodeInfo{
			Name: n.Name, Router: n.Router, Peers: peers,
		}))
	}
	return an
}
