package topo

// The partition/heal churn soak: a generated 100-node internet
// survives thousands of random link flaps under live traffic, with
// the admin crawler auditing the whole fleet between storms.  The
// contract is the acceptance criterion end to end — no node leaks
// mbufs (poison-on-free armed throughout), every discard carries a
// typed reason, multi-hop TCP flows complete once links heal, and the
// crawl always reaches all N nodes because the management plane does
// not ride the data plane.
//
// Scale: the full 100-node / 10k-event storm runs by default (CI's
// topo-soak job); -short runs a smaller storm with the same
// assertions.  Set TOPO_REPORT=<path> to write the final fleet report
// JSON — the artifact CI uploads next to the bench snapshot.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"bsd6/internal/admin"
	"bsd6/internal/mbuf"
	"bsd6/internal/testnet"
)

func soakScale(t *testing.T) (nodes, events, rounds int) {
	if testing.Short() {
		return 30, 1000, 5
	}
	return 100, 10000, 10
}

// farPair picks the most distant currently-connected node pair, so
// the soak's TCP flows are genuinely multi-hop.
func farPair(nw *Network) (a, b, hops int) {
	for i := 0; i < len(nw.Nodes); i += 7 {
		for j := 1; j < len(nw.Nodes); j += 11 {
			if h := nw.Hops(i, j); h > hops {
				a, b, hops = i, j, h
			}
		}
	}
	return a, b, hops
}

func TestChurnSoakFleet(t *testing.T) {
	mbuf.SetPoison(true)
	t.Cleanup(func() { mbuf.SetPoison(false) })
	base := mbuf.Outstanding()

	nodes, events, rounds := soakScale(t)
	nw := buildStart(t, Spec{Kind: Waxman, N: nodes, Seed: 42})
	an := nw.Admin()
	crawler := &admin.Crawler{Net: an}
	rng := rand.New(rand.NewSource(99))

	var report *admin.FleetReport
	perRound := events / rounds
	for round := 0; round < rounds; round++ {
		// The storm: flip random links while pings fly into whatever
		// is reachable (or not — those drops must come back typed).
		for e := 0; e < perRound; e++ {
			nw.ChurnStep(rng)
			if e%50 == 0 {
				src := nw.Nodes[rng.Intn(nodes)]
				if dst, ok := nw.Nodes[rng.Intn(nodes)].Addr(); ok {
					src.S.Ping6(dst, uint16(round), uint16(e), []byte("storm")) //nolint:errcheck
				}
			}
		}
		nw.HealAll()
		testnet.WaitFor(t, "fleet quiescent after heal", func() bool { return nw.Pending() == 0 })

		// Healed data plane carries a real multi-hop stream.
		if round%2 == 0 {
			a, b, hops := farPair(nw)
			if hops < 2 {
				t.Fatalf("round %d: farthest pair only %d hops", round, hops)
			}
			dst, _ := nw.Nodes[b].Addr()
			tcpEcho(t, nw.Nodes[a].S, nw.Nodes[b].S, dst, uint16(9000+round),
				bytes.Repeat([]byte{byte('a' + round)}, 4096))
		}

		// The crawl reaches every node regardless of what the storm
		// did to the data plane, and every discard is typed.
		r, err := crawler.Crawl(nw.Nodes[0].Name)
		if err != nil {
			t.Fatalf("round %d: crawl: %v", round, err)
		}
		if r.Crawled != nodes || len(r.Unreachable) != 0 {
			t.Fatalf("round %d: crawled %d/%d nodes, unreachable %v",
				round, r.Crawled, nodes, r.Unreachable)
		}
		for reason := range r.TotalDrops {
			if reason == "" {
				t.Fatalf("round %d: untyped drop reason in fleet report", round)
			}
		}
		report = r
	}

	// Leak audit: with every link healed and all traffic quiesced, the
	// pool gauge must return to its pre-soak level — churn left no
	// orphaned mbufs in any of the N nodes' queues.  The virtual clock
	// free-runs here, so reassembly and ND expirations all fire.
	nw.HealAll()
	if !waitUntil(10*time.Second, func() bool {
		return nw.Pending() == 0 && mbuf.Outstanding() == base
	}) {
		t.Fatalf("pool gauge stuck at %d (baseline %d) after %d churn events — leaked mbufs",
			mbuf.Outstanding(), base, events)
	}

	t.Logf("soak: %d nodes, %d links, %d churn events, %d transit packets (%d cached), drops: %v",
		nodes, len(nw.Links), events, report.TotalForwarded, report.TotalFwdCacheHits, report.TotalDrops)

	if path := os.Getenv("TOPO_REPORT"); path != "" {
		final, err := crawler.Crawl(nw.Nodes[0].Name)
		if err != nil {
			t.Fatalf("final crawl: %v", err)
		}
		blob, _ := json.MarshalIndent(final, "", "  ")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatalf("writing TOPO_REPORT: %v", err)
		}
		t.Logf("fleet report written to %s", path)
	}
}
