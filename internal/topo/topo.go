// Package topo generates many-node simulated internets: line, star,
// ring, tree and random Waxman-style graphs of full core.Stack nodes
// (100–1000 of them) wired together over netif hubs, with every node
// of degree ≥ 2 acting as an IPv6 router forwarding between its links
// through the held-route fast path.
//
// The paper validated its stack between two hosts on one wire (§7);
// the behaviors that only emerge on multi-hop topologies — PMTU
// discovery across router chains, RA-driven autoconf cascades,
// routing around partitions — need a network.  A Network is that
// substrate: hubs become links, stacks become nodes, and a shared
// virtual clock (or the real one, for benchmarks) drives them all.
//
// Addressing is deterministic: link l owns the /64 prefix
// 2001:db8:<l+1>::/64 and node n's address on it is <prefix>::<n+1>.
// Routing is static: Build computes shortest paths (BFS, hop metric)
// and installs one gateway route per off-link prefix on every node,
// exactly the state a routing daemon would have converged to.  Churn
// helpers sever and heal individual links via hub partition, so
// partition/heal storms run against live traffic.
package topo

import (
	"fmt"
	"sync"
	"time"

	"bsd6/internal/core"
	"bsd6/internal/icmp6"
	"bsd6/internal/inet"
	"bsd6/internal/netif"
	"bsd6/internal/route"
	"bsd6/internal/vclock"
)

// Kind selects a topology generator.
type Kind int

// The generated graph families.
const (
	// Line is a chain: n0 — n1 — … — n(N-1).  Interior nodes route.
	Line Kind = iota
	// Ring closes the chain: every node has degree 2 and routes.
	Ring
	// Star attaches n1..n(N-1) to the hub node n0.
	Star
	// Tree is a complete Fanout-ary tree rooted at n0; interior
	// nodes route, leaves are hosts.
	Tree
	// Waxman scatters nodes on the unit square, connects a random
	// spanning tree (so the graph is always connected), then adds
	// extra edges with the Waxman probability α·e^(−d/(β·L)).
	Waxman
)

// String names the topology kind.
func (k Kind) String() string {
	switch k {
	case Line:
		return "line"
	case Ring:
		return "ring"
	case Star:
		return "star"
	case Tree:
		return "tree"
	case Waxman:
		return "waxman"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Waxman defaults: α scales overall edge density, β the tolerance for
// long edges (L is the unit square's diagonal).
const (
	DefaultAlpha = 0.15
	DefaultBeta  = 0.25
)

// Spec describes a topology to build.
type Spec struct {
	// Kind picks the generator; N is the node count (≥ 2).
	Kind Kind
	N    int
	// Fanout is the tree arity (Tree only; default 2).
	Fanout int
	// Alpha and Beta are the Waxman edge-probability parameters
	// (Waxman only; defaults DefaultAlpha / DefaultBeta).
	Alpha, Beta float64
	// Seed drives every random choice (Waxman geometry); the same
	// Spec always builds the same network.
	Seed int64
	// LinkMTU applies to every link (default 1500); LinkMTUFn, when
	// non-nil, overrides it per link ID (return ≤ 0 to keep LinkMTU)
	// — shrinking-MTU PMTU chains are one closure away.
	LinkMTU   int
	LinkMTUFn func(link int) int
	// Autoconf leaves host (degree-1) nodes unnumbered: their
	// adjacent routers advertise the link prefix, and the hosts
	// acquire addresses and default routes from RAs after
	// SolicitLeaves — the §4.2 cascade at topology scale.  Routers
	// are always statically numbered and routed.
	Autoconf bool
	// Stack is the Options template for every node (Clock is
	// overridden by Spec.Clock; NetisrWorkers defaults to 1 here —
	// hundreds of stacks × GOMAXPROCS workers oversubscribes the
	// scheduler).
	Stack core.Options
	// Clock, when non-nil, runs the whole network on virtual time;
	// nil runs on the real clock (benchmarks).
	Clock *vclock.Virtual
}

// Link is one shared-medium segment connecting two nodes.
type Link struct {
	ID   int
	A, B int // node IDs of the endpoints
	Hub  *netif.Hub
	MTU  int
	// Prefix is the link's /64.
	Prefix inet.IP6
}

// Node is one stack in the network.
type Node struct {
	ID   int
	Name string // "n<ID>", also the node's admin name
	S    *core.Stack
	// Router reports whether the node forwards (degree ≥ 2).
	Router bool
	// Links lists the IDs of the links the node sits on; Ports and
	// Addrs index the node's interface and global address by link ID
	// (Autoconf hosts have no static Addrs entry).
	Links []int
	Ports map[int]*netif.Interface
	Addrs map[int]inet.IP6
}

// Addr returns the node's first global address (its address on the
// lowest-numbered link), or false for an unnumbered autoconf host
// that has not yet acquired one.
func (n *Node) Addr() (inet.IP6, bool) {
	for _, l := range n.Links {
		if a, ok := n.Addrs[l]; ok {
			return a, true
		}
	}
	return inet.IP6{}, false
}

// AutoAddr returns the node's first autoconfigured global address —
// the one an unnumbered Autoconf host formed from a Router
// Advertisement — or false while it has none (DAD still running, or
// no RA heard yet).
func (n *Node) AutoAddr() (inet.IP6, bool) {
	for _, l := range n.Links {
		for _, a := range n.Ports[l].Addrs6() {
			if a.Autoconf && !a.Tentative && !a.Addr.IsLinkLocal() {
				return a.Addr, true
			}
		}
	}
	return inet.IP6{}, false
}

// Network is a built topology: stacks wired over hubs, routed, ready
// for traffic.  Start launches the vclock driver (virtual-clock
// networks); Close stops everything.
type Network struct {
	Spec  Spec
	Clock *vclock.Virtual // nil when running on the real clock
	Nodes []*Node
	Links []*Link

	mu      sync.Mutex
	severed map[int]bool
	driver  *vclock.Driver
}

// raInterval keeps unsolicited RAs rare; autoconf cascades are driven
// by solicitation, not periodic chatter across hundreds of links.
const raInterval = 10 * time.Minute

// Build wires the Spec into a running network: generates the graph,
// boots one core.Stack per node, attaches and numbers every link,
// enables forwarding on routers, and installs the converged static
// routes.  The returned network is quiescent; call Start to launch
// the clock driver before running virtual-time traffic.
func Build(spec Spec) (*Network, error) {
	edges, err := generate(spec)
	if err != nil {
		return nil, err
	}
	if spec.LinkMTU == 0 {
		spec.LinkMTU = 1500
	}
	opts := spec.Stack
	if spec.Clock != nil {
		opts.Clock = spec.Clock
	}
	if opts.NetisrWorkers == 0 {
		opts.NetisrWorkers = 1
	}

	nw := &Network{Spec: spec, Clock: spec.Clock, severed: make(map[int]bool)}
	deg := make([]int, spec.N)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	nw.Nodes = make([]*Node, spec.N)
	for i := range nw.Nodes {
		n := &Node{
			ID: i, Name: fmt.Sprintf("n%d", i), Router: deg[i] >= 2,
			Ports: make(map[int]*netif.Interface),
			Addrs: make(map[int]inet.IP6),
		}
		n.S = core.NewStack(n.Name, opts)
		n.S.V6.Forwarding = n.Router
		nw.Nodes[i] = n
	}

	nw.Links = make([]*Link, len(edges))
	for l, e := range edges {
		hub := netif.NewHub()
		if spec.Clock != nil {
			hub.SetClock(spec.Clock)
		}
		mtu := spec.LinkMTU
		if spec.LinkMTUFn != nil {
			if m := spec.LinkMTUFn(l); m > 0 {
				mtu = m
			}
		}
		lk := &Link{ID: l, A: e[0], B: e[1], Hub: hub, MTU: mtu, Prefix: LinkPrefix(l)}
		nw.Links[l] = lk
		for _, id := range [2]int{lk.A, lk.B} {
			n := nw.Nodes[id]
			ifp := n.S.AttachLink(hub, macFor(l, id), mtu)
			n.Ports[l] = ifp
			n.Links = append(n.Links, l)
			if spec.Autoconf && !n.Router {
				continue // address and default route arrive via RA
			}
			a := NodeAddr(l, id)
			if err := n.S.ConfigureV6(ifp, a, 64); err != nil {
				nw.Close()
				return nil, fmt.Errorf("topo: configure %s on link %d: %w", n.Name, l, err)
			}
			n.Addrs[l] = a
		}
	}

	if spec.Autoconf {
		for _, lk := range nw.Links {
			nw.enableRA(lk, lk.A, lk.B)
			nw.enableRA(lk, lk.B, lk.A)
		}
	}
	nw.installRoutes()
	return nw, nil
}

// enableRA turns on Router Advertisements on r's port of lk when the
// far endpoint is an unnumbered autoconf host.
func (nw *Network) enableRA(lk *Link, r, peer int) {
	rn, pn := nw.Nodes[r], nw.Nodes[peer]
	if !rn.Router || pn.Router {
		return
	}
	rn.S.EnableRouter6(rn.Ports[lk.ID].Name, icmp6.RouterConfig{
		Interval: raInterval,
		Prefixes: []icmp6.PrefixInfo{{
			Prefix: lk.Prefix, Plen: 64, OnLink: true, Autonomous: true,
		}},
	})
}

// SolicitLeaves makes every unnumbered autoconf host send a Router
// Solicitation on each of its links — the kick that starts the RA
// cascade.  No-op on statically numbered networks.
func (nw *Network) SolicitLeaves() {
	if !nw.Spec.Autoconf {
		return
	}
	for _, n := range nw.Nodes {
		if n.Router {
			continue
		}
		for _, l := range n.Links {
			n.S.SolicitRouters(n.Ports[l].Name)
		}
	}
}

// installRoutes computes per-node shortest paths (BFS, hop metric)
// and installs a static gateway route for every off-link prefix —
// the state a converged routing daemon would have left behind.
// Autoconf hosts are skipped; they route via the RA default route.
func (nw *Network) installRoutes() {
	type hop struct{ peer, link int }
	adj := make([][]hop, len(nw.Nodes))
	for _, lk := range nw.Links {
		adj[lk.A] = append(adj[lk.A], hop{lk.B, lk.ID})
		adj[lk.B] = append(adj[lk.B], hop{lk.A, lk.ID})
	}
	dist := make([]int, len(nw.Nodes))
	firstLink := make([]int, len(nw.Nodes)) // first link on u's path to each node
	queue := make([]int, 0, len(nw.Nodes))
	for _, u := range nw.Nodes {
		if nw.Spec.Autoconf && !u.Router {
			continue
		}
		for i := range dist {
			dist[i], firstLink[i] = -1, -1
		}
		dist[u.ID] = 0
		queue = append(queue[:0], u.ID)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, h := range adj[v] {
				if dist[h.peer] != -1 {
					continue
				}
				dist[h.peer] = dist[v] + 1
				if v == u.ID {
					firstLink[h.peer] = h.link
				} else {
					firstLink[h.peer] = firstLink[v]
				}
				queue = append(queue, h.peer)
			}
		}
		for _, lk := range nw.Links {
			if lk.A == u.ID || lk.B == u.ID {
				continue // on-link: ConfigureV6 installed the cloning route
			}
			// Route toward the endpoint nearer to u; its first hop
			// is always an interior (router) node, so the gateway
			// address exists even under Autoconf.
			t := lk.A
			if dist[lk.B] != -1 && (dist[lk.A] == -1 || dist[lk.B] < dist[lk.A]) {
				t = lk.B
			}
			if dist[t] == -1 {
				continue // unreachable in a disconnected graph
			}
			via := firstLink[t]
			g := nw.Links[via].A
			if g == u.ID {
				g = nw.Links[via].B
			}
			gw, ok := nw.Nodes[g].Addrs[via]
			if !ok {
				continue
			}
			u.S.RT.Add(&route.Entry{
				Family: inet.AFInet6, Dst: append([]byte(nil), lk.Prefix[:]...), Plen: 64,
				Gateway: gw, Flags: route.FlagUp | route.FlagGateway | route.FlagStatic,
				IfName: u.Ports[via].Name,
			})
		}
	}
}

// Start launches the virtual-clock driver with every stack's Pending
// as a probe (hubs are clock-gated and must not hold the clock back).
// No-op on real-clock networks.
func (nw *Network) Start() {
	if nw.Clock == nil || nw.driver != nil {
		return
	}
	probes := make([]func() int, len(nw.Nodes))
	for i, n := range nw.Nodes {
		probes[i] = n.S.Pending
	}
	nw.driver = vclock.NewDriver(nw.Clock, probes...)
	nw.driver.Start()
}

// Close stops the driver and every stack.
func (nw *Network) Close() {
	if nw.driver != nil {
		nw.driver.Stop()
		nw.driver = nil
	}
	for _, n := range nw.Nodes {
		if n != nil && n.S != nil {
			n.S.Close()
		}
	}
}

// Pending sums in-flight work across every stack and hub — zero means
// the network is quiescent at the current clock reading.
func (nw *Network) Pending() int {
	t := 0
	for _, n := range nw.Nodes {
		t += n.S.Pending()
	}
	for _, lk := range nw.Links {
		t += lk.Hub.Pending()
	}
	return t
}

// LinkPrefix returns link l's /64: 2001:db8:<l+1>::/64.
func LinkPrefix(l int) inet.IP6 {
	return inet.IP6{0x20, 0x01, 0x0d, 0xb8, byte((l + 1) >> 8), byte(l + 1)}
}

// NodeAddr returns node n's address on link l: <LinkPrefix(l)>::<n+1>.
func NodeAddr(l, n int) inet.IP6 {
	a := LinkPrefix(l)
	a[14], a[15] = byte((n+1)>>8), byte(n+1)
	return a
}

// macFor derives a globally unique locally administered MAC for node
// n's port on link l.
func macFor(l, n int) inet.LinkAddr {
	return inet.LinkAddr{0x02, byte((l + 1) >> 8), byte(l + 1), 0, byte(n >> 8), byte(n)}
}
