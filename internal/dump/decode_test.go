package dump_test

import (
	"strings"
	"testing"

	"bsd6/internal/dump"
	"bsd6/internal/inet"
	"bsd6/internal/ipv4"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
)

func frameOf(et uint16, payload []byte) netif.Frame {
	return netif.Frame{
		Src: inet.LinkAddr{2, 0, 0, 0, 0, 1}, Dst: inet.LinkAddr{2, 0, 0, 0, 0, 2},
		EtherType: et, Payload: mbuf.New(payload),
	}
}

func TestDecodeTruncatedInputs(t *testing.T) {
	cases := []struct {
		name string
		fr   netif.Frame
		want string
	}{
		{"short-arp", frameOf(ipv4.EtherTypeARP, []byte{0, 1}), "ARP, truncated"},
		{"bad-v4", frameOf(netif.EtherTypeIPv4, []byte{0x45, 0}), "bad header"},
		{"bad-v6", frameOf(netif.EtherTypeIPv6, []byte{0x60}), "bad header"},
		{"unknown-ethertype", frameOf(0x1234, []byte{1, 2, 3}), "ethertype 0x1234"},
	}
	for _, c := range cases {
		got := dump.Frame(c.fr)
		if !strings.Contains(got, c.want) {
			t.Errorf("%s: %q missing %q", c.name, got, c.want)
		}
	}
}

func TestDecodeTruncatedTransports(t *testing.T) {
	mk6 := func(nh uint8, payload []byte) netif.Frame {
		h := &ipv6.Header{NextHdr: nh, HopLimit: 1, PayloadLen: len(payload)}
		b := append(h.Marshal(nil), payload...)
		return frameOf(netif.EtherTypeIPv6, b)
	}
	if got := dump.Frame(mk6(proto.UDP, []byte{1, 2})); !strings.Contains(got, "UDP, truncated") {
		t.Errorf("udp: %q", got)
	}
	if got := dump.Frame(mk6(proto.TCP, []byte{1, 2, 3})); !strings.Contains(got, "TCP, truncated") {
		t.Errorf("tcp: %q", got)
	}
	if got := dump.Frame(mk6(proto.ESP, []byte{1})); !strings.Contains(got, "ESP, truncated") {
		t.Errorf("esp: %q", got)
	}
	if got := dump.Frame(mk6(proto.NoNext, nil)); !strings.Contains(got, "no next header") {
		t.Errorf("nonext: %q", got)
	}
	if got := dump.Frame(mk6(200, []byte{9})); !strings.Contains(got, "length 1") {
		t.Errorf("unknown proto: %q", got)
	}
}

func TestDecodeTruncatedChain(t *testing.T) {
	// A hop-by-hop header whose length runs past the packet.
	h := &ipv6.Header{NextHdr: proto.HopByHop, HopLimit: 1, PayloadLen: 4}
	b := append(h.Marshal(nil), proto.UDP, 9, 0, 0) // claims 80 bytes of options
	got := dump.Frame(frameOf(netif.EtherTypeIPv6, b))
	if !strings.Contains(got, "truncated extension chain") {
		t.Errorf("chain: %q", got)
	}
}

func TestDecodeV4FragmentTail(t *testing.T) {
	oh := ipv4.Header{TotalLen: ipv4.HeaderLen + 8, ID: 7, FragOff: 64, TTL: 3, Proto: proto.UDP,
		Src: inet.IP4{10, 0, 0, 1}, Dst: inet.IP4{10, 0, 0, 2}}
	b := append(oh.Marshal(nil), make([]byte, 8)...)
	got := dump.Frame(frameOf(netif.EtherTypeIPv4, b))
	if !strings.Contains(got, "frag(off=64") || !strings.Contains(got, "udp") {
		t.Errorf("v4 frag tail: %q", got)
	}
}
