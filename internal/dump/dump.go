// Package dump decodes frames from the simulated wire into
// tcpdump-style one-liners.  Attach Sniff to a Hub to watch a link:
//
//	stop := dump.Sniff(hub, os.Stdout)
//	defer stop()
//
// The decoder understands every format this stack emits: ARP, IPv4
// (ICMPv4/UDP/TCP, fragments), and IPv6 with its extension chain —
// hop-by-hop, routing, fragment, AH — plus ESP (opaque beyond the
// SPI), and the full ICMPv6 message set including Neighbor/Router
// Discovery and the group membership messages.
package dump

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"bsd6/internal/inet"
	"bsd6/internal/ipv4"
	"bsd6/internal/ipv6"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
)

// Frame renders one link-layer frame.
func Frame(fr netif.Frame) string {
	b := fr.Payload.CopyBytes()
	var body string
	switch fr.EtherType {
	case ipv4.EtherTypeARP:
		body = arp(b)
	case netif.EtherTypeIPv4:
		body = v4(b)
	case netif.EtherTypeIPv6:
		body = v6(b)
	default:
		body = fmt.Sprintf("ethertype %#04x, %d bytes", fr.EtherType, len(b))
	}
	return fmt.Sprintf("%s > %s: %s", fr.Src, fr.Dst, body)
}

// IP renders a bare IP packet (no link layer), picking the decoder
// from the version nibble.  The flight-recorder trace ring stores raw
// leading bytes of dropped packets; this is how they become readable.
func IP(b []byte) string {
	if len(b) == 0 {
		return "empty"
	}
	switch b[0] >> 4 {
	case 4:
		return v4(b)
	case 6:
		return v6(b)
	}
	// The link layer drops whole frame payloads, which may be ARP
	// (hardware type 1, protocol 0x0800) rather than IP.
	if len(b) >= 28 && b[0] == 0 && b[1] == 1 && b[2] == 0x08 && b[3] == 0x00 {
		return arp(b)
	}
	return fmt.Sprintf("unknown IP version %d, %d bytes", b[0]>>4, len(b))
}

// The flight-recorder trace ring also stores transport-level bytes
// when a drop happens above the IP layer; these exported decoders let
// the renderer pick the right one by drop reason.

// UDPSeg renders a UDP datagram starting at its header.
func UDPSeg(b []byte) string { return udp(b) }

// TCPSeg renders a TCP segment starting at its header.
func TCPSeg(b []byte) string { return tcp(b) }

// ICMP6Msg renders an ICMPv6 message starting at its type byte.
func ICMP6Msg(b []byte) string { return icmp6(b) }

// ARPPkt renders an ARP packet.
func ARPPkt(b []byte) string { return arp(b) }

// Sniff prints every frame crossing the hub to w until stop is called.
func Sniff(hub *netif.Hub, w io.Writer) (stop func()) {
	var mu sync.Mutex
	done := false
	hub.Capture = func(fr netif.Frame) {
		mu.Lock()
		defer mu.Unlock()
		if !done {
			fmt.Fprintln(w, Frame(fr))
		}
	}
	return func() {
		mu.Lock()
		done = true
		mu.Unlock()
	}
}

func arp(b []byte) string {
	if len(b) < 28 {
		return "ARP, truncated"
	}
	op := uint16(b[6])<<8 | uint16(b[7])
	var spa, tpa inet.IP4
	copy(spa[:], b[14:18])
	copy(tpa[:], b[24:28])
	if op == 1 {
		return fmt.Sprintf("ARP, Request who-has %s tell %s", tpa, spa)
	}
	var sha inet.LinkAddr
	copy(sha[:], b[8:14])
	return fmt.Sprintf("ARP, Reply %s is-at %s", spa, sha)
}

func v4(b []byte) string {
	h, hl, err := ipv4.Parse(b)
	if err != nil {
		return "IP, bad header: " + err.Error()
	}
	frag := ""
	if h.MF || h.FragOff != 0 {
		frag = fmt.Sprintf(" frag(off=%d,mf=%v,id=%d)", h.FragOff, h.MF, h.ID)
		if h.FragOff != 0 {
			return fmt.Sprintf("IP %s > %s:%s %s, length %d",
				h.Src, h.Dst, frag, proto.Name(h.Proto), h.TotalLen-hl)
		}
	}
	payload := b[hl:]
	if h.TotalLen < len(b) {
		payload = b[hl:h.TotalLen]
	}
	return fmt.Sprintf("IP %s > %s:%s ttl %d, %s", h.Src, h.Dst, frag, h.TTL, upper(h.Proto, payload, sum4{h.Src, h.Dst}))
}

func v6(b []byte) string {
	h, err := ipv6.Parse(b)
	if err != nil {
		return "IP6, bad header: " + err.Error()
	}
	head := fmt.Sprintf("IP6 %s > %s: hlim %d", h.Src, h.Dst, h.HopLimit)
	if h.FlowInfo != 0 {
		head += fmt.Sprintf(" flow %#x", h.FlowInfo)
	}
	// Walk the extension chain like the receiver would.
	var exts []string
	info, perr := ipv6.Preparse(b, false)
	if perr != nil {
		if info != nil && info.Truncated {
			return head + " [truncated extension chain]"
		}
	}
	for _, rec := range info.Ext {
		switch rec.Proto {
		case proto.HopByHop:
			exts = append(exts, "hbh")
		case proto.DstOpts:
			exts = append(exts, "dstopts")
		case proto.Routing:
			if rh, err := ipv6.ParseRouting(b[rec.Offset : rec.Offset+rec.Len]); err == nil {
				exts = append(exts, fmt.Sprintf("rt0[segleft=%d]", rh.SegLeft))
			} else {
				exts = append(exts, "rt0[bad]")
			}
		case proto.Fragment:
			if fh, err := ipv6.ParseFrag(b[rec.Offset : rec.Offset+rec.Len]); err == nil {
				exts = append(exts, fmt.Sprintf("frag[off=%d,mf=%v,id=%#x]", fh.Off, fh.More, fh.ID))
			}
		case proto.AH:
			if rec.Offset+8 <= len(b) {
				spi := uint32(b[rec.Offset+4])<<24 | uint32(b[rec.Offset+5])<<16 |
					uint32(b[rec.Offset+6])<<8 | uint32(b[rec.Offset+7])
				exts = append(exts, fmt.Sprintf("AH(spi=%#x)", spi))
			}
		}
	}
	if len(exts) > 0 {
		head += " [" + strings.Join(exts, " ") + "]"
	}
	// A non-first fragment's content is opaque.
	for _, rec := range info.Ext {
		if rec.Proto == proto.Fragment {
			if fh, err := ipv6.ParseFrag(b[rec.Offset : rec.Offset+rec.Len]); err == nil && fh.Off != 0 {
				return fmt.Sprintf("%s, %d bytes of %s fragment data", head, len(b)-info.FinalOff, proto.Name(info.Final))
			}
		}
	}
	return head + ", " + upper6(info.Final, b[info.FinalOff:], h)
}

type sum4 struct{ src, dst inet.IP4 }

func upper(p uint8, b []byte, s sum4) string {
	switch p {
	case proto.ICMP:
		return icmp4(b)
	case proto.UDP:
		return udp(b)
	case proto.TCP:
		return tcp(b)
	}
	return fmt.Sprintf("%s, length %d", proto.Name(p), len(b))
}

func upper6(p uint8, b []byte, h *ipv6.Header) string {
	switch p {
	case proto.ICMPv6:
		return icmp6(b)
	case proto.UDP:
		return udp(b)
	case proto.TCP:
		return tcp(b)
	case proto.ESP:
		if len(b) >= 4 {
			spi := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
			return fmt.Sprintf("ESP(spi=%#x), length %d", spi, len(b))
		}
		return "ESP, truncated"
	case proto.NoNext:
		return "no next header"
	}
	return fmt.Sprintf("%s, length %d", proto.Name(p), len(b))
}

func udp(b []byte) string {
	if len(b) < 8 {
		return "UDP, truncated"
	}
	sp := uint16(b[0])<<8 | uint16(b[1])
	dp := uint16(b[2])<<8 | uint16(b[3])
	length := int(b[4])<<8 | int(b[5])
	return fmt.Sprintf("UDP %d > %d, length %d", sp, dp, length-8)
}

func tcp(b []byte) string {
	if len(b) < 20 {
		return "TCP, truncated"
	}
	sp := uint16(b[0])<<8 | uint16(b[1])
	dp := uint16(b[2])<<8 | uint16(b[3])
	seq := uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7])
	ack := uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11])
	off := int(b[12]>>4) * 4
	fl := b[13]
	var flags []byte
	for _, x := range []struct {
		bit byte
		ch  byte
	}{{0x02, 'S'}, {0x10, '.'}, {0x01, 'F'}, {0x04, 'R'}, {0x08, 'P'}, {0x20, 'U'}} {
		if fl&x.bit != 0 {
			flags = append(flags, x.ch)
		}
	}
	wnd := uint16(b[14])<<8 | uint16(b[15])
	dlen := len(b) - off
	if off > len(b) {
		dlen = 0
	}
	return fmt.Sprintf("TCP %d > %d Flags [%s] seq %d ack %d win %d, length %d",
		sp, dp, flags, seq, ack, wnd, dlen)
}

func icmp4(b []byte) string {
	if len(b) < 8 {
		return "ICMP, truncated"
	}
	switch b[0] {
	case ipv4.IcmpEcho:
		return fmt.Sprintf("ICMP echo request, id %d, seq %d", uint16(b[4])<<8|uint16(b[5]), uint16(b[6])<<8|uint16(b[7]))
	case ipv4.IcmpEchoReply:
		return fmt.Sprintf("ICMP echo reply, id %d, seq %d", uint16(b[4])<<8|uint16(b[5]), uint16(b[6])<<8|uint16(b[7]))
	case ipv4.IcmpUnreach:
		return fmt.Sprintf("ICMP destination unreachable (code %d)", b[1])
	case ipv4.IcmpTimeExceeded:
		return "ICMP time exceeded"
	}
	return fmt.Sprintf("ICMP type %d code %d", b[0], b[1])
}

func icmp6(b []byte) string {
	if len(b) < 4 {
		return "ICMP6, truncated"
	}
	typ, code := b[0], b[1]
	body := b[4:]
	tgt := func() string {
		if len(body) >= 20 {
			var a inet.IP6
			copy(a[:], body[4:20])
			return a.String()
		}
		return "?"
	}
	switch typ {
	case 1:
		return fmt.Sprintf("ICMP6 destination unreachable (code %d)", code)
	case 2:
		if len(body) >= 4 {
			mtu := uint32(body[0])<<24 | uint32(body[1])<<16 | uint32(body[2])<<8 | uint32(body[3])
			return fmt.Sprintf("ICMP6 packet too big, mtu %d", mtu)
		}
		return "ICMP6 packet too big"
	case 3:
		return "ICMP6 time exceeded"
	case 4:
		return fmt.Sprintf("ICMP6 parameter problem (code %d)", code)
	case 128:
		return fmt.Sprintf("ICMP6 echo request, id %d, seq %d", u16(body, 0), u16(body, 2))
	case 129:
		return fmt.Sprintf("ICMP6 echo reply, id %d, seq %d", u16(body, 0), u16(body, 2))
	case 130:
		return "ICMP6 group membership query"
	case 131:
		return "ICMP6 group membership report"
	case 132:
		return "ICMP6 group membership terminate"
	case 133:
		return "ICMP6 router solicitation"
	case 134:
		return "ICMP6 router advertisement"
	case 135:
		return fmt.Sprintf("ICMP6 neighbor solicitation, who has %s", tgt())
	case 136:
		return fmt.Sprintf("ICMP6 neighbor advertisement, tgt is %s", tgt())
	}
	return fmt.Sprintf("ICMP6 type %d code %d", typ, code)
}

func u16(b []byte, off int) uint16 {
	if off+2 > len(b) {
		return 0
	}
	return uint16(b[off])<<8 | uint16(b[off+1])
}
