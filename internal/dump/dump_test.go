package dump_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"bsd6/internal/core"
	"bsd6/internal/dump"
	"bsd6/internal/icmp6"
	"bsd6/internal/inet"
	"bsd6/internal/ipsec"
	"bsd6/internal/key"
	"bsd6/internal/netif"
	"bsd6/internal/testnet"
)

// wireLog captures rendered frames from a hub.
type wireLog struct {
	mu    sync.Mutex
	lines []string
}

func (w *wireLog) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.lines = append(w.lines, strings.TrimRight(string(p), "\n"))
	w.mu.Unlock()
	return len(p), nil
}

func (w *wireLog) contains(t *testing.T, substrs ...string) {
	t.Helper()
	w.mu.Lock()
	defer w.mu.Unlock()
	all := strings.Join(w.lines, "\n")
	for _, s := range substrs {
		if !strings.Contains(all, s) {
			t.Fatalf("wire log missing %q:\n%s", s, all)
		}
	}
}

func setup(t *testing.T) (*core.Stack, *core.Stack, *netif.Hub, *wireLog) {
	t.Helper()
	hub := netif.NewHub()
	a := core.NewStack("a", core.Options{})
	b := core.NewStack("b", core.Options{})
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	aIf := a.AttachLink(hub, testnet.MacA, 1500)
	bIf := b.AttachLink(hub, testnet.MacB, 1500)
	a.ConfigureV4(aIf, inet.IP4{10, 0, 0, 1}, 24)
	b.ConfigureV4(bIf, inet.IP4{10, 0, 0, 2}, 24)
	log := &wireLog{}
	stop := dump.Sniff(hub, log)
	t.Cleanup(stop)
	return a, b, hub, log
}

func ll(s *core.Stack) inet.IP6 {
	a, _ := s.Interfaces()[0].LinkLocal6(time.Now())
	return a
}

func TestDumpICMPv6AndND(t *testing.T) {
	a, b, _, log := setup(t)
	a.Ping6(ll(b), 7, 1, []byte("x"))
	testnet.WaitFor(t, "reply", func() bool { return a.ICMP6.Stats.InEchoReps.Get() >= 1 })
	log.contains(t,
		"ICMP6 neighbor solicitation, who has",
		"ICMP6 neighbor advertisement, tgt is",
		"ICMP6 echo request, id 7, seq 1",
		"ICMP6 echo reply, id 7, seq 1",
		"IP6 fe80::",
	)
}

func TestDumpARPAndICMPv4(t *testing.T) {
	a, _, _, log := setup(t)
	got := make(chan struct{}, 1)
	a.ICMP4.OnEcho = func(inet.IP4, uint16, uint16, []byte) { got <- struct{}{} }
	a.Ping4(inet.IP4{10, 0, 0, 2}, 9, 2, []byte("y"))
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("no v4 reply")
	}
	log.contains(t,
		"ARP, Request who-has 10.0.0.2 tell 10.0.0.1",
		"ARP, Reply 10.0.0.2 is-at",
		"ICMP echo request, id 9, seq 2",
		"ICMP echo reply, id 9, seq 2",
		"IP 10.0.0.1 > 10.0.0.2",
	)
}

func TestDumpUDPAndTCP(t *testing.T) {
	a, b, _, log := setup(t)
	srv, _ := b.NewSocket(inet.AFInet6, core.SockDgram)
	srv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 53})
	cli, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	cli.SendTo([]byte("query"), core.Addr6(ll(b), 53))
	srv.RecvFrom(64, 2*time.Second)

	l, _ := b.NewSocket(inet.AFInet6, core.SockStream)
	l.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 80})
	l.Listen(1)
	c, _ := a.NewSocket(inet.AFInet6, core.SockStream)
	if err := c.Connect(core.Addr6(ll(b), 80), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	log.contains(t,
		"UDP 1024 > 53, length 5",
		"Flags [S]",
		"Flags [S.]",
		"Flags [.]",
	)
}

func TestDumpSecuredTraffic(t *testing.T) {
	a, b, _, log := setup(t)
	authKey := []byte("0123456789abcdef")
	encKey := []byte("DESCBC!!")
	for _, s := range []*core.Stack{a, b} {
		s.Keys.Add(&key.SA{SPI: 0xfeed, Src: ll(a), Dst: ll(b), Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
		s.Keys.Add(&key.SA{SPI: 0xbead, Src: ll(a), Dst: ll(b), Proto: key.ProtoESPTransport, EncAlg: "des-cbc", EncKey: encKey})
	}
	cli, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	cli.SetSecurity(core.SoSecurityAuthentication, ipsec.LevelRequire)
	cli.SetSecurity(core.SoSecurityEncryptTrans, ipsec.LevelRequire)
	if err := cli.SendTo([]byte("wrapped"), core.Addr6(ll(b), 9)); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "AH on the wire", func() bool {
		log.mu.Lock()
		defer log.mu.Unlock()
		return strings.Contains(strings.Join(log.lines, "\n"), "AH(spi=0xfeed)")
	})
	log.contains(t, "AH(spi=0xfeed)", "ESP(spi=0xbead)")
	// The UDP payload must NOT be decodable on the wire.
	log.mu.Lock()
	defer log.mu.Unlock()
	for _, line := range log.lines {
		if strings.Contains(line, "ESP") && strings.Contains(line, "UDP ") {
			t.Fatalf("ESP frame leaked UDP decode: %s", line)
		}
	}
}

func TestDumpFragments(t *testing.T) {
	a, b, _, log := setup(t)
	srv, _ := b.NewSocket(inet.AFInet6, core.SockDgram)
	srv.Bind(core.Sockaddr6{Family: inet.AFInet6, Port: 60})
	cli, _ := a.NewSocket(inet.AFInet6, core.SockDgram)
	cli.SendTo(make([]byte, 4000), core.Addr6(ll(b), 60))
	data, _, err := srv.RecvFrom(4096, 2*time.Second)
	if err != nil || len(data) != 4000 {
		t.Fatalf("%d %v", len(data), err)
	}
	log.contains(t, "frag[off=0,mf=true", "fragment data")
}

func TestDumpRouterAdvertisement(t *testing.T) {
	a, _, _, log := setup(t)
	prefix := testnet.IP6(t, "2001:db8::")
	a.EnableRouter6(a.Interfaces()[0].Name, icmp6.RouterConfig{
		Interval: 50 * time.Millisecond, Lifetime: time.Hour,
		Prefixes: []icmp6.PrefixInfo{{Prefix: prefix, Plen: 64, OnLink: true, Autonomous: true}},
	})
	testnet.WaitFor(t, "RA on the wire", func() bool {
		log.mu.Lock()
		defer log.mu.Unlock()
		return strings.Contains(strings.Join(log.lines, "\n"), "ICMP6 router advertisement")
	})
}
