package netif

import (
	"testing"

	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
)

// BenchmarkGSOSplit measures fanning a 16-chunk super-segment out as
// MSS-sized wire frames: headers replicated, sequence numbers and
// flags patched, checksums finalized from the cached per-chunk sums.
func BenchmarkGSOSplit(b *testing.B) {
	ifp := New("bench0", inet.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
	ifp.SetFlags(FlagUp, true)
	ifp.output = func(fr Frame) error {
		fr.Payload.Free()
		return nil
	}

	const mss, chunks = 1440, 16
	total := gsoTCPHdrEnd + mss*chunks
	super := make([]byte, total)
	super[0] = 0x60
	plen := total - gsoV6HdrLen
	super[4], super[5] = byte(plen>>8), byte(plen)
	super[6] = gsoProtoTCP
	super[7] = 64
	super[8+15] = 1  // src ::1-ish
	super[24+15] = 2 // dst
	th := super[gsoV6HdrLen:]
	th[0], th[1] = 0x0f, 0xa0 // sport 4000
	th[2], th[3] = 0x00, 0x50 // dport 80
	th[12] = 5 << 4
	th[13] = 0x10 // ACK
	th[14], th[15] = 0x20, 0x00
	payload := super[gsoTCPHdrEnd:]
	for i := range payload {
		payload[i] = byte(i)
	}
	sums := make([]uint32, 0, chunks)
	for o := 0; o < len(payload); o += mss {
		sums = append(sums, uint32(inet.FoldRaw(inet.Sum(0, payload[o:o+mss]))))
	}
	dst := inet.LinkAddr{2, 0, 0, 0, 0, 2}

	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := mbuf.Get(total)
		copy(pkt.Bytes(), super)
		pkt.Hdr().GSO = &mbuf.GSO{
			SegSize: mss, HdrLen: gsoTCPHdrEnd - gsoV6HdrLen,
			Sums: sums, PathMTU: 1500,
		}
		if err := ifp.Output(dst, EtherTypeIPv6, pkt); err != nil {
			b.Fatal(err)
		}
	}
}
