package netif

import (
	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
)

// GSO splitting (a software-TSO analog).  TCP builds one super-segment
// up to 64KB and attaches an mbuf.GSO descriptor; when it reaches a
// link whose MTU it exceeds, this splitter chops it into MSS-sized
// wire frames, replicating the IPv6+TCP headers and patching per
// frame: payload length, sequence number, flags (FIN/PSH ride only
// the last frame) and the TCP checksum — finalized from the
// descriptor's cached per-chunk sums (RFC 1624 spirit: combine
// partial sums, never re-read the payload).  The frames are
// byte-identical to what the unbatched sender emits, so a capture
// cannot tell GSO on from off.
//
// IPv6 only: an IPv4 splitter would have to mint the per-frame IP IDs
// the unbatched sender draws from a shared counter, which cannot be
// replicated after the fact.  The transport enforces this; the Output
// gate also requires the IPv6 ethertype.

// TCP wire offsets within an IPv6 packet (fixed 40-byte IP header, no
// extension headers — the transport only attaches GSO descriptors to
// such packets).
const (
	gsoV6HdrLen  = 40
	gsoSeqOff    = gsoV6HdrLen + 4  // TCP sequence number
	gsoFlagsOff  = gsoV6HdrLen + 13 // TCP flags byte
	gsoCksumOff  = gsoV6HdrLen + 16 // TCP checksum
	gsoTCPHdrEnd = gsoV6HdrLen + 20
	gsoFinPsh    = 0x09 // FIN|PSH: deferred to the last frame
	gsoProtoTCP  = 6
)

// gsoSplit fans a super-segment out as MSS-sized frames through
// ifp.Output (each recursion takes the normal ≤MTU path, so per-frame
// stats and the down-interface check apply as if the transport had
// sent them individually).  The super-segment is consumed.
func (ifp *Interface) gsoSplit(dst inet.LinkAddr, etherType uint16, pkt *mbuf.Mbuf) error {
	gso := pkt.Hdr().GSO
	b := pkt.Bytes()
	hdrs := gsoV6HdrLen + gso.HdrLen
	payload := b[hdrs:]
	var src6, dst6 inet.IP6
	copy(src6[:], b[8:24])
	copy(dst6[:], b[24:40])
	seq0 := uint32(b[gsoSeqOff])<<24 | uint32(b[gsoSeqOff+1])<<16 |
		uint32(b[gsoSeqOff+2])<<8 | uint32(b[gsoSeqOff+3])
	flags := b[gsoFlagsOff]

	var firstErr error
	for i, off := 0, 0; off < len(payload); i++ {
		clen := gso.SegSize
		if off+clen > len(payload) {
			clen = len(payload) - off
		}
		last := off+clen == len(payload)

		fm := mbuf.Get(hdrs + clen)
		fb := fm.Bytes()
		copy(fb, b[:hdrs])
		plen := gso.HdrLen + clen
		fb[4], fb[5] = byte(plen>>8), byte(plen)
		seq := seq0 + uint32(off)
		fb[gsoSeqOff], fb[gsoSeqOff+1] = byte(seq>>24), byte(seq>>16)
		fb[gsoSeqOff+2], fb[gsoSeqOff+3] = byte(seq>>8), byte(seq)
		fb[gsoFlagsOff] = flags
		if !last {
			fb[gsoFlagsOff] &^= gsoFinPsh
		}
		fb[gsoCksumOff], fb[gsoCksumOff+1] = 0, 0
		copy(fb[gsoTCPHdrEnd:], payload[off:off+clen])

		// Per-frame checksum from cached partials: pseudo-header for
		// this frame's length + the patched TCP header + the chunk's
		// folded payload sum.  All 16-bit partials, no overflow.
		acc := uint32(inet.FoldRaw(inet.PseudoHeader6(src6, dst6, uint32(plen), gsoProtoTCP)))
		acc += uint32(inet.FoldRaw(inet.Sum(0, fb[gsoV6HdrLen:gsoTCPHdrEnd])))
		acc += gso.Sums[i]
		ck := inet.Fold(acc)
		fb[gsoCksumOff], fb[gsoCksumOff+1] = byte(ck>>8), byte(ck)

		if err := ifp.Output(dst, etherType, fm); err != nil {
			fm.Free()
			if firstErr == nil {
				firstErr = err
			}
		}
		off += clen
	}
	pkt.Free()
	return firstErr
}
