// Package netif implements network interfaces and the simulated links
// that connect stacks.
//
// This is the substitution boundary of the reproduction: where the NRL
// implementation sat on real Ethernet drivers in SPARC and i486
// machines, we provide an in-process Hub that moves link-layer frames
// between attached interfaces.  Everything above the frame boundary —
// MTUs, link-layer addressing, multicast filtering, and the interface
// address lists — behaves as the paper requires:
//
//   - every IPv6 interface carries a link-local address before any
//     other address (§4.2.1), formed from the interface token;
//   - IPv6 interface addresses carry lifetime fields to support the
//     rapid renumbering that provider-oriented addressing needs
//     (§4.2.2);
//   - interfaces maintain multicast group memberships, because IPv6
//     replaces every use of broadcast with multicast (§4.3) and
//     neighbor discovery depends on solicited-node group filtering.
//
// The Hub supports latency and loss injection so integration tests can
// exercise retransmission and reassembly-timeout paths.
package netif

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/stat"
	"bsd6/internal/vclock"
)

// EtherTypes for the two IP versions.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeIPv6 = 0x86dd
)

// Broadcast is the all-ones link address (IPv4's link broadcast; IPv6
// never uses it).
var Broadcast = inet.LinkAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Frame is a link-layer frame.
type Frame struct {
	Src, Dst  inet.LinkAddr
	EtherType uint16
	Payload   *mbuf.Mbuf
}

// Interface flags.
const (
	FlagUp = 1 << iota
	FlagLoopback
	FlagMulticast
	FlagPromisc
	FlagAllMulti // accept all multicast frames (router/MLD mode)
	FlagRouter   // interface belongs to a router (advertises, forwards)
	FlagTunnel   // point-to-point encapsulating device (6in4/4in6/6in6)
)

// Addr6 is an IPv6 interface address with the lifetime fields the NRL
// implementation added to support renumbering (§4.2.2), and the
// tentative/duplicated state used by duplicate address detection.
type Addr6 struct {
	Addr inet.IP6
	Plen int

	// Autoconf marks addresses formed by stateless autoconfiguration.
	Autoconf bool
	// Tentative is set while duplicate address detection is running.
	Tentative bool
	// Duplicated is set if DAD found a collision; the address must not
	// be used.
	Duplicated bool

	// Created is when the address was configured.
	Created time.Time
	// PreferredLft / ValidLft are the address lifetimes; zero means
	// infinite.  An address past its preferred lifetime is deprecated
	// (not chosen as a source); past its valid lifetime it is removed.
	PreferredLft time.Duration
	ValidLft     time.Duration
}

// Deprecated reports whether the address is past its preferred lifetime.
func (a *Addr6) Deprecated(now time.Time) bool {
	return a.PreferredLft != 0 && now.After(a.Created.Add(a.PreferredLft))
}

// Invalid reports whether the address is past its valid lifetime.
func (a *Addr6) Invalid(now time.Time) bool {
	return a.ValidLft != 0 && now.After(a.Created.Add(a.ValidLft))
}

// Usable reports whether the address may be used as a source.
func (a *Addr6) Usable(now time.Time) bool {
	return !a.Tentative && !a.Duplicated && !a.Invalid(now)
}

// Addr4 is an IPv4 interface address.
type Addr4 struct {
	Addr inet.IP4
	Plen int
}

// Stats counts interface traffic.
type Stats struct {
	InPackets  uint64
	OutPackets uint64
	InBytes    uint64
	OutBytes   uint64
	InDrops    uint64 // frames dropped by the MAC filter or down interface
	OutErrors  uint64
}

// InputFunc receives a frame accepted by the interface filter. It runs
// on the sender's goroutine (or the hub's delay goroutine); stacks
// should enqueue to their input queue rather than process inline.
type InputFunc func(ifp *Interface, fr Frame)

// addrGen versions the union of every interface's address lists.
// Any address add/remove/update bumps it, as does attaching an
// interface to an IP layer.  Per-packet consumers ("is this address
// one of ours?") cache a flat set keyed by this generation instead of
// walking the lists under each interface's lock.
var addrGen atomic.Uint64

// AddrGen returns the current address-list generation.
func AddrGen() uint64 { return addrGen.Load() }

// BumpAddrGen invalidates cached address-set views; IP layers call it
// when their interface membership changes.
func BumpAddrGen() { addrGen.Add(1) }

// Interface is a network interface (BSD's struct ifnet plus its
// address list).
type Interface struct {
	Name string
	HW   inet.LinkAddr

	// Drops is the stack-wide drop observability sink; nil counts
	// nothing.
	Drops *stat.Recorder

	mu     sync.Mutex
	mtu    int
	flags  int
	v4     []Addr4
	v6     []Addr6
	groups map[inet.LinkAddr]int // multicast MAC filter, refcounted
	input  InputFunc
	output func(Frame) error
	stats  Stats

	// encapOverhead is the bytes this device's output path prepends to
	// every packet (tunnel outer header).  The device MTU already has
	// it subtracted — inner-path MTU math needs no special casing — so
	// this field only feeds diagnostics and PMTU translation
	// arithmetic.
	encapOverhead int
}

// New creates an interface with the given name, MAC and MTU.
func New(name string, hw inet.LinkAddr, mtu int) *Interface {
	return &Interface{
		Name:   name,
		HW:     hw,
		mtu:    mtu,
		flags:  FlagMulticast,
		groups: make(map[inet.LinkAddr]int),
	}
}

// NewLoopback creates a loopback interface: frames sent are delivered
// back to the input function with the MLoop flag set.
func NewLoopback(name string, mtu int) *Interface {
	ifp := New(name, inet.LinkAddr{}, mtu)
	ifp.flags |= FlagLoopback | FlagUp
	ifp.output = func(fr Frame) error {
		fr.Payload.Hdr().Flags |= mbuf.MLoop
		ifp.deliver(fr, true)
		return nil
	}
	return ifp
}

// MTU returns the interface MTU.
func (ifp *Interface) MTU() int {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	return ifp.mtu
}

// SetMTU changes the interface MTU (router advertisements can suggest
// one on variable-MTU links, §4.2.2).
func (ifp *Interface) SetMTU(mtu int) {
	ifp.mu.Lock()
	ifp.mtu = mtu
	ifp.mu.Unlock()
}

// Flags returns the interface flags.
func (ifp *Interface) Flags() int {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	return ifp.flags
}

// SetFlags sets (on=true) or clears the given flag bits.
func (ifp *Interface) SetFlags(bits int, on bool) {
	ifp.mu.Lock()
	if on {
		ifp.flags |= bits
	} else {
		ifp.flags &^= bits
	}
	ifp.mu.Unlock()
}

// Up reports whether the interface is up.
func (ifp *Interface) Up() bool { return ifp.Flags()&FlagUp != 0 }

// Loopback reports whether the interface is a loopback.
func (ifp *Interface) Loopback() bool { return ifp.Flags()&FlagLoopback != 0 }

// SetInput installs the frame input handler (the stack's "driver
// interrupt" entry).
func (ifp *Interface) SetInput(fn InputFunc) {
	ifp.mu.Lock()
	ifp.input = fn
	ifp.mu.Unlock()
}

// SetOutput installs the frame transmit function.  Hub.Attach does
// this for wire-like interfaces; virtual devices (tunnels) install
// their encapsulation closure here instead of attaching to a hub.
func (ifp *Interface) SetOutput(fn func(Frame) error) {
	ifp.mu.Lock()
	ifp.output = fn
	ifp.mu.Unlock()
}

// SetEncapOverhead records the per-packet encapsulation overhead of a
// virtual device (see the encapOverhead field).
func (ifp *Interface) SetEncapOverhead(n int) {
	ifp.mu.Lock()
	ifp.encapOverhead = n
	ifp.mu.Unlock()
}

// EncapOverhead returns the device's per-packet encapsulation
// overhead; zero for ordinary interfaces.
func (ifp *Interface) EncapOverhead() int {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	return ifp.encapOverhead
}

// Deliver injects a received packet into the interface's input path as
// if it had arrived from the wire, bypassing the MAC filter (virtual
// devices have no MAC addressing).  Tunnel decapsulation re-enters the
// stack through here, so the owning stack's steering sees the packet
// arrive on the tunnel device and hashes the now-inner headers.
func (ifp *Interface) Deliver(fr Frame) {
	ifp.deliver(fr, true)
}

// Stats returns a copy of the interface counters.
func (ifp *Interface) Stats() Stats {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	return ifp.stats
}

//
// Address list management (what ifconfig(8) manipulates, §4.2).
//

// AddAddr6 adds an IPv6 address. Per §4.2.1, the first address placed
// on an interface must be a link-local address; AddAddr6 enforces that
// ordering (as the NRL ifconfig did by convention).
func (ifp *Interface) AddAddr6(a Addr6) error {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	if len(ifp.v6) == 0 && !a.Addr.IsLinkLocal() && ifp.flags&(FlagLoopback|FlagTunnel) == 0 {
		return errors.New("netif: first IPv6 address on an interface must be link-local")
	}
	for _, old := range ifp.v6 {
		if old.Addr == a.Addr {
			return fmt.Errorf("netif: address %v already configured", a.Addr)
		}
	}
	ifp.v6 = append(ifp.v6, a)
	addrGen.Add(1)
	return nil
}

// RemoveAddr6 removes an IPv6 address.
func (ifp *Interface) RemoveAddr6(addr inet.IP6) bool {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	for i, a := range ifp.v6 {
		if a.Addr == addr {
			ifp.v6 = append(ifp.v6[:i], ifp.v6[i+1:]...)
			addrGen.Add(1)
			return true
		}
	}
	return false
}

// UpdateAddr6 applies fn to the address record for addr, returning
// false if it is not configured. Used by DAD (tentative→usable or
// duplicated) and by RA processing (lifetime refresh).
func (ifp *Interface) UpdateAddr6(addr inet.IP6, fn func(*Addr6)) bool {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	for i := range ifp.v6 {
		if ifp.v6[i].Addr == addr {
			fn(&ifp.v6[i])
			addrGen.Add(1)
			return true
		}
	}
	return false
}

// Addrs6 returns a snapshot of the IPv6 address list.
func (ifp *Interface) Addrs6() []Addr6 {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	return append([]Addr6(nil), ifp.v6...)
}

// HasAddr6 reports whether addr is configured (and not duplicated).
func (ifp *Interface) HasAddr6(addr inet.IP6) bool {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	for _, a := range ifp.v6 {
		if a.Addr == addr && !a.Duplicated {
			return true
		}
	}
	return false
}

// LinkLocal6 returns the interface's usable link-local address.
func (ifp *Interface) LinkLocal6(now time.Time) (inet.IP6, bool) {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	for i := range ifp.v6 {
		if ifp.v6[i].Addr.IsLinkLocal() && ifp.v6[i].Usable(now) {
			return ifp.v6[i].Addr, true
		}
	}
	return inet.IP6{}, false
}

// ExpireAddrs6 removes addresses past their valid lifetime and returns
// the removed addresses (the renumbering mechanism of §4.2.2).
func (ifp *Interface) ExpireAddrs6(now time.Time) []inet.IP6 {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	var removed []inet.IP6
	kept := ifp.v6[:0]
	for _, a := range ifp.v6 {
		if a.Invalid(now) {
			removed = append(removed, a.Addr)
		} else {
			kept = append(kept, a)
		}
	}
	ifp.v6 = kept
	return removed
}

// AddAddr4 adds an IPv4 address.
func (ifp *Interface) AddAddr4(a Addr4) {
	ifp.mu.Lock()
	ifp.v4 = append(ifp.v4, a)
	ifp.mu.Unlock()
	addrGen.Add(1)
}

// Addrs4 returns a snapshot of the IPv4 address list.
func (ifp *Interface) Addrs4() []Addr4 {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	return append([]Addr4(nil), ifp.v4...)
}

// HasAddr4 reports whether addr is configured.
func (ifp *Interface) HasAddr4(addr inet.IP4) bool {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	for _, a := range ifp.v4 {
		if a.Addr == addr {
			return true
		}
	}
	return false
}

//
// Multicast filter.
//

// JoinGroup adds a link-layer multicast address to the receive filter
// (refcounted, like BSD's if_addmulti).
func (ifp *Interface) JoinGroup(mac inet.LinkAddr) {
	ifp.mu.Lock()
	ifp.groups[mac]++
	ifp.mu.Unlock()
}

// LeaveGroup drops one reference on a multicast filter entry.
func (ifp *Interface) LeaveGroup(mac inet.LinkAddr) {
	ifp.mu.Lock()
	if n := ifp.groups[mac]; n > 1 {
		ifp.groups[mac] = n - 1
	} else {
		delete(ifp.groups, mac)
	}
	ifp.mu.Unlock()
}

// InGroup reports whether the filter accepts the multicast address.
func (ifp *Interface) InGroup(mac inet.LinkAddr) bool {
	ifp.mu.Lock()
	defer ifp.mu.Unlock()
	return ifp.groups[mac] > 0
}

//
// Frame I/O.
//

// ErrIfDown is returned when transmitting on a down interface.
var ErrIfDown = errors.New("netif: interface is down")

// ErrTooBig is returned when a frame payload exceeds the interface MTU;
// IP must fragment (IPv4) or report Packet Too Big (IPv6 router).
var ErrTooBig = errors.New("netif: frame exceeds interface MTU")

// Output transmits an IP packet as a frame to the given link address.
func (ifp *Interface) Output(dst inet.LinkAddr, etherType uint16, pkt *mbuf.Mbuf) error {
	ifp.mu.Lock()
	up := ifp.flags&FlagUp != 0
	out := ifp.output
	mtu := ifp.mtu
	ifp.mu.Unlock()
	if !up || out == nil {
		ifp.mu.Lock()
		ifp.stats.OutErrors++
		ifp.mu.Unlock()
		return ErrIfDown
	}
	if gso := pkt.Hdr().GSO; gso != nil && etherType == EtherTypeIPv6 {
		limit := mtu
		if gso.PathMTU > 0 && gso.PathMTU < limit {
			limit = gso.PathMTU
		}
		if pkt.Len() > limit {
			return ifp.gsoSplit(dst, etherType, pkt)
		}
		if ifp.Flags()&FlagTunnel != 0 {
			// GSO flushes at tunnel devices: a super that fits whole
			// under the tunnel MTU must not carry its descriptor into
			// encapsulation — the outer IP layer would re-stamp
			// PathMTU from the *outer* path, and if that later
			// narrows, the physical link would split the encapsulated
			// bytes at inner-header offsets, corrupting the stream.
			pkt.Hdr().GSO = nil
		}
	}
	if pkt.Len() > mtu {
		ifp.mu.Lock()
		ifp.stats.OutErrors++
		ifp.mu.Unlock()
		return ErrTooBig
	}
	ifp.mu.Lock()
	ifp.stats.OutPackets++
	ifp.stats.OutBytes += uint64(pkt.Len())
	ifp.mu.Unlock()
	return out(Frame{Src: ifp.HW, Dst: dst, EtherType: etherType, Payload: pkt})
}

// deliver runs the receive filter and hands accepted frames to the
// input function. force bypasses the filter (loopback).
func (ifp *Interface) deliver(fr Frame, force bool) {
	ifp.mu.Lock()
	up := ifp.flags&FlagUp != 0
	in := ifp.input
	accept := force || ifp.acceptLocked(fr.Dst)
	if !up || in == nil || !accept {
		ifp.stats.InDrops++
		ifp.mu.Unlock()
		ifp.Drops.DropPkt(stat.RLinkFiltered, fr.Payload.Bytes())
		fr.Payload.Free() // DropPkt copied what it keeps
		return
	}
	ifp.stats.InPackets++
	ifp.stats.InBytes += uint64(fr.Payload.Len())
	ifp.mu.Unlock()

	hdr := fr.Payload.Hdr()
	hdr.RcvIf = ifp.Name
	if fr.Dst == Broadcast {
		hdr.Flags |= mbuf.MBcast
	} else if fr.Dst[0]&1 != 0 { // link-layer multicast bit
		hdr.Flags |= mbuf.MMcast
	}
	in(ifp, fr)
}

// acceptLocked is the MAC receive filter.
func (ifp *Interface) acceptLocked(dst inet.LinkAddr) bool {
	if ifp.flags&FlagPromisc != 0 {
		return true
	}
	if dst == ifp.HW || dst == Broadcast {
		return true
	}
	if dst[0]&1 != 0 { // multicast
		return ifp.flags&FlagAllMulti != 0 || ifp.groups[dst] > 0
	}
	return false
}

//
// The Hub: a shared-medium link connecting interfaces.
//

// Faults configures adversarial link behavior. The zero value is a
// perfect wire. Probabilities are in [0,1); every random draw comes
// from the hub's seeded RNG, so a run is reproducible from its seed
// when the rest of the test is deterministic (single driving goroutine
// on a virtual clock).
type Faults struct {
	// Latency delays every delivery by a fixed amount; Jitter adds a
	// uniform random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration

	// Loss drops frames independently with this probability.
	Loss float64

	// BurstLoss models correlated outages (Gilbert-style): with this
	// per-frame probability the link enters a bad state and eats
	// BurstLen consecutive frames (default 4 when BurstLoss > 0).
	BurstLoss float64
	BurstLen  int

	// Duplicate delivers a second copy of the frame, right after the
	// first, with this probability.
	Duplicate float64

	// Corrupt flips one random bit in the frame payload with this
	// probability (the MAC header is left intact so the receive filter
	// still applies; IP/transport checksums must catch the damage).
	Corrupt float64

	// Reorder holds a frame back an extra ReorderDelay with this
	// probability, letting later frames overtake it. ReorderDelay
	// defaults to Latency + 1ms when zero.
	Reorder      float64
	ReorderDelay time.Duration
}

// Hub is a simulated Ethernet segment. Frames transmitted by one
// attached interface are delivered to all others (subject to each
// receiver's MAC filter), optionally through a fault model: latency,
// jitter, random and burst loss, duplication, bit corruption,
// reordering, and partitions. Delayed deliveries are scheduled on the
// hub's clock, so tests on a virtual clock get bit-for-bit
// reproducible hostile-link runs.
type Hub struct {
	mu         sync.Mutex
	ports      []*Interface
	faults     Faults                // hub-wide fault model
	linkFaults map[*Interface]Faults // per-receiver overrides
	burst      map[*Interface]int    // remaining frames in a loss burst
	partition  map[*Interface]int    // partition group; nil = all connected
	clock      vclock.Clock
	inflight   int

	// rng is guarded by its own mutex: delayed deliveries and
	// concurrent senders all draw from it.
	rngMu sync.Mutex
	rng   *rand.Rand

	// Capture, if set, observes every frame that traverses the hub
	// (before any fault is applied), like a packet sniffer. It is
	// called with the hub lock held; it must not call back into the
	// hub or transmit frames.
	Capture func(Frame)
}

// NewHub creates a hub with no latency or loss, running on the wall
// clock.
func NewHub() *Hub {
	return &Hub{
		clock: vclock.Real(),
		burst: make(map[*Interface]int),
		rng:   rand.New(rand.NewSource(1)),
	}
}

// SetClock installs the clock used for delayed deliveries. Call before
// traffic flows.
func (h *Hub) SetClock(c vclock.Clock) {
	h.mu.Lock()
	h.clock = c
	h.mu.Unlock()
}

// SetSeed reseeds the hub's fault RNG. Safe to call concurrently with
// traffic.
func (h *Hub) SetSeed(seed int64) {
	h.rngMu.Lock()
	h.rng = rand.New(rand.NewSource(seed))
	h.rngMu.Unlock()
}

// SetFaults installs the hub-wide fault model.
func (h *Hub) SetFaults(f Faults) {
	h.mu.Lock()
	h.faults = f
	h.mu.Unlock()
}

// SetLinkFaults overrides the fault model for frames delivered *to*
// ifp. Pass nil to remove the override.
func (h *Hub) SetLinkFaults(ifp *Interface, f *Faults) {
	h.mu.Lock()
	if f == nil {
		delete(h.linkFaults, ifp)
	} else {
		if h.linkFaults == nil {
			h.linkFaults = make(map[*Interface]Faults)
		}
		h.linkFaults[ifp] = *f
	}
	h.mu.Unlock()
}

// SetImpairments configures delivery latency and a loss probability in
// [0,1). seed makes the loss pattern reproducible. Kept as shorthand
// for SetFaults + SetSeed.
func (h *Hub) SetImpairments(latency time.Duration, loss float64, seed int64) {
	h.mu.Lock()
	h.faults = Faults{Latency: latency, Loss: loss}
	h.mu.Unlock()
	h.SetSeed(seed)
}

// Partition splits the hub: each group lists interfaces that can still
// reach each other; frames between different groups are dropped.
// Interfaces in no group land in an implicit group of their own.
// Calling Partition() with no arguments heals the hub.
func (h *Hub) Partition(groups ...[]*Interface) {
	h.mu.Lock()
	if len(groups) == 0 {
		h.partition = nil
	} else {
		h.partition = make(map[*Interface]int)
		for i, g := range groups {
			for _, ifp := range g {
				h.partition[ifp] = i + 1
			}
		}
	}
	h.mu.Unlock()
}

// Pending reports how many delayed deliveries are still in flight.
// Zero with idle senders means the segment is quiescent.
func (h *Hub) Pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inflight
}

// Attach connects an interface to the hub and brings it up.
func (h *Hub) Attach(ifp *Interface) {
	h.mu.Lock()
	h.ports = append(h.ports, ifp)
	h.mu.Unlock()
	ifp.mu.Lock()
	ifp.output = func(fr Frame) error { return h.transmit(ifp, fr) }
	ifp.flags |= FlagUp
	ifp.mu.Unlock()
}

// Detach removes an interface from the hub.
func (h *Hub) Detach(ifp *Interface) {
	h.mu.Lock()
	for i, p := range h.ports {
		if p == ifp {
			h.ports = append(h.ports[:i], h.ports[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
	ifp.mu.Lock()
	ifp.output = nil
	ifp.flags &^= FlagUp
	ifp.mu.Unlock()
}

// float draws from the hub RNG under its own lock.
func (h *Hub) float() float64 {
	h.rngMu.Lock()
	defer h.rngMu.Unlock()
	return h.rng.Float64()
}

func (h *Hub) intn(n int) int {
	h.rngMu.Lock()
	defer h.rngMu.Unlock()
	return h.rng.Intn(n)
}

func (h *Hub) transmit(src *Interface, fr Frame) error {
	h.mu.Lock()
	if h.Capture != nil {
		h.Capture(fr)
	}
	ports := append([]*Interface(nil), h.ports...)
	hubFaults := h.faults
	linkFaults := h.linkFaults
	partition := h.partition
	clock := h.clock
	h.mu.Unlock()

	// First decide which deliveries survive the fault model, then hand
	// out payloads: each receiver needs its own buffer (a real wire
	// gives each NIC its own signal), but the *last* delivery can take
	// ownership of the sender's buffer instead of a deep copy — on a
	// two-node segment the common frame crosses the hub with zero
	// payload copies.
	type delivery struct {
		p       *Interface
		delay   time.Duration
		corrupt bool
	}
	var dels []delivery
	for _, p := range ports {
		if p == src {
			continue
		}
		if partition != nil && partition[src] != partition[p] {
			continue // severed by the partition
		}
		f := hubFaults
		if lf, ok := linkFaults[p]; ok {
			f = lf
		}

		// Burst loss: a link in the bad state eats frames until the
		// burst drains; entering the bad state is a per-frame draw.
		if f.BurstLoss > 0 {
			h.mu.Lock()
			if h.burst[p] > 0 {
				h.burst[p]--
				h.mu.Unlock()
				continue
			}
			h.mu.Unlock()
			if h.float() < f.BurstLoss {
				n := f.BurstLen
				if n <= 0 {
					n = 4
				}
				h.mu.Lock()
				h.burst[p] = n - 1 // this frame is the first casualty
				h.mu.Unlock()
				continue
			}
		}
		if f.Loss > 0 && h.float() < f.Loss {
			continue // the wire ate it; senders can't tell
		}

		delay := f.Latency
		if f.Jitter > 0 {
			delay += time.Duration(h.intn(int(f.Jitter)))
		}
		if f.Reorder > 0 && h.float() < f.Reorder {
			extra := f.ReorderDelay
			if extra <= 0 {
				extra = f.Latency + time.Millisecond
			}
			delay += extra
		}

		copies := 1
		if f.Duplicate > 0 && h.float() < f.Duplicate {
			copies = 2
		}
		for c := 0; c < copies; c++ {
			corrupt := f.Corrupt > 0 && h.float() < f.Corrupt
			dels = append(dels, delivery{p: p, delay: delay, corrupt: corrupt})
		}
	}
	if len(dels) == 0 {
		// Every receiver was severed or faulted away: the sender's
		// buffer has no taker, so the hub is its terminal consumer.
		fr.Payload.Free()
		return nil
	}
	for i, d := range dels {
		cp := fr
		if i < len(dels)-1 {
			cp.Payload = fr.Payload.Copy()
		}
		if d.corrupt {
			if b := cp.Payload.Bytes(); len(b) > 0 {
				bit := h.intn(len(b) * 8)
				b[bit/8] ^= 1 << (bit % 8)
			}
		}
		h.schedule(clock, d.delay, d.p, cp)
	}
	return nil
}

// schedule delivers a frame to one receiver, either inline (zero
// delay) or via the hub clock, tracking in-flight count so tests can
// detect quiescence.
func (h *Hub) schedule(clock vclock.Clock, delay time.Duration, p *Interface, fr Frame) {
	if delay <= 0 {
		p.deliver(fr, false)
		return
	}
	h.mu.Lock()
	h.inflight++
	h.mu.Unlock()
	clock.AfterFunc(delay, func() {
		p.deliver(fr, false)
		h.mu.Lock()
		h.inflight--
		h.mu.Unlock()
	})
}
