package netif

import (
	"sync"
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/vclock"
)

var (
	macA = inet.LinkAddr{2, 0, 0, 0, 0, 0xa}
	macB = inet.LinkAddr{2, 0, 0, 0, 0, 0xb}
	macC = inet.LinkAddr{2, 0, 0, 0, 0, 0xc}
)

// collector records delivered frames.
type collector struct {
	mu     sync.Mutex
	frames []Frame
}

func (c *collector) input(ifp *Interface, fr Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, fr)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func twoOnHub(t *testing.T) (*Hub, *Interface, *Interface, *collector, *collector) {
	t.Helper()
	h := NewHub()
	a := New("a0", macA, 1500)
	b := New("b0", macB, 1500)
	ca, cb := &collector{}, &collector{}
	a.SetInput(ca.input)
	b.SetInput(cb.input)
	h.Attach(a)
	h.Attach(b)
	return h, a, b, ca, cb
}

func TestUnicastDelivery(t *testing.T) {
	_, a, _, ca, cb := twoOnHub(t)
	pkt := mbuf.New([]byte("hello"))
	if err := a.Output(macB, EtherTypeIPv6, pkt); err != nil {
		t.Fatal(err)
	}
	if cb.count() != 1 {
		t.Fatalf("b received %d frames", cb.count())
	}
	if ca.count() != 0 {
		t.Fatal("sender received its own unicast")
	}
	fr := cb.frames[0]
	if fr.Src != macA || fr.EtherType != EtherTypeIPv6 {
		t.Fatalf("frame meta: %+v", fr)
	}
	if fr.Payload.Hdr().RcvIf != "b0" {
		t.Fatalf("RcvIf = %q", fr.Payload.Hdr().RcvIf)
	}
	if fr.Payload.Hdr().Flags&(mbuf.MMcast|mbuf.MBcast) != 0 {
		t.Fatal("unicast frame flagged multicast")
	}
}

func TestUnicastFilteredByMAC(t *testing.T) {
	h, a, _, _, cb := twoOnHub(t)
	c := New("c0", macC, 1500)
	cc := &collector{}
	c.SetInput(cc.input)
	h.Attach(c)
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cc.count() != 0 {
		t.Fatal("frame for B delivered to C")
	}
	if cb.count() != 1 {
		t.Fatal("frame for B not delivered")
	}
	if c.Stats().InDrops != 1 {
		t.Fatalf("C drops = %d", c.Stats().InDrops)
	}
}

func TestPromiscuousReceivesAll(t *testing.T) {
	h, a, _, _, _ := twoOnHub(t)
	c := New("c0", macC, 1500)
	cc := &collector{}
	c.SetInput(cc.input)
	c.SetFlags(FlagPromisc, true)
	h.Attach(c)
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cc.count() != 1 {
		t.Fatal("promiscuous interface missed frame")
	}
}

func TestMulticastFilter(t *testing.T) {
	solicited := inet.SolicitedNode(inet.IP6{15: 7})
	group := inet.EthernetMulticast(solicited)
	_, a, b, _, cb := twoOnHub(t)
	// Not joined: filtered.
	a.Output(group, EtherTypeIPv6, mbuf.New([]byte("ns")))
	if cb.count() != 0 {
		t.Fatal("unjoined multicast delivered")
	}
	b.JoinGroup(group)
	a.Output(group, EtherTypeIPv6, mbuf.New([]byte("ns")))
	if cb.count() != 1 {
		t.Fatal("joined multicast not delivered")
	}
	if cb.frames[0].Payload.Hdr().Flags&mbuf.MMcast == 0 {
		t.Fatal("multicast flag not set")
	}
	// Refcounting: join twice, leave once, still member.
	b.JoinGroup(group)
	b.LeaveGroup(group)
	if !b.InGroup(group) {
		t.Fatal("refcounted leave removed membership early")
	}
	b.LeaveGroup(group)
	if b.InGroup(group) {
		t.Fatal("final leave did not remove membership")
	}
}

func TestAllMultiAcceptsUnjoinedGroups(t *testing.T) {
	_, a, b, _, cb := twoOnHub(t)
	group := inet.EthernetMulticast(inet.SolicitedNode(inet.IP6{15: 0x42}))
	a.Output(group, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cb.count() != 0 {
		t.Fatal("unjoined multicast delivered without all-multi")
	}
	b.SetFlags(FlagAllMulti, true)
	a.Output(group, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cb.count() != 1 {
		t.Fatal("all-multi interface missed a multicast frame")
	}
	// All-multi is multicast-only: foreign unicast is still filtered.
	a.Output(macC, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cb.count() != 1 {
		t.Fatal("all-multi accepted foreign unicast")
	}
}

func TestBroadcast(t *testing.T) {
	_, a, _, _, cb := twoOnHub(t)
	a.Output(Broadcast, EtherTypeIPv4, mbuf.New([]byte("arp-ish")))
	if cb.count() != 1 {
		t.Fatal("broadcast not delivered")
	}
	if cb.frames[0].Payload.Hdr().Flags&mbuf.MBcast == 0 {
		t.Fatal("broadcast flag not set")
	}
}

func TestReceiverGetsOwnCopy(t *testing.T) {
	h, a, b, _, cb := twoOnHub(t)
	c := New("c0", macC, 1500)
	cc := &collector{}
	c.SetInput(cc.input)
	c.SetFlags(FlagPromisc, true)
	h.Attach(c)
	b.SetFlags(FlagPromisc, true)
	a.Output(Broadcast, EtherTypeIPv6, mbuf.New([]byte("abc")))
	cb.frames[0].Payload.Bytes()[0] = 'X'
	if string(cc.frames[0].Payload.CopyBytes()) != "abc" {
		t.Fatal("receivers share payload storage")
	}
}

func TestMTUEnforced(t *testing.T) {
	_, a, _, _, _ := twoOnHub(t)
	big := mbuf.New(make([]byte, 1501))
	if err := a.Output(macB, EtherTypeIPv6, big); err != ErrTooBig {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
	if a.Stats().OutErrors != 1 {
		t.Fatal("OutErrors not counted")
	}
}

func TestDownInterface(t *testing.T) {
	_, a, b, _, cb := twoOnHub(t)
	a.SetFlags(FlagUp, false)
	if err := a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x"))); err != ErrIfDown {
		t.Fatalf("err = %v, want ErrIfDown", err)
	}
	a.SetFlags(FlagUp, true)
	b.SetFlags(FlagUp, false)
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cb.count() != 0 {
		t.Fatal("down interface received")
	}
}

func TestDetach(t *testing.T) {
	h, a, b, _, cb := twoOnHub(t)
	h.Detach(b)
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cb.count() != 0 {
		t.Fatal("detached interface received")
	}
	if err := b.Output(macA, EtherTypeIPv6, mbuf.New([]byte("x"))); err != ErrIfDown {
		t.Fatal("detached interface transmitted")
	}
}

func TestLoopback(t *testing.T) {
	lo := NewLoopback("lo0", 32768)
	c := &collector{}
	lo.SetInput(c.input)
	pkt := mbuf.New([]byte("self"))
	if err := lo.Output(inet.LinkAddr{}, EtherTypeIPv6, pkt); err != nil {
		t.Fatal(err)
	}
	if c.count() != 1 {
		t.Fatal("loopback did not deliver")
	}
	if c.frames[0].Payload.Hdr().Flags&mbuf.MLoop == 0 {
		t.Fatal("MLoop not set")
	}
	if c.frames[0].Payload.Hdr().RcvIf != "lo0" {
		t.Fatal("RcvIf not set on loopback")
	}
}

func TestLossInjection(t *testing.T) {
	h, a, _, _, cb := twoOnHub(t)
	h.SetImpairments(0, 1.0, 42) // everything lost
	for i := 0; i < 10; i++ {
		a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	}
	if cb.count() != 0 {
		t.Fatal("lossy hub delivered")
	}
	h.SetImpairments(0, 0.5, 42)
	for i := 0; i < 200; i++ {
		a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	}
	got := cb.count()
	if got < 60 || got > 140 {
		t.Fatalf("50%% loss delivered %d/200", got)
	}
}

func TestLatency(t *testing.T) {
	h, a, _, _, cb := twoOnHub(t)
	clk := vclock.NewVirtual(time.Unix(0, 0))
	h.SetClock(clk)
	h.SetImpairments(5*time.Millisecond, 0, 1)
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cb.count() != 0 {
		t.Fatal("latent frame arrived immediately")
	}
	clk.Advance(4 * time.Millisecond)
	if cb.count() != 0 {
		t.Fatal("latent frame arrived before its latency elapsed")
	}
	clk.Advance(time.Millisecond)
	if cb.count() != 1 {
		t.Fatal("latent frame never arrived")
	}
}

func TestCapture(t *testing.T) {
	h, a, _, _, _ := twoOnHub(t)
	var captured int
	h.Capture = func(Frame) { captured++ }
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	if captured != 1 {
		t.Fatalf("captured %d", captured)
	}
}

func TestAddr6LinkLocalFirst(t *testing.T) {
	ifp := New("a0", macA, 1500)
	global := Addr6{Addr: inet.IP6{0: 0x20, 1: 0x01, 15: 1}, Plen: 64}
	if err := ifp.AddAddr6(global); err == nil {
		t.Fatal("global address accepted before link-local")
	}
	ll := Addr6{Addr: inet.LinkLocal(macA.Token()), Plen: 64}
	if err := ifp.AddAddr6(ll); err != nil {
		t.Fatal(err)
	}
	if err := ifp.AddAddr6(global); err != nil {
		t.Fatal(err)
	}
	if err := ifp.AddAddr6(ll); err == nil {
		t.Fatal("duplicate address accepted")
	}
	if got, ok := ifp.LinkLocal6(time.Now()); !ok || got != ll.Addr {
		t.Fatal("LinkLocal6")
	}
	if !ifp.HasAddr6(global.Addr) || ifp.HasAddr6(inet.IP6{15: 9}) {
		t.Fatal("HasAddr6")
	}
	if !ifp.RemoveAddr6(global.Addr) || ifp.RemoveAddr6(global.Addr) {
		t.Fatal("RemoveAddr6")
	}
}

func TestAddrLifetimes(t *testing.T) {
	now := time.Unix(5000, 0)
	a := Addr6{
		Addr: inet.IP6{15: 1}, Created: now,
		PreferredLft: 10 * time.Second, ValidLft: 20 * time.Second,
	}
	if a.Deprecated(now.Add(5*time.Second)) || a.Invalid(now.Add(5*time.Second)) {
		t.Fatal("fresh address flagged")
	}
	if !a.Deprecated(now.Add(15*time.Second)) || a.Invalid(now.Add(15*time.Second)) {
		t.Fatal("deprecated window wrong")
	}
	if !a.Invalid(now.Add(25 * time.Second)) {
		t.Fatal("invalid not reached")
	}
	inf := Addr6{Addr: inet.IP6{15: 2}, Created: now}
	if inf.Deprecated(now.Add(time.Hour)) || inf.Invalid(now.Add(time.Hour)) {
		t.Fatal("zero lifetime must mean infinite")
	}
}

func TestAddrUsableStates(t *testing.T) {
	now := time.Now()
	a := Addr6{Addr: inet.IP6{15: 1}, Tentative: true}
	if a.Usable(now) {
		t.Fatal("tentative usable")
	}
	a.Tentative = false
	a.Duplicated = true
	if a.Usable(now) {
		t.Fatal("duplicated usable")
	}
	a.Duplicated = false
	if !a.Usable(now) {
		t.Fatal("clean address unusable")
	}
}

func TestExpireAddrs6(t *testing.T) {
	ifp := New("a0", macA, 1500)
	now := time.Unix(9000, 0)
	ll := Addr6{Addr: inet.LinkLocal(macA.Token()), Plen: 64, Created: now}
	short := Addr6{Addr: inet.IP6{0: 0x20, 15: 3}, Plen: 64, Created: now, ValidLft: time.Second}
	ifp.AddAddr6(ll)
	ifp.AddAddr6(short)
	removed := ifp.ExpireAddrs6(now.Add(2 * time.Second))
	if len(removed) != 1 || removed[0] != short.Addr {
		t.Fatalf("removed %v", removed)
	}
	if !ifp.HasAddr6(ll.Addr) || ifp.HasAddr6(short.Addr) {
		t.Fatal("wrong survivor")
	}
}

func TestUpdateAddr6(t *testing.T) {
	ifp := New("a0", macA, 1500)
	ll := Addr6{Addr: inet.LinkLocal(macA.Token()), Plen: 64, Tentative: true}
	ifp.AddAddr6(ll)
	if !ifp.UpdateAddr6(ll.Addr, func(a *Addr6) { a.Tentative = false }) {
		t.Fatal("UpdateAddr6 failed")
	}
	if ifp.Addrs6()[0].Tentative {
		t.Fatal("update not applied")
	}
	if ifp.UpdateAddr6(inet.IP6{15: 99}, func(*Addr6) {}) {
		t.Fatal("update of absent address succeeded")
	}
}

func TestAddr4(t *testing.T) {
	ifp := New("a0", macA, 1500)
	ifp.AddAddr4(Addr4{Addr: inet.IP4{10, 0, 0, 1}, Plen: 24})
	if !ifp.HasAddr4(inet.IP4{10, 0, 0, 1}) || ifp.HasAddr4(inet.IP4{10, 0, 0, 2}) {
		t.Fatal("HasAddr4")
	}
	if len(ifp.Addrs4()) != 1 {
		t.Fatal("Addrs4")
	}
}

func TestStatsCounting(t *testing.T) {
	_, a, b, _, _ := twoOnHub(t)
	a.Output(macB, EtherTypeIPv6, mbuf.New(make([]byte, 100)))
	as, bs := a.Stats(), b.Stats()
	if as.OutPackets != 1 || as.OutBytes != 100 {
		t.Fatalf("a out stats: %+v", as)
	}
	if bs.InPackets != 1 || bs.InBytes != 100 {
		t.Fatalf("b in stats: %+v", bs)
	}
}

//
// Hostile-link mode.
//

func TestVirtualLatency(t *testing.T) {
	h, a, _, _, cb := twoOnHub(t)
	clk := vclock.NewVirtual(time.Unix(0, 0))
	h.SetClock(clk)
	h.SetFaults(Faults{Latency: 5 * time.Millisecond})
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cb.count() != 0 {
		t.Fatal("latent frame arrived before clock advance")
	}
	if h.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", h.Pending())
	}
	clk.Advance(5 * time.Millisecond)
	if cb.count() != 1 {
		t.Fatal("latent frame not delivered on advance")
	}
	if h.Pending() != 0 {
		t.Fatalf("Pending = %d after delivery, want 0", h.Pending())
	}
}

func TestDuplication(t *testing.T) {
	h, a, _, _, cb := twoOnHub(t)
	h.SetFaults(Faults{Duplicate: 1.0})
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cb.count() != 2 {
		t.Fatalf("got %d copies, want 2", cb.count())
	}
}

func TestCorruption(t *testing.T) {
	h, a, _, _, cb := twoOnHub(t)
	h.SetFaults(Faults{Corrupt: 1.0})
	payload := []byte{0x00, 0x00, 0x00, 0x00}
	a.Output(macB, EtherTypeIPv6, mbuf.New(append([]byte(nil), payload...)))
	if cb.count() != 1 {
		t.Fatal("corrupted frame not delivered")
	}
	got := cb.frames[0].Payload.CopyBytes()
	diff := 0
	for i := range got {
		for bit := 0; bit < 8; bit++ {
			if (got[i]^payload[i])&(1<<bit) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", diff)
	}
}

func TestBurstLoss(t *testing.T) {
	h, a, _, _, cb := twoOnHub(t)
	h.SetFaults(Faults{BurstLoss: 1.0, BurstLen: 3})
	for i := 0; i < 3; i++ {
		a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	}
	if cb.count() != 0 {
		t.Fatalf("burst of 3 delivered %d frames", cb.count())
	}
	// Burst drained; the next frame starts a new burst (prob 1.0), so
	// with BurstLoss=1.0 nothing ever gets through.
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cb.count() != 0 {
		t.Fatal("frame delivered during forced burst loss")
	}
}

func TestReorder(t *testing.T) {
	h, a, _, _, cb := twoOnHub(t)
	clk := vclock.NewVirtual(time.Unix(0, 0))
	h.SetClock(clk)
	// First frame is held back (reorder), second sails through.
	h.SetFaults(Faults{Reorder: 1.0, ReorderDelay: 10 * time.Millisecond})
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("first")))
	h.SetFaults(Faults{})
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("second")))
	if cb.count() != 1 || string(cb.frames[0].Payload.CopyBytes()) != "second" {
		t.Fatal("second frame did not overtake reordered first")
	}
	clk.Advance(10 * time.Millisecond)
	if cb.count() != 2 || string(cb.frames[1].Payload.CopyBytes()) != "first" {
		t.Fatal("reordered frame never arrived")
	}
}

func TestPartition(t *testing.T) {
	h, a, b, _, cb := twoOnHub(t)
	c := New("c0", macC, 1500)
	cc := &collector{}
	c.SetInput(cc.input)
	h.Attach(c)
	h.Partition([]*Interface{a, c}, []*Interface{b})
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cb.count() != 0 {
		t.Fatal("frame crossed the partition")
	}
	a.Output(macC, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cc.count() != 1 {
		t.Fatal("frame within partition group dropped")
	}
	h.Partition() // heal
	a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("x")))
	if cb.count() != 1 {
		t.Fatal("healed hub still partitioned")
	}
}

func TestPerLinkFaults(t *testing.T) {
	h, a, b, _, cb := twoOnHub(t)
	c := New("c0", macC, 1500)
	cc := &collector{}
	c.SetInput(cc.input)
	h.Attach(c)
	// Only the link to B is lossy.
	h.SetLinkFaults(b, &Faults{Loss: 1.0})
	a.Output(Broadcast, EtherTypeIPv4, mbuf.New([]byte("x")))
	if cb.count() != 0 {
		t.Fatal("lossy per-link frame delivered")
	}
	if cc.count() != 1 {
		t.Fatal("clean link affected by B's faults")
	}
	h.SetLinkFaults(b, nil)
	a.Output(Broadcast, EtherTypeIPv4, mbuf.New([]byte("x")))
	if cb.count() != 1 {
		t.Fatal("cleared link faults still applied")
	}
}

// TestSeedReproducible checks the core determinism contract: the same
// seed over the same traffic gives the same delivery pattern.
func TestSeedReproducible(t *testing.T) {
	run := func() []int {
		h, a, _, _, cb := twoOnHub(t)
		h.SetSeed(77)
		h.SetFaults(Faults{Loss: 0.3, Duplicate: 0.2, Corrupt: 0.1})
		var counts []int
		for i := 0; i < 100; i++ {
			a.Output(macB, EtherTypeIPv6, mbuf.New([]byte{byte(i)}))
			counts = append(counts, cb.count())
		}
		return counts
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("delivery diverged at frame %d: %d vs %d", i, first[i], second[i])
		}
	}
}

// TestRNGConcurrency hammers the hub RNG from concurrent senders and a
// reseeding goroutine; run under -race this verifies the RNG guard.
func TestRNGConcurrency(t *testing.T) {
	h, a, b, _, _ := twoOnHub(t)
	h.SetFaults(Faults{Loss: 0.5, Duplicate: 0.5, Corrupt: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a.Output(macB, EtherTypeIPv6, mbuf.New([]byte("ab")))
				b.Output(macA, EtherTypeIPv6, mbuf.New([]byte("cd")))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			h.SetSeed(int64(i))
		}
	}()
	wg.Wait()
}
