// Package ipsec implements the IPv6 security mechanisms of §3: the
// Authentication Header (RFC 1826) with keyed MD5 (RFC 1828), the
// Encapsulating Security Payload (RFC 1827) with DES-CBC (RFC 1829) in
// transport and tunnel modes, the algorithm switches that make both
// algorithm-independent (§3.6), and the separated policy engine
// (ipsec_output_policy / ipsec_input_policy, §3.3-§3.5).
package ipsec

import (
	"crypto/cipher"
	"crypto/des"
	"crypto/md5"
	"crypto/rand"
	"crypto/sha1"
	"fmt"
	"hash"
	"sort"
	"sync"
)

//
// Authentication algorithm switch (§3.2: "a keyed message digest
// function ... selected on a per-association basis through an
// algorithm switch that calls the appropriate computation function").
//

// AuthAlg is one entry in the authentication algorithm switch.  The
// keyed digest is treated as a stream operation: the AH calculation
// walks the packet feeding bytes in, and "any necessary blocking and
// padding must be handled by the implementation of the keyed message
// digest functions" — hash.Hash does exactly that.
type AuthAlg interface {
	Name() string
	DigestLen() int
	// New returns a streaming keyed digest. Callers Write the packet
	// image and call Sum(nil) for the authentication data.
	New(key []byte) hash.Hash
}

// keyedHash implements the RFC 1828 construction digest = H(key ||
// data || key) for any underlying hash.
type keyedHash struct {
	name  string
	dlen  int
	newFn func() hash.Hash
}

type keyedHashState struct {
	h   hash.Hash
	key []byte
}

func (a *keyedHash) Name() string   { return a.name }
func (a *keyedHash) DigestLen() int { return a.dlen }
func (a *keyedHash) New(key []byte) hash.Hash {
	s := &keyedHashState{h: a.newFn(), key: append([]byte(nil), key...)}
	s.h.Write(s.key)
	return s
}

func (s *keyedHashState) Write(p []byte) (int, error) { return s.h.Write(p) }
func (s *keyedHashState) Sum(b []byte) []byte {
	s.h.Write(s.key) // trailing key per RFC 1828
	return s.h.Sum(b)
}
func (s *keyedHashState) Reset()         { s.h.Reset(); s.h.Write(s.key) }
func (s *keyedHashState) Size() int      { return s.h.Size() }
func (s *keyedHashState) BlockSize() int { return s.h.BlockSize() }

//
// Encryption algorithm switch (§3.6). Each entry yields a cipher.Block;
// the generic reblocking function below runs any such cipher over the
// data in properly sized blocks (§3.2).
//

// EncAlg is one entry in the encryption algorithm switch.
type EncAlg interface {
	Name() string
	KeySize() int
	BlockSize() int
	NewCipher(key []byte) (cipher.Block, error)
}

type encAlg struct {
	name     string
	keySize  int
	blockLen int
	newFn    func(key []byte) (cipher.Block, error)
}

func (e *encAlg) Name() string   { return e.name }
func (e *encAlg) KeySize() int   { return e.keySize }
func (e *encAlg) BlockSize() int { return e.blockLen }
func (e *encAlg) NewCipher(key []byte) (cipher.Block, error) {
	if len(key) != e.keySize {
		return nil, fmt.Errorf("ipsec: %s wants a %d-byte key, got %d", e.name, e.keySize, len(key))
	}
	return e.newFn(key)
}

// Reblock runs an encryption or decryption block function over data in
// place, CBC-chained from iv — "a generic reblocking function that
// runs a specified encryption or decryption function over the data
// while arranging it into properly sized blocks" (§3.2). data must be
// a whole number of blocks.
func Reblock(blk cipher.Block, iv []byte, data []byte, encrypt bool) error {
	if len(data)%blk.BlockSize() != 0 {
		return fmt.Errorf("ipsec: data length %d not a multiple of block size %d", len(data), blk.BlockSize())
	}
	if encrypt {
		cipher.NewCBCEncrypter(blk, iv).CryptBlocks(data, data)
	} else {
		cipher.NewCBCDecrypter(blk, iv).CryptBlocks(data, data)
	}
	return nil
}

//
// The switches themselves. "To implement a new ESP or AH algorithm,
// the kernel must be recompiled with support for the new algorithms in
// place" — registration happens at compile time via init, and tests
// demonstrate adding entries (Register*) without touching AH/ESP code.
//

var (
	switchMu   sync.RWMutex
	authSwitch = map[string]AuthAlg{}
	encSwitch  = map[string]EncAlg{}
)

// RegisterAuth adds an authentication algorithm to the switch.
func RegisterAuth(a AuthAlg) {
	switchMu.Lock()
	authSwitch[a.Name()] = a
	switchMu.Unlock()
}

// RegisterEnc adds an encryption algorithm to the switch.
func RegisterEnc(e EncAlg) {
	switchMu.Lock()
	encSwitch[e.Name()] = e
	switchMu.Unlock()
}

// LookupAuth finds an authentication algorithm by name.
func LookupAuth(name string) (AuthAlg, bool) {
	switchMu.RLock()
	defer switchMu.RUnlock()
	a, ok := authSwitch[name]
	return a, ok
}

// LookupEnc finds an encryption algorithm by name.
func LookupEnc(name string) (EncAlg, bool) {
	switchMu.RLock()
	defer switchMu.RUnlock()
	e, ok := encSwitch[name]
	return e, ok
}

// Algorithms lists the registered algorithm names, for keyadm/netstat.
func Algorithms() (auth, enc []string) {
	switchMu.RLock()
	defer switchMu.RUnlock()
	for n := range authSwitch {
		auth = append(auth, n)
	}
	for n := range encSwitch {
		enc = append(enc, n)
	}
	sort.Strings(auth)
	sort.Strings(enc)
	return auth, enc
}

func init() {
	// Mandatory algorithms (§3): keyed MD5 for authentication, DES-CBC
	// for encryption.
	RegisterAuth(&keyedHash{name: "keyed-md5", dlen: md5.Size, newFn: md5.New})
	// A second digest demonstrates the switch ("easy addition of new
	// message digest and encryption functions").
	RegisterAuth(&keyedHash{name: "keyed-sha1", dlen: sha1.Size, newFn: sha1.New})

	RegisterEnc(&encAlg{name: "des-cbc", keySize: 8, blockLen: des.BlockSize, newFn: des.NewCipher})
	// "Other algorithms, such as triple-DES, are being implemented by
	// others" — here it is.
	RegisterEnc(&encAlg{name: "3des-cbc", keySize: 24, blockLen: des.BlockSize, newFn: des.NewTripleDESCipher})
	// §3.6's worked example: IDEA with DES-CBC's header processing.
	RegisterEnc(&encAlg{name: "idea-cbc", keySize: ideaKeySize, blockLen: ideaBlockSize, newFn: newIDEA})
}

// newIV fills iv with fresh random bytes.
func newIV(iv []byte) {
	if _, err := rand.Read(iv); err != nil {
		// The simulation has no secrecy requirement strong enough to
		// justify failing the send; fall back to a counter pattern.
		for i := range iv {
			iv[i] = byte(i*37 + 11)
		}
	}
}
