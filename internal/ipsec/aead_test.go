package ipsec

import (
	"bytes"
	"testing"

	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/proto"
)

func aeadSA(t testing.TB, alg string) *key.SA {
	t.Helper()
	a, ok := LookupAEAD(alg)
	if !ok {
		t.Fatalf("no AEAD %s", alg)
	}
	k := make([]byte, a.KeySize())
	for i := range k {
		k[i] = byte(i * 7)
	}
	return &key.SA{
		SPI: 0x3003, Dst: ip6(t, "2001:db8::2"), Proto: key.ProtoESPTransport,
		EncAlg: alg, EncKey: k, Replay: &key.Replay{},
	}
}

func TestAEADESPRoundTrip(t *testing.T) {
	for _, alg := range []string{"aes-gcm", "aes256-gcm"} {
		sa := aeadSA(t, alg)
		payload := []byte("upper layer header and data carried at line rate")
		wire, err := buildESPTransport(sa, payload, proto.TCP)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if get32be(wire) != sa.SPI {
			t.Fatalf("%s: SPI not cleartext", alg)
		}
		if get64be(wire[4:]) != 1 {
			t.Fatalf("%s: first sequence number = %d, want 1", alg, get64be(wire[4:]))
		}
		if bytes.Contains(wire, payload[:8]) {
			t.Fatalf("%s: plaintext visible", alg)
		}
		inner, nh, err := openESP(sa, wire)
		if err != nil || nh != proto.TCP || !bytes.Equal(inner, payload) {
			t.Fatalf("%s: unwrap = %q nh=%d err=%v", alg, inner, nh, err)
		}
		// The sequence number advances per packet.
		wire2, _ := buildESPTransport(sa, payload, proto.TCP)
		if get64be(wire2[4:]) != 2 {
			t.Fatalf("%s: second sequence number = %d", alg, get64be(wire2[4:]))
		}
	}
}

func TestAEADESPTamperFails(t *testing.T) {
	sa := aeadSA(t, "aes-gcm")
	wire, _ := buildESPTransport(sa, []byte("integrity protected"), proto.UDP)
	for _, flip := range []int{0, 5, espAEADHdr + 3, len(wire) - 1} {
		img := append([]byte(nil), wire...)
		img[flip] ^= 1
		if _, _, err := openESP(sa, img); err == nil {
			t.Fatalf("tamper at byte %d accepted", flip)
		} else if flip >= 4 && err != errESPAuth {
			t.Fatalf("tamper at byte %d: err=%v, want errESPAuth", flip, err)
		}
	}
	// Flipping the SPI byte changes only the AAD — still errESPAuth.
	img := append([]byte(nil), wire...)
	img[0] ^= 1
	if _, _, err := openESP(sa, img); err != errESPAuth {
		t.Fatalf("AAD tamper: err=%v", err)
	}
}

func TestAEADWireSeq(t *testing.T) {
	sa := aeadSA(t, "aes-gcm")
	for want := uint64(1); want <= 5; want++ {
		wire, err := buildESPTransport(sa, []byte("p"), proto.UDP)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := espLookup(sa.EncAlg)
		st, ok := e.transform.(SeqTransform)
		if !ok {
			t.Fatal("AEAD transform not sequenced")
		}
		if seq, ok := st.WireSeq(wire); !ok || seq != want {
			t.Fatalf("WireSeq = %d,%v want %d", seq, ok, want)
		}
	}
	e, _ := espLookup("aes-gcm")
	if _, ok := e.transform.(SeqTransform).WireSeq([]byte{1, 2, 3}); ok {
		t.Fatal("short payload yielded a sequence number")
	}
}

func TestAEADKeySizeEnforced(t *testing.T) {
	sa := aeadSA(t, "aes-gcm")
	sa.EncKey = sa.EncKey[:16] // missing the salt
	if _, err := buildESPTransport(sa, []byte("x"), proto.UDP); err == nil {
		t.Fatal("short AEAD key accepted")
	}
}

func TestSequencedAHRoundTrip(t *testing.T) {
	sa := ahSA(t)
	sa.AuthAlg = "hmac-sha256"
	sa.AuthKey = []byte("a 32 byte hmac key for sha256!!!")
	hdr := testHdr(t)
	payload := []byte("sequenced authentication data")
	wrapped, err := buildAH(sa, hdr, payload, proto.UDP)
	if err != nil {
		t.Fatal(err)
	}
	whdr := *hdr
	whdr.NextHdr = proto.AH
	whdr.PayloadLen = len(wrapped)
	img := append(whdr.Marshal(nil), wrapped...)

	nh, ahLen, seq, ok := verifyAHSeq(sa, &whdr, img, ipv6.HeaderLen)
	wantLen := ahFixedLen + ahSeqLen + 16
	if !ok || nh != proto.UDP || ahLen != wantLen || seq != 1 {
		t.Fatalf("verify: nh=%d len=%d seq=%d ok=%v", nh, ahLen, seq, ok)
	}
	// Length field is in 4-byte units over seq+digest.
	if int(img[ipv6.HeaderLen+1]) != (ahSeqLen+16)/4 {
		t.Fatalf("AH length field = %d", img[ipv6.HeaderLen+1])
	}
	// Tamper with the sequence number: the digest covers it.
	img[ipv6.HeaderLen+ahFixedLen+7] ^= 1
	if _, _, _, ok := verifyAHSeq(sa, &whdr, img, ipv6.HeaderLen); ok {
		t.Fatal("sequence tamper accepted")
	}
}

func TestClassicAHFramingUnchanged(t *testing.T) {
	// The paper-era keyed digests must keep the RFC 1826 framing: no
	// sequence field, length = digest words.
	sa := ahSA(t)
	wrapped, err := buildAH(sa, testHdr(t), []byte("data"), proto.TCP)
	if err != nil {
		t.Fatal(err)
	}
	if int(wrapped[1]) != 16/4 {
		t.Fatalf("keyed-md5 AH length field = %d, want 4", wrapped[1])
	}
	if len(wrapped) < ahFixedLen+16 || sequenced(mustAuth(t, "keyed-md5")) {
		t.Fatal("classic framing grew a sequence number")
	}
}

func mustAuth(t testing.TB, name string) AuthAlg {
	t.Helper()
	a, ok := LookupAuth(name)
	if !ok {
		t.Fatalf("no auth %s", name)
	}
	return a
}

// chainOf builds a multi-segment mbuf chain carrying data split at
// arbitrary points, exercising the chain-aware gather paths.
func chainOf(data []byte, cuts ...int) *mbuf.Mbuf {
	m := mbuf.New(data[:cuts[0]])
	prev := cuts[0]
	for _, c := range cuts[1:] {
		m.AppendNoCopy(data[prev:c])
		prev = c
	}
	m.AppendNoCopy(data[prev:])
	return m
}

func TestWrapESPChainMatchesFlat(t *testing.T) {
	// The chain-aware wrap must produce a payload the flat opener
	// accepts, for both the AEAD and classic CBC rows.
	for _, alg := range []string{"aes-gcm", "des-cbc"} {
		var sa *key.SA
		if alg == "aes-gcm" {
			sa = aeadSA(t, alg)
		} else {
			sa = espSA(t, alg)
		}
		data := bytes.Repeat([]byte("chain-aware segment data "), 20)
		chain := chainOf(data, 17, 100, 333)
		e, err := espLookup(sa.EncAlg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := wrapESPChain(sa, e, nil, chain, proto.TCP)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		inner, nh, err := openESP(sa, out.Bytes())
		if err != nil || nh != proto.TCP || !bytes.Equal(inner, data) {
			t.Fatalf("%s: chain wrap round trip failed: err=%v nh=%d", alg, err, nh)
		}
		out.Free()
		chain.Free()
	}
}

func TestWrapESPChainPrefix(t *testing.T) {
	// Tunnel mode passes the marshaled inner header as prefix; the
	// opener must see prefix||payload as one plaintext.
	sa := aeadSA(t, "aes-gcm")
	prefix := []byte("INNER-HEADER")
	data := []byte("inner payload bytes")
	chain := chainOf(data, 5)
	e, _ := espLookup(sa.EncAlg)
	out, err := wrapESPChain(sa, e, prefix, chain, proto.IPv6)
	if err != nil {
		t.Fatal(err)
	}
	inner, nh, err := openESP(sa, out.Bytes())
	if err != nil || nh != proto.IPv6 || !bytes.Equal(inner, append(append([]byte(nil), prefix...), data...)) {
		t.Fatalf("prefix wrap: err=%v nh=%d", err, nh)
	}
	out.Free()
	chain.Free()
}

func TestBuildAHChainVerifies(t *testing.T) {
	sa := ahSA(t)
	sa.AuthAlg = "hmac-sha256"
	sa.AuthKey = []byte("a 32 byte hmac key for sha256!!!")
	hdr := testHdr(t)
	data := bytes.Repeat([]byte("streamed digest over segments "), 8)
	chain := chainOf(data, 31, 64)
	if err := buildAHChain(sa, hdr, chain, proto.TCP); err != nil {
		t.Fatal(err)
	}
	wrapped := chain.Bytes()
	whdr := *hdr
	whdr.NextHdr = proto.AH
	whdr.PayloadLen = len(wrapped)
	img := append(whdr.Marshal(nil), wrapped...)
	nh, _, seq, ok := verifyAHSeq(sa, &whdr, img, ipv6.HeaderLen)
	if !ok || nh != proto.TCP || seq != 1 {
		t.Fatalf("chain AH verify: nh=%d seq=%d ok=%v", nh, seq, ok)
	}
	chain.Free()
}

func BenchmarkAEADSeal(b *testing.B) {
	sa := aeadSA(b, "aes-gcm")
	data := bytes.Repeat([]byte("x"), 1400)
	chain := mbuf.New(data)
	defer chain.Free()
	e, _ := espLookup(sa.EncAlg)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := wrapESPChain(sa, e, nil, chain, proto.TCP)
		if err != nil {
			b.Fatal(err)
		}
		out.Free()
	}
}

func BenchmarkDESCBCSeal(b *testing.B) {
	sa := espSA(b, "des-cbc")
	data := bytes.Repeat([]byte("x"), 1400)
	chain := mbuf.New(data)
	defer chain.Free()
	e, _ := espLookup(sa.EncAlg)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := wrapESPChain(sa, e, nil, chain, proto.TCP)
		if err != nil {
			b.Fatal(err)
		}
		out.Free()
	}
}
