package ipsec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"hash"
	"sort"
)

// Modern switch entries (§3.6's extension point exercised): AEAD
// ciphers for ESP and an HMAC for AH.  The paper's DES-CBC and keyed
// MD5 remain registered as conformance oracles — their wire formats
// are untouched — while these entries carry the line-rate traffic.
// Both new families frame a 64-bit sequence number, which is what the
// RFC 4303-style replay window (key.Replay) slides over.

// AEADAlg is one entry in the AEAD switch: a combined
// encryption+authentication cipher for ESP (RFC 4106 spirit).  Key
// material is the cipher key followed by a 4-byte implicit nonce salt.
type AEADAlg interface {
	// Name is the switch key an SA's EncAlg selects.
	Name() string
	// KeySize is the expected EncKey length: cipher key plus salt.
	KeySize() int
	// Overhead is the authentication tag length appended to the
	// ciphertext.
	Overhead() int
	// New returns the AEAD primitive and the implicit nonce salt split
	// out of key.
	New(key []byte) (cipher.AEAD, []byte, error)
}

// aeadSaltLen is the implicit nonce salt carried at the tail of an
// AEAD SA's key material; salt(4) || seq(8) forms the 12-byte nonce.
const aeadSaltLen = 4

// gcmAlg is the stdlib AES-GCM AEAD switch entry.
type gcmAlg struct {
	name   string
	keyLen int // AES key bytes, excluding the salt
}

func (g *gcmAlg) Name() string  { return g.name }
func (g *gcmAlg) KeySize() int  { return g.keyLen + aeadSaltLen }
func (g *gcmAlg) Overhead() int { return 16 }
func (g *gcmAlg) New(key []byte) (cipher.AEAD, []byte, error) {
	if len(key) != g.KeySize() {
		return nil, nil, fmt.Errorf("ipsec: %s wants a %d-byte key (cipher||salt), got %d", g.name, g.KeySize(), len(key))
	}
	blk, err := aes.NewCipher(key[:g.keyLen])
	if err != nil {
		return nil, nil, err
	}
	aead, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, nil, err
	}
	return aead, key[g.keyLen:], nil
}

var aeadSwitch = map[string]AEADAlg{}

// RegisterAEAD adds an AEAD cipher to the switch.  ESP lookup prefers
// an AEAD entry over a classic EncAlg of the same name.
func RegisterAEAD(a AEADAlg) {
	switchMu.Lock()
	aeadSwitch[a.Name()] = a
	switchMu.Unlock()
}

// LookupAEAD finds an AEAD cipher by name.
func LookupAEAD(name string) (AEADAlg, bool) {
	switchMu.RLock()
	defer switchMu.RUnlock()
	a, ok := aeadSwitch[name]
	return a, ok
}

// AEADs lists the registered AEAD names, for keyadm/netstat.
func AEADs() []string {
	switchMu.RLock()
	defer switchMu.RUnlock()
	var out []string
	for n := range aeadSwitch {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SequencedAuth marks an authentication algorithm whose AH framing
// carries a 64-bit sequence number after the SPI (and so gets replay
// protection).  The paper-era keyed digests keep the RFC 1826 framing;
// framing is selected by the SA's algorithm, never guessed from the
// wire.
type SequencedAuth interface {
	AuthAlg
	// Sequenced reports that this algorithm's AH carries a sequence
	// number.
	Sequenced() bool
}

// hmacAlg is an HMAC authentication switch entry with sequenced AH
// framing.
type hmacAlg struct {
	name  string
	dlen  int
	newFn func() hash.Hash
}

func (a *hmacAlg) Name() string             { return a.name }
func (a *hmacAlg) DigestLen() int           { return a.dlen }
func (a *hmacAlg) Sequenced() bool          { return true }
func (a *hmacAlg) New(key []byte) hash.Hash { return hmac.New(a.newFn, key) }

// sequenced reports whether alg's AH framing carries a sequence
// number.
func sequenced(alg AuthAlg) bool {
	s, ok := alg.(SequencedAuth)
	return ok && s.Sequenced()
}

func init() {
	// The line-rate entries: stdlib AES-GCM for ESP, HMAC-SHA-256 for
	// AH (truncated to 16 bytes per RFC 4868's 128-bit convention).
	RegisterAEAD(&gcmAlg{name: "aes-gcm", keyLen: 16})
	RegisterAEAD(&gcmAlg{name: "aes256-gcm", keyLen: 32})
	RegisterAuth(&hmacAlg{name: "hmac-sha256", dlen: sha256.Size / 2, newFn: sha256.New})
}

// put32 and put64 store big-endian integers for the security framings.
func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func put64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
	b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func get64be(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
