package ipsec

// Tests for the extensions the paper plans or sketches: the security
// gateway tunnel (§3's tunnel-mode routing), the per-port policy
// enhancement (§3.5), and the privileged bypass (§6.3).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/route"
)

// TestTunnelToSecurityGateway builds the VPN shape: client --- gw ===
// server, where === is cleartext behind the gateway. The client's
// tunnel association names the gateway as its endpoint with a selector
// covering the server's network; the gateway decapsulates and forwards.
func TestTunnelToSecurityGateway(t *testing.T) {
	hub1, hub2 := netif.NewHub(), netif.NewHub()
	cli := newSecNode("cli")
	gw := newSecNode("gw")
	srv := newSecNode("srv")
	cIf := cli.join(hub1, macA, 1500)
	gw1 := gw.join(hub1, inet.LinkAddr{2, 0, 0, 0, 0, 0x1}, 1500)
	gw2 := gw.join(hub2, inet.LinkAddr{2, 0, 0, 0, 0, 0x2}, 1500)
	sIf := srv.join(hub2, macB, 1500)
	gw.l.Forwarding = true

	// Global addressing: the client is on net1, the server on net2.
	addGlobal := func(n *secNode, ifp *netif.Interface, s string) inet.IP6 {
		a := ip6(t, s)
		ifp.AddAddr6(netif.Addr6{Addr: a, Plen: 64})
		n.l.JoinGroup(ifp.Name, inet.SolicitedNode(a))
		prefix := a
		for i := 8; i < 16; i++ {
			prefix[i] = 0
		}
		n.rt.Add(&route.Entry{Family: inet.AFInet6, Dst: prefix[:], Plen: 64,
			Flags: route.FlagUp | route.FlagCloning | route.FlagLLInfo, IfName: ifp.Name})
		return a
	}
	cliAddr := addGlobal(cli, cIf, "2001:db8:1::c")
	gwAddr1 := addGlobal(gw, gw1, "2001:db8:1::1")
	addGlobal(gw, gw2, "2001:db8:2::1")
	srvAddr := addGlobal(srv, sIf, "2001:db8:2::5")
	var zero inet.IP6
	cli.rt.Add(&route.Entry{Family: inet.AFInet6, Dst: zero[:], Plen: 0,
		Flags: route.FlagUp | route.FlagGateway, Gateway: gwAddr1, IfName: cIf.Name})
	srv.rt.Add(&route.Entry{Family: inet.AFInet6, Dst: zero[:], Plen: 0,
		Flags: route.FlagUp | route.FlagGateway, Gateway: ip6(t, "2001:db8:2::1"), IfName: sIf.Name})

	// Tunnel SA: endpoint is the GATEWAY, selector covers net2.
	encKey := []byte("DESCBC!!")
	sa := &key.SA{
		SPI: 0x7777, Src: cliAddr, Dst: gwAddr1, Proto: key.ProtoESPTunnel,
		EncAlg: "des-cbc", EncKey: encKey,
		SelDst: ip6(t, "2001:db8:2::"), SelPlen: 48,
	}
	cli.ke.Add(sa)
	gwSA := *sa
	gw.ke.Add(&gwSA)
	cli.sec.SetSystemPolicy(SockOpts{ESPTunnel: LevelRequire})

	// The server's view: packets arrive as plain UDP from the client.
	var mu sync.Mutex
	var got []byte
	var gotSrc inet.IP6
	srv.l.Register(proto.UDP, func(pkt *mbuf.Mbuf, meta *proto.Meta) {
		mu.Lock()
		got = pkt.CopyBytes()
		gotSrc = meta.Src6
		mu.Unlock()
	}, nil)

	pkt := mbuf.New([]byte("through the vpn"))
	if err := cli.l.Output(pkt, cliAddr, srvAddr, proto.UDP, outOpts()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "decapsulated delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got != nil
	})
	mu.Lock()
	defer mu.Unlock()
	if string(got) != "through the vpn" {
		t.Fatalf("payload %q", got)
	}
	// The inner source (the client) survives decapsulation.
	if gotSrc != cliAddr {
		t.Fatalf("inner source %v", gotSrc)
	}
	if cli.sec.Stats.OutTunnel.Get() == 0 || gw.sec.Stats.InDecryptOK.Get() == 0 {
		t.Fatalf("tunnel not exercised: %+v / %+v", &cli.sec.Stats, &gw.sec.Stats)
	}
	// The wire between client and gateway never carried the plaintext.
	// (Checked implicitly: the gateway had to decrypt to forward.)
	if gw.l.Stats.Forwarded.Get() == 0 {
		t.Fatal("gateway did not forward the inner datagram")
	}
}

func TestPortPolicyRequiresAuth(t *testing.T) {
	// §3.5: "packets coming in on a certain range of privileged ports
	// ... must be authentic."
	a, b := securePair(t)
	addPairSA(t, a, b, key.ProtoAH, 0xc00)
	b.sec.AddPortPolicy(1, 1023, SockOpts{Auth: LevelRequire})

	var mu sync.Mutex
	delivered := map[uint16]int{}
	deliver := func(port uint16) func(pkt *mbuf.Mbuf, meta *proto.Meta) {
		return func(pkt *mbuf.Mbuf, meta *proto.Meta) {
			if b.sec.InputPolicyPort(pkt, meta.Dst6, nil, port) {
				mu.Lock()
				delivered[port]++
				mu.Unlock()
			}
		}
	}
	// Simulate two local ports by checking the policy directly with
	// packets that did/did not pass AH.
	clean := mbuf.New([]byte("x"))
	authed := mbuf.New([]byte("x"))
	authed.Hdr().Flags |= mbuf.MAuthentic

	if b.sec.InputPolicyPort(clean, b.ll(), nil, 23) {
		t.Fatal("cleartext accepted on a privileged port")
	}
	if !b.sec.InputPolicyPort(authed, b.ll(), nil, 23) {
		t.Fatal("authenticated packet rejected on a privileged port")
	}
	if !b.sec.InputPolicyPort(clean, b.ll(), nil, 8080) {
		t.Fatal("cleartext rejected on an unprivileged port")
	}
	_ = deliver
	_ = delivered
}

func TestBypassExemptsSocket(t *testing.T) {
	a, b := securePair(t)
	// System policy requires authentication; the bypass socket is
	// exempt on output and input (the Photuris-daemon case, §6.3).
	a.sec.SetSystemPolicy(SockOpts{Auth: LevelRequire})
	b.sec.SetSystemPolicy(SockOpts{Auth: LevelRequire})

	type sockID string
	bypassSock := sockID("keymgmt")
	plainSock := sockID("ordinary")
	opts := map[sockID]SockOpts{
		bypassSock: {Bypass: true},
		plainSock:  {},
	}
	for _, n := range []*secNode{a, b} {
		n.sec.SocketOpts = func(s any) SockOpts {
			if id, ok := s.(sockID); ok {
				return opts[id]
			}
			return SockOpts{}
		}
	}

	// Output: the ordinary socket fails (no SA); the bypass one sends
	// in the clear.
	pkt := mbuf.New([]byte("negotiation"))
	if err := a.l.Output(pkt, inet.IP6{}, b.ll(), proto.UDP, outOptsSock(plainSock)); err == nil {
		t.Fatal("ordinary socket sent without an SA under require policy")
	}
	pkt2 := mbuf.New([]byte("negotiation"))
	if err := a.l.Output(pkt2, inet.IP6{}, b.ll(), proto.UDP, outOptsSock(bypassSock)); err != nil {
		t.Fatalf("bypass socket failed: %v", err)
	}
	if a.sec.Stats.OutAH.Get() != 0 {
		t.Fatal("bypass traffic was wrapped")
	}
	// Input: cleartext passes the policy only for the bypass socket.
	clean := mbuf.New([]byte("x"))
	if b.sec.InputPolicy(clean, b.ll(), plainSock) {
		t.Fatal("cleartext accepted for ordinary socket")
	}
	if !b.sec.InputPolicy(clean, b.ll(), bypassSock) {
		t.Fatal("cleartext rejected for bypass socket")
	}
}

func outOpts() (o ipv6.OutputOpts) { return }

func outOptsSock(s any) ipv6.OutputOpts {
	o := ipv6.OutputOpts{}
	o.Socket = s
	return o
}

var _ = fmt.Sprint
var _ = time.Now
