package ipsec

import (
	"bytes"
	"testing"

	"bsd6/internal/key"
)

// FuzzESPUnpad attacks the RFC 1829 ESP trailer handling from both
// sides: Unwrap must survive arbitrary ciphertext (whose decrypted
// pad-length byte is attacker-ish garbage), and Wrap→Unwrap must be
// the identity on the plaintext and payload type for every input
// length, since the pad inserted to reach a whole DES block is
// exactly what the unpad strips.
func FuzzESPUnpad(f *testing.F) {
	f.Add([]byte("payload"), uint8(41))
	f.Add([]byte{}, uint8(6))
	f.Add(make([]byte, 64), uint8(17))
	f.Add([]byte{0, 0, 0x10, 0x01, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, ptype uint8) {
		enc, ok := LookupEnc("des-cbc")
		if !ok {
			t.Skip("des-cbc not registered")
		}
		sa := &key.SA{SPI: 0x1001, EncAlg: "des-cbc",
			EncKey: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
		var tr cbcTransform

		// Arbitrary bytes as ciphertext: any outcome but a panic.
		if inner, _, err := tr.Unwrap(sa, enc, data); err == nil {
			if len(inner) > len(data) {
				t.Fatalf("unwrap grew %d bytes into %d", len(data), len(inner))
			}
		}

		wrapped, err := tr.Wrap(sa, enc, data, ptype)
		if err != nil {
			t.Fatalf("wrap(%d bytes): %v", len(data), err)
		}
		inner, pt, err := tr.Unwrap(sa, enc, wrapped)
		if err != nil {
			t.Fatalf("unwrap of own wrap failed: %v", err)
		}
		if pt != ptype || !bytes.Equal(inner, data) {
			t.Fatalf("round trip mangled payload: type %d->%d, %d->%d bytes",
				ptype, pt, len(data), len(inner))
		}
	})
}

// FuzzAEADSeal attacks the sequenced AEAD framing from both sides:
// Unwrap must survive arbitrary bytes (truncations, bit flips, forged
// tags) without panicking and without ever returning success for
// anything the matching Wrap did not produce; Wrap→Unwrap must be the
// identity on plaintext and payload type for every input length.
func FuzzAEADSeal(f *testing.F) {
	f.Add([]byte("payload"), uint8(41), []byte{})
	f.Add([]byte{}, uint8(6), []byte{1, 2, 3})
	f.Add(make([]byte, 64), uint8(17), make([]byte, 40))

	f.Fuzz(func(t *testing.T, data []byte, ptype uint8, garbage []byte) {
		alg, ok := LookupAEAD("aes-gcm")
		if !ok {
			t.Skip("aes-gcm not registered")
		}
		k := make([]byte, alg.KeySize())
		for i := range k {
			k[i] = byte(i * 3)
		}
		sa := &key.SA{SPI: 0x2002, EncAlg: "aes-gcm", EncKey: k}
		tr := &aeadTransform{alg: alg}

		// Arbitrary bytes as ciphertext: must error, never panic (the
		// odds of garbage carrying a valid 128-bit tag are nil).
		if _, _, err := tr.Unwrap(sa, nil, garbage); err == nil && len(garbage) > 0 {
			t.Fatalf("%d random bytes authenticated", len(garbage))
		}

		wrapped, err := tr.Wrap(sa, nil, data, ptype)
		if err != nil {
			t.Fatalf("wrap(%d bytes): %v", len(data), err)
		}
		inner, pt, err := tr.Unwrap(sa, nil, wrapped)
		if err != nil {
			t.Fatalf("unwrap of own wrap failed: %v", err)
		}
		if pt != ptype || !bytes.Equal(inner, data) {
			t.Fatalf("round trip mangled payload: type %d->%d, %d->%d bytes",
				ptype, pt, len(data), len(inner))
		}
		// Any single-byte corruption must be rejected.
		if len(wrapped) > 0 {
			i := len(data) % len(wrapped)
			wrapped[i] ^= 1
			if _, _, err := tr.Unwrap(sa, nil, wrapped); err == nil {
				t.Fatalf("corruption at byte %d authenticated", i)
			}
		}
	})
}
