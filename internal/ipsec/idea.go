package ipsec

import (
	"crypto/cipher"
	"errors"
)

// IDEA block cipher (Lai & Massey, EUROCRYPT '90) — the exact example
// §3.6 gives for the ESP algorithm switch: "someone wanting to
// substitute the IDEA algorithm for the default DES-CBC algorithm but
// still use the same basic header format could create a new algorithm
// switch entry that uses the same header processing functions as
// DES-CBC but calls the IDEA encryption functions instead."  The
// registry below does exactly that: idea-cbc reuses the DES-CBC
// transform header processing with this cipher.
//
// IDEA's patents expired in 2011-2012; the algorithm is implemented
// here from the published specification: 8.5 rounds over four 16-bit
// words using XOR, addition mod 2^16, and multiplication mod 2^16+1.

const ideaBlockSize = 8
const ideaKeySize = 16
const ideaRounds = 8

type ideaCipher struct {
	ek [52]uint16 // encryption subkeys
	dk [52]uint16 // decryption subkeys
}

// newIDEA creates an IDEA block cipher with a 128-bit key.
func newIDEA(key []byte) (cipher.Block, error) {
	if len(key) != ideaKeySize {
		return nil, errors.New("ipsec: IDEA key must be 16 bytes")
	}
	c := &ideaCipher{}
	c.expandKey(key)
	c.invertKey()
	return c, nil
}

func (c *ideaCipher) BlockSize() int { return ideaBlockSize }

// expandKey derives the 52 encryption subkeys: the key is read as
// eight 16-bit words, then rotated left 25 bits for each subsequent
// group of eight.
func (c *ideaCipher) expandKey(key []byte) {
	for i := 0; i < 8; i++ {
		c.ek[i] = uint16(key[2*i])<<8 | uint16(key[2*i+1])
	}
	for i := 8; i < 52; i++ {
		// Subkey i comes from the rotated key schedule: within each
		// 8-word group, index j uses words of the previous group
		// shifted 25 bits.
		if i%8 < 6 {
			c.ek[i] = c.ek[i-7]<<9 | c.ek[i-6]>>7
		} else if i%8 == 6 {
			c.ek[i] = c.ek[i-7]<<9 | c.ek[i-14]>>7
		} else {
			c.ek[i] = c.ek[i-15]<<9 | c.ek[i-14]>>7
		}
	}
}

// mulInv computes the multiplicative inverse modulo 2^16+1 (with the
// IDEA convention that 0 represents 2^16).
func mulInv(x uint16) uint16 {
	if x <= 1 {
		return x // 0 and 1 are self-inverse
	}
	t1 := uint32(0x10001) / uint32(x)
	y := uint32(0x10001) % uint32(x)
	if y == 1 {
		return uint16(1 - t1)
	}
	var t0 uint32 = 1
	x32 := uint32(x)
	for y != 1 {
		q := x32 / y
		x32 = x32 % y
		t0 += q * t1
		if x32 == 1 {
			return uint16(t0)
		}
		q = y / x32
		y = y % x32
		t1 += q * t0
	}
	return uint16(1 - t1)
}

// addInv is the additive inverse mod 2^16.
func addInv(x uint16) uint16 { return -x }

// invertKey derives decryption subkeys from encryption subkeys.
func (c *ideaCipher) invertKey() {
	var p [52]uint16
	i := 0
	j := 51
	p[j-3] = mulInv(c.ek[i])
	p[j-2] = addInv(c.ek[i+1])
	p[j-1] = addInv(c.ek[i+2])
	p[j] = mulInv(c.ek[i+3])
	i += 4
	j -= 4
	for r := 0; r < ideaRounds-1; r++ {
		p[j-1] = c.ek[i]
		p[j] = c.ek[i+1]
		p[j-5] = mulInv(c.ek[i+2])
		p[j-3] = addInv(c.ek[i+3])
		p[j-4] = addInv(c.ek[i+4])
		p[j-2] = mulInv(c.ek[i+5])
		i += 6
		j -= 6
	}
	p[j-1] = c.ek[i]
	p[j] = c.ek[i+1]
	p[j-5] = mulInv(c.ek[i+2])
	p[j-4] = addInv(c.ek[i+3])
	p[j-3] = addInv(c.ek[i+4])
	p[j-2] = mulInv(c.ek[i+5])
	c.dk = p
}

// mul is IDEA multiplication mod 2^16+1 (0 represents 2^16).
func mul(a, b uint16) uint16 {
	if a == 0 {
		return uint16(1 - int32(b)) // (2^16 * b) mod (2^16+1) == 1-b
	}
	if b == 0 {
		return uint16(1 - int32(a))
	}
	p := uint32(a) * uint32(b)
	hi := uint16(p >> 16)
	lo := uint16(p)
	if lo > hi {
		return lo - hi
	}
	return lo - hi + 1
}

func crypt(in, out []byte, k *[52]uint16) {
	x1 := uint16(in[0])<<8 | uint16(in[1])
	x2 := uint16(in[2])<<8 | uint16(in[3])
	x3 := uint16(in[4])<<8 | uint16(in[5])
	x4 := uint16(in[6])<<8 | uint16(in[7])
	ki := 0
	for r := 0; r < ideaRounds; r++ {
		x1 = mul(x1, k[ki])
		x2 += k[ki+1]
		x3 += k[ki+2]
		x4 = mul(x4, k[ki+3])
		t2 := x1 ^ x3
		t2 = mul(t2, k[ki+4])
		t1 := t2 + (x2 ^ x4)
		t1 = mul(t1, k[ki+5])
		t2 += t1
		x1 ^= t1
		x4 ^= t2
		x2, x3 = x3^t1, x2^t2
		ki += 6
	}
	y1 := mul(x1, k[ki])
	y2 := x3 + k[ki+1]
	y3 := x2 + k[ki+2]
	y4 := mul(x4, k[ki+3])
	out[0], out[1] = byte(y1>>8), byte(y1)
	out[2], out[3] = byte(y2>>8), byte(y2)
	out[4], out[5] = byte(y3>>8), byte(y3)
	out[6], out[7] = byte(y4>>8), byte(y4)
}

func (c *ideaCipher) Encrypt(dst, src []byte) { crypt(src, dst, &c.ek) }
func (c *ideaCipher) Decrypt(dst, src []byte) { crypt(src, dst, &c.dk) }
