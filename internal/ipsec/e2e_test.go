package ipsec

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bsd6/internal/icmp6"
	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/route"
)

// secNode is a stack with IPv6 + ICMPv6 + IPsec + Key Engine.
type secNode struct {
	name string
	rt   *route.Table
	l    *ipv6.Layer
	icmp *icmp6.Module
	sec  *Module
	ke   *key.Engine
	ifps []*netif.Interface
}

func newSecNode(name string) *secNode {
	rt := route.NewTable()
	l := ipv6.NewLayer(rt)
	icmp := icmp6.Attach(l)
	ke := key.NewEngine()
	sec := Attach(l, ke)
	n := &secNode{name: name, rt: rt, l: l, icmp: icmp, sec: sec, ke: ke}
	lo := netif.NewLoopback(name+"-lo", 32768)
	lo.SetInput(func(ifp *netif.Interface, fr netif.Frame) { l.Input(ifp, fr.Payload) })
	l.AddInterface(lo)
	return n
}

func (n *secNode) join(hub *netif.Hub, mac inet.LinkAddr, mtu int) *netif.Interface {
	ifp := netif.New(fmt.Sprintf("%s-eth%d", n.name, len(n.ifps)), mac, mtu)
	ifp.SetInput(func(ifp *netif.Interface, fr netif.Frame) {
		if fr.EtherType == netif.EtherTypeIPv6 {
			n.l.Input(ifp, fr.Payload)
		}
	})
	hub.Attach(ifp)
	ll := inet.LinkLocal(mac.Token())
	ifp.AddAddr6(netif.Addr6{Addr: ll, Plen: 64})
	n.l.AddInterface(ifp)
	n.l.JoinGroup(ifp.Name, inet.SolicitedNode(ll))
	llPrefix := inet.IP6{0: 0xfe, 1: 0x80}
	n.rt.Add(&route.Entry{
		Family: inet.AFInet6, Dst: llPrefix[:], Plen: 64,
		Flags: route.FlagUp | route.FlagCloning | route.FlagLLInfo, IfName: ifp.Name,
	})
	n.ifps = append(n.ifps, ifp)
	return ifp
}

func (n *secNode) ll() inet.IP6 {
	a, _ := n.ifps[0].LinkLocal6(time.Now())
	return a
}

var (
	macA = inet.LinkAddr{2, 0, 0, 0, 0, 0xa}
	macB = inet.LinkAddr{2, 0, 0, 0, 0, 0xb}
)

func securePair(t *testing.T) (*secNode, *secNode) {
	t.Helper()
	hub := netif.NewHub()
	a, b := newSecNode("a"), newSecNode("b")
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	return a, b
}

// addPairSA installs symmetric associations (one per direction, §3.1:
// "a typical telnet session would need two Security Associations").
func addPairSA(t *testing.T, a, b *secNode, p key.SecProto, spiBase uint32) {
	t.Helper()
	authKey := []byte("0123456789abcdef")
	encKey := []byte("DESCBCK1")
	mk := func(src, dst inet.IP6, spi uint32) *key.SA {
		sa := &key.SA{SPI: spi, Src: src, Dst: dst, Proto: p}
		if p == key.ProtoAH {
			sa.AuthAlg, sa.AuthKey = "keyed-md5", authKey
		} else {
			sa.EncAlg, sa.EncKey = "des-cbc", encKey
		}
		return sa
	}
	if err := a.ke.Add(mk(a.ll(), b.ll(), spiBase)); err != nil {
		t.Fatal(err)
	}
	if err := b.ke.Add(mk(a.ll(), b.ll(), spiBase)); err != nil {
		t.Fatal(err)
	}
	if err := b.ke.Add(mk(b.ll(), a.ll(), spiBase+1)); err != nil {
		t.Fatal(err)
	}
	if err := a.ke.Add(mk(b.ll(), a.ll(), spiBase+1)); err != nil {
		t.Fatal(err)
	}
}

type echoSink struct {
	mu sync.Mutex
	n  int
}

func (s *echoSink) hook(m *icmp6.Module) {
	m.OnEcho = func(inet.IP6, uint16, uint16, []byte) {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

func (s *echoSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// waitFor asserts cond already holds: hub links deliver synchronously
// on the sender's goroutine, so by the time a send returns, every
// consequence (including the reply) has been processed.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	if !cond() {
		t.Fatalf("%s did not happen", what)
	}
}

func TestAuthenticatedPing(t *testing.T) {
	// §4: "all of these functions can now be authenticated ... using
	// the IP security mechanisms, as long as appropriate security
	// associations exist."
	a, b := securePair(t)
	addPairSA(t, a, b, key.ProtoAH, 0x100)
	a.sec.SetSystemPolicy(SockOpts{Auth: LevelRequire})
	b.sec.SetSystemPolicy(SockOpts{Auth: LevelRequire})
	sink := &echoSink{}
	sink.hook(a.icmp)

	if err := a.icmp.SendEcho(b.ll(), 1, 1, []byte("auth ping")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "authenticated reply", func() bool { return sink.count() >= 1 })
	if a.sec.Stats.OutAH.Get() == 0 || b.sec.Stats.InAuthOK.Get() == 0 {
		t.Fatalf("AH not exercised: %+v / %+v", &a.sec.Stats, &b.sec.Stats)
	}
}

func TestEncryptedPing(t *testing.T) {
	a, b := securePair(t)
	addPairSA(t, a, b, key.ProtoESPTransport, 0x200)
	a.sec.SetSystemPolicy(SockOpts{ESPTransport: LevelRequire})
	b.sec.SetSystemPolicy(SockOpts{ESPTransport: LevelRequire})
	sink := &echoSink{}
	sink.hook(a.icmp)

	secret := []byte("the secret payload bytes")
	var sawPlaintext bool
	hub := netif.NewHub()
	_ = hub // capture on the shared hub instead
	if err := a.icmp.SendEcho(b.ll(), 1, 1, secret); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "encrypted reply", func() bool { return sink.count() >= 1 })
	if a.sec.Stats.OutESP.Get() == 0 || b.sec.Stats.InDecryptOK.Get() == 0 {
		t.Fatalf("ESP not exercised: %+v / %+v", &a.sec.Stats, &b.sec.Stats)
	}
	_ = sawPlaintext
}

func TestEncryptedTrafficIsOpaqueOnWire(t *testing.T) {
	hub := netif.NewHub()
	a, b := newSecNode("a"), newSecNode("b")
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	addPairSA(t, a, b, key.ProtoESPTransport, 0x300)
	a.sec.SetSystemPolicy(SockOpts{ESPTransport: LevelRequire})
	b.sec.SetSystemPolicy(SockOpts{ESPTransport: LevelRequire})
	secret := []byte("TOPSECRET-PAYLOAD-0123456789")

	var mu sync.Mutex
	leaked := false
	hub.Capture = func(fr netif.Frame) {
		mu.Lock()
		defer mu.Unlock()
		b := fr.Payload.CopyBytes()
		for i := 0; i+8 <= len(b); i++ {
			if string(b[i:i+8]) == string(secret[:8]) {
				leaked = true
			}
		}
	}
	sink := &echoSink{}
	sink.hook(a.icmp)
	if err := a.icmp.SendEcho(b.ll(), 1, 1, secret); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reply", func() bool { return sink.count() >= 1 })
	mu.Lock()
	defer mu.Unlock()
	if leaked {
		t.Fatal("plaintext visible on the wire")
	}
}

func TestBothAHAndESP(t *testing.T) {
	// Table 5's "Both" row: AH outside ESP.
	a, b := securePair(t)
	addPairSA(t, a, b, key.ProtoAH, 0x400)
	addPairSA(t, a, b, key.ProtoESPTransport, 0x500)
	pol := SockOpts{Auth: LevelRequire, ESPTransport: LevelRequire}
	a.sec.SetSystemPolicy(pol)
	b.sec.SetSystemPolicy(pol)
	sink := &echoSink{}
	sink.hook(a.icmp)
	if err := a.icmp.SendEcho(b.ll(), 1, 1, []byte("both")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "AH+ESP reply", func() bool { return sink.count() >= 1 })
	if b.sec.Stats.InAuthOK.Get() == 0 || b.sec.Stats.InDecryptOK.Get() == 0 {
		t.Fatalf("both services not exercised: %+v", &b.sec.Stats)
	}
}

func TestESPTunnelMode(t *testing.T) {
	a, b := securePair(t)
	addPairSA(t, a, b, key.ProtoESPTunnel, 0x600)
	a.sec.SetSystemPolicy(SockOpts{ESPTunnel: LevelRequire})
	b.sec.SetSystemPolicy(SockOpts{ESPTunnel: LevelRequire})
	sink := &echoSink{}
	sink.hook(a.icmp)
	if err := a.icmp.SendEcho(b.ll(), 1, 1, []byte("tunnel")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "tunneled reply", func() bool { return sink.count() >= 1 })
	if a.sec.Stats.OutTunnel.Get() == 0 {
		t.Fatal("tunnel not used")
	}
}

func TestTunnelForgedInnerSourceLosesFlags(t *testing.T) {
	// §3.4: "checks ... intended to prevent an adversary system from
	// encapsulating a forged packet inside an ... encrypted legitimate
	// packet."  We hand-build a tunnel packet whose inner source
	// differs from the outer source; the flags must be cleared and the
	// strict input policy must then drop it.
	a, b := securePair(t)
	addPairSA(t, a, b, key.ProtoESPTunnel, 0x700)
	b.sec.SetSystemPolicy(SockOpts{ESPTunnel: LevelRequire})

	sa, err := a.ke.GetBySocket(a.ll(), b.ll(), key.ProtoESPTunnel, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// Forged inner datagram: source claims to be b itself.
	forgedSrc := b.ll()
	inner := &ipv6.Header{NextHdr: proto.ICMPv6, HopLimit: 64, Src: forgedSrc, Dst: b.ll()}
	echo := []byte{128, 0, 0, 0, 0, 1, 0, 1} // un-checksummed; never dispatched anyway
	innerWire := inner.Marshal(nil)
	inner.PayloadLen = len(echo)
	innerWire = inner.Marshal(nil)
	innerWire = append(innerWire, echo...)
	e, _ := espLookup(sa.EncAlg)
	espPayload, err := e.transform.Wrap(sa, e.cipher, innerWire, proto.IPv6)
	if err != nil {
		t.Fatal(err)
	}
	outer := &ipv6.Header{NextHdr: proto.ESP, HopLimit: 64, Src: a.ll(), Dst: b.ll(), PayloadLen: len(espPayload)}
	pkt := mbuf.New(outer.Marshal(nil))
	pkt.Append(espPayload)

	before := b.sec.Stats.TunnelSrcFail.Get()
	b.l.Input(b.ifps[0], pkt)
	if b.sec.Stats.TunnelSrcFail.Get() != before+1 {
		t.Fatal("forged tunnel source not detected")
	}
}

func TestLevel2WithoutSAFailsEIPSEC(t *testing.T) {
	// §3.3: no association and no key management daemon -> EIPSEC.
	a, b := securePair(t)
	a.sec.SetSystemPolicy(SockOpts{Auth: LevelRequire})
	err := a.icmp.SendEcho(b.ll(), 1, 1, []byte("x"))
	if !errors.Is(err, EIPSEC) {
		t.Fatalf("err = %v, want EIPSEC", err)
	}
	if a.sec.Stats.OutPolicyDrops.Get() == 0 {
		t.Fatal("OutPolicyDrops not counted")
	}
}

func TestLevel1UsesSecurityIfAvailable(t *testing.T) {
	a, b := securePair(t)
	// No SA: level 1 sends in the clear.
	a.sec.SetSystemPolicy(SockOpts{Auth: LevelUse})
	sink := &echoSink{}
	sink.hook(a.icmp)
	if err := a.icmp.SendEcho(b.ll(), 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cleartext reply at level 1", func() bool { return sink.count() >= 1 })
	if a.sec.Stats.OutAH.Get() != 0 {
		t.Fatal("AH applied without an SA")
	}
	// With an SA: level 1 authenticates ("always use authentication if
	// we have a security association that will facilitate it", §3.5).
	addPairSA(t, a, b, key.ProtoAH, 0x800)
	a.icmp.SendEcho(b.ll(), 1, 2, nil)
	waitFor(t, "authenticated at level 1", func() bool { return a.sec.Stats.OutAH.Get() >= 1 })
}

func TestInputPolicyDropsCleartext(t *testing.T) {
	// §5.3: "If the system security policy is to require authentication
	// on all received packets, then ... unauthenticated ping will
	// silently fail as if the destination system were not reachable."
	a, b := securePair(t)
	// Only B requires security; A sends cleartext.
	b.sec.SetSystemPolicy(SockOpts{Auth: LevelRequire})
	var mu sync.Mutex
	delivered := 0
	b.l.Register(proto.UDP, func(pkt *mbuf.Mbuf, meta *proto.Meta) {
		if b.sec.InputPolicy(pkt, meta.Dst6, nil) {
			mu.Lock()
			delivered++
			mu.Unlock()
		}
	}, nil)
	pkt := mbuf.New([]byte("cleartext datagram"))
	if err := a.l.Output(pkt, inet.IP6{}, b.ll(), proto.UDP, ipv6.OutputOpts{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "policy drop counted", func() bool { return b.sec.Stats.InPolicyDrops.Get() >= 1 })
	mu.Lock()
	defer mu.Unlock()
	if delivered != 0 {
		t.Fatal("cleartext delivered under require policy")
	}
}

func TestAcquireTriggersDaemon(t *testing.T) {
	a, b := securePair(t)
	a.sec.SetSystemPolicy(SockOpts{Auth: LevelRequire})
	daemon := a.ke.Open()
	defer daemon.Close()
	daemon.Register()
	err := a.icmp.SendEcho(b.ll(), 1, 1, nil)
	if !errors.Is(err, EIPSEC) {
		t.Fatalf("err = %v (send should fail while delayed)", err)
	}
	select {
	case m := <-daemon.C:
		if m.Type != key.MsgAcquire || m.SA.Dst != b.ll() {
			t.Fatalf("acquire: %+v", m)
		}
	default:
		t.Fatal("daemon got no ACQUIRE")
	}
}

func TestCorruptedAHDropped(t *testing.T) {
	a, b := securePair(t)
	addPairSA(t, a, b, key.ProtoAH, 0x900)
	a.sec.SetSystemPolicy(SockOpts{Auth: LevelRequire})
	b.sec.SetSystemPolicy(SockOpts{Auth: LevelRequire})
	hub := netif.NewHub() // unused; corruption is injected directly
	_ = hub

	// Build an authenticated packet by hand, then flip a payload bit.
	sa, _ := a.ke.GetBySocket(a.ll(), b.ll(), key.ProtoAH, nil, false)
	hdr := &ipv6.Header{HopLimit: 64, Src: a.ll(), Dst: b.ll()}
	wrapped, _ := buildAH(sa, hdr, []byte("payload-to-corrupt"), proto.UDP)
	hdr.NextHdr = proto.AH
	hdr.PayloadLen = len(wrapped)
	img := append(hdr.Marshal(nil), wrapped...)
	img[len(img)-1] ^= 0x80
	pkt := mbuf.New(img)
	before := b.sec.Stats.InAuthFail.Get()
	b.l.Input(b.ifps[0], pkt)
	if b.sec.Stats.InAuthFail.Get() != before+1 {
		t.Fatal("corrupted AH not rejected")
	}
}

func TestUnknownSPIDropped(t *testing.T) {
	a, b := securePair(t)
	addPairSA(t, a, b, key.ProtoAH, 0xa00)
	sa, _ := a.ke.GetBySocket(a.ll(), b.ll(), key.ProtoAH, nil, false)
	// B deletes its inbound SA: the SPI becomes unknown.
	b.ke.Delete(sa.SPI, b.ll(), key.ProtoAH)
	hdr := &ipv6.Header{HopLimit: 64, Src: a.ll(), Dst: b.ll()}
	wrapped, _ := buildAH(sa, hdr, []byte("data"), proto.UDP)
	hdr.NextHdr = proto.AH
	hdr.PayloadLen = len(wrapped)
	pkt := mbuf.New(append(hdr.Marshal(nil), wrapped...))
	b.l.Input(b.ifps[0], pkt)
	if b.sec.Stats.InNoSA.Get() == 0 {
		t.Fatal("unknown SPI not counted")
	}
}

func TestUniqueSocketKeying(t *testing.T) {
	// Level 3 (§6.1): outbound packets use an association unique to
	// the socket.
	a, b := securePair(t)
	sockID := "app-socket-1"
	authKey := []byte("0123456789abcdef")
	// Shared SA exists but a unique one is bound to our socket.
	a.ke.Add(&key.SA{SPI: 0xb00, Src: a.ll(), Dst: b.ll(), Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
	uniq := &key.SA{SPI: 0xb01, Src: a.ll(), Dst: b.ll(), Proto: key.ProtoAH,
		AuthAlg: "keyed-md5", AuthKey: authKey, Unique: true, Socket: sockID}
	a.ke.Add(uniq)
	b.ke.Add(&key.SA{SPI: 0xb01, Src: a.ll(), Dst: b.ll(), Proto: key.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey, Unique: true, Socket: sockID})

	a.sec.SocketOpts = func(s any) SockOpts {
		if s == sockID {
			return SockOpts{Auth: LevelUnique}
		}
		return SockOpts{}
	}
	pkt := mbuf.New([]byte("level3"))
	if err := a.l.Output(pkt, inet.IP6{}, b.ll(), proto.UDP, ipv6.OutputOpts{Socket: sockID}); err != nil {
		t.Fatal(err)
	}
	if uniq.UseCount == 0 {
		t.Fatal("unique SA not selected at level 3")
	}
}
