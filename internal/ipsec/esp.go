package ipsec

import (
	"errors"
	"fmt"

	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/proto"
)

// Encapsulating Security Payload processing (§3.2/§3.6).
//
// The ESP switch is two-dimensional: "the switch allows implementors
// to specify the header processing code and the encryption code
// separately for greater flexibility."  ESPTransform is the header
// processing half; EncAlg (alg.go) is the cipher half.  The DES-CBC
// transform (RFC 1829) is the default header format, and idea-cbc /
// 3des-cbc reuse it with different ciphers — §3.6's worked example.
//
// Wire format after the IPv6 chain (RFC 1827 + RFC 1829):
//
//	| SPI (4) | IV (block) | ciphertext( payload | pad | padLen | payloadType ) |
//
// Transport mode encrypts the upper-layer header and data; tunnel mode
// encrypts an entire IP datagram, with payloadType = 41 (IPv6).

// ESPTransform is the header-processing half of an ESP switch entry.
type ESPTransform interface {
	Name() string
	// Wrap encrypts plaintext (which already ends with pad/padLen/type
	// handling done inside) and returns the full ESP payload starting
	// with the SPI.
	Wrap(sa *key.SA, enc EncAlg, plaintext []byte, payloadType uint8) ([]byte, error)
	// Unwrap decrypts the ESP payload b (starting at the SPI) and
	// returns the inner plaintext and payload type.
	Unwrap(sa *key.SA, enc EncAlg, b []byte) (inner []byte, payloadType uint8, err error)
}

// cbcTransform is the RFC 1829 style header processing: SPI, explicit
// IV, CBC ciphertext trailing pad/padLen/payloadType.
type cbcTransform struct{}

func (cbcTransform) Name() string { return "cbc" }

func (cbcTransform) Wrap(sa *key.SA, enc EncAlg, plaintext []byte, payloadType uint8) ([]byte, error) {
	blk, err := enc.NewCipher(sa.EncKey)
	if err != nil {
		return nil, err
	}
	bs := enc.BlockSize()
	// pad so that len(plaintext)+pad+2 is a whole number of blocks.
	pad := (bs - (len(plaintext)+2)%bs) % bs
	body := make([]byte, len(plaintext)+pad+2)
	copy(body, plaintext)
	body[len(body)-2] = byte(pad)
	body[len(body)-1] = payloadType
	out := make([]byte, 4+bs+len(body))
	out[0] = byte(sa.SPI >> 24)
	out[1] = byte(sa.SPI >> 16)
	out[2] = byte(sa.SPI >> 8)
	out[3] = byte(sa.SPI)
	iv := out[4 : 4+bs]
	newIV(iv)
	copy(out[4+bs:], body)
	if err := Reblock(blk, iv, out[4+bs:], true); err != nil {
		return nil, err
	}
	return out, nil
}

// Errors from ESP input processing.
var (
	errESPShort = errors.New("ipsec: ESP payload too short")
	errESPPad   = errors.New("ipsec: ESP padding check failed")
)

func (cbcTransform) Unwrap(sa *key.SA, enc EncAlg, b []byte) ([]byte, uint8, error) {
	blk, err := enc.NewCipher(sa.EncKey)
	if err != nil {
		return nil, 0, err
	}
	bs := enc.BlockSize()
	if len(b) < 4+bs+bs {
		return nil, 0, errESPShort
	}
	iv := b[4 : 4+bs]
	ct := append([]byte(nil), b[4+bs:]...)
	if err := Reblock(blk, iv, ct, false); err != nil {
		return nil, 0, err
	}
	padLen := int(ct[len(ct)-2])
	payloadType := ct[len(ct)-1]
	if padLen+2 > len(ct) {
		return nil, 0, errESPPad
	}
	return ct[:len(ct)-2-padLen], payloadType, nil
}

// espEntry pairs a transform with a cipher — one row of the
// two-dimensional ESP switch.
type espEntry struct {
	transform ESPTransform
	cipher    EncAlg
}

// espSwitch maps an SA's EncAlg name to its entry.
func espLookup(name string) (espEntry, error) {
	enc, ok := LookupEnc(name)
	if !ok {
		return espEntry{}, fmt.Errorf("ipsec: unknown encryption algorithm %q", name)
	}
	return espEntry{transform: cbcTransform{}, cipher: enc}, nil
}

// buildESPTransport wraps an upper-layer payload (transport mode).
func buildESPTransport(sa *key.SA, payload []byte, nh uint8) ([]byte, error) {
	e, err := espLookup(sa.EncAlg)
	if err != nil {
		return nil, err
	}
	return e.transform.Wrap(sa, e.cipher, payload, nh)
}

// buildESPTunnel encapsulates an entire IPv6 datagram: the inner
// packet is rebuilt under hdr and encrypted whole, "prepending an
// additional cleartext IP header outside the encrypted IP datagram so
// that the packet can be routed" (§3) — the caller prepends that outer
// header.
func buildESPTunnel(sa *key.SA, hdr *ipv6.Header, payload []byte, nh uint8) ([]byte, error) {
	e, err := espLookup(sa.EncAlg)
	if err != nil {
		return nil, err
	}
	inner := *hdr
	inner.NextHdr = nh
	inner.PayloadLen = len(payload)
	datagram := inner.Marshal(nil)
	datagram = append(datagram, payload...)
	return e.transform.Wrap(sa, e.cipher, datagram, proto.IPv6)
}

// openESP decrypts an ESP payload, returning the plaintext and type.
func openESP(sa *key.SA, b []byte) ([]byte, uint8, error) {
	e, err := espLookup(sa.EncAlg)
	if err != nil {
		return nil, 0, err
	}
	return e.transform.Unwrap(sa, e.cipher, b)
}
