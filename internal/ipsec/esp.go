package ipsec

import (
	"errors"
	"fmt"

	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/proto"
)

// Encapsulating Security Payload processing (§3.2/§3.6).
//
// The ESP switch is two-dimensional: "the switch allows implementors
// to specify the header processing code and the encryption code
// separately for greater flexibility."  ESPTransform is the header
// processing half; EncAlg (alg.go) is the cipher half.  The DES-CBC
// transform (RFC 1829) is the default header format, and idea-cbc /
// 3des-cbc reuse it with different ciphers — §3.6's worked example.
// AEAD ciphers (aead.go) bring their own transform whose framing
// carries a sequence number for replay protection.
//
// Classic wire format after the IPv6 chain (RFC 1827 + RFC 1829):
//
//	| SPI (4) | IV (block) | ciphertext( payload | pad | padLen | payloadType ) |
//
// AEAD wire format (RFC 4303/4106 spirit):
//
//	| SPI (4) | Seq (8) | ciphertext( payload | payloadType ) | tag |
//
// with nonce = salt(4) || seq(8) and the SPI+Seq bytes as additional
// authenticated data.  Transport mode encrypts the upper-layer header
// and data; tunnel mode encrypts an entire IP datagram, with
// payloadType = 41 (IPv6).

// ESPTransform is the header-processing half of an ESP switch entry.
type ESPTransform interface {
	// Name identifies the header processing style.
	Name() string
	// Wrap encrypts plaintext (which already ends with pad/padLen/type
	// handling done inside) and returns the full ESP payload starting
	// with the SPI.
	Wrap(sa *key.SA, enc EncAlg, plaintext []byte, payloadType uint8) ([]byte, error)
	// Unwrap decrypts the ESP payload b (starting at the SPI) and
	// returns the inner plaintext and payload type.
	Unwrap(sa *key.SA, enc EncAlg, b []byte) (inner []byte, payloadType uint8, err error)
}

// SeqTransform marks a transform whose wire framing carries a 64-bit
// sequence number — the hook the input path's replay window reads.
type SeqTransform interface {
	// WireSeq extracts the sequence number from an ESP payload
	// (starting at the SPI); ok is false if b is too short.
	WireSeq(b []byte) (seq uint64, ok bool)
}

// cbcTransform is the RFC 1829 style header processing: SPI, explicit
// IV, CBC ciphertext trailing pad/padLen/payloadType.
type cbcTransform struct{}

// Name identifies the classic CBC header processing.
func (cbcTransform) Name() string { return "cbc" }

// Wrap implements ESPTransform with the RFC 1829 framing.
func (cbcTransform) Wrap(sa *key.SA, enc EncAlg, plaintext []byte, payloadType uint8) ([]byte, error) {
	blk, err := enc.NewCipher(sa.EncKey)
	if err != nil {
		return nil, err
	}
	bs := enc.BlockSize()
	// pad so that len(plaintext)+pad+2 is a whole number of blocks.
	pad := (bs - (len(plaintext)+2)%bs) % bs
	body := make([]byte, len(plaintext)+pad+2)
	copy(body, plaintext)
	body[len(body)-2] = byte(pad)
	body[len(body)-1] = payloadType
	out := make([]byte, 4+bs+len(body))
	put32(out, sa.SPI)
	iv := out[4 : 4+bs]
	newIV(iv)
	copy(out[4+bs:], body)
	if err := Reblock(blk, iv, out[4+bs:], true); err != nil {
		return nil, err
	}
	return out, nil
}

// Errors from ESP input processing.
var (
	errESPShort = errors.New("ipsec: ESP payload too short")
	errESPPad   = errors.New("ipsec: ESP padding check failed")
	errESPAuth  = errors.New("ipsec: ESP integrity check failed")
)

// Unwrap implements ESPTransform for the RFC 1829 framing.
func (cbcTransform) Unwrap(sa *key.SA, enc EncAlg, b []byte) ([]byte, uint8, error) {
	blk, err := enc.NewCipher(sa.EncKey)
	if err != nil {
		return nil, 0, err
	}
	bs := enc.BlockSize()
	if len(b) < 4+bs+bs {
		return nil, 0, errESPShort
	}
	iv := b[4 : 4+bs]
	ct := append([]byte(nil), b[4+bs:]...)
	if err := Reblock(blk, iv, ct, false); err != nil {
		return nil, 0, err
	}
	padLen := int(ct[len(ct)-2])
	payloadType := ct[len(ct)-1]
	if padLen+2 > len(ct) {
		return nil, 0, errESPPad
	}
	return ct[:len(ct)-2-padLen], payloadType, nil
}

// espAEADHdr is the cleartext AEAD framing: SPI plus sequence number,
// doubling as the additional authenticated data.
const espAEADHdr = 4 + 8

// aeadTransform is the sequenced AEAD header processing; the EncAlg
// parameter of the ESPTransform interface is unused (the AEAD carries
// its own cipher).
type aeadTransform struct {
	alg AEADAlg
}

// Name identifies the AEAD header processing.
func (t *aeadTransform) Name() string { return "aead" }

// WireSeq implements SeqTransform.
func (t *aeadTransform) WireSeq(b []byte) (uint64, bool) {
	if len(b) < espAEADHdr {
		return 0, false
	}
	return get64be(b[4:]), true
}

// Wrap implements ESPTransform with the sequenced AEAD framing.
func (t *aeadTransform) Wrap(sa *key.SA, _ EncAlg, plaintext []byte, payloadType uint8) ([]byte, error) {
	aead, salt, err := t.alg.New(sa.EncKey)
	if err != nil {
		return nil, err
	}
	seq := sa.NextSeq()
	out := make([]byte, espAEADHdr, espAEADHdr+len(plaintext)+1+aead.Overhead())
	put32(out, sa.SPI)
	put64(out[4:], seq)
	var nonce [12]byte
	copy(nonce[:], salt)
	put64(nonce[4:], seq)
	body := make([]byte, len(plaintext)+1)
	copy(body, plaintext)
	body[len(body)-1] = payloadType
	return aead.Seal(out, nonce[:], body, out[:espAEADHdr]), nil
}

// Unwrap implements ESPTransform for the sequenced AEAD framing.  The
// returned plaintext never aliases b.
func (t *aeadTransform) Unwrap(sa *key.SA, _ EncAlg, b []byte) ([]byte, uint8, error) {
	aead, salt, err := t.alg.New(sa.EncKey)
	if err != nil {
		return nil, 0, err
	}
	if len(b) < espAEADHdr+1+aead.Overhead() {
		return nil, 0, errESPShort
	}
	var nonce [12]byte
	copy(nonce[:], salt)
	copy(nonce[4:], b[4:12])
	pt, err := aead.Open(nil, nonce[:], b[espAEADHdr:], b[:espAEADHdr])
	if err != nil {
		return nil, 0, errESPAuth
	}
	return pt[:len(pt)-1], pt[len(pt)-1], nil
}

// espEntry pairs a transform with a cipher — one row of the
// two-dimensional ESP switch.  AEAD rows carry their cipher inside the
// transform and leave cipher nil.
type espEntry struct {
	transform ESPTransform
	cipher    EncAlg
}

// espSwitch maps an SA's EncAlg name to its entry; AEAD entries win
// over a classic cipher of the same name.
func espLookup(name string) (espEntry, error) {
	if a, ok := LookupAEAD(name); ok {
		return espEntry{transform: &aeadTransform{alg: a}}, nil
	}
	enc, ok := LookupEnc(name)
	if !ok {
		return espEntry{}, fmt.Errorf("ipsec: unknown encryption algorithm %q", name)
	}
	return espEntry{transform: cbcTransform{}, cipher: enc}, nil
}

// buildESPTransport wraps an upper-layer payload (transport mode).
func buildESPTransport(sa *key.SA, payload []byte, nh uint8) ([]byte, error) {
	e, err := espLookup(sa.EncAlg)
	if err != nil {
		return nil, err
	}
	return e.transform.Wrap(sa, e.cipher, payload, nh)
}

// buildESPTunnel encapsulates an entire IPv6 datagram: the inner
// packet is rebuilt under hdr and encrypted whole, "prepending an
// additional cleartext IP header outside the encrypted IP datagram so
// that the packet can be routed" (§3) — the caller prepends that outer
// header.
func buildESPTunnel(sa *key.SA, hdr *ipv6.Header, payload []byte, nh uint8) ([]byte, error) {
	e, err := espLookup(sa.EncAlg)
	if err != nil {
		return nil, err
	}
	inner := *hdr
	inner.NextHdr = nh
	inner.PayloadLen = len(payload)
	datagram := inner.Marshal(nil)
	datagram = append(datagram, payload...)
	return e.transform.Wrap(sa, e.cipher, datagram, proto.IPv6)
}

// openESP decrypts an ESP payload, returning the plaintext and type.
func openESP(sa *key.SA, b []byte) ([]byte, uint8, error) {
	e, err := espLookup(sa.EncAlg)
	if err != nil {
		return nil, 0, err
	}
	return e.transform.Unwrap(sa, e.cipher, b)
}

//
// Chain-aware output path.  The builders above take one contiguous
// []byte — fine for tests and the input rebuild, but the output path
// hands us an mbuf chain (a GSO-sized transport burst is several
// pooled segments).  These gather the chain ONCE, directly into the
// pooled destination buffer at its final offset, and run the cipher in
// place there: one copy total, no intermediate flatten, and the
// result keeps slab headroom so the IPv6 header prepend downstream
// stays in place too.
//

// wrapESPChain wraps payload's content (prefixed by prefix, which
// carries the marshaled inner header in tunnel mode and is empty in
// transport mode) into a fresh pooled ESP mbuf.
func wrapESPChain(sa *key.SA, e espEntry, prefix []byte, payload *mbuf.Mbuf, payloadType uint8) (*mbuf.Mbuf, error) {
	plen := len(prefix) + payload.Len()
	if t, ok := e.transform.(*aeadTransform); ok {
		aead, salt, err := t.alg.New(sa.EncKey)
		if err != nil {
			return nil, err
		}
		seq := sa.NextSeq()
		total := espAEADHdr + plen + 1 + aead.Overhead()
		out := mbuf.Get(total)
		b := out.Bytes()
		put32(b, sa.SPI)
		put64(b[4:], seq)
		var nonce [12]byte
		copy(nonce[:], salt)
		put64(nonce[4:], seq)
		pt := b[espAEADHdr : espAEADHdr+plen+1]
		n := copy(pt, prefix)
		for _, seg := range payload.SegmentViews() {
			n += copy(pt[n:], seg)
		}
		pt[plen] = payloadType
		aead.Seal(pt[:0], nonce[:], pt, b[:espAEADHdr])
		return out, nil
	}

	blk, err := e.cipher.NewCipher(sa.EncKey)
	if err != nil {
		return nil, err
	}
	bs := e.cipher.BlockSize()
	pad := (bs - (plen+2)%bs) % bs
	total := 4 + bs + plen + pad + 2
	out := mbuf.Get(total)
	b := out.Bytes()
	put32(b, sa.SPI)
	newIV(b[4 : 4+bs])
	body := b[4+bs:]
	n := copy(body, prefix)
	for _, seg := range payload.SegmentViews() {
		n += copy(body[n:], seg)
	}
	for i := n; i < len(body)-2; i++ {
		body[i] = 0
	}
	body[len(body)-2] = byte(pad)
	body[len(body)-1] = payloadType
	if err := Reblock(blk, b[4:4+bs], body, true); err != nil {
		out.Free()
		return nil, err
	}
	return out, nil
}
