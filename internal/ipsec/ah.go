package ipsec

import (
	"fmt"

	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/proto"
)

// Authentication Header processing (§3.2): the header processing
// routines find the association and build or parse the option header;
// the "meat" walks the packet, zeroing header fields that vary
// unpredictably end-to-end (hop limit, priority/flow label), and
// streams the rest into the keyed message digest.
//
// Wire format (RFC 1826):
//
//	+-------------+-------------+-------------+-------------+
//	| Next Header |   Length    |          RESERVED         |
//	+-------------+-------------+-------------+-------------+
//	|             Security Parameters Index (SPI)           |
//	+--------------------------------------------------------+
//	|           Authentication Data (Length * 4 bytes)       |
//	+--------------------------------------------------------+
//
// Sequenced algorithms (SequencedAuth, e.g. hmac-sha256) insert a
// 64-bit sequence number between the SPI and the authentication data
// — the RFC 2402-style framing the replay window needs.  The framing
// is chosen by the SA's configured algorithm, never guessed from the
// wire, so the paper-era keyed digests stay byte-for-byte RFC 1826.
//
// Placement note: this implementation inserts AH at the head of the
// fragmentable part, so the digest covers the (mutable-zeroed) base
// header, the AH itself, and everything after it — but not hop-by-hop
// or routing headers, which stay in the unfragmentable part.  The
// paper's walk zeroes mutable option fields instead; since this stack
// generates no mutable options, excluding the unfragmentable headers
// preserves the same end-to-end invariant with a simpler walk.

const ahFixedLen = 8

// ahSeqLen is the sequence-number field length of sequenced AH.
const ahSeqLen = 8

// ahHdrLen returns the AH length (fixed part + optional sequence
// number) before the authentication data.
func ahHdrLen(seq bool) int {
	if seq {
		return ahFixedLen + ahSeqLen
	}
	return ahFixedLen
}

// makeAH assembles the AH bytes for sa with a zeroed ICV, advancing
// the outbound sequence number for sequenced algorithms.
func makeAH(sa *key.SA, alg AuthAlg, nh uint8) []byte {
	seq := sequenced(alg)
	dlen := alg.DigestLen()
	hl := ahHdrLen(seq)
	ah := make([]byte, hl+dlen)
	ah[0] = nh
	ah[1] = byte((hl - ahFixedLen + dlen) / 4)
	put32(ah[4:], sa.SPI)
	if seq {
		put64(ah[ahFixedLen:], sa.NextSeq())
	}
	return ah
}

// buildAH wraps payload in an Authentication Header keyed by sa.
// hdr supplies the address/pseudo-header context.
func buildAH(sa *key.SA, hdr *ipv6.Header, payload []byte, nh uint8) ([]byte, error) {
	alg, ok := LookupAuth(sa.AuthAlg)
	if !ok {
		return nil, fmt.Errorf("ipsec: unknown auth algorithm %q", sa.AuthAlg)
	}
	ah := makeAH(sa, alg, nh)
	hl := ahHdrLen(sequenced(alg))
	digest := ahDigest(alg, sa.AuthKey, hdr, ah, payload)
	copy(ah[hl:], digest)
	return append(ah, payload...), nil
}

// buildAHChain prepends an Authentication Header to the packet chain
// in place: the digest streams over the chain's segments (no copy, no
// flatten) and the AH bytes land in the leading slab headroom.
func buildAHChain(sa *key.SA, hdr *ipv6.Header, payload *mbuf.Mbuf, nh uint8) error {
	alg, ok := LookupAuth(sa.AuthAlg)
	if !ok {
		return fmt.Errorf("ipsec: unknown auth algorithm %q", sa.AuthAlg)
	}
	ah := makeAH(sa, alg, nh)
	hl := ahHdrLen(sequenced(alg))

	pseudo := *hdr
	pseudo.FlowInfo = 0
	pseudo.HopLimit = 0
	pseudo.NextHdr = proto.AH
	pseudo.PayloadLen = len(ah) + payload.Len()
	h := alg.New(sa.AuthKey)
	h.Write(pseudo.Marshal(nil))
	h.Write(ah)
	for _, seg := range payload.SegmentViews() {
		h.Write(seg)
	}
	copy(ah[hl:], h.Sum(nil))
	payload.Prepend(ah)
	return nil
}

// verifyAH checks the digest of the AH at b[off:] within the packet
// image b. It returns the parsed next header and total AH length.
func verifyAH(sa *key.SA, hdr *ipv6.Header, b []byte, off int) (nh uint8, ahLen int, ok bool) {
	nh, ahLen, _, ok = verifyAHSeq(sa, hdr, b, off)
	return nh, ahLen, ok
}

// verifyAHSeq is verifyAH plus the sequence number of sequenced
// framings (0 for the classic RFC 1826 framing).
func verifyAHSeq(sa *key.SA, hdr *ipv6.Header, b []byte, off int) (nh uint8, ahLen int, seq uint64, ok bool) {
	alg, algOK := LookupAuth(sa.AuthAlg)
	if !algOK {
		return 0, 0, 0, false
	}
	hl := ahHdrLen(sequenced(alg))
	if off+hl > len(b) {
		return 0, 0, 0, false
	}
	dlen := int(b[off+1])*4 - (hl - ahFixedLen)
	ahLen = hl + dlen
	if dlen != alg.DigestLen() || off+ahLen > len(b) {
		return 0, 0, 0, false
	}
	nh = b[off]
	if hl > ahFixedLen {
		seq = get64be(b[off+ahFixedLen:])
	}
	// Zero the authentication data for the recomputation.
	ahZero := make([]byte, ahLen)
	copy(ahZero, b[off:off+hl])
	want := b[off+hl : off+ahLen]
	got := ahDigest(alg, sa.AuthKey, hdr, ahZero, b[off+ahLen:])
	if len(got) != len(want) {
		return 0, 0, 0, false
	}
	// Constant-time comparison is immaterial in the simulation but
	// costs nothing.
	var diff byte
	for i := range got {
		diff |= got[i] ^ want[i]
	}
	return nh, ahLen, seq, diff == 0
}

// ahDigest streams the pseudo base header (mutable fields zeroed), the
// AH (authentication data zeroed), and the protected payload into the
// keyed digest, truncating to the algorithm's digest length.
func ahDigest(alg AuthAlg, authKey []byte, hdr *ipv6.Header, ahZeroed []byte, payload []byte) []byte {
	pseudo := *hdr
	pseudo.FlowInfo = 0 // priority/flow may be rewritten for QoS
	pseudo.HopLimit = 0 // decremented per hop
	pseudo.NextHdr = proto.AH
	pseudo.PayloadLen = len(ahZeroed) + len(payload)
	h := alg.New(authKey)
	h.Write(pseudo.Marshal(nil))
	h.Write(ahZeroed)
	h.Write(payload)
	return h.Sum(nil)[:alg.DigestLen()]
}
