package ipsec

import (
	"fmt"

	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/proto"
)

// Authentication Header processing (§3.2): the header processing
// routines find the association and build or parse the option header;
// the "meat" walks the packet, zeroing header fields that vary
// unpredictably end-to-end (hop limit, priority/flow label), and
// streams the rest into the keyed message digest.
//
// Wire format (RFC 1826):
//
//	+-------------+-------------+-------------+-------------+
//	| Next Header |   Length    |          RESERVED         |
//	+-------------+-------------+-------------+-------------+
//	|             Security Parameters Index (SPI)           |
//	+--------------------------------------------------------+
//	|           Authentication Data (Length * 4 bytes)       |
//	+--------------------------------------------------------+
//
// Placement note: this implementation inserts AH at the head of the
// fragmentable part, so the digest covers the (mutable-zeroed) base
// header, the AH itself, and everything after it — but not hop-by-hop
// or routing headers, which stay in the unfragmentable part.  The
// paper's walk zeroes mutable option fields instead; since this stack
// generates no mutable options, excluding the unfragmentable headers
// preserves the same end-to-end invariant with a simpler walk.

const ahFixedLen = 8

// buildAH wraps payload in an Authentication Header keyed by sa.
// hdr supplies the address/pseudo-header context.
func buildAH(sa *key.SA, hdr *ipv6.Header, payload []byte, nh uint8) ([]byte, error) {
	alg, ok := LookupAuth(sa.AuthAlg)
	if !ok {
		return nil, fmt.Errorf("ipsec: unknown auth algorithm %q", sa.AuthAlg)
	}
	dlen := alg.DigestLen()
	ah := make([]byte, ahFixedLen+dlen)
	ah[0] = nh
	ah[1] = byte(dlen / 4)
	ah[4] = byte(sa.SPI >> 24)
	ah[5] = byte(sa.SPI >> 16)
	ah[6] = byte(sa.SPI >> 8)
	ah[7] = byte(sa.SPI)
	digest := ahDigest(alg, sa.AuthKey, hdr, ah, payload)
	copy(ah[ahFixedLen:], digest)
	return append(ah, payload...), nil
}

// verifyAH checks the digest of the AH at b[off:] within the packet
// image b. It returns the parsed next header and total AH length.
func verifyAH(sa *key.SA, hdr *ipv6.Header, b []byte, off int) (nh uint8, ahLen int, ok bool) {
	alg, algOK := LookupAuth(sa.AuthAlg)
	if !algOK {
		return 0, 0, false
	}
	if off+ahFixedLen > len(b) {
		return 0, 0, false
	}
	dlen := int(b[off+1]) * 4
	ahLen = ahFixedLen + dlen
	if dlen != alg.DigestLen() || off+ahLen > len(b) {
		return 0, 0, false
	}
	nh = b[off]
	// Zero the authentication data for the recomputation.
	ahZero := make([]byte, ahLen)
	copy(ahZero, b[off:off+ahFixedLen])
	want := b[off+ahFixedLen : off+ahLen]
	got := ahDigest(alg, sa.AuthKey, hdr, ahZero, b[off+ahLen:])
	if len(got) != len(want) {
		return 0, 0, false
	}
	// Constant-time comparison is immaterial in the simulation but
	// costs nothing.
	var diff byte
	for i := range got {
		diff |= got[i] ^ want[i]
	}
	return nh, ahLen, diff == 0
}

// ahDigest streams the pseudo base header (mutable fields zeroed), the
// AH (authentication data zeroed), and the protected payload into the
// keyed digest.
func ahDigest(alg AuthAlg, authKey []byte, hdr *ipv6.Header, ahZeroed []byte, payload []byte) []byte {
	pseudo := *hdr
	pseudo.FlowInfo = 0 // priority/flow may be rewritten for QoS
	pseudo.HopLimit = 0 // decremented per hop
	pseudo.NextHdr = proto.AH
	pseudo.PayloadLen = len(ahZeroed) + len(payload)
	h := alg.New(authKey)
	h.Write(pseudo.Marshal(nil))
	h.Write(ahZeroed)
	h.Write(payload)
	return h.Sum(nil)
}
