package ipsec

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"testing"
	"testing/quick"

	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/proto"
)

func ip6(t testing.TB, s string) inet.IP6 {
	t.Helper()
	a, err := inet.ParseIP6(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestIDEAKnownVector(t *testing.T) {
	// Classic IDEA test vector (Lai's thesis / common references):
	// key 0001 0002 ... 0008, plaintext 0000 0001 0002 0003
	// -> ciphertext 11FB ED2B 0198 6DE5.
	k, _ := hex.DecodeString("00010002000300040005000600070008")
	pt, _ := hex.DecodeString("0000000100020003")
	want, _ := hex.DecodeString("11fbed2b01986de5")
	c, err := newIDEA(k)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("IDEA encrypt = %x, want %x", got, want)
	}
	back := make([]byte, 8)
	c.Decrypt(back, got)
	if !bytes.Equal(back, pt) {
		t.Fatalf("IDEA decrypt = %x", back)
	}
}

func TestIDEARoundTripQuick(t *testing.T) {
	f := func(k [16]byte, blk [8]byte) bool {
		c, err := newIDEA(k[:])
		if err != nil {
			return false
		}
		ct := make([]byte, 8)
		pt := make([]byte, 8)
		c.Encrypt(ct, blk[:])
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, blk[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIDEAKeySize(t *testing.T) {
	if _, err := newIDEA(make([]byte, 8)); err == nil {
		t.Fatal("short IDEA key accepted")
	}
}

func TestKeyedMD5Construction(t *testing.T) {
	// RFC 1828 style: MD5(key || data || key).
	alg, ok := LookupAuth("keyed-md5")
	if !ok {
		t.Fatal("keyed-md5 not registered")
	}
	keyb := []byte("secret-key")
	data := []byte("the packet image")
	h := alg.New(keyb)
	h.Write(data)
	got := h.Sum(nil)
	ref := md5.Sum(append(append(append([]byte(nil), keyb...), data...), keyb...))
	if !bytes.Equal(got, ref[:]) {
		t.Fatalf("keyed md5 mismatch: %x vs %x", got, ref)
	}
	if alg.DigestLen() != 16 {
		t.Fatal("digest length")
	}
}

func TestAlgorithmSwitchRegistry(t *testing.T) {
	auth, enc := Algorithms()
	wantAuth := []string{"keyed-md5", "keyed-sha1"}
	for _, w := range wantAuth {
		found := false
		for _, a := range auth {
			if a == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("auth switch missing %s (have %v)", w, auth)
		}
	}
	for _, w := range []string{"des-cbc", "3des-cbc", "idea-cbc"} {
		found := false
		for _, e := range enc {
			if e == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("enc switch missing %s (have %v)", w, enc)
		}
	}
	if _, ok := LookupEnc("rot13"); ok {
		t.Fatal("phantom algorithm")
	}
}

func espSA(t testing.TB, alg string) *key.SA {
	t.Helper()
	e, ok := LookupEnc(alg)
	if !ok {
		t.Fatalf("no alg %s", alg)
	}
	k := make([]byte, e.KeySize())
	for i := range k {
		k[i] = byte(i + 1)
	}
	return &key.SA{
		SPI: 0x1001, Dst: ip6(t, "2001:db8::2"), Proto: key.ProtoESPTransport,
		EncAlg: alg, EncKey: k,
	}
}

func TestESPWrapUnwrapAllCiphers(t *testing.T) {
	for _, alg := range []string{"des-cbc", "3des-cbc", "idea-cbc"} {
		sa := espSA(t, alg)
		payload := []byte("upper layer header and data")
		wire, err := buildESPTransport(sa, payload, proto.TCP)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		// SPI is in the clear.
		if get32be(wire) != sa.SPI {
			t.Fatalf("%s: SPI not cleartext", alg)
		}
		// The plaintext must not appear in the ciphertext.
		if bytes.Contains(wire, payload[:8]) {
			t.Fatalf("%s: plaintext visible", alg)
		}
		inner, nh, err := openESP(sa, wire)
		if err != nil || nh != proto.TCP || !bytes.Equal(inner, payload) {
			t.Fatalf("%s: unwrap = %q nh=%d err=%v", alg, inner, nh, err)
		}
	}
}

func TestESPPaddingQuick(t *testing.T) {
	sa := espSA(t, "des-cbc")
	f := func(payload []byte, nh uint8) bool {
		wire, err := buildESPTransport(sa, payload, nh)
		if err != nil {
			return false
		}
		if (len(wire)-4-8)%8 != 0 { // SPI + IV + whole blocks
			return false
		}
		inner, gotNH, err := openESP(sa, wire)
		return err == nil && gotNH == nh && bytes.Equal(inner, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestESPWrongKeyFails(t *testing.T) {
	sa := espSA(t, "des-cbc")
	wire, _ := buildESPTransport(sa, []byte("secret"), proto.UDP)
	bad := espSA(t, "des-cbc")
	bad.EncKey = []byte("WRONGKEY")
	inner, nh, err := openESP(bad, wire)
	// CBC decryption with a wrong key yields garbage: either the pad
	// check fails or the payload differs.
	if err == nil && nh == proto.UDP && bytes.Equal(inner, []byte("secret")) {
		t.Fatal("wrong key decrypted successfully")
	}
}

func TestESPTruncated(t *testing.T) {
	sa := espSA(t, "des-cbc")
	wire, _ := buildESPTransport(sa, []byte("x"), proto.UDP)
	if _, _, err := openESP(sa, wire[:10]); err == nil {
		t.Fatal("truncated ESP accepted")
	}
	// Non-block-aligned ciphertext.
	if _, _, err := openESP(sa, wire[:len(wire)-3]); err == nil {
		t.Fatal("misaligned ESP accepted")
	}
}

func ahSA(t testing.TB) *key.SA {
	t.Helper()
	return &key.SA{
		SPI: 0x2002, Dst: ip6(t, "2001:db8::2"), Proto: key.ProtoAH,
		AuthAlg: "keyed-md5", AuthKey: []byte("0123456789abcdef"),
	}
}

func testHdr(t testing.TB) *ipv6.Header {
	return &ipv6.Header{
		HopLimit: 64, Src: ip6(t, "2001:db8::1"), Dst: ip6(t, "2001:db8::2"),
	}
}

func TestAHBuildVerify(t *testing.T) {
	sa := ahSA(t)
	hdr := testHdr(t)
	payload := []byte("protected upper layer data")
	wrapped, err := buildAH(sa, hdr, payload, proto.UDP)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the received packet image: base header + AH + payload.
	whdr := *hdr
	whdr.NextHdr = proto.AH
	whdr.PayloadLen = len(wrapped)
	img := whdr.Marshal(nil)
	img = append(img, wrapped...)

	nh, ahLen, ok := verifyAH(sa, &whdr, img, ipv6.HeaderLen)
	if !ok || nh != proto.UDP || ahLen != ahFixedLen+16 {
		t.Fatalf("verify: nh=%d len=%d ok=%v", nh, ahLen, ok)
	}
	// Mutable fields may change in flight without breaking the digest.
	rhdr := whdr
	rhdr.HopLimit = 1
	rhdr.FlowInfo = 0x0004321
	if _, _, ok := verifyAH(sa, &rhdr, img, ipv6.HeaderLen); !ok {
		t.Fatal("mutable field change broke AH")
	}
	// Any payload or address tamper breaks it.
	img[len(img)-1] ^= 1
	if _, _, ok := verifyAH(sa, &whdr, img, ipv6.HeaderLen); ok {
		t.Fatal("payload tamper accepted")
	}
	img[len(img)-1] ^= 1
	xhdr := whdr
	xhdr.Src[15] ^= 1
	if _, _, ok := verifyAH(sa, &xhdr, img, ipv6.HeaderLen); ok {
		t.Fatal("source address tamper accepted")
	}
}

func TestAHWrongKeyFails(t *testing.T) {
	sa := ahSA(t)
	hdr := testHdr(t)
	wrapped, _ := buildAH(sa, hdr, []byte("data"), proto.UDP)
	whdr := *hdr
	whdr.NextHdr = proto.AH
	img := append(whdr.Marshal(nil), wrapped...)
	bad := ahSA(t)
	bad.AuthKey = []byte("the-wrong-key!!!")
	if _, _, ok := verifyAH(bad, &whdr, img, ipv6.HeaderLen); ok {
		t.Fatal("wrong key verified")
	}
}

func TestAHWithSHA1(t *testing.T) {
	sa := ahSA(t)
	sa.AuthAlg = "keyed-sha1"
	hdr := testHdr(t)
	wrapped, err := buildAH(sa, hdr, []byte("data"), proto.TCP)
	if err != nil {
		t.Fatal(err)
	}
	whdr := *hdr
	whdr.NextHdr = proto.AH
	img := append(whdr.Marshal(nil), wrapped...)
	nh, ahLen, ok := verifyAH(sa, &whdr, img, ipv6.HeaderLen)
	if !ok || nh != proto.TCP || ahLen != ahFixedLen+20 {
		t.Fatalf("sha1 AH: nh=%d len=%d ok=%v", nh, ahLen, ok)
	}
}

func TestAHUnknownAlgorithm(t *testing.T) {
	sa := ahSA(t)
	sa.AuthAlg = "md6-keyed"
	if _, err := buildAH(sa, testHdr(t), []byte("x"), proto.TCP); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestMergePolicy(t *testing.T) {
	sys := SockOpts{Auth: LevelUse}
	sock := SockOpts{Auth: LevelRequire, ESPTransport: LevelUse}
	eff := merge(sys, sock)
	if eff.Auth != LevelRequire || eff.ESPTransport != LevelUse || eff.ESPTunnel != LevelNone {
		t.Fatalf("merge = %+v", eff)
	}
	// More paranoid system wins too.
	eff = merge(SockOpts{ESPTunnel: LevelUnique}, SockOpts{})
	if eff.ESPTunnel != LevelUnique {
		t.Fatal("system paranoia lost")
	}
}
