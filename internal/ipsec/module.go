package ipsec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/proto"
	"bsd6/internal/stat"
)

// EIPSEC is "the newly defined IP Security processing error" (§3.3):
// returned to the user when a packet needed security that could not be
// applied (no association, no key management, or a processing failure).
var EIPSEC = errors.New("EIPSEC: IP security processing error")

// Level is a socket/system security level (§6.1):
//
//	0: no security on outbound, none required inbound
//	1: use security outbound if available, not required inbound
//	2: require security outbound and inbound
//	3: level 2, with a security association unique to the socket
type Level int

const (
	LevelNone    Level = 0
	LevelUse     Level = 1
	LevelRequire Level = 2
	LevelUnique  Level = 3
)

// SockOpts is the per-socket (or system-wide) security request: one
// level for each of the three services — "the same matrix of 3
// protocols and 4 security levels" (§6.1).
type SockOpts struct {
	Auth         Level // SO_SECURITY_AUTHENTICATION
	ESPTransport Level // SO_SECURITY_ENCRYPTION_TRANSPORT
	ESPTunnel    Level // SO_SECURITY_ENCRYPTION_TUNNEL

	// Bypass exempts the socket from IP security entirely — the
	// privileged option §6.3 plans "to permit applications that need
	// to bypass IP security to do so (for example, a Photuris
	// daemon)".  The socket layer only sets it for effective uid 0.
	// Never meaningful in the system-wide policy.
	Bypass bool
}

// merge applies "the more paranoid of these policies" (§3.3).
func merge(a, b SockOpts) SockOpts {
	max := func(x, y Level) Level {
		if x > y {
			return x
		}
		return y
	}
	return SockOpts{
		Auth:         max(a.Auth, b.Auth),
		ESPTransport: max(a.ESPTransport, b.ESPTransport),
		ESPTunnel:    max(a.ESPTunnel, b.ESPTunnel),
		Bypass:       b.Bypass, // only the socket side may carry it
	}
}

// Stats counts security processing events; netstat(8) displays them
// (§3.4: "appropriate kernel statistics counters are incremented").
type Stats struct {
	OutAH          stat.Counter
	OutESP         stat.Counter
	OutTunnel      stat.Counter
	OutPolicyDrops stat.Counter
	InAuthOK       stat.Counter
	InAuthFail     stat.Counter
	InDecryptOK    stat.Counter
	InDecryptFail  stat.Counter
	InNoSA         stat.Counter
	InPolicyDrops  stat.Counter
	TunnelSrcFail  stat.Counter
}

// portPolicy is one administrative per-port rule (§3.5's example: "an
// administrator could require that packets coming in on a certain
// range of privileged ports ... must be authentic").
type portPolicy struct {
	lo, hi uint16
	req    SockOpts
}

// Module is the IP security instance of one stack.
type Module struct {
	l   *ipv6.Layer
	Key *key.Engine

	mu     sync.Mutex
	system SockOpts
	ports  []portPolicy
	// hot flips once the administrator installs any system or port
	// policy; until then the per-packet policy reads skip the lock
	// entirely — the common stack pays nothing for the feature.
	hot atomic.Bool

	// SocketOpts reads the security options of a socket (set by the
	// sockets layer); nil sockets get zero levels.
	SocketOpts func(socket any) SockOpts

	Stats Stats
}

// Attach creates the security module and installs its hooks on the
// IPv6 layer (§3.3 output, §3.4 input).
func Attach(l *ipv6.Layer, ke *key.Engine) *Module {
	m := &Module{l: l, Key: ke}
	l.SecOut = m.OutputPolicy
	l.SecIn = m.Input
	return m
}

// SetSystemPolicy installs the administrator's system-wide levels.
func (m *Module) SetSystemPolicy(p SockOpts) {
	m.mu.Lock()
	m.system = p
	m.mu.Unlock()
	m.hot.Store(true)
}

// SystemPolicy returns the system-wide levels.
func (m *Module) SystemPolicy() SockOpts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.system
}

func (m *Module) effective(socket any) SockOpts {
	var sys SockOpts
	if m.hot.Load() {
		m.mu.Lock()
		sys = m.system
		m.mu.Unlock()
	}
	if socket == nil || m.SocketOpts == nil {
		return sys
	}
	so := m.SocketOpts(socket)
	if so.Bypass {
		return SockOpts{Bypass: true}
	}
	return merge(sys, so)
}

// AddPortPolicy installs an administrative input requirement for local
// ports in [lo, hi] — the §3.5 enhancement to the "simple system-wide
// decisions" of the current policy engine.
func (m *Module) AddPortPolicy(lo, hi uint16, req SockOpts) {
	m.mu.Lock()
	m.ports = append(m.ports, portPolicy{lo: lo, hi: hi, req: req})
	m.mu.Unlock()
	m.hot.Store(true)
}

// portRequirements merges the policies covering the local port.
func (m *Module) portRequirements(port uint16) SockOpts {
	if !m.hot.Load() {
		return SockOpts{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var req SockOpts
	for _, p := range m.ports {
		if port >= p.lo && port <= p.hi {
			req = merge(req, p.req)
		}
	}
	return req
}

// OutputPolicy is ipsec_output_policy() (§3.3), installed as the IPv6
// layer's SecOut hook and called immediately before fragmentation.  It
// merges system and socket policy, obtains associations from the Key
// Engine, and applies the needed services to the fragmentable part:
// ESP transport innermost, then ESP tunnel, then AH outermost.
func (m *Module) OutputPolicy(hdr *ipv6.Header, payload *mbuf.Mbuf, nh uint8, socket any) (*mbuf.Mbuf, uint8, error) {
	eff := m.effective(socket)
	if eff.Bypass || eff == (SockOpts{}) {
		return payload, nh, nil
	}

	get := func(p key.SecProto, lvl Level) (*key.SA, error) {
		if lvl == LevelNone {
			return nil, nil
		}
		sa, err := m.Key.GetBySocket(hdr.Src, hdr.Dst, p, socket, lvl == LevelUnique)
		if err != nil {
			if lvl == LevelUse {
				return nil, nil // level 1: use if available
			}
			m.Stats.OutPolicyDrops.Inc()
			m.l.Drops.DropNote(stat.RSecNoSAOut, hdr.Dst.String())
			return nil, fmt.Errorf("%w: %v", EIPSEC, err)
		}
		return sa, nil
	}

	data := payload.Bytes()
	applied := false

	if sa, err := get(key.ProtoESPTransport, eff.ESPTransport); err != nil {
		return nil, 0, err
	} else if sa != nil {
		wrapped, werr := buildESPTransport(sa, data, nh)
		if werr != nil {
			m.Stats.OutPolicyDrops.Inc()
			return nil, 0, fmt.Errorf("%w: %v", EIPSEC, werr)
		}
		m.Stats.OutESP.Inc()
		m.Key.CountBytes(sa, len(data))
		data, nh = wrapped, proto.ESP
		applied = true
	}

	if sa, err := get(key.ProtoESPTunnel, eff.ESPTunnel); err != nil {
		return nil, 0, err
	} else if sa != nil {
		// The inner datagram keeps the real destination; the outer
		// header is readdressed to the association's endpoint when it
		// is a security gateway ("prepending an additional cleartext
		// IP header outside the encrypted IP datagram so that the
		// packet can be routed", §3).
		wrapped, werr := buildESPTunnel(sa, hdr, data, nh)
		if werr != nil {
			m.Stats.OutPolicyDrops.Inc()
			return nil, 0, fmt.Errorf("%w: %v", EIPSEC, werr)
		}
		m.Stats.OutTunnel.Inc()
		m.Key.CountBytes(sa, len(data))
		data, nh = wrapped, proto.ESP
		applied = true
		if sa.Dst != hdr.Dst {
			hdr.Dst = sa.Dst // the layer re-routes toward the gateway
		}
	}

	if sa, err := get(key.ProtoAH, eff.Auth); err != nil {
		return nil, 0, err
	} else if sa != nil {
		wrapped, werr := buildAH(sa, hdr, data, nh)
		if werr != nil {
			m.Stats.OutPolicyDrops.Inc()
			return nil, 0, fmt.Errorf("%w: %v", EIPSEC, werr)
		}
		m.Stats.OutAH.Inc()
		m.Key.CountBytes(sa, len(data))
		data, nh = wrapped, proto.AH
		applied = true
	}

	// No association applied (every level was none/use-without-SA):
	// pass the original chain through untouched.  Building a NewNoCopy
	// replacement here would silently strand the transport layer's
	// pooled slab — the replacement aliases the bytes but not the pool
	// bookkeeping, so the slab would never return to its pool.
	if !applied {
		return payload, nh, nil
	}
	out := mbuf.NewNoCopy(data)
	out.Hdr().Socket = payload.Hdr().Socket
	// Every wrap above copied the bytes into a fresh buffer; the
	// original pooled chain is dead — recycle it.
	payload.Free()
	return out, nh, nil
}

// Input is the IPv6 layer's SecIn hook (§3.4): process an AH or ESP
// header found during input, setting M_AUTHENTIC / M_DECRYPTED and
// recording the SPI for the transport-layer policy check.
func (m *Module) Input(pkt *mbuf.Mbuf, hdr *ipv6.Header, p uint8, off int) (ipv6.SecAction, *mbuf.Mbuf) {
	b := pkt.Bytes()
	switch p {
	case proto.AH:
		if off+ahFixedLen > len(b) {
			m.Stats.InAuthFail.Inc()
			m.l.Drops.DropPkt(stat.RSecAuthFail, b)
			return ipv6.SecDrop, nil
		}
		spi := get32be(b[off+4:])
		sa, ok := m.Key.GetBySPI(spi, hdr.Dst, key.ProtoAH)
		if !ok {
			m.Stats.InNoSA.Inc()
			m.l.Drops.DropPkt(stat.RSecNoSA, b)
			return ipv6.SecDrop, nil
		}
		if _, _, ok := verifyAH(sa, hdr, b, off); !ok {
			m.Stats.InAuthFail.Inc()
			m.l.Drops.DropPkt(stat.RSecAuthFail, b)
			return ipv6.SecDrop, nil
		}
		m.Stats.InAuthOK.Inc()
		pkt.Hdr().Flags |= mbuf.MAuthentic
		pkt.Hdr().AuxSPI = append(pkt.Hdr().AuxSPI, spi)
		return ipv6.SecContinue, nil

	case proto.ESP:
		if off+4 > len(b) {
			m.Stats.InDecryptFail.Inc()
			m.l.Drops.DropPkt(stat.RSecDecryptFail, b)
			return ipv6.SecDrop, nil
		}
		spi := get32be(b[off:])
		sa, ok := m.Key.GetBySPI(spi, hdr.Dst, key.ProtoESPTransport)
		if !ok {
			sa, ok = m.Key.GetBySPI(spi, hdr.Dst, key.ProtoESPTunnel)
		}
		if !ok {
			m.Stats.InNoSA.Inc()
			m.l.Drops.DropPkt(stat.RSecNoSA, b)
			return ipv6.SecDrop, nil
		}
		inner, payloadType, err := openESP(sa, b[off:])
		if err != nil {
			m.Stats.InDecryptFail.Inc()
			m.l.Drops.DropPkt(stat.RSecDecryptFail, b)
			return ipv6.SecDrop, nil
		}
		m.Stats.InDecryptOK.Inc()

		if sa.Proto == key.ProtoESPTunnel || payloadType == proto.IPv6 {
			// Tunnel mode: the plaintext is a complete datagram.
			ih, perr := ipv6.Parse(inner)
			if perr != nil {
				m.Stats.InDecryptFail.Inc()
				m.l.Drops.DropPkt(stat.RSecDecryptFail, b)
				return ipv6.SecDrop, nil
			}
			rebuilt := mbuf.NewNoCopy(inner)
			h := rebuilt.Hdr()
			h.RcvIf = pkt.Hdr().RcvIf
			h.Flags = pkt.Hdr().Flags | mbuf.MDecrypted
			h.AuxSPI = append(append([]uint32(nil), pkt.Hdr().AuxSPI...), spi)
			// Tunnel source-address check (§3.4): a forged inner
			// packet must not inherit the outer packet's credentials.
			if ih.Src != hdr.Src {
				m.Stats.TunnelSrcFail.Inc()
				m.l.Drops.DropNote(stat.RSecTunnelAddr, ih.Src.String()+"!="+hdr.Src.String())
				h.Flags &^= mbuf.MAuthentic | mbuf.MDecrypted
			}
			return ipv6.SecReinject, rebuilt
		}

		// Transport mode: rebuild the datagram with the decrypted
		// upper-layer content directly under the base header.
		nhdr := *hdr
		nhdr.NextHdr = payloadType
		nhdr.PayloadLen = len(inner)
		data := nhdr.Marshal(nil)
		data = append(data, inner...)
		rebuilt := mbuf.NewNoCopy(data)
		h := rebuilt.Hdr()
		h.RcvIf = pkt.Hdr().RcvIf
		h.Flags = pkt.Hdr().Flags | mbuf.MDecrypted
		h.AuxSPI = append(append([]uint32(nil), pkt.Hdr().AuxSPI...), spi)
		return ipv6.SecReinject, rebuilt
	}
	return ipv6.SecDrop, nil
}

// InputPolicy is ipsec_input_policy() (§3.4): transport protocols call
// it before processing a received packet; it checks both the socket
// requirements and the system-wide requirements, so "the system
// administrator can mandate a minimum security level for all normal
// network connections".  It returns false if the packet must be
// silently dropped.
func (m *Module) InputPolicy(pkt *mbuf.Mbuf, dst inet.IP6, socket any) bool {
	return m.InputPolicyPort(pkt, dst, socket, 0)
}

// InputPolicyPort is InputPolicy with the local port visible, so the
// administrative per-port rules of §3.5 apply. Port 0 means "no port"
// (ICMP and the like).
func (m *Module) InputPolicyPort(pkt *mbuf.Mbuf, dst inet.IP6, socket any, lport uint16) bool {
	eff := m.effective(socket)
	if eff.Bypass {
		return true
	}
	if lport != 0 {
		eff = merge(eff, m.portRequirements(lport))
	}
	if eff == (SockOpts{}) {
		return true
	}
	flags := pkt.Hdr().Flags
	if eff.Auth >= LevelRequire && flags&mbuf.MAuthentic == 0 {
		m.Stats.InPolicyDrops.Inc()
		m.l.Drops.DropNote(stat.RSecPolicyDrop, dst.String())
		return false
	}
	needDecrypt := eff.ESPTransport >= LevelRequire || eff.ESPTunnel >= LevelRequire
	if needDecrypt && flags&mbuf.MDecrypted == 0 {
		m.Stats.InPolicyDrops.Inc()
		m.l.Drops.DropNote(stat.RSecPolicyDrop, dst.String())
		return false
	}
	// Level 3: some association protecting the packet must be unique
	// to this socket.
	if (eff.Auth == LevelUnique || eff.ESPTransport == LevelUnique || eff.ESPTunnel == LevelUnique) && socket != nil {
		found := false
		for _, spi := range pkt.Hdr().AuxSPI {
			for _, p := range []key.SecProto{key.ProtoAH, key.ProtoESPTransport, key.ProtoESPTunnel} {
				if sa, ok := m.Key.GetBySPI(spi, dst, p); ok && sa.Unique && sa.Socket == socket {
					found = true
				}
			}
		}
		if !found {
			m.Stats.InPolicyDrops.Inc()
			m.l.Drops.DropNote(stat.RSecPolicyDrop, dst.String())
			return false
		}
	}
	return true
}

// HdrSize estimates the wrapping overhead the socket's effective
// policy will add to each packet (BSD's ipsec_hdrsiz): transports
// subtract it from the MSS so secured segments do not overflow the
// path MTU and fragment.
func (m *Module) HdrSize(socket any) int {
	eff := m.effective(socket)
	n := 0
	if eff.Auth >= LevelUse {
		n += ahFixedLen + 20 // header + largest registered digest in use
	}
	if eff.ESPTransport >= LevelUse {
		n += 4 + 8 + 8 + 2 // SPI + IV + worst-case pad + trailer
	}
	if eff.ESPTunnel >= LevelUse {
		n += 40 + 4 + 8 + 8 + 2 // inner header + ESP framing
	}
	return n
}

// AllowError implements the in6_pcbnotify() security check (§5.1):
// whether an ICMP error may be delivered to applications. Under a
// system policy requiring authentication, unauthenticated errors are
// suppressed (ICMP errors echo packet contents and cannot themselves
// be verified here).
func (m *Module) AllowError() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.system.Auth < LevelRequire
}

func get32be(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
