package ipsec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/proto"
	"bsd6/internal/stat"
)

// EIPSEC is "the newly defined IP Security processing error" (§3.3):
// returned to the user when a packet needed security that could not be
// applied (no association, no key management, or a processing failure).
var EIPSEC = errors.New("EIPSEC: IP security processing error")

// Level is a socket/system security level (§6.1):
//
//	0: no security on outbound, none required inbound
//	1: use security outbound if available, not required inbound
//	2: require security outbound and inbound
//	3: level 2, with a security association unique to the socket
type Level int

// The four security levels of §6.1, one per service.
const (
	LevelNone    Level = 0
	LevelUse     Level = 1
	LevelRequire Level = 2
	LevelUnique  Level = 3
)

// SockOpts is the per-socket (or system-wide) security request: one
// level for each of the three services — "the same matrix of 3
// protocols and 4 security levels" (§6.1).
type SockOpts struct {
	Auth         Level // SO_SECURITY_AUTHENTICATION
	ESPTransport Level // SO_SECURITY_ENCRYPTION_TRANSPORT
	ESPTunnel    Level // SO_SECURITY_ENCRYPTION_TUNNEL

	// Bypass exempts the socket from IP security entirely — the
	// privileged option §6.3 plans "to permit applications that need
	// to bypass IP security to do so (for example, a Photuris
	// daemon)".  The socket layer only sets it for effective uid 0.
	// Never meaningful in the system-wide policy.
	Bypass bool
}

// merge applies "the more paranoid of these policies" (§3.3).
func merge(a, b SockOpts) SockOpts {
	max := func(x, y Level) Level {
		if x > y {
			return x
		}
		return y
	}
	return SockOpts{
		Auth:         max(a.Auth, b.Auth),
		ESPTransport: max(a.ESPTransport, b.ESPTransport),
		ESPTunnel:    max(a.ESPTunnel, b.ESPTunnel),
		Bypass:       b.Bypass, // only the socket side may carry it
	}
}

// Stats counts security processing events; netstat(8) displays them
// (§3.4: "appropriate kernel statistics counters are incremented").
type Stats struct {
	OutAH          stat.Counter
	OutESP         stat.Counter
	OutTunnel      stat.Counter
	OutPolicyDrops stat.Counter
	OutCacheHits   stat.Counter
	InAuthOK       stat.Counter
	InAuthFail     stat.Counter
	InDecryptOK    stat.Counter
	InDecryptFail  stat.Counter
	InNoSA         stat.Counter
	InReplay       stat.Counter
	InPolicyDrops  stat.Counter
	TunnelSrcFail  stat.Counter
}

// portPolicy is one administrative per-port rule (§3.5's example: "an
// administrator could require that packets coming in on a certain
// range of privileged ports ... must be authentic").
type portPolicy struct {
	lo, hi uint16
	req    SockOpts
}

// Module is the IP security instance of one stack.
type Module struct {
	l *ipv6.Layer
	// Key is the stack's Key Engine (§3.1).
	Key *key.Engine

	mu     sync.Mutex
	system SockOpts
	ports  []portPolicy
	// hot flips once the administrator installs any system or port
	// policy; until then the per-packet policy reads skip the lock
	// entirely — the common stack pays nothing for the feature.
	hot atomic.Bool

	// SocketOpts reads the security options of a socket (set by the
	// sockets layer); nil sockets get zero levels.
	SocketOpts func(socket any) SockOpts

	// Stats counts security processing events.
	Stats Stats
}

// Attach creates the security module and installs its hooks on the
// IPv6 layer (§3.3 output, §3.4 input).
func Attach(l *ipv6.Layer, ke *key.Engine) *Module {
	m := &Module{l: l, Key: ke}
	l.SecOut = m.OutputPolicy
	l.SecIn = m.Input
	return m
}

// SetSystemPolicy installs the administrator's system-wide levels.
func (m *Module) SetSystemPolicy(p SockOpts) {
	m.mu.Lock()
	m.system = p
	m.mu.Unlock()
	m.hot.Store(true)
}

// SystemPolicy returns the system-wide levels.
func (m *Module) SystemPolicy() SockOpts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.system
}

func (m *Module) effective(socket any) SockOpts {
	var sys SockOpts
	if m.hot.Load() {
		m.mu.Lock()
		sys = m.system
		m.mu.Unlock()
	}
	if socket == nil || m.SocketOpts == nil {
		return sys
	}
	so := m.SocketOpts(socket)
	if so.Bypass {
		return SockOpts{Bypass: true}
	}
	return merge(sys, so)
}

// AddPortPolicy installs an administrative input requirement for local
// ports in [lo, hi] — the §3.5 enhancement to the "simple system-wide
// decisions" of the current policy engine.
func (m *Module) AddPortPolicy(lo, hi uint16, req SockOpts) {
	m.mu.Lock()
	m.ports = append(m.ports, portPolicy{lo: lo, hi: hi, req: req})
	m.mu.Unlock()
	m.hot.Store(true)
}

// portRequirements merges the policies covering the local port.
func (m *Module) portRequirements(port uint16) SockOpts {
	if !m.hot.Load() {
		return SockOpts{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var req SockOpts
	for _, p := range m.ports {
		if port >= p.lo && port <= p.hi {
			req = merge(req, p.req)
		}
	}
	return req
}

// secVerdict is one resolved outbound decision: the effective policy
// it was computed under and the association for each service (nil
// where the level is none, or use-with-no-SA).  It is what a PCB's
// key.Cache holds.
type secVerdict struct {
	eff          SockOpts
	esp, tun, ah *key.SA
	deadline     time.Time
}

// resolveOut computes the outbound verdict for (hdr.Src, hdr.Dst)
// under eff by querying the Key Engine per service.  Resolution
// failures (EIPSEC, acquire-delayed) return an error and are never
// cached.
func (m *Module) resolveOut(hdr *ipv6.Header, socket any, eff SockOpts) (*secVerdict, error) {
	get := func(p key.SecProto, lvl Level) (*key.SA, error) {
		if lvl == LevelNone {
			return nil, nil
		}
		sa, err := m.Key.GetBySocket(hdr.Src, hdr.Dst, p, socket, lvl == LevelUnique)
		if err != nil {
			if lvl == LevelUse {
				return nil, nil // level 1: use if available
			}
			m.Stats.OutPolicyDrops.Inc()
			m.l.Drops.DropNote(stat.RSecNoSAOut, hdr.Dst.String())
			return nil, fmt.Errorf("%w: %v", EIPSEC, err)
		}
		return sa, nil
	}
	v := &secVerdict{eff: eff}
	var err error
	if v.esp, err = get(key.ProtoESPTransport, eff.ESPTransport); err != nil {
		return nil, err
	}
	if v.tun, err = get(key.ProtoESPTunnel, eff.ESPTunnel); err != nil {
		return nil, err
	}
	if v.ah, err = get(key.ProtoAH, eff.Auth); err != nil {
		return nil, err
	}
	for _, sa := range []*key.SA{v.esp, v.tun, v.ah} {
		if sa == nil || sa.HardLife == 0 {
			continue
		}
		d := sa.AddedAt.Add(sa.HardLife)
		if v.deadline.IsZero() || d.Before(v.deadline) {
			v.deadline = d
		}
	}
	return v, nil
}

// OutputPolicy is ipsec_output_policy() (§3.3), installed as the IPv6
// layer's SecOut hook and called immediately before fragmentation.  It
// merges system and socket policy, obtains associations from the Key
// Engine — through the caller's generation-validated cache when one is
// supplied, so steady-state sends never touch the SA table — and
// applies the needed services to the fragmentable part: ESP transport
// innermost, then ESP tunnel, then AH outermost.  The transforms are
// chain-aware: the payload chain is gathered at most once, directly
// into the pooled output buffer, and AH is prepended in place.
func (m *Module) OutputPolicy(hdr *ipv6.Header, payload *mbuf.Mbuf, nh uint8, socket any, sc *key.Cache) (*mbuf.Mbuf, uint8, error) {
	eff := m.effective(socket)
	if eff.Bypass || eff == (SockOpts{}) {
		return payload, nh, nil
	}

	var v *secVerdict
	if sc != nil {
		if cv, ok := sc.Get(m.Key, hdr.Src, hdr.Dst); ok {
			if vv := cv.(*secVerdict); vv.eff == eff {
				v = vv
				m.Stats.OutCacheHits.Inc()
			}
		}
	}
	if v == nil {
		// Sample the generation before resolving: a table change racing
		// the resolution then leaves the filled cache stale on its next
		// compare, never wrongly fresh (the route.Cache discipline).
		gen := m.Key.Gen()
		var err error
		if v, err = m.resolveOut(hdr, socket, eff); err != nil {
			return nil, 0, err
		}
		if sc != nil {
			sc.Fill(m.Key, gen, hdr.Src, hdr.Dst, v.deadline, v)
		}
	}

	// Apply the services.  cur tracks the working packet; the caller's
	// payload stays alive (and owned by the caller) until the whole
	// pipeline succeeds, so an error mid-way never double-frees.
	cur, curNH := payload, nh
	fail := func(werr error) (*mbuf.Mbuf, uint8, error) {
		if cur != payload {
			cur.Free()
		}
		m.Stats.OutPolicyDrops.Inc()
		return nil, 0, fmt.Errorf("%w: %v", EIPSEC, werr)
	}

	if sa := v.esp; sa != nil {
		e, werr := espLookup(sa.EncAlg)
		if werr != nil {
			return fail(werr)
		}
		out, werr := wrapESPChain(sa, e, nil, cur, curNH)
		if werr != nil {
			return fail(werr)
		}
		m.Stats.OutESP.Inc()
		sa.CountOut(cur.Len())
		if cur != payload {
			cur.Free()
		}
		cur, curNH = out, proto.ESP
	}

	if sa := v.tun; sa != nil {
		// The inner datagram keeps the real destination; the outer
		// header is readdressed to the association's endpoint when it
		// is a security gateway ("prepending an additional cleartext
		// IP header outside the encrypted IP datagram so that the
		// packet can be routed", §3).
		e, werr := espLookup(sa.EncAlg)
		if werr != nil {
			return fail(werr)
		}
		inner := *hdr
		inner.NextHdr = curNH
		inner.PayloadLen = cur.Len()
		out, werr := wrapESPChain(sa, e, inner.Marshal(nil), cur, proto.IPv6)
		if werr != nil {
			return fail(werr)
		}
		m.Stats.OutTunnel.Inc()
		sa.CountOut(cur.Len())
		if cur != payload {
			cur.Free()
		}
		cur, curNH = out, proto.ESP
		if sa.Dst != hdr.Dst {
			hdr.Dst = sa.Dst // the layer re-routes toward the gateway
		}
	}

	if sa := v.ah; sa != nil {
		if werr := buildAHChain(sa, hdr, cur, curNH); werr != nil {
			return fail(werr)
		}
		m.Stats.OutAH.Inc()
		sa.CountOut(cur.Len())
		curNH = proto.AH
	}

	if cur != payload {
		cur.Hdr().Socket = payload.Hdr().Socket
		// Every wrap above gathered the bytes into a fresh pooled
		// buffer; the original chain is dead — recycle it.
		payload.Free()
	}
	return cur, curNH, nil
}

// spiMissReason types an inbound SA lookup failure for the drop
// taxonomy.
func spiMissReason(r key.SPIResult) stat.Reason {
	switch r {
	case key.SPIExpired:
		return stat.RSecExpired
	case key.SPIStale:
		return stat.RSecStaleSA
	}
	return stat.RSecNoSA
}

// replayDrop charges a replay-window rejection everywhere it is
// visible: the per-SA counter, the module stats, and the drop
// taxonomy.
func (m *Module) replayDrop(sa *key.SA, b []byte) {
	atomic.AddUint64(&sa.ReplayDrops, 1)
	m.Stats.InReplay.Inc()
	m.l.Drops.DropPkt(stat.RSecReplay, b)
}

// Input is the IPv6 layer's SecIn hook (§3.4): process an AH or ESP
// header found during input, setting M_AUTHENTIC / M_DECRYPTED and
// recording the SPI for the transport-layer policy check.  Sequenced
// framings are checked against the association's replay window before
// the cryptography (a replayed packet is rejected for free) and
// committed to it only after the integrity check passes.
func (m *Module) Input(pkt *mbuf.Mbuf, hdr *ipv6.Header, p uint8, off int) (ipv6.SecAction, *mbuf.Mbuf) {
	b := pkt.Bytes()
	switch p {
	case proto.AH:
		if off+ahFixedLen > len(b) {
			m.Stats.InAuthFail.Inc()
			m.l.Drops.DropPkt(stat.RSecAuthFail, b)
			return ipv6.SecDrop, nil
		}
		spi := get32be(b[off+4:])
		sa, res := m.Key.LookupSPI(spi, hdr.Dst, key.ProtoAH)
		if sa == nil {
			m.Stats.InNoSA.Inc()
			m.l.Drops.DropPkt(spiMissReason(res), b)
			return ipv6.SecDrop, nil
		}
		// Replay pre-check for sequenced framings, before paying for
		// the digest.
		seqFramed := false
		if alg, ok := LookupAuth(sa.AuthAlg); ok && sequenced(alg) {
			seqFramed = true
			if off+ahFixedLen+ahSeqLen > len(b) {
				m.Stats.InAuthFail.Inc()
				m.l.Drops.DropPkt(stat.RSecAuthFail, b)
				return ipv6.SecDrop, nil
			}
			if sa.Replay != nil && !sa.Replay.Check(get64be(b[off+ahFixedLen:])) {
				m.replayDrop(sa, b)
				return ipv6.SecDrop, nil
			}
		}
		_, _, seq, ok := verifyAHSeq(sa, hdr, b, off)
		if !ok {
			m.Stats.InAuthFail.Inc()
			m.l.Drops.DropPkt(stat.RSecAuthFail, b)
			return ipv6.SecDrop, nil
		}
		if seqFramed && sa.Replay != nil && !sa.Replay.Update(seq) {
			m.replayDrop(sa, b)
			return ipv6.SecDrop, nil
		}
		m.Stats.InAuthOK.Inc()
		sa.CountIn(len(b) - off)
		pkt.Hdr().Flags |= mbuf.MAuthentic
		pkt.Hdr().AuxSPI = append(pkt.Hdr().AuxSPI, spi)
		return ipv6.SecContinue, nil

	case proto.ESP:
		if off+4 > len(b) {
			m.Stats.InDecryptFail.Inc()
			m.l.Drops.DropPkt(stat.RSecDecryptFail, b)
			return ipv6.SecDrop, nil
		}
		spi := get32be(b[off:])
		sa, res := m.Key.LookupSPI(spi, hdr.Dst, key.ProtoESPTransport)
		if sa == nil {
			sa2, res2 := m.Key.LookupSPI(spi, hdr.Dst, key.ProtoESPTunnel)
			if sa2 != nil || res2 > res {
				sa, res = sa2, res2
			}
		}
		if sa == nil {
			m.Stats.InNoSA.Inc()
			m.l.Drops.DropPkt(spiMissReason(res), b)
			return ipv6.SecDrop, nil
		}
		e, lerr := espLookup(sa.EncAlg)
		if lerr != nil {
			m.Stats.InDecryptFail.Inc()
			m.l.Drops.DropPkt(stat.RSecDecryptFail, b)
			return ipv6.SecDrop, nil
		}
		var seq uint64
		seqFramed := false
		if st, ok := e.transform.(SeqTransform); ok {
			seq, ok = st.WireSeq(b[off:])
			if !ok {
				m.Stats.InDecryptFail.Inc()
				m.l.Drops.DropPkt(stat.RSecDecryptFail, b)
				return ipv6.SecDrop, nil
			}
			seqFramed = true
			if sa.Replay != nil && !sa.Replay.Check(seq) {
				m.replayDrop(sa, b)
				return ipv6.SecDrop, nil
			}
		}
		inner, payloadType, err := e.transform.Unwrap(sa, e.cipher, b[off:])
		if err != nil {
			m.Stats.InDecryptFail.Inc()
			if errors.Is(err, errESPAuth) {
				m.l.Drops.DropPkt(stat.RSecBadICV, b)
			} else {
				m.l.Drops.DropPkt(stat.RSecDecryptFail, b)
			}
			return ipv6.SecDrop, nil
		}
		if seqFramed && sa.Replay != nil && !sa.Replay.Update(seq) {
			m.replayDrop(sa, b)
			return ipv6.SecDrop, nil
		}
		m.Stats.InDecryptOK.Inc()
		sa.CountIn(len(b) - off)

		if sa.Proto == key.ProtoESPTunnel || payloadType == proto.IPv6 {
			// Tunnel mode: the plaintext is a complete datagram.
			ih, perr := ipv6.Parse(inner)
			if perr != nil {
				m.Stats.InDecryptFail.Inc()
				m.l.Drops.DropPkt(stat.RSecDecryptFail, b)
				return ipv6.SecDrop, nil
			}
			rebuilt := mbuf.NewNoCopy(inner)
			h := rebuilt.Hdr()
			h.RcvIf = pkt.Hdr().RcvIf
			h.Flags = pkt.Hdr().Flags | mbuf.MDecrypted
			h.AuxSPI = append(append([]uint32(nil), pkt.Hdr().AuxSPI...), spi)
			// Tunnel source-address check (§3.4): a forged inner
			// packet must not inherit the outer packet's credentials.
			if ih.Src != hdr.Src {
				m.Stats.TunnelSrcFail.Inc()
				m.l.Drops.DropNote(stat.RSecTunnelAddr, ih.Src.String()+"!="+hdr.Src.String())
				h.Flags &^= mbuf.MAuthentic | mbuf.MDecrypted
			}
			return ipv6.SecReinject, rebuilt
		}

		// Transport mode: rebuild the datagram with the decrypted
		// upper-layer content directly under the base header.
		nhdr := *hdr
		nhdr.NextHdr = payloadType
		nhdr.PayloadLen = len(inner)
		data := nhdr.Marshal(nil)
		data = append(data, inner...)
		rebuilt := mbuf.NewNoCopy(data)
		h := rebuilt.Hdr()
		h.RcvIf = pkt.Hdr().RcvIf
		h.Flags = pkt.Hdr().Flags | mbuf.MDecrypted
		h.AuxSPI = append(append([]uint32(nil), pkt.Hdr().AuxSPI...), spi)
		return ipv6.SecReinject, rebuilt
	}
	return ipv6.SecDrop, nil
}

// InputPolicy is ipsec_input_policy() (§3.4): transport protocols call
// it before processing a received packet; it checks both the socket
// requirements and the system-wide requirements, so "the system
// administrator can mandate a minimum security level for all normal
// network connections".  It returns false if the packet must be
// silently dropped.
func (m *Module) InputPolicy(pkt *mbuf.Mbuf, dst inet.IP6, socket any) bool {
	return m.InputPolicyPort(pkt, dst, socket, 0)
}

// InputPolicyPort is InputPolicy with the local port visible, so the
// administrative per-port rules of §3.5 apply. Port 0 means "no port"
// (ICMP and the like).
func (m *Module) InputPolicyPort(pkt *mbuf.Mbuf, dst inet.IP6, socket any, lport uint16) bool {
	eff := m.effective(socket)
	if eff.Bypass {
		return true
	}
	if lport != 0 {
		eff = merge(eff, m.portRequirements(lport))
	}
	if eff == (SockOpts{}) {
		return true
	}
	flags := pkt.Hdr().Flags
	if eff.Auth >= LevelRequire && flags&mbuf.MAuthentic == 0 {
		m.Stats.InPolicyDrops.Inc()
		m.l.Drops.DropNote(stat.RSecPolicyDrop, dst.String())
		return false
	}
	needDecrypt := eff.ESPTransport >= LevelRequire || eff.ESPTunnel >= LevelRequire
	if needDecrypt && flags&mbuf.MDecrypted == 0 {
		m.Stats.InPolicyDrops.Inc()
		m.l.Drops.DropNote(stat.RSecPolicyDrop, dst.String())
		return false
	}
	// Level 3: some association protecting the packet must be unique
	// to this socket.
	if (eff.Auth == LevelUnique || eff.ESPTransport == LevelUnique || eff.ESPTunnel == LevelUnique) && socket != nil {
		found := false
		for _, spi := range pkt.Hdr().AuxSPI {
			for _, p := range []key.SecProto{key.ProtoAH, key.ProtoESPTransport, key.ProtoESPTunnel} {
				if sa, ok := m.Key.GetBySPI(spi, dst, p); ok && sa.Unique && sa.Socket == socket {
					found = true
				}
			}
		}
		if !found {
			m.Stats.InPolicyDrops.Inc()
			m.l.Drops.DropNote(stat.RSecPolicyDrop, dst.String())
			return false
		}
	}
	return true
}

// HdrSize estimates the wrapping overhead the socket's effective
// policy will add to each packet (BSD's ipsec_hdrsiz): transports
// subtract it from the MSS so secured segments do not overflow the
// path MTU and fragment.  The estimates cover the largest registered
// framing per service (sequenced AH with a 32-byte digest, AEAD ESP
// with its tag).
func (m *Module) HdrSize(socket any) int {
	eff := m.effective(socket)
	n := 0
	if eff.Auth >= LevelUse {
		n += ahFixedLen + ahSeqLen + 32 // header + seq + largest digest
	}
	if eff.ESPTransport >= LevelUse {
		n += espAEADHdr + 1 + 16 + 8 // SPI+seq + type + tag, or IV+pad+trailer
	}
	if eff.ESPTunnel >= LevelUse {
		n += 40 + espAEADHdr + 1 + 16 + 8 // inner header + ESP framing
	}
	return n
}

// AllowError implements the in6_pcbnotify() security check (§5.1):
// whether an ICMP error may be delivered to applications. Under a
// system policy requiring authentication, unauthenticated errors are
// suppressed (ICMP errors echo packet contents and cannot themselves
// be verified here).
func (m *Module) AllowError() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.system.Auth < LevelRequire
}

func get32be(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
