// Package tunnel implements configured encapsulation tunnels — 6in4
// (RFC 4213 configured tunneling), 4in6, and v6-in-v6 (RFC 2473) — as
// virtual netif devices, the transition technologies every deployment
// of the paper's era ran to cross a core of the other protocol.
//
// A tunnel is an ordinary point-to-point interface to the rest of the
// stack: routes point prefixes at it, the IP output path resolves it
// like any link, and the forwarding path's MTU checks read its MTU.
// The device's MTU is the *inner* budget — the underlying path MTU
// minus the encapsulation overhead — so TCP MSS derivation, source
// fragmentation, GSO sizing, and the forwarding Packet Too Big checks
// all produce correctly-sized inner packets with no tunnel-specific
// arithmetic anywhere in the IP layers.
//
// Encapsulation prepends the outer header in place (the mbuf slab
// headroom is sized for a full nested stack, see mbuf.Headroom) by
// re-entering the owning outer IP layer's Output path, so tunnel-mode
// IPsec, outer-path routing, and outer fragmentation policy all
// compose on the ordinary machinery.  Decapsulation validates the
// outer endpoints against the configured tunnels, charges typed drop
// reasons for everything it refuses, and re-enters the inner IP
// layer's input path through the tunnel device's Deliver — which means
// the stack's flow steering re-hashes the now-inner headers, keeping
// per-flow worker affinity stable across decapsulation.
//
// Both encapsulation and decapsulation count against an RFC 2473-style
// nesting limit carried in the packet header, so a tunnel routed into
// itself (or a crafted matryoshka packet) terminates deterministically
// with a tunnel-nest-limit drop instead of recursing.
package tunnel

import (
	"errors"
	"fmt"
	"sync"

	"bsd6/internal/icmp6"
	"bsd6/internal/inet"
	"bsd6/internal/ipv4"
	"bsd6/internal/ipv6"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/stat"
)

// Mode selects the inner/outer protocol pairing of a tunnel.
type Mode int

// Tunnel modes: the inner protocol carried over the outer.
const (
	Mode6in4 Mode = iota // IPv6 over an IPv4 core (protocol 41)
	Mode4in6             // IPv4 over an IPv6 core (next header 4)
	Mode6in6             // IPv6 over IPv6 (RFC 2473 generic tunneling)
)

// String names the mode the way ifconfig would print it.
func (m Mode) String() string {
	switch m {
	case Mode6in4:
		return "6in4"
	case Mode4in6:
		return "4in6"
	case Mode6in6:
		return "6in6"
	}
	return "tun?"
}

// outerV4 reports whether the outer header is IPv4.
func (m Mode) outerV4() bool { return m == Mode6in4 }

// innerV6 reports whether the inner packet is IPv6.
func (m Mode) innerV6() bool { return m != Mode4in6 }

// overhead returns the encapsulation overhead in bytes: the outer
// header this tunnel prepends to every packet.
func (m Mode) overhead() int {
	if m.outerV4() {
		return ipv4.HeaderLen
	}
	return ipv6.HeaderLen
}

// innerProto returns the outer-header protocol / next-header value
// identifying the encapsulated payload.
func (m Mode) innerProto() uint8 {
	if m.innerV6() {
		return proto.IPv6
	}
	return proto.IPv4
}

// DefaultNestLimit bounds how many encapsulations (and, symmetrically,
// decapsulations) one packet may traverse on this node, in the spirit
// of RFC 2473's Tunnel Encapsulation Limit option.
const DefaultNestLimit = 4

// maxNestLimit is the hard ceiling: encapsulation recurses through the
// output path, so a truly unlimited setting could exhaust the stack.
const maxNestLimit = 255

// DefaultLinkMTU is the assumed underlying path MTU when a tunnel is
// configured without one (the classic Ethernet default).
const DefaultLinkMTU = 1500

// Config describes one configured tunnel.
type Config struct {
	// Name is the device name (e.g. "tun0").
	Name string
	// Mode selects the inner/outer pairing.
	Mode Mode
	// Local4/Remote4 are the outer endpoints for Mode6in4.
	Local4, Remote4 inet.IP4
	// Local6/Remote6 are the outer endpoints for Mode4in6 and Mode6in6.
	Local6, Remote6 inet.IP6
	// LinkMTU is the underlying (outer) path MTU; the tunnel device MTU
	// becomes LinkMTU minus the encapsulation overhead. 0 means
	// DefaultLinkMTU.
	LinkMTU int
}

// Stats are one tunnel's lifetime counters, beyond the generic netif
// interface counters.
type Stats struct {
	Encapped    uint64 // packets encapsulated onto the outer path
	Decapped    uint64 // packets decapsulated and re-entered
	InErrors    uint64 // decap validation failures (typed in drop reasons)
	PMTUUpdates uint64 // outer-path PTB/frag-needed translated inward
}

// Tunnel is one configured tunnel device.
type Tunnel struct {
	// Name is the device name.
	Name string
	// Mode is the inner/outer pairing.
	Mode Mode
	// Ifp is the virtual interface routes point at.
	Ifp *netif.Interface

	cfg Config
	mod *Module

	// sec is the tunnel's held security verdict for the outer path
	// (v6 outers only): tunnel-mode IPsec over the encapsulated flow
	// resolves through it instead of per-packet SA scans.
	sec key.Cache

	mu    sync.Mutex
	stats Stats
}

// Stats returns a copy of the tunnel's counters.
func (t *Tunnel) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Config returns the tunnel's configuration.
func (t *Tunnel) Config() Config { return t.cfg }

// Module owns the configured tunnels of one stack and the protocol-41
// / protocol-4 decapsulation entries in both IP layers' protocol
// switches.
type Module struct {
	v4  *ipv4.Layer
	v6  *ipv6.Layer
	ic6 *icmp6.Module

	// Drops is the stack-wide drop observability sink; nil counts
	// nothing.
	Drops *stat.Recorder

	// NestLimit bounds tunnel nesting (see DefaultNestLimit); Attach
	// sets the default, SetNestLimit adjusts it.
	NestLimit int

	mu   sync.Mutex
	tuns []*Tunnel
}

// Attach creates the tunnel module and registers the encapsulation
// protocols — IPv6-in-IPv4 (41 over v4), IPv4-in-IPv6 (4 over v6),
// IPv6-in-IPv6 (41 over v6) — in the IP layers' protocol switches,
// both the input (decapsulation) and ctlinput (nested PMTU
// translation) entries.
func Attach(v4 *ipv4.Layer, v6 *ipv6.Layer, ic6 *icmp6.Module) *Module {
	m := &Module{v4: v4, v6: v6, ic6: ic6, NestLimit: DefaultNestLimit}
	v4.Register(proto.IPv6, m.decapInput, m.ctlInput4)
	v6.Register(proto.IPv4, m.decapInput, m.ctlInput6)
	v6.Register(proto.IPv6, m.decapInput, m.ctlInput6)
	return m
}

// SetNestLimit sets the tunnel nesting limit: 0 restores the default,
// negative means "unlimited" (clamped to the hard recursion ceiling).
func (m *Module) SetNestLimit(n int) {
	switch {
	case n == 0:
		m.NestLimit = DefaultNestLimit
	case n < 0 || n > maxNestLimit:
		m.NestLimit = maxNestLimit
	default:
		m.NestLimit = n
	}
}

// Add configures a tunnel and creates its device.  The device comes up
// with the tunnel flag set, its MTU set to the inner budget (LinkMTU
// minus encapsulation overhead), and its output wired to the
// encapsulation path; it is added to both IP layers so routes can name
// it.  The caller wires the device's input to its dispatch (the stack
// input queue, or direct dispatch in test nodes).
func (m *Module) Add(cfg Config) (*Tunnel, error) {
	if cfg.Name == "" {
		return nil, errors.New("tunnel: device name required")
	}
	if cfg.LinkMTU == 0 {
		cfg.LinkMTU = DefaultLinkMTU
	}
	if cfg.Mode.outerV4() {
		if cfg.Local4.IsUnspecified() || cfg.Remote4.IsUnspecified() {
			return nil, errors.New("tunnel: 6in4 requires both IPv4 endpoints")
		}
	} else {
		if cfg.Local6.IsUnspecified() || cfg.Remote6.IsUnspecified() {
			return nil, errors.New("tunnel: v6-outer modes require both IPv6 endpoints")
		}
	}
	overhead := cfg.Mode.overhead()
	innerMTU := cfg.LinkMTU - overhead
	if innerMTU <= 0 {
		return nil, fmt.Errorf("tunnel: link MTU %d cannot carry the %d-byte outer header", cfg.LinkMTU, overhead)
	}
	ifp := netif.New(cfg.Name, inet.LinkAddr{}, innerMTU)
	ifp.SetFlags(netif.FlagTunnel|netif.FlagUp, true)
	ifp.SetEncapOverhead(overhead)
	ifp.Drops = m.Drops
	t := &Tunnel{Name: cfg.Name, Mode: cfg.Mode, Ifp: ifp, cfg: cfg, mod: m}
	ifp.SetOutput(t.encap)
	m.v4.AddInterface(ifp)
	m.v6.AddInterface(ifp)
	m.mu.Lock()
	m.tuns = append(m.tuns, t)
	m.mu.Unlock()
	return t, nil
}

// Tunnels returns a snapshot of the configured tunnels.
func (m *Module) Tunnels() []*Tunnel {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Tunnel(nil), m.tuns...)
}

//
// Encapsulation (device output).
//

// encap is the tunnel device's output function: it receives the fully
// formed inner packet and re-enters the owning outer IP layer's output
// path, which prepends the outer header in the slab headroom and
// routes toward the remote endpoint (running IPsec output processing
// on the way, so tunnel-mode security composes here).
func (t *Tunnel) encap(fr netif.Frame) error {
	pkt := fr.Payload
	hdr := pkt.Hdr()
	m := t.mod

	wantEther := uint16(netif.EtherTypeIPv4)
	if t.Mode.innerV6() {
		wantEther = netif.EtherTypeIPv6
	}
	if fr.EtherType != wantEther {
		// A v4 packet routed into a v6-only tunnel (or vice versa):
		// the route is misconfigured, not the packet.
		m.Drops.DropPkt(stat.RTunAFMismatch, pkt.Bytes())
		pkt.Free()
		return nil
	}
	if int(hdr.Encap) >= m.nestLimit() {
		m.Drops.DropPkt(stat.RTunNestLimit, pkt.Bytes())
		pkt.Free()
		return nil
	}
	hdr.Encap++
	// The inner packet's GSO descriptor must not survive into the
	// outer path: the netif boundary already split or flushed it (see
	// netif.Output), this is the belt to that suspender.
	hdr.GSO = nil

	t.mu.Lock()
	t.stats.Encapped++
	t.mu.Unlock()

	if t.Mode.outerV4() {
		// DF set on the outer header so intermediate v4 routers answer
		// an oversized outer packet with frag-needed — the signal the
		// nested-PMTU translation turns into an inner PTB — instead of
		// silently fragmenting the outer path.
		return m.v4.Output(pkt, t.cfg.Local4, t.cfg.Remote4, t.Mode.innerProto(), ipv4.OutputOpts{DF: true})
	}
	return m.v6.Output(pkt, t.cfg.Local6, t.cfg.Remote6, t.Mode.innerProto(), ipv6.OutputOpts{SecCache: &t.sec})
}

func (m *Module) nestLimit() int {
	n := m.NestLimit
	switch {
	case n == 0:
		return DefaultNestLimit
	case n < 0 || n > maxNestLimit:
		return maxNestLimit
	}
	return n
}

//
// Decapsulation (protocol-switch input).
//

// lookup finds the tunnel whose outer endpoints and protocol match an
// arriving encapsulated packet: the outer source must be the remote
// endpoint and the outer destination our local one.
func (m *Module) lookup(meta *proto.Meta) (*Tunnel, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	endpointHit := false
	for _, t := range m.tuns {
		var match bool
		if t.Mode.outerV4() {
			match = meta.Family == inet.AFInet && meta.Src4 == t.cfg.Remote4 && meta.Dst4 == t.cfg.Local4
		} else {
			match = meta.Family == inet.AFInet6 && meta.Src6 == t.cfg.Remote6 && meta.Dst6 == t.cfg.Local6
		}
		if !match {
			continue
		}
		endpointHit = true
		if t.Mode.innerProto() == meta.Proto {
			return t, true
		}
	}
	return nil, endpointHit
}

// decapInput is the shared protocol-switch entry for protocols 4 and
// 41: the IP layer has validated and stripped the outer header and
// positioned the packet at the inner header; meta carries the outer
// addresses.  It is a terminal consumer: every refusal frees the
// packet after charging a typed drop reason.
func (m *Module) decapInput(pkt *mbuf.Mbuf, meta *proto.Meta) {
	t, endpointHit := m.lookup(meta)
	if t == nil {
		// Encapsulated traffic from an address we have no tunnel to:
		// RFC 4213's decapsulation check. A known endpoint sending the
		// wrong inner protocol for its configured mode is charged
		// separately — that is a configuration mismatch, not an
		// unknown peer.
		if endpointHit {
			m.Drops.DropPkt(stat.RTunAFMismatch, pkt.Bytes())
		} else {
			m.Drops.DropPkt(stat.RTunNoEndpoint, pkt.Bytes())
		}
		pkt.Free()
		return
	}
	hdr := pkt.Hdr()
	if int(hdr.Encap) >= m.nestLimit() {
		t.inError()
		m.Drops.DropPkt(stat.RTunNestLimit, pkt.Bytes())
		pkt.Free()
		return
	}
	hdr.Encap++

	// Validate the inner header before re-entry: version must match
	// the mode, and the inner source must not be a martian (an
	// attacker on the outer path must not be able to source loopback
	// or multicast traffic "from inside" the tunnel).
	ether, ok := m.checkInner(t, pkt)
	if !ok {
		pkt.Free()
		return
	}

	// Link-level state of the outer frame must not leak inward.
	hdr.Flags &^= mbuf.MBcast | mbuf.MMcast

	t.mu.Lock()
	t.stats.Decapped++
	t.mu.Unlock()

	// Re-enter the stack as if the inner packet arrived on the tunnel
	// device.  The owning stack's input function runs its flow
	// steering over the inner headers, so GRO's per-worker engines see
	// stable inner tuples.
	t.Ifp.Deliver(netif.Frame{EtherType: ether, Payload: pkt})
}

// checkInner validates the decapsulated packet's leading header
// against the tunnel mode and the martian rules, returning the
// EtherType for re-entry.
func (m *Module) checkInner(t *Tunnel, pkt *mbuf.Mbuf) (uint16, bool) {
	if t.Mode.innerV6() {
		b := pkt.PullUp(ipv6.HeaderLen)
		if b == nil || b[0]>>4 != 6 {
			t.inError()
			m.Drops.DropPkt(stat.RTunBadHeader, pkt.Bytes())
			return 0, false
		}
		var src inet.IP6
		copy(src[:], b[8:24])
		if src.IsMulticast() || src.IsLoopback() {
			t.inError()
			m.Drops.DropPkt(stat.RTunMartian, pkt.Bytes())
			return 0, false
		}
		return netif.EtherTypeIPv6, true
	}
	b := pkt.PullUp(ipv4.HeaderLen)
	if b == nil || b[0]>>4 != 4 {
		t.inError()
		m.Drops.DropPkt(stat.RTunBadHeader, pkt.Bytes())
		return 0, false
	}
	var src inet.IP4
	copy(src[:], b[12:16])
	if src.IsMulticast() || src.IsLoopback() || src.IsBroadcast() {
		t.inError()
		m.Drops.DropPkt(stat.RTunMartian, pkt.Bytes())
		return 0, false
	}
	return netif.EtherTypeIPv4, true
}

func (t *Tunnel) inError() {
	t.mu.Lock()
	t.stats.InErrors++
	t.mu.Unlock()
}

//
// Nested PMTU translation (protocol-switch ctlinput).
//

// ctlInput4 receives ICMPv4 errors about outer packets we sent into a
// 6in4 tunnel: a frag-needed from the v4 core means the outer path
// narrowed, so the inner path must narrow by the encap overhead more.
func (m *Module) ctlInput4(kind proto.CtlType, meta *proto.Meta, contents []byte, mtu int) {
	if kind != proto.CtlMsgSize || mtu <= 0 {
		// Old-style frag-needed without a next-hop MTU gives nothing
		// to translate; narrowing blindly would be a forgery vector.
		return
	}
	m.mu.Lock()
	var hit *Tunnel
	for _, t := range m.tuns {
		if t.Mode.outerV4() && t.cfg.Local4 == meta.Src4 && t.cfg.Remote4 == meta.Dst4 {
			hit = t
			break
		}
	}
	m.mu.Unlock()
	if hit != nil {
		m.translatePTB(hit, contents, mtu)
	}
}

// ctlInput6 receives ICMPv6 Packet Too Big about outer packets we sent
// into a v6-outer tunnel (4in6, 6in6).
func (m *Module) ctlInput6(kind proto.CtlType, meta *proto.Meta, contents []byte, mtu int) {
	if kind != proto.CtlMsgSize || mtu <= 0 {
		return
	}
	m.mu.Lock()
	var hit *Tunnel
	for _, t := range m.tuns {
		if !t.Mode.outerV4() && t.cfg.Local6 == meta.Src6 && t.cfg.Remote6 == meta.Dst6 && t.Mode.innerProto() == meta.Proto {
			hit = t
			break
		}
	}
	m.mu.Unlock()
	if hit != nil {
		m.translatePTB(hit, contents, mtu)
	}
}

// translatePTB narrows the tunnel device MTU to the new outer path MTU
// minus the encapsulation overhead, and re-emits the error in the
// *inner* protocol toward the inner source carried in the ICMP
// payload.  If the inner source is this host, the error loops back
// through loopback into the ordinary ctlinput machinery (host-route
// PMTU update, TCP MSS shrink); if it is an island host behind us, it
// routes back out — one uniform path either way.
func (m *Module) translatePTB(t *Tunnel, inner []byte, outerMTU int) {
	overhead := t.Ifp.EncapOverhead()
	innerMTU := outerMTU - overhead
	floor := ipv4.MinMTU
	if t.Mode.innerV6() {
		// Clamp at the IPv6 minimum link MTU: a forged or damaged
		// outer PTB must not push the inner path below what every
		// IPv6 link guarantees (the same rule icmp6 applies to
		// ordinary PTBs).
		floor = ipv6.MinMTU
	}
	if innerMTU < floor {
		innerMTU = floor
	}
	if innerMTU < t.Ifp.MTU() {
		t.Ifp.SetMTU(innerMTU)
	}
	t.mu.Lock()
	t.stats.PMTUUpdates++
	t.mu.Unlock()
	m.Drops.Ctl(fmt.Sprintf("tunnel %s: outer mtu %d -> inner %d", t.Name, outerMTU, innerMTU))

	if len(inner) == 0 {
		return // truncated ICMP payload: device MTU narrowed, nothing to relay
	}
	if t.Mode.innerV6() {
		if m.ic6 != nil {
			m.ic6.SendPTB(innerMTU, mbuf.New(inner), "")
		}
		return
	}
	m.v4.SendError(ipv4.IcmpUnreach, ipv4.CodeFragNeeded, innerMTU, inner)
}
