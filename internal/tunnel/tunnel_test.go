package tunnel_test

import (
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipv4"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/route"
	"bsd6/internal/stat"
	"bsd6/internal/testnet"
	"bsd6/internal/tunnel"
)

//
// Crafting helpers: hand-built outer/inner packets for the decap
// validation scenarios, where the attacker controls every byte.
//

func outer4(src, dst inet.IP4, p uint8, payload []byte) *mbuf.Mbuf {
	h := &ipv4.Header{TotalLen: ipv4.HeaderLen + len(payload), TTL: 64,
		Proto: p, Src: src, Dst: dst}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append(payload)
	return pkt
}

func outer6(src, dst inet.IP6, nh uint8, payload []byte) *mbuf.Mbuf {
	h := &ipv6.Header{NextHdr: nh, HopLimit: 64, PayloadLen: len(payload),
		Src: src, Dst: dst}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append(payload)
	return pkt
}

func inner6(src, dst inet.IP6, nh uint8, payload []byte) []byte {
	h := &ipv6.Header{NextHdr: nh, HopLimit: 64, PayloadLen: len(payload),
		Src: src, Dst: dst}
	return append(h.Marshal(nil), payload...)
}

func inner4(src, dst inet.IP4, p uint8, payload []byte) []byte {
	h := &ipv4.Header{TotalLen: ipv4.HeaderLen + len(payload), TTL: 64,
		Proto: p, Src: src, Dst: dst}
	return append(h.Marshal(nil), payload...)
}

// addInner4 puts an IPv4 address and its connected route on a tunnel
// device, the way Join does for ethernet interfaces.
func addInner4(n *testnet.Node, ifp *netif.Interface, addr inet.IP4, plen int) {
	ifp.AddAddr4(netif.Addr4{Addr: addr, Plen: plen})
	netAddr := addr
	m := inet.Mask4(plen)
	for i := range netAddr {
		netAddr[i] &= m[i]
	}
	n.RT.Add(&route.Entry{Family: inet.AFInet, Dst: netAddr[:], Plen: plen,
		Flags: route.FlagUp | route.FlagCloning, IfName: ifp.Name})
}

// TestPing6in4 is the classic transition scenario: two IPv6 islands
// joined by a configured tunnel across an IPv4-only core.  An echo
// round-trips, and every frame the core carried is protocol-41 IPv4.
func TestPing6in4(t *testing.T) {
	sim := testnet.NewSim()
	hub := sim.NewHub()
	a := sim.NewNode("a")
	b := sim.NewNode("b")
	v4A, v4B := inet.IP4{10, 0, 0, 1}, inet.IP4{10, 0, 0, 2}
	a.Join(hub, testnet.MacA, 1500, v4A, 24)
	b.Join(hub, testnet.MacB, 1500, v4B, 24)

	tunA := a.AddTunnel(t, tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in4,
		Local4: v4A, Remote4: v4B})
	tunB := b.AddTunnel(t, tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in4,
		Local4: v4B, Remote4: v4A})
	if tunA.Ifp.MTU() != 1500-ipv4.HeaderLen {
		t.Fatalf("tunnel device MTU %d, want link 1500 - %d encap", tunA.Ifp.MTU(), ipv4.HeaderLen)
	}
	a6 := testnet.IP6(t, "fd00::1")
	b6 := testnet.IP6(t, "fd00::2")
	a.AddGlobal6(tunA.Ifp, a6, 64)
	b.AddGlobal6(tunB.Ifp, b6, 64)

	// Every frame on the core must be IPv4; count the protocol-41 ones.
	wire41 := 0
	hub.Capture = func(fr netif.Frame) {
		if fr.EtherType == netif.EtherTypeIPv6 {
			t.Error("raw IPv6 frame on the v4-only core")
		}
		if fr.EtherType != netif.EtherTypeIPv4 {
			return
		}
		if h, _, err := ipv4.Parse(fr.Payload.Bytes()); err == nil && h.Proto == proto.IPv6 {
			wire41++
		}
	}

	if err := a.ICMP6.SendEcho(b6, 7, 1, []byte("island to island")); err != nil {
		t.Fatal(err)
	}
	sim.WaitFor(t, "echo reply through 6in4", func() bool {
		return a.ICMP6.Stats.InEchoReps.Get() >= 1
	})
	if got := tunA.Stats(); got.Encapped < 1 || got.Decapped < 1 {
		t.Fatalf("tunA stats %+v: want encap and decap activity", got)
	}
	if got := tunB.Stats(); got.Encapped < 1 || got.Decapped < 1 {
		t.Fatalf("tunB stats %+v: want encap and decap activity", got)
	}
	if wire41 < 2 {
		t.Fatalf("saw %d protocol-41 frames on the core, want request+reply", wire41)
	}
}

// TestPing4in6 is the reverse transition: IPv4 islands across an
// IPv6-only core.
func TestPing4in6(t *testing.T) {
	sim := testnet.NewSim()
	hub := sim.NewHub()
	a := sim.NewNode("a")
	b := sim.NewNode("b")
	// v6-only core: no v4 addresses on the ethernet side.
	a.Join(hub, testnet.MacA, 1500, inet.IP4{}, 0)
	b.Join(hub, testnet.MacB, 1500, inet.IP4{}, 0)
	core6A := testnet.IP6(t, "2001:db8:c0::1")
	core6B := testnet.IP6(t, "2001:db8:c0::2")
	a.AddGlobal6(a.Ifps[0], core6A, 64)
	b.AddGlobal6(b.Ifps[0], core6B, 64)

	tunA := a.AddTunnel(t, tunnel.Config{Name: "tun0", Mode: tunnel.Mode4in6,
		Local6: core6A, Remote6: core6B})
	tunB := b.AddTunnel(t, tunnel.Config{Name: "tun0", Mode: tunnel.Mode4in6,
		Local6: core6B, Remote6: core6A})
	if tunA.Ifp.MTU() != 1500-ipv6.HeaderLen {
		t.Fatalf("tunnel device MTU %d, want link 1500 - %d encap", tunA.Ifp.MTU(), ipv6.HeaderLen)
	}
	v4A, v4B := inet.IP4{192, 168, 7, 1}, inet.IP4{192, 168, 7, 2}
	addInner4(a, tunA.Ifp, v4A, 24)
	addInner4(b, tunB.Ifp, v4B, 24)

	hub.Capture = func(fr netif.Frame) {
		if fr.EtherType == netif.EtherTypeIPv4 {
			t.Error("raw IPv4 frame on the v6-only core")
		}
	}

	if err := a.ICMP4.SendEcho(v4B, 7, 1, []byte("v4 island")); err != nil {
		t.Fatal(err)
	}
	sim.WaitFor(t, "echo reply through 4in6", func() bool {
		return a.ICMP4.Stats.InEchoReps.Get() >= 1
	})
	if got := tunB.Stats(); got.Decapped < 1 {
		t.Fatalf("tunB stats %+v: want decap activity", got)
	}
}

// TestDecapValidation exercises every typed refusal on the
// decapsulation path with hand-crafted hostile packets, then one
// well-formed packet to prove the gauntlet still admits real traffic.
func TestDecapValidation(t *testing.T) {
	sim := testnet.NewSim()
	hub := sim.NewHub()
	b := sim.NewNode("b")
	v4Local, v4Peer := inet.IP4{10, 0, 0, 2}, inet.IP4{10, 0, 0, 1}
	b.Join(hub, testnet.MacB, 1500, v4Local, 24)
	eth := b.Ifps[0]
	local6 := testnet.IP6(t, "fd00:cafe::2")
	peer6 := testnet.IP6(t, "fd00:cafe::1")
	peer66 := testnet.IP6(t, "fd00:cafe::3")
	b.AddGlobal6(eth, local6, 64)

	tun46 := b.AddTunnel(t, tunnel.Config{Name: "gif0", Mode: tunnel.Mode6in4,
		Local4: v4Local, Remote4: v4Peer})
	b.AddTunnel(t, tunnel.Config{Name: "gif1", Mode: tunnel.Mode4in6,
		Local6: local6, Remote6: peer6})
	tun66 := b.AddTunnel(t, tunnel.Config{Name: "gif2", Mode: tunnel.Mode6in6,
		Local6: local6, Remote6: peer66})

	islandSrc := testnet.IP6(t, "2001:db8::9")
	get := func(r stat.Reason) uint64 { return b.Drops.Reasons.Get(r) }

	// 1. Protocol-41 traffic from an address no tunnel is configured
	// to: RFC 4213's decapsulation check.
	b.V4.Input(eth, outer4(inet.IP4{10, 0, 0, 9}, v4Local, proto.IPv6,
		inner6(islandSrc, local6, proto.UDP, []byte("x"))))
	if got := get(stat.RTunNoEndpoint); got != 1 {
		t.Fatalf("unknown endpoint: RTunNoEndpoint = %d, want 1", got)
	}

	// 2. A known endpoint sending the wrong inner protocol for its
	// configured mode: gif1 is 4in6, but here comes next-header 41.
	b.V6.Input(eth, outer6(peer6, local6, proto.IPv6,
		inner6(islandSrc, local6, proto.UDP, []byte("x"))))
	if got := get(stat.RTunAFMismatch); got != 1 {
		t.Fatalf("mode mismatch: RTunAFMismatch = %d, want 1", got)
	}

	// 3. Valid endpoints, but the bytes inside are not the promised
	// protocol version.
	b.V4.Input(eth, outer4(v4Peer, v4Local, proto.IPv6,
		inner4(inet.IP4{172, 16, 0, 1}, inet.IP4{172, 16, 0, 2}, proto.UDP, []byte("x"))))
	if got := get(stat.RTunBadHeader); got != 1 {
		t.Fatalf("bad inner version: RTunBadHeader = %d, want 1", got)
	}

	// 4. Martian inner sources: an outer-path attacker must not source
	// multicast (v6) or loopback (v4) traffic "from inside" the tunnel.
	b.V4.Input(eth, outer4(v4Peer, v4Local, proto.IPv6,
		inner6(inet.AllNodes, local6, proto.UDP, []byte("x"))))
	b.V6.Input(eth, outer6(peer6, local6, proto.IPv4,
		inner4(inet.IP4{127, 0, 0, 1}, inet.IP4{192, 168, 7, 2}, proto.UDP, []byte("x"))))
	if got := get(stat.RTunMartian); got != 2 {
		t.Fatalf("martian inner sources: RTunMartian = %d, want 2", got)
	}

	if got := tun46.Stats(); got.Decapped != 0 {
		t.Fatalf("hostile packets decapped: %+v", got)
	}

	// 5. The same gauntlet admits a well-formed packet: inner UDP lands
	// in the protocol switch with the tunnel device as receive context.
	var delivered [][]byte
	b.V6.Register(proto.UDP, func(pkt *mbuf.Mbuf, _ *proto.Meta) {
		delivered = append(delivered, pkt.CopyBytes())
	}, nil)
	b.V4.Input(eth, outer4(v4Peer, v4Local, proto.IPv6,
		inner6(islandSrc, local6, proto.UDP, []byte("payload"))))
	if len(delivered) != 1 || string(delivered[0]) != "payload" {
		t.Fatalf("valid encapsulated UDP not delivered: %q", delivered)
	}
	if got := tun46.Stats(); got.Decapped != 1 {
		t.Fatalf("tun46 stats %+v, want Decapped 1", got)
	}
	_ = tun66
}

// TestDecapNestLimit proves a crafted matryoshka packet terminates at
// the nesting limit instead of cycling through the input path.
func TestDecapNestLimit(t *testing.T) {
	sim := testnet.NewSim()
	hub := sim.NewHub()
	b := sim.NewNode("b")
	v4Local, v4Peer := inet.IP4{10, 0, 0, 2}, inet.IP4{10, 0, 0, 1}
	b.Join(hub, testnet.MacB, 1500, v4Local, 24)
	eth := b.Ifps[0]
	local6 := testnet.IP6(t, "fd00:cafe::2")
	peer66 := testnet.IP6(t, "fd00:cafe::3")
	b.AddGlobal6(eth, local6, 64)

	b.AddTunnel(t, tunnel.Config{Name: "gif0", Mode: tunnel.Mode6in4,
		Local4: v4Local, Remote4: v4Peer})
	b.AddTunnel(t, tunnel.Config{Name: "gif2", Mode: tunnel.Mode6in6,
		Local6: local6, Remote6: peer66})
	b.Tun.SetNestLimit(1)

	// v4[ v6(peer66->us, nh 41)[ v6(island->us) ] ]: the first decap is
	// within the limit of 1; the nested one must charge the limit.
	nested := inner6(peer66, local6, proto.IPv6,
		inner6(testnet.IP6(t, "2001:db8::9"), local6, proto.UDP, []byte("x")))
	b.V4.Input(eth, outer4(v4Peer, v4Local, proto.IPv6, nested))
	if got := b.Drops.Reasons.Get(stat.RTunNestLimit); got != 1 {
		t.Fatalf("nested decap: RTunNestLimit = %d, want 1", got)
	}
}

// TestEncapSelfNestTerminates routes a tunnel's own outer endpoint
// back into the tunnel — the classic encapsulation loop — and proves
// the nest limit terminates it after exactly NestLimit encapsulations.
func TestEncapSelfNestTerminates(t *testing.T) {
	sim := testnet.NewSim()
	n := sim.NewNode("n")
	local6 := testnet.IP6(t, "fd00::1")
	remote6 := testnet.IP6(t, "fd00::2")
	tun := n.AddTunnel(t, tunnel.Config{Name: "gif0", Mode: tunnel.Mode6in6,
		Local6: local6, Remote6: remote6})
	n.AddGlobal6(tun.Ifp, local6, 64)
	// The outer destination routes into the tunnel itself.
	n.RT.Add(&route.Entry{Family: inet.AFInet6, Dst: remote6[:], Plen: 128,
		Flags: route.FlagUp | route.FlagHost, IfName: tun.Ifp.Name})

	if err := n.ICMP6.SendEcho(remote6, 1, 1, []byte("loop")); err != nil {
		t.Fatal(err)
	}
	if got := n.Drops.Reasons.Get(stat.RTunNestLimit); got != 1 {
		t.Fatalf("self-routed tunnel: RTunNestLimit = %d, want 1", got)
	}
	if got := tun.Stats().Encapped; got != tunnel.DefaultNestLimit {
		t.Fatalf("encapped %d times before terminating, want %d", got, tunnel.DefaultNestLimit)
	}
}

// ptbWorld is the three-node nested-PMTU topology: tunnel heads A and
// B joined by v4 router R whose far side is narrower than the tunnel
// believed.
type ptbWorld struct {
	sim        *testnet.Sim
	hub1, hub2 *netif.Hub
	a, r, b    *testnet.Node
	tunA, tunB *tunnel.Tunnel
	a6, b6     inet.IP6
}

func newPTBWorld(t *testing.T, narrowMTU int) *ptbWorld {
	w := &ptbWorld{sim: testnet.NewSim()}
	w.hub1, w.hub2 = w.sim.NewHub(), w.sim.NewHub()
	w.a, w.r, w.b = w.sim.NewNode("a"), w.sim.NewNode("r"), w.sim.NewNode("b")

	v4A := inet.IP4{10, 0, 1, 1}
	v4B := inet.IP4{10, 0, 2, 2}
	w.a.Join(w.hub1, testnet.MacA, 1500, v4A, 24)
	w.r.Join(w.hub1, testnet.MacR, 1500, inet.IP4{10, 0, 1, 254}, 24)
	w.r.Join(w.hub2, testnet.MacS, narrowMTU, inet.IP4{10, 0, 2, 254}, 24)
	w.b.Join(w.hub2, testnet.MacB, narrowMTU, v4B, 24)
	w.r.V4.Forwarding = true
	w.a.DefaultVia4(inet.IP4{10, 0, 1, 254}, w.a.Ifps[0].Name)
	w.b.DefaultVia4(inet.IP4{10, 0, 2, 254}, w.b.Ifps[0].Name)

	// A still believes the whole outer path is 1500: the narrowing is
	// what the nested-PMTU translation must discover.
	w.tunA = w.a.AddTunnel(t, tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in4,
		Local4: v4A, Remote4: v4B, LinkMTU: 1500})
	w.tunB = w.b.AddTunnel(t, tunnel.Config{Name: "tun0", Mode: tunnel.Mode6in4,
		Local4: v4B, Remote4: v4A, LinkMTU: narrowMTU})
	w.a6 = testnet.IP6(t, "fd00::1")
	w.b6 = testnet.IP6(t, "fd00::2")
	w.a.AddGlobal6(w.tunA.Ifp, w.a6, 64)
	w.b.AddGlobal6(w.tunB.Ifp, w.b6, 64)
	return w
}

// TestNestedPTBTranslation drives the tentpole's PMTU story end to
// end: an oversized outer packet draws frag-needed from the v4 core,
// the tunnel head narrows its device MTU by the encap overhead and
// relays an inner Packet Too Big, and the retried inner traffic gets
// through.
func TestNestedPTBTranslation(t *testing.T) {
	w := newPTBWorld(t, 1400)

	// Inner packet sized exactly to the device MTU (1480): encap makes
	// a 1500-byte DF outer that cannot cross R's 1400-byte far side.
	big := make([]byte, 1480-ipv6.HeaderLen-8)
	if err := w.a.ICMP6.SendEcho(w.b6, 1, 1, big); err != nil {
		t.Fatal(err)
	}
	w.sim.WaitFor(t, "tunnel MTU narrowed by translated frag-needed", func() bool {
		return w.tunA.Ifp.MTU() == 1400-ipv4.HeaderLen
	})
	if got := w.tunA.Stats().PMTUUpdates; got < 1 {
		t.Fatalf("PMTUUpdates = %d, want >= 1", got)
	}
	// The relayed *inner* PTB looped back into A's own ICMPv6 machinery
	// and updated the host route toward B's island address.
	w.sim.WaitFor(t, "inner PTB relayed to A's PMTU cache", func() bool {
		return w.a.ICMP6.Stats.PmtuUpdates.Get() >= 1
	})

	// Retry: the same inner size now source-fragments at the narrowed
	// device MTU, each fragment fitting the outer path — delivery
	// completes with no further loss.
	if err := w.a.ICMP6.SendEcho(w.b6, 1, 2, big); err != nil {
		t.Fatal(err)
	}
	w.sim.WaitFor(t, "oversized echo delivered after narrowing", func() bool {
		return w.a.ICMP6.Stats.InEchoReps.Get() >= 1
	})
}

// TestNestedPTBFloor pins the clamp: a path narrower than the IPv6
// minimum link MTU (or a forged tiny frag-needed) must floor the
// inner budget at ipv6.MinMTU, never below.
func TestNestedPTBFloor(t *testing.T) {
	w := newPTBWorld(t, 500) // 500 - 20 = 480 < ipv6.MinMTU

	big := make([]byte, 1480-ipv6.HeaderLen-8)
	if err := w.a.ICMP6.SendEcho(w.b6, 1, 1, big); err != nil {
		t.Fatal(err)
	}
	w.sim.WaitFor(t, "tunnel MTU floored at the v6 minimum", func() bool {
		return w.tunA.Ifp.MTU() == ipv6.MinMTU
	})
}

// TestNestedPTBHostileLink is the adversarial variant: the link
// carrying the frag-needed signal loses, duplicates, and corrupts
// frames.  Corrupted PTBs must be rejected by the checksums (never
// mis-applied), duplicates must be idempotent, and losses must only
// delay — after enough retries the tunnel converges on exactly the
// true inner MTU and traffic flows.
func TestNestedPTBHostileLink(t *testing.T) {
	w := newPTBWorld(t, 1400)
	w.hub1.SetFaults(netif.Faults{Loss: 0.25, Duplicate: 0.25, Corrupt: 0.15})
	w.hub1.SetSeed(42)

	big := make([]byte, 1480-ipv6.HeaderLen-8)
	want := 1400 - ipv4.HeaderLen
	for i := 0; i < 50 && w.tunA.Ifp.MTU() != want; i++ {
		if err := w.a.ICMP6.SendEcho(w.b6, 1, uint16(i), big); err != nil {
			t.Fatal(err)
		}
		w.sim.Run(500 * time.Millisecond)
	}
	if got := w.tunA.Ifp.MTU(); got != want {
		t.Fatalf("tunnel MTU %d after hostile-link retries, want %d", got, want)
	}

	// Clean the link and prove the narrowed path actually carries the
	// oversized inner traffic.
	w.hub1.SetFaults(netif.Faults{})
	if err := w.a.ICMP6.SendEcho(w.b6, 2, 1, big); err != nil {
		t.Fatal(err)
	}
	w.sim.WaitFor(t, "echo after hostile-link convergence", func() bool {
		return w.a.ICMP6.Stats.InEchoReps.Get() >= 1
	})
}

// FuzzTunnel throws arbitrary bytes at the decapsulation gauntlet of
// all three tunnel modes.  The invariant is totality: every input is
// either delivered or charged to a typed drop reason — never a panic,
// never a hang.
func FuzzTunnel(f *testing.F) {
	island := inet.IP6{0x20, 0x01, 0x0d, 0xb8, 15: 9}
	local6 := inet.IP6{0xfd, 0, 0xca, 0xfe, 15: 2}
	f.Add([]byte{}, byte(0))
	f.Add(inner6(island, local6, proto.UDP, []byte("ok")), byte(0))
	f.Add(inner6(island, local6, proto.IPv6, []byte("nest")), byte(2))
	f.Add(inner4(inet.IP4{192, 168, 7, 9}, inet.IP4{192, 168, 7, 2}, proto.UDP, nil), byte(1))
	f.Add([]byte{0x60, 0, 0, 0, 0xff, 0xff}, byte(0))
	f.Fuzz(func(t *testing.T, data []byte, sel byte) {
		if len(data) > 2048 {
			return
		}
		sim := testnet.NewSim()
		hub := sim.NewHub()
		n := sim.NewNode("fz")
		v4Local, v4Peer := inet.IP4{10, 0, 0, 2}, inet.IP4{10, 0, 0, 1}
		n.Join(hub, testnet.MacA, 1500, v4Local, 24)
		eth := n.Ifps[0]
		peer6 := inet.IP6{0xfd, 0, 0xca, 0xfe, 15: 1}
		n.AddGlobal6(eth, local6, 64)
		n.AddTunnel(t, tunnel.Config{Name: "gif0", Mode: tunnel.Mode6in4,
			Local4: v4Local, Remote4: v4Peer})
		n.AddTunnel(t, tunnel.Config{Name: "gif1", Mode: tunnel.Mode4in6,
			Local6: local6, Remote6: peer6})
		n.AddTunnel(t, tunnel.Config{Name: "gif2", Mode: tunnel.Mode6in6,
			Local6: local6, Remote6: peer6})
		switch sel % 3 {
		case 0:
			n.V4.Input(eth, outer4(v4Peer, v4Local, proto.IPv6, data))
		case 1:
			n.V6.Input(eth, outer6(peer6, local6, proto.IPv4, data))
		case 2:
			n.V6.Input(eth, outer6(peer6, local6, proto.IPv6, data))
		}
		sim.Run(100 * time.Millisecond)
	})
}
