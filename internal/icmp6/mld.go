package icmp6

import (
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/proto"
	"bsd6/internal/stat"
)

// Group membership (§4.1): ICMPv6 absorbs IGMP.  Group Report and
// Group Query behave like their IGMP counterparts; Group Terminate is
// the optimization "so that routers can be informed more quickly about
// hosts leaving multicast groups".

// groupBody builds the common body of the three group messages:
// maximum response delay, reserved, group address.
func groupBody(maxDelay time.Duration, group inet.IP6) []byte {
	b := make([]byte, 4+16)
	d := uint16(maxDelay / time.Millisecond)
	b[0], b[1] = byte(d>>8), byte(d)
	copy(b[4:], group[:])
	return b
}

// groupChange is wired to the layer's multicast join/leave events.
func (m *Module) groupChange(ifName string, group inet.IP6, joined bool) {
	// Reports are not sent for the trivial memberships every node has.
	if group == inet.AllNodes || group == inet.AllRouters {
		return
	}
	if joined {
		m.Stats.OutReports.Inc()
		m.sendCtl(TypeGroupReport, 0, groupBody(0, group), inet.IP6{}, group, 1, ifName)
	} else {
		// Terminate goes to all-routers (§4.1: informs routers more
		// quickly about hosts leaving groups).
		m.Stats.OutTerm.Inc()
		m.sendCtl(TypeGroupTerminate, 0, groupBody(0, group), inet.IP6{}, inet.AllRouters, 1, ifName)
	}
}

// SendGroupQuery asks nodes to report their memberships (router side).
// A general query uses the unspecified group.
func (m *Module) SendGroupQuery(ifName string, group inet.IP6, maxDelay time.Duration) error {
	dst := group
	if group.IsUnspecified() {
		dst = inet.AllNodes
	}
	return m.sendCtl(TypeGroupQuery, 0, groupBody(maxDelay, group), inet.IP6{}, dst, 1, ifName)
}

// queryInput answers a Group Query with Reports for our memberships.
// (The protocol staggers reports over the max-delay window; this
// implementation reports immediately, which is correct if chattier.)
func (m *Module) queryInput(body []byte, meta *proto.Meta) {
	if len(body) < 20 {
		m.Stats.InErrors.Inc()
		m.l.Drops.DropNote(stat.RICMP6Short, meta.Src6.String())
		return
	}
	var group inet.IP6
	copy(group[:], body[4:20])
	for _, g := range m.l.Groups(meta.RcvIf) {
		if g == inet.AllRouters {
			continue
		}
		if group.IsUnspecified() || g == group {
			m.Stats.OutReports.Inc()
			m.sendCtl(TypeGroupReport, 0, groupBody(0, g), inet.IP6{}, g, 1, meta.RcvIf)
		}
	}
}

// GroupRecord tracks a learned membership on a router.
type GroupRecord struct {
	Group   inet.IP6
	IfName  string
	Expires time.Time
}

const groupLifetime = 4 * time.Minute

// reportInput (router side) records or removes memberships learned
// from Reports and Terminates.
func (m *Module) reportInput(typ uint8, body []byte, meta *proto.Meta) {
	if len(body) < 20 {
		m.Stats.InErrors.Inc()
		m.l.Drops.DropNote(stat.RICMP6Short, meta.Src6.String())
		return
	}
	if !m.isRouterIf(meta.RcvIf) {
		return
	}
	var group inet.IP6
	copy(group[:], body[4:20])
	key := groupKey{meta.RcvIf, group}
	m.mu.Lock()
	if m.members == nil {
		m.members = make(map[groupKey]time.Time)
	}
	if typ == TypeGroupReport {
		m.members[key] = m.l.Routes().Now().Add(groupLifetime)
	} else {
		delete(m.members, key)
	}
	m.mu.Unlock()
}

type groupKey struct {
	ifName string
	group  inet.IP6
}

// Memberships lists the groups a router believes have members on a
// link.
func (m *Module) Memberships(ifName string) []inet.IP6 {
	now := m.l.Routes().Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []inet.IP6
	for k, exp := range m.members {
		if k.ifName == ifName && now.Before(exp) {
			out = append(out, k.group)
		}
	}
	return out
}
