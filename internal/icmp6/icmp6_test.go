package icmp6

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/route"
	"bsd6/internal/vclock"
)

func ip6(t testing.TB, s string) inet.IP6 {
	t.Helper()
	a, err := inet.ParseIP6(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// node is a full IPv6+ICMPv6 stack instance for tests.
type node struct {
	name string
	rt   *route.Table
	l    *ipv6.Layer
	m    *Module
	ifps []*netif.Interface
}

func newNode(name string) *node {
	rt := route.NewTable()
	l := ipv6.NewLayer(rt)
	m := Attach(l)
	n := &node{name: name, rt: rt, l: l, m: m}
	lo := netif.NewLoopback(name+"-lo", 32768)
	lo.SetInput(func(ifp *netif.Interface, fr netif.Frame) { l.Input(ifp, fr.Payload) })
	l.AddInterface(lo)
	return n
}

// join attaches the node to a hub, configures the link-local address
// (pre-verified: Tentative false), joins its solicited-node group, and
// installs the fe80::/64 on-link route.
func (n *node) join(hub *netif.Hub, mac inet.LinkAddr, mtu int) *netif.Interface {
	ifp := netif.New(fmt.Sprintf("%s-eth%d", n.name, len(n.ifps)), mac, mtu)
	ifp.SetInput(func(ifp *netif.Interface, fr netif.Frame) {
		if fr.EtherType == netif.EtherTypeIPv6 {
			n.l.Input(ifp, fr.Payload)
		}
	})
	hub.Attach(ifp)
	ll := inet.LinkLocal(mac.Token())
	ifp.AddAddr6(netif.Addr6{Addr: ll, Plen: 64})
	n.l.AddInterface(ifp)
	n.l.JoinGroup(ifp.Name, inet.SolicitedNode(ll))
	llPrefix := inet.IP6{0: 0xfe, 1: 0x80}
	n.rt.Add(&route.Entry{
		Family: inet.AFInet6, Dst: llPrefix[:], Plen: 64,
		Flags: route.FlagUp | route.FlagCloning | route.FlagLLInfo, IfName: ifp.Name,
	})
	n.ifps = append(n.ifps, ifp)
	return ifp
}

// addGlobal configures a global address and its on-link prefix.
func (n *node) addGlobal(ifp *netif.Interface, addr inet.IP6, plen int) {
	ifp.AddAddr6(netif.Addr6{Addr: addr, Plen: plen})
	n.l.JoinGroup(ifp.Name, inet.SolicitedNode(addr))
	prefix := addr
	m := inet.Mask6(plen)
	for i := range prefix {
		prefix[i] &= m[i]
	}
	n.rt.Add(&route.Entry{
		Family: inet.AFInet6, Dst: prefix[:], Plen: plen,
		Flags: route.FlagUp | route.FlagCloning | route.FlagLLInfo, IfName: ifp.Name,
	})
}

func (n *node) linkLocal(i int) inet.IP6 {
	ll, _ := n.ifps[i].LinkLocal6(time.Now())
	return ll
}

// pinger collects echo replies.
type pinger struct {
	mu      sync.Mutex
	replies []uint16
}

func (p *pinger) hook(m *Module) {
	m.OnEcho = func(src inet.IP6, id, seq uint16, payload []byte) {
		p.mu.Lock()
		p.replies = append(p.replies, seq)
		p.mu.Unlock()
	}
}

func (p *pinger) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.replies)
}

// waitFor asserts that cond already holds. The hub delivers frames
// synchronously and every timer is driven by explicit FastTimo /
// SlowTimo calls, so there is nothing to wait on: if cond is false the
// stack dropped something, and polling would only hide it.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	if !cond() {
		t.Fatalf("%s did not happen", what)
	}
}

// virtualize points the nodes' route-table clocks (the time source for
// all ND/DAD/reassembly state) at a shared virtual clock.
func virtualize(clk *vclock.Virtual, nodes ...*node) {
	for _, n := range nodes {
		n.rt.Now = clk.Now
	}
}

// driveDAD advances the virtual clock through enough FastTimo ticks to
// let every node's DAD run conclude, entirely on this goroutine.
func driveDAD(clk *vclock.Virtual, nodes ...*node) {
	for i := 0; i < dadProbes+2; i++ {
		clk.Advance(2 * dadInterval)
		for _, n := range nodes {
			n.m.FastTimo(clk.Now())
		}
	}
}

// concluded reports whether a StartDAD done channel has closed.
func concluded(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

var (
	macA  = inet.LinkAddr{2, 0, 0, 0, 0, 0xa}
	macB  = inet.LinkAddr{2, 0, 0, 0, 0, 0xb}
	macR  = inet.LinkAddr{2, 0, 0, 0, 0, 0x1}
	macR2 = inet.LinkAddr{2, 0, 0, 0, 0, 0x2}
)

func TestPing6LinkLocalWithND(t *testing.T) {
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	p := &pinger{}
	p.hook(a.m)

	if err := a.m.SendEcho(b.linkLocal(0), 7, 1, []byte("hello v6")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "echo reply", func() bool { return p.count() >= 1 })
	if a.m.Stats.OutNS.Get() == 0 || b.m.Stats.InNS.Get() == 0 || a.m.Stats.InNA.Get() == 0 {
		t.Fatalf("ND exchange missing: outNS=%d inNS=%d inNA=%d",
			a.m.Stats.OutNS.Get(), b.m.Stats.InNS.Get(), a.m.Stats.InNA.Get())
	}
	// Neighbor is a host route with a MAC gateway (§4.3).
	blladdr := b.linkLocal(0)
	rt, ok := a.rt.Lookup(inet.AFInet6, blladdr[:])
	if !ok || !rt.Host() || rt.Flags&route.FlagLLInfo == 0 {
		t.Fatalf("neighbor route missing: %+v", rt)
	}
	if mac, ok := rt.Gateway.(inet.LinkAddr); !ok || mac != macB {
		t.Fatalf("gateway = %v", rt.Gateway)
	}
	st, ok := a.m.NeighborState(blladdr)
	if !ok || st != NDReachable {
		t.Fatalf("neighbor state = %v, %v", st, ok)
	}
	// Second ping: no new multicast solicit.
	ns := a.m.Stats.OutNS.Get()
	a.m.SendEcho(blladdr, 7, 2, nil)
	waitFor(t, "second reply", func() bool { return p.count() >= 2 })
	if a.m.Stats.OutNS.Get() != ns {
		t.Fatal("re-solicited a reachable neighbor")
	}
}

func TestPing6Self(t *testing.T) {
	hub := netif.NewHub()
	a := newNode("a")
	a.join(hub, macA, 1500)
	p := &pinger{}
	p.hook(a.m)
	if err := a.m.SendEcho(a.linkLocal(0), 1, 1, []byte("me")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "self reply", func() bool { return p.count() >= 1 })
}

func TestPing6AllNodesMulticast(t *testing.T) {
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	p := &pinger{}
	p.hook(a.m)
	if err := a.m.SendEcho(inet.AllNodes, 2, 1, nil); err != nil {
		t.Fatal(err)
	}
	// B replies from a unicast address of its own.
	waitFor(t, "multicast echo reply", func() bool { return p.count() >= 1 })
}

func TestNDUnreachableNeighborRejects(t *testing.T) {
	hub := netif.NewHub()
	a := newNode("a")
	a.join(hub, macA, 1500)
	ghost := ip6(t, "fe80::dead")
	a.m.SendEcho(ghost, 1, 1, nil)
	now := time.Now()
	for i := 0; i < ndMaxMulticast+2; i++ {
		now = now.Add(2 * ndRetrans)
		a.m.FastTimo(now)
	}
	rt, ok := a.rt.Get(inet.AFInet6, ghost[:], 128)
	if !ok || rt.Flags&route.FlagReject == 0 {
		t.Fatalf("unresolvable neighbor not rejected: %+v", rt)
	}
	if a.m.Stats.NdTimeouts.Get() == 0 {
		t.Fatal("NdTimeouts not counted")
	}
	// Sends fail fast while the reject lingers.
	err := a.l.Output(mbuf.New([]byte("x")), inet.IP6{}, ghost, proto.UDP, ipv6.OutputOpts{})
	if err != ipv6.ErrReject {
		t.Fatalf("err = %v, want ErrReject", err)
	}
}

func TestNDStaleThenProbeConfirm(t *testing.T) {
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	p := &pinger{}
	p.hook(a.m)
	bll := b.linkLocal(0)
	a.m.SendEcho(bll, 1, 1, nil)
	waitFor(t, "reply", func() bool { return p.count() >= 1 })

	// Age the entry into stale.
	rt, _ := a.rt.Lookup(inet.AFInet6, bll[:])
	a.m.FastTimo(time.Now().Add(2 * ndReachable))
	st, _ := a.m.NeighborState(bll)
	if st != NDStale {
		t.Fatalf("state = %v, want stale", st)
	}
	// Using the stale entry probes and still delivers.
	nsBefore := a.m.Stats.OutNS.Get()
	a.m.SendEcho(bll, 1, 2, nil)
	waitFor(t, "reply via stale entry", func() bool { return p.count() >= 2 })
	if a.m.Stats.OutNS.Get() == nsBefore {
		t.Fatal("stale entry did not probe")
	}
	// The probe's NA flips it back to reachable.
	waitFor(t, "reachable again", func() bool {
		st, _ := a.m.NeighborState(bll)
		return st == NDReachable
	})
	_ = rt
}

func TestUpperLayerConfirm(t *testing.T) {
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	p := &pinger{}
	p.hook(a.m)
	bll := b.linkLocal(0)
	a.m.SendEcho(bll, 1, 1, nil)
	waitFor(t, "reply", func() bool { return p.count() >= 1 })
	a.m.FastTimo(time.Now().Add(2 * ndReachable))
	if st, _ := a.m.NeighborState(bll); st != NDStale {
		t.Fatal("not stale")
	}
	// TCP-style confirmation refreshes without any wire traffic (§4.3).
	a.m.Confirm(bll)
	if st, _ := a.m.NeighborState(bll); st != NDReachable {
		t.Fatal("Confirm did not refresh")
	}
}

func TestDADUnique(t *testing.T) {
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	clk := vclock.NewVirtual(time.Unix(1_000_000, 0))
	virtualize(clk, a, b)
	ifp := a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	addr := ip6(t, "2001:db8::a")
	ifp.AddAddr6(netif.Addr6{Addr: addr, Plen: 64, Tentative: true})
	done := a.m.StartDAD(ifp, addr)
	driveDAD(clk, a, b)
	if !concluded(done) {
		t.Fatal("DAD did not conclude")
	}
	addrs := ifp.Addrs6()
	for _, x := range addrs {
		if x.Addr == addr && (x.Tentative || x.Duplicated) {
			t.Fatalf("unique address still tentative: %+v", x)
		}
	}
	if a.m.Stats.DadStarted.Get() != 1 || a.m.Stats.DadDuplicate.Get() != 0 {
		t.Fatalf("stats: %+v", &a.m.Stats)
	}
}

func TestDADCollision(t *testing.T) {
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	ifpA := a.join(hub, macA, 1500)
	ifpB := b.join(hub, macB, 1500)
	addr := ip6(t, "2001:db8::7")
	// B already owns the address.
	b.addGlobal(ifpB, addr, 64)
	// A tries to claim it; B's defending NA marks it duplicated.
	ifpA.AddAddr6(netif.Addr6{Addr: addr, Plen: 64, Tentative: true})
	// B's defending NA arrives synchronously, so DAD concludes inside
	// StartDAD's first probe.
	done := a.m.StartDAD(ifpA, addr)
	if !concluded(done) {
		t.Fatal("DAD did not conclude")
	}
	found := false
	for _, x := range ifpA.Addrs6() {
		if x.Addr == addr {
			found = true
			if !x.Duplicated {
				t.Fatal("collision not detected")
			}
		}
	}
	if !found {
		t.Fatal("address vanished")
	}
	if a.m.Stats.DadDuplicate.Get() != 1 {
		t.Fatal("DadDuplicate not counted")
	}
}

func TestDADSimultaneousProbes(t *testing.T) {
	// Two nodes probe the same tentative address at once; the NS from
	// the unspecified source tells the other prober about the clash.
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	clk := vclock.NewVirtual(time.Unix(1_000_000, 0))
	virtualize(clk, a, b)
	ifpA := a.join(hub, macA, 1500)
	ifpB := b.join(hub, macB, 1500)
	addr := ip6(t, "2001:db8::9")
	ifpA.AddAddr6(netif.Addr6{Addr: addr, Plen: 64, Tentative: true})
	ifpB.AddAddr6(netif.Addr6{Addr: addr, Plen: 64, Tentative: true})
	doneA := a.m.StartDAD(ifpA, addr) // A's probe reaches B after B joins the group
	doneB := b.m.StartDAD(ifpB, addr)
	_ = doneA
	driveDAD(clk, a, b)
	if !concluded(doneB) {
		t.Fatal("B's DAD did not conclude")
	}
	// At least one side must have detected the duplicate.
	if a.m.Stats.DadDuplicate.Get()+b.m.Stats.DadDuplicate.Get() == 0 {
		t.Fatal("simultaneous DAD went undetected")
	}
}

func TestRouterDiscoveryAndAutoconf(t *testing.T) {
	hub := netif.NewHub()
	r, h := newNode("r"), newNode("h")
	rifp := r.join(hub, macR, 1500)
	hifp := h.join(hub, macB, 1500)
	prefix := ip6(t, "2001:db8:1:2::")
	r.addGlobal(rifp, ip6(t, "2001:db8:1:2::1"), 64)
	r.m.EnableRouter(rifp.Name, RouterConfig{
		Interval: time.Hour, Lifetime: time.Hour, CurHopLimit: 32,
		Prefixes: []PrefixInfo{{Prefix: prefix, Plen: 64, OnLink: true, Autonomous: true}},
	})

	// Host solicits (second phase of autoconfiguration, §4.2.1).
	if err := h.m.SendRouterSolicit(hifp.Name); err != nil {
		t.Fatal(err)
	}
	want := inet.WithPrefix(prefix, 64, h.linkLocal(0))
	waitFor(t, "autoconfigured address", func() bool { return hifp.HasAddr6(want) })

	// DAD concludes (drive the ticks).
	now := time.Now()
	for i := 0; i < dadProbes+2; i++ {
		now = now.Add(2 * dadInterval)
		h.m.FastTimo(now)
	}
	waitFor(t, "DAD completion", func() bool {
		for _, a := range hifp.Addrs6() {
			if a.Addr == want && !a.Tentative && !a.Duplicated {
				return true
			}
		}
		return false
	})

	// Default route installed via the router's link-local address.
	var zero inet.IP6
	rt, ok := h.rt.Get(inet.AFInet6, zero[:], 0)
	if !ok || rt.Flags&route.FlagGateway == 0 {
		t.Fatal("no default route")
	}
	if gw, _ := rt.Gateway.(inet.IP6); gw != r.linkLocal(0) {
		t.Fatalf("default gw = %v", rt.Gateway)
	}
	// Hop limit adopted.
	if h.l.DefaultHopLimit != 32 {
		t.Fatalf("hop limit = %d", h.l.DefaultHopLimit)
	}
	// On-link prefix cloning route present.
	prt, ok := h.rt.Get(inet.AFInet6, prefix[:], 64)
	if !ok || prt.Flags&route.FlagCloning == 0 {
		t.Fatal("on-link prefix route missing")
	}
	// Router list populated.
	if len(h.m.Routers(time.Now())) != 1 {
		t.Fatal("router list")
	}
}

func TestRenumbering(t *testing.T) {
	// §4.2.2: lifetimes enable rapid renumbering. The router first
	// advertises prefix P1, then advertises P1 with a short lifetime
	// and a new P2; the host ends up with only the P2 address.
	hub := netif.NewHub()
	r, h := newNode("r"), newNode("h")
	rifp := r.join(hub, macR, 1500)
	hifp := h.join(hub, macB, 1500)
	p1 := ip6(t, "2001:db8:aaaa::")
	p2 := ip6(t, "2001:db8:bbbb::")

	r.m.EnableRouter(rifp.Name, RouterConfig{
		Interval: time.Hour, Lifetime: time.Hour,
		Prefixes: []PrefixInfo{{Prefix: p1, Plen: 64, OnLink: true, Autonomous: true}},
	})
	h.m.SendRouterSolicit(hifp.Name)
	addr1 := inet.WithPrefix(p1, 64, h.linkLocal(0))
	waitFor(t, "P1 address", func() bool { return hifp.HasAddr6(addr1) })

	// Renumber: P1 gets a 1-second valid lifetime, P2 appears.
	r.m.mu.Lock()
	r.m.rcfg[rifp.Name].Prefixes = []PrefixInfo{
		{Prefix: p1, Plen: 64, OnLink: true, Autonomous: true, ValidLft: time.Second, PreferredLft: time.Second},
		{Prefix: p2, Plen: 64, OnLink: true, Autonomous: true},
	}
	r.m.mu.Unlock()
	r.m.sendRA(rifp.Name, inet.AllNodes)

	addr2 := inet.WithPrefix(p2, 64, h.linkLocal(0))
	waitFor(t, "P2 address", func() bool { return hifp.HasAddr6(addr2) })

	// Advance time past P1's validity; the expiry tick removes it.
	h.m.FastTimo(time.Now().Add(time.Minute))
	if hifp.HasAddr6(addr1) {
		t.Fatal("old prefix address survived renumbering")
	}
	if !hifp.HasAddr6(addr2) {
		t.Fatal("new prefix address lost")
	}
}

func TestRAMTUOption(t *testing.T) {
	hub := netif.NewHub()
	r, h := newNode("r"), newNode("h")
	rifp := r.join(hub, macR, 1500)
	hifp := h.join(hub, macB, 1500)
	r.m.EnableRouter(rifp.Name, RouterConfig{Interval: time.Hour, Lifetime: time.Hour, LinkMTU: 1280})
	h.m.SendRouterSolicit(hifp.Name)
	waitFor(t, "MTU adoption", func() bool { return hifp.MTU() == 1280 })
}

func TestGroupMessages(t *testing.T) {
	hub := netif.NewHub()
	r, h := newNode("r"), newNode("h")
	rifp := r.join(hub, macR, 1500)
	hifp := h.join(hub, macB, 1500)
	r.m.EnableRouter(rifp.Name, RouterConfig{Interval: time.Hour, Lifetime: time.Hour})

	group := ip6(t, "ff02::1:2345")
	// Join emits a Report that the router records.
	h.l.JoinGroup(hifp.Name, group)
	waitFor(t, "membership recorded", func() bool {
		return len(r.m.Memberships(rifp.Name)) == 1
	})
	// A general query elicits a fresh report.
	reports := h.m.Stats.OutReports.Get()
	r.m.SendGroupQuery(rifp.Name, inet.IP6{}, 0)
	waitFor(t, "query answered", func() bool { return h.m.Stats.OutReports.Get() > reports })
	// Leave emits a Terminate; the router forgets (§4.1: "routers can
	// be informed more quickly about hosts leaving multicast groups").
	// (The query above also elicited a report for the host's
	// solicited-node group, which legitimately remains.)
	h.l.LeaveGroup(hifp.Name, group)
	waitFor(t, "membership removed", func() bool {
		for _, g := range r.m.Memberships(rifp.Name) {
			if g == group {
				return false
			}
		}
		return true
	})
	if h.m.Stats.OutTerm.Get() == 0 {
		t.Fatal("Terminate not sent")
	}
}

// threeNode builds A --hub1-- R --hub2-- B with static routes and R
// forwarding. mtu2 is the second link's MTU.
func threeNode(t *testing.T, mtu2 int) (a, r, b *node) {
	t.Helper()
	hub1, hub2 := netif.NewHub(), netif.NewHub()
	a, r, b = newNode("a"), newNode("r"), newNode("b")
	aif := a.join(hub1, macA, 1500)
	r1 := r.join(hub1, macR, 1500)
	r2 := r.join(hub2, macR2, mtu2)
	bif := b.join(hub2, macB, mtu2)
	r.l.Forwarding = true

	a.addGlobal(aif, ip6(t, "2001:db8:1::a"), 64)
	r.addGlobal(r1, ip6(t, "2001:db8:1::ffff"), 64)
	r.addGlobal(r2, ip6(t, "2001:db8:2::ffff"), 64)
	b.addGlobal(bif, ip6(t, "2001:db8:2::b"), 64)

	var zero inet.IP6
	a.rt.Add(&route.Entry{Family: inet.AFInet6, Dst: zero[:], Plen: 0,
		Flags: route.FlagUp | route.FlagGateway, Gateway: ip6(t, "2001:db8:1::ffff"), IfName: aif.Name})
	b.rt.Add(&route.Entry{Family: inet.AFInet6, Dst: zero[:], Plen: 0,
		Flags: route.FlagUp | route.FlagGateway, Gateway: ip6(t, "2001:db8:2::ffff"), IfName: bif.Name})
	return a, r, b
}

func TestForwarding6(t *testing.T) {
	a, r, _ := threeNode(t, 1500)
	p := &pinger{}
	p.hook(a.m)
	if err := a.m.SendEcho(ip6(t, "2001:db8:2::b"), 5, 1, []byte("through router")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "forwarded reply", func() bool { return p.count() >= 1 })
	if r.l.Stats.Forwarded.Get() < 2 {
		t.Fatalf("forwarded = %d", r.l.Stats.Forwarded.Get())
	}
}

func TestPathMTUDiscovery(t *testing.T) {
	// §2.2: the router does NOT fragment; it reports Packet Too Big,
	// the source's host route learns the path MTU, and the next send
	// fragments end-to-end.
	a, r, b := threeNode(t, ipv6.MinMTU)
	p := &pinger{}
	p.hook(a.m)
	dst := ip6(t, "2001:db8:2::b")

	if err := a.m.SendEcho(dst, 5, 1, make([]byte, 1200)); err != nil {
		t.Fatal(err)
	}
	// The router must not fragment (unlike IPv4).
	waitFor(t, "PMTU update", func() bool {
		rt, ok := a.rt.Lookup(inet.AFInet6, dst[:])
		return ok && rt.Host() && rt.MTU == ipv6.MinMTU
	})
	if r.l.Stats.OutFrags.Get() != 0 {
		t.Fatal("IPv6 router fragmented")
	}
	if a.m.Stats.PmtuUpdates.Get() == 0 {
		t.Fatal("PmtuUpdates not counted")
	}
	// Retry: now the source fragments end-to-end and B reassembles.
	if err := a.m.SendEcho(dst, 5, 2, make([]byte, 1200)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fragmented echo reply", func() bool { return p.count() >= 1 })
	if a.l.Stats.OutFrags.Get() < 2 {
		t.Fatalf("source OutFrags = %d", a.l.Stats.OutFrags.Get())
	}
	if b.l.Stats.Reassembled.Get() == 0 {
		t.Fatal("B did not reassemble")
	}
}

func TestHopLimitExceeded(t *testing.T) {
	a, _, _ := threeNode(t, 1500)
	var mu sync.Mutex
	var got proto.CtlType
	a.l.Register(proto.UDP, func(*mbuf.Mbuf, *proto.Meta) {}, func(kind proto.CtlType, meta *proto.Meta, contents []byte, mtu int) {
		mu.Lock()
		got = kind
		mu.Unlock()
	})
	pkt := mbuf.New(make([]byte, 16))
	if err := a.l.Output(pkt, inet.IP6{}, ip6(t, "2001:db8:2::b"), proto.UDP, ipv6.OutputOpts{HopLimit: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "time exceeded", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got == proto.CtlTimeExceed
	})
}

func TestNoRouteElicitsUnreach(t *testing.T) {
	a, _, _ := threeNode(t, 1500)
	var mu sync.Mutex
	var got proto.CtlType
	a.l.Register(proto.UDP, func(*mbuf.Mbuf, *proto.Meta) {}, func(kind proto.CtlType, meta *proto.Meta, contents []byte, mtu int) {
		mu.Lock()
		got = kind
		mu.Unlock()
	})
	pkt := mbuf.New(make([]byte, 16))
	// 2001:db8:3:: has no route at R.
	if err := a.l.Output(pkt, inet.IP6{}, ip6(t, "2001:db8:3::1"), proto.UDP, ipv6.OutputOpts{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "unreach", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got == proto.CtlUnreach
	})
}

func TestSourceRouting(t *testing.T) {
	// A sends to B via an explicit route through R's address using a
	// type-0 routing header.
	a, r, _ := threeNode(t, 1500)
	p := &pinger{}
	p.hook(a.m)
	rAddr := ip6(t, "2001:db8:1::ffff")
	dst := ip6(t, "2001:db8:2::b")

	body := make([]byte, 4+16)
	body[0], body[1] = 0, 3 // id=3
	body[2], body[3] = 0, 1 // seq=1
	// Echo body checksum is computed against the FINAL destination...
	// ICMPv6 checksums use the final dst; with a routing header the
	// final dst is the last address. Build the echo against dst.
	src := ip6(t, "2001:db8:1::a")
	msg := marshal(TypeEchoRequest, 0, body, src, dst)
	pkt := mbuf.New(msg)
	err := a.l.Output(pkt, src, rAddr, proto.ICMPv6, ipv6.OutputOpts{
		RoutingAddrs: []inet.IP6{dst},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "source-routed reply", func() bool { return p.count() >= 1 })
	if r.l.Stats.RouteHdrSeen.Get() == 0 {
		t.Fatal("routing header not processed at R")
	}
}

func TestUnknownOptionParamProblem(t *testing.T) {
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	bll := b.linkLocal(0)
	all := a.linkLocal(0)

	// Option type 0xC5: discard + ICMP unless multicast.
	pay := []byte{1, 2, 3, 4}
	pkt := mbuf.New(pay)
	err := a.l.Output(pkt, all, bll, proto.UDP, ipv6.OutputOpts{
		DstOptsList: []ipv6.Option{{Type: 0xc5, Data: []byte{9}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "param problem counted", func() bool { return b.l.Stats.InOptErrors.Get() >= 1 })
	waitFor(t, "param problem received", func() bool { return a.m.Stats.InMsgs.Get() >= 1 })
}

func TestEchoWithHopByHopOptions(t *testing.T) {
	// Skip-action option travels end-to-end without harm; exercises
	// the preparse path (not the fast path).
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	p := &pinger{}
	p.hook(a.m)
	src := a.linkLocal(0)
	dst := b.linkLocal(0)
	body := []byte{0, 9, 0, 1, 'h', 'i'}
	msg := marshal(TypeEchoRequest, 0, body, src, dst)
	err := a.l.Output(mbuf.New(msg), src, dst, proto.ICMPv6, ipv6.OutputOpts{
		HopOpts: []ipv6.Option{{Type: 0x05, Data: []byte{1, 2, 3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "optioned echo reply", func() bool { return p.count() >= 1 })
	if b.l.Stats.FastPathHits.Get() != 0 {
		t.Fatal("optioned packet took the fast path")
	}
}

func TestFragmentationLoopback(t *testing.T) {
	// Oversized self-send fragments via loopback and reassembles.
	hub := netif.NewHub()
	a := newNode("a")
	a.join(hub, macA, 1500)
	p := &pinger{}
	p.hook(a.m)
	self := a.linkLocal(0)
	if err := a.m.SendEcho(self, 1, 1, make([]byte, 60000)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "jumbo self echo", func() bool { return p.count() >= 1 })
	if a.l.Stats.Reassembled.Get() < 2 { // request + reply
		t.Fatalf("Reassembled = %d", a.l.Stats.Reassembled.Get())
	}
}

// injectFragment hand-builds a lone fragment from a to b.
func injectFragment(a, b *node, off int, more bool, id uint32) {
	fh := &ipv6.FragHeader{NextHdr: proto.UDP, Off: off, More: more, ID: id}
	fb := fh.Marshal(nil)
	fb = append(fb, make([]byte, 64)...)
	h := &ipv6.Header{NextHdr: proto.Fragment, HopLimit: 4, PayloadLen: len(fb),
		Src: a.linkLocal(0), Dst: b.linkLocal(0)}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append(fb)
	b.l.Input(b.ifps[0], pkt)
}

func TestReassemblyTimeoutTimeExceeded(t *testing.T) {
	// The paper's footnote said no Time Exceeded could be sent for a
	// reassembly timeout (the offending packet was gone); we retain the
	// first fragment, so the error goes out — but only when fragment
	// zero actually arrived (RFC 2460 §4.5).
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	clk := vclock.NewVirtual(time.Unix(1_000_000, 0))
	virtualize(clk, a, b)
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	var mu sync.Mutex
	var gotType, gotCode uint8
	a.m.OnErrorMsg = func(typ, code uint8, src inet.IP6, inner []byte) {
		mu.Lock()
		gotType, gotCode = typ, code
		mu.Unlock()
	}

	injectFragment(a, b, 0, true, 77) // first fragment, never completed
	clk.Advance(time.Minute)
	b.l.SlowTimo(clk.Now())
	if b.l.Stats.ReasmFails.Get() != 1 {
		t.Fatalf("ReasmFails = %d, want 1", b.l.Stats.ReasmFails.Get())
	}
	mu.Lock()
	typ, code := gotType, gotCode
	mu.Unlock()
	if typ != TypeTimeExceeded || code != 1 {
		t.Fatalf("got type=%d code=%d, want Time Exceeded code 1", typ, code)
	}
}

func TestReassemblyTimeoutWithoutFirstFragmentSilent(t *testing.T) {
	// A timeout where fragment zero never showed must stay silent: the
	// error would have to quote a header we never received.
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	clk := vclock.NewVirtual(time.Unix(1_000_000, 0))
	virtualize(clk, a, b)
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)

	injectFragment(a, b, 128, true, 78) // tail only, no fragment zero
	errsBefore := b.m.Stats.OutErrors.Get()
	clk.Advance(time.Minute)
	b.l.SlowTimo(clk.Now())
	if b.l.Stats.ReasmFails.Get() != 1 {
		t.Fatalf("ReasmFails = %d, want 1", b.l.Stats.ReasmFails.Get())
	}
	if b.m.Stats.OutErrors.Get() != errsBefore {
		t.Fatal("Time Exceeded sent without the first fragment")
	}
}

func TestFastPathAblation(t *testing.T) {
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	p := &pinger{}
	p.hook(a.m)
	b.l.FastPath = true
	a.m.SendEcho(b.linkLocal(0), 1, 1, []byte("fast"))
	waitFor(t, "fast-path reply", func() bool { return p.count() >= 1 })
	if b.l.Stats.FastPathHits.Get() == 0 {
		t.Fatal("fast path not taken for optionless packet")
	}
}

func TestStrictSourceRouteError(t *testing.T) {
	// §4.1: "Extensions have been added to indicate ... errors with
	// strict source routing."  A strict hop that is only reachable
	// through a gateway elicits Unreachable (not-a-neighbor).
	a, r, _ := threeNode(t, 1500)
	var mu sync.Mutex
	var gotType, gotCode uint8
	a.m.OnErrorMsg = func(typ, code uint8, src inet.IP6, inner []byte) {
		mu.Lock()
		gotType, gotCode = typ, code
		mu.Unlock()
	}
	// Source route: via R (on-link hop, fine) then B marked STRICT —
	// but from R, B is on-link, so instead mark a hop beyond R's links.
	farDst := ip6(t, "2001:db8:9::1")
	var zero inet.IP6
	// Give R a gateway route for the far destination so the strict
	// check sees "reachable only via a gateway".
	r.rt.Add(&route.Entry{Family: inet.AFInet6, Dst: zero[:], Plen: 0,
		Flags: route.FlagUp | route.FlagGateway, Gateway: ip6(t, "2001:db8:2::b"), IfName: r.ifps[1].Name})

	src := ip6(t, "2001:db8:1::a")
	body := make([]byte, 4)
	msg := marshal(TypeEchoRequest, 0, body, src, farDst)
	pkt := mbuf.New(msg)
	err := a.l.Output(pkt, src, ip6(t, "2001:db8:1::ffff"), proto.ICMPv6, ipv6.OutputOpts{
		RoutingAddrs:  []inet.IP6{farDst},
		RoutingStrict: 1 << 0, // hop 0 must be a neighbor of R
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "strict-route unreachable", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gotType == TypeDstUnreach && gotCode == UnreachNotNeighbor
	})
}

func TestLooseSourceRouteViaGatewayOK(t *testing.T) {
	// The same route without the strict bit is forwarded normally.
	a, r, _ := threeNode(t, 1500)
	p := &pinger{}
	p.hook(a.m)
	dst := ip6(t, "2001:db8:2::b")
	rAddr := ip6(t, "2001:db8:1::ffff")
	src := ip6(t, "2001:db8:1::a")
	body := []byte{0, 1, 0, 1}
	msg := marshal(TypeEchoRequest, 0, body, src, dst)
	err := a.l.Output(mbuf.New(msg), src, rAddr, proto.ICMPv6, ipv6.OutputOpts{
		RoutingAddrs: []inet.IP6{dst}, // loose: no strict bits
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "loose-routed reply", func() bool { return p.count() >= 1 })
	_ = r
}

func TestNDRequiresHopLimit255(t *testing.T) {
	// A forged NA injected with a forwarded-looking hop limit must be
	// ignored: ND state can only come from on-link peers.
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	target := b.linkLocal(0)

	// Hand-build an NA claiming B's address maps to a bogus MAC, with
	// hop limit 64 (as if routed here from off-link).
	body := make([]byte, 4+16)
	body[0] = 0x20 // override
	copy(body[4:], target[:])
	body = append(body, 2, 1) // tgt lladdr option
	bogus := inet.LinkAddr{0xde, 0xad, 0xde, 0xad, 0xde, 0xad}
	body = append(body, bogus[:]...)
	msg := marshal(TypeNeighborAdvert, 0, body, target, a.linkLocal(0))
	h := &ipv6.Header{NextHdr: proto.ICMPv6, HopLimit: 64, PayloadLen: len(msg),
		Src: target, Dst: a.linkLocal(0)}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append(msg)
	a.l.Input(a.ifps[0], pkt)
	if a.m.Stats.BadHopLimit.Get() != 1 {
		t.Fatalf("BadHopLimit = %d", a.m.Stats.BadHopLimit.Get())
	}
	if a.m.Stats.InNA.Get() != 0 {
		t.Fatal("forged NA processed")
	}
	// The legitimate exchange (hop limit 255) still works.
	p := &pinger{}
	p.hook(a.m)
	a.m.SendEcho(target, 1, 1, nil)
	waitFor(t, "reply after forgery attempt", func() bool { return p.count() >= 1 })
	rt, _ := a.rt.Lookup(inet.AFInet6, target[:])
	if mac, _ := rt.Gateway.(inet.LinkAddr); mac == bogus {
		t.Fatal("bogus MAC installed")
	}
}
