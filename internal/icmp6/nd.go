package icmp6

import (
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/route"
	"bsd6/internal/stat"
)

// Neighbor Discovery (§4.3): IPv6 does not use ARP; neighbors are
// discovered with multicast Neighbor Solicits to the solicited-node
// group and unicast Neighbor Advertisements.  The link-layer mapping
// lives in a cloned host route whose Gateway is the MAC address, with
// this ndEntry as the route's LLInfo.  Neighbors that stop answering
// probes linger and are marked RTF_REJECT, like ARP in 4.4-Lite BSD.

// ND option types.
const (
	optSrcLLAddr  = 1
	optTgtLLAddr  = 2
	optPrefixInfo = 3
	optMTU        = 5
)

// Neighbor reachability states.
type NDState int

const (
	NDIncomplete NDState = iota // resolution in progress
	NDReachable                 // confirmed recently
	NDStale                     // usable, confirmation aged out
	NDProbe                     // unicast re-confirmation in progress
)

func (s NDState) String() string {
	switch s {
	case NDIncomplete:
		return "incomplete"
	case NDReachable:
		return "reachable"
	case NDStale:
		return "stale"
	case NDProbe:
		return "probe"
	}
	return "?"
}

// ND timing parameters.
const (
	ndRetrans      = time.Second
	ndMaxMulticast = 3 // multicast solicits before giving up
	ndMaxUnicast   = 3 // unicast probes before declaring unreachable
	ndReachable    = 30 * time.Second
	ndRejectLinger = 20 * time.Second
	ndMaxQueue     = 8
)

// ndEntry is the LLInfo of a neighbor host route.
type ndEntry struct {
	state     NDState
	confirmed time.Time // when reachability was last confirmed
	tries     int
	lastSent  time.Time
	queue     []*mbuf.Mbuf
	isRouter  bool
}

// EvictPinned implements route.NeighborPin: entries for routers
// learned via Router Discovery are never evicted by the neighbor-cache
// cap — losing the default router to a cache flood would cut off all
// off-link traffic.
func (e *ndEntry) EvictPinned() bool { return e.isRouter }

// ReleaseOnEvict implements route.NeighborRelease: packets queued
// awaiting resolution go back to the mbuf pool when the cap evicts
// this neighbor.
func (e *ndEntry) ReleaseOnEvict() {
	for _, pkt := range e.queue {
		pkt.Free()
	}
	e.queue = nil
}

// NeighborAddr extracts the IPv6 address of a neighbor route.
func neighborAddr(rt *route.Entry) inet.IP6 {
	var a inet.IP6
	copy(a[:], rt.Dst)
	return a
}

// Resolve is installed as the ipv6.Layer's ResolveFunc.
func (m *Module) Resolve(ifp *netif.Interface, rt *route.Entry, nextHop inet.IP6, pkt *mbuf.Mbuf) (inet.LinkAddr, bool) {
	if rt == nil {
		return inet.LinkAddr{}, false
	}
	now := m.l.Routes().Now()
	var mac inet.LinkAddr
	// Fast path: a reachable, unexpired neighbor needs no state
	// transition, so the per-packet cost is one read lock.  Every
	// other case falls through to the write path below.
	fresh := false
	m.l.Routes().View(func() {
		e, _ := rt.LLInfo.(*ndEntry)
		if mv, ok := rt.Gateway.(inet.LinkAddr); ok && e != nil &&
			rt.Flags&route.FlagReject == 0 &&
			e.state == NDReachable && now.Sub(e.confirmed) <= ndReachable {
			mac, fresh = mv, true
		}
	})
	if fresh {
		return mac, true
	}
	result := 0 // 0: unresolved, 1: resolved, 2: resolved + probe
	needSend := false
	m.l.Routes().Mutate(func() {
		e, _ := rt.LLInfo.(*ndEntry)
		if mv, ok := rt.Gateway.(inet.LinkAddr); ok && e != nil && rt.Flags&route.FlagReject == 0 {
			switch e.state {
			case NDReachable:
				if now.Sub(e.confirmed) > ndReachable {
					e.state = NDStale
				}
				mac, result = mv, 1
				return
			case NDStale:
				// Optimistically use the stale mapping and start
				// probing, unless an upper-layer confirmation arrives
				// first.
				e.state = NDProbe
				e.tries = 0
				e.lastSent = now
				mac, result = mv, 2
				return
			case NDProbe:
				mac, result = mv, 1
				return
			}
		}
		if rt.Flags&route.FlagReject != 0 {
			if now.Before(rt.Expire) {
				result = 3 // linger, fail fast
				return
			}
			rt.Flags &^= route.FlagReject
			e = nil
		}
		if e == nil {
			e = &ndEntry{state: NDIncomplete}
			rt.LLInfo = e
		}
		if len(e.queue) < ndMaxQueue {
			e.queue = append(e.queue, pkt)
		} else {
			result = 4 // queue full: drop the arriving packet
		}
		if now.Sub(e.lastSent) >= ndRetrans {
			needSend = true
			e.lastSent = now
			e.tries++
		}
	})
	switch result {
	case 1:
		return mac, true
	case 2:
		m.sendNS(ifp, nextHop, nextHop, false) // unicast probe
		return mac, true
	case 3:
		// Unreachable neighbor lingering with RTF_REJECT: the caller
		// believes the packet was queued, so this path owns it.
		m.l.Drops.DropNote(stat.RV6NoRoute, nextHop.String())
		pkt.Free()
		return inet.LinkAddr{}, false
	case 4:
		m.l.Drops.DropNote(stat.RNDQueueFull, nextHop.String())
		pkt.Free()
		return inet.LinkAddr{}, false
	}
	if needSend {
		m.sendNS(ifp, nextHop, inet.SolicitedNode(nextHop), true)
	}
	return inet.LinkAddr{}, false
}

// sendNS emits a Neighbor Solicit for target. multicast selects the
// solicited-node destination form; dad sends from the unspecified
// address (collision detection, §4.2.1/§4.3).
func (m *Module) sendNS(ifp *netif.Interface, target, dst inet.IP6, includeSrcLL bool) error {
	body := make([]byte, 4+16)
	copy(body[4:], target[:])
	src := inet.IP6{}
	if ll, ok := ifp.LinkLocal6(m.l.Routes().Now()); ok {
		src = ll
	}
	if includeSrcLL && !src.IsUnspecified() {
		body = append(body, optSrcLLAddr, 1)
		body = append(body, ifp.HW[:]...)
	}
	m.Stats.OutNS.Inc()
	return m.sendCtl(TypeNeighborSolicit, 0, body, src, dst, 255, ifp.Name)
}

// sendDadNS emits the duplicate-address-detection solicit: source is
// the unspecified address, destination the target's solicited-node
// group.
func (m *Module) sendDadNS(ifp *netif.Interface, target inet.IP6) error {
	body := make([]byte, 4+16)
	copy(body[4:], target[:])
	m.Stats.OutNS.Inc()
	pkt := buildMsg(TypeNeighborSolicit, 0, body, inet.IP6{}, inet.SolicitedNode(target))
	return m.l.Output(pkt, inet.IP6{}, inet.SolicitedNode(target), proto.ICMPv6, ipv6.OutputOpts{HopLimit: 255, IfName: ifp.Name, NoSecurity: true, UnspecSource: true})
}

// sendNA emits a Neighbor Advertisement for target to dst.
func (m *Module) sendNA(ifp *netif.Interface, target, dst inet.IP6, solicited, override bool) error {
	body := make([]byte, 4+16)
	var flags byte
	if m.isRouterIf(ifp.Name) {
		flags |= 0x80
	}
	if solicited {
		flags |= 0x40
	}
	if override {
		flags |= 0x20
	}
	body[0] = flags
	copy(body[4:], target[:])
	body = append(body, optTgtLLAddr, 1)
	body = append(body, ifp.HW[:]...)
	m.Stats.OutNA.Inc()
	return m.sendCtl(TypeNeighborAdvert, 0, body, target, dst, 255, ifp.Name)
}

// parseNDOpts walks the TLV options after an ND message body.
func parseNDOpts(b []byte) map[byte][]byte {
	opts := make(map[byte][]byte)
	for len(b) >= 2 {
		t := b[0]
		n := int(b[1]) * 8
		if n == 0 || n > len(b) {
			return nil // malformed
		}
		opts[t] = b[2:n]
		b = b[n:]
	}
	return opts
}

// nsInput handles a received Neighbor Solicit: answer for our own
// addresses, detect DAD collisions, and learn the soliciter's
// link-layer address.
func (m *Module) nsInput(body []byte, meta *proto.Meta) {
	if len(body) < 20 {
		m.Stats.InErrors.Inc()
		m.l.Drops.DropNote(stat.RICMP6Short, meta.Src6.String())
		return
	}
	var target inet.IP6
	copy(target[:], body[4:20])
	opts := parseNDOpts(body[20:])
	ifp := m.l.Interface(meta.RcvIf)
	if ifp == nil {
		return
	}

	// DAD collision, receiver side: an NS for an address we hold
	// tentative, sent from the unspecified address, means another node
	// is trying to claim it at the same time.
	if meta.Src6.IsUnspecified() {
		if m.dadCollision(ifp, target) {
			return
		}
		// Plain DAD probe for an address we own: defend it.
		if ifp.HasAddr6(target) {
			m.sendNA(ifp, target, inet.AllNodes, false, true)
		}
		return
	}

	if ll, ok := opts[optSrcLLAddr]; ok && len(ll) >= 6 {
		var mac inet.LinkAddr
		copy(mac[:], ll)
		m.learnNeighbor(ifp, meta.Src6, mac, false)
	}
	if !ifp.HasAddr6(target) {
		return
	}
	// Unicast advertisement back to the soliciter (§4.3: "enough
	// information is known to send a unicast Neighbor Advertisement").
	m.sendNA(ifp, target, meta.Src6, true, true)
}

// naInput handles a Neighbor Advertisement: complete a resolution, or
// detect that our tentative address is already in use.
func (m *Module) naInput(body []byte, meta *proto.Meta) {
	if len(body) < 20 {
		m.Stats.InErrors.Inc()
		m.l.Drops.DropNote(stat.RICMP6Short, meta.Src6.String())
		return
	}
	flags := body[0]
	var target inet.IP6
	copy(target[:], body[4:20])
	opts := parseNDOpts(body[20:])
	ifp := m.l.Interface(meta.RcvIf)
	if ifp == nil {
		return
	}
	// DAD collision, prober side: someone advertises our tentative
	// address.
	if m.dadCollision(ifp, target) {
		return
	}
	var mac inet.LinkAddr
	haveMac := false
	if ll, ok := opts[optTgtLLAddr]; ok && len(ll) >= 6 {
		copy(mac[:], ll)
		haveMac = true
	}
	if !haveMac {
		return
	}
	m.learnNeighborNA(ifp, target, mac, flags&0x80 != 0, flags&0x40 != 0)
}

// learnNeighbor refreshes a neighbor entry from a solicit's source
// link-layer option (creates the host route if a cloning on-link
// prefix exists for it).
func (m *Module) learnNeighbor(ifp *netif.Interface, addr inet.IP6, mac inet.LinkAddr, confirm bool) {
	rts := m.l.Routes()
	rt, ok := rts.Lookup(inet.AFInet6, addr[:])
	if !ok {
		return
	}
	eligible, rePin := false, false
	rts.View(func() {
		host := rt.Host() && rt.Flags&route.FlagLLInfo != 0
		eligible = host && rt.IfName == ifp.Name
		// A link-local neighbor cloned onto the wrong link: the
		// shared radix holds one fe80::/64 per stack, so on a
		// multi-interface node the clone inherits whichever
		// interface added that prefix route last.  ND just heard
		// the neighbor on ifp — that observation, not the radix, is
		// authoritative for link-local scope.
		rePin = host && !eligible && addr.IsLinkLocal() &&
			rt.Flags&route.FlagDynamic != 0
	})
	if rePin {
		rt = rts.Add(&route.Entry{
			Family: inet.AFInet6, Dst: append([]byte(nil), addr[:]...), Plen: 128,
			Flags:  route.FlagUp | route.FlagHost | route.FlagLLInfo | route.FlagDynamic,
			IfName: ifp.Name,
		})
		eligible = true
	}
	if !eligible {
		return
	}
	m.updateEntry(ifp, rt, mac, confirm)
}

// learnNeighborNA installs the advertised mapping.
func (m *Module) learnNeighborNA(ifp *netif.Interface, target inet.IP6, mac inet.LinkAddr, isRouter, solicited bool) {
	rt, ok := m.l.Routes().Lookup(inet.AFInet6, target[:])
	if !ok {
		return
	}
	eligible := false
	m.l.Routes().View(func() {
		eligible = rt.Host() && rt.Flags&route.FlagLLInfo != 0
	})
	if !eligible {
		return
	}
	m.updateEntry(ifp, rt, mac, solicited)
	m.l.Routes().Mutate(func() {
		if e, _ := rt.LLInfo.(*ndEntry); e != nil {
			e.isRouter = isRouter
		}
	})
}

func (m *Module) updateEntry(ifp *netif.Interface, rt *route.Entry, mac inet.LinkAddr, confirm bool) {
	now := m.l.Routes().Now()
	var flush []*mbuf.Mbuf
	m.l.Routes().Mutate(func() {
		e, _ := rt.LLInfo.(*ndEntry)
		if e == nil {
			e = &ndEntry{}
			rt.LLInfo = e
		}
		prev, hadMac := rt.Gateway.(inet.LinkAddr)
		rt.Gateway = mac
		rt.Flags &^= route.FlagReject
		rt.Expire = now.Add(ndReachable)
		if confirm || !hadMac || prev != mac {
			e.state = NDReachable
			e.confirmed = now
		} else if e.state == NDIncomplete {
			e.state = NDStale
		}
		e.tries = 0
		flush = e.queue
		e.queue = nil
	})
	for _, pkt := range flush {
		ifp.Output(mac, netif.EtherTypeIPv6, pkt)
	}
}

// Confirm records upper-layer reachability confirmation (§4.3: "Upper-
// level protocols (e.g. TCP) can also be used to provide reachability
// confirmation").
func (m *Module) Confirm(dst inet.IP6) {
	rt, ok := m.l.Routes().Lookup(inet.AFInet6, dst[:])
	if !ok {
		return
	}
	var gw inet.IP6
	viaGateway := false
	m.l.Routes().View(func() {
		if rt.Flags&route.FlagGateway != 0 {
			if g, ok2 := rt.Gateway.(inet.IP6); ok2 {
				gw, viaGateway = g, true
			}
		}
	})
	if viaGateway {
		if grt, ok3 := m.l.Routes().Lookup(inet.AFInet6, gw[:]); ok3 {
			rt = grt
		}
	}
	now := m.l.Routes().Now()
	m.l.Routes().Mutate(func() {
		if e, _ := rt.LLInfo.(*ndEntry); e != nil && e.state != NDIncomplete {
			e.state = NDReachable
			e.confirmed = now
			e.tries = 0
			rt.Expire = now.Add(ndReachable)
		}
	})
}

// NeighborState reports the reachability state of a neighbor, for
// netstat -r style display.
func (m *Module) NeighborState(dst inet.IP6) (NDState, bool) {
	rt, ok := m.l.Routes().Lookup(inet.AFInet6, dst[:])
	if !ok {
		return 0, false
	}
	var st NDState
	found := false
	m.l.Routes().View(func() {
		if rt.Flags&route.FlagLLInfo == 0 {
			return
		}
		if e, _ := rt.LLInfo.(*ndEntry); e != nil {
			st, found = e.state, true
		}
	})
	return st, found
}

// ndTimer drives resolution retries, probe timeouts, and RTF_REJECT
// marking for unreachable neighbors.
func (m *Module) ndTimer(now time.Time) {
	type resend struct {
		ifp     *netif.Interface
		target  inet.IP6
		unicast bool
	}
	var resends []resend
	// Snapshot candidate entries while walking (the walk holds the
	// table lock), then drive each state machine under Mutate.
	var candidates []*route.Entry
	m.l.Routes().Walk(inet.AFInet6, func(rt *route.Entry) bool {
		if _, ok := rt.LLInfo.(*ndEntry); ok {
			candidates = append(candidates, rt)
		}
		return true
	})
	for _, rt := range candidates {
		ifp := m.l.Interface(rt.IfName)
		m.l.Routes().Mutate(func() {
			e, _ := rt.LLInfo.(*ndEntry)
			if e == nil {
				return
			}
			switch e.state {
			case NDIncomplete:
				if now.Sub(e.lastSent) >= ndRetrans {
					if e.tries >= ndMaxMulticast {
						rt.Flags |= route.FlagReject
						rt.Expire = now.Add(ndRejectLinger)
						for _, p := range e.queue {
							p.Free() // resolution failed: pool the queued packets
						}
						e.queue = nil
						e.tries = 0
						m.Stats.NdTimeouts.Inc()
					} else if ifp != nil {
						e.lastSent = now
						e.tries++
						resends = append(resends, resend{ifp, neighborAddr(rt), false})
					}
				}
			case NDProbe:
				if now.Sub(e.lastSent) >= ndRetrans {
					if e.tries >= ndMaxUnicast {
						// Unreachable: linger with RTF_REJECT (§4.3).
						rt.Flags |= route.FlagReject
						rt.Expire = now.Add(ndRejectLinger)
						e.state = NDIncomplete
						e.tries = 0
						m.Stats.NdTimeouts.Inc()
					} else if ifp != nil {
						e.lastSent = now
						e.tries++
						resends = append(resends, resend{ifp, neighborAddr(rt), true})
					}
				}
			case NDReachable:
				if now.Sub(e.confirmed) > ndReachable {
					e.state = NDStale
				}
			}
		})
	}
	for _, r := range resends {
		dst := inet.SolicitedNode(r.target)
		if r.unicast {
			dst = r.target
		}
		m.sendNS(r.ifp, r.target, dst, !r.unicast)
	}
}

//
// Duplicate Address Detection (§4.2.1, §4.3): after configuring an
// address tentatively, multicast a Neighbor Solicit for it; silence
// means the address is unique.  (The paper's alpha release left this
// unimplemented and sketched the approach; this is that approach, run
// from the stack's timer rather than trapping a user process in
// ioctl.)
//

const (
	dadProbes   = 2
	dadInterval = time.Second
)

type dadState struct {
	ifName string
	sent   int
	nextAt time.Time
	done   chan struct{} // closed when DAD concludes
	dup    bool
}

// StartDAD begins duplicate address detection for a tentative address.
// The returned channel closes when DAD concludes; check the address's
// Tentative/Duplicated flags afterwards.
func (m *Module) StartDAD(ifp *netif.Interface, addr inet.IP6) <-chan struct{} {
	m.Stats.DadStarted.Inc()
	// Join the solicited-node group first so a defender's NA (sent to
	// the group or all-nodes) and competing DAD probes reach us.
	m.l.JoinGroup(ifp.Name, inet.SolicitedNode(addr))
	st := &dadState{ifName: ifp.Name, done: make(chan struct{}), nextAt: m.l.Routes().Now()}
	m.mu.Lock()
	m.dad[addr] = st
	m.mu.Unlock()
	m.dadTick(m.l.Routes().Now())
	return st.done
}

// dadCollision handles evidence that addr is claimed elsewhere. It
// returns true if a DAD run was concluded as duplicate.
func (m *Module) dadCollision(ifp *netif.Interface, addr inet.IP6) bool {
	m.mu.Lock()
	st := m.dad[addr]
	if st == nil || st.ifName != ifp.Name {
		m.mu.Unlock()
		return false
	}
	delete(m.dad, addr)
	st.dup = true
	m.mu.Unlock()
	m.Stats.DadDuplicate.Inc()
	ifp.UpdateAddr6(addr, func(a *netif.Addr6) {
		a.Tentative = false
		a.Duplicated = true
	})
	close(st.done)
	return true
}

// dadTick advances every DAD run: send probes, conclude unique after
// the last quiet interval.
func (m *Module) dadTick(now time.Time) {
	type probe struct {
		ifp  *netif.Interface
		addr inet.IP6
	}
	var probes []probe
	var unique []inet.IP6
	var uniqueSt []*dadState
	m.mu.Lock()
	for addr, st := range m.dad {
		if now.Before(st.nextAt) {
			continue
		}
		if st.sent < dadProbes {
			if ifp := m.l.Interface(st.ifName); ifp != nil {
				probes = append(probes, probe{ifp, addr})
			}
			st.sent++
			st.nextAt = now.Add(dadInterval)
		} else {
			delete(m.dad, addr)
			unique = append(unique, addr)
			uniqueSt = append(uniqueSt, st)
		}
	}
	m.mu.Unlock()
	for _, p := range probes {
		m.sendDadNS(p.ifp, p.addr)
	}
	for i, addr := range unique {
		st := uniqueSt[i]
		if ifp := m.l.Interface(st.ifName); ifp != nil {
			ifp.UpdateAddr6(addr, func(a *netif.Addr6) { a.Tentative = false })
		}
		close(st.done)
	}
}

// FastTimo drives the module's one-second work: ND retransmissions,
// DAD probes, router advertisements, address lifetime expiry.
func (m *Module) FastTimo(now time.Time) {
	m.ndTimer(now)
	m.dadTick(now)
	m.raTick(now)
	m.expireTick(now)
}
