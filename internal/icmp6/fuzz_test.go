package icmp6

import (
	"testing"

	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
)

// FuzzICMP6Parse drives arbitrary ICMPv6 messages through a full
// node: base header, pseudo-header checksum (recomputed so the fuzzer
// reaches past the checksum gate), then the type switch — echo, the
// ND message family with its options walk, MLD, and the error-message
// reflection paths.  Each message is also delivered to the
// solicited-node multicast address, the path the ND sanity checks
// care about.  The target property is simply that no input crashes
// the module.
func FuzzICMP6Parse(f *testing.F) {
	nsBody := append([]byte{0, 0, 0, 0}, make([]byte, 16)...) // reserved + target
	nsBody = append(nsBody, 1, 1, 2, 0, 0, 0, 0, 0xa)         // source lladdr option
	f.Add(uint8(TypeNeighborSolicit), uint8(0), nsBody)
	f.Add(uint8(TypeEchoRequest), uint8(0), []byte{0, 7, 0, 1, 'h', 'i'})
	f.Add(uint8(TypeRouterAdvert), uint8(0), []byte{64, 0, 0, 30, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(TypeTimeExceeded), uint8(1), make([]byte, 52))
	f.Add(uint8(TypeNeighborAdvert), uint8(0), []byte{0xe0})

	f.Fuzz(func(t *testing.T, typ, code uint8, body []byte) {
		hub := netif.NewHub()
		a, b := newNode("a"), newNode("b")
		a.join(hub, macA, 1500)
		b.join(hub, macB, 1500)
		src, dst := a.linkLocal(0), b.linkLocal(0)

		deliver := func(to inet.IP6) {
			msg := marshal(typ, code, body, src, to)
			h := &ipv6.Header{NextHdr: proto.ICMPv6, HopLimit: 255,
				PayloadLen: len(msg), Src: src, Dst: to}
			pkt := mbuf.New(h.Marshal(nil))
			pkt.Append(msg)
			b.l.Input(b.ifps[0], pkt)
		}
		deliver(dst)
		deliver(inet.SolicitedNode(dst))
		deliver(inet.AllNodes)
	})
}
