package icmp6

import (
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/route"
	"bsd6/internal/stat"
)

// Router Discovery and stateless address autoconfiguration (§4.2):
// routers multicast periodic Router Advertisements (and answer Router
// Solicits) carrying suggested hop limits, link MTUs, and on-link
// prefixes; hosts install default routes, adopt the parameters, and —
// for prefixes flagged autonomous — prepend the advertised prefix to
// their interface token to form a globally routable address with
// lifetimes (completing the second phase of autoconfiguration).

// PrefixInfo is one advertised prefix.
type PrefixInfo struct {
	Prefix       inet.IP6
	Plen         int
	OnLink       bool          // hosts may treat destinations under it as neighbors
	Autonomous   bool          // hosts may autoconfigure an address from it
	ValidLft     time.Duration // 0 = infinite
	PreferredLft time.Duration // 0 = infinite
}

// RouterConfig configures Router Advertisement emission on one
// interface of a router.
type RouterConfig struct {
	Interval    time.Duration // period between unsolicited RAs
	Lifetime    time.Duration // default-router lifetime advertised
	CurHopLimit uint8         // suggested hop limit, 0 = unspecified
	LinkMTU     int           // suggested MTU, 0 = none
	Prefixes    []PrefixInfo
}

// EnableRouter turns on router behavior for an interface: joins the
// all-routers group and begins advertising.
func (m *Module) EnableRouter(ifName string, cfg RouterConfig) error {
	if cfg.Interval == 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Lifetime == 0 {
		cfg.Lifetime = 3 * cfg.Interval
	}
	if err := m.l.JoinGroup(ifName, inet.AllRouters); err != nil {
		return err
	}
	m.mu.Lock()
	m.rcfg[ifName] = &cfg
	m.raAt[ifName] = m.l.Routes().Now() // advertise immediately
	m.mu.Unlock()
	if ifp := m.l.Interface(ifName); ifp != nil {
		// Routers listen to all multicast so group Reports sent to
		// arbitrary groups reach them (§4.1).
		ifp.SetFlags(netif.FlagAllMulti|netif.FlagRouter, true)
	}
	m.l.Forwarding = true
	return nil
}

func (m *Module) isRouterIf(ifName string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rcfg[ifName] != nil
}

// lifetimeSeconds encodes a lifetime Duration for the wire (0 means
// infinite, encoded as all-ones).
func lifetimeSeconds(d time.Duration) uint32 {
	if d == 0 {
		return 0xffffffff
	}
	return uint32(d / time.Second)
}

func lifetimeDuration(s uint32) time.Duration {
	if s == 0xffffffff {
		return 0
	}
	return time.Duration(s) * time.Second
}

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func get32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// sendRA emits a Router Advertisement on ifName.
func (m *Module) sendRA(ifName string, dst inet.IP6) error {
	m.mu.Lock()
	cfg := m.rcfg[ifName]
	m.mu.Unlock()
	ifp := m.l.Interface(ifName)
	if cfg == nil || ifp == nil {
		return nil
	}
	body := make([]byte, 12)
	body[0] = cfg.CurHopLimit
	lt := uint16(cfg.Lifetime / time.Second)
	body[2], body[3] = byte(lt>>8), byte(lt)
	// reachable time / retrans timer left 0 (unspecified)

	// Source link-layer option.
	body = append(body, optSrcLLAddr, 1)
	body = append(body, ifp.HW[:]...)
	// MTU option (§4.2.2: "suggested MTUs on variable-MTU links").
	if cfg.LinkMTU > 0 {
		opt := make([]byte, 8)
		opt[0], opt[1] = optMTU, 1
		put32(opt[4:], uint32(cfg.LinkMTU))
		body = append(body, opt...)
	}
	// Prefix information options.
	for _, p := range cfg.Prefixes {
		opt := make([]byte, 32)
		opt[0], opt[1] = optPrefixInfo, 4
		opt[2] = byte(p.Plen)
		if p.OnLink {
			opt[3] |= 0x80
		}
		if p.Autonomous {
			opt[3] |= 0x40
		}
		put32(opt[4:], lifetimeSeconds(p.ValidLft))
		put32(opt[8:], lifetimeSeconds(p.PreferredLft))
		copy(opt[16:], p.Prefix[:])
		body = append(body, opt...)
	}
	m.Stats.OutRA.Inc()
	return m.sendCtl(TypeRouterAdvert, 0, body, inet.IP6{}, dst, 255, ifName)
}

// SendRouterSolicit asks routers on the link to advertise now
// (beginning the second phase of autoconfiguration, §4.2.1).
func (m *Module) SendRouterSolicit(ifName string) error {
	ifp := m.l.Interface(ifName)
	if ifp == nil {
		return nil
	}
	body := make([]byte, 4)
	if _, ok := ifp.LinkLocal6(m.l.Routes().Now()); ok {
		body = append(body, optSrcLLAddr, 1)
		body = append(body, ifp.HW[:]...)
	}
	m.Stats.OutRS.Inc()
	return m.sendCtl(TypeRouterSolicit, 0, body, inet.IP6{}, inet.AllRouters, 255, ifName)
}

// rsInput (router side) answers a solicit with an advertisement to
// all-nodes.
func (m *Module) rsInput(body []byte, meta *proto.Meta) {
	if !m.isRouterIf(meta.RcvIf) {
		return
	}
	if opts := parseNDOpts(body[4:]); opts != nil {
		if ll, ok := opts[optSrcLLAddr]; ok && len(ll) >= 6 && !meta.Src6.IsUnspecified() {
			var mac inet.LinkAddr
			copy(mac[:], ll)
			if ifp := m.l.Interface(meta.RcvIf); ifp != nil {
				m.ensureNeighbor(ifp, meta.Src6, mac, false)
			}
		}
	}
	m.sendRA(meta.RcvIf, inet.AllNodes)
}

// raInput (host side) adopts router parameters: default route, hop
// limit, link MTU, on-link prefixes, autoconfigured addresses.
func (m *Module) raInput(body []byte, meta *proto.Meta) {
	if len(body) < 12 || !meta.Src6.IsLinkLocal() {
		m.Stats.InErrors.Inc()
		m.l.Drops.DropNote(stat.RICMP6Short, meta.Src6.String())
		return
	}
	ifp := m.l.Interface(meta.RcvIf)
	if ifp == nil {
		return
	}
	if m.isRouterIf(meta.RcvIf) {
		return // routers don't autoconfigure from peers
	}
	now := m.l.Routes().Now()
	curHop := body[0]
	routerLife := time.Duration(uint16(body[2])<<8|uint16(body[3])) * time.Second
	opts := parseNDOpts(body[12:])
	if opts == nil {
		m.Stats.InErrors.Inc()
		m.l.Drops.DropNote(stat.RICMP6Short, meta.Src6.String())
		return
	}

	// Learn the router as a neighbor, pinned against cache eviction.
	if ll, ok := opts[optSrcLLAddr]; ok && len(ll) >= 6 {
		var mac inet.LinkAddr
		copy(mac[:], ll)
		m.ensureNeighbor(ifp, meta.Src6, mac, true)
	}

	// Default route via the advertising router.
	var zero inet.IP6
	if routerLife > 0 {
		m.l.Routes().Add(&route.Entry{
			Family: inet.AFInet6, Dst: zero[:], Plen: 0,
			Flags:   route.FlagUp | route.FlagGateway | route.FlagDynamic,
			Gateway: meta.Src6, IfName: ifp.Name,
			Expire: now.Add(routerLife),
		})
		m.mu.Lock()
		m.routers[meta.Src6] = now.Add(routerLife)
		m.mu.Unlock()
	} else {
		m.l.Routes().Delete(inet.AFInet6, zero[:], 0)
		m.mu.Lock()
		delete(m.routers, meta.Src6)
		m.mu.Unlock()
	}

	// Suggested hop limit (§4.2.2).
	if curHop > 0 {
		m.l.DefaultHopLimit = curHop
	}
	// Suggested MTU.
	if mb, ok := opts[optMTU]; ok && len(mb) >= 6 {
		if mtu := int(get32(mb[2:])); mtu > 0 && mtu < ifp.MTU() {
			ifp.SetMTU(mtu)
		}
	}

	// Prefix options can repeat; parseNDOpts keeps only the last of a
	// type, so rescan for all prefix options.
	for b := body[12:]; len(b) >= 2; {
		n := int(b[1]) * 8
		if n == 0 || n > len(b) {
			break
		}
		if b[0] == optPrefixInfo && n >= 32 {
			m.prefixInput(ifp, b[:n], now)
		}
		b = b[n:]
	}
}

// prefixInput applies one advertised prefix: an on-link cloning route,
// and/or an autoconfigured address (§4.2.2: "The node then takes the
// token from its link-local address, and prepends the advertised
// prefix to form an automatically configured globally routable
// address").
func (m *Module) prefixInput(ifp *netif.Interface, opt []byte, now time.Time) {
	plen := int(opt[2])
	onLink := opt[3]&0x80 != 0
	auto := opt[3]&0x40 != 0
	validLft := lifetimeDuration(get32(opt[4:]))
	prefLft := lifetimeDuration(get32(opt[8:]))
	var prefix inet.IP6
	copy(prefix[:], opt[16:32])
	if prefix.IsLinkLocal() || prefix.IsMulticast() || plen <= 0 || plen > 128 {
		return
	}

	if onLink {
		e := &route.Entry{
			Family: inet.AFInet6, Dst: append([]byte(nil), prefix[:]...), Plen: plen,
			Flags:  route.FlagUp | route.FlagCloning | route.FlagLLInfo | route.FlagDynamic,
			IfName: ifp.Name,
		}
		if validLft != 0 {
			e.Expire = now.Add(validLft)
		}
		m.l.Routes().Add(e)
	}

	if auto && plen == 64 {
		ll, ok := ifp.LinkLocal6(now)
		if !ok {
			return
		}
		addr := inet.WithPrefix(prefix, plen, ll)
		if ifp.HasAddr6(addr) {
			// Refresh lifetimes (this is how renumbering shortens the
			// old prefix's lifetime and introduces the new one).
			ifp.UpdateAddr6(addr, func(a *netif.Addr6) {
				a.Created = now
				a.ValidLft = validLft
				a.PreferredLft = prefLft
			})
			return
		}
		err := ifp.AddAddr6(netif.Addr6{
			Addr: addr, Plen: plen, Autoconf: true, Tentative: true,
			Created: now, ValidLft: validLft, PreferredLft: prefLft,
		})
		if err != nil {
			return
		}
		m.StartDAD(ifp, addr)
	}
}

// ensureNeighbor installs a resolved neighbor host route (used for
// routers learned via RA/RS options).  isRouter marks the ND entry as
// a router, which pins it against neighbor-cache eviction.
func (m *Module) ensureNeighbor(ifp *netif.Interface, addr inet.IP6, mac inet.LinkAddr, isRouter bool) {
	rt, ok := m.l.Routes().Lookup(inet.AFInet6, addr[:])
	host := false
	if ok {
		m.l.Routes().View(func() { host = rt.Host() })
	}
	if !ok || !host {
		rt = m.l.Routes().Add(&route.Entry{
			Family: inet.AFInet6, Dst: append([]byte(nil), addr[:]...), Plen: 128,
			Flags: route.FlagUp | route.FlagHost | route.FlagLLInfo | route.FlagDynamic, IfName: ifp.Name,
		})
	}
	m.updateEntry(ifp, rt, mac, false)
	if isRouter {
		m.l.Routes().Mutate(func() {
			if e, _ := rt.LLInfo.(*ndEntry); e != nil {
				e.isRouter = true
			}
		})
	}
}

// raTick emits scheduled unsolicited advertisements.
func (m *Module) raTick(now time.Time) {
	var due []string
	m.mu.Lock()
	for name, at := range m.raAt {
		if cfg := m.rcfg[name]; cfg != nil && !now.Before(at) {
			due = append(due, name)
			m.raAt[name] = now.Add(cfg.Interval)
		}
	}
	m.mu.Unlock()
	for _, name := range due {
		m.sendRA(name, inet.AllNodes)
	}
}

// expireTick removes addresses past their valid lifetime (§4.2.2
// renumbering) and leaves their solicited-node groups.
func (m *Module) expireTick(now time.Time) {
	for _, ifp := range m.l.Interfaces() {
		for _, addr := range ifp.ExpireAddrs6(now) {
			m.l.LeaveGroup(ifp.Name, inet.SolicitedNode(addr))
		}
	}
}

// Routers lists the currently known default routers (host side).
func (m *Module) Routers(now time.Time) []inet.IP6 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []inet.IP6
	for r, exp := range m.routers {
		if now.Before(exp) {
			out = append(out, r)
		}
	}
	return out
}
