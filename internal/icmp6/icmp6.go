// Package icmp6 implements ICMPv6 (§4): the traditional echo and error
// messages, plus everything ICMPv6 absorbed from formerly separate
// protocols — IGMP group membership, ARP (as Neighbor Discovery),
// ICMP Router Discovery (as Router Solicit/Advertise), and stateless
// address autoconfiguration.
//
// The §4 differences from ICMPv4 are all here: the checksum includes a
// pseudo-header; the high bit of the type distinguishes informational
// from error messages; group/neighbor/router functions are ICMPv6
// messages (and therefore can be protected by IP security, §4); and
// Router Advertisements drive address autoconfiguration with lifetimes.
package icmp6

import (
	"strconv"
	"sync"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/route"
	"bsd6/internal/stat"
)

// ICMPv6 message types. The high bit set marks informational messages
// (§4: "the difference between informational messages and error
// messages is now indicated by the high bit").
const (
	TypeDstUnreach   = 1
	TypePacketTooBig = 2
	TypeTimeExceeded = 3
	TypeParamProblem = 4

	TypeEchoRequest = 128
	TypeEchoReply   = 129
	// Group membership (absorbed IGMP, §4.1).
	TypeGroupQuery     = 130
	TypeGroupReport    = 131
	TypeGroupTerminate = 132
	// Neighbor/Router discovery (absorbed ARP + router discovery).
	TypeRouterSolicit   = 133
	TypeRouterAdvert    = 134
	TypeNeighborSolicit = 135
	TypeNeighborAdvert  = 136
)

// IsError reports whether an ICMPv6 type is an error message.
func IsError(typ uint8) bool { return typ&0x80 == 0 }

// Destination Unreachable codes.
const (
	UnreachNoRoute     = 0
	UnreachAdminProhib = 1
	UnreachNotNeighbor = 2 // strict source routing failed (§4.1)
	UnreachAddr        = 3
	UnreachPort        = 4
)

// Stats counts ICMPv6 events.
type Stats struct {
	InMsgs       stat.Counter
	InErrors     stat.Counter
	InEchos      stat.Counter
	InEchoReps   stat.Counter
	InNS, InNA   stat.Counter
	InRS, InRA   stat.Counter
	InQueries    stat.Counter
	InReports    stat.Counter
	OutMsgs      stat.Counter
	OutErrors    stat.Counter
	OutEchoReps  stat.Counter
	OutNS, OutNA stat.Counter
	OutRS, OutRA stat.Counter
	OutReports   stat.Counter
	OutTerm      stat.Counter
	RateLimited  stat.Counter
	BadHopLimit  stat.Counter
	DadStarted   stat.Counter
	DadDuplicate stat.Counter
	PmtuUpdates  stat.Counter
	NdTimeouts   stat.Counter
}

// Module is the ICMPv6 instance of one stack, owning neighbor
// discovery, router discovery, autoconfiguration and group state.
type Module struct {
	l  *ipv6.Layer
	mu sync.Mutex

	Stats Stats
	// OnEcho receives echo replies (ping6).
	OnEcho func(src inet.IP6, id, seq uint16, payload []byte)
	// InputPolicy is ipsec_input_policy applied to echo traffic: under
	// a require-authentication system policy, "unauthenticated ping
	// will silently fail as if the destination system were not
	// reachable at all" (§5.3). nil permits everything.
	InputPolicy func(pkt *mbuf.Mbuf, dst inet.IP6, socket any) bool
	// PolicyDrops counts echoes suppressed by InputPolicy.
	PolicyDrops stat.Counter
	// OnErrorMsg observes received ICMPv6 error messages (type, code,
	// the reporting node, and the embedded offending packet) — the raw
	// ICMPv6 socket view that traceroute-style tools need.
	OnErrorMsg func(typ, code uint8, src inet.IP6, inner []byte)

	// Router configuration; nil on hosts.
	rcfg map[string]*RouterConfig // by interface name
	raAt map[string]time.Time     // next scheduled RA per interface

	dad map[inet.IP6]*dadState

	// Host-side router list (learned from RAs).
	routers map[inet.IP6]time.Time // router lladdr -> expiry

	// Router-side multicast membership cache (learned from Reports).
	members map[groupKey]time.Time

	// MinPMTU clamps Packet Too Big updates.  It defaults to the IPv6
	// minimum link MTU (RFC 1981/2460: no conforming path is smaller),
	// so a forged PTB cannot shrink a path — and TCP's derived MSS —
	// below 1280.
	MinPMTU int

	// ErrPPS bounds outbound error messages per second (RFC 1885
	// §2.4(f): a node SHOULD limit the rate of error messages it
	// originates, or a corruption storm is amplified 1:1).  Zero means
	// DefaultErrPPS; negative disables limiting.
	ErrPPS    int
	errTokens float64
	errLast   time.Time
}

// DefaultErrPPS is the default outbound error-message budget.
const DefaultErrPPS = 100

// Attach creates the module, registers it in the IPv6 protocol switch,
// and installs the layer's error sink and ND resolver.
func Attach(l *ipv6.Layer) *Module {
	m := &Module{
		l:       l,
		rcfg:    make(map[string]*RouterConfig),
		raAt:    make(map[string]time.Time),
		dad:     make(map[inet.IP6]*dadState),
		routers: make(map[inet.IP6]time.Time),
		MinPMTU: ipv6.MinMTU,
	}
	l.Register(proto.ICMPv6, m.input, nil)
	l.Error = m.LayerError
	l.Resolve = m.Resolve
	l.OnGroupChange = m.groupChange
	return m
}

// Layer returns the IPv6 layer the module is attached to.
func (m *Module) Layer() *ipv6.Layer { return m.l }

// marshal builds an ICMPv6 message with its pseudo-header checksum
// (§4: ICMPv6, "like TCP and UDP, requires a pseudo-header to be
// included in its checksum calculation").
func marshal(typ, code uint8, body []byte, src, dst inet.IP6) []byte {
	b := make([]byte, 4+len(body))
	b[0], b[1] = typ, code
	copy(b[4:], body)
	ck := inet.TransportChecksum6(src, dst, proto.ICMPv6, b)
	b[2], b[3] = byte(ck>>8), byte(ck)
	return b
}

// buildMsg is marshal into a pooled wire buffer with the checksum
// fused into the body copy (inet.SumCopy): the message body is
// traversed once, and the IPv6 header will land in the slab's
// headroom on output.  Byte-for-byte identical to mbuf.New(marshal(…))
// — the differential tests hold it to that.
func buildMsg(typ, code uint8, body []byte, src, dst inet.IP6) *mbuf.Mbuf {
	tlen := 4 + len(body)
	pkt := mbuf.Get(tlen)
	b := pkt.Bytes()
	b[0], b[1], b[2], b[3] = typ, code, 0, 0
	sum := inet.PseudoHeader6(src, dst, uint32(tlen), proto.ICMPv6)
	sum = inet.Sum(sum, b[:4])
	sum = inet.SumCopy(sum, b[4:], body)
	ck := inet.Fold(sum)
	b[2], b[3] = byte(ck>>8), byte(ck)
	return pkt
}

// send emits an ICMPv6 message. hops 0 means the layer default; ND
// messages pass 255.
func (m *Module) send(typ, code uint8, body []byte, src, dst inet.IP6, hops uint8, ifName string) error {
	return m.sendOpt(typ, code, body, src, dst, hops, ifName, false)
}

// sendCtl emits a neighbor/router/group control message.  These bypass
// the IP security output policy: they are the bootstrap path that
// discovers the very neighbors secured traffic is sent to (the paper
// notes ND *can* be secured when appropriate associations exist, §4 —
// with manually keyed multicast associations; absent those, control
// traffic must not deadlock behind a require-security policy).
func (m *Module) sendCtl(typ, code uint8, body []byte, src, dst inet.IP6, hops uint8, ifName string) error {
	return m.sendOpt(typ, code, body, src, dst, hops, ifName, true)
}

func (m *Module) sendOpt(typ, code uint8, body []byte, src, dst inet.IP6, hops uint8, ifName string, noSec bool) error {
	if src.IsUnspecified() {
		// The checksum needs the final source; select it now.
		var ifp *netif.Interface
		if ifName != "" {
			ifp = m.l.Interface(ifName)
		}
		if s, ok := m.l.SourceFor(dst, ifp); ok {
			src = s
		}
	}
	m.Stats.OutMsgs.Inc()
	pkt := buildMsg(typ, code, body, src, dst)
	return m.l.Output(pkt, src, dst, proto.ICMPv6, ipv6.OutputOpts{HopLimit: hops, IfName: ifName, NoSecurity: noSec})
}

// SendEcho emits an echo request (ping6, §4.1).
func (m *Module) SendEcho(dst inet.IP6, id, seq uint16, payload []byte) error {
	return m.SendEchoHops(dst, id, seq, payload, 0)
}

// SendEchoHops emits an echo request with an explicit hop limit
// (traceroute-style probing; 0 means the layer default).
func (m *Module) SendEchoHops(dst inet.IP6, id, seq uint16, payload []byte, hops uint8) error {
	body := make([]byte, 4+len(payload))
	body[0], body[1] = byte(id>>8), byte(id)
	body[2], body[3] = byte(seq>>8), byte(seq)
	copy(body[4:], payload)
	return m.send(TypeEchoRequest, 0, body, inet.IP6{}, dst, hops, "")
}

// LayerError is the ipv6.Layer error sink: it converts layer trigger
// points into wire messages.
func (m *Module) LayerError(kind int, code uint8, param uint32, orig *mbuf.Mbuf, rcvIf string) {
	var typ uint8
	switch kind {
	case ipv6.ErrDstUnreach:
		typ = TypeDstUnreach
	case ipv6.ErrPacketTooBig:
		typ = TypePacketTooBig
	case ipv6.ErrTimeExceeded:
		typ = TypeTimeExceeded
	case ipv6.ErrParamProblem:
		typ = TypeParamProblem
	default:
		return
	}
	m.SendError(typ, code, param, orig, rcvIf)
}

// SendPTB emits a Packet Too Big about orig advertising the given
// MTU, clamped at the module's minimum (MinPMTU) so no sender — the
// tunnel nested-PMTU translator included — can advertise a path below
// what every IPv6 link guarantees.
func (m *Module) SendPTB(mtu int, orig *mbuf.Mbuf, rcvIf string) {
	if mtu < m.MinPMTU {
		mtu = m.MinPMTU
	}
	m.SendError(TypePacketTooBig, 0, uint32(mtu), orig, rcvIf)
}

// SendError emits an ICMPv6 error about the received packet orig,
// applying the suppression rules: never about an ICMPv6 error, a
// multicast-sourced or unspecified-sourced packet, or (except Packet
// Too Big) a multicast-destined packet.
func (m *Module) SendError(typ, code uint8, param uint32, orig *mbuf.Mbuf, rcvIf string) {
	ob := orig.CopyBytes()
	oh, err := ipv6.Parse(ob)
	if err != nil {
		return
	}
	if oh.Src.IsUnspecified() || oh.Src.IsMulticast() {
		return
	}
	if oh.Dst.IsMulticast() && typ != TypePacketTooBig && !(typ == TypeParamProblem && code == ipv6.ParamUnknownOpt) {
		return
	}
	// Never answer an ICMPv6 error with an error.
	if info, perr := ipv6.Preparse(ob, false); perr == nil && info.Final == proto.ICMPv6 {
		if info.FinalOff < len(ob) && IsError(ob[info.FinalOff]) {
			return
		}
	}
	// Rate-limit what survives the suppression rules (RFC 1885): under
	// a corruption or loss storm the stack must not amplify every bad
	// packet into an outbound error.
	if !m.errAllow() {
		m.Stats.RateLimited.Inc()
		m.l.Drops.DropNote(stat.RICMP6RateLimited, oh.Src.String())
		return
	}
	// Body: 4-byte parameter + as much of the offender as fits in the
	// minimum MTU.
	room := ipv6.MinMTU - ipv6.HeaderLen - 8
	if len(ob) > room {
		ob = ob[:room]
	}
	body := make([]byte, 4+len(ob))
	body[0] = byte(param >> 24)
	body[1] = byte(param >> 16)
	body[2] = byte(param >> 8)
	body[3] = byte(param)
	copy(body[4:], ob)
	m.Stats.OutErrors.Inc()
	m.send(typ, code, body, inet.IP6{}, oh.Src, 0, rcvIf)
}

// errAllow takes one token from the outbound-error bucket, refilled at
// ErrPPS tokens per second off the stack's (virtual) clock.
func (m *Module) errAllow() bool {
	rate := m.ErrPPS
	if rate < 0 {
		return true
	}
	if rate == 0 {
		rate = DefaultErrPPS
	}
	now := m.l.Routes().Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.errLast.IsZero() {
		m.errTokens = float64(rate) // full bucket on first use
	} else {
		m.errTokens += now.Sub(m.errLast).Seconds() * float64(rate)
		if m.errTokens > float64(rate) {
			m.errTokens = float64(rate)
		}
	}
	m.errLast = now
	if m.errTokens < 1 {
		return false
	}
	m.errTokens--
	return true
}

// input is the protocol-switch entry for ICMPv6. The packet begins at
// the ICMPv6 header; meta carries the addresses for the pseudo-header.
// It is the packet's terminal consumer: every branch below that keeps
// data (echo callbacks, ND handlers, ctl dispatch) copies what it
// needs before returning, so the buffer goes back to the pool here.
func (m *Module) input(pkt *mbuf.Mbuf, meta *proto.Meta) {
	defer pkt.Free()
	b := pkt.Bytes()
	if len(b) < 4 {
		m.Stats.InErrors.Inc()
		m.l.Drops.DropPkt(stat.RICMP6Short, b)
		return
	}
	if inet.TransportChecksum6(meta.Src6, meta.Dst6, proto.ICMPv6, b) != 0 {
		m.Stats.InErrors.Inc()
		m.l.Drops.DropPkt(stat.RICMP6BadSum, b)
		return
	}
	m.Stats.InMsgs.Inc()
	typ, code := b[0], b[1]
	body := b[4:]
	switch typ {
	case TypeEchoRequest:
		if m.InputPolicy != nil && !m.InputPolicy(pkt, meta.Dst6, nil) {
			m.PolicyDrops.Inc()
			m.l.Drops.DropNote(stat.RICMP6PolicyDrop, meta.Src6.String()+">"+meta.Dst6.String())
			return
		}
		m.Stats.InEchos.Inc()
		if len(body) < 4 {
			return
		}
		m.Stats.OutEchoReps.Inc()
		src := meta.Dst6
		if src.IsMulticast() {
			src = inet.IP6{} // reply from a unicast address of ours
		}
		m.send(TypeEchoReply, 0, body, src, meta.Src6, 0, meta.RcvIf)
	case TypeEchoReply:
		m.Stats.InEchoReps.Inc()
		if m.OnEcho != nil && len(body) >= 4 {
			id := uint16(body[0])<<8 | uint16(body[1])
			seq := uint16(body[2])<<8 | uint16(body[3])
			m.OnEcho(meta.Src6, id, seq, append([]byte(nil), body[4:]...))
		}
	case TypeDstUnreach, TypePacketTooBig, TypeTimeExceeded, TypeParamProblem:
		if m.OnErrorMsg != nil && len(body) > 4 {
			m.OnErrorMsg(typ, code, meta.Src6, append([]byte(nil), body[4:]...))
		}
		m.ctlDispatch(typ, code, body, meta)
	case TypeNeighborSolicit, TypeNeighborAdvert, TypeRouterSolicit, TypeRouterAdvert:
		// Discovery messages must arrive with hop limit 255: anything
		// lower has crossed a router, so an off-link attacker cannot
		// inject neighbor or router state.
		if meta.Hops != 255 {
			m.Stats.BadHopLimit.Inc()
			m.l.Drops.DropPkt(stat.RNDBadHopLimit, b)
			return
		}
		switch typ {
		case TypeNeighborSolicit:
			m.Stats.InNS.Inc()
			m.nsInput(body, meta)
		case TypeNeighborAdvert:
			m.Stats.InNA.Inc()
			m.naInput(body, meta)
		case TypeRouterSolicit:
			m.Stats.InRS.Inc()
			m.rsInput(body, meta)
		case TypeRouterAdvert:
			m.Stats.InRA.Inc()
			m.raInput(body, meta)
		}
	case TypeGroupQuery, TypeGroupReport, TypeGroupTerminate:
		// Group membership traffic is link-scope (§4.1): senders use
		// hop limit 1 and a link-local (or, before an address is
		// configured, unspecified) source.  Anything else has crossed a
		// router — an off-link forgery must not mutate membership
		// state.
		if meta.Hops != 1 {
			m.Stats.BadHopLimit.Inc()
			m.l.Drops.DropPkt(stat.RMLDBadHopLimit, b)
			return
		}
		if !meta.Src6.IsLinkLocal() && !meta.Src6.IsUnspecified() {
			m.Stats.InErrors.Inc()
			m.l.Drops.DropNote(stat.RMLDBadSource, meta.Src6.String())
			return
		}
		if typ == TypeGroupQuery {
			m.Stats.InQueries.Inc()
			m.queryInput(body, meta)
		} else {
			m.Stats.InReports.Inc()
			m.reportInput(typ, body, meta)
		}
	}
}

// ctlDispatch decodes the offending packet embedded in an error and
// notifies the owning transport, updating PMTU state for Packet Too
// Big (§2.2: the update lands in the destination's host route).
func (m *Module) ctlDispatch(typ, code uint8, body []byte, meta *proto.Meta) {
	if len(body) < 4+ipv6.HeaderLen {
		m.Stats.InErrors.Inc()
		m.l.Drops.DropNote(stat.RICMP6CtlShort, meta.Src6.String()+">"+meta.Dst6.String())
		return
	}
	param := uint32(body[0])<<24 | uint32(body[1])<<16 | uint32(body[2])<<8 | uint32(body[3])
	inner := body[4:]
	ih, err := ipv6.Parse(inner)
	if err != nil {
		m.Stats.InErrors.Inc()
		m.l.Drops.DropNote(stat.RICMP6CtlShort, meta.Src6.String()+">"+meta.Dst6.String())
		return
	}
	info, _ := ipv6.Preparse(inner, false)
	var kind proto.CtlType
	mtu := 0
	switch typ {
	case TypePacketTooBig:
		kind = proto.CtlMsgSize
		mtu = int(param)
		if mtu < m.MinPMTU {
			// No conforming IPv6 path is narrower than the minimum
			// link MTU: a smaller value is a forged (or broken) PTB.
			m.l.Drops.DropNote(stat.RICMP6PTBClamped, ih.Dst.String())
			mtu = m.MinPMTU
		}
		m.l.Drops.Ctl("ptb " + ih.Dst.String() + " mtu=" + strconv.Itoa(mtu))
		m.updatePMTU(ih.Dst, mtu)
	case TypeDstUnreach:
		if code == UnreachPort {
			kind = proto.CtlPortUnreach
		} else {
			kind = proto.CtlUnreach
		}
	case TypeTimeExceeded:
		kind = proto.CtlTimeExceed
	default:
		kind = proto.CtlParamProb
	}
	innerMeta := &proto.Meta{Family: inet.AFInet6, Src6: ih.Src, Dst6: ih.Dst, Proto: info.Final}
	var contents []byte
	if info.FinalOff < len(inner) {
		contents = inner[info.FinalOff:]
	}
	if ctl := m.l.Ctl(info.Final); ctl != nil {
		ctl(kind, innerMeta, contents, mtu)
	}
}

// updatePMTU lowers the MTU stored in dst's host route.
func (m *Module) updatePMTU(dst inet.IP6, mtu int) {
	rt, ok := m.l.Routes().Lookup(inet.AFInet6, dst[:])
	if !ok {
		return
	}
	updated := false
	m.l.Routes().Change(rt, func(e *route.Entry) {
		if e.Host() && (e.MTU == 0 || mtu < e.MTU) {
			e.MTU = mtu
			updated = true
		}
	})
	if updated {
		m.Stats.PmtuUpdates.Inc()
	}
}
