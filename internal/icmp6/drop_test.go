package icmp6

import (
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/ipv6"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/stat"
	"bsd6/internal/vclock"
)

// forgeInner builds a bare IPv6 header (plus pad payload bytes) to
// embed in a forged ICMPv6 error, claiming src sent dst a packet.
func forgeInner(src, dst inet.IP6, nxt uint8, pad int) []byte {
	b := make([]byte, ipv6.HeaderLen+pad)
	b[0] = 6 << 4
	b[4], b[5] = byte(pad>>8), byte(pad)
	b[6] = nxt
	b[7] = 64
	copy(b[8:24], src[:])
	copy(b[24:40], dst[:])
	return b
}

// forgePTB wraps an inner packet in a Packet Too Big with the given
// claimed MTU, checksummed as from src to dst.
func forgePTB(mtu uint32, inner []byte, src, dst inet.IP6) []byte {
	body := make([]byte, 4+len(inner))
	body[0], body[1], body[2], body[3] = byte(mtu>>24), byte(mtu>>16), byte(mtu>>8), byte(mtu)
	copy(body[4:], inner)
	return marshal(TypePacketTooBig, 0, body, src, dst)
}

func TestHostilePTBClampedAtMinMTU(t *testing.T) {
	// RFC 1981/2460: no conforming IPv6 path is narrower than 1280.
	// A forged Packet Too Big claiming less must not shrink the host
	// route's MTU (and therefore TCP's derived MSS) below the floor.
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	rec := stat.NewRecorder(32)
	a.l.Drops = rec
	all, bll := a.linkLocal(0), b.linkLocal(0)

	// Establish the host route (neighbor entry) the PTB will target.
	p := &pinger{}
	p.hook(a.m)
	if err := a.m.SendEcho(bll, 7, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "echo reply", func() bool { return p.count() >= 1 })

	// A legitimate PTB narrows the path to 1400.
	msg := forgePTB(1400, forgeInner(all, bll, proto.UDP, 0), bll, all)
	if err := b.l.Output(mbuf.New(msg), bll, all, proto.ICMPv6, ipv6.OutputOpts{}); err != nil {
		t.Fatal(err)
	}
	rt, ok := a.rt.Lookup(inet.AFInet6, bll[:])
	if !ok || !rt.Host() || rt.MTU != 1400 {
		t.Fatalf("legitimate PTB not applied: ok=%v mtu=%d", ok, rt.MTU)
	}

	// The hostile PTB claims 296 (an IPv4-era number); the route may
	// drop to the IPv6 floor but never below it.
	msg = forgePTB(296, forgeInner(all, bll, proto.UDP, 0), bll, all)
	if err := b.l.Output(mbuf.New(msg), bll, all, proto.ICMPv6, ipv6.OutputOpts{}); err != nil {
		t.Fatal(err)
	}
	rt, ok = a.rt.Lookup(inet.AFInet6, bll[:])
	if !ok || rt.MTU < ipv6.MinMTU {
		t.Fatalf("hostile PTB shrank MTU below the floor: ok=%v mtu=%d", ok, rt.MTU)
	}
	if rt.MTU != ipv6.MinMTU {
		t.Fatalf("clamped PTB should land exactly on the floor, got %d", rt.MTU)
	}
	if got := rec.Reasons.Get(stat.RICMP6PTBClamped); got != 1 {
		t.Fatalf("icmp6-ptb-clamped reason = %d, want 1", got)
	}
}

func TestSendErrorRateLimited(t *testing.T) {
	// RFC 1885 §2.4(f): bound the rate of outbound errors so a
	// corruption storm is not amplified into an error storm. The token
	// bucket runs off the virtual clock, so the test is deterministic.
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	aif := a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	clk := vclock.NewVirtual(time.Unix(1_000_000, 0))
	a.rt.Now = clk.Now
	rec := stat.NewRecorder(256)
	rec.Now = clk.Now
	a.l.Drops = rec
	a.m.ErrPPS = 5
	all, bll := a.linkLocal(0), b.linkLocal(0)

	// Storm: 20 offending packets at the same virtual instant.
	orig := forgeInner(bll, all, proto.UDP, 8)
	out0 := a.m.Stats.OutErrors.Get()
	for i := 0; i < 20; i++ {
		a.m.SendError(TypeDstUnreach, UnreachPort, 0, mbuf.New(orig), aif.Name)
	}
	if got := a.m.Stats.OutErrors.Get() - out0; got != 5 {
		t.Fatalf("errors sent during storm = %d, want 5 (ErrPPS)", got)
	}
	if got := a.m.Stats.RateLimited.Get(); got != 15 {
		t.Fatalf("RateLimited = %d, want 15", got)
	}
	if got := rec.Reasons.Get(stat.RICMP6RateLimited); got != 15 {
		t.Fatalf("icmp6-rate-limited reason = %d, want 15", got)
	}

	// A virtual second later the bucket has refilled.
	clk.Advance(time.Second)
	a.m.SendError(TypeDstUnreach, UnreachPort, 0, mbuf.New(orig), aif.Name)
	if got := a.m.Stats.OutErrors.Get() - out0; got != 6 {
		t.Fatalf("error after refill not sent: total %d, want 6", got)
	}
	if got := a.m.Stats.RateLimited.Get(); got != 15 {
		t.Fatalf("RateLimited moved after refill: %d", got)
	}
}

func TestMLDOffLinkForgeryRejected(t *testing.T) {
	// §4.1 group membership is link-scope traffic: hop limit 1 and a
	// link-local (or unspecified) source. Forged off-link messages
	// must neither elicit Reports nor mutate router membership state.
	hub := netif.NewHub()
	r, h := newNode("r"), newNode("h")
	rifp := r.join(hub, macR, 1500)
	hifp := h.join(hub, macB, 1500)
	r.m.EnableRouter(rifp.Name, RouterConfig{Interval: time.Hour, Lifetime: time.Hour})
	hrec := stat.NewRecorder(32)
	h.l.Drops = hrec
	rrec := stat.NewRecorder(32)
	r.l.Drops = rrec

	group := ip6(t, "ff02::1:2345")
	h.l.JoinGroup(hifp.Name, group)
	waitFor(t, "legitimate membership recorded", func() bool {
		return len(r.m.Memberships(rifp.Name)) == 1
	})

	// Forgery 1: a Group Query that crossed a router (hop limit 64).
	// The host must not answer it.
	rll := r.linkLocal(0)
	reports := h.m.Stats.OutReports.Get()
	badq := marshal(TypeGroupQuery, 0, groupBody(0, inet.IP6{}), rll, inet.AllNodes)
	if err := r.l.Output(mbuf.New(badq), rll, inet.AllNodes, proto.ICMPv6, ipv6.OutputOpts{HopLimit: 64}); err != nil {
		t.Fatal(err)
	}
	if h.m.Stats.BadHopLimit.Get() == 0 {
		t.Fatal("off-link query not counted as BadHopLimit")
	}
	if got := h.m.Stats.OutReports.Get(); got != reports {
		t.Fatalf("off-link query elicited %d reports", got-reports)
	}
	if hrec.Reasons.Get(stat.RMLDBadHopLimit) == 0 {
		t.Fatal("mld-bad-hop-limit reason not recorded")
	}

	// Forgery 2: a Report with a global (routable) source address.
	// The router must not learn the membership.
	gsrc := ip6(t, "2001:db8::beef")
	h.addGlobal(hifp, gsrc, 64)
	g2 := ip6(t, "ff02::9999")
	rep := marshal(TypeGroupReport, 0, groupBody(0, g2), gsrc, g2)
	if err := h.l.Output(mbuf.New(rep), gsrc, g2, proto.ICMPv6, ipv6.OutputOpts{HopLimit: 1}); err != nil {
		t.Fatal(err)
	}
	for _, g := range r.m.Memberships(rifp.Name) {
		if g == g2 {
			t.Fatal("router learned membership from global-source report")
		}
	}
	if rrec.Reasons.Get(stat.RMLDBadSource) == 0 {
		t.Fatal("mld-bad-source reason not recorded")
	}
}

func TestCtlDispatchConformance(t *testing.T) {
	// Errors about traffic we have no state for must not create state,
	// and truncated inner headers are counted, not trusted.
	hub := netif.NewHub()
	a, b := newNode("a"), newNode("b")
	a.join(hub, macA, 1500)
	b.join(hub, macB, 1500)
	rec := stat.NewRecorder(32)
	a.l.Drops = rec
	all, bll := a.linkLocal(0), b.linkLocal(0)

	// PTB about a destination with no route: nothing to update, and no
	// route may be conjured into existence.
	ghost := ip6(t, "2001:db8:dead::1")
	pmtu0 := a.m.Stats.PmtuUpdates.Get()
	msg := forgePTB(1300, forgeInner(all, ghost, proto.UDP, 0), bll, all)
	if err := b.l.Output(mbuf.New(msg), bll, all, proto.ICMPv6, ipv6.OutputOpts{}); err != nil {
		t.Fatal(err)
	}
	if got := a.m.Stats.PmtuUpdates.Get(); got != pmtu0 {
		t.Fatalf("PTB for unrouted destination updated PMTU (%d -> %d)", pmtu0, got)
	}
	if _, ok := a.rt.Lookup(inet.AFInet6, ghost[:]); ok {
		t.Fatal("PTB conjured a route for an unknown destination")
	}

	// Unreach with a truncated inner header: counted as InErrors with
	// a typed reason, no dispatch.
	inErr0 := a.m.Stats.InErrors.Get()
	short := marshal(TypeDstUnreach, UnreachPort, make([]byte, 4+20), bll, all)
	if err := b.l.Output(mbuf.New(short), bll, all, proto.ICMPv6, ipv6.OutputOpts{}); err != nil {
		t.Fatal(err)
	}
	if got := a.m.Stats.InErrors.Get(); got != inErr0+1 {
		t.Fatalf("truncated inner header: InErrors %d -> %d, want +1", inErr0, got)
	}
	if rec.Reasons.Get(stat.RICMP6CtlShort) == 0 {
		t.Fatal("icmp6-ctl-short reason not recorded")
	}

	// Unreach for a transport with no handler registered: harmless.
	un := marshal(TypeDstUnreach, UnreachPort, append(make([]byte, 4), forgeInner(all, bll, proto.UDP, 0)...), bll, all)
	if err := b.l.Output(mbuf.New(un), bll, all, proto.ICMPv6, ipv6.OutputOpts{}); err != nil {
		t.Fatal(err)
	}
	if got := a.m.Stats.InErrors.Get(); got != inErr0+1 {
		t.Fatalf("well-formed unreach miscounted as error: InErrors = %d", got)
	}
}
