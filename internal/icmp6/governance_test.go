package icmp6

import (
	"fmt"
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/netif"
	"bsd6/internal/route"
	"bsd6/internal/stat"
)

// TestNeighborCacheCapSkipsRouters floods a host's neighbor cache past
// its cap and asserts the governance contract: the count never exceeds
// the cap, every induced eviction carries the nd-cache-evicted reason,
// and the Router-Discovery-learned router is never the victim — losing
// the default router to a cache spray would sever all off-link
// traffic.
func TestNeighborCacheCapSkipsRouters(t *testing.T) {
	hub := netif.NewHub()
	a, r := newNode("a"), newNode("r")
	drops := stat.NewRecorder(64)
	a.rt.Drops = drops
	a.rt.MaxNeighbors = 3
	aIf := a.join(hub, macA, 1500)
	rIf := r.join(hub, macR, 1500)

	if err := r.m.EnableRouter(rIf.Name, RouterConfig{Interval: 30 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// The solicit is answered synchronously with an RA; a learns the
	// router as a pinned neighbor and installs the default route.
	a.m.SendRouterSolicit(aIf.Name)
	rLL := r.linkLocal(0)
	waitFor(t, "router learned as neighbor", func() bool {
		_, ok := a.m.NeighborState(rLL)
		return ok
	})
	if n := a.rt.NeighborCount(inet.AFInet6); n != 1 {
		t.Fatalf("neighbor count after RA = %d, want 1", n)
	}

	// Cache spray: 8 distinct on-link sources announce themselves via
	// the NS learning path. The cap must hold throughout and the
	// router must survive every eviction round.
	sprayAddr := func(i int) inet.IP6 { return ip6(t, fmt.Sprintf("fe80::bad:%x", i)) }
	for i := 1; i <= 8; i++ {
		a.m.learnNeighbor(aIf, sprayAddr(i), inet.LinkAddr{2, 0, 0, 0, 1, byte(i)}, false)
		if n := a.rt.NeighborCount(inet.AFInet6); n > 3 {
			t.Fatalf("spray %d: neighbor count %d exceeds cap 3", i, n)
		}
		if _, ok := a.m.NeighborState(rLL); !ok {
			t.Fatalf("spray %d evicted the pinned router", i)
		}
	}
	// Cap 3, one pinned router, 8 sprayed: 6 must have been evicted.
	if got := a.rt.NbrEvictions.Get(); got != 6 {
		t.Fatalf("NbrEvictions = %d, want 6", got)
	}
	if got := drops.Reasons.Snapshot()[stat.RNbrCacheEvicted.String()]; got != 6 {
		t.Fatalf("%s drops = %d, want 6", stat.RNbrCacheEvicted, got)
	}

	// Unreachable-first policy: mark the most recently used survivor
	// RTF_REJECT; the next admission must pick it over the LRU victim.
	a7, a8 := sprayAddr(7), sprayAddr(8)
	rt8, ok := a.rt.Get(inet.AFInet6, a8[:], 128)
	if !ok {
		t.Fatal("survivor fe80::bad:8 missing")
	}
	a.rt.Mutate(func() { rt8.Flags |= route.FlagReject })
	a.m.learnNeighbor(aIf, sprayAddr(9), inet.LinkAddr{2, 0, 0, 0, 1, 9}, false)
	if _, still := a.rt.Get(inet.AFInet6, a8[:], 128); still {
		t.Fatal("RTF_REJECT entry survived eviction round")
	}
	if _, still := a.rt.Get(inet.AFInet6, a7[:], 128); !still {
		t.Fatal("reachable LRU entry evicted despite an unreachable candidate")
	}
}
