package reasm

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReasmInsert interprets the input as a train of fragment-insert
// operations against one reassembly buffer and checks the hole-filler
// against an independent first-arrival-wins model: completion must
// produce exactly the bytes of the earliest fragment to claim each
// offset (the property RFC 5722 overlap attacks try to violate), at
// exactly the announced total length, with every byte accounted for.
//
// Each 4-byte chunk encodes one fragment: 13-bit offset, 6-bit
// length (1..64), a more bit, and a byte seed for the payload.
func FuzzReasmInsert(f *testing.F) {
	f.Add([]byte{0, 0, 23, 1, 0, 24 >> 8, 24, 7, 0xff})
	f.Add([]byte{0, 8, 63, 2, 0, 0, 63, 0})
	f.Add([]byte{0x1f, 0xff, 63, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const span = 1<<13 + 64 // max offset + max fragment length
		b := NewBuffer(time.Unix(0, 0))
		model := make([]byte, span)
		written := make([]bool, span)
		total := -1

		for i := 0; i+4 <= len(ops) && i < 4*256; i += 4 {
			off := int(uint16(ops[i])<<8|uint16(ops[i+1])) & 0x1fff
			n := 1 + int(ops[i+2]&0x3f)
			more := ops[i+3]&1 != 0
			data := make([]byte, n)
			for j := range data {
				data[j] = ops[i+3] + byte(j)
			}

			out, done, err := b.Add(off, more, data)
			if err != nil {
				if done {
					t.Fatalf("Add reported done alongside error %v", err)
				}
				// ErrTooManyPieces strikes after a final fragment may
				// already have fixed the total; mirror that.
				if err == ErrTooManyPieces && !more && total == -1 {
					total = off + n
				}
				continue
			}
			if !more {
				total = off + n
			}
			for j := 0; j < n; j++ {
				if !written[off+j] {
					written[off+j] = true
					model[off+j] = data[j]
				}
			}
			if done {
				if total < 0 || len(out) != total {
					t.Fatalf("completed with %d bytes, announced total %d", len(out), total)
				}
				for j := 0; j < total; j++ {
					if !written[j] {
						t.Fatalf("completed with a hole at offset %d", j)
					}
				}
				if !bytes.Equal(out, model[:total]) {
					t.Fatalf("reassembled bytes deviate from first-arrival model")
				}
				return // buffer is spent; the queue would have removed it
			}
		}
	})
}
