package reasm

import (
	"strings"
	"testing"
	"time"
)

// TestQuotaEvictsOldestPerSource drives the per-source quota: when one
// source holds MaxPerSource in-progress datagrams, its *oldest* buffer
// is the victim, arrival order is preserved among survivors, and other
// sources are untouched.
func TestQuotaEvictsOldestPerSource(t *testing.T) {
	q := NewQueue[string](time.Minute)
	q.MaxPerSource = 2
	q.SourceOf = func(k string) any { return strings.SplitN(k, "/", 2)[0] }
	var evicted []string
	q.OnEvict = func(k string, b *Buffer) {
		if b == nil {
			t.Fatalf("OnEvict(%s) got nil buffer", k)
		}
		evicted = append(evicted, k)
	}

	now := time.Unix(0, 0)
	frag := func(key string) {
		// Incomplete: offset 0 with more-fragments set never completes.
		if _, done, err := q.Add(key, now, 0, true, []byte{1, 2, 3, 4, 5, 6, 7, 8}); done || err != nil {
			t.Fatalf("Add(%s): done=%v err=%v", key, done, err)
		}
		now = now.Add(time.Millisecond)
	}

	frag("attacker/dgram1")
	frag("victim/dgramA")
	frag("attacker/dgram2")
	if len(evicted) != 0 {
		t.Fatalf("evictions before quota reached: %v", evicted)
	}

	// Third attacker datagram: quota says evict the attacker's oldest.
	frag("attacker/dgram3")
	if len(evicted) != 1 || evicted[0] != "attacker/dgram1" {
		t.Fatalf("want [attacker/dgram1] evicted, got %v", evicted)
	}
	if q.Get("attacker/dgram1") != nil {
		t.Fatal("evicted buffer still present")
	}
	if q.Get("victim/dgramA") == nil {
		t.Fatal("unrelated source's buffer was evicted")
	}

	// And again: dgram2 is now the attacker's oldest.
	frag("attacker/dgram4")
	if len(evicted) != 2 || evicted[1] != "attacker/dgram2" {
		t.Fatalf("want attacker/dgram2 evicted second, got %v", evicted)
	}
	if q.Len() != 3 {
		t.Fatalf("Len=%d, want 3", q.Len())
	}
}

// TestQuotaEvictsGlobalOldest drives the global quota: the victim is
// the oldest in-progress datagram regardless of source, and OnEvict is
// not invoked for normal completion.
func TestQuotaEvictsGlobalOldest(t *testing.T) {
	q := NewQueue[string](time.Minute)
	q.MaxDatagrams = 3
	var evicted []string
	q.OnEvict = func(k string, _ *Buffer) { evicted = append(evicted, k) }

	now := time.Unix(0, 0)
	for _, k := range []string{"a", "b", "c"} {
		q.Add(k, now, 0, true, []byte{0xaa})
		now = now.Add(time.Millisecond)
	}
	q.Add("d", now, 0, true, []byte{0xaa})
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("want [a] evicted, got %v", evicted)
	}

	// Completing "b" must not call OnEvict (it is a delivery, not a
	// discard) and frees a slot: the next newcomer evicts nobody.
	if _, done, err := q.Add("b", now, 1, false, []byte{0xbb}); !done || err != nil {
		t.Fatalf("completion: done=%v err=%v", done, err)
	}
	q.Add("e", now, 0, true, []byte{0xaa})
	if len(evicted) != 1 {
		t.Fatalf("unexpected evictions: %v", evicted)
	}
	if q.Len() != 3 {
		t.Fatalf("Len=%d, want 3", q.Len())
	}
}
