// Package reasm implements fragment reassembly buffers shared by the
// IPv4 and IPv6 layers.
//
// The two protocols differ in where fragmentation happens — IPv4
// routers fragment in the network, IPv6 is end-to-end only (§2.2) —
// but the receiver-side hole-filling is the same: collect byte ranges,
// learn the total length from the fragment with more-fragments clear,
// and complete when no holes remain.  Buffers are discarded after a
// timeout.  The paper's implementation could not send the ICMPv6 Time
// Exceeded the timeout calls for because it no longer had the
// offending packet (§4.1 footnote); we deviate by letting the caller
// stash the first fragment's bytes on the buffer (Ctx), so the error
// can be emitted iff fragment zero arrived, per RFC 2460 §4.5.
package reasm

import (
	"errors"
	"time"
)

// Limits guarding against pathological fragment streams.
const (
	// maxDatagram bounds a reassembled datagram: the IP payload length
	// fields are 16 bits, so nothing larger is expressible.
	maxDatagram = 65535
	maxPieces   = 512 // fragments per buffer
)

// Errors returned by Add.
var (
	ErrTooLong       = errors.New("reasm: reassembled datagram too long")
	ErrTooManyPieces = errors.New("reasm: too many fragments")
	ErrInconsistent  = errors.New("reasm: fragments disagree on total length")
)

type piece struct {
	off  int
	data []byte
}

// Buffer reassembles one datagram.
type Buffer struct {
	pieces  []piece // sorted by offset, non-overlapping
	total   int     // -1 until the final fragment arrives
	have    int     // bytes currently held
	Created time.Time

	// Ctx is caller context for the timeout error path: the IP layer
	// stores (a prefix of) the first fragment's packet here so an
	// ICMP Time Exceeded can quote the offending packet. CtxIf is the
	// interface the fragment arrived on.
	Ctx   []byte
	CtxIf string
}

// HasFirst reports whether the fragment at offset zero has arrived —
// the RFC condition for sending Time Exceeded on timeout.
func (b *Buffer) HasFirst() bool {
	return len(b.pieces) > 0 && b.pieces[0].off == 0
}

// NewBuffer returns an empty reassembly buffer stamped with now.
func NewBuffer(now time.Time) *Buffer {
	return &Buffer{total: -1, Created: now}
}

// Add inserts a fragment covering [off, off+len(data)) with more
// indicating whether more fragments follow. When the datagram is
// complete it returns (payload, true, nil). Overlapping bytes from
// later fragments are discarded in favor of earlier arrivals, as BSD
// does.
func (b *Buffer) Add(off int, more bool, data []byte) ([]byte, bool, error) {
	if off < 0 || off+len(data) > maxDatagram {
		return nil, false, ErrTooLong
	}
	if !more {
		end := off + len(data)
		if b.total >= 0 && b.total != end {
			return nil, false, ErrInconsistent
		}
		b.total = end
	}
	if b.total >= 0 && off+len(data) > b.total {
		return nil, false, ErrInconsistent
	}
	if len(data) > 0 {
		if err := b.insert(off, data); err != nil {
			return nil, false, err
		}
	}
	if b.total >= 0 && b.have == b.total && b.contiguous() {
		out := make([]byte, b.total)
		for _, p := range b.pieces {
			copy(out[p.off:], p.data)
		}
		return out, true, nil
	}
	return nil, false, nil
}

func (b *Buffer) insert(off int, data []byte) error {
	if len(b.pieces) >= maxPieces {
		return ErrTooManyPieces
	}
	// Trim the new fragment against existing pieces, then insert the
	// surviving sub-ranges.
	type rng struct{ lo, hi int }
	pending := []rng{{off, off + len(data)}}
	for _, p := range b.pieces {
		plo, phi := p.off, p.off+len(p.data)
		var next []rng
		for _, r := range pending {
			if r.hi <= plo || r.lo >= phi { // disjoint
				next = append(next, r)
				continue
			}
			if r.lo < plo {
				next = append(next, rng{r.lo, plo})
			}
			if r.hi > phi {
				next = append(next, rng{phi, r.hi})
			}
		}
		pending = next
	}
	for _, r := range pending {
		if r.hi <= r.lo {
			continue
		}
		seg := make([]byte, r.hi-r.lo)
		copy(seg, data[r.lo-off:])
		b.pieces = append(b.pieces, piece{off: r.lo, data: seg})
		b.have += len(seg)
	}
	// Keep sorted by offset (insertion sort; piece counts are small).
	for i := 1; i < len(b.pieces); i++ {
		for j := i; j > 0 && b.pieces[j].off < b.pieces[j-1].off; j-- {
			b.pieces[j], b.pieces[j-1] = b.pieces[j-1], b.pieces[j]
		}
	}
	return nil
}

func (b *Buffer) contiguous() bool {
	at := 0
	for _, p := range b.pieces {
		if p.off != at {
			return false
		}
		at += len(p.data)
	}
	return at == b.total
}

// Queue maps datagram keys to in-progress buffers and expires them.
// Buffers are tracked in creation order so expiry (and the ICMP errors
// it triggers) is deterministic.
//
// A Queue optionally enforces overload quotas: MaxDatagrams caps the
// total number of in-progress datagrams and MaxPerSource caps how many
// a single source may hold (hostile fragment streams exhaust state by
// opening buffers they never complete — arXiv:2309.03525).  When a new
// datagram would exceed a quota the oldest in-progress buffer (of the
// offending source for the per-source quota, globally otherwise) is
// evicted and reported through OnEvict, so the victim of the quota is
// always the stalest state, never the arriving fragment.
type Queue[K comparable] struct {
	bufs  map[K]*Buffer
	order []K // creation order of live buffers
	// Timeout is how long an incomplete datagram may linger.
	Timeout time.Duration
	// MaxDatagrams bounds the total number of in-progress datagrams;
	// 0 means unlimited.
	MaxDatagrams int
	// MaxPerSource bounds in-progress datagrams per source, as grouped
	// by SourceOf; 0 (or a nil SourceOf) disables the per-source quota.
	MaxPerSource int
	// SourceOf extracts the source identity from a datagram key (the
	// IP layers return the source address); it must be comparable.
	SourceOf func(K) any
	// OnEvict, when non-nil, observes each buffer discarded by quota
	// eviction — the hook the IP layers use to emit a typed drop
	// reason.  It is not called for completion, error, or timeout
	// removals (ExpireFunc covers timeouts).
	OnEvict func(K, *Buffer)
}

// NewQueue creates a reassembly queue with the given timeout.
func NewQueue[K comparable](timeout time.Duration) *Queue[K] {
	return &Queue[K]{bufs: make(map[K]*Buffer), Timeout: timeout}
}

// Add routes a fragment to its datagram's buffer, creating one if
// needed. On completion or error the buffer is removed.  Creating a
// buffer may evict the oldest in-progress datagram if a quota is
// exceeded (see Queue doc).
func (q *Queue[K]) Add(key K, now time.Time, off int, more bool, data []byte) ([]byte, bool, error) {
	b := q.bufs[key]
	if b == nil {
		q.makeRoom(key)
		b = NewBuffer(now)
		q.bufs[key] = b
		q.order = append(q.order, key)
	}
	out, done, err := b.Add(off, more, data)
	if done || err != nil {
		q.remove(key)
	}
	return out, done, err
}

// makeRoom enforces the quotas before a buffer for key is created:
// first the per-source cap (evicting that source's oldest datagram),
// then the global cap (evicting the globally oldest).
func (q *Queue[K]) makeRoom(key K) {
	if q.MaxPerSource > 0 && q.SourceOf != nil {
		src := q.SourceOf(key)
		n := 0
		oldest, found := -1, false
		for i, k := range q.order {
			if q.SourceOf(k) == src {
				n++
				if !found {
					oldest, found = i, true
				}
			}
		}
		if n >= q.MaxPerSource && found {
			q.evict(q.order[oldest])
		}
	}
	if q.MaxDatagrams > 0 && len(q.order) >= q.MaxDatagrams {
		q.evict(q.order[0])
	}
}

// evict removes one in-progress buffer on behalf of a quota and
// reports it through OnEvict.
func (q *Queue[K]) evict(key K) {
	b := q.bufs[key]
	q.remove(key)
	if q.OnEvict != nil && b != nil {
		q.OnEvict(key, b)
	}
}

// Get returns the in-progress buffer for key, or nil. Callers use it
// to attach Ctx after the first fragment arrives.
func (q *Queue[K]) Get(key K) *Buffer { return q.bufs[key] }

func (q *Queue[K]) remove(key K) {
	delete(q.bufs, key)
	for i, k := range q.order {
		if k == key {
			q.order = append(q.order[:i], q.order[i+1:]...)
			break
		}
	}
}

// Expire drops buffers older than the timeout, returning how many were
// discarded.
func (q *Queue[K]) Expire(now time.Time) int {
	return q.ExpireFunc(now, nil)
}

// ExpireFunc drops buffers older than the timeout, calling fn (if
// non-nil) for each in creation order — the hook the IP layers use to
// emit Time Exceeded for buffers whose first fragment arrived.
func (q *Queue[K]) ExpireFunc(now time.Time, fn func(K, *Buffer)) int {
	n := 0
	for i := 0; i < len(q.order); {
		k := q.order[i]
		b := q.bufs[k]
		if now.Sub(b.Created) > q.Timeout {
			delete(q.bufs, k)
			q.order = append(q.order[:i], q.order[i+1:]...)
			if fn != nil {
				fn(k, b)
			}
			n++
		} else {
			i++
		}
	}
	return n
}

// Len returns the number of in-progress datagrams.
func (q *Queue[K]) Len() int { return len(q.bufs) }
