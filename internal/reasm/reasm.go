// Package reasm implements fragment reassembly buffers shared by the
// IPv4 and IPv6 layers.
//
// The two protocols differ in where fragmentation happens — IPv4
// routers fragment in the network, IPv6 is end-to-end only (§2.2) —
// but the receiver-side hole-filling is the same: collect byte ranges,
// learn the total length from the fragment with more-fragments clear,
// and complete when no holes remain.  Buffers are discarded after a
// timeout (IPv6 reports it via an ICMPv6 Time Exceeded that this
// implementation, like the paper's, cannot send with the offending
// packet attached — §4.1 footnote).
package reasm

import (
	"errors"
	"time"
)

// Limits guarding against pathological fragment streams.
const (
	// maxDatagram bounds a reassembled datagram: the IP payload length
	// fields are 16 bits, so nothing larger is expressible.
	maxDatagram = 65535
	maxPieces   = 512 // fragments per buffer
)

// Errors returned by Add.
var (
	ErrTooLong       = errors.New("reasm: reassembled datagram too long")
	ErrTooManyPieces = errors.New("reasm: too many fragments")
	ErrInconsistent  = errors.New("reasm: fragments disagree on total length")
)

type piece struct {
	off  int
	data []byte
}

// Buffer reassembles one datagram.
type Buffer struct {
	pieces  []piece // sorted by offset, non-overlapping
	total   int     // -1 until the final fragment arrives
	have    int     // bytes currently held
	Created time.Time
}

// NewBuffer returns an empty reassembly buffer stamped with now.
func NewBuffer(now time.Time) *Buffer {
	return &Buffer{total: -1, Created: now}
}

// Add inserts a fragment covering [off, off+len(data)) with more
// indicating whether more fragments follow. When the datagram is
// complete it returns (payload, true, nil). Overlapping bytes from
// later fragments are discarded in favor of earlier arrivals, as BSD
// does.
func (b *Buffer) Add(off int, more bool, data []byte) ([]byte, bool, error) {
	if off < 0 || off+len(data) > maxDatagram {
		return nil, false, ErrTooLong
	}
	if !more {
		end := off + len(data)
		if b.total >= 0 && b.total != end {
			return nil, false, ErrInconsistent
		}
		b.total = end
	}
	if b.total >= 0 && off+len(data) > b.total {
		return nil, false, ErrInconsistent
	}
	if len(data) > 0 {
		if err := b.insert(off, data); err != nil {
			return nil, false, err
		}
	}
	if b.total >= 0 && b.have == b.total && b.contiguous() {
		out := make([]byte, b.total)
		for _, p := range b.pieces {
			copy(out[p.off:], p.data)
		}
		return out, true, nil
	}
	return nil, false, nil
}

func (b *Buffer) insert(off int, data []byte) error {
	if len(b.pieces) >= maxPieces {
		return ErrTooManyPieces
	}
	// Trim the new fragment against existing pieces, then insert the
	// surviving sub-ranges.
	type rng struct{ lo, hi int }
	pending := []rng{{off, off + len(data)}}
	for _, p := range b.pieces {
		plo, phi := p.off, p.off+len(p.data)
		var next []rng
		for _, r := range pending {
			if r.hi <= plo || r.lo >= phi { // disjoint
				next = append(next, r)
				continue
			}
			if r.lo < plo {
				next = append(next, rng{r.lo, plo})
			}
			if r.hi > phi {
				next = append(next, rng{phi, r.hi})
			}
		}
		pending = next
	}
	for _, r := range pending {
		if r.hi <= r.lo {
			continue
		}
		seg := make([]byte, r.hi-r.lo)
		copy(seg, data[r.lo-off:])
		b.pieces = append(b.pieces, piece{off: r.lo, data: seg})
		b.have += len(seg)
	}
	// Keep sorted by offset (insertion sort; piece counts are small).
	for i := 1; i < len(b.pieces); i++ {
		for j := i; j > 0 && b.pieces[j].off < b.pieces[j-1].off; j-- {
			b.pieces[j], b.pieces[j-1] = b.pieces[j-1], b.pieces[j]
		}
	}
	return nil
}

func (b *Buffer) contiguous() bool {
	at := 0
	for _, p := range b.pieces {
		if p.off != at {
			return false
		}
		at += len(p.data)
	}
	return at == b.total
}

// Queue maps datagram keys to in-progress buffers and expires them.
type Queue[K comparable] struct {
	bufs map[K]*Buffer
	// Timeout is how long an incomplete datagram may linger.
	Timeout time.Duration
}

// NewQueue creates a reassembly queue with the given timeout.
func NewQueue[K comparable](timeout time.Duration) *Queue[K] {
	return &Queue[K]{bufs: make(map[K]*Buffer), Timeout: timeout}
}

// Add routes a fragment to its datagram's buffer, creating one if
// needed. On completion or error the buffer is removed.
func (q *Queue[K]) Add(key K, now time.Time, off int, more bool, data []byte) ([]byte, bool, error) {
	b := q.bufs[key]
	if b == nil {
		b = NewBuffer(now)
		q.bufs[key] = b
	}
	out, done, err := b.Add(off, more, data)
	if done || err != nil {
		delete(q.bufs, key)
	}
	return out, done, err
}

// Expire drops buffers older than the timeout, returning how many were
// discarded.
func (q *Queue[K]) Expire(now time.Time) int {
	n := 0
	for k, b := range q.bufs {
		if now.Sub(b.Created) > q.Timeout {
			delete(q.bufs, k)
			n++
		}
	}
	return n
}

// Len returns the number of in-progress datagrams.
func (q *Queue[K]) Len() int { return len(q.bufs) }
