package reasm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Unix(1000, 0)

func TestInOrder(t *testing.T) {
	b := NewBuffer(t0)
	if _, done, _ := b.Add(0, true, []byte("hello ")); done {
		t.Fatal("premature completion")
	}
	out, done, err := b.Add(6, false, []byte("world"))
	if err != nil || !done || string(out) != "hello world" {
		t.Fatalf("got %q %v %v", out, done, err)
	}
}

func TestOutOfOrder(t *testing.T) {
	b := NewBuffer(t0)
	b.Add(6, false, []byte("world"))
	out, done, err := b.Add(0, true, []byte("hello "))
	if err != nil || !done || string(out) != "hello world" {
		t.Fatalf("got %q %v %v", out, done, err)
	}
}

func TestHoleBlocksCompletion(t *testing.T) {
	b := NewBuffer(t0)
	b.Add(0, true, []byte("aa"))
	if _, done, _ := b.Add(4, false, []byte("bb")); done {
		t.Fatal("completed with a hole")
	}
	out, done, _ := b.Add(2, true, []byte("cc"))
	if !done || string(out) != "aaccbb" {
		t.Fatalf("got %q %v", out, done)
	}
}

func TestOverlapFirstArrivalWins(t *testing.T) {
	b := NewBuffer(t0)
	b.Add(0, true, []byte("AAAA"))
	b.Add(2, true, []byte("bbbb")) // overlaps [2,4): dropped there
	out, done, _ := b.Add(6, false, []byte("cc"))
	if !done || string(out) != "AAAAbbcc" {
		t.Fatalf("got %q %v", out, done)
	}
}

func TestDuplicateFragment(t *testing.T) {
	b := NewBuffer(t0)
	b.Add(0, true, []byte("xx"))
	b.Add(0, true, []byte("yy")) // exact duplicate range
	out, done, _ := b.Add(2, false, []byte("zz"))
	if !done || string(out) != "xxzz" {
		t.Fatalf("got %q %v", out, done)
	}
}

func TestInconsistentLength(t *testing.T) {
	b := NewBuffer(t0)
	b.Add(4, false, []byte("tail"))
	if _, _, err := b.Add(10, false, []byte("t2")); err != ErrInconsistent {
		t.Fatalf("two finals with different ends: %v", err)
	}
	b2 := NewBuffer(t0)
	b2.Add(0, false, []byte("ab"))
	if _, _, err := b2.Add(2, true, []byte("cd")); err != ErrInconsistent {
		t.Fatalf("fragment beyond final end: %v", err)
	}
}

func TestTooLong(t *testing.T) {
	b := NewBuffer(t0)
	if _, _, err := b.Add(maxDatagram, true, []byte("x")); err != ErrTooLong {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := b.Add(-1, true, []byte("x")); err != ErrTooLong {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestTooManyPieces(t *testing.T) {
	b := NewBuffer(t0)
	var err error
	for i := 0; i < maxPieces+1; i++ {
		_, _, err = b.Add(i*2, true, []byte("x")) // gaps keep pieces separate
		if err != nil {
			break
		}
	}
	if err != ErrTooManyPieces {
		t.Fatalf("err = %v", err)
	}
}

func TestZeroLengthFragment(t *testing.T) {
	// An empty non-final fragment must not corrupt state.
	b := NewBuffer(t0)
	b.Add(0, true, nil)
	out, done, err := b.Add(0, false, []byte("ab"))
	if err != nil || !done || string(out) != "ab" {
		t.Fatalf("got %q %v %v", out, done, err)
	}
}

func TestSingleFragmentDatagram(t *testing.T) {
	b := NewBuffer(t0)
	out, done, err := b.Add(0, false, []byte("whole"))
	if err != nil || !done || string(out) != "whole" {
		t.Fatalf("got %q %v %v", out, done, err)
	}
}

func TestQueueKeysIndependent(t *testing.T) {
	q := NewQueue[int](time.Minute)
	q.Add(1, t0, 0, true, []byte("a1"))
	q.Add(2, t0, 0, true, []byte("b1"))
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	out, done, _ := q.Add(1, t0, 2, false, []byte("a2"))
	if !done || string(out) != "a1a2" {
		t.Fatalf("got %q %v", out, done)
	}
	if q.Len() != 1 {
		t.Fatal("completed buffer not removed")
	}
}

func TestQueueExpire(t *testing.T) {
	q := NewQueue[int](10 * time.Second)
	q.Add(1, t0, 0, true, []byte("a"))
	q.Add(2, t0.Add(8*time.Second), 0, true, []byte("b"))
	if n := q.Expire(t0.Add(11 * time.Second)); n != 1 {
		t.Fatalf("expired %d", n)
	}
	if q.Len() != 1 {
		t.Fatal("wrong buffer expired")
	}
	// Fragments for an expired datagram start a new buffer.
	if _, done, _ := q.Add(1, t0.Add(12*time.Second), 2, false, []byte("late")); done {
		t.Fatal("stale state survived expiry")
	}
}

func TestQueueErrorRemovesBuffer(t *testing.T) {
	q := NewQueue[int](time.Minute)
	q.Add(1, t0, 4, false, []byte("tail"))
	if _, _, err := q.Add(1, t0, 10, false, []byte("bad")); err == nil {
		t.Fatal("expected error")
	}
	if q.Len() != 0 {
		t.Fatal("errored buffer kept")
	}
}

// Property: any partition of a payload into fragments, delivered in any
// order, reassembles to the original.
func TestQuickAnyOrderReassembly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(data []byte) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		type frag struct {
			off  int
			more bool
			data []byte
		}
		var frags []frag
		for off := 0; off < len(data); {
			n := 1 + rng.Intn(len(data)-off)
			frags = append(frags, frag{off, off+n < len(data), data[off : off+n]})
			off += n
		}
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		b := NewBuffer(t0)
		var out []byte
		var done bool
		for _, fr := range frags {
			var err error
			out, done, err = b.Add(fr.off, fr.more, fr.data)
			if err != nil {
				return false
			}
		}
		return done && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
