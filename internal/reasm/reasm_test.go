package reasm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Unix(1000, 0)

func TestInOrder(t *testing.T) {
	b := NewBuffer(t0)
	if _, done, _ := b.Add(0, true, []byte("hello ")); done {
		t.Fatal("premature completion")
	}
	out, done, err := b.Add(6, false, []byte("world"))
	if err != nil || !done || string(out) != "hello world" {
		t.Fatalf("got %q %v %v", out, done, err)
	}
}

func TestOutOfOrder(t *testing.T) {
	b := NewBuffer(t0)
	b.Add(6, false, []byte("world"))
	out, done, err := b.Add(0, true, []byte("hello "))
	if err != nil || !done || string(out) != "hello world" {
		t.Fatalf("got %q %v %v", out, done, err)
	}
}

func TestHoleBlocksCompletion(t *testing.T) {
	b := NewBuffer(t0)
	b.Add(0, true, []byte("aa"))
	if _, done, _ := b.Add(4, false, []byte("bb")); done {
		t.Fatal("completed with a hole")
	}
	out, done, _ := b.Add(2, true, []byte("cc"))
	if !done || string(out) != "aaccbb" {
		t.Fatalf("got %q %v", out, done)
	}
}

func TestOverlapFirstArrivalWins(t *testing.T) {
	b := NewBuffer(t0)
	b.Add(0, true, []byte("AAAA"))
	b.Add(2, true, []byte("bbbb")) // overlaps [2,4): dropped there
	out, done, _ := b.Add(6, false, []byte("cc"))
	if !done || string(out) != "AAAAbbcc" {
		t.Fatalf("got %q %v", out, done)
	}
}

func TestDuplicateFragment(t *testing.T) {
	b := NewBuffer(t0)
	b.Add(0, true, []byte("xx"))
	b.Add(0, true, []byte("yy")) // exact duplicate range
	out, done, _ := b.Add(2, false, []byte("zz"))
	if !done || string(out) != "xxzz" {
		t.Fatalf("got %q %v", out, done)
	}
}

func TestInconsistentLength(t *testing.T) {
	b := NewBuffer(t0)
	b.Add(4, false, []byte("tail"))
	if _, _, err := b.Add(10, false, []byte("t2")); err != ErrInconsistent {
		t.Fatalf("two finals with different ends: %v", err)
	}
	b2 := NewBuffer(t0)
	b2.Add(0, false, []byte("ab"))
	if _, _, err := b2.Add(2, true, []byte("cd")); err != ErrInconsistent {
		t.Fatalf("fragment beyond final end: %v", err)
	}
}

func TestTooLong(t *testing.T) {
	b := NewBuffer(t0)
	if _, _, err := b.Add(maxDatagram, true, []byte("x")); err != ErrTooLong {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := b.Add(-1, true, []byte("x")); err != ErrTooLong {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestTooManyPieces(t *testing.T) {
	b := NewBuffer(t0)
	var err error
	for i := 0; i < maxPieces+1; i++ {
		_, _, err = b.Add(i*2, true, []byte("x")) // gaps keep pieces separate
		if err != nil {
			break
		}
	}
	if err != ErrTooManyPieces {
		t.Fatalf("err = %v", err)
	}
}

func TestZeroLengthFragment(t *testing.T) {
	// An empty non-final fragment must not corrupt state.
	b := NewBuffer(t0)
	b.Add(0, true, nil)
	out, done, err := b.Add(0, false, []byte("ab"))
	if err != nil || !done || string(out) != "ab" {
		t.Fatalf("got %q %v %v", out, done, err)
	}
}

func TestSingleFragmentDatagram(t *testing.T) {
	b := NewBuffer(t0)
	out, done, err := b.Add(0, false, []byte("whole"))
	if err != nil || !done || string(out) != "whole" {
		t.Fatalf("got %q %v %v", out, done, err)
	}
}

func TestQueueKeysIndependent(t *testing.T) {
	q := NewQueue[int](time.Minute)
	q.Add(1, t0, 0, true, []byte("a1"))
	q.Add(2, t0, 0, true, []byte("b1"))
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	out, done, _ := q.Add(1, t0, 2, false, []byte("a2"))
	if !done || string(out) != "a1a2" {
		t.Fatalf("got %q %v", out, done)
	}
	if q.Len() != 1 {
		t.Fatal("completed buffer not removed")
	}
}

func TestQueueExpire(t *testing.T) {
	q := NewQueue[int](10 * time.Second)
	q.Add(1, t0, 0, true, []byte("a"))
	q.Add(2, t0.Add(8*time.Second), 0, true, []byte("b"))
	if n := q.Expire(t0.Add(11 * time.Second)); n != 1 {
		t.Fatalf("expired %d", n)
	}
	if q.Len() != 1 {
		t.Fatal("wrong buffer expired")
	}
	// Fragments for an expired datagram start a new buffer.
	if _, done, _ := q.Add(1, t0.Add(12*time.Second), 2, false, []byte("late")); done {
		t.Fatal("stale state survived expiry")
	}
}

func TestQueueErrorRemovesBuffer(t *testing.T) {
	q := NewQueue[int](time.Minute)
	q.Add(1, t0, 4, false, []byte("tail"))
	if _, _, err := q.Add(1, t0, 10, false, []byte("bad")); err == nil {
		t.Fatal("expected error")
	}
	if q.Len() != 0 {
		t.Fatal("errored buffer kept")
	}
}

// Property: any partition of a payload into fragments, delivered in any
// order, reassembles to the original.
func TestQuickAnyOrderReassembly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(data []byte) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		type frag struct {
			off  int
			more bool
			data []byte
		}
		var frags []frag
		for off := 0; off < len(data); {
			n := 1 + rng.Intn(len(data)-off)
			frags = append(frags, frag{off, off+n < len(data), data[off : off+n]})
			off += n
		}
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		b := NewBuffer(t0)
		var out []byte
		var done bool
		for _, fr := range frags {
			var err error
			out, done, err = b.Add(fr.off, fr.more, fr.data)
			if err != nil {
				return false
			}
		}
		return done && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHasFirst(t *testing.T) {
	b := NewBuffer(t0)
	if b.HasFirst() {
		t.Fatal("empty buffer claims first fragment")
	}
	b.Add(8, true, []byte("tail"))
	if b.HasFirst() {
		t.Fatal("tail-only buffer claims first fragment")
	}
	b.Add(0, true, []byte("head"))
	if !b.HasFirst() {
		t.Fatal("first fragment not detected")
	}
}

func TestQueueGetAndCtx(t *testing.T) {
	q := NewQueue[int](time.Minute)
	q.Add(1, t0, 0, true, []byte("head"))
	b := q.Get(1)
	if b == nil {
		t.Fatal("Get missed live buffer")
	}
	b.Ctx = []byte("original packet")
	b.CtxIf = "a0"
	if q.Get(2) != nil {
		t.Fatal("Get invented a buffer")
	}
	var expired []*Buffer
	q.ExpireFunc(t0.Add(2*time.Minute), func(_ int, eb *Buffer) { expired = append(expired, eb) })
	if len(expired) != 1 || string(expired[0].Ctx) != "original packet" || expired[0].CtxIf != "a0" {
		t.Fatalf("expired ctx lost: %+v", expired)
	}
	if q.Len() != 0 {
		t.Fatal("expired buffer kept")
	}
}

func TestExpireFuncCreationOrder(t *testing.T) {
	q := NewQueue[int](time.Minute)
	for _, k := range []int{7, 3, 9, 1} {
		q.Add(k, t0, 0, true, []byte("x"))
	}
	var keys []int
	n := q.ExpireFunc(t0.Add(2*time.Minute), func(k int, _ *Buffer) { keys = append(keys, k) })
	if n != 4 {
		t.Fatalf("expired %d, want 4", n)
	}
	for i, want := range []int{7, 3, 9, 1} {
		if keys[i] != want {
			t.Fatalf("expiry order %v, want creation order [7 3 9 1]", keys)
		}
	}
}

func TestExpireSkipsFresh(t *testing.T) {
	q := NewQueue[int](time.Minute)
	q.Add(1, t0, 0, true, []byte("old"))
	q.Add(2, t0.Add(90*time.Second), 0, true, []byte("young"))
	if n := q.Expire(t0.Add(2 * time.Minute)); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if q.Get(2) == nil {
		t.Fatal("fresh buffer expired")
	}
}

func TestOverlapConflictingData(t *testing.T) {
	// RFC 5722-style attack: a later fragment rewrites bytes an earlier
	// one already supplied, with different content. Earlier arrival
	// must win for every overlapped byte (BSD semantics), so the
	// attacker's bytes never reach the application.
	b := NewBuffer(t0)
	b.Add(0, true, []byte("GOODGOOD"))
	b.Add(4, true, []byte("EVILEVIL")) // [4,8) conflicts, [8,12) is new
	out, done, err := b.Add(12, false, []byte("tail"))
	if err != nil || !done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	if string(out) != "GOODGOODEVILtail" {
		t.Fatalf("got %q: overlapped bytes must keep first arrival", out)
	}
}

func TestDuplicateFinalFragments(t *testing.T) {
	// Two finals with the same end are a benign duplicate...
	b := NewBuffer(t0)
	b.Add(4, false, []byte("tail"))
	if _, _, err := b.Add(4, false, []byte("tail")); err != nil {
		t.Fatalf("same-end duplicate final rejected: %v", err)
	}
	// ...but a final that moves the end is an attack and must drop the
	// whole datagram.
	b2 := NewBuffer(t0)
	b2.Add(8, false, []byte("end1"))
	if _, _, err := b2.Add(4, false, []byte("end2")); err != ErrInconsistent {
		t.Fatalf("conflicting final accepted: %v", err)
	}
}
