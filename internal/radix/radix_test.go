package radix

import (
	"math/rand"
	"testing"
)

func k4(a, b, c, d byte) []byte { return []byte{a, b, c, d} }

func TestBasicLPM(t *testing.T) {
	tr := New(4)
	tr.Insert(k4(0, 0, 0, 0), 0, "default")
	tr.Insert(k4(10, 0, 0, 0), 8, "ten")
	tr.Insert(k4(10, 1, 0, 0), 16, "ten-one")
	tr.Insert(k4(10, 1, 2, 3), 32, "host")

	cases := []struct {
		key  []byte
		want string
	}{
		{k4(10, 1, 2, 3), "host"},
		{k4(10, 1, 2, 4), "ten-one"},
		{k4(10, 2, 0, 1), "ten"},
		{k4(11, 0, 0, 1), "default"},
	}
	for _, c := range cases {
		v, ok := tr.Lookup(c.key)
		if !ok || v.(string) != c.want {
			t.Errorf("Lookup(%v) = %v, %v; want %q", c.key, v, ok, c.want)
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestNoMatch(t *testing.T) {
	tr := New(4)
	tr.Insert(k4(10, 0, 0, 0), 8, "ten")
	if _, ok := tr.Lookup(k4(11, 0, 0, 0)); ok {
		t.Fatal("unexpected match")
	}
	if _, ok := tr.Lookup(k4(9, 255, 0, 0)); ok {
		t.Fatal("unexpected match below")
	}
}

func TestNonByteAlignedPrefix(t *testing.T) {
	tr := New(4)
	// 10.128.0.0/9
	tr.Insert(k4(10, 128, 0, 0), 9, "high")
	// 10.0.0.0/9
	tr.Insert(k4(10, 0, 0, 0), 9, "low")
	if v, _ := tr.Lookup(k4(10, 200, 1, 1)); v != "high" {
		t.Fatalf("10.200 -> %v", v)
	}
	if v, _ := tr.Lookup(k4(10, 5, 1, 1)); v != "low" {
		t.Fatalf("10.5 -> %v", v)
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New(4)
	if _, replaced := tr.Insert(k4(1, 2, 3, 4), 32, "a"); replaced {
		t.Fatal("fresh insert reported replace")
	}
	prev, replaced := tr.Insert(k4(1, 2, 3, 4), 32, "b")
	if !replaced || prev != "a" {
		t.Fatalf("replace: %v %v", prev, replaced)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after replace = %d", tr.Len())
	}
	if v, _ := tr.Lookup(k4(1, 2, 3, 4)); v != "b" {
		t.Fatal("replacement not visible")
	}
}

func TestHostBitsIgnored(t *testing.T) {
	tr := New(4)
	tr.Insert(k4(10, 99, 88, 77), 8, "ten") // junk beyond /8 ignored
	if v, _ := tr.Lookup(k4(10, 1, 1, 1)); v != "ten" {
		t.Fatal("host bits not masked on insert")
	}
	if _, ok := tr.LookupExact(k4(10, 3, 3, 3), 8); !ok {
		t.Fatal("exact lookup must mask host bits")
	}
}

func TestLookupExactAndDelete(t *testing.T) {
	tr := New(4)
	tr.Insert(k4(10, 0, 0, 0), 8, "ten")
	tr.Insert(k4(10, 1, 0, 0), 16, "ten-one")

	if _, ok := tr.LookupExact(k4(10, 0, 0, 0), 16); ok {
		t.Fatal("exact /16 should not exist")
	}
	if v, ok := tr.LookupExact(k4(10, 0, 0, 0), 8); !ok || v != "ten" {
		t.Fatal("exact /8 lookup")
	}
	if _, ok := tr.Delete(k4(10, 0, 0, 0), 24); ok {
		t.Fatal("delete of absent prefix succeeded")
	}
	v, ok := tr.Delete(k4(10, 0, 0, 0), 8)
	if !ok || v != "ten" {
		t.Fatal("delete /8")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
	// /16 must still match even though /8 is gone.
	if v, _ := tr.Lookup(k4(10, 1, 2, 3)); v != "ten-one" {
		t.Fatal("surviving entry lost")
	}
	if _, ok := tr.Lookup(k4(10, 2, 2, 3)); ok {
		t.Fatal("deleted prefix still matches")
	}
}

func TestDeletePrunes(t *testing.T) {
	tr := New(16)
	key := make([]byte, 16)
	key[0] = 0xfe
	tr.Insert(key, 128, "deep")
	tr.Delete(key, 128)
	if tr.root.child[0] != nil || tr.root.child[1] != nil {
		t.Fatal("delete did not prune the spine")
	}
	// Pruning must stop at nodes that still carry entries.
	tr.Insert(key, 8, "short")
	tr.Insert(key, 128, "deep")
	tr.Delete(key, 128)
	if _, ok := tr.LookupExact(key, 8); !ok {
		t.Fatal("pruning removed a live entry")
	}
}

func TestZeroLengthPrefix(t *testing.T) {
	tr := New(4)
	tr.Insert(k4(0, 0, 0, 0), 0, "default")
	v, plen, ok := tr.LookupPrefix(k4(255, 255, 255, 255))
	if !ok || v != "default" || plen != 0 {
		t.Fatalf("default route: %v %d %v", v, plen, ok)
	}
	if _, ok := tr.Delete(k4(0, 0, 0, 0), 0); !ok {
		t.Fatal("cannot delete default route")
	}
	if tr.Len() != 0 {
		t.Fatal("Len after deleting default")
	}
}

func TestWalkOrderAndStop(t *testing.T) {
	tr := New(4)
	tr.Insert(k4(20, 0, 0, 0), 8, 1)
	tr.Insert(k4(10, 0, 0, 0), 8, 2)
	tr.Insert(k4(10, 1, 0, 0), 16, 3)
	var keys [][]byte
	tr.Walk(func(key []byte, plen int, v any) bool {
		keys = append(keys, append([]byte(nil), key...))
		return true
	})
	if len(keys) != 3 {
		t.Fatalf("walk visited %d entries", len(keys))
	}
	// Lexicographic order: 10/8, 10.1/16, 20/8. (10/8 terminates above
	// 10.1/16 on the same path, so the shorter prefix comes first.)
	if keys[0][0] != 10 || keys[1][1] != 1 || keys[2][0] != 20 {
		t.Fatalf("walk order: %v", keys)
	}
	n := 0
	tr.Walk(func([]byte, int, any) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestPanics(t *testing.T) {
	tr := New(4)
	assertPanics(t, func() { tr.Insert([]byte{1, 2, 3}, 8, nil) })
	assertPanics(t, func() { tr.Insert(k4(1, 2, 3, 4), 33, nil) })
	assertPanics(t, func() { tr.Insert(k4(1, 2, 3, 4), -1, nil) })
	assertPanics(t, func() { tr.Lookup([]byte{1}) })
	assertPanics(t, func() { New(0) })
	assertPanics(t, func() { New(17) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// naive is a reference model: a list of prefixes scanned linearly.
type naiveEntry struct {
	key  []byte
	plen int
	val  any
}

type naive struct{ entries []naiveEntry }

func prefixMatch(key, pfx []byte, plen int) bool {
	for i := 0; i < plen; i++ {
		if bitAt(key, i) != bitAt(pfx, i) {
			return false
		}
	}
	return true
}

func (n *naive) insert(key []byte, plen int, v any) {
	for i := range n.entries {
		if n.entries[i].plen == plen && prefixMatch(key, n.entries[i].key, plen) {
			n.entries[i].val = v
			return
		}
	}
	n.entries = append(n.entries, naiveEntry{append([]byte(nil), key...), plen, v})
}

func (n *naive) delete(key []byte, plen int) {
	for i := range n.entries {
		if n.entries[i].plen == plen && prefixMatch(key, n.entries[i].key, plen) {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			return
		}
	}
}

func (n *naive) lookup(key []byte) (any, bool) {
	best := -1
	var bestV any
	for _, e := range n.entries {
		if e.plen > best && prefixMatch(key, e.key, e.plen) {
			best, bestV = e.plen, e.val
		}
	}
	return bestV, best >= 0
}

// Property: random insert/delete/lookup agrees with the naive model,
// for 16-byte (IPv6-sized) keys with clustered prefixes.
func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New(16)
	model := &naive{}
	randKey := func() []byte {
		k := make([]byte, 16)
		// Cluster keys so prefixes actually overlap.
		k[0] = byte(rng.Intn(4))
		k[1] = byte(rng.Intn(4))
		k[15] = byte(rng.Intn(8))
		k[7] = byte(rng.Intn(2) * 255)
		return k
	}
	plens := []int{0, 8, 9, 10, 16, 48, 64, 127, 128}
	for step := 0; step < 5000; step++ {
		key := randKey()
		plen := plens[rng.Intn(len(plens))]
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Intn(1000)
			tr.Insert(key, plen, v)
			model.insert(key, plen, v)
		case 2:
			tr.Delete(key, plen)
			model.delete(key, plen)
		case 3:
			got, gok := tr.Lookup(key)
			want, wok := model.lookup(key)
			if gok != wok || (gok && got != want) {
				t.Fatalf("step %d: Lookup(%v) = %v,%v; model %v,%v", step, key, got, gok, want, wok)
			}
		}
	}
	// Final full cross-check.
	n := 0
	tr.Walk(func(key []byte, plen int, v any) bool {
		n++
		w, ok := model.lookup(key)
		if !ok {
			t.Fatalf("tree entry %v/%d missing from model", key, plen)
		}
		_ = w
		return true
	})
	if n != tr.Len() || n != len(model.entries) {
		t.Fatalf("entry counts: walk=%d Len=%d model=%d", n, tr.Len(), len(model.entries))
	}
}

func BenchmarkLookupIPv6(b *testing.B) {
	tr := New(16)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		k := make([]byte, 16)
		rng.Read(k)
		tr.Insert(k, 64, i)
	}
	key := make([]byte, 16)
	rng.Read(key)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(key)
	}
}
