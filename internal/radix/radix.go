// Package radix implements a tree-based longest-prefix-match table over
// fixed-length binary keys.
//
// 4.4 BSD stores all routes — network routes, cloned host routes, and
// (after the NRL changes) IPv6 neighbor entries and Path-MTU host
// routes — in Keith Sklower's radix tree ("A Tree-Based Packet Routing
// Table for Berkeley UNIX", USENIX Winter '91).  This package provides
// the same service: insert a (key, prefix-length, value) triple, then
// look up the most specific entry matching a full key.
//
// The implementation is a binary trie descending one bit per level.
// Keys are at most 16 bytes (an IPv6 address), so lookups touch at most
// 128 nodes; the structural simplicity keeps the matching semantics —
// the part the routing layer's correctness depends on — obvious.
// Callers provide their own locking.
package radix

import "fmt"

// Tree is a longest-prefix-match table over keys of a fixed byte length.
type Tree struct {
	keyLen int
	root   *node
	count  int
}

type node struct {
	child [2]*node
	// entry is non-nil if a prefix terminates at this node.
	entry *entry
}

type entry struct {
	key   []byte
	plen  int
	value any
}

// New creates a table for keys of keyLen bytes (1..16).
func New(keyLen int) *Tree {
	if keyLen < 1 || keyLen > 16 {
		panic(fmt.Sprintf("radix: invalid key length %d", keyLen))
	}
	return &Tree{keyLen: keyLen, root: &node{}}
}

// KeyLen returns the byte length of keys in this table.
func (t *Tree) KeyLen() int { return t.keyLen }

// Len returns the number of entries in the table.
func (t *Tree) Len() int { return t.count }

func bitAt(key []byte, i int) int {
	return int(key[i/8]>>(7-i%8)) & 1
}

func (t *Tree) check(key []byte, plen int) {
	if len(key) != t.keyLen {
		panic(fmt.Sprintf("radix: key length %d, table wants %d", len(key), t.keyLen))
	}
	if plen < 0 || plen > t.keyLen*8 {
		panic(fmt.Sprintf("radix: prefix length %d out of range", plen))
	}
}

// Insert adds or replaces the entry for key/plen and returns the
// previous value, if any. Bits of key beyond plen are ignored.
func (t *Tree) Insert(key []byte, plen int, value any) (prev any, replaced bool) {
	t.check(key, plen)
	n := t.root
	for i := 0; i < plen; i++ {
		b := bitAt(key, i)
		if n.child[b] == nil {
			n.child[b] = &node{}
		}
		n = n.child[b]
	}
	if n.entry != nil {
		prev, replaced = n.entry.value, true
		n.entry.value = value
		return prev, replaced
	}
	k := append([]byte(nil), key...)
	maskTail(k, plen)
	n.entry = &entry{key: k, plen: plen, value: value}
	t.count++
	return nil, false
}

// maskTail zeroes the bits of k beyond plen so stored keys are canonical.
func maskTail(k []byte, plen int) {
	full := plen / 8
	if rem := plen % 8; rem != 0 {
		k[full] &= 0xff << (8 - rem)
		full++
	}
	for i := full; i < len(k); i++ {
		k[i] = 0
	}
}

// Lookup returns the value of the most specific prefix matching key.
func (t *Tree) Lookup(key []byte) (value any, ok bool) {
	v, _, ok := t.LookupPrefix(key)
	return v, ok
}

// LookupPrefix returns the value and prefix length of the most specific
// match for key.
func (t *Tree) LookupPrefix(key []byte) (value any, plen int, ok bool) {
	t.check(key, t.keyLen*8)
	n := t.root
	for i := 0; ; i++ {
		if n.entry != nil {
			value, plen, ok = n.entry.value, n.entry.plen, true
		}
		if i == t.keyLen*8 {
			return value, plen, ok
		}
		n = n.child[bitAt(key, i)]
		if n == nil {
			return value, plen, ok
		}
	}
}

// LookupExact returns the value stored for exactly key/plen.
func (t *Tree) LookupExact(key []byte, plen int) (value any, ok bool) {
	t.check(key, plen)
	n := t.root
	for i := 0; i < plen; i++ {
		n = n.child[bitAt(key, i)]
		if n == nil {
			return nil, false
		}
	}
	if n.entry == nil {
		return nil, false
	}
	return n.entry.value, true
}

// Delete removes the entry for exactly key/plen, returning its value.
// Empty interior nodes left behind are pruned.
func (t *Tree) Delete(key []byte, plen int) (value any, ok bool) {
	t.check(key, plen)
	// Record the path for pruning.
	path := make([]*node, 0, plen+1)
	n := t.root
	path = append(path, n)
	for i := 0; i < plen; i++ {
		n = n.child[bitAt(key, i)]
		if n == nil {
			return nil, false
		}
		path = append(path, n)
	}
	if n.entry == nil {
		return nil, false
	}
	value, ok = n.entry.value, true
	n.entry = nil
	t.count--
	// Prune childless, entryless nodes bottom-up (never the root).
	for i := len(path) - 1; i > 0; i-- {
		cur := path[i]
		if cur.entry != nil || cur.child[0] != nil || cur.child[1] != nil {
			break
		}
		parent := path[i-1]
		b := bitAt(key, i-1)
		parent.child[b] = nil
	}
	return value, ok
}

// Walk visits every entry in lexicographic key order. Returning false
// from fn stops the walk. The tree must not be modified during a walk.
func (t *Tree) Walk(fn func(key []byte, plen int, value any) bool) {
	t.walk(t.root, fn)
}

func (t *Tree) walk(n *node, fn func([]byte, int, any) bool) bool {
	if n == nil {
		return true
	}
	if n.entry != nil {
		if !fn(n.entry.key, n.entry.plen, n.entry.value) {
			return false
		}
	}
	return t.walk(n.child[0], fn) && t.walk(n.child[1], fn)
}
