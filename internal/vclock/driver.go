package vclock

import (
	"runtime"
	"sync"
)

// Driver advances a Virtual clock automatically whenever the system
// under test is quiescent: every registered probe reports zero pending
// work. Probes must count only scheduler-gated work — items another
// goroutine will finish without time moving, like netisr input queues.
// Clock-gated work (a hub's delayed in-flight frames, say) must NOT be
// a probe: it is released only by firing the next timer, so gating
// Step on it livelocks the driver. It exists for tests
// that exercise blocking APIs on real goroutines — they cannot advance
// the clock themselves, so the driver steps simulated time to the next
// timer the moment everything else has settled, collapsing seconds of
// protocol time (DAD probes, retransmission backoff) into microseconds
// of wall time.
//
// Tests that run on a single goroutine should advance the clock
// directly instead; the driver trades determinism for convenience.
type Driver struct {
	clock  *Virtual
	probes []func() int

	mu      sync.Mutex
	stopped bool
	done    chan struct{}
}

// NewDriver creates a driver; probes report outstanding work counts.
func NewDriver(c *Virtual, probes ...func() int) *Driver {
	return &Driver{clock: c, probes: probes, done: make(chan struct{})}
}

// Start launches the driver goroutine. Call Stop when the test ends.
func (d *Driver) Start() {
	go d.loop()
}

// Stop halts the driver and waits for its goroutine to exit.
func (d *Driver) Stop() {
	d.mu.Lock()
	already := d.stopped
	d.stopped = true
	d.mu.Unlock()
	if !already {
		<-d.done
	}
}

func (d *Driver) loop() {
	defer close(d.done)
	// Hysteresis: only step time after several consecutive quiescent
	// observations with scheduler yields in between. A goroutine that
	// is *about* to enqueue work (mid-SendTo, say) is invisible to the
	// probes; giving it a few scheduling opportunities before firing
	// the next timer keeps virtual deadlines from beating real work.
	const settle = 4
	calm := 0
	for {
		d.mu.Lock()
		stopped := d.stopped
		d.mu.Unlock()
		if stopped {
			return
		}
		if d.quiescent() {
			calm++
			if calm >= settle {
				calm = 0
				d.clock.Step()
			}
		} else {
			calm = 0
		}
		// Yield so the goroutines we just woke get scheduled.
		runtime.Gosched()
	}
}

func (d *Driver) quiescent() bool {
	for _, p := range d.probes {
		if p() > 0 {
			return false
		}
	}
	return true
}
