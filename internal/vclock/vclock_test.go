package vclock

import (
	"testing"
	"time"
)

var epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

func TestAdvanceFiresInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var got []int
	v.AfterFunc(30*time.Millisecond, func() { got = append(got, 3) })
	v.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) })
	v.AfterFunc(20*time.Millisecond, func() { got = append(got, 2) })
	v.Advance(25 * time.Millisecond)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("fired %v, want [1 2]", got)
	}
	if v.Pending() != 1 {
		t.Fatalf("pending=%d, want 1", v.Pending())
	}
	v.Advance(10 * time.Millisecond)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("fired %v, want [1 2 3]", got)
	}
}

func TestSameDeadlineFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		v.AfterFunc(time.Second, func() { got = append(got, i) })
	}
	v.Advance(time.Second)
	for i, g := range got {
		if g != i {
			t.Fatalf("order %v, want FIFO", got)
		}
	}
}

func TestNowPinnedToDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	var at time.Time
	v.AfterFunc(time.Second, func() { at = v.Now() })
	v.Advance(time.Minute)
	if want := epoch.Add(time.Second); !at.Equal(want) {
		t.Fatalf("callback saw now=%v, want %v", at, want)
	}
	if want := epoch.Add(time.Minute); !v.Now().Equal(want) {
		t.Fatalf("now=%v, want %v", v.Now(), want)
	}
}

func TestCallbackSchedulesWithinWindow(t *testing.T) {
	// A callback that re-arms itself must keep firing within one
	// Advance window — this is how hub delivery chains and periodic
	// stack ticks work.
	v := NewVirtual(epoch)
	count := 0
	var rearm func()
	rearm = func() {
		count++
		if count < 5 {
			v.AfterFunc(10*time.Millisecond, rearm)
		}
	}
	v.AfterFunc(10*time.Millisecond, rearm)
	v.Advance(time.Second)
	if count != 5 {
		t.Fatalf("count=%d, want 5", count)
	}
}

func TestStop(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	tm := v.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	v.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStep(t *testing.T) {
	v := NewVirtual(epoch)
	var got []int
	v.AfterFunc(time.Second, func() { got = append(got, 1) })
	v.AfterFunc(2*time.Second, func() { got = append(got, 2) })
	if !v.Step() {
		t.Fatal("Step found no timer")
	}
	if len(got) != 1 {
		t.Fatalf("fired %v, want [1]", got)
	}
	if !v.Now().Equal(epoch.Add(time.Second)) {
		t.Fatalf("now=%v, want epoch+1s", v.Now())
	}
	v.Step()
	if v.Step() {
		t.Fatal("Step fired with empty queue")
	}
	if len(got) != 2 {
		t.Fatalf("fired %v, want [1 2]", got)
	}
}

func TestAdvanceToPast(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(time.Minute)
	v.AdvanceTo(epoch) // must not move time backwards
	if want := epoch.Add(time.Minute); !v.Now().Equal(want) {
		t.Fatalf("now=%v, want %v", v.Now(), want)
	}
}

func TestRealClock(t *testing.T) {
	c := Real()
	if c.Now().IsZero() {
		t.Fatal("real clock returned zero time")
	}
	done := make(chan struct{})
	tm := c.AfterFunc(time.Millisecond, func() { close(done) })
	<-done
	if tm.Stop() {
		t.Fatal("Stop returned true after firing")
	}
}
